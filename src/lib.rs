#![warn(missing_docs)]

//! # qes — Quality-Energy Scheduling for Best-Effort Interactive Services
//!
//! A from-scratch Rust reproduction of *"Energy-Efficient Scheduling for
//! Best-Effort Interactive Services to Achieve High Response Quality"*
//! (Du, Sun, He, He, Bader, Zhang — IEEE IPDPS 2013).
//!
//! This facade crate re-exports the whole workspace under one roof:
//!
//! * [`core`] — jobs, quality functions, power models, schedules, and the
//!   composite ⟨quality, energy⟩ metric.
//! * [`singlecore`] — the single-core algorithms: Energy-OPT (YDS),
//!   Quality-OPT (Tians), the offline-optimal QE-OPT, and the myopic
//!   online algorithm Online-QE.
//! * [`multicore`] — the paper's contribution: DES = C-RR + WF + Online-QE,
//!   plus the FCFS/LJF/SJF baselines, the No-/S-/C-DVFS architecture
//!   models, and discrete speed scaling.
//! * [`sim`] — a discrete-event multicore simulator with the paper's
//!   grouped-scheduling triggers.
//! * [`workload`] — the web-search workload generator (Poisson arrivals,
//!   bounded-Pareto demands).
//! * [`cluster`] — the simulated "real system" substrate for the paper's
//!   §V-G validation (Opteron cluster, power meter, regression fitting).
//! * [`experiments`] — drivers that regenerate every figure in the paper.
//!
//! ## Quickstart
//!
//! ```
//! use qes::prelude::*;
//!
//! // The paper's default setup: 16 cores, 320 W, P = 5·s², web search.
//! let cfg = ExperimentConfig::paper_default()
//!     .with_sim_seconds(5.0)
//!     .with_arrival_rate(120.0);
//! let report = run_policy(&cfg, PolicyKind::Des, 42);
//! assert!(report.normalized_quality() > 0.9);
//! ```

pub use qes_cluster as cluster;
pub use qes_core as core;
pub use qes_experiments as experiments;
pub use qes_multicore as multicore;
pub use qes_sim as sim;
pub use qes_singlecore as singlecore;
pub use qes_workload as workload;

/// The most common imports in one place.
pub mod prelude {
    pub use qes_core::{
        render_gantt, DiscreteSpeedSet, ExpQuality, GanttOptions, Job, JobId, JobSet,
        PiecewiseLinearQuality, PolynomialPower, PowerModel, QualityEnergy, QualityFunction,
        Schedule, SimDuration, SimTime,
    };
    pub use qes_experiments::{run_jobset, run_policy, ExperimentConfig, PolicyKind};
    pub use qes_multicore::{
        offline_crr_qe_opt, water_filling, ArchKind, BaselineOrder, CrrDistributor, DesPolicy,
        JobSharing, PowerSharing,
    };
    pub use qes_sim::{DetailedStats, SimReport, Simulator, TriggerConfig};
    pub use qes_singlecore::{energy_opt, online_qe, qe_opt, quality_opt, OnlineMode};
    pub use qes_workload::{BoundedPareto, DiurnalRate, WebSearchWorkload};
}
