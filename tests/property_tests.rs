//! Property-based tests (proptest) over the core invariants:
//! water-filling conservation, schedule feasibility of every single-core
//! algorithm on random agreeable job sets, quality monotonicity, and the
//! d-mean equalization property.

use proptest::prelude::*;

use qes::core::{
    ExpQuality, Job, JobSet, PolynomialPower, PowerModel, QualityFunction, Schedule, SimTime,
};
use qes::multicore::water_filling;
use qes::singlecore::online_qe::{OnlineMode, ReadyJob};
use qes::singlecore::{energy_opt, online_qe, qe_opt, quality_opt};

const MODEL: PolynomialPower = PolynomialPower::PAPER_SIM;

/// Strategy: a random agreeable job set. Constant relative deadlines make
/// agreeability structural, like the paper's workload.
fn arb_jobset(max_jobs: usize) -> impl Strategy<Value = JobSet> {
    let job = (0u64..400, 20u64..300, 1.0f64..800.0);
    proptest::collection::vec(job, 1..max_jobs).prop_map(|raw| {
        let window = 150;
        let jobs: Vec<Job> = raw
            .iter()
            .enumerate()
            .map(|(i, &(rel, jitter, demand))| {
                // Same relative deadline for all ⇒ agreeable.
                let release = SimTime::from_millis(rel + jitter / 37);
                Job::new(
                    i as u32,
                    release,
                    release + qes::core::SimDuration::from_millis(window),
                    demand,
                )
                .unwrap()
            })
            .collect();
        JobSet::new(jobs).expect("constant relative deadline is agreeable")
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    // ---- Water-Filling ----

    #[test]
    fn wf_conserves_and_caps(requests in proptest::collection::vec(0.0f64..200.0, 0..24),
                             budget in 0.0f64..500.0) {
        let g = water_filling(&requests, budget);
        prop_assert_eq!(g.len(), requests.len());
        let total: f64 = g.iter().sum();
        let wanted: f64 = requests.iter().sum();
        prop_assert!(total <= budget + 1e-6);
        prop_assert!(total <= wanted + 1e-6);
        for (gi, ri) in g.iter().zip(&requests) {
            prop_assert!(*gi >= -1e-12);
            prop_assert!(*gi <= *ri + 1e-9, "granted {} > requested {}", gi, ri);
        }
        // If demand exceeds budget, the budget is fully used.
        if wanted >= budget {
            prop_assert!((total - budget).abs() < 1e-6);
        } else {
            prop_assert!((total - wanted).abs() < 1e-6);
        }
    }

    #[test]
    fn wf_unsatisfied_cores_share_one_level(
        requests in proptest::collection::vec(0.1f64..200.0, 2..16),
        budget in 1.0f64..300.0,
    ) {
        let g = water_filling(&requests, budget);
        // Cores not granted their full request must share a common level.
        let levels: Vec<f64> = g
            .iter()
            .zip(&requests)
            .filter(|(gi, ri)| **gi + 1e-9 < **ri)
            .map(|(gi, _)| *gi)
            .collect();
        for w in levels.windows(2) {
            prop_assert!((w[0] - w[1]).abs() < 1e-6, "levels differ: {:?}", levels);
        }
    }

    // ---- Single-core algorithms on random job sets ----

    #[test]
    fn energy_opt_satisfies_everything_feasibly(jobs in arb_jobset(10)) {
        let r = energy_opt::energy_opt(&jobs);
        let vols = r.schedule.volumes();
        for j in jobs.iter() {
            let v = vols.get(&j.id).copied().unwrap_or(0.0);
            prop_assert!((v - j.demand).abs() < 0.2, "{:?}: {} vs {}", j.id, v, j.demand);
        }
        Schedule::single(r.schedule.clone())
            .validate_with_tolerance(&jobs, &MODEL, f64::INFINITY, 0.25, 1e-6)
            .map_err(|e| TestCaseError::fail(format!("{e}")))?;
        // Critical speeds non-increasing.
        for w in r.round_speeds.windows(2) {
            prop_assert!(w[0] + 1e-9 >= w[1]);
        }
    }

    #[test]
    fn quality_opt_is_feasible_and_bounded(jobs in arb_jobset(10), speed in 0.2f64..3.0) {
        let r = quality_opt::quality_opt(&jobs, speed);
        for j in jobs.iter() {
            let v = r.volume(j.id);
            prop_assert!(v >= -1e-9 && v <= j.demand + 1e-6);
        }
        Schedule::single(r.schedule.clone())
            .validate_with_tolerance(&jobs, &MODEL, f64::INFINITY, 0.25, 1e-6)
            .map_err(|e| TestCaseError::fail(format!("{e}")))?;
        // Realized volumes match promises.
        let realized = r.schedule.volumes();
        for (id, &v) in &r.volumes {
            let got = realized.get(id).copied().unwrap_or(0.0);
            prop_assert!((got - v).abs() < 0.25, "{:?}: {} vs {}", id, got, v);
        }
    }

    #[test]
    fn qe_opt_respects_budget_and_matches_quality_opt_quality(
        jobs in arb_jobset(8),
        budget in 2.0f64..60.0,
    ) {
        let q = ExpQuality::PAPER_DEFAULT;
        let r = qe_opt::qe_opt(&jobs, &MODEL, budget);
        Schedule::single(r.schedule.clone())
            .validate_with_tolerance(&jobs, &MODEL, budget, 0.25, 1e-3)
            .map_err(|e| TestCaseError::fail(format!("{e}")))?;
        // Step 2 must not change the quality step 1 promised.
        let s_max = MODEL.speed_for_dynamic_power(budget);
        let qo = quality_opt::quality_opt(&jobs, s_max);
        let quality_qe: f64 = jobs.iter().map(|j| q.job_quality(j, r.volume(j.id))).sum();
        let quality_qo: f64 = jobs.iter().map(|j| q.job_quality(j, qo.volume(j.id))).sum();
        prop_assert!((quality_qe - quality_qo).abs() < 1e-6);
    }

    #[test]
    fn online_qe_future_schedule_is_feasible(
        jobs in arb_jobset(8),
        budget in 2.0f64..60.0,
        now_ms in 0u64..300,
        progress_frac in 0.0f64..0.9,
    ) {
        let now = SimTime::from_millis(now_ms);
        // Give the earliest-released live job some prior progress.
        let mut ready: Vec<ReadyJob> = jobs.iter().map(|&j| ReadyJob::fresh(j)).collect();
        if let Some(first) = ready.iter_mut().find(|r| r.job.release <= now && r.job.deadline > now) {
            first.processed = first.job.demand * progress_frac;
        }
        let out = online_qe::online_qe(now, &ready, &MODEL, budget);
        let s_max = MODEL.speed_for_dynamic_power(budget);
        for s in out.schedule.slices() {
            prop_assert!(s.start >= now);
            prop_assert!(s.speed <= s_max + 1e-6);
            let j = jobs.get(s.job).unwrap();
            prop_assert!(s.end <= j.deadline);
        }
        // Future volume per job within remaining demand.
        let vols = out.schedule.volumes();
        for r in &ready {
            let v = vols.get(&r.job.id).copied().unwrap_or(0.0);
            prop_assert!(v <= r.remaining() + 0.25, "{:?}", r.job.id);
        }
    }

    #[test]
    fn eager_and_efficient_conserve_planned_future_volume(
        jobs in arb_jobset(8),
        budget in 2.0f64..30.0,
        now_ms in 0u64..300,
        progress_frac in 0.0f64..0.9,
    ) {
        // Both realization modes must run exactly the trimmed future
        // volumes step 1 promised — Eager at s_max with µs-rounded slice
        // boundaries, Efficient through Energy-OPT. Per job and in total
        // they may differ only by µs quantization of slice endpoints.
        let now = SimTime::from_millis(now_ms);
        let mut ready: Vec<ReadyJob> = jobs.iter().map(|&j| ReadyJob::fresh(j)).collect();
        if let Some(first) = ready.iter_mut().find(|r| r.job.release <= now && r.job.deadline > now) {
            first.processed = first.job.demand * progress_frac;
        }
        let eager = online_qe::online_qe_with_mode(now, &ready, &MODEL, budget, OnlineMode::Eager);
        let eff = online_qe::online_qe_with_mode(now, &ready, &MODEL, budget, OnlineMode::Efficient);
        prop_assert!(eager.discarded.is_empty() && eff.discarded.is_empty());
        let ve = eager.schedule.volumes();
        let vf = eff.schedule.volumes();
        let mut te = 0.0;
        let mut tf = 0.0;
        for r in &ready {
            let a = ve.get(&r.job.id).copied().unwrap_or(0.0);
            let b = vf.get(&r.job.id).copied().unwrap_or(0.0);
            te += a;
            tf += b;
            prop_assert!(
                (a - b).abs() <= 0.25,
                "{:?}: eager ran {} vs efficient {}", r.job.id, a, b
            );
        }
        prop_assert!(
            (te - tf).abs() <= 0.25 * (ready.len() as f64 + 1.0),
            "total future volume diverged: eager {} vs efficient {}", te, tf
        );
    }

    #[test]
    fn quality_is_monotone_in_speed(jobs in arb_jobset(8)) {
        let q = ExpQuality::PAPER_DEFAULT;
        let mut prev = -1.0;
        for &s in &[0.25, 0.5, 1.0, 2.0, 4.0] {
            let r = quality_opt::quality_opt(&jobs, s);
            let total: f64 = jobs.iter().map(|j| q.job_quality(j, r.volume(j.id))).sum();
            prop_assert!(total + 1e-6 >= prev, "quality dropped at speed {}", s);
            prev = total;
        }
    }

    #[test]
    fn deprived_jobs_share_volumes_within_common_windows(
        demands in proptest::collection::vec(150.0f64..800.0, 2..6),
    ) {
        // Identical windows, heavy demands, slow core: every job deprived
        // ⇒ all volumes equal (the d-mean).
        let jobs = JobSet::new(
            demands
                .iter()
                .enumerate()
                .map(|(i, &w)| {
                    Job::new(i as u32, SimTime::ZERO, SimTime::from_millis(100), w).unwrap()
                })
                .collect(),
        )
        .unwrap();
        let r = quality_opt::quality_opt(&jobs, 1.0); // 100 units capacity
        let level = 100.0 / demands.len() as f64;
        for j in jobs.iter() {
            if j.demand > level + 1.0 {
                prop_assert!(
                    (r.volume(j.id) - level).abs() < 0.5,
                    "{:?}: {} vs level {}",
                    j.id,
                    r.volume(j.id),
                    level
                );
            }
        }
    }
}
