//! The parallel-execution determinism contract (DESIGN.md §"Parallel
//! execution and determinism").
//!
//! Every evaluation artifact in the repo — figure sweeps, the scorecard,
//! golden traces, EXPERIMENTS.md numbers — is produced through the
//! rayon shim's parallel iterators. The contract is that thread count is
//! *unobservable* in the results: a sweep under `QES_THREADS=1` and the
//! same sweep fanned out across a pool must produce bitwise-equal
//! ⟨quality, energy, satisfaction⟩ per point. `rayon::with_threads(1|n)`
//! drives the exact code paths the environment variable selects, so the
//! equality is checked in-process here; CI additionally diffs the CSVs
//! of two whole figure runs byte-for-byte across processes.

use qes_experiments::config::{ExperimentConfig, PolicyKind};
use qes_experiments::sweep::{sweep, SweepPoint};

const KINDS: [PolicyKind; 4] = [
    PolicyKind::Des,
    PolicyKind::Fcfs,
    PolicyKind::FcfsWf,
    PolicyKind::Sjf,
];
const RATES: [f64; 5] = [40.0, 80.0, 120.0, 160.0, 200.0];

fn run_sweep_with_threads(threads: usize) -> Vec<SweepPoint> {
    let base = ExperimentConfig::quick().with_sim_seconds(5.0);
    rayon::with_threads(threads, || sweep(&base, &KINDS, &RATES, 42))
}

/// `(quality, energy, satisfaction)` as raw bits — bitwise, not
/// approximate, equality is the contract.
fn bits(p: &SweepPoint) -> (u64, u64, u64) {
    (
        p.quality.to_bits(),
        p.energy.to_bits(),
        p.satisfaction.to_bits(),
    )
}

#[test]
fn sequential_and_parallel_sweeps_are_bitwise_equal() {
    let seq = run_sweep_with_threads(1);
    // More lanes than points' natural chunking needs, and more than this
    // host may have cores: oversubscription must not matter either.
    let par = run_sweep_with_threads(4);

    assert_eq!(seq.len(), KINDS.len() * RATES.len());
    assert_eq!(seq.len(), par.len());
    for (s, p) in seq.iter().zip(&par) {
        assert_eq!(s.kind, p.kind, "point order must match input order");
        assert_eq!(s.rate, p.rate, "point order must match input order");
        assert_eq!(
            bits(s),
            bits(p),
            "⟨quality, energy, satisfaction⟩ must be bit-identical for \
             {:?} at rate {} (seq {:?} vs par {:?})",
            s.kind,
            s.rate,
            (s.quality, s.energy, s.satisfaction),
            (p.quality, p.energy, p.satisfaction),
        );
    }
}

#[test]
fn parallel_sweep_is_reproducible_across_runs() {
    // Two parallel runs with racing chunk claims must still agree
    // bit-for-bit: scheduling is unobservable in the output.
    let a = run_sweep_with_threads(3);
    let b = run_sweep_with_threads(3);
    for (x, y) in a.iter().zip(&b) {
        assert_eq!(bits(x), bits(y));
    }
}
