//! Differential test layer for the PR-3 DES rework (§IV-E + incremental
//! recomputation).
//!
//! The same workload is pushed through every cell of the
//! {per-event, grouped} × {full-recompute, incremental, incremental-qe}
//! matrix and the reports compared:
//!
//! * **Incremental ≡ Full, bitwise.** Plan/grant reuse is only allowed
//!   when the inputs are bitwise identical, so every caching recompute
//!   mode (including the index-backed `IncrementalQe` default) must
//!   agree with `Full` on ⟨quality, energy⟩ *to the bit*, plus every
//!   job counter and the invocation count — under both trigger modes
//!   and with nonzero scheduling overhead.
//! * **Grouped ≈ Per-event.** Grouped scheduling trades recomputation
//!   for staleness; the paper's claim (§IV-E) is that quality barely
//!   moves. We assert normalized quality within 1 % while the policy is
//!   invoked strictly fewer times.

use qes::core::JobSet;
use qes::core::{ExpQuality, PolynomialPower, SimDuration, SimTime};
use qes::multicore::differential::{DifferentialConfig, TriggerMode};
use qes::multicore::RecomputeMode;
use qes::sim::{SimConfig, SimReport, Simulator};
use qes::workload::WebSearchWorkload;

// The paper's machine (§V-B): the trigger parameters (counter 8 ≈ m/2,
// 500 ms quantum) are tuned for it, and the ≤1 % grouped-quality claim
// is made at these operating points.
const CORES: usize = 16;
const BUDGET: f64 = 320.0;

fn run_cell(
    cell: DifferentialConfig,
    jobs: &JobSet,
    end_s: u64,
    overhead: SimDuration,
) -> SimReport {
    let model = PolynomialPower::PAPER_SIM;
    let quality = ExpQuality::new(0.003);
    let cfg = SimConfig {
        num_cores: CORES,
        budget: BUDGET,
        model: &model,
        quality: &quality,
        end: SimTime::from_secs(end_s),
        record_trace: false,
        overhead,
    };
    let mut policy = cell.policy();
    let (report, _) = Simulator::run(&cfg, &mut policy, jobs);
    report
}

/// Moderate load: the budget mostly suffices, so invocations bounce
/// between the step-2 early exit and the WF path.
fn moderate_workload() -> (JobSet, u64) {
    let jobs = WebSearchWorkload::new(100.0)
        .with_horizon(SimTime::from_secs(12))
        .generate(7)
        .unwrap();
    (jobs, 14)
}

/// Overload: the budget binds, WF grants squeeze every core, and
/// Online-QE discards jobs.
fn overloaded_workload() -> (JobSet, u64) {
    let jobs = WebSearchWorkload::new(300.0)
        .with_horizon(SimTime::from_secs(6))
        .generate(13)
        .unwrap();
    (jobs, 8)
}

fn assert_bitwise_equal(full: &SimReport, inc: &SimReport, ctx: &str) {
    assert_eq!(
        full.total_quality.to_bits(),
        inc.total_quality.to_bits(),
        "{ctx}: quality diverged: full {} vs incremental {}",
        full.total_quality,
        inc.total_quality
    );
    assert_eq!(
        full.energy_joules.to_bits(),
        inc.energy_joules.to_bits(),
        "{ctx}: energy diverged: full {} vs incremental {}",
        full.energy_joules,
        inc.energy_joules
    );
    assert_eq!(
        full.max_quality.to_bits(),
        inc.max_quality.to_bits(),
        "{ctx}"
    );
    assert_eq!(full.jobs_total(), inc.jobs_total(), "{ctx}");
    assert_eq!(full.jobs_satisfied(), inc.jobs_satisfied(), "{ctx}");
    assert_eq!(full.jobs_partial(), inc.jobs_partial(), "{ctx}");
    assert_eq!(full.jobs_zero(), inc.jobs_zero(), "{ctx}");
    assert_eq!(full.jobs_discarded(), inc.jobs_discarded(), "{ctx}");
    assert_eq!(full.invocations(), inc.invocations(), "{ctx}");
}

fn cell(trigger: TriggerMode, recompute: RecomputeMode) -> DifferentialConfig {
    DifferentialConfig { trigger, recompute }
}

#[test]
fn incremental_is_bitwise_identical_to_full_recompute() {
    for (name, (jobs, end)) in [
        ("moderate", moderate_workload()),
        ("overloaded", overloaded_workload()),
    ] {
        assert!(
            jobs.len() >= 400,
            "{name}: workload too small to exercise paths"
        );
        for trigger in [TriggerMode::PerEvent, TriggerMode::Grouped] {
            let full = run_cell(
                cell(trigger, RecomputeMode::Full),
                &jobs,
                end,
                SimDuration::ZERO,
            );
            for mode in [RecomputeMode::Incremental, RecomputeMode::IncrementalQe] {
                let inc = run_cell(cell(trigger, mode), &jobs, end, SimDuration::ZERO);
                assert_bitwise_equal(&full, &inc, &format!("{name}/{}/{mode:?}", trigger.label()));
            }
        }
    }
}

#[test]
fn incremental_equivalence_survives_scheduling_overhead() {
    // Nonzero overhead delays plan installation, shifting every
    // subsequent trigger instant — a different event interleaving that
    // the memo keys must still track exactly.
    let (jobs, end) = overloaded_workload();
    let overhead = SimDuration::from_micros(2_000);
    for trigger in [TriggerMode::PerEvent, TriggerMode::Grouped] {
        let full = run_cell(cell(trigger, RecomputeMode::Full), &jobs, end, overhead);
        for mode in [RecomputeMode::Incremental, RecomputeMode::IncrementalQe] {
            let inc = run_cell(cell(trigger, mode), &jobs, end, overhead);
            assert_bitwise_equal(
                &full,
                &inc,
                &format!("overhead/{}/{mode:?}", trigger.label()),
            );
        }
    }
}

#[test]
fn grouped_triggers_hold_quality_within_one_percent_of_per_event() {
    for (name, (jobs, end)) in [
        ("moderate", moderate_workload()),
        ("overloaded", overloaded_workload()),
    ] {
        let pe = run_cell(
            cell(TriggerMode::PerEvent, RecomputeMode::Incremental),
            &jobs,
            end,
            SimDuration::ZERO,
        );
        let grp = run_cell(
            cell(TriggerMode::Grouped, RecomputeMode::Incremental),
            &jobs,
            end,
            SimDuration::ZERO,
        );
        let dq = (pe.normalized_quality() - grp.normalized_quality()).abs();
        assert!(
            dq <= 0.01,
            "{name}: grouped quality {:.5} vs per-event {:.5} (Δ {:.5})",
            grp.normalized_quality(),
            pe.normalized_quality(),
            dq
        );
        assert!(
            grp.invocations() < pe.invocations(),
            "{name}: grouped should invoke less: {} vs {}",
            grp.invocations(),
            pe.invocations()
        );
    }
}

#[test]
fn grouped_triggers_cut_invocations_substantially() {
    // The point of the rework: most per-event invocations are PlanEnd
    // triggers with nothing to assign. Grouping should eliminate the
    // bulk of them, not shave a few percent.
    let (jobs, end) = moderate_workload();
    let pe = run_cell(
        cell(TriggerMode::PerEvent, RecomputeMode::Incremental),
        &jobs,
        end,
        SimDuration::ZERO,
    );
    let grp = run_cell(
        cell(TriggerMode::Grouped, RecomputeMode::Incremental),
        &jobs,
        end,
        SimDuration::ZERO,
    );
    assert!(
        (grp.invocations() as f64) < 0.7 * pe.invocations() as f64,
        "grouped {} vs per-event {} invocations",
        grp.invocations(),
        pe.invocations()
    );
}

#[test]
fn matrix_labels_are_reported() {
    // The six policies must be distinguishable in reports. Only the
    // non-default recompute modes carry a suffix: `IncrementalQe` is the
    // default, so its two cells report the bare policy name.
    let (jobs, end) = overloaded_workload();
    let mut names = Vec::new();
    for c in DifferentialConfig::MATRIX {
        let r = run_cell(c, &jobs, end, SimDuration::ZERO);
        names.push(r.policy);
    }
    assert_eq!(names.len(), 6);
    assert!(names.iter().all(|n| n.starts_with("DES/C-DVFS")));
    assert_eq!(
        names
            .iter()
            .filter(|n| n.ends_with("/full-recompute"))
            .count(),
        2
    );
    assert_eq!(
        names.iter().filter(|n| n.ends_with("/incremental")).count(),
        2
    );
    assert_eq!(names.iter().filter(|n| *n == "DES/C-DVFS").count(), 2);
}
