//! Every policy × several loads, validated through the library's own
//! trace checker (`qes_sim::validate_trace`): windows, non-overlap,
//! non-migration, demand caps, and the instantaneous power budget.

use qes::cluster::{ClusterEngine, ClusterReport, RoutingPolicy};
use qes::core::{ExpQuality, PolynomialPower, SimDuration, SimTime};
use qes::experiments::{run_policy_traced, ExperimentConfig, PolicyKind};
use qes::multicore::{DesPolicy, RecomputeMode, SchedulingPolicy};
use qes::sim::{validate_trace, SimConfig, Simulator};

const ALL_POLICIES: [PolicyKind; 10] = [
    PolicyKind::Des,
    PolicyKind::DesSDvfs,
    PolicyKind::DesNoDvfs,
    PolicyKind::DesDiscrete,
    PolicyKind::Fcfs,
    PolicyKind::Ljf,
    PolicyKind::Sjf,
    PolicyKind::FcfsWf,
    PolicyKind::LjfWf,
    PolicyKind::SjfWf,
];

#[test]
fn every_policy_trace_validates_under_light_and_heavy_load() {
    let model = PolynomialPower::PAPER_SIM;
    for rate in [90.0, 230.0] {
        let cfg = ExperimentConfig::paper_default()
            .with_arrival_rate(rate)
            .with_sim_seconds(6.0);
        let jobs = cfg.workload().generate(47).unwrap();
        for kind in ALL_POLICIES {
            let (_, trace) = run_policy_traced(&cfg, kind, 47);
            let summary = validate_trace(
                &trace,
                &jobs,
                cfg.num_cores,
                &model,
                cfg.budget,
                0.25, // µs-quantization slack on volumes
                1e-3, // float slack on power
            )
            .unwrap_or_else(|e| panic!("{kind:?} at {rate} req/s: {e}"));
            assert!(summary.slices > 0, "{kind:?}: empty trace");
            assert!(summary.jobs_executed > 0, "{kind:?}");
            assert!(
                summary.peak_power <= cfg.budget + 1e-3,
                "{kind:?}: peak {}",
                summary.peak_power
            );
        }
    }
}

#[test]
fn des_peak_power_approaches_budget_under_overload() {
    // Under overload the scheduler should actually *use* the budget.
    let model = PolynomialPower::PAPER_SIM;
    let cfg = ExperimentConfig::paper_default()
        .with_arrival_rate(240.0)
        .with_sim_seconds(6.0);
    let jobs = cfg.workload().generate(3).unwrap();
    let (_, trace) = run_policy_traced(&cfg, PolicyKind::Des, 3);
    let summary =
        validate_trace(&trace, &jobs, cfg.num_cores, &model, cfg.budget, 0.25, 1e-3).unwrap();
    assert!(
        summary.peak_power > 0.95 * cfg.budget,
        "peak {} should approach the {} W budget",
        summary.peak_power,
        cfg.budget
    );
}

/// Golden ⟨quality, energy⟩ for `tests/data/golden_websearch.csv` under
/// DES/C-DVFS at 8 cores / 160 W (overloaded: exercises WF squeezing,
/// Online-QE discards, and grouped triggers). Captured from a blessed
/// run; any drift means the scheduler's numerical behaviour changed. To
/// re-bless after an *intentional* change, run
/// `cargo test golden -- --nocapture` and copy the printed actuals.
const GOLDEN_QUALITY: f64 = 1.047_933_375_054_220_9e2;
const GOLDEN_MAX_QUALITY: f64 = 1.911_682_218_481_366_5e2;
const GOLDEN_ENERGY: f64 = 4.708_594_736_660_488_7e2;
const GOLDEN_COUNTS: (usize, usize, usize, usize, u64) = (163, 151, 110, 159, 149);

#[test]
fn golden_websearch_trace_regression() {
    let csv = include_str!("data/golden_websearch.csv");
    let jobs = qes::workload::from_csv(csv).expect("golden trace parses");
    assert_eq!(jobs.len(), 424);

    let model = PolynomialPower::PAPER_SIM;
    let quality = ExpQuality::new(0.003);
    let cfg = SimConfig {
        num_cores: 8,
        budget: 160.0,
        model: &model,
        quality: &quality,
        end: SimTime::from_secs(5),
        record_trace: false,
        overhead: SimDuration::ZERO,
    };
    let mut policy = DesPolicy::new();
    let (r, _) = Simulator::run(&cfg, &mut policy, &jobs);

    println!(
        "golden actuals: quality {:.17e} max {:.17e} energy {:.17e} counts ({}, {}, {}, {}, {})",
        r.total_quality,
        r.max_quality,
        r.energy_joules,
        r.jobs_satisfied(),
        r.jobs_partial(),
        r.jobs_zero(),
        r.jobs_discarded(),
        r.invocations()
    );
    let rel = |a: f64, b: f64| (a - b).abs() / b.abs().max(1e-12);
    assert!(
        rel(r.total_quality, GOLDEN_QUALITY) < 1e-6,
        "quality drifted: {} vs golden {}",
        r.total_quality,
        GOLDEN_QUALITY
    );
    assert!(
        rel(r.max_quality, GOLDEN_MAX_QUALITY) < 1e-6,
        "max quality drifted: {} vs golden {}",
        r.max_quality,
        GOLDEN_MAX_QUALITY
    );
    assert!(
        rel(r.energy_joules, GOLDEN_ENERGY) < 1e-6,
        "energy drifted: {} vs golden {}",
        r.energy_joules,
        GOLDEN_ENERGY
    );
    assert_eq!(
        (
            r.jobs_satisfied(),
            r.jobs_partial(),
            r.jobs_zero(),
            r.jobs_discarded(),
            r.invocations()
        ),
        GOLDEN_COUNTS,
        "job outcome counters drifted"
    );
}

#[test]
fn golden_websearch_incremental_qe_bitwise_equals_full() {
    // Pin the budget-bounded incremental Online-QE path (the default
    // recompute mode) bitwise against a full recompute on the golden
    // overloaded trace: same ⟨quality, energy⟩ bits, same counters, same
    // invocation count. The trace drives ~150 invocations with WF
    // squeezing and 159 discards, so the resumable discard loop and the
    // per-core ready index are both exercised hard.
    let csv = include_str!("data/golden_websearch.csv");
    let jobs = qes::workload::from_csv(csv).expect("golden trace parses");

    let model = PolynomialPower::PAPER_SIM;
    let quality = ExpQuality::new(0.003);
    let cfg = SimConfig {
        num_cores: 8,
        budget: 160.0,
        model: &model,
        quality: &quality,
        end: SimTime::from_secs(5),
        record_trace: false,
        overhead: SimDuration::ZERO,
    };
    let run = |mode: RecomputeMode| {
        let mut policy = DesPolicy::new().with_recompute(mode);
        Simulator::run(&cfg, &mut policy, &jobs).0
    };
    let full = run(RecomputeMode::Full);
    let iqe = run(RecomputeMode::IncrementalQe);
    assert_eq!(full.total_quality.to_bits(), iqe.total_quality.to_bits());
    assert_eq!(full.max_quality.to_bits(), iqe.max_quality.to_bits());
    assert_eq!(full.energy_joules.to_bits(), iqe.energy_joules.to_bits());
    assert_eq!(
        (
            full.jobs_satisfied(),
            full.jobs_partial(),
            full.jobs_zero(),
            full.jobs_discarded(),
            full.invocations()
        ),
        (
            iqe.jobs_satisfied(),
            iqe.jobs_partial(),
            iqe.jobs_zero(),
            iqe.jobs_discarded(),
            iqe.invocations()
        )
    );
}

// ---------------------------------------------------------------------
// Golden cluster trace: the committed diurnal stream
// `tests/data/golden_cluster.csv` routed across 4 shards by JSQ, each
// shard an 8-core / 160 W DES machine. Pins the whole dispatch layer —
// routing decisions, shard fan-out, report merge — against a blessed
// run. To re-bless after an *intentional* change, run
// `cargo test golden_cluster -- --ignored --nocapture` (regenerates the
// CSV and prints the actuals) and copy them here.
// ---------------------------------------------------------------------

/// Blessed merged aggregates (rel 1e-6) and exact counters for the
/// golden cluster run.
const GOLDEN_CLUSTER_QUALITY: f64 = 3.860_506_484_907_951e2;
const GOLDEN_CLUSTER_MAX_QUALITY: f64 = 4.263_360_016_037_619_3e2;
const GOLDEN_CLUSTER_ENERGY: f64 = 1.536_332_475_290_671_5e3;
/// (satisfied, partial, zero, discarded, invocations) over the merge.
const GOLDEN_CLUSTER_COUNTS: (usize, usize, usize, usize, u64) = (541, 410, 0, 0, 340);
/// Exact jobs routed to each shard by JSQ, in shard order.
const GOLDEN_CLUSTER_SHARD_JOBS: [usize; 4] = [245, 240, 235, 231];

fn golden_cluster_run(jobs: &qes::core::JobSet) -> ClusterReport {
    let model = PolynomialPower::PAPER_SIM;
    let quality = ExpQuality::new(0.003);
    let cfg = SimConfig {
        num_cores: 8,
        budget: 160.0,
        model: &model,
        quality: &quality,
        end: SimTime::from_secs(4),
        record_trace: false,
        overhead: SimDuration::ZERO,
    };
    let engine = ClusterEngine::new(4).with_routing(RoutingPolicy::Jsq);
    engine.run(&cfg, jobs, |_| {
        Box::new(DesPolicy::new()) as Box<dyn SchedulingPolicy>
    })
}

#[test]
fn golden_cluster_trace_regression() {
    let csv = include_str!("data/golden_cluster.csv");
    let jobs = qes::workload::from_csv(csv).expect("golden cluster trace parses");
    let rep = golden_cluster_run(&jobs);

    println!(
        "golden cluster actuals: quality {:.17e} max {:.17e} energy {:.17e} \
         counts ({}, {}, {}, {}, {}) shard_jobs {:?}",
        rep.merged.total_quality,
        rep.merged.max_quality,
        rep.merged.energy_joules,
        rep.merged.jobs_satisfied(),
        rep.merged.jobs_partial(),
        rep.merged.jobs_zero(),
        rep.merged.jobs_discarded(),
        rep.merged.invocations(),
        rep.shards
            .iter()
            .map(|s| s.report.jobs_total())
            .collect::<Vec<_>>()
    );

    let rel = |a: f64, b: f64| (a - b).abs() / b.abs().max(1e-12);
    assert!(
        rel(rep.merged.total_quality, GOLDEN_CLUSTER_QUALITY) < 1e-6,
        "cluster quality drifted: {} vs golden {}",
        rep.merged.total_quality,
        GOLDEN_CLUSTER_QUALITY
    );
    assert!(
        rel(rep.merged.max_quality, GOLDEN_CLUSTER_MAX_QUALITY) < 1e-6,
        "cluster max quality drifted: {} vs golden {}",
        rep.merged.max_quality,
        GOLDEN_CLUSTER_MAX_QUALITY
    );
    assert!(
        rel(rep.merged.energy_joules, GOLDEN_CLUSTER_ENERGY) < 1e-6,
        "cluster energy drifted: {} vs golden {}",
        rep.merged.energy_joules,
        GOLDEN_CLUSTER_ENERGY
    );
    assert_eq!(
        (
            rep.merged.jobs_satisfied(),
            rep.merged.jobs_partial(),
            rep.merged.jobs_zero(),
            rep.merged.jobs_discarded(),
            rep.merged.invocations()
        ),
        GOLDEN_CLUSTER_COUNTS,
        "merged outcome counters drifted"
    );
    // Routing decisions are part of the contract: the exact per-shard
    // job split must not move.
    let shard_jobs: Vec<usize> = rep.shards.iter().map(|s| s.report.jobs_total()).collect();
    assert_eq!(shard_jobs, GOLDEN_CLUSTER_SHARD_JOBS, "JSQ routing drifted");
    assert_eq!(
        shard_jobs.iter().sum::<usize>(),
        jobs.len(),
        "jobs conserved"
    );
}

/// Regenerates `tests/data/golden_cluster.csv` and prints fresh golden
/// constants. Only run to re-bless:
/// `cargo test golden_cluster_regenerate -- --ignored --nocapture`.
#[test]
#[ignore = "re-blessing tool, writes tests/data/golden_cluster.csv"]
fn golden_cluster_regenerate() {
    use qes::workload::DiurnalWorkload;
    // Bursty diurnal stream sized so peaks overload the 4-shard cluster
    // (per-shard full-speed capacity ≈ 83 req/s ⇒ cluster ≈ 333 req/s;
    // peaks reach 460 req/s) while troughs run light.
    let jobs = DiurnalWorkload::new(280.0, 180.0, 2.0)
        .with_horizon(SimTime::from_secs(3))
        .generate(9)
        .expect("agreeable by construction");
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/data/golden_cluster.csv");
    std::fs::write(path, qes::workload::to_csv(&jobs)).expect("write golden csv");
    println!("wrote {} jobs to {path}", jobs.len());
    let rep = golden_cluster_run(&jobs);
    println!(
        "bless: QUALITY {:.17e} MAX {:.17e} ENERGY {:.17e} COUNTS ({}, {}, {}, {}, {}) SHARD_JOBS {:?}",
        rep.merged.total_quality,
        rep.merged.max_quality,
        rep.merged.energy_joules,
        rep.merged.jobs_satisfied(),
        rep.merged.jobs_partial(),
        rep.merged.jobs_zero(),
        rep.merged.jobs_discarded(),
        rep.merged.invocations(),
        rep.shards.iter().map(|s| s.report.jobs_total()).collect::<Vec<_>>()
    );
}
