//! Every policy × several loads, validated through the library's own
//! trace checker (`qes_sim::validate_trace`): windows, non-overlap,
//! non-migration, demand caps, and the instantaneous power budget.

use qes::core::PolynomialPower;
use qes::experiments::{run_policy_traced, ExperimentConfig, PolicyKind};
use qes::sim::validate_trace;

const ALL_POLICIES: [PolicyKind; 10] = [
    PolicyKind::Des,
    PolicyKind::DesSDvfs,
    PolicyKind::DesNoDvfs,
    PolicyKind::DesDiscrete,
    PolicyKind::Fcfs,
    PolicyKind::Ljf,
    PolicyKind::Sjf,
    PolicyKind::FcfsWf,
    PolicyKind::LjfWf,
    PolicyKind::SjfWf,
];

#[test]
fn every_policy_trace_validates_under_light_and_heavy_load() {
    let model = PolynomialPower::PAPER_SIM;
    for rate in [90.0, 230.0] {
        let cfg = ExperimentConfig::paper_default()
            .with_arrival_rate(rate)
            .with_sim_seconds(6.0);
        let jobs = cfg.workload().generate(47).unwrap();
        for kind in ALL_POLICIES {
            let (_, trace) = run_policy_traced(&cfg, kind, 47);
            let summary = validate_trace(
                &trace,
                &jobs,
                cfg.num_cores,
                &model,
                cfg.budget,
                0.25, // µs-quantization slack on volumes
                1e-3, // float slack on power
            )
            .unwrap_or_else(|e| panic!("{kind:?} at {rate} req/s: {e}"));
            assert!(summary.slices > 0, "{kind:?}: empty trace");
            assert!(summary.jobs_executed > 0, "{kind:?}");
            assert!(
                summary.peak_power <= cfg.budget + 1e-3,
                "{kind:?}: peak {}",
                summary.peak_power
            );
        }
    }
}

#[test]
fn des_peak_power_approaches_budget_under_overload() {
    // Under overload the scheduler should actually *use* the budget.
    let model = PolynomialPower::PAPER_SIM;
    let cfg = ExperimentConfig::paper_default()
        .with_arrival_rate(240.0)
        .with_sim_seconds(6.0);
    let jobs = cfg.workload().generate(3).unwrap();
    let (_, trace) = run_policy_traced(&cfg, PolicyKind::Des, 3);
    let summary =
        validate_trace(&trace, &jobs, cfg.num_cores, &model, cfg.budget, 0.25, 1e-3).unwrap();
    assert!(
        summary.peak_power > 0.95 * cfg.budget,
        "peak {} should approach the {} W budget",
        summary.peak_power,
        cfg.budget
    );
}
