//! Failure-injection and edge-condition tests: the system must stay
//! well-defined when pushed to the boundaries of its domain — degenerate
//! budgets, bursts, ladder extremes, impossible jobs, and non-partial
//! overloads.

use qes::core::obs::Event;
use qes::core::QualityFunction;
use qes::core::TraceObserver;
use qes::core::{DiscreteSpeedSet, ExpQuality, Job, JobSet, PolynomialPower, SimDuration, SimTime};
use qes::experiments::{run_policy, ExperimentConfig, PolicyKind};
use qes::multicore::{ArchKind, BaselineOrder, BaselinePolicy, DesPolicy, SchedulingPolicy};
use qes::sim::engine::{SimConfig, Simulator};

const MODEL: PolynomialPower = PolynomialPower::PAPER_SIM;
const Q: ExpQuality = ExpQuality::PAPER_DEFAULT;

fn ms(x: u64) -> SimTime {
    SimTime::from_millis(x)
}

fn simulate(
    jobs: JobSet,
    policy: &mut dyn SchedulingPolicy,
    cores: usize,
    budget: f64,
    end_ms: u64,
) -> qes::sim::SimReport {
    let cfg = SimConfig {
        num_cores: cores,
        budget,
        model: &MODEL,
        quality: &Q,
        end: ms(end_ms),
        record_trace: false,
        overhead: SimDuration::ZERO,
    };
    Simulator::run(&cfg, policy, &jobs).0
}

/// Like [`simulate`], with a [`TraceObserver`] attached.
fn simulate_traced(
    jobs: JobSet,
    policy: &mut dyn SchedulingPolicy,
    cores: usize,
    budget: f64,
    end_ms: u64,
) -> (qes::sim::SimReport, TraceObserver) {
    let cfg = SimConfig {
        num_cores: cores,
        budget,
        model: &MODEL,
        quality: &Q,
        end: ms(end_ms),
        record_trace: false,
        overhead: SimDuration::ZERO,
    };
    let mut obs = TraceObserver::new();
    let (report, _) = Simulator::run_observed(&cfg, policy, &jobs, &mut obs);
    (report, obs)
}

/// The event-stream invariants every run must uphold (valid whenever all
/// deadlines fall inside the horizon, so no tail events trail `end`):
/// timestamps are monotone, every `PlanInstall` follows a trigger event
/// at the same instant, and nothing is recorded after `end`.
fn assert_well_formed(obs: &TraceObserver, end: SimTime) {
    assert_eq!(obs.dropped(), 0, "ring buffer overflowed");
    let events = obs.events();
    assert!(!events.is_empty());
    let mut prev = SimTime::ZERO;
    let mut last_trigger: Option<SimTime> = None;
    for &(at, ev) in &events {
        assert!(at >= prev, "timestamps went backwards: {at:?} < {prev:?}");
        prev = at;
        assert!(at <= end, "event after the horizon: {at:?} > {end:?}");
        match ev {
            Event::Trigger { .. } => last_trigger = Some(at),
            Event::PlanInstall { .. } => {
                assert_eq!(
                    last_trigger,
                    Some(at),
                    "PlanInstall at {at:?} without a trigger at the same instant"
                );
            }
            _ => {}
        }
    }
}

#[test]
fn observed_burst_trace_is_well_formed() {
    // The burst scenario below, with the observer attached: every deadline
    // (150 ms) is far inside the 1 s horizon, so the stream must also end
    // by the horizon.
    let jobs = JobSet::new(
        (0..64)
            .map(|i| Job::new(i, ms(0), ms(150), 200.0).unwrap())
            .collect(),
    )
    .unwrap();
    let (r, obs) = simulate_traced(jobs, &mut DesPolicy::new(), 4, 80.0, 1000);
    assert_well_formed(&obs, ms(1000));
    // The stream is complete: one settle per job, one invoke per wakeup.
    let events = obs.events();
    let settles = events
        .iter()
        .filter(|(_, e)| matches!(e, Event::JobSettle { .. }))
        .count();
    assert_eq!(settles, 64);
    let invokes = events
        .iter()
        .filter(|(_, e)| matches!(e, Event::Invoke { .. }))
        .count() as u64;
    assert_eq!(invokes, r.counters.wakeups());
}

#[test]
fn observed_overload_trace_is_well_formed() {
    // The non-partial overload scenario with discards: last deadline at
    // 40·39 + 150 = 1710 ms < the 2 s horizon.
    let mut v = Vec::new();
    for i in 0..40u32 {
        let rel = ms(40 * i as u64);
        let mut j = Job::new(i, rel, rel + SimDuration::from_millis(150), 250.0).unwrap();
        j.partial = false;
        v.push(j);
    }
    let jobs = JobSet::new(v).unwrap();
    let (r, obs) = simulate_traced(jobs, &mut DesPolicy::new(), 2, 40.0, 2000);
    assert_well_formed(&obs, ms(2000));
    let events = obs.events();
    let discards = events
        .iter()
        .filter(|(_, e)| matches!(e, Event::JobDiscard { .. }))
        .count();
    assert_eq!(discards, r.jobs_discarded());
    // Every install is announced: plan installs in the stream match the
    // report's counter.
    let installs = events
        .iter()
        .filter(|(_, e)| matches!(e, Event::PlanInstall { .. }))
        .count() as u64;
    assert_eq!(installs, r.counters.plans_installed);
}

#[test]
fn burst_of_simultaneous_arrivals() {
    // 64 jobs all released at t=0 on 4 cores: far beyond capacity, but
    // nothing panics and accounting closes.
    let jobs = JobSet::new(
        (0..64)
            .map(|i| Job::new(i, ms(0), ms(150), 200.0).unwrap())
            .collect(),
    )
    .unwrap();
    let r = simulate(jobs, &mut DesPolicy::new(), 4, 80.0, 1000);
    assert_eq!(r.jobs_total(), 64);
    assert_eq!(r.jobs_satisfied() + r.jobs_partial() + r.jobs_zero(), 64);
    // Capacity: 4 cores × 2 GHz × 0.15 s = 1200 units vs 12800 demanded.
    assert!(r.jobs_satisfied() < 8);
    assert!(r.total_quality > 0.0);
}

#[test]
fn job_impossible_even_at_max_speed() {
    // 10 000 units in 150 ms needs 66 GHz; s* is 2 GHz. The job is served
    // partially and the system moves on.
    let jobs = JobSet::new(vec![
        Job::new(0, ms(0), ms(150), 10_000.0).unwrap(),
        Job::new(1, ms(10), ms(160), 100.0).unwrap(),
    ])
    .unwrap();
    let r = simulate(jobs, &mut DesPolicy::new(), 2, 40.0, 1000);
    assert_eq!(r.jobs_partial(), 1);
    assert_eq!(r.jobs_satisfied(), 1);
}

#[test]
fn non_partial_overload_discards_do_not_leak() {
    // All-or-nothing jobs under 2× overload: discarded jobs must still be
    // settled exactly once.
    let mut v = Vec::new();
    for i in 0..40u32 {
        // 250 units / 150 ms = 1.67 GHz — feasible alone, infeasible for
        // all 40 (offered ≈ 6.3 kunits/s vs 4 kunits/s capacity).
        let rel = ms(40 * i as u64);
        let mut j = Job::new(i, rel, rel + SimDuration::from_millis(150), 250.0).unwrap();
        j.partial = false;
        v.push(j);
    }
    let jobs = JobSet::new(v).unwrap();
    let r = simulate(jobs, &mut DesPolicy::new(), 2, 40.0, 2000);
    assert_eq!(r.jobs_total(), 40);
    assert_eq!(r.jobs_satisfied() + r.jobs_partial() + r.jobs_zero(), 40);
    // Non-partial ⇒ partial executions yield zero quality; whatever
    // quality exists comes only from fully satisfied jobs.
    assert!(r.jobs_satisfied() > 0, "some jobs should complete");
    assert!(r.jobs_satisfied() < 40, "overload must cost something");
    let per_job = Q.value(250.0);
    let expected = per_job * r.jobs_satisfied() as f64;
    assert!((r.total_quality - expected).abs() < 1e-6);
}

#[test]
fn single_level_speed_ladder() {
    // A one-speed "ladder": rectification has no choices, yet DES/discrete
    // still schedules.
    let set = DiscreteSpeedSet::from_model(&MODEL, &[2.0]).unwrap();
    let jobs = JobSet::new(
        (0..20)
            .map(|i| {
                // 100 units per 40 ms on 2 cores: 2.5 kunits/s offered vs
                // 4 kunits/s at the single 2 GHz level.
                let rel = ms(40 * i as u64);
                Job::new(i, rel, rel + SimDuration::from_millis(150), 100.0).unwrap()
            })
            .collect(),
    )
    .unwrap();
    let r = simulate(jobs, &mut DesPolicy::with_discrete(set), 2, 40.0, 1500);
    assert!(r.jobs_satisfied() > 15, "satisfied {}", r.jobs_satisfied());
}

#[test]
fn budget_below_slowest_discrete_level() {
    // The slowest Opteron level draws ~11 W of total power; with a 1 W
    // budget nothing can run, but nothing crashes either.
    let set = DiscreteSpeedSet::opteron_2380();
    let jobs = JobSet::new(vec![Job::new(0, ms(0), ms(150), 100.0).unwrap()]).unwrap();
    let r = simulate(jobs, &mut DesPolicy::with_discrete(set), 1, 1.0, 500);
    assert_eq!(r.jobs_satisfied(), 0);
}

#[test]
fn demands_at_pareto_bounds() {
    // Hand-build a stream alternating the distribution's extremes.
    let jobs = JobSet::new(
        (0..30)
            .map(|i| {
                let rel = ms(10 * i as u64);
                let w = if i % 2 == 0 { 130.0 } else { 1000.0 };
                Job::new(i, rel, rel + SimDuration::from_millis(150), w).unwrap()
            })
            .collect(),
    )
    .unwrap();
    let r = simulate(jobs, &mut DesPolicy::new(), 4, 80.0, 1000);
    assert_eq!(r.jobs_total(), 30);
    // ~4× overload: concave partial credit still earns real quality.
    assert!(r.normalized_quality() > 0.3, "{}", r.normalized_quality());
    assert!(r.jobs_partial() > 0);
}

#[test]
fn deadline_on_quantum_boundary() {
    // Deadline exactly at the 500 ms quantum tick: the deadline event must
    // settle before the quantum replans.
    let jobs = JobSet::new(vec![Job::new(0, ms(350), ms(500), 100.0).unwrap()]).unwrap();
    let r = simulate(jobs, &mut DesPolicy::new(), 1, 20.0, 1000);
    assert_eq!(r.jobs_total(), 1);
    assert_eq!(r.jobs_satisfied(), 1);
}

#[test]
fn all_architectures_survive_extreme_overload() {
    let cfg = ExperimentConfig::paper_default()
        .with_arrival_rate(400.0) // 2.4× capacity
        .with_sim_seconds(5.0);
    for kind in [PolicyKind::Des, PolicyKind::DesSDvfs, PolicyKind::DesNoDvfs] {
        let r = run_policy(&cfg, kind, 1);
        assert!(r.jobs_total() > 1500, "{kind:?}");
        assert!(r.normalized_quality() > 0.2, "{kind:?}");
        assert!(r.normalized_quality() < 0.9, "{kind:?} should be degraded");
    }
}

#[test]
fn baselines_survive_zero_jobs() {
    let jobs = JobSet::new(vec![]).unwrap();
    for order in [BaselineOrder::Fcfs, BaselineOrder::Ljf, BaselineOrder::Sjf] {
        let r = simulate(jobs.clone(), &mut BaselinePolicy::new(order), 2, 40.0, 500);
        assert_eq!(r.jobs_total(), 0);
        assert_eq!(r.energy_joules, 0.0);
        assert_eq!(r.normalized_quality(), 1.0);
    }
}

#[test]
fn no_dvfs_with_zero_budget_burns_nothing() {
    let jobs = JobSet::new(vec![Job::new(0, ms(0), ms(150), 100.0).unwrap()]).unwrap();
    let r = simulate(jobs, &mut DesPolicy::on_arch(ArchKind::NoDvfs), 2, 0.0, 500);
    assert_eq!(r.energy_joules, 0.0);
    assert_eq!(r.jobs_satisfied(), 0);
}

#[test]
fn more_cores_than_jobs() {
    let jobs = JobSet::new(vec![
        Job::new(0, ms(0), ms(150), 100.0).unwrap(),
        Job::new(1, ms(5), ms(155), 100.0).unwrap(),
    ])
    .unwrap();
    let r = simulate(jobs, &mut DesPolicy::new(), 64, 320.0, 500);
    assert_eq!(r.jobs_satisfied(), 2);
}

#[test]
fn sub_millisecond_jobs() {
    // Tiny demands and tight windows exercise the µs rounding paths.
    let jobs = JobSet::new(
        (0..50)
            .map(|i| {
                let rel = SimTime::from_micros(137 * i as u64);
                Job::new(i, rel, rel + SimDuration::from_micros(900), 0.5).unwrap()
            })
            .collect(),
    )
    .unwrap();
    let r = simulate(jobs, &mut DesPolicy::new(), 2, 40.0, 100);
    assert_eq!(r.jobs_total(), 50);
    assert!(
        r.jobs_satisfied() + r.jobs_partial() > 30,
        "sat {} part {} zero {}",
        r.jobs_satisfied(),
        r.jobs_partial(),
        r.jobs_zero()
    );
}
