//! Differential + property test layer for the sharded cluster front end.
//!
//! The dispatch layer's contract (DESIGN.md §9):
//!
//! * **1 shard ≡ the plain engine, bitwise.** A 1-shard cluster routes
//!   every job to shard 0 and merges a single report, so ⟨quality,
//!   energy⟩ and every counter must match a direct `Simulator::run` to
//!   the bit — across the {per-event, grouped} × {Full, IncrementalQe}
//!   differential matrix.
//! * **Conservation.** Routing is a partition: every arrival lands on
//!   exactly one shard and per-shard counts sum to the workload.
//! * **Lane count is unobservable.** Shard fan-out on 1 lane vs 4 lanes
//!   is bitwise-equal (`f64::to_bits`), reusing the `with_threads`
//!   harness from `tests/parallel_determinism.rs`.
//! * **JSQ ties are id-blind.** The decision stream depends on the
//!   `(release, deadline)` sequence, never on job-id labels, so
//!   relabeling ids inside simultaneous-arrival batches leaves the
//!   per-position shard assignment unchanged.
//! * **Seed-split independence.** Shard seeds derive from a SplitMix64
//!   split; re-seeding one shard's meter leaves every other shard's
//!   metered reading (and all reports) bit-identical.
//!
//! The fault layer's contract (DESIGN.md §10):
//!
//! * **Zero faults ≡ the fault-free path, bitwise.** An engine carrying
//!   [`FaultPlan::none`] produces reports bit-identical to the engine
//!   without a plan, across the whole routing matrix (round-robin, JSQ,
//!   least-energy, feedback).
//! * **Seeded fault runs are bitwise reproducible** at any lane count
//!   and across repeats — faults are sampled before the run, never
//!   during it.
//! * **Conservation under faults.** Every arrival is either simulated
//!   on some shard or counted in `jobs_dropped`:
//!   `merged.jobs_total() + jobs_dropped == arrivals`.
//! * **Failover routes around crashes.** No job is assigned to a shard
//!   inside one of its crash windows, and stranded jobs reappear on
//!   surviving shards (`jobs_retried`).

use qes::cluster::{
    dispatch_with_faults, route, split_seed, AdmissionPolicy, ClusterEngine, FaultKind, FaultPlan,
    FaultWindow, HedgePolicy, OverloadPolicy, PowerMeter, RetryPolicy, RoutingPolicy,
};
use qes::core::{Event, ExpQuality, Job, JobSet, PolynomialPower, SimDuration, SimTime};
use qes::multicore::differential::{DifferentialConfig, TriggerMode};
use qes::multicore::{DesPolicy, RecomputeMode};
use qes::sim::{SimConfig, SimReport, Simulator};
use qes::workload::{DiurnalWorkload, WebSearchWorkload};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const CORES: usize = 8;
const BUDGET: f64 = 160.0;
const MODEL: PolynomialPower = PolynomialPower::PAPER_SIM;

fn sim_cfg<'a>(quality: &'a ExpQuality, end_s: u64) -> SimConfig<'a> {
    SimConfig {
        num_cores: CORES,
        budget: BUDGET,
        model: &MODEL,
        quality,
        end: SimTime::from_secs(end_s),
        record_trace: false,
        overhead: SimDuration::ZERO,
    }
}

fn workload() -> (JobSet, u64) {
    let jobs = WebSearchWorkload::new(120.0)
        .with_horizon(SimTime::from_secs(8))
        .generate(7)
        .unwrap();
    (jobs, 10)
}

fn diurnal_workload() -> (JobSet, u64) {
    let jobs = DiurnalWorkload::new(200.0, 140.0, 6.0)
        .with_horizon(SimTime::from_secs(12))
        .generate(21)
        .unwrap();
    (jobs, 14)
}

fn assert_reports_bitwise(a: &SimReport, b: &SimReport, ctx: &str) {
    assert_eq!(
        a.total_quality.to_bits(),
        b.total_quality.to_bits(),
        "{ctx}: quality"
    );
    assert_eq!(
        a.energy_joules.to_bits(),
        b.energy_joules.to_bits(),
        "{ctx}: energy"
    );
    assert_eq!(
        a.max_quality.to_bits(),
        b.max_quality.to_bits(),
        "{ctx}: max_quality"
    );
    assert_eq!(a.counters, b.counters, "{ctx}: counters");
}

#[test]
fn one_shard_cluster_is_bitwise_identical_to_plain_engine() {
    let (jobs, end) = workload();
    let quality = ExpQuality::new(0.003);
    let cfg = sim_cfg(&quality, end);
    let cells = [
        (TriggerMode::PerEvent, RecomputeMode::Full),
        (TriggerMode::PerEvent, RecomputeMode::IncrementalQe),
        (TriggerMode::Grouped, RecomputeMode::Full),
        (TriggerMode::Grouped, RecomputeMode::IncrementalQe),
    ];
    for (trigger, recompute) in cells {
        let cell = DifferentialConfig { trigger, recompute };
        let mut plain_policy = cell.policy();
        let (plain, _) = Simulator::run(&cfg, &mut plain_policy, &jobs);

        for routing in [
            RoutingPolicy::RoundRobin,
            RoutingPolicy::Jsq,
            RoutingPolicy::LeastEnergy,
            RoutingPolicy::Random { seed: 5 },
        ] {
            let engine = ClusterEngine::new(1).with_routing(routing.clone());
            let rep = engine.run(&cfg, &jobs, move |_| Box::new(cell.policy()));
            let ctx = format!("{}/{}", cell.label(), routing.label());
            assert_reports_bitwise(&plain, &rep.merged, &ctx);
            assert_eq!(rep.shards.len(), 1, "{ctx}");
            assert_reports_bitwise(&plain, &rep.shards[0].report, &ctx);
        }
    }
}

#[test]
fn round_robin_over_identical_shards_conserves_jobs() {
    let (jobs, end) = workload();
    let shards = 4;
    let assignment = route(&jobs, shards, &RoutingPolicy::RoundRobin, &MODEL);
    // Every arrival routed exactly once, cyclically.
    assert_eq!(assignment.len(), jobs.len());
    for (k, &s) in assignment.iter().enumerate() {
        assert_eq!(s as usize, k % shards, "arrival {k}");
    }
    let mut counts = vec![0usize; shards];
    for &s in &assignment {
        counts[s as usize] += 1;
    }
    assert_eq!(counts.iter().sum::<usize>(), jobs.len());
    assert!(counts.iter().max().unwrap() - counts.iter().min().unwrap() <= 1);

    // The simulated cluster sees the same partition: per-shard job
    // totals match the routed counts and sum to the workload in the
    // merged report.
    let quality = ExpQuality::new(0.003);
    let cfg = sim_cfg(&quality, end);
    let engine = ClusterEngine::new(shards).with_routing(RoutingPolicy::RoundRobin);
    let rep = engine.run(&cfg, &jobs, |_| Box::new(DesPolicy::new()));
    for (i, s) in rep.shards.iter().enumerate() {
        assert_eq!(s.report.jobs_total(), counts[i], "shard {i}");
    }
    assert_eq!(rep.merged.jobs_total(), jobs.len());
    let summed: usize = rep.shards.iter().map(|s| s.report.jobs_total()).sum();
    assert_eq!(summed, rep.merged.jobs_total());
}

#[test]
fn shard_fan_out_is_bitwise_deterministic_across_lane_counts() {
    let (jobs, end) = diurnal_workload();
    let quality = ExpQuality::new(0.003);
    let cfg = sim_cfg(&quality, end);
    let run_with = |threads: usize| {
        rayon::with_threads(threads, || {
            let engine = ClusterEngine::new(4).with_routing(RoutingPolicy::Jsq);
            engine.run(&cfg, &jobs, |_| Box::new(DesPolicy::new()))
        })
    };
    let lane1 = run_with(1);
    let lane4 = run_with(4);
    assert_reports_bitwise(&lane1.merged, &lane4.merged, "merged");
    for (a, b) in lane1.shards.iter().zip(lane4.shards.iter()) {
        assert_reports_bitwise(&a.report, &b.report, &format!("shard {}", a.shard));
    }
    // And run-to-run reproducibility at the same lane count.
    let again = run_with(4);
    assert_reports_bitwise(&lane4.merged, &again.merged, "repeat");
}

/// A tie-heavy stream: batches of 5 simultaneous arrivals (identical
/// release AND deadline) every 10 ms, distinct demands, ids assigned by
/// `label(batch, slot)`.
fn tie_batches(label: impl Fn(usize, usize) -> u32) -> JobSet {
    let mut jobs = Vec::new();
    for batch in 0..40 {
        let at = SimTime::from_millis(batch as u64 * 10);
        for slot in 0..5 {
            jobs.push(
                Job::new(
                    label(batch, slot),
                    at,
                    at + SimDuration::from_millis(150),
                    130.0 + (slot as f64) * 100.0,
                )
                .unwrap(),
            );
        }
    }
    JobSet::new(jobs).unwrap()
}

#[test]
fn jsq_tie_breaks_are_stable_under_job_id_permutation() {
    // Identity labeling vs reversed-within-batch labeling: the sorted
    // job streams present the same (release, deadline) sequence with
    // permuted id labels at tied positions.
    let a = tie_batches(|batch, slot| (batch * 5 + slot) as u32);
    let b = tie_batches(|batch, slot| (batch * 5 + (4 - slot)) as u32);
    assert_eq!(a.len(), b.len());
    for shards in [2usize, 3, 4] {
        let ra = route(&a, shards, &RoutingPolicy::Jsq, &MODEL);
        let rb = route(&b, shards, &RoutingPolicy::Jsq, &MODEL);
        assert_eq!(
            ra, rb,
            "JSQ decision stream changed under id relabeling ({shards} shards)"
        );
        // Determinism: repeated calls agree.
        assert_eq!(ra, route(&a, shards, &RoutingPolicy::Jsq, &MODEL));
    }
    // Round-robin is trivially id-blind too.
    assert_eq!(
        route(&a, 4, &RoutingPolicy::RoundRobin, &MODEL),
        route(&b, 4, &RoutingPolicy::RoundRobin, &MODEL)
    );
}

#[test]
fn split_seed_streams_are_disjoint() {
    // Distinct derived seeds AND disjoint StdRng prefixes: no draw of
    // shard i's stream appears in shard j's first 16 draws.
    let base = 42u64;
    let mut prefixes: Vec<Vec<u64>> = Vec::new();
    for lane in 0..8u64 {
        let mut rng = StdRng::seed_from_u64(split_seed(base, lane));
        prefixes.push((0..16).map(|_| rng.gen::<u64>()).collect());
    }
    for i in 0..prefixes.len() {
        for j in (i + 1)..prefixes.len() {
            assert!(
                prefixes[i].iter().all(|v| !prefixes[j].contains(v)),
                "lanes {i} and {j} share a draw"
            );
        }
    }
}

#[test]
fn reseeding_one_shard_leaves_the_others_bit_identical() {
    let (jobs, end) = diurnal_workload();
    let quality = ExpQuality::new(0.003);
    let cfg = sim_cfg(&quality, end);
    let base = 1u64;
    let meter = PowerMeter::default();
    let seeds_a: Vec<u64> = (0..4).map(|i| split_seed(base, i)).collect();
    let mut seeds_b = seeds_a.clone();
    seeds_b[1] = 0xDEAD_BEEF; // re-seed shard B (= index 1) only

    let run = |seeds: Vec<u64>| {
        ClusterEngine::new(4)
            .with_routing(RoutingPolicy::Jsq)
            .with_shard_seeds(seeds)
            .with_meter(meter.clone())
            .run(&cfg, &jobs, |_| Box::new(DesPolicy::new()))
    };
    let ra = run(seeds_a);
    let rb = run(seeds_b);

    // Reports never depend on the seed (metering is read-only).
    assert_reports_bitwise(&ra.merged, &rb.merged, "merged");
    for (i, (a, b)) in ra.shards.iter().zip(rb.shards.iter()).enumerate() {
        assert_reports_bitwise(&a.report, &b.report, &format!("shard {i}"));
        let (ea, eb) = (a.measured_energy.unwrap(), b.measured_energy.unwrap());
        if i == 1 {
            assert_ne!(ea.to_bits(), eb.to_bits(), "shard 1 meter must re-roll");
        } else {
            assert_eq!(
                ea.to_bits(),
                eb.to_bits(),
                "shard {i} meter perturbed by shard 1's seed"
            );
        }
    }
    // Metered totals exist and are within meter noise of the merged
    // dynamic energy (2 % overhead + sampling error).
    let measured = ra.measured_energy().unwrap();
    let exact = ra.merged.energy_joules;
    assert!(
        (measured - exact).abs() / exact.max(1.0) < 0.10,
        "measured {measured} vs exact {exact}"
    );
}

fn routing_matrix() -> [RoutingPolicy; 4] {
    [
        RoutingPolicy::RoundRobin,
        RoutingPolicy::Jsq,
        RoutingPolicy::LeastEnergy,
        RoutingPolicy::Feedback,
    ]
}

/// A hand-built plan with real impact on an 8-second run: shard 0
/// crashes mid-run, shard 1 browns out to 40 % capacity for a stretch.
fn crashy_plan() -> FaultPlan {
    FaultPlan::none(4)
        .with_window(
            0,
            FaultWindow {
                start: SimTime::from_secs(2),
                end: SimTime::from_secs(5),
                kind: FaultKind::Crash,
            },
        )
        .with_window(
            1,
            FaultWindow {
                start: SimTime::from_secs(3),
                end: SimTime::from_secs(6),
                kind: FaultKind::Brownout { loss: 0.6 },
            },
        )
}

#[test]
fn zero_fault_plan_is_bitwise_identical_to_fault_free_path() {
    let (jobs, end) = workload();
    let quality = ExpQuality::new(0.003);
    let cfg = sim_cfg(&quality, end);
    for routing in routing_matrix() {
        let plain = ClusterEngine::new(4)
            .with_routing(routing.clone())
            .run(&cfg, &jobs, |_| Box::new(DesPolicy::new()));
        let faultless = ClusterEngine::new(4)
            .with_routing(routing.clone())
            .with_fault_plan(FaultPlan::none(4))
            .run(&cfg, &jobs, |_| Box::new(DesPolicy::new()));
        let ctx = routing.label();
        assert_reports_bitwise(&plain.merged, &faultless.merged, ctx);
        for (a, b) in plain.shards.iter().zip(faultless.shards.iter()) {
            assert_reports_bitwise(&a.report, &b.report, &format!("{ctx}/shard {}", a.shard));
        }
        assert_eq!(faultless.jobs_dropped, 0, "{ctx}");
        assert_eq!(faultless.jobs_retried, 0, "{ctx}");
        assert_eq!(faultless.dropped_max_quality, 0.0, "{ctx}");
        assert_eq!(
            faultless.degraded_quality().to_bits(),
            faultless.merged.normalized_quality().to_bits(),
            "{ctx}: degraded quality must collapse to normalized quality"
        );
    }
}

#[test]
fn seeded_fault_run_is_bitwise_reproducible_across_lane_counts() {
    let (jobs, end) = diurnal_workload();
    let quality = ExpQuality::new(0.003);
    let cfg = sim_cfg(&quality, end);
    let plan = FaultPlan::seeded(4, SimTime::from_secs(end), 99, 3.0, 1.0, 0.5);
    assert!(plan.has_faults(), "seeded plan drew no fault windows");
    // Same seed ⇒ same plan, window for window.
    assert_eq!(
        plan,
        FaultPlan::seeded(4, SimTime::from_secs(end), 99, 3.0, 1.0, 0.5)
    );

    let run_with = |threads: usize| {
        rayon::with_threads(threads, || {
            ClusterEngine::new(4)
                .with_routing(RoutingPolicy::Feedback)
                .with_fault_plan(plan.clone())
                .run(&cfg, &jobs, |_| Box::new(DesPolicy::new()))
        })
    };
    let lane1 = run_with(1);
    let lane4 = run_with(4);
    assert_reports_bitwise(&lane1.merged, &lane4.merged, "merged");
    for (a, b) in lane1.shards.iter().zip(lane4.shards.iter()) {
        assert_reports_bitwise(&a.report, &b.report, &format!("shard {}", a.shard));
    }
    assert_eq!(lane1.jobs_dropped, lane4.jobs_dropped);
    assert_eq!(lane1.jobs_retried, lane4.jobs_retried);
    assert_eq!(
        lane1.dropped_max_quality.to_bits(),
        lane4.dropped_max_quality.to_bits()
    );
    // Run-to-run reproducibility at the same lane count.
    let again = run_with(4);
    assert_reports_bitwise(&lane4.merged, &again.merged, "repeat");
    assert_eq!(lane4.jobs_dropped, again.jobs_dropped);
    assert_eq!(lane4.jobs_retried, again.jobs_retried);
}

#[test]
fn faulted_runs_conserve_jobs_and_surface_drops_and_retries() {
    let (jobs, end) = workload();
    let quality = ExpQuality::new(0.003);
    let cfg = sim_cfg(&quality, end);
    let plan = crashy_plan();
    for routing in routing_matrix() {
        let rep = ClusterEngine::new(4)
            .with_routing(routing.clone())
            .with_fault_plan(plan.clone())
            .run(&cfg, &jobs, |_| Box::new(DesPolicy::new()));
        let ctx = routing.label();
        // Conservation: simulated + dropped = arrivals.
        assert_eq!(
            rep.merged.jobs_total() as u64 + rep.jobs_dropped,
            jobs.len() as u64,
            "{ctx}"
        );
        // The crash strands in-flight work: the retry path must fire.
        assert!(rep.jobs_retried > 0, "{ctx}: no stranded job was retried");
        // With three survivors nothing should be unroutable.
        assert_eq!(rep.jobs_dropped, 0, "{ctx}");
        // Degraded quality stays a valid ratio.
        let dq = rep.degraded_quality();
        assert!((0.0..=1.0).contains(&dq), "{ctx}: degraded quality {dq}");
    }
}

#[test]
fn fault_dispatch_never_targets_a_crashed_shard() {
    let (jobs, _) = workload();
    let plan = crashy_plan();
    for routing in routing_matrix() {
        let d = dispatch_with_faults(&jobs, 4, &routing, &MODEL, &plan, SimTime::from_secs(10));
        let ctx = routing.label();
        for (job, &s) in jobs.iter().zip(&d.assignment) {
            if s == u32::MAX {
                continue;
            }
            assert!(
                !plan.is_crashed(s as usize, job.release),
                "{ctx}: job {} released at {:?} routed to crashed shard {s}",
                job.id.0,
                job.release
            );
        }
        // Retried jobs land on live shards only: every job in shard 0's
        // final stream must release outside its crash window.
        for j in d.shard_jobs[0].iter() {
            assert!(!plan.is_crashed(0, j.release), "{ctx}: job {}", j.id.0);
        }
        // Conservation at the dispatch level.
        let routed: usize = d.shard_jobs.iter().map(|s| s.len()).sum();
        assert_eq!(routed + d.dropped.len(), jobs.len(), "{ctx}");
    }
}

#[test]
fn traced_faulted_run_is_bitwise_identical_and_emits_fault_events() {
    use qes::core::TraceObserver;
    let (jobs, end) = workload();
    let quality = ExpQuality::new(0.003);
    let cfg = sim_cfg(&quality, end);
    let engine = ClusterEngine::new(4)
        .with_routing(RoutingPolicy::Feedback)
        .with_fault_plan(crashy_plan());
    let make_policy =
        |_: usize| Box::new(DesPolicy::new()) as Box<dyn qes::multicore::SchedulingPolicy>;

    let plain = engine.run(&cfg, &jobs, make_policy);
    let (traced, observers) =
        engine.run_observed(&cfg, &jobs, make_policy, |_| TraceObserver::new());
    assert_reports_bitwise(&plain.merged, &traced.merged, "observer must be passive");
    assert_eq!(plain.jobs_dropped, traced.jobs_dropped);
    assert_eq!(plain.jobs_retried, traced.jobs_retried);

    // Shard 0 (crash) and shard 1 (brownout) must bracket their outages
    // with down/up events; the crash must report its stranded jobs.
    let count = |i: usize, pred: &dyn Fn(&Event) -> bool| {
        observers[i]
            .events()
            .iter()
            .filter(|(_, e)| pred(e))
            .count()
    };
    assert_eq!(count(0, &|e| matches!(e, Event::ShardDown { .. })), 1);
    assert_eq!(count(0, &|e| matches!(e, Event::ShardUp { .. })), 1);
    assert_eq!(count(1, &|e| matches!(e, Event::ShardDown { .. })), 1);
    assert_eq!(count(1, &|e| matches!(e, Event::ShardUp { .. })), 1);
    let redispatched = count(0, &|e| matches!(e, Event::Redispatch { .. }));
    assert_eq!(
        redispatched as u64,
        traced.jobs_retried + traced.jobs_dropped
    );
    // Healthy shards emit no fault events.
    for i in [2usize, 3] {
        assert_eq!(
            count(i, &|e| matches!(
                e,
                Event::ShardDown { .. } | Event::ShardUp { .. } | Event::Redispatch { .. }
            )),
            0,
            "shard {i}"
        );
    }
    // Per-shard event timestamps stay non-decreasing across epoch
    // boundaries (the offset re-basing must not fold time backwards).
    for (i, obs) in observers.iter().enumerate() {
        let mut last = SimTime::ZERO;
        for (t, e) in obs.events() {
            assert!(t >= last, "shard {i}: time went backwards at {e:?}");
            last = t;
        }
    }
}

// ---------------------------------------------------------------------
// Overload-protection layer (DESIGN.md §11). Test names carry the
// `overload` prefix so CI can run the suite with a single filter.
// ---------------------------------------------------------------------

#[test]
fn overload_default_policy_is_bitwise_identical_across_matrix() {
    // The degenerate OverloadPolicy (accept all, unbudgeted fixed-delay
    // retries, no hedging) must reproduce the pre-overload cluster path
    // to the bit — ⟨quality, energy, max-quality⟩ and every counter —
    // across {routing} × {no faults, crashy plan}.
    let (jobs, end) = workload();
    let quality = ExpQuality::new(0.003);
    let cfg = sim_cfg(&quality, end);
    for plan in [FaultPlan::none(4), crashy_plan()] {
        for routing in routing_matrix() {
            let plain = ClusterEngine::new(4)
                .with_routing(routing.clone())
                .with_fault_plan(plan.clone())
                .run(&cfg, &jobs, |_| Box::new(DesPolicy::new()));
            let protected = ClusterEngine::new(4)
                .with_routing(routing.clone())
                .with_fault_plan(plan.clone())
                .with_overload(OverloadPolicy::default())
                .run(&cfg, &jobs, |_| Box::new(DesPolicy::new()));
            let ctx = format!(
                "{}/{}",
                routing.label(),
                if plan.has_faults() {
                    "faulted"
                } else {
                    "clean"
                }
            );
            assert_reports_bitwise(&plain.merged, &protected.merged, &ctx);
            for (a, b) in plain.shards.iter().zip(protected.shards.iter()) {
                assert_reports_bitwise(&a.report, &b.report, &format!("{ctx}/shard {}", a.shard));
            }
            assert_eq!(plain.jobs_dropped, protected.jobs_dropped, "{ctx}");
            assert_eq!(plain.jobs_retried, protected.jobs_retried, "{ctx}");
            assert_eq!(
                plain.dropped_max_quality.to_bits(),
                protected.dropped_max_quality.to_bits(),
                "{ctx}"
            );
            // The new classes stay structurally empty.
            assert_eq!(protected.jobs_rejected, 0, "{ctx}");
            assert_eq!(protected.jobs_hedged, 0, "{ctx}");
            assert_eq!(protected.hedges_won, 0, "{ctx}");
            assert_eq!(protected.rejected_max_quality, 0.0, "{ctx}");
        }
    }
}

#[test]
fn overload_active_run_is_bitwise_reproducible_across_lane_counts() {
    // All three mechanisms live (slack-floor admission, budgeted
    // exponential backoff with seeded jitter, hedging) under a seeded
    // fault plan: 1 lane vs 4 lanes and repeat runs must agree to the
    // bit, counters included.
    let (jobs, end) = diurnal_workload();
    let quality = ExpQuality::new(0.003);
    let cfg = sim_cfg(&quality, end);
    let plan = FaultPlan::seeded(4, SimTime::from_secs(end), 99, 3.0, 1.0, 0.5);
    let overload = OverloadPolicy {
        admission: AdmissionPolicy::SlackFloor {
            floor: 0.05,
            capacity_ghz: CORES as f64 * 2.5,
        },
        retry: RetryPolicy::exponential(3, SimDuration::from_millis(5)).with_jitter(0.25, 17),
        hedge: HedgePolicy::SlackFraction { fraction: 0.5 },
    };
    let run_with = |threads: usize| {
        rayon::with_threads(threads, || {
            ClusterEngine::new(4)
                .with_routing(RoutingPolicy::Feedback)
                .with_fault_plan(plan.clone())
                .with_overload(overload.clone())
                .run(&cfg, &jobs, |_| Box::new(DesPolicy::new()))
        })
    };
    let lane1 = run_with(1);
    let lane4 = run_with(4);
    assert_reports_bitwise(&lane1.merged, &lane4.merged, "merged");
    for (a, b) in lane1.shards.iter().zip(lane4.shards.iter()) {
        assert_reports_bitwise(&a.report, &b.report, &format!("shard {}", a.shard));
    }
    {
        let (a, b) = (&lane1, &lane4);
        assert_eq!(a.jobs_dropped, b.jobs_dropped);
        assert_eq!(a.jobs_retried, b.jobs_retried);
        assert_eq!(a.jobs_rejected, b.jobs_rejected);
        assert_eq!(a.jobs_hedged, b.jobs_hedged);
        assert_eq!(a.hedges_won, b.hedges_won);
        assert_eq!(
            a.rejected_max_quality.to_bits(),
            b.rejected_max_quality.to_bits()
        );
        assert_eq!(
            a.dropped_max_quality.to_bits(),
            b.dropped_max_quality.to_bits()
        );
    }
    // Run-to-run reproducibility at the same lane count.
    let again = run_with(4);
    assert_reports_bitwise(&lane4.merged, &again.merged, "repeat");
    assert_eq!(lane4.jobs_rejected, again.jobs_rejected);
    assert_eq!(lane4.jobs_hedged, again.jobs_hedged);
    assert_eq!(lane4.hedges_won, again.hedges_won);
    // Conservation with every mechanism live: delivered + dropped +
    // rejected = arrivals (hedge duels settle first-wins, so they never
    // double-count).
    assert_eq!(
        lane4.merged.jobs_total() as u64 + lane4.jobs_dropped + lane4.jobs_rejected,
        jobs.len() as u64
    );
}

#[test]
fn overload_hedging_settles_duels_first_wins_and_conserves() {
    let (jobs, end) = diurnal_workload();
    let quality = ExpQuality::new(0.003);
    let cfg = sim_cfg(&quality, end);
    let plain = ClusterEngine::new(4)
        .with_routing(RoutingPolicy::Jsq)
        .run(&cfg, &jobs, |_| Box::new(DesPolicy::new()));
    let hedged = ClusterEngine::new(4)
        .with_routing(RoutingPolicy::Jsq)
        .with_hedging(HedgePolicy::SlackFraction { fraction: 0.25 })
        .run(&cfg, &jobs, |_| Box::new(DesPolicy::new()));

    assert!(hedged.jobs_hedged > 0, "no hedge fired on a loaded run");
    assert!(hedged.hedges_won <= hedged.jobs_hedged);
    // First-wins dedup: every arrival is delivered exactly once even
    // though duelling copies were simulated twice.
    assert_eq!(plain.merged.jobs_total(), jobs.len());
    assert_eq!(hedged.merged.jobs_total(), jobs.len());
    // The loser copies' work is real: hedging can only add energy.
    assert!(
        hedged.merged.energy_joules >= plain.merged.energy_joules,
        "hedging lowered energy: {} < {}",
        hedged.merged.energy_joules,
        plain.merged.energy_joules
    );
    // The delivered job population is identical, so the max-quality
    // mass must agree up to summation order.
    let rel = (hedged.merged.max_quality - plain.merged.max_quality).abs()
        / plain.merged.max_quality.max(1.0);
    assert!(rel < 1e-9, "max-quality mass drifted by {rel}");
    let dq = hedged.degraded_quality();
    assert!((0.0..=1.0).contains(&dq), "degraded quality {dq}");
}

#[test]
fn overload_admission_rejection_is_a_class_distinct_from_drops() {
    let (jobs, end) = diurnal_workload();
    let quality = ExpQuality::new(0.003);
    let cfg = sim_cfg(&quality, end);
    let rep = ClusterEngine::new(4)
        .with_routing(RoutingPolicy::Feedback)
        .with_admission(AdmissionPolicy::Backpressure {
            cap: 300.0,
            resume: 150.0,
        })
        .run(&cfg, &jobs, |_| Box::new(DesPolicy::new()));
    assert!(rep.jobs_rejected > 0, "backpressure never tripped");
    assert_eq!(rep.jobs_dropped, 0, "rejects must not masquerade as drops");
    assert_eq!(
        rep.merged.jobs_total() as u64 + rep.jobs_rejected,
        jobs.len() as u64,
        "conservation with rejection"
    );
    assert!(rep.rejected_max_quality > 0.0);
    // Rejection widens the degraded-quality denominator; it can never
    // *raise* the delivered-quality ratio above the simulated one.
    assert!(rep.degraded_quality() <= rep.merged.normalized_quality());
    assert!(rep.degraded_quality().is_finite());
}

#[test]
fn overload_zero_arrival_run_has_nan_free_degraded_quality() {
    // Regression for the zero-arrival guard: an empty stream must
    // produce a clean report (degraded quality 1.0, not 0/0 = NaN) on
    // both the plain and the admission-screened paths.
    let quality = ExpQuality::new(0.003);
    let cfg = sim_cfg(&quality, 2);
    let jobs = JobSet::new(Vec::new()).unwrap();
    for engine in [
        ClusterEngine::new(3),
        ClusterEngine::new(3).with_admission(AdmissionPolicy::Backpressure {
            cap: 1.0,
            resume: 0.5,
        }),
    ] {
        let rep = engine.run(&cfg, &jobs, |_| Box::new(DesPolicy::new()));
        assert_eq!(rep.merged.jobs_total(), 0);
        let dq = rep.degraded_quality();
        assert!(dq.is_finite(), "degraded quality must be NaN-free");
        assert_eq!(dq, 1.0);
        assert_eq!(rep.jobs_rejected, 0);
    }
}

#[test]
fn overload_retry_on_crash_boundary_respects_tie_order() {
    // Retry re-releases landing exactly on crash boundaries, end to
    // end: shard 0's crash ends at exactly 45 ms and shard 1's crash
    // *starts* at exactly 45 ms — the instant job 0's retry fires.
    // Half-open windows make shard 0 eligible again and shard 1
    // ineligible at that instant, and the crash event processes before
    // the simultaneous retry (tie order crash → retry), stranding
    // shard 1's job before the retry routes.
    let jobs = JobSet::new(vec![
        Job::new(0, SimTime::ZERO, SimTime::from_millis(150), 100.0).unwrap(),
        Job::new(1, SimTime::from_millis(5), SimTime::from_millis(155), 100.0).unwrap(),
    ])
    .unwrap();
    let plan = FaultPlan::none(2)
        .with_window(
            0,
            FaultWindow {
                start: SimTime::from_millis(40),
                end: SimTime::from_millis(45),
                kind: FaultKind::Crash,
            },
        )
        .with_window(
            1,
            FaultWindow {
                start: SimTime::from_millis(45),
                end: SimTime::from_millis(70),
                kind: FaultKind::Crash,
            },
        )
        .with_retry_delay(SimDuration::from_millis(5));
    let d = dispatch_with_faults(
        &jobs,
        2,
        &RoutingPolicy::RoundRobin,
        &MODEL,
        &plan,
        SimTime::from_secs(1),
    );
    // Round-robin: job 0 -> shard 0, job 1 -> shard 1. Both strand.
    assert_eq!(d.assignment, vec![0, 1]);
    assert_eq!(d.redispatches.len(), 2);
    assert_eq!(d.retried, 2);
    assert!(d.dropped.is_empty());
    // Job 0's retry fires at exactly 45 ms: shard 1 just crashed
    // (ineligible at its half-open start), shard 0 just recovered
    // (eligible at its half-open end) -> shard 0 gets it back.
    let s0: Vec<_> = d.shard_jobs[0].iter().collect();
    assert!(
        s0.iter()
            .any(|j| j.id.0 == 0 && j.release == SimTime::from_millis(45)),
        "job 0's retry must land on shard 0 at the exact boundary"
    );
    // Job 1 stranded at 45 ms retries at 50 ms; shard 1 is still down,
    // so it fails over to shard 0 too.
    assert!(
        s0.iter()
            .any(|j| j.id.0 == 1 && j.release == SimTime::from_millis(50)),
        "job 1's retry must fail over to shard 0"
    );
    assert_eq!(d.shard_jobs[1].len(), 0);
}

#[test]
fn overload_retry_exactly_on_horizon_is_kept_one_past_is_dropped() {
    // A re-release landing exactly *on* the horizon is still routed
    // (the engine screens it like any at-horizon arrival); one
    // microsecond past the horizon it is dropped.
    let jobs = JobSet::new(vec![Job::new(
        0,
        SimTime::ZERO,
        SimTime::from_millis(150),
        100.0,
    )
    .unwrap()])
    .unwrap();
    let mk_plan = || {
        FaultPlan::none(2)
            .with_window(
                0,
                FaultWindow {
                    start: SimTime::from_millis(40),
                    end: SimTime::from_millis(60),
                    kind: FaultKind::Crash,
                },
            )
            .with_retry_delay(SimDuration::from_millis(10))
    };
    // Horizon exactly at the 50 ms re-release: kept.
    let kept = dispatch_with_faults(
        &jobs,
        2,
        &RoutingPolicy::RoundRobin,
        &MODEL,
        &mk_plan(),
        SimTime::from_millis(50),
    );
    assert_eq!(kept.retried, 1);
    assert!(kept.dropped.is_empty());
    assert!(kept.shard_jobs[1]
        .iter()
        .any(|j| j.id.0 == 0 && j.release == SimTime::from_millis(50)));
    // Horizon one microsecond earlier: the same re-release overshoots
    // and the job is dropped instead.
    let dropped = dispatch_with_faults(
        &jobs,
        2,
        &RoutingPolicy::RoundRobin,
        &MODEL,
        &mk_plan(),
        SimTime::from_millis(50) - SimDuration::from_micros(1),
    );
    assert_eq!(dropped.retried, 0);
    assert_eq!(dropped.dropped.len(), 1);
    assert_eq!(dropped.shard_jobs.iter().map(|s| s.len()).sum::<usize>(), 0);
}

#[test]
fn overload_retry_tying_with_an_arrival_processes_the_arrival_first() {
    // Tie order arrival → retry, observed through the round-robin
    // cursor: at 20 ms an original arrival and job 0's retry fire
    // simultaneously. The arrival must consume the cursor first
    // (landing on shard 0), pushing the retry to shard 1. If the order
    // flipped, the assignments would swap.
    let jobs = JobSet::new(vec![
        Job::new(0, SimTime::ZERO, SimTime::from_millis(150), 100.0).unwrap(),
        Job::new(1, SimTime::ZERO, SimTime::from_millis(150), 100.0).unwrap(),
        Job::new(2, SimTime::ZERO, SimTime::from_millis(150), 100.0).unwrap(),
        Job::new(
            3,
            SimTime::from_millis(20),
            SimTime::from_millis(170),
            100.0,
        )
        .unwrap(),
    ])
    .unwrap();
    let plan = FaultPlan::none(3)
        .with_window(
            0,
            FaultWindow {
                start: SimTime::from_millis(10),
                end: SimTime::from_millis(15),
                kind: FaultKind::Crash,
            },
        )
        .with_retry_delay(SimDuration::from_millis(10));
    let d = dispatch_with_faults(
        &jobs,
        3,
        &RoutingPolicy::RoundRobin,
        &MODEL,
        &plan,
        SimTime::from_secs(1),
    );
    // Originals cycle 0,1,2; the crash at 10 ms strands only job 0.
    // At 20 ms: arrival of job 3 takes the cursor (shard 0, healthy
    // again), then job 0's retry takes shard 1.
    assert_eq!(d.assignment, vec![0, 1, 2, 0]);
    assert_eq!(d.retried, 1);
    assert!(d.shard_jobs[1]
        .iter()
        .any(|j| j.id.0 == 0 && j.release == SimTime::from_millis(20)));
}

#[test]
fn least_energy_routing_conserves_and_differs_from_round_robin() {
    // Sanity on the power-aware route: still a partition of the stream,
    // and under bursty diurnal load it must actually exercise its probe
    // (different decisions than blind round-robin).
    let (jobs, _) = diurnal_workload();
    let shards = 4;
    let le = route(&jobs, shards, &RoutingPolicy::LeastEnergy, &MODEL);
    assert_eq!(le.len(), jobs.len());
    assert!(le.iter().all(|&s| (s as usize) < shards));
    let rr = route(&jobs, shards, &RoutingPolicy::RoundRobin, &MODEL);
    assert_ne!(le, rr, "least-energy degenerated to round-robin");
}
