//! Second property-test suite: discrete rectification, trace round-trips,
//! Gantt robustness, the modulated arrival process, and the piecewise
//! quality validator — the components the first suite doesn't reach.

use proptest::prelude::*;

use qes::core::{
    render_gantt, CoreSchedule, DiscreteSpeedSet, GanttOptions, Job, JobSet,
    PiecewiseLinearQuality, PolynomialPower, PowerModel, QualityFunction, Schedule, SimDuration,
    SimTime, Slice,
};
use qes::multicore::discrete::{rectify_speeds, snap_plan_up};
use qes::workload::{from_csv, sample_modulated, to_csv, DiurnalRate};

const MODEL: PolynomialPower = PolynomialPower::PAPER_SIM;

fn arb_ladder() -> impl Strategy<Value = DiscreteSpeedSet> {
    proptest::collection::btree_set(1u32..40, 1..8).prop_map(|speeds| {
        let speeds: Vec<f64> = speeds.into_iter().map(|s| s as f64 * 0.1).collect();
        DiscreteSpeedSet::from_model(&MODEL, &speeds).unwrap()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    // ---- §V-F rectification ----

    #[test]
    fn rectified_power_never_exceeds_budget(
        grants in proptest::collection::vec(0.0f64..50.0, 1..20),
        slack in 0.0f64..100.0,
        ladder in arb_ladder(),
    ) {
        let granted: f64 = grants.iter().sum();
        let budget = granted + slack;
        let speeds = rectify_speeds(&grants, &ladder, &MODEL, budget);
        let total: f64 = speeds.iter().map(|&s| MODEL.dynamic_power(s)).sum();
        prop_assert!(total <= budget + 1e-6, "total {} > budget {}", total, budget);
        // Every chosen speed is on the ladder (or zero).
        for &s in &speeds {
            prop_assert!(
                s == 0.0 || ladder.speeds().iter().any(|&l| (l - s).abs() < 1e-9),
                "speed {} off ladder", s
            );
        }
    }

    #[test]
    fn snap_preserves_volume_for_in_range_slices(
        speeds in proptest::collection::vec(0.1f64..3.9, 1..10),
        ladder in arb_ladder(),
    ) {
        // Build sequential slices at the given speeds.
        let mut slices = Vec::new();
        let mut t = 0u64;
        for (i, &sp) in speeds.iter().enumerate() {
            slices.push(Slice {
                job: qes::core::JobId(i as u32),
                start: SimTime::from_millis(t),
                end: SimTime::from_millis(t + 50),
                speed: sp,
            });
            t += 60;
        }
        let plan = CoreSchedule::new(slices);
        let before = plan.volumes();
        let snapped = snap_plan_up(&plan, &ladder);
        let after = snapped.volumes();
        let max = ladder.max_speed();
        for (id, v) in &before {
            let got = after.get(id).copied().unwrap_or(0.0);
            let orig_speed = plan.slices().iter().find(|s| s.job == *id).unwrap().speed;
            if orig_speed <= max + 1e-9 {
                // In range: volume preserved within µs rounding.
                prop_assert!((got - v).abs() < 0.15, "{:?}: {} vs {}", id, got, v);
            } else {
                // Above the ceiling: clamped, volume can only shrink.
                prop_assert!(got <= v + 1e-9);
            }
        }
    }

    // ---- workload trace round-trip ----

    #[test]
    fn trace_csv_roundtrip(specs in proptest::collection::vec(
        (0u64..5000, 1u64..2000, 0.5f64..999.0, proptest::bool::ANY), 0..40)
    ) {
        let jobs: Vec<Job> = specs
            .iter()
            .enumerate()
            .map(|(i, &(rel, _, w, partial))| {
                let release = SimTime::from_micros(rel * 100);
                Job::with_partial(
                    i as u32,
                    release,
                    release + SimDuration::from_millis(150),
                    w,
                    partial,
                )
                .unwrap()
            })
            .collect();
        let set = JobSet::new(jobs).unwrap();
        let back = from_csv(&to_csv(&set)).unwrap();
        prop_assert_eq!(set.len(), back.len());
        for (a, b) in set.iter().zip(back.iter()) {
            prop_assert_eq!(a, b);
        }
    }

    // ---- Gantt never panics, always well-formed ----

    #[test]
    fn gantt_renders_any_valid_schedule(
        slices in proptest::collection::vec((0usize..4, 0u32..20, 0u64..500, 1u64..100, 0.1f64..5.0), 0..30),
        width in 1usize..120,
    ) {
        let mut cores: Vec<Vec<Slice>> = vec![Vec::new(); 4];
        let mut t_next = [0u64; 4];
        for &(core, job, gap, len, speed) in &slices {
            let start = t_next[core] + gap;
            let end = start + len;
            t_next[core] = end;
            cores[core].push(Slice {
                job: qes::core::JobId(job),
                start: SimTime::from_millis(start),
                end: SimTime::from_millis(end),
                speed,
            });
        }
        let sched = Schedule::new(cores.into_iter().map(CoreSchedule::new).collect());
        let opt = GanttOptions { width, show_speeds: true };
        let g = render_gantt(&sched, SimTime::ZERO, SimTime::from_millis(700), &opt);
        // 4 cores × 2 rows + axis.
        prop_assert_eq!(g.lines().count(), 9);
        for line in g.lines().take(8) {
            let body = line.split('|').nth(1).unwrap_or("");
            prop_assert_eq!(body.chars().count(), width);
        }
    }

    // ---- modulated arrivals ----

    #[test]
    fn modulated_rate_never_exceeds_peak_statistically(
        base in 20.0f64..150.0,
        amp in 0.0f64..100.0,
    ) {
        use rand::SeedableRng;
        let p = DiurnalRate { base, amp, period_secs: 30.0 };
        let horizon = SimTime::from_secs(30);
        let mut rng = rand::rngs::StdRng::seed_from_u64(9);
        let arr = sample_modulated(&p, &mut rng, horizon);
        prop_assert!(arr.windows(2).all(|w| w[0] <= w[1]));
        // Mean observed rate can't exceed the peak (law of the process).
        let rate = arr.len() as f64 / 30.0;
        prop_assert!(rate < (base + amp) * 1.25, "rate {} vs peak {}", rate, base + amp);
    }

    // ---- quantile degeneracy (satellite of the observability PR) ----

    #[test]
    fn quantiles_of_degenerate_populations_are_bit_exact(
        value in -1e9f64..1e9,
        copies in 1usize..12,
        p in 0.0f64..1.0,
    ) {
        use qes::sim::{DetailedStats, JobOutcome};
        // A population of n identical samples: every quantile must return
        // the sample itself, bit-for-bit (no self-interpolation).
        let mut s = DetailedStats::new(1, SimTime::from_secs(1));
        for i in 0..copies {
            s.record(JobOutcome {
                id: qes::core::JobId(i as u32),
                release: SimTime::ZERO,
                settled: SimTime::from_millis(10),
                processed: 50.0,
                demand: 100.0,
                quality: value,
            });
        }
        let q = s.quality_quantile(p).unwrap();
        prop_assert_eq!(q.to_bits(), value.to_bits());
        // And the multi-quantile path agrees with the single getter.
        let many = s.quality_quantiles(&[0.0, p, 1.0]).unwrap();
        prop_assert_eq!(many[1].to_bits(), q.to_bits());
    }

    #[test]
    fn multi_quantile_bit_equals_single_getters(
        qualities in proptest::collection::vec(-100.0f64..100.0, 1..20),
        ps in proptest::collection::vec(0.0f64..1.0, 1..8),
    ) {
        use qes::sim::{DetailedStats, JobOutcome};
        let mut s = DetailedStats::new(1, SimTime::from_secs(1));
        for (i, &q) in qualities.iter().enumerate() {
            // Duplicate every other sample to exercise equal-neighbour
            // interpolation positions.
            for _ in 0..(1 + i % 2) {
                s.record(JobOutcome {
                    id: qes::core::JobId(i as u32),
                    release: SimTime::ZERO,
                    settled: SimTime::from_millis(10),
                    processed: 50.0,
                    demand: 100.0,
                    quality: q,
                });
            }
        }
        let many = s.quality_quantiles(&ps).unwrap();
        for (i, &p) in ps.iter().enumerate() {
            let one = s.quality_quantile(p).unwrap();
            prop_assert_eq!(many[i].to_bits(), one.to_bits(), "p = {}", p);
        }
    }

    // ---- piecewise quality validator ----

    #[test]
    fn random_concave_tables_validate_and_behave(
        increments in proptest::collection::vec((1.0f64..200.0, 0.0f64..0.5), 1..10)
    ) {
        // Build knots with non-increasing slopes by sorting slopes desc.
        let mut slopes: Vec<(f64, f64)> = increments;
        slopes.sort_by(|a, b| {
            (b.1 / b.0).partial_cmp(&(a.1 / a.0)).unwrap()
        });
        let mut knots = vec![(0.0, 0.0)];
        let (mut x, mut q) = (0.0, 0.0);
        for (dx, dq) in slopes {
            x += dx;
            q += dq;
            knots.push((x, q));
        }
        let f = PiecewiseLinearQuality::new(knots.clone());
        prop_assert!(f.is_ok(), "rejected {:?}", knots);
        let f = f.unwrap();
        // Non-decreasing on a sample grid.
        let mut prev = -1.0;
        for i in 0..50 {
            let v = f.value(x * i as f64 / 49.0);
            prop_assert!(v + 1e-9 >= prev);
            prev = v;
        }
    }
}

#[test]
fn snap_respects_power_model_consistency() {
    // Deterministic sanity companion to the proptest: snapping at the
    // Opteron ladder at exactly ladder speeds changes nothing.
    let ladder = DiscreteSpeedSet::opteron_2380();
    let plan = CoreSchedule::new(vec![Slice {
        job: qes::core::JobId(0),
        start: SimTime::ZERO,
        end: SimTime::from_millis(100),
        speed: 1.3,
    }]);
    let snapped = snap_plan_up(&plan, &ladder);
    assert_eq!(snapped.slices(), plan.slices());
    let _ = MODEL.dynamic_power(1.3);
}
