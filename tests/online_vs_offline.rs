//! Online DES vs clairvoyant offline references: the myopia gap.
//!
//! `offline_crr_qe_opt` sees the whole future and solves each core
//! optimally (static power shares); DES sees only arrivals (dynamic WF
//! shares). Neither dominates by construction, but on the paper's
//! workload DES should stay close to the clairvoyant reference — and the
//! exhaustive assignment search on tiny instances bounds what any
//! assignment policy could add.

use qes::core::{ExpQuality, Job, JobSet, PolynomialPower, SimDuration, SimTime};
use qes::experiments::{run_policy, ExperimentConfig, PolicyKind};
use qes::multicore::{offline_best_assignment, offline_crr_qe_opt};

const MODEL: PolynomialPower = PolynomialPower::PAPER_SIM;
const Q: ExpQuality = ExpQuality::PAPER_DEFAULT;

#[test]
fn des_stays_close_to_clairvoyant_reference_at_moderate_load() {
    let cfg = ExperimentConfig::paper_default()
        .with_arrival_rate(140.0)
        .with_sim_seconds(10.0);
    let jobs = cfg.workload().generate(3).unwrap();

    // Online DES (simulated, sees only arrivals).
    let online = run_policy(&cfg, PolicyKind::Des, 3);

    // Clairvoyant per-core optimal on the same stream.
    let offline = offline_crr_qe_opt(&jobs, cfg.num_cores, &MODEL, cfg.budget, &Q);

    let gap = (offline.score.quality - online.total_quality) / offline.score.quality;
    assert!(
        gap < 0.05,
        "online quality {} trails clairvoyant {} by {:.1}%",
        online.total_quality,
        offline.score.quality,
        100.0 * gap
    );
}

#[test]
fn des_can_beat_static_share_clairvoyance_under_imbalance() {
    // A stream engineered for imbalance: alternating huge/tiny jobs means
    // static equal shares starve the hot cores the clairvoyant reference
    // is stuck with, while DES's WF borrows for them.
    let ms = SimTime::from_millis;
    let jobs = JobSet::new(
        (0..24u32)
            .map(|i| {
                let rel = ms(40 * i as u64);
                let w = if i % 4 == 0 { 800.0 } else { 40.0 };
                Job::new(i, rel, ms(40 * i as u64 + 150), w).unwrap()
            })
            .collect(),
    )
    .unwrap();
    let m = 4;
    let budget = 30.0;
    let offline = offline_crr_qe_opt(&jobs, m, &MODEL, budget, &Q);

    // Simulate DES over the same jobs.
    use qes::multicore::DesPolicy;
    use qes::sim::engine::{SimConfig, Simulator};
    let sim_cfg = SimConfig {
        num_cores: m,
        budget,
        model: &MODEL,
        quality: &Q,
        end: ms(1500),
        record_trace: false,
        overhead: SimDuration::ZERO,
    };
    let (report, _) = Simulator::run(&sim_cfg, &mut DesPolicy::new(), &jobs);

    // DES must land within a whisker of — and often above — the static
    // clairvoyant score on this shape.
    assert!(
        report.total_quality > 0.9 * offline.score.quality,
        "DES {} vs clairvoyant {}",
        report.total_quality,
        offline.score.quality
    );
}

#[test]
fn exhaustive_assignment_bounds_crr_loss_on_tiny_instances() {
    // On small random-ish instances the C-RR assignment should be within
    // a few percent of the best possible assignment.
    let ms = SimTime::from_millis;
    let cases: Vec<Vec<(u64, f64)>> = vec![
        vec![(0, 300.0), (0, 120.0), (10, 450.0), (15, 80.0), (20, 200.0)],
        vec![(0, 700.0), (5, 700.0), (10, 100.0), (15, 100.0)],
        vec![
            (0, 150.0),
            (2, 150.0),
            (4, 150.0),
            (6, 150.0),
            (8, 150.0),
            (10, 150.0),
        ],
    ];
    for (ci, case) in cases.iter().enumerate() {
        let jobs = JobSet::new(
            case.iter()
                .enumerate()
                .map(|(i, &(r, w))| Job::new(i as u32, ms(r), ms(r + 150), w).unwrap())
                .collect(),
        )
        .unwrap();
        let crr = offline_crr_qe_opt(&jobs, 2, &MODEL, 20.0, &Q);
        let best = offline_best_assignment(&jobs, 2, &MODEL, 20.0, &Q).unwrap();
        assert!(best.score.quality + 1e-9 >= crr.score.quality, "case {ci}");
        let loss = (best.score.quality - crr.score.quality) / best.score.quality.max(1e-9);
        assert!(
            loss < 0.10,
            "case {ci}: C-RR loses {:.1}% to the best assignment",
            100.0 * loss
        );
    }
}
