//! End-to-end simulation invariants across crates: every policy on the
//! paper's web-search workload must produce physically sensible,
//! deterministic, budget-respecting executions.

use qes::core::{PolynomialPower, PowerModel, SimTime};
use qes::experiments::{run_policy, run_policy_traced, ExperimentConfig, PolicyKind};

const ALL_POLICIES: [PolicyKind; 10] = [
    PolicyKind::Des,
    PolicyKind::DesSDvfs,
    PolicyKind::DesNoDvfs,
    PolicyKind::DesDiscrete,
    PolicyKind::Fcfs,
    PolicyKind::Ljf,
    PolicyKind::Sjf,
    PolicyKind::FcfsWf,
    PolicyKind::LjfWf,
    PolicyKind::SjfWf,
];

fn quick(rate: f64) -> ExperimentConfig {
    ExperimentConfig::paper_default()
        .with_arrival_rate(rate)
        .with_sim_seconds(8.0)
}

#[test]
fn every_policy_runs_and_reports_sane_metrics() {
    for kind in ALL_POLICIES {
        let r = run_policy(&quick(140.0), kind, 3);
        assert!(
            r.jobs_total() > 500,
            "{kind:?}: only {} jobs",
            r.jobs_total()
        );
        assert!(
            r.jobs_satisfied() + r.jobs_partial() + r.jobs_zero() == r.jobs_total(),
            "{kind:?}: job accounting mismatch"
        );
        let q = r.normalized_quality();
        assert!(q > 0.2 && q <= 1.0 + 1e-9, "{kind:?}: quality {q}");
        assert!(r.energy_joules > 0.0, "{kind:?}: zero energy");
        assert!(r.invocations() > 0, "{kind:?}: never invoked");
    }
}

#[test]
fn every_policy_is_deterministic() {
    for kind in ALL_POLICIES {
        let a = run_policy(&quick(120.0), kind, 9);
        let b = run_policy(&quick(120.0), kind, 9);
        assert_eq!(a.total_quality, b.total_quality, "{kind:?}");
        assert_eq!(a.energy_joules, b.energy_joules, "{kind:?}");
        assert_eq!(a.jobs_satisfied(), b.jobs_satisfied(), "{kind:?}");
        assert_eq!(a.invocations(), b.invocations(), "{kind:?}");
    }
}

#[test]
fn no_trace_slice_ever_violates_a_job_window() {
    for kind in [PolicyKind::Des, PolicyKind::Fcfs, PolicyKind::DesDiscrete] {
        let cfg = quick(200.0);
        let jobs = cfg.workload().generate(5).unwrap();
        let (_, trace) = run_policy_traced(&cfg, kind, 5);
        assert!(!trace.is_empty());
        for s in trace.slices() {
            let j = jobs
                .get(s.job)
                .unwrap_or_else(|| panic!("{kind:?}: unknown job"));
            assert!(s.start >= j.release, "{kind:?}: slice before release");
            assert!(s.end <= j.deadline, "{kind:?}: slice after deadline");
            assert!(s.speed > 0.0);
        }
    }
}

#[test]
fn non_migration_holds_in_every_trace() {
    for kind in [PolicyKind::Des, PolicyKind::FcfsWf, PolicyKind::DesSDvfs] {
        let (_, trace) = run_policy_traced(&quick(180.0), kind, 11);
        let mut home = std::collections::HashMap::new();
        for s in trace.slices() {
            let prev = home.insert(s.job, s.core);
            if let Some(c) = prev {
                assert_eq!(c, s.core, "{kind:?}: job {:?} migrated", s.job);
            }
        }
    }
}

#[test]
fn instantaneous_power_respects_budget_in_trace() {
    // Sweep the trace's event instants and check Σ per-core power ≤ H.
    for kind in [PolicyKind::Des, PolicyKind::DesDiscrete, PolicyKind::FcfsWf] {
        let cfg = quick(220.0);
        let (_, trace) = run_policy_traced(&cfg, kind, 13);
        let model = PolynomialPower::PAPER_SIM;
        // Collect boundaries.
        let mut instants: Vec<SimTime> = trace
            .slices()
            .iter()
            .flat_map(|s| [s.start, s.end])
            .collect();
        instants.sort();
        instants.dedup();
        // Per-core sorted slices for point queries.
        let mut per_core: Vec<Vec<(SimTime, SimTime, f64)>> = vec![Vec::new(); cfg.num_cores];
        for s in trace.slices() {
            per_core[s.core].push((s.start, s.end, s.speed));
        }
        for v in &mut per_core {
            v.sort_by_key(|&(a, _, _)| a);
        }
        for &t in instants.iter().step_by(7) {
            let total: f64 = per_core
                .iter()
                .map(|v| {
                    let i = v.partition_point(|&(_, e, _)| e <= t);
                    match v.get(i) {
                        Some(&(a, _, sp)) if a <= t => model.dynamic_power(sp),
                        _ => 0.0,
                    }
                })
                .sum();
            assert!(
                total <= cfg.budget + 1e-3,
                "{kind:?}: power {total} at {t} exceeds {}",
                cfg.budget
            );
        }
    }
}

#[test]
fn processed_volume_never_exceeds_demand() {
    for kind in [PolicyKind::Des, PolicyKind::Sjf, PolicyKind::DesNoDvfs] {
        let cfg = quick(160.0);
        let jobs = cfg.workload().generate(17).unwrap();
        let (_, trace) = run_policy_traced(&cfg, kind, 17);
        let mut vols = std::collections::HashMap::new();
        for s in trace.slices() {
            *vols.entry(s.job).or_insert(0.0) += s.volume();
        }
        for (id, v) in vols {
            let j = jobs.get(id).unwrap();
            assert!(
                v <= j.demand + 0.1,
                "{kind:?}: job {id:?} processed {v} > demand {}",
                j.demand
            );
        }
    }
}

#[test]
fn heavier_load_never_increases_quality() {
    for kind in [PolicyKind::Des, PolicyKind::Fcfs] {
        let mut prev = f64::INFINITY;
        for rate in [60.0, 120.0, 180.0, 240.0] {
            let r = run_policy(&quick(rate), kind, 23);
            let q = r.normalized_quality();
            assert!(
                q <= prev + 0.02,
                "{kind:?}: quality rose from {prev} to {q} at rate {rate}"
            );
            prev = q;
        }
    }
}

#[test]
fn des_quality_dominates_baselines_on_shared_streams() {
    // The paper's headline across a spread of loads, one stream each.
    for rate in [100.0, 160.0, 220.0] {
        let cfg = quick(rate);
        let des = run_policy(&cfg, PolicyKind::Des, 31).normalized_quality();
        for kind in [PolicyKind::Fcfs, PolicyKind::Ljf, PolicyKind::Sjf] {
            let base = run_policy(&cfg, kind, 31).normalized_quality();
            assert!(
                des + 0.01 >= base,
                "rate {rate}: DES {des} vs {kind:?} {base}"
            );
        }
    }
}

#[test]
fn zero_budget_system_does_nothing_gracefully() {
    let cfg = quick(100.0).with_budget(0.0);
    let r = run_policy(&cfg, PolicyKind::Des, 1);
    assert_eq!(r.jobs_satisfied(), 0);
    assert_eq!(r.energy_joules, 0.0);
    assert_eq!(r.total_quality, 0.0);
}

#[test]
fn single_core_system_works() {
    let cfg = quick(10.0).with_cores(1).with_budget(20.0);
    let r = run_policy(&cfg, PolicyKind::Des, 2);
    assert!(r.normalized_quality() > 0.5);
}
