//! The observability layer's core guarantee: observers are passive.
//!
//! A run with any observer attached — trace ring buffer, metrics
//! registry, or both via `Tee` — must be *bitwise identical* to the
//! untraced run on ⟨quality, energy⟩ and every integer counter. These
//! tests pin that across policies and recompute modes, and check the
//! exported artifacts (CSV trace, JSON metrics) are deterministic.

use qes::cluster::{ClusterEngine, RoutingPolicy};
use qes::core::obs::{Event, Tee};
use qes::core::{MetricsRegistry, TraceObserver};
use qes::experiments::{ExperimentConfig, PolicyKind};
use qes::multicore::{DesPolicy, RecomputeMode, SchedulingPolicy};
use qes::sim::{SimConfig, Simulator};

fn sim_cfg<'a>(cfg: &'a ExperimentConfig, quality: &'a qes::core::ExpQuality) -> SimConfig<'a> {
    SimConfig {
        num_cores: cfg.num_cores,
        budget: cfg.budget,
        model: &cfg.power,
        quality,
        end: qes::core::SimTime::from_secs_f64(cfg.sim_seconds),
        record_trace: false,
        overhead: qes::core::SimDuration::ZERO,
    }
}

#[test]
fn traced_run_is_bitwise_identical_to_untraced_across_policies() {
    let cfg = ExperimentConfig::quick()
        .with_sim_seconds(5.0)
        .with_arrival_rate(180.0)
        .with_cores(4)
        .with_budget(80.0);
    let jobs = cfg.workload().generate(11).unwrap();
    let quality = qes::core::ExpQuality::new(cfg.quality_c);
    let scfg = sim_cfg(&cfg, &quality);

    for kind in [
        PolicyKind::Des,
        PolicyKind::DesNoDvfs,
        PolicyKind::Fcfs,
        PolicyKind::SjfWf,
    ] {
        let mut plain_policy = kind.build(&cfg.power);
        let (plain, _) = Simulator::run(&scfg, plain_policy.as_mut(), &jobs);

        let mut traced_policy = kind.build(&cfg.power);
        let mut obs = Tee(TraceObserver::new(), MetricsRegistry::new());
        let (traced, _) = Simulator::run_observed(&scfg, traced_policy.as_mut(), &jobs, &mut obs);

        assert_eq!(
            plain.total_quality.to_bits(),
            traced.total_quality.to_bits(),
            "{kind:?}: quality bits"
        );
        assert_eq!(
            plain.energy_joules.to_bits(),
            traced.energy_joules.to_bits(),
            "{kind:?}: energy bits"
        );
        assert_eq!(
            plain.max_quality.to_bits(),
            traced.max_quality.to_bits(),
            "{kind:?}: max-quality bits"
        );
        assert_eq!(plain.counters, traced.counters, "{kind:?}: counters");
        assert!(!obs.0.is_empty(), "{kind:?}: trace captured nothing");
    }
}

#[test]
fn traced_run_is_bitwise_identical_across_recompute_modes() {
    let cfg = ExperimentConfig::quick()
        .with_sim_seconds(4.0)
        .with_arrival_rate(240.0) // overloaded: discards + WF squeezing
        .with_cores(4)
        .with_budget(60.0);
    let jobs = cfg.workload().generate(23).unwrap();
    let quality = qes::core::ExpQuality::new(cfg.quality_c);
    let scfg = sim_cfg(&cfg, &quality);

    for mode in [
        RecomputeMode::Full,
        RecomputeMode::Incremental,
        RecomputeMode::IncrementalQe,
    ] {
        let mut p = DesPolicy::new().with_recompute(mode);
        let (plain, _) = Simulator::run(&scfg, &mut p, &jobs);
        let mut p = DesPolicy::new().with_recompute(mode);
        let mut obs = TraceObserver::new();
        let (traced, _) = Simulator::run_observed(&scfg, &mut p, &jobs, &mut obs);
        assert_eq!(
            plain.total_quality.to_bits(),
            traced.total_quality.to_bits()
        );
        assert_eq!(
            plain.energy_joules.to_bits(),
            traced.energy_joules.to_bits()
        );
        assert_eq!(plain.counters, traced.counters, "{mode:?}");
    }
}

#[test]
fn registry_counters_reconcile_with_report() {
    let cfg = ExperimentConfig::quick()
        .with_sim_seconds(5.0)
        .with_arrival_rate(160.0)
        .with_cores(4)
        .with_budget(80.0);
    let jobs = cfg.workload().generate(5).unwrap();
    let quality = qes::core::ExpQuality::new(cfg.quality_c);
    let scfg = sim_cfg(&cfg, &quality);

    let mut p = DesPolicy::new();
    let mut reg = MetricsRegistry::new();
    let (report, _) = Simulator::run_observed(&scfg, &mut p, &jobs, &mut reg);

    // Engine-observer counters agree with the always-on report counters.
    assert_eq!(reg.counter("engine.invocations"), report.invocations());
    assert_eq!(
        reg.counter("engine.invocations_kept"),
        report.invocations_kept()
    );
    assert_eq!(
        reg.counter("engine.plan.installed"),
        report.counters.plans_installed
    );
    assert_eq!(reg.counter("engine.arrivals"), report.jobs_total() as u64);
    assert_eq!(
        reg.counter("engine.settle.satisfied"),
        report.jobs_satisfied() as u64
    );
    assert_eq!(
        reg.counter("engine.settle.partial") + reg.counter("engine.settle.zero"),
        (report.jobs_partial() + report.jobs_zero()) as u64
    );
    // The DES policy drained its internal counters through the boundary.
    assert!(reg.counter("des.triggers") > 0);
    assert_eq!(
        reg.counter("des.triggers"),
        report.counters.wakeups(),
        "every policy wakeup is a DES trigger"
    );
    // Merging the report gives one registry with both namespaces, and the
    // JSON export is deterministic.
    let mut merged = reg.clone();
    report.export_metrics(&mut merged);
    assert_eq!(merged.counter("sim.invocations"), report.invocations());
    let mut again = reg.clone();
    report.export_metrics(&mut again);
    assert_eq!(merged.to_json(), again.to_json());
}

#[test]
fn trace_csv_is_deterministic_and_well_formed() {
    let cfg = ExperimentConfig::quick()
        .with_sim_seconds(3.0)
        .with_arrival_rate(120.0)
        .with_cores(2)
        .with_budget(40.0);
    let jobs = cfg.workload().generate(3).unwrap();
    let quality = qes::core::ExpQuality::new(cfg.quality_c);
    let scfg = sim_cfg(&cfg, &quality);

    let run = || {
        let mut p = DesPolicy::new();
        let mut obs = TraceObserver::new();
        Simulator::run_observed(&scfg, &mut p, &jobs, &mut obs);
        obs
    };
    let a = run();
    let b = run();
    assert_eq!(a.to_csv("x"), b.to_csv("x"), "trace is not deterministic");

    // Schema: header first, every row parses back into the documented
    // four-column shape with a monotone integer timestamp.
    let csv = a.to_csv("x");
    let mut lines = csv.lines();
    assert!(lines.next().unwrap().starts_with("# trace x events="));
    assert_eq!(lines.next().unwrap(), TraceObserver::CSV_HEADER);
    let mut prev = 0u64;
    for row in lines {
        let cols: Vec<&str> = row.splitn(4, ',').collect();
        assert_eq!(cols.len(), 4, "row {row:?}");
        let t: u64 = cols[0].parse().expect("integer timestamp");
        assert!(t >= prev, "timestamps regress at {row:?}");
        prev = t;
        assert!(!cols[1].is_empty());
    }
}

#[test]
fn ring_buffer_keeps_the_tail_under_pressure() {
    let cfg = ExperimentConfig::quick()
        .with_sim_seconds(4.0)
        .with_arrival_rate(200.0)
        .with_cores(4)
        .with_budget(80.0);
    let jobs = cfg.workload().generate(9).unwrap();
    let quality = qes::core::ExpQuality::new(cfg.quality_c);
    let scfg = sim_cfg(&cfg, &quality);

    // A full-capacity reference run, then a tiny ring over the same run.
    let mut p = DesPolicy::new();
    let mut full = TraceObserver::new();
    let (ref_report, _) = Simulator::run_observed(&scfg, &mut p, &jobs, &mut full);
    assert_eq!(full.dropped(), 0, "reference run must fit the default ring");

    let mut p = DesPolicy::new();
    let mut tiny = TraceObserver::with_capacity(64);
    let (report, _) = Simulator::run_observed(&scfg, &mut p, &jobs, &mut tiny);
    assert_eq!(
        report.counters, ref_report.counters,
        "observer changed the run"
    );
    assert_eq!(tiny.len(), 64);
    assert!(tiny.dropped() > 0);
    // The survivors are exactly the tail of the full stream.
    let tail = &full.events()[full.len() - 64..];
    assert_eq!(tiny.events().as_slice(), tail);
    // Events still carry their kind after wrapping.
    assert!(tiny
        .events()
        .iter()
        .any(|(_, e)| matches!(e, Event::PolicyCounter { .. })));
}

// ---------------------------------------------------------------------
// Cluster observability: shard-tagged events, and the same passivity
// guarantee at the dispatch layer.
// ---------------------------------------------------------------------

fn cluster_fixture() -> (ExperimentConfig, qes::core::JobSet) {
    let cfg = ExperimentConfig::quick()
        .with_sim_seconds(4.0)
        .with_arrival_rate(260.0)
        .with_cores(4)
        .with_budget(80.0);
    let jobs = cfg.workload().generate(17).unwrap();
    (cfg, jobs)
}

#[test]
fn traced_cluster_run_is_bitwise_identical_to_untraced() {
    let (cfg, jobs) = cluster_fixture();
    let quality = qes::core::ExpQuality::new(cfg.quality_c);
    let scfg = sim_cfg(&cfg, &quality);
    let engine = ClusterEngine::new(4).with_routing(RoutingPolicy::Jsq);
    let make_policy = |_: usize| Box::new(DesPolicy::new()) as Box<dyn SchedulingPolicy>;

    let plain = engine.run(&scfg, &jobs, make_policy);
    let (traced, observers) =
        engine.run_observed(&scfg, &jobs, make_policy, |_| TraceObserver::new());

    assert_eq!(
        plain.merged.total_quality.to_bits(),
        traced.merged.total_quality.to_bits()
    );
    assert_eq!(
        plain.merged.energy_joules.to_bits(),
        traced.merged.energy_joules.to_bits()
    );
    assert_eq!(plain.merged.counters, traced.merged.counters);
    for (p, t) in plain.shards.iter().zip(traced.shards.iter()) {
        assert_eq!(
            p.report.total_quality.to_bits(),
            t.report.total_quality.to_bits(),
            "shard {}",
            p.shard
        );
        assert_eq!(p.report.counters, t.report.counters, "shard {}", p.shard);
    }

    // One observer per shard, each stream opening with its own
    // shard-tagged assignment event whose job count matches the shard's
    // report.
    assert_eq!(observers.len(), 4);
    for (i, (obs, run)) in observers.iter().zip(traced.shards.iter()).enumerate() {
        assert!(!obs.is_empty(), "shard {i} traced nothing");
        let (t0, first) = &obs.events()[0];
        assert_eq!(t0.as_micros(), 0, "shard {i}: assign not first");
        match first {
            Event::ShardAssign { shard, jobs } => {
                assert_eq!(*shard as usize, i);
                assert_eq!(*jobs as usize, run.report.jobs_total());
            }
            other => panic!("shard {i}: expected ShardAssign, got {other:?}"),
        }
        // Exactly one assignment event per shard stream.
        let assigns = obs
            .events()
            .iter()
            .filter(|(_, e)| matches!(e, Event::ShardAssign { .. }))
            .count();
        assert_eq!(assigns, 1, "shard {i}");
        // And the CSV carries the shard tag.
        let csv = obs.to_csv(&format!("shard{i}"));
        assert!(
            csv.contains(&format!("0,shard_assign,{i},")),
            "shard {i} csv"
        );
    }
}

#[test]
fn per_shard_registries_reconcile_with_merged_cluster_report() {
    let (cfg, jobs) = cluster_fixture();
    let quality = qes::core::ExpQuality::new(cfg.quality_c);
    let scfg = sim_cfg(&cfg, &quality);
    let engine = ClusterEngine::new(4).with_routing(RoutingPolicy::RoundRobin);

    let (rep, regs) = engine.run_observed(
        &scfg,
        &jobs,
        |_| Box::new(DesPolicy::new()) as Box<dyn SchedulingPolicy>,
        |_| MetricsRegistry::new(),
    );

    // Per-shard engine counters sum to the merged report's counters.
    let sum = |key: &str| regs.iter().map(|r| r.counter(key)).sum::<u64>();
    assert_eq!(sum("engine.arrivals"), rep.merged.jobs_total() as u64);
    assert_eq!(sum("engine.invocations"), rep.merged.invocations());
    assert_eq!(
        sum("engine.settle.satisfied"),
        rep.merged.jobs_satisfied() as u64
    );
    // Every shard folded exactly its own assignment event.
    for (i, (reg, run)) in regs.iter().zip(rep.shards.iter()).enumerate() {
        assert_eq!(reg.counter("cluster.shard.assignments"), 1, "shard {i}");
        assert_eq!(
            reg.counter("cluster.shard.jobs"),
            run.report.jobs_total() as u64,
            "shard {i}"
        );
        assert_eq!(
            reg.gauge(&format!("cluster.shard{i}.routed_jobs")),
            Some(run.report.jobs_total() as f64),
            "shard {i}"
        );
    }
    // The cluster report exports per-shard gauges into one registry that
    // reconciles with the merge.
    let mut merged_reg = MetricsRegistry::new();
    rep.export_metrics(&mut merged_reg);
    assert_eq!(
        merged_reg.counter("sim.invocations"),
        rep.merged.invocations()
    );
    let shard_jobs: f64 = (0..4)
        .map(|i| merged_reg.gauge(&format!("cluster.shard{i}.jobs")).unwrap())
        .sum();
    assert_eq!(shard_jobs as usize, rep.merged.jobs_total());
}
