//! Cross-crate optimality checks for the single-core algorithms (§III).
//!
//! QE-OPT's claim (paper Theorem 2) is lexicographic optimality: maximum
//! total quality first, then minimum energy among quality-maximal
//! schedules. These tests pit it against brute-force volume allocations
//! and against plausible heuristic schedules on small instances.

use qes::core::{ExpQuality, Job, JobSet, PolynomialPower, PowerModel, QualityFunction, SimTime};
use qes::singlecore::{energy_opt, qe_opt, quality_opt};

const MODEL: PolynomialPower = PolynomialPower::PAPER_SIM;
const Q: ExpQuality = ExpQuality::PAPER_DEFAULT;

fn ms(x: u64) -> SimTime {
    SimTime::from_millis(x)
}

fn total_quality(jobs: &JobSet, volumes: impl Fn(&Job) -> f64) -> f64 {
    jobs.iter().map(|j| Q.job_quality(j, volumes(j))).sum()
}

/// Brute-force the best total quality achievable on a single fixed-speed
/// core by searching over discretized volume allocations that satisfy
/// every prefix-capacity constraint (all jobs share a release here, so
/// EDF feasibility = prefix feasibility).
fn brute_force_quality(jobs: &[Job], speed: f64, steps: usize) -> f64 {
    // Jobs sorted by deadline; allocate volumes v_i ≤ w_i with
    // Σ_{i≤k} v_i ≤ cap(d_k) for all k.
    let mut sorted = jobs.to_vec();
    sorted.sort_by_key(|j| j.deadline);
    let caps: Vec<f64> = sorted
        .iter()
        .map(|j| j.deadline.saturating_since(sorted[0].release).as_secs_f64() * speed * 1000.0)
        .collect();
    fn rec(i: usize, used: f64, sorted: &[Job], caps: &[f64], steps: usize, acc: f64) -> f64 {
        if i == sorted.len() {
            return acc;
        }
        let w = sorted[i].demand;
        let room = (caps[i] - used).max(0.0).min(w);
        let mut best = f64::NEG_INFINITY;
        for s in 0..=steps {
            let v = room * s as f64 / steps as f64;
            let q = Q.job_quality(&sorted[i], v);
            best = best.max(rec(i + 1, used + v, sorted, caps, steps, acc + q));
        }
        best
    }
    rec(0, 0.0, &sorted, &caps, steps, 0.0)
}

#[test]
fn quality_opt_matches_brute_force_on_small_overloaded_instances() {
    let cases: Vec<Vec<Job>> = vec![
        vec![
            Job::new(0, ms(0), ms(100), 150.0).unwrap(),
            Job::new(1, ms(0), ms(100), 150.0).unwrap(),
        ],
        vec![
            Job::new(0, ms(0), ms(80), 120.0).unwrap(),
            Job::new(1, ms(0), ms(120), 60.0).unwrap(),
            Job::new(2, ms(0), ms(160), 200.0).unwrap(),
        ],
        vec![
            Job::new(0, ms(0), ms(60), 20.0).unwrap(),
            Job::new(1, ms(0), ms(90), 90.0).unwrap(),
            Job::new(2, ms(0), ms(90), 90.0).unwrap(),
        ],
    ];
    for jobs in cases {
        let speed = 1.0;
        let set = JobSet::new(jobs.clone()).unwrap();
        let r = quality_opt::quality_opt(&set, speed);
        let q_opt = total_quality(&set, |j| r.volume(j.id));
        let q_bf = brute_force_quality(&jobs, speed, 60);
        // The brute force is discretized, so OPT must be ≥ it − grid slop.
        assert!(
            q_opt + 1e-6 >= q_bf - 0.02,
            "quality_opt {q_opt} < brute force {q_bf} for {jobs:?}"
        );
    }
}

#[test]
fn equal_split_is_optimal_for_identical_overloaded_jobs() {
    // Analytic check of the concavity argument: for n identical jobs and
    // capacity C < n·w, the optimum of Σ f(v_i) under Σ v_i = C is the
    // equal split (strict concavity ⇒ unique).
    let jobs = JobSet::new(vec![
        Job::new(0, ms(0), ms(100), 200.0).unwrap(),
        Job::new(1, ms(0), ms(100), 200.0).unwrap(),
        Job::new(2, ms(0), ms(100), 200.0).unwrap(),
    ])
    .unwrap();
    let r = quality_opt::quality_opt(&jobs, 1.0); // capacity 100
    for j in jobs.iter() {
        assert!((r.volume(j.id) - 100.0 / 3.0).abs() < 0.5, "{:?}", j.id);
    }
}

#[test]
fn qe_opt_energy_no_worse_than_plausible_heuristics() {
    // Underload: everything can be satisfied. QE-OPT must use no more
    // energy than (a) run-at-max-speed-then-idle and (b) any constant
    // uniform speed that is feasible.
    let jobs = JobSet::new(vec![
        Job::new(0, ms(0), ms(150), 120.0).unwrap(),
        Job::new(1, ms(40), ms(190), 200.0).unwrap(),
        Job::new(2, ms(100), ms(250), 90.0).unwrap(),
    ])
    .unwrap();
    let budget = 20.0; // s* = 2 GHz
    let r = qe_opt::qe_opt(&jobs, &MODEL, budget);
    // Sanity: everything satisfied.
    for j in jobs.iter() {
        assert!((r.volume(j.id) - j.demand).abs() < 1e-6, "{:?}", j.id);
    }
    let e_opt = r.schedule.energy(&MODEL);

    // (a) full speed: each unit of work at 2 GHz.
    let total: f64 = jobs.total_demand();
    let e_full = MODEL.dynamic_power(2.0) * total / 2000.0;
    assert!(e_opt <= e_full + 1e-9, "{e_opt} > full-speed {e_full}");

    // (b) constant feasible speeds (grid): check a few.
    for &s in &[1.0, 1.2, 1.5, 1.8, 2.0] {
        let q = quality_opt::quality_opt(&jobs, s);
        let all_sat = jobs
            .iter()
            .all(|j| (q.volume(j.id) - j.demand).abs() < 1e-6);
        if all_sat {
            let e_const = q.schedule.energy(&MODEL);
            assert!(
                e_opt <= e_const + 1e-6,
                "QE-OPT {e_opt} beaten by constant {s} GHz: {e_const}"
            );
        }
    }
}

#[test]
fn qe_opt_quality_never_below_fixed_speed_quality() {
    // QE-OPT step 1 runs at s*; any slower fixed speed yields ≤ quality.
    let jobs = JobSet::new(vec![
        Job::new(0, ms(0), ms(100), 250.0).unwrap(),
        Job::new(1, ms(20), ms(120), 250.0).unwrap(),
        Job::new(2, ms(40), ms(140), 250.0).unwrap(),
    ])
    .unwrap();
    let budget = 20.0;
    let r = qe_opt::qe_opt(&jobs, &MODEL, budget);
    let q_qe = total_quality(&jobs, |j| r.volume(j.id));
    for &s in &[0.5, 1.0, 1.5, 2.0] {
        let q = quality_opt::quality_opt(&jobs, s);
        let q_fixed = total_quality(&jobs, |j| q.volume(j.id));
        assert!(
            q_qe + 1e-9 >= q_fixed,
            "QE-OPT quality {q_qe} < fixed {s} GHz quality {q_fixed}"
        );
    }
}

#[test]
fn energy_opt_beats_eager_and_lazy_alternatives() {
    // YDS vs two hand-rolled feasible schedules on a two-burst instance.
    let jobs = JobSet::new(vec![
        Job::new(0, ms(0), ms(100), 150.0).unwrap(),
        Job::new(1, ms(200), ms(400), 100.0).unwrap(),
    ])
    .unwrap();
    let r = energy_opt::energy_opt(&jobs);
    let e_yds = r.schedule.energy(&MODEL);
    // Eager: run each job at 2 GHz as soon as released.
    let e_eager = MODEL.dynamic_power(2.0) * (150.0 + 100.0) / 2000.0;
    // Lazy uniform: run both at the max of their window-average speeds.
    let s_uniform: f64 = 1.5f64.max(0.5);
    let e_uniform = MODEL.dynamic_power(s_uniform) * (150.0 + 100.0) / (s_uniform * 1000.0);
    assert!(e_yds <= e_eager + 1e-9);
    assert!(e_yds <= e_uniform + 1e-9);
    // And YDS here is exactly per-burst average speeds: 1.5 and 0.5 GHz.
    let expect = MODEL.dynamic_power(1.5) * 0.1 + MODEL.dynamic_power(0.5) * 0.2;
    assert!((e_yds - expect).abs() < 1e-6, "{e_yds} vs {expect}");
}

#[test]
fn lexicographic_metric_ranks_qe_opt_first_among_contenders() {
    let jobs = JobSet::new(vec![
        Job::new(0, ms(0), ms(120), 180.0).unwrap(),
        Job::new(1, ms(30), ms(150), 220.0).unwrap(),
        Job::new(2, ms(60), ms(180), 140.0).unwrap(),
    ])
    .unwrap();
    let budget = 15.0;
    let s_max = MODEL.speed_for_dynamic_power(budget);
    let qe = qe_opt::qe_opt(&jobs, &MODEL, budget);
    let score_qe = qes::core::QualityEnergy::new(
        total_quality(&jobs, |j| qe.volume(j.id)),
        qe.schedule.energy(&MODEL),
    );
    for &s in &[0.4 * s_max, 0.6 * s_max, 0.8 * s_max, s_max] {
        let alt = quality_opt::quality_opt(&jobs, s);
        let score_alt = qes::core::QualityEnergy::new(
            total_quality(&jobs, |j| alt.volume(j.id)),
            alt.schedule.energy(&MODEL),
        );
        assert!(
            score_qe.dominates_or_ties(&score_alt),
            "QE-OPT {score_qe} loses to fixed {s:.2} GHz {score_alt}"
        );
    }
}
