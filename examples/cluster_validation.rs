//! The §V-G validation pipeline end-to-end: fit the Opteron power model by
//! regression, run discrete-speed DES in the simulator, replay the trace
//! on the (simulated) cluster, and compare predicted vs metered energy.
//!
//! ```text
//! cargo run --release --example cluster_validation
//! ```

use qes::cluster::meter::PowerMeter;
use qes::cluster::regression::{fit_power_model, opteron_pairs};
use qes::cluster::replay::{exact_energy, measured_energy};
use qes::cluster::spec::ClusterSpec;
use qes::experiments::{run_policy_traced, ExperimentConfig, PolicyKind};
use qes::prelude::*;
use qes_core::PowerModel;

fn main() {
    // Step 1 — the paper's regression methodology on the measured table.
    let pairs = opteron_pairs();
    let fit = fit_power_model(&pairs).expect("table fits");
    println!("measured ⟨speed, power⟩ pairs: {pairs:?}");
    println!(
        "fitted P = {:.4}·s^{:.3} + {:.4}  (paper: 2.6075·s^1.791 + 9.2562)\n",
        fit.model.a, fit.model.beta, fit.model.b
    );

    // Step 2 — drive the simulator with the fitted dynamic model, the
    // Opteron's discrete speeds, and the §V-G budget of 152 W.
    let cluster = ClusterSpec::paper_validation();
    let horizon_secs = 120.0;
    let horizon = SimTime::from_secs_f64(horizon_secs);
    let meter = PowerMeter::default();

    println!(
        "{:>6} {:>14} {:>14} {:>10}",
        "rate", "sim energy (J)", "metered (J)", "real/sim"
    );
    for rate in [40.0, 60.0, 80.0, 100.0, 120.0] {
        let cfg = ExperimentConfig {
            num_cores: cluster.total_cores(),
            budget: 152.0,
            power: PolynomialPower {
                b: 0.0,
                ..fit.model
            },
            ladder: Some(DiscreteSpeedSet::opteron_2380()),
            ..ExperimentConfig::paper_default()
        }
        .with_arrival_rate(rate)
        .with_sim_seconds(horizon_secs);
        let (_, trace) = run_policy_traced(&cfg, PolicyKind::DesDiscrete, 42);

        // Step 3 — both sides consume the same trace.
        let sim = exact_energy(&trace, &cluster, horizon);
        let real = measured_energy(&trace, &cluster, horizon, &meter);
        println!("{rate:>6.0} {sim:>14.0} {real:>14.0} {:>10.3}", real / sim);
    }
    println!(
        "\nExpected shape (paper Fig. 11): the two curves nearly coincide,\n\
         with the metered side marginally higher (scheduling overhead)."
    );
    let _ = fit.model.power(1.0); // silence unused-import lints on PowerModel
}
