//! Quickstart: schedule a web-search workload with DES and read the
//! ⟨quality, energy⟩ outcome.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use qes::prelude::*;

fn main() {
    // The paper's server: 16 cores, a 320 W dynamic power budget, and the
    // convex power model P = 5·s². Web-search requests arrive at 120/s,
    // each with a 150 ms deadline and a bounded-Pareto service demand.
    let cfg = ExperimentConfig::paper_default()
        .with_arrival_rate(120.0)
        .with_sim_seconds(60.0);

    println!(
        "workload: {:.0} req/s for {:.0} s",
        cfg.arrival_rate, cfg.sim_seconds
    );
    println!(
        "offered load: {:.0}% of server capacity\n",
        100.0 * cfg.workload().utilization(cfg.num_cores, 2.0)
    );

    // DES = C-RR + WF + Online-QE, on core-level DVFS.
    let report = run_policy(&cfg, PolicyKind::Des, 42);
    println!("{report}");
    println!(
        "\nnormalized quality : {:.4} (1.0 = every request fully answered)",
        report.normalized_quality()
    );
    println!(
        "mean dynamic power : {:.1} W of the {:.0} W budget",
        report.mean_power(),
        cfg.budget
    );
    println!("composite metric   : {}", report.quality_energy());

    // The same stream under plain FCFS, for contrast.
    let fcfs = run_policy(&cfg, PolicyKind::Fcfs, 42);
    println!(
        "\nFCFS on the same stream: quality {:.4}, energy {:.0} J",
        fcfs.normalized_quality(),
        fcfs.energy_joules
    );
    let better = report.quality_energy().better(fcfs.quality_energy());
    println!(
        "lexicographic winner: {}",
        if better == report.quality_energy() {
            "DES"
        } else {
            "FCFS"
        }
    );
}
