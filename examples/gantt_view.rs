//! Visualize schedules as ASCII Gantt charts: QE-OPT's offline plan for a
//! small job set, then a window of a live DES simulation trace.
//!
//! ```text
//! cargo run --release --example gantt_view
//! ```

use qes::core::{
    render_gantt, CoreSchedule, GanttOptions, Job, JobSet, PolynomialPower, Schedule, SimTime,
    Slice,
};
use qes::experiments::{run_policy_traced, ExperimentConfig, PolicyKind};
use qes::singlecore::qe_opt;

fn main() {
    let ms = SimTime::from_millis;
    let model = PolynomialPower::PAPER_SIM;

    // --- Offline QE-OPT on one core --------------------------------
    let jobs = JobSet::new(vec![
        Job::new(0, ms(0), ms(150), 180.0).unwrap(),
        Job::new(1, ms(30), ms(180), 260.0).unwrap(),
        Job::new(2, ms(60), ms(210), 90.0).unwrap(),
        Job::new(3, ms(140), ms(290), 120.0).unwrap(),
    ])
    .unwrap();
    let r = qe_opt::qe_opt(&jobs, &model, 20.0);
    println!("QE-OPT on a single core (digits = job id, rows ×2 with speeds):\n");
    let sched = Schedule::single(r.schedule.clone());
    print!(
        "{}",
        render_gantt(
            &sched,
            ms(0),
            ms(290),
            &GanttOptions {
                width: 72,
                show_speeds: true
            }
        )
    );

    // --- A window of a DES multicore run ----------------------------
    let cfg = ExperimentConfig::paper_default()
        .with_cores(8)
        .with_budget(160.0)
        .with_arrival_rate(70.0)
        .with_sim_seconds(2.0);
    let (_, trace) = run_policy_traced(&cfg, PolicyKind::Des, 7);
    // Rebuild a Schedule view of the first 400 ms of the trace.
    let mut cores: Vec<Vec<Slice>> = vec![Vec::new(); cfg.num_cores];
    for s in trace.slices() {
        if s.start < ms(400) && s.core < cores.len() {
            cores[s.core].push(Slice {
                job: s.job,
                start: s.start,
                end: s.end,
                speed: s.speed,
            });
        }
    }
    let sched = Schedule::new(cores.into_iter().map(CoreSchedule::new).collect());
    println!("\nDES on 8 cores, first 400 ms at 70 req/s (digits = job id mod 10):\n");
    print!(
        "{}",
        render_gantt(
            &sched,
            ms(0),
            ms(400),
            &GanttOptions {
                width: 72,
                show_speeds: false
            }
        )
    );
    println!("\n(· = idle; DES stretches jobs across their windows at light load,");
    println!(" which is exactly the Energy-OPT behaviour that saves energy.)");
}
