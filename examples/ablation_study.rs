//! Which of DES's ingredients buys what? Each variant removes exactly one
//! design choice from the full algorithm (see DESIGN.md §3 and the paper's
//! §IV-B/C arguments).
//!
//! ```text
//! cargo run --release --example ablation_study
//! ```

use qes::core::{ExpQuality, SimDuration, SimTime};
use qes::experiments::ExperimentConfig;
use qes::multicore::des::{DesPolicy, JobSharing, PowerSharing};
use qes::sim::engine::{SimConfig, Simulator};
use qes::singlecore::OnlineMode;

fn main() {
    type Variant = (&'static str, Box<dyn Fn() -> DesPolicy>);
    let variants: Vec<Variant> = vec![
        ("full DES", Box::new(DesPolicy::new)),
        (
            "− C-RR (restart round-robin)",
            Box::new(|| DesPolicy::new().with_job_sharing(JobSharing::RestartRr)),
        ),
        (
            "− WF (static power shares)",
            Box::new(|| DesPolicy::new().with_power_sharing(PowerSharing::StaticEqual)),
        ),
        (
            "− eager (Energy-OPT stretch)",
            Box::new(|| DesPolicy::new().with_mode(OnlineMode::Efficient)),
        ),
    ];

    println!(
        "{:<30} {:>6} {:>9} {:>11}",
        "variant", "rate", "quality", "energy (J)"
    );
    println!("{}", "-".repeat(60));
    for rate in [120.0, 200.0] {
        let cfg = ExperimentConfig::paper_default()
            .with_arrival_rate(rate)
            .with_sim_seconds(60.0);
        let jobs = cfg.workload().generate(42).unwrap();
        let quality = ExpQuality::new(cfg.quality_c);
        for (label, make) in &variants {
            let sim_cfg = SimConfig {
                num_cores: cfg.num_cores,
                budget: cfg.budget,
                model: &cfg.power,
                quality: &quality,
                end: SimTime::from_secs_f64(cfg.sim_seconds),
                record_trace: false,
                overhead: SimDuration::ZERO,
            };
            let mut policy = make();
            let (rep, _) = Simulator::run(&sim_cfg, &mut policy, &jobs);
            println!(
                "{label:<30} {rate:>6.0} {:>9.4} {:>11.0}",
                rep.normalized_quality(),
                rep.energy_joules
            );
        }
        println!("{}", "-".repeat(60));
    }
    println!(
        "\nReading: WF matters most under load imbalance; C-RR's cumulative\n\
         cursor matters at light load where invocations deal few jobs; the\n\
         eager realization protects quality under a binding budget."
    );
}
