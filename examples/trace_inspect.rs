//! Inspect an observability trace CSV (`qes_core::obs::TraceObserver`).
//!
//! ```text
//! # summarize a trace written by QES_TRACE=run.csv <any figure run>
//! cargo run --example trace_inspect -- run.csv
//!
//! # no argument: run a short DES simulation with tracing on and
//! # summarize the stream it produced
//! cargo run --example trace_inspect
//! ```
//!
//! The file format is blocks of `# trace <label> events=N dropped=M`
//! headers, each followed by a `t_us,event,arg1,arg2` header line and
//! event rows — one block per traced run (appends accumulate).

use std::collections::BTreeMap;

use qes::core::{ExpQuality, PolynomialPower, SimDuration, SimTime, TraceObserver};
use qes::multicore::DesPolicy;
use qes::sim::{SimConfig, Simulator};
use qes::workload::WebSearchWorkload;

fn main() {
    let csv = match std::env::args().nth(1) {
        Some(path) => match std::fs::read_to_string(&path) {
            Ok(s) => {
                println!("trace file: {path}");
                s
            }
            Err(e) => {
                eprintln!("trace_inspect: cannot read {path}: {e}");
                std::process::exit(1);
            }
        },
        None => demo_trace(),
    };
    summarize(&csv);
}

/// Run a 10 s DES simulation with a live `TraceObserver` and return its
/// CSV — the zero-setup way to see what the event stream looks like.
fn demo_trace() -> String {
    println!("no trace file given — running a 10 s demo simulation\n");
    let model = PolynomialPower::PAPER_SIM;
    let quality = ExpQuality::PAPER_DEFAULT;
    let jobs = WebSearchWorkload::new(120.0)
        .with_horizon(SimTime::from_secs(10))
        .generate(42)
        .expect("demo workload generates");
    let cfg = SimConfig {
        num_cores: 8,
        budget: 160.0,
        model: &model,
        quality: &quality,
        end: SimTime::from_secs(10),
        record_trace: false,
        overhead: SimDuration::ZERO,
    };
    let mut policy = DesPolicy::new();
    let mut obs = TraceObserver::new();
    let (report, _) = Simulator::run_observed(&cfg, &mut policy, &jobs, &mut obs);
    println!("{report}\n");
    obs.to_csv("demo DES seed=42 rate=120")
}

fn summarize(csv: &str) {
    let mut blocks: Vec<&str> = Vec::new();
    let mut counts: BTreeMap<String, u64> = BTreeMap::new();
    let mut rows: u64 = 0;
    let mut dropped: u64 = 0;
    let mut first_us: Option<u64> = None;
    let mut last_us: u64 = 0;
    let mut watts_sum = 0.0;
    let mut watts_n = 0u64;

    for line in csv.lines() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        if let Some(hdr) = line.strip_prefix("# trace ") {
            blocks.push(hdr);
            if let Some(d) = hdr
                .split_whitespace()
                .find_map(|w| w.strip_prefix("dropped="))
            {
                dropped += d.parse::<u64>().unwrap_or(0);
            }
            continue;
        }
        if line.starts_with('#') || line.starts_with("t_us,") {
            continue;
        }
        let mut parts = line.splitn(4, ',');
        let (Some(t), Some(event)) = (parts.next(), parts.next()) else {
            continue;
        };
        let Ok(t) = t.parse::<u64>() else {
            eprintln!("trace_inspect: skipping malformed row: {line}");
            continue;
        };
        rows += 1;
        first_us.get_or_insert(t);
        last_us = last_us.max(t);
        *counts.entry(event.to_string()).or_insert(0) += 1;
        if event == "power_sample" {
            if let Some(w) = parts.nth(1).and_then(|w| w.parse::<f64>().ok()) {
                watts_sum += w;
                watts_n += 1;
            }
        }
    }

    println!("blocks: {}", blocks.len());
    for b in &blocks {
        println!("  # {b}");
    }
    println!("events: {rows} ({dropped} dropped by the ring buffer)");
    if let Some(first) = first_us {
        println!(
            "span: {:.3} s ({first} µs .. {last_us} µs)",
            (last_us.saturating_sub(first)) as f64 / 1e6
        );
    }
    println!("by kind:");
    for (name, n) in &counts {
        println!("  {name:<16} {n}");
    }
    if watts_n > 0 {
        println!(
            "mean sampled power: {:.2} W over {watts_n} samples",
            watts_sum / watts_n as f64
        );
    }
}
