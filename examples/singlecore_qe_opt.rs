//! The single-core algorithm family on one worked job set (paper §III):
//! Energy-OPT (YDS), Quality-OPT (Tians), the offline optimal QE-OPT, and
//! the myopic online algorithm Online-QE.
//!
//! ```text
//! cargo run --release --example singlecore_qe_opt
//! ```

use qes::prelude::*;
use qes::singlecore::online_qe::ReadyJob;
use qes_core::PowerModel;

fn main() {
    let ms = SimTime::from_millis;
    // Five overlapping requests; the middle of the horizon is overloaded.
    let jobs = JobSet::new(vec![
        Job::new(0, ms(0), ms(150), 180.0).unwrap(),
        Job::new(1, ms(30), ms(180), 260.0).unwrap(),
        Job::new(2, ms(60), ms(210), 90.0).unwrap(),
        Job::new(3, ms(70), ms(220), 310.0).unwrap(),
        Job::new(4, ms(140), ms(290), 120.0).unwrap(),
    ])
    .unwrap();
    let model = PolynomialPower::PAPER_SIM; // P = 5·s²
    let budget = 20.0; // one core's share: s* = 2 GHz
    let quality = ExpQuality::PAPER_DEFAULT;

    println!(
        "job set: {} jobs, {:.0} units total demand\n",
        jobs.len(),
        jobs.total_demand()
    );

    // Energy-OPT pretends there is no budget and completes everything.
    let yds = energy_opt::energy_opt(&jobs);
    println!("Energy-OPT (no budget):");
    println!(
        "  critical speeds: {:?}",
        yds.round_speeds
            .iter()
            .map(|s| (s * 100.0).round() / 100.0)
            .collect::<Vec<_>>()
    );
    println!(
        "  energy: {:.2} J (peak power {:.1} W)\n",
        yds.schedule.energy(&model),
        model.dynamic_power(yds.initial_speed())
    );

    // Quality-OPT at the budget speed: partial evaluation kicks in.
    let qo = quality_opt::quality_opt(&jobs, 2.0);
    println!("Quality-OPT at fixed 2 GHz:");
    for j in jobs.iter() {
        let v = qo.volume(j.id);
        let tag = if v + 1e-6 >= j.demand {
            "satisfied"
        } else {
            "deprived "
        };
        println!(
            "  {}: {:>6.1} / {:>6.1} units [{tag}]  quality {:.3}",
            j.id,
            v,
            j.demand,
            quality.job_quality(j, v)
        );
    }

    // QE-OPT: Quality-OPT volumes realized at Energy-OPT speeds.
    let qe = qe_opt::qe_opt(&jobs, &model, budget);
    let q_total: f64 = jobs
        .iter()
        .map(|j| quality.job_quality(j, qe.volume(j.id)))
        .sum();
    let q_max: f64 = jobs.iter().map(|j| quality.max_job_quality(j)).sum();
    println!("\nQE-OPT under a {budget:.0} W budget:");
    println!(
        "  quality: {:.4} of {:.4} max ({:.1}%)",
        q_total,
        q_max,
        100.0 * q_total / q_max
    );
    println!("  energy : {:.2} J", qe.schedule.energy(&model));
    println!("  slices :");
    for s in qe.schedule.slices() {
        println!(
            "    {} runs [{} → {}] at {:.3} GHz",
            s.job, s.start, s.end, s.speed
        );
    }

    // Online-QE mid-stream: at t = 100 ms, J0 has run 120 of 180 units.
    let ready: Vec<ReadyJob> = jobs
        .iter()
        .map(|&j| ReadyJob {
            job: j,
            processed: if j.id == JobId(0) { 120.0 } else { 0.0 },
        })
        .collect();
    let out = online_qe::online_qe(ms(100), &ready, &model, budget);
    println!("\nOnline-QE invoked at t = 100 ms (J0 already 120/180 done):");
    for j in jobs.iter() {
        println!("  {}: planned total {:>6.1} units", j.id, out.planned(j.id));
    }
    println!(
        "  future slices start at or after t = 100 ms: {}",
        out.schedule.slices().iter().all(|s| s.start >= ms(100))
    );
}
