//! Mini reproduction of the paper's Fig. 5/6 comparison: DES against the
//! classic baselines, with and without Water-Filling, across load levels.
//!
//! ```text
//! cargo run --release --example policy_faceoff
//! ```

use qes::prelude::*;

fn main() {
    let kinds = [
        PolicyKind::Des,
        PolicyKind::Fcfs,
        PolicyKind::FcfsWf,
        PolicyKind::Ljf,
        PolicyKind::LjfWf,
        PolicyKind::Sjf,
        PolicyKind::SjfWf,
    ];
    let rates = [100.0, 160.0, 220.0];
    let seed = 7;

    println!(
        "{:<10} {:>6}  {:>9} {:>11} {:>10}",
        "policy", "rate", "quality", "energy (J)", "satisfied"
    );
    println!("{}", "-".repeat(52));
    for &rate in &rates {
        let cfg = ExperimentConfig::paper_default()
            .with_arrival_rate(rate)
            .with_sim_seconds(60.0);
        for &kind in &kinds {
            let r = qes::experiments::run_policy(&cfg, kind, seed);
            println!(
                "{:<10} {:>6.0}  {:>9.4} {:>11.0} {:>9.1}%",
                r.policy,
                rate,
                r.normalized_quality(),
                r.energy_joules,
                100.0 * r.satisfaction_rate()
            );
        }
        println!("{}", "-".repeat(52));
    }
    println!(
        "\nExpected shape (paper Fig. 5/6): DES leads at every load; WF lifts\n\
         every baseline; SJF trails badly under overload (it starves the\n\
         long requests that FCFS would have partially answered)."
    );
}
