//! Offline mini benchmark harness exposing the subset of the `criterion`
//! 0.5 surface this workspace uses.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors a small replacement: [`Criterion`], benchmark groups,
//! [`BenchmarkId`], [`Throughput`], `Bencher::iter` and the
//! `criterion_group!` / `criterion_main!` macros. Differences from
//! upstream, by design:
//!
//! * No statistical analysis: each benchmark reports the median of
//!   `sample_size` timed samples (plus throughput when configured).
//! * `--test` (as passed by `cargo bench -- --test`) runs every
//!   benchmark body exactly once as a smoke test, like upstream.
//! * Results go to stdout; use [`Measurement::median_nanos`] from a
//!   `harness = false` bench that wants machine-readable numbers.

use std::fmt;
use std::time::Instant;

/// Identifies one benchmark inside a group (subset of
/// `criterion::BenchmarkId`).
pub struct BenchmarkId(String);

impl BenchmarkId {
    pub fn from_parameter<P: fmt::Display>(p: P) -> Self {
        BenchmarkId(p.to_string())
    }

    pub fn new<P: fmt::Display>(function: &str, p: P) -> Self {
        BenchmarkId(format!("{function}/{p}"))
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId(s.to_string())
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId(s)
    }
}

/// Units processed per iteration, for derived rates.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

/// One benchmark's timing result.
#[derive(Clone, Copy, Debug)]
pub struct Measurement {
    median_nanos: f64,
}

impl Measurement {
    /// Median wall-clock nanoseconds of one iteration.
    pub fn median_nanos(&self) -> f64 {
        self.median_nanos
    }
}

/// Times the benchmark body (subset of `criterion::Bencher`).
pub struct Bencher {
    smoke: bool,
    samples: usize,
    result: Option<Measurement>,
}

impl Bencher {
    /// Run `f` repeatedly and record the median per-iteration time.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        if self.smoke {
            std::hint::black_box(f());
            return;
        }
        // Warm-up and calibration: pick an iteration count so one sample
        // takes ≳2 ms, keeping timer quantization below ~0.1%.
        let t0 = Instant::now();
        std::hint::black_box(f());
        let once = t0.elapsed().as_nanos().max(1) as u64;
        let iters = (2_000_000 / once).clamp(1, 1_000_000);
        let mut samples: Vec<f64> = (0..self.samples)
            .map(|_| {
                let t = Instant::now();
                for _ in 0..iters {
                    std::hint::black_box(f());
                }
                t.elapsed().as_nanos() as f64 / iters as f64
            })
            .collect();
        samples.sort_by(|a, b| a.total_cmp(b));
        self.result = Some(Measurement {
            median_nanos: samples[samples.len() / 2],
        });
    }
}

fn fmt_nanos(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

fn run_one<F: FnOnce(&mut Bencher)>(
    name: &str,
    smoke: bool,
    samples: usize,
    throughput: Option<Throughput>,
    f: F,
) -> Option<Measurement> {
    let mut b = Bencher {
        smoke,
        samples,
        result: None,
    };
    f(&mut b);
    if smoke {
        println!("{name}: ok (smoke)");
        return None;
    }
    let m = b.result?;
    let rate = match throughput {
        Some(Throughput::Elements(n)) => {
            format!("  ({:.0} elem/s)", n as f64 * 1e9 / m.median_nanos)
        }
        Some(Throughput::Bytes(n)) => {
            format!("  ({:.0} B/s)", n as f64 * 1e9 / m.median_nanos)
        }
        None => String::new(),
    };
    println!("{name}: {}{rate}", fmt_nanos(m.median_nanos));
    Some(m)
}

/// A named collection of related benchmarks (subset of
/// `criterion::BenchmarkGroup`).
pub struct BenchmarkGroup<'a> {
    criterion: &'a Criterion,
    name: String,
    samples: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Number of timed samples per benchmark (upstream's meaning; here
    /// simply the sample count the median is taken over).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = n.max(1);
        self
    }

    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    pub fn bench_function<I: Into<BenchmarkId>, F: FnMut(&mut Bencher)>(
        &mut self,
        id: I,
        mut f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.into().0);
        run_one(
            &full,
            self.criterion.smoke,
            self.samples,
            self.throughput,
            |b| f(b),
        );
        self
    }

    pub fn bench_with_input<I, P, F>(&mut self, id: I, input: &P, mut f: F) -> &mut Self
    where
        I: Into<BenchmarkId>,
        P: ?Sized,
        F: FnMut(&mut Bencher, &P),
    {
        let full = format!("{}/{}", self.name, id.into().0);
        run_one(
            &full,
            self.criterion.smoke,
            self.samples,
            self.throughput,
            |b| f(b, input),
        );
        self
    }

    pub fn finish(self) {}
}

/// The harness entry point (subset of `criterion::Criterion`).
pub struct Criterion {
    smoke: bool,
    default_samples: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        // `cargo bench -- --test` asks for a single smoke iteration per
        // bench; any other CLI flags upstream accepts are ignored here.
        let smoke = std::env::args().any(|a| a == "--test");
        Criterion {
            smoke,
            default_samples: 10,
        }
    }
}

impl Criterion {
    pub fn configure_from_args(self) -> Self {
        self
    }

    pub fn benchmark_group<S: Into<String>>(&mut self, name: S) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            samples: self.default_samples,
            throughput: None,
        }
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        run_one(name, self.smoke, self.default_samples, None, |b| f(b));
        self
    }

    /// Run `f` and return its measurement directly — an extension over
    /// upstream for `harness = false` benches that post-process timings
    /// (e.g. to write a JSON baseline).
    pub fn measure<F: FnMut(&mut Bencher)>(
        &mut self,
        name: &str,
        throughput: Option<Throughput>,
        mut f: F,
    ) -> Option<Measurement> {
        run_one(name, self.smoke, self.default_samples, throughput, |b| f(b))
    }

    /// True when running in `--test` smoke mode.
    pub fn is_smoke(&self) -> bool {
        self.smoke
    }
}

/// Mirror of `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Mirror of `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_and_reports() {
        let mut b = Bencher {
            smoke: false,
            samples: 3,
            result: None,
        };
        b.iter(|| std::hint::black_box(1 + 1));
        let m = b.result.expect("measurement recorded");
        assert!(m.median_nanos() > 0.0);
    }

    #[test]
    fn smoke_mode_runs_once_without_result() {
        let mut count = 0;
        let mut b = Bencher {
            smoke: true,
            samples: 10,
            result: None,
        };
        b.iter(|| count += 1);
        assert_eq!(count, 1);
        assert!(b.result.is_none());
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::from_parameter(16).0, "16");
        assert_eq!(BenchmarkId::new("f", 2).0, "f/2");
    }
}
