//! Differential-testing configurations for DES.
//!
//! The PR-3 rework introduced two independent fast paths:
//!
//! * **grouped triggers** (§IV-E) — the idle trigger is gated on waiting
//!   work, so the policy runs on quantum ticks, counter hits, and
//!   assignable idle events instead of on every plan end;
//! * **incremental recomputation** ([`crate::RecomputeMode`]) — per-core
//!   plans and water-filling grants are reused when their inputs are
//!   bitwise unchanged.
//!
//! This module enumerates the {trigger} × {recompute} matrix so the same
//! workload can be pushed through every combination and the results
//! compared. The contracts, asserted end-to-end by `tests/differential.rs`
//! at the workspace root (the runner needs the `qes-sim` engine, which
//! this crate must not depend on):
//!
//! * `Incremental` and `IncrementalQe` are **bit-identical** to `Full`
//!   in ⟨quality, energy⟩ (and every other report field) under *both*
//!   trigger modes;
//! * `Grouped` stays within the paper's 1 % quality tolerance of
//!   `PerEvent` while invoking the policy far less often.

use crate::des::{DesPolicy, RecomputeMode};
use crate::policy::TriggerRequest;

/// Which §IV-E triggering discipline drives the policy.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TriggerMode {
    /// Immediate Scheduling: invoke on every arrival and every plan end.
    PerEvent,
    /// Grouped Scheduling: the paper's 500 ms quantum, counter of 8, and
    /// the idle trigger gated on waiting work.
    Grouped,
}

impl TriggerMode {
    /// The corresponding [`TriggerRequest`].
    pub fn request(self) -> TriggerRequest {
        match self {
            TriggerMode::PerEvent => TriggerRequest::per_event(),
            TriggerMode::Grouped => TriggerRequest::paper_default(),
        }
    }

    /// Short label for report keys.
    pub fn label(self) -> &'static str {
        match self {
            TriggerMode::PerEvent => "per-event",
            TriggerMode::Grouped => "grouped",
        }
    }
}

/// One cell of the differential matrix.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DifferentialConfig {
    /// Triggering discipline.
    pub trigger: TriggerMode,
    /// Recomputation strategy.
    pub recompute: RecomputeMode,
}

impl DifferentialConfig {
    /// All six {per-event, grouped} × {full, incremental, incremental-qe}
    /// combinations.
    pub const MATRIX: [DifferentialConfig; 6] = [
        DifferentialConfig {
            trigger: TriggerMode::PerEvent,
            recompute: RecomputeMode::Full,
        },
        DifferentialConfig {
            trigger: TriggerMode::PerEvent,
            recompute: RecomputeMode::Incremental,
        },
        DifferentialConfig {
            trigger: TriggerMode::PerEvent,
            recompute: RecomputeMode::IncrementalQe,
        },
        DifferentialConfig {
            trigger: TriggerMode::Grouped,
            recompute: RecomputeMode::Full,
        },
        DifferentialConfig {
            trigger: TriggerMode::Grouped,
            recompute: RecomputeMode::Incremental,
        },
        DifferentialConfig {
            trigger: TriggerMode::Grouped,
            recompute: RecomputeMode::IncrementalQe,
        },
    ];

    /// A DES/C-DVFS policy configured for this cell.
    pub fn policy(&self) -> DesPolicy {
        DesPolicy::new()
            .with_triggers(self.trigger.request())
            .with_recompute(self.recompute)
    }

    /// Stable label, e.g. `grouped/incremental`.
    pub fn label(&self) -> String {
        let r = match self.recompute {
            RecomputeMode::Full => "full",
            RecomputeMode::Incremental => "incremental",
            RecomputeMode::IncrementalQe => "incremental-qe",
        };
        format!("{}/{}", self.trigger.label(), r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::SchedulingPolicy;

    #[test]
    fn matrix_covers_all_combinations_with_unique_labels() {
        let labels: Vec<String> = DifferentialConfig::MATRIX
            .iter()
            .map(|c| c.label())
            .collect();
        assert_eq!(labels.len(), 6);
        for (i, a) in labels.iter().enumerate() {
            for b in &labels[i + 1..] {
                assert_ne!(a, b);
            }
        }
        assert!(labels.contains(&"per-event/full".to_string()));
        assert!(labels.contains(&"grouped/incremental".to_string()));
        assert!(labels.contains(&"per-event/incremental-qe".to_string()));
        assert!(labels.contains(&"grouped/incremental-qe".to_string()));
    }

    #[test]
    fn policies_carry_the_requested_triggers() {
        for cell in DifferentialConfig::MATRIX {
            let p = cell.policy();
            assert_eq!(p.triggers(), cell.trigger.request());
            match cell.trigger {
                TriggerMode::PerEvent => {
                    assert!(p.triggers().on_arrival);
                    assert!(!p.triggers().idle_requires_work);
                }
                TriggerMode::Grouped => {
                    assert!(!p.triggers().on_arrival);
                    assert!(p.triggers().idle_requires_work);
                    assert!(p.triggers().quantum.is_some());
                }
            }
        }
    }
}
