//! Baseline schedulers: FCFS, LJF, SJF, each ± WF (paper §V-A, §V-E).
//!
//! The comparison policies are classic one-job-per-core schedulers:
//! whenever a core becomes idle, one job is taken from the ready queue —
//! the earliest-released (FCFS, equivalent to EDF under agreeable
//! deadlines), the largest (LJF) or the smallest (SJF) — and executed at
//! the *slowest* speed that finishes it before its deadline, to save
//! energy. If the core's power share cannot fund that speed, the job runs
//! at the share's maximum speed until its deadline (a partial result).
//!
//! Power sharing is *static equal* by default (every core owns `H/m`,
//! like S-DVFS hardware would enforce); the `+WF` variants redistribute
//! the budget dynamically over the cores' current speed requests with the
//! same water-filling policy DES uses, re-scaling running jobs at every
//! trigger.

use qes_core::schedule::{CoreSchedule, Slice};
use qes_core::speed_for_volume;
use qes_core::time::SimTime;
use qes_singlecore::online_qe::ReadyJob;

use crate::policy::{PolicyDecision, SchedulingPolicy, SystemView, TriggerRequest};
use crate::water_filling::water_filling;

/// Queue discipline of a baseline scheduler.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum BaselineOrder {
    /// First-come first-served (≡ EDF for agreeable deadlines).
    Fcfs,
    /// Longest job first (largest service demand).
    Ljf,
    /// Shortest job first (smallest service demand).
    Sjf,
}

impl BaselineOrder {
    /// Display name matching the paper's figures.
    pub fn name(self) -> &'static str {
        match self {
            BaselineOrder::Fcfs => "FCFS",
            BaselineOrder::Ljf => "LJF",
            BaselineOrder::Sjf => "SJF",
        }
    }
}

/// A baseline scheduling policy.
#[derive(Clone, Debug)]
pub struct BaselinePolicy {
    order: BaselineOrder,
    use_wf: bool,
}

impl BaselinePolicy {
    /// Baseline with static equal power sharing (the paper's default).
    pub fn new(order: BaselineOrder) -> Self {
        BaselinePolicy {
            order,
            use_wf: false,
        }
    }

    /// Baseline enhanced with dynamic WF power distribution (§V-E Fig. 6).
    pub fn with_wf(order: BaselineOrder) -> Self {
        BaselinePolicy {
            order,
            use_wf: true,
        }
    }

    /// The queue discipline.
    pub fn order(&self) -> BaselineOrder {
        self.order
    }

    /// Sort the waiting queue according to the discipline.
    fn sort_queue(&self, queue: &mut [ReadyJob]) {
        match self.order {
            BaselineOrder::Fcfs => queue.sort_by_key(|a| (a.job.release, a.job.id)),
            BaselineOrder::Ljf => queue.sort_by(|a, b| {
                b.job
                    .demand
                    .total_cmp(&a.job.demand)
                    .then(a.job.id.cmp(&b.job.id))
            }),
            BaselineOrder::Sjf => queue.sort_by(|a, b| {
                a.job
                    .demand
                    .total_cmp(&b.job.demand)
                    .then(a.job.id.cmp(&b.job.id))
            }),
        }
    }
}

/// One slice running `job` from `now`: at `speed`, until it completes or
/// hits its deadline.
fn run_slice(now: SimTime, r: &ReadyJob, speed: f64) -> Option<Slice> {
    if speed <= 0.0 {
        return None;
    }
    let us = r.remaining() * 1000.0 / speed;
    let end = SimTime::from_micros(now.as_micros() + us.round() as u64).min(r.job.deadline);
    (end > now).then_some(Slice {
        job: r.job.id,
        start: now,
        end,
        speed,
    })
}

impl SchedulingPolicy for BaselinePolicy {
    fn name(&self) -> String {
        if self.use_wf {
            format!("{}+WF", self.order.name())
        } else {
            self.order.name().to_string()
        }
    }

    fn triggers(&self) -> TriggerRequest {
        TriggerRequest::baseline()
    }

    fn on_trigger(&mut self, view: &SystemView<'_>) -> PolicyDecision {
        let m = view.num_cores();
        let now = view.now;

        // Fast path: static sharing with every core occupied. Nothing can
        // be assigned and no running slice changes, so skip the queue
        // sort and plan construction entirely — on a loaded server most
        // arrival triggers land here.
        if !self.use_wf && view.cores.iter().all(|c| c.live_jobs(now).next().is_some()) {
            return PolicyDecision::keep_all(m);
        }

        // Current occupant (live, unfinished job) per core.
        let mut occupant: Vec<Option<ReadyJob>> =
            view.cores.iter().map(|c| c.live_jobs(now).next()).collect();

        // Fill idle cores from the ordered queue.
        let mut queue: Vec<ReadyJob> = view
            .queue
            .iter()
            .filter(|r| r.job.deadline > now && r.remaining() > 1e-9)
            .copied()
            .collect();
        self.sort_queue(&mut queue);
        let mut queue_iter = queue.into_iter();
        let mut assignments = Vec::new();
        let mut newly_assigned = vec![false; m];
        for (core, occ) in occupant.iter_mut().enumerate() {
            if occ.is_none() {
                if let Some(job) = queue_iter.next() {
                    assignments.push((job.job.id, core));
                    *occ = Some(job);
                    newly_assigned[core] = true;
                }
            }
        }

        // Desired (slowest deadline-meeting) speed per core.
        let desired: Vec<f64> = occupant
            .iter()
            .map(|occ| {
                occ.map(|r| speed_for_volume(r.remaining(), r.job.deadline.saturating_since(now)))
                    .unwrap_or(0.0)
            })
            .collect();

        // Power caps: static equal share, or water-filled over requests.
        let caps: Vec<f64> = if self.use_wf {
            let requests: Vec<f64> = desired
                .iter()
                .map(|&s| view.model.dynamic_power(s))
                .collect();
            water_filling(&requests, view.budget)
        } else {
            vec![view.budget / m as f64; m]
        };

        // Plans: replan a core when its job is new, or (under WF) whenever
        // it has a job at all — the cap may have moved.
        let mut plans: Vec<Option<CoreSchedule>> = vec![None; m];
        for core in 0..m {
            let Some(r) = occupant[core] else {
                // An occupant-less core keeps its (empty) plan.
                continue;
            };
            if !self.use_wf && !newly_assigned[core] {
                continue; // static sharing: the running slice is unchanged
            }
            let cap_speed = view.model.speed_for_dynamic_power(caps[core]);
            let speed = desired[core].min(cap_speed);
            let plan = run_slice(now, &r, speed)
                .map(|s| CoreSchedule::new(vec![s]))
                .unwrap_or_default();
            plans[core] = Some(plan);
        }

        PolicyDecision {
            assignments,
            plans,
            discarded: Vec::new(),
            ambient_speeds: Vec::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::CoreView;
    use qes_core::job::{Job, JobId};
    use qes_core::power::{PolynomialPower, PowerModel};

    const MODEL: PolynomialPower = PolynomialPower::PAPER_SIM;

    fn ms(x: u64) -> SimTime {
        SimTime::from_millis(x)
    }

    fn rj(id: u32, r: u64, d: u64, w: f64) -> ReadyJob {
        ReadyJob {
            job: Job::new(id, ms(r), ms(d), w).unwrap(),
            processed: 0.0,
        }
    }

    fn view<'a>(
        now: SimTime,
        queue: &'a [ReadyJob],
        cores: &'a [CoreView<'a>],
        budget: f64,
    ) -> SystemView<'a> {
        SystemView {
            now,
            queue,
            cores,
            budget,
            model: &MODEL,
        }
    }

    #[test]
    fn names() {
        assert_eq!(BaselinePolicy::new(BaselineOrder::Fcfs).name(), "FCFS");
        assert_eq!(BaselinePolicy::with_wf(BaselineOrder::Sjf).name(), "SJF+WF");
        assert_eq!(BaselinePolicy::new(BaselineOrder::Ljf).name(), "LJF");
    }

    #[test]
    fn fcfs_picks_earliest_release() {
        let mut p = BaselinePolicy::new(BaselineOrder::Fcfs);
        let queue = vec![
            rj(0, 20, 170, 50.0),
            rj(1, 5, 155, 90.0),
            rj(2, 10, 160, 10.0),
        ];
        let cores = vec![CoreView::default()];
        let d = p.on_trigger(&view(ms(30), &queue, &cores, 20.0));
        assert_eq!(d.assignments, vec![(JobId(1), 0)]);
    }

    #[test]
    fn ljf_picks_largest_sjf_smallest() {
        let queue = vec![
            rj(0, 0, 150, 50.0),
            rj(1, 0, 150, 90.0),
            rj(2, 0, 150, 10.0),
        ];
        let cores = vec![CoreView::default()];
        let mut ljf = BaselinePolicy::new(BaselineOrder::Ljf);
        let d = ljf.on_trigger(&view(ms(0), &queue, &cores, 20.0));
        assert_eq!(d.assignments[0].0, JobId(1));
        let mut sjf = BaselinePolicy::new(BaselineOrder::Sjf);
        let d = sjf.on_trigger(&view(ms(0), &queue, &cores, 20.0));
        assert_eq!(d.assignments[0].0, JobId(2));
    }

    #[test]
    fn runs_at_slowest_deadline_meeting_speed() {
        let mut p = BaselinePolicy::new(BaselineOrder::Fcfs);
        // 100 units, 200 ms window → 0.5 GHz, well under the 2 GHz cap.
        let queue = vec![rj(0, 0, 200, 100.0)];
        let cores = vec![CoreView::default()];
        let d = p.on_trigger(&view(ms(0), &queue, &cores, 20.0));
        let plan = d.plans[0].as_ref().unwrap();
        let s = &plan.slices()[0];
        assert!((s.speed - 0.5).abs() < 1e-9);
        assert_eq!(s.end, ms(200)); // finishes exactly at the deadline
    }

    #[test]
    fn clamps_at_share_speed_and_runs_to_deadline() {
        let mut p = BaselinePolicy::new(BaselineOrder::Fcfs);
        // 400 units in 100 ms needs 4 GHz; share 20 W allows 2 GHz.
        let queue = vec![rj(0, 0, 100, 400.0)];
        let cores = vec![CoreView::default()];
        let d = p.on_trigger(&view(ms(0), &queue, &cores, 20.0));
        let s = &d.plans[0].as_ref().unwrap().slices()[0];
        assert!((s.speed - 2.0).abs() < 1e-9);
        assert_eq!(s.end, ms(100)); // till deadline, partial result
    }

    #[test]
    fn one_job_per_core_at_a_time() {
        let mut p = BaselinePolicy::new(BaselineOrder::Fcfs);
        let queue = vec![
            rj(0, 0, 150, 50.0),
            rj(1, 0, 150, 50.0),
            rj(2, 0, 150, 50.0),
        ];
        let cores = vec![CoreView::default(), CoreView::default()];
        let d = p.on_trigger(&view(ms(0), &queue, &cores, 20.0));
        assert_eq!(d.assignments.len(), 2); // third job waits
    }

    #[test]
    fn busy_core_not_reassigned_under_static_sharing() {
        let mut p = BaselinePolicy::new(BaselineOrder::Fcfs);
        let running = [rj(9, 0, 150, 100.0)];
        let occupied = CoreView {
            jobs: &running,
            busy: true,
        };
        let queue = vec![rj(0, 10, 160, 50.0)];
        let d = p.on_trigger(&view(ms(20), &queue, &[occupied], 20.0));
        assert!(d.assignments.is_empty());
        // Running slice untouched: either an explicit None or the
        // allocation-free keep-all (empty plans vector).
        assert!(d.plans.first().is_none_or(|p| p.is_none()));
    }

    #[test]
    fn wf_borrows_power_for_the_hot_core() {
        let mut p = BaselinePolicy::with_wf(BaselineOrder::Fcfs);
        // Core 0 busy with a hot job needing 3 GHz (45 W); core 1 idle
        // takes a cold job needing 0.5 GHz (1.25 W). Budget 40 W: static
        // sharing would cap the hot job at 2 GHz, WF grants it 38.75 W.
        let hot_jobs = [rj(0, 0, 100, 300.0)];
        let hot = CoreView {
            jobs: &hot_jobs,
            busy: true,
        };
        let cold = CoreView::default();
        let queue = vec![rj(1, 0, 200, 100.0)];
        let d = p.on_trigger(&view(ms(0), &queue, &[hot, cold], 40.0));
        let hot_speed = d.plans[0].as_ref().unwrap().slices()[0].speed;
        let cold_speed = d.plans[1].as_ref().unwrap().slices()[0].speed;
        assert!((cold_speed - 0.5).abs() < 1e-9);
        // WF grant = min(45, 40 − 1.25) = 38.75 W → 2.78 GHz > 2 GHz.
        assert!(hot_speed > 2.0, "hot speed {hot_speed}");
        let total = MODEL.dynamic_power(hot_speed) + MODEL.dynamic_power(cold_speed);
        assert!(total <= 40.0 + 1e-6);
    }

    #[test]
    fn wf_replans_running_jobs() {
        let mut p = BaselinePolicy::with_wf(BaselineOrder::Fcfs);
        let running = [rj(0, 0, 100, 300.0)];
        let busy = CoreView {
            jobs: &running,
            busy: true,
        };
        let d = p.on_trigger(&view(ms(10), &[], &[busy], 40.0));
        // Even with nothing to assign, the busy core gets a fresh plan.
        assert!(d.plans[0].is_some());
    }

    #[test]
    fn expired_queue_jobs_skipped() {
        let mut p = BaselinePolicy::new(BaselineOrder::Fcfs);
        let queue = vec![rj(0, 0, 50, 30.0), rj(1, 0, 150, 30.0)];
        let cores = vec![CoreView::default()];
        let d = p.on_trigger(&view(ms(100), &queue, &cores, 20.0));
        assert_eq!(d.assignments, vec![(JobId(1), 0)]);
    }
}
