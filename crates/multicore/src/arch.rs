//! Architecture models: No-DVFS, S-DVFS, C-DVFS (paper §V-A).
//!
//! The paper evaluates DES on three processor architectures with different
//! DVFS capability; [`ArchKind`] selects which degradation of the full
//! algorithm runs:
//!
//! * **No-DVFS** — cores run at one fixed speed (the speed funded by the
//!   static equal power share `H/m`) and cannot scale down, so they draw
//!   that power *continuously*, busy or idle. DES degrades to C-RR +
//!   Quality-OPT per core (steps 2–3 and the Energy-OPT step are skipped).
//! * **S-DVFS** — all cores share one clock: the speed may change at each
//!   invocation but is common to every core, busy or idle. The shared
//!   power is the *maximum* per-core request, clamped by the equal share.
//! * **C-DVFS** — per-core DVFS, the architecture DES is designed for:
//!   the full C-RR + WF + Online-QE pipeline.
//!
//! This module also hosts [`fixed_speed_plan`], the fixed-speed analogue
//! of Online-QE used by the first two architectures: the myopic
//! Quality-OPT step (with release rewinding for sunk work) followed by an
//! EDF packing of the remaining volumes at the fixed speed — the
//! Energy-OPT step is "ignored" exactly as §V-A prescribes.

use qes_core::job::JobId;
use qes_core::schedule::{CoreSchedule, Slice};
use qes_core::time::SimTime;
use qes_singlecore::online_qe::{myopic_volumes, ReadyJob};

/// Which DVFS capability the simulated processor offers (§V-A).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ArchKind {
    /// No speed scaling: fixed speed, constant power draw.
    NoDvfs,
    /// System-level DVFS: one shared, changeable speed for all cores.
    SDvfs,
    /// Core-level DVFS: each core scales independently.
    CDvfs,
}

impl ArchKind {
    /// Display name matching the paper's figures.
    pub fn name(self) -> &'static str {
        match self {
            ArchKind::NoDvfs => "No-DVFS",
            ArchKind::SDvfs => "S-DVFS",
            ArchKind::CDvfs => "C-DVFS",
        }
    }
}

impl std::fmt::Display for ArchKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Myopic fixed-speed plan for one core: Quality-OPT volumes (sunk work
/// rewound) packed EDF at `speed` from `now`. Returns the plan and the
/// non-partial jobs discarded because they cannot finish (§V-D).
pub fn fixed_speed_plan(
    now: SimTime,
    ready: &[ReadyJob],
    speed: f64,
) -> (CoreSchedule, Vec<JobId>) {
    let mut discarded = Vec::new();
    if speed <= 0.0 {
        return (CoreSchedule::default(), discarded);
    }
    let mut active: Vec<ReadyJob> = ready
        .iter()
        .filter(|r| r.job.deadline > now && r.remaining() > 1e-9)
        .copied()
        .collect();

    // §V-D discard loop: drop the worst unfinishable non-partial job and
    // recompute until stable.
    let volumes = loop {
        if active.is_empty() {
            return (CoreSchedule::default(), discarded);
        }
        let volumes = myopic_volumes(now, &active, speed);
        let worst = active
            .iter()
            .filter_map(|r| {
                let p = volumes.get(&r.job.id).copied().unwrap_or(0.0);
                let shortfall = r.job.demand - p;
                (!r.job.partial && shortfall > 1e-6).then_some((r.job.id, shortfall))
            })
            .max_by(|a, b| a.1.total_cmp(&b.1));
        match worst {
            Some((id, _)) => {
                discarded.push(id);
                active.retain(|r| r.job.id != id);
            }
            None => break volumes,
        }
    };

    // EDF-pack the remaining (future) volumes at the fixed speed. All jobs
    // are ready now, so deadline order alone decides the sequence.
    active.sort_by_key(|a| (a.job.deadline, a.job.id));
    let us_per_unit = 1000.0 / speed;
    let mut slices = Vec::with_capacity(active.len());
    let mut cur = now.as_micros() as f64;
    for r in &active {
        let total = volumes.get(&r.job.id).copied().unwrap_or(0.0);
        let future = total - r.processed;
        if future <= 1e-9 {
            continue;
        }
        let start = cur;
        let end = start + future * us_per_unit;
        cur = end;
        let si = SimTime::from_micros(start.round() as u64);
        // Clamp at the deadline: the myopic volumes are feasible, so the
        // clamp only absorbs sub-µs rounding.
        let ei = SimTime::from_micros((end.round() as u64).min(r.job.deadline.as_micros()));
        if ei > si {
            slices.push(Slice {
                job: r.job.id,
                start: si,
                end: ei,
                speed,
            });
        }
    }
    (CoreSchedule::new(slices), discarded)
}

#[cfg(test)]
mod tests {
    use super::*;
    use qes_core::job::Job;

    fn ms(x: u64) -> SimTime {
        SimTime::from_millis(x)
    }

    fn rj(id: u32, r: u64, d: u64, w: f64, done: f64) -> ReadyJob {
        ReadyJob {
            job: Job::new(id, ms(r), ms(d), w).unwrap(),
            processed: done,
        }
    }

    #[test]
    fn arch_names() {
        assert_eq!(ArchKind::NoDvfs.name(), "No-DVFS");
        assert_eq!(ArchKind::SDvfs.to_string(), "S-DVFS");
        assert_eq!(ArchKind::CDvfs.name(), "C-DVFS");
    }

    #[test]
    fn fixed_speed_plan_underload_completes_all() {
        let ready = vec![rj(0, 0, 150, 50.0, 0.0), rj(1, 0, 160, 60.0, 0.0)];
        let (plan, disc) = fixed_speed_plan(ms(0), &ready, 1.0);
        assert!(disc.is_empty());
        let vols = plan.volumes();
        assert!((vols[&JobId(0)] - 50.0).abs() < 0.05);
        assert!((vols[&JobId(1)] - 60.0).abs() < 0.05);
        // Sequential at constant speed: no overlap, EDF order.
        let s = plan.slices();
        assert!(s[0].end <= s[1].start);
        assert_eq!(s[0].job, JobId(0));
    }

    #[test]
    fn fixed_speed_plan_overload_equalizes() {
        // 100 ms window, 1 GHz → 100 units for two 200-unit jobs.
        let ready = vec![rj(0, 0, 100, 200.0, 0.0), rj(1, 0, 100, 200.0, 0.0)];
        let (plan, _) = fixed_speed_plan(ms(0), &ready, 1.0);
        let vols = plan.volumes();
        assert!((vols[&JobId(0)] - 50.0).abs() < 1.0);
        assert!((vols[&JobId(1)] - 50.0).abs() < 1.0);
    }

    #[test]
    fn fixed_speed_plan_counts_sunk_work() {
        let ready = vec![rj(0, 0, 100, 200.0, 80.0), rj(1, 0, 100, 200.0, 0.0)];
        let (plan, _) = fixed_speed_plan(ms(0), &ready, 1.0);
        let vols = plan.volumes();
        // Equalized totals 90/90: future work 10 vs 90.
        assert!((vols.get(&JobId(0)).copied().unwrap_or(0.0) - 10.0).abs() < 1.5);
        assert!((vols.get(&JobId(1)).copied().unwrap_or(0.0) - 90.0).abs() < 1.5);
    }

    #[test]
    fn fixed_speed_plan_discards_unfinishable_non_partial() {
        let mut a = rj(0, 0, 100, 80.0, 0.0);
        let mut b = rj(1, 0, 100, 80.0, 0.0);
        a.job.partial = false;
        b.job.partial = false;
        let (plan, disc) = fixed_speed_plan(ms(0), &[a, b], 1.0);
        assert_eq!(disc.len(), 1);
        let vols = plan.volumes();
        assert_eq!(vols.len(), 1);
        let (_, v) = vols.iter().next().unwrap();
        assert!((v - 80.0).abs() < 0.05);
    }

    #[test]
    fn zero_speed_plans_nothing() {
        let ready = vec![rj(0, 0, 100, 50.0, 0.0)];
        let (plan, disc) = fixed_speed_plan(ms(0), &ready, 0.0);
        assert!(plan.is_empty());
        assert!(disc.is_empty());
    }

    #[test]
    fn slices_start_at_or_after_now() {
        let now = ms(40);
        let ready = vec![rj(0, 0, 150, 100.0, 20.0), rj(1, 30, 180, 100.0, 0.0)];
        let (plan, _) = fixed_speed_plan(now, &ready, 2.0);
        for s in plan.slices() {
            assert!(s.start >= now);
            assert!(s.end <= ms(180));
            assert!((s.speed - 2.0).abs() < 1e-12);
        }
    }
}
