//! **DES (Dynamic Equal Sharing)** — the paper's multicore scheduler
//! (§IV-D).
//!
//! DES divides the global multicore problem into per-core single-core
//! problems by equal sharing of jobs and power. Each invocation runs four
//! steps:
//!
//! 1. **Ready-job-distribution** — deal waiting jobs to cores with C-RR.
//! 2. **Budget-free-independent-core-scheduling** — per core, compute the
//!    Energy-OPT schedule pretending power were unlimited; read off each
//!    core's instantaneous power request `P_i(t)` (all jobs re-release at
//!    `t`, so the YDS profile is non-increasing and `P_i(t)` is the peak).
//!    If `Σ P_i(t) ≤ H`, these schedules already complete every job within
//!    the budget — done.
//! 3. **Dynamic-power-distribution** — otherwise water-fill the budget
//!    over the requests.
//! 4. **Budget-bounded-independent-core-scheduling** — per core, run
//!    Online-QE under the granted power.
//!
//! [`ArchKind`] selects the §V-A degradations (No-DVFS, S-DVFS), and an
//! optional [`DiscreteSpeedSet`] enables the §V-F discrete-speed variant.

use qes_core::job::JobId;
use qes_core::job::{Job, JobSet};
use qes_core::power::DiscreteSpeedSet;
use qes_core::schedule::CoreSchedule;
use qes_singlecore::energy_opt::energy_opt;
use qes_singlecore::online_qe::{online_qe_with_mode, OnlineMode, ReadyJob};

use crate::arch::{fixed_speed_plan, ArchKind};
use crate::crr::CrrDistributor;
use crate::discrete::{rectify_speeds, snap_plan_up};
use crate::policy::{PolicyDecision, SchedulingPolicy, SystemView, TriggerRequest};
use crate::water_filling::water_filling;

/// How DES distributes ready jobs to cores (ablation knob; the paper's
/// design is [`JobSharing::Crr`], §IV-B).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum JobSharing {
    /// Cumulative round-robin: the dealing cursor persists across
    /// invocations (the paper's choice).
    #[default]
    Crr,
    /// Plain round-robin restarting at core 0 every invocation — the
    /// strawman §IV-B argues against; kept for the ablation study.
    RestartRr,
}

/// How DES distributes the power budget (ablation knob; the paper's
/// design is [`PowerSharing::WaterFilling`], §IV-C).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum PowerSharing {
    /// Dynamic water-filling over the per-core requests (the paper's
    /// choice).
    #[default]
    WaterFilling,
    /// Static equal sharing: every core owns `H/m` regardless of load —
    /// what the baselines use; kept for the ablation study.
    StaticEqual,
}

/// The DES scheduling policy.
#[derive(Clone, Debug)]
pub struct DesPolicy {
    arch: ArchKind,
    crr: CrrDistributor,
    discrete: Option<DiscreteSpeedSet>,
    triggers: TriggerRequest,
    job_sharing: JobSharing,
    power_sharing: PowerSharing,
    mode: OnlineMode,
}

impl DesPolicy {
    /// Full DES on core-level DVFS (the paper's design target).
    pub fn new() -> Self {
        Self::on_arch(ArchKind::CDvfs)
    }

    /// DES degraded to the given architecture (§V-A).
    pub fn on_arch(arch: ArchKind) -> Self {
        DesPolicy {
            arch,
            crr: CrrDistributor::new(),
            discrete: None,
            triggers: TriggerRequest::paper_default(),
            job_sharing: JobSharing::Crr,
            power_sharing: PowerSharing::WaterFilling,
            mode: OnlineMode::Eager,
        }
    }

    /// DES with discrete speed scaling (§V-F); implies C-DVFS.
    pub fn with_discrete(set: DiscreteSpeedSet) -> Self {
        DesPolicy {
            discrete: Some(set),
            ..Self::on_arch(ArchKind::CDvfs)
        }
    }

    /// Override the triggering events (default: paper's §V-B settings).
    pub fn with_triggers(mut self, t: TriggerRequest) -> Self {
        self.triggers = t;
        self
    }

    /// Ablation: choose the job-distribution policy (default: C-RR).
    pub fn with_job_sharing(mut self, j: JobSharing) -> Self {
        self.job_sharing = j;
        self
    }

    /// Ablation: choose the power-distribution policy (default: WF).
    pub fn with_power_sharing(mut self, p: PowerSharing) -> Self {
        self.power_sharing = p;
        self
    }

    /// Ablation: how the budget-bounded step realizes its volumes
    /// (default: eager — see `OnlineMode`).
    pub fn with_mode(mut self, mode: OnlineMode) -> Self {
        self.mode = mode;
        self
    }

    /// The architecture this instance runs on.
    pub fn arch(&self) -> ArchKind {
        self.arch
    }

    /// Step 3: distribute the budget per the configured policy.
    fn distribute_power(&self, requests: &[f64], budget: f64, m: usize) -> Vec<f64> {
        match self.power_sharing {
            PowerSharing::WaterFilling => water_filling(requests, budget),
            PowerSharing::StaticEqual => vec![budget / m as f64; m],
        }
    }

    /// Step 2: per-core unconstrained Energy-OPT; returns each core's
    /// instantaneous power request and the schedule that produced it.
    fn budget_free_probe(
        view: &SystemView<'_>,
        per_core: &[Vec<ReadyJob>],
    ) -> (Vec<f64>, Vec<CoreSchedule>) {
        let mut requests = Vec::with_capacity(per_core.len());
        let mut schedules = Vec::with_capacity(per_core.len());
        for ready in per_core {
            // Re-release every job at `now` with its remaining demand: the
            // sunk work needs no future power.
            let jobs: Vec<Job> = ready
                .iter()
                .filter(|r| r.remaining() > 1e-9)
                .map(|r| Job {
                    release: view.now,
                    demand: r.remaining(),
                    ..r.job
                })
                .collect();
            let res = energy_opt(&JobSet::new_unchecked(jobs));
            requests.push(view.model.dynamic_power(res.initial_speed()));
            schedules.push(res.schedule);
        }
        (requests, schedules)
    }
}

impl Default for DesPolicy {
    fn default() -> Self {
        Self::new()
    }
}

impl SchedulingPolicy for DesPolicy {
    fn name(&self) -> String {
        let mut n = format!("DES/{}", self.arch.name());
        if self.discrete.is_some() {
            n.push_str("/discrete");
        }
        if self.job_sharing == JobSharing::RestartRr {
            n.push_str("/restart-rr");
        }
        if self.power_sharing == PowerSharing::StaticEqual {
            n.push_str("/static-power");
        }
        if self.mode == OnlineMode::Efficient {
            n.push_str("/efficient");
        }
        n
    }

    fn triggers(&self) -> TriggerRequest {
        self.triggers
    }

    fn on_trigger(&mut self, view: &SystemView<'_>) -> PolicyDecision {
        let m = view.num_cores();
        let now = view.now;

        // Step 1: C-RR distribution of the waiting queue.
        let live_queue: Vec<&ReadyJob> = view
            .queue
            .iter()
            .filter(|r| r.job.deadline > now && r.remaining() > 1e-9)
            .collect();
        if self.job_sharing == JobSharing::RestartRr {
            // Ablation: forget the cumulative cursor every invocation.
            self.crr = CrrDistributor::new();
        }
        let dealt = self.crr.assign(live_queue.len(), m);
        let mut assignments = Vec::with_capacity(live_queue.len());
        let mut per_core: Vec<Vec<ReadyJob>> = view
            .cores
            .iter()
            .map(|c| c.live_jobs(now).collect())
            .collect();
        for (r, &core) in live_queue.iter().zip(&dealt) {
            assignments.push((r.job.id, core));
            per_core[core].push(**r);
        }

        let mut plans: Vec<Option<CoreSchedule>> = Vec::with_capacity(m);
        let mut discarded: Vec<JobId> = Vec::new();
        let mut ambient = vec![0.0; m];

        match self.arch {
            ArchKind::NoDvfs => {
                // Fixed speed funded by the static equal share; cores
                // cannot scale down, so they draw it even when idle.
                let s_fix = view.model.speed_for_dynamic_power(view.budget / m as f64);
                for ready in &per_core {
                    let (plan, disc) = fixed_speed_plan(now, ready, s_fix);
                    plans.push(Some(plan));
                    discarded.extend(disc);
                }
                ambient = vec![s_fix; m];
            }
            ArchKind::SDvfs => {
                // One shared clock: the maximum request, clamped by the
                // equal share (WF over identical requests).
                let (requests, _) = Self::budget_free_probe(view, &per_core);
                let h_max = requests.iter().fold(0.0, |a: f64, &b| a.max(b));
                let shared = h_max.min(view.budget / m as f64);
                let s_shared = view.model.speed_for_dynamic_power(shared);
                for ready in &per_core {
                    let (plan, disc) = fixed_speed_plan(now, ready, s_shared);
                    plans.push(Some(plan));
                    discarded.extend(disc);
                }
                // Idle cores stay locked to the shared clock.
                ambient = vec![s_shared; m];
            }
            ArchKind::CDvfs => {
                let (requests, free_schedules) = Self::budget_free_probe(view, &per_core);
                let total: f64 = requests.iter().sum();
                match &self.discrete {
                    None if total <= view.budget => {
                        // Step 2 early exit: the unconstrained schedules
                        // already fit the budget and complete every job.
                        plans = free_schedules.into_iter().map(Some).collect();
                    }
                    None => {
                        // Steps 3–4: distribute power, then Online-QE per
                        // core. The budget binds here, so the grant is
                        // spent eagerly by default (see `OnlineMode`).
                        let grants = self.distribute_power(&requests, view.budget, m);
                        for (ready, &grant) in per_core.iter().zip(&grants) {
                            let out = online_qe_with_mode(now, ready, view.model, grant, self.mode);
                            discarded.extend(out.discarded);
                            plans.push(Some(out.schedule));
                        }
                    }
                    Some(set) => {
                        // §V-F: always rectify the WF grants to discrete
                        // speeds, then Online-QE under the rectified power
                        // with slice speeds snapped onto the ladder.
                        let grants = self.distribute_power(&requests, view.budget, m);
                        let speeds = rectify_speeds(&grants, set, view.model, view.budget);
                        for (ready, &cap) in per_core.iter().zip(&speeds) {
                            let grant = view.model.dynamic_power(cap);
                            let out = online_qe_with_mode(now, ready, view.model, grant, self.mode);
                            discarded.extend(out.discarded);
                            plans.push(Some(snap_plan_up(&out.schedule, set)));
                        }
                    }
                }
            }
        }

        PolicyDecision {
            assignments,
            plans,
            discarded,
            ambient_speeds: ambient,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::CoreView;
    use qes_core::power::{PolynomialPower, PowerModel};
    use qes_core::time::SimTime;

    const MODEL: PolynomialPower = PolynomialPower::PAPER_SIM;

    fn ms(x: u64) -> SimTime {
        SimTime::from_millis(x)
    }

    fn rj(id: u32, r: u64, d: u64, w: f64) -> ReadyJob {
        ReadyJob {
            job: Job::new(id, ms(r), ms(d), w).unwrap(),
            processed: 0.0,
        }
    }

    fn view<'a>(
        now: SimTime,
        queue: &'a [ReadyJob],
        cores: &'a [CoreView<'a>],
        budget: f64,
    ) -> SystemView<'a> {
        SystemView {
            now,
            queue,
            cores,
            budget,
            model: &MODEL,
        }
    }

    #[test]
    fn distributes_queue_round_robin() {
        let mut des = DesPolicy::new();
        let queue = vec![
            rj(0, 0, 150, 50.0),
            rj(1, 0, 150, 50.0),
            rj(2, 0, 150, 50.0),
        ];
        let cores = vec![CoreView::default(), CoreView::default()];
        let d = des.on_trigger(&view(ms(0), &queue, &cores, 40.0));
        let targets: Vec<usize> = d.assignments.iter().map(|&(_, c)| c).collect();
        assert_eq!(targets, vec![0, 1, 0]);
        // Cumulative: the next invocation starts at core 1.
        let queue2 = vec![rj(3, 0, 300, 50.0)];
        let d2 = des.on_trigger(&view(ms(0), &queue2, &cores, 40.0));
        assert_eq!(d2.assignments[0].1, 1);
    }

    #[test]
    fn light_load_uses_budget_free_schedules() {
        // One small job per core: unconstrained YDS fits the budget, all
        // jobs complete, and speeds are the slow deadline-stretching ones.
        let mut des = DesPolicy::new();
        let queue = vec![rj(0, 0, 150, 30.0), rj(1, 0, 150, 30.0)];
        let cores = vec![CoreView::default(), CoreView::default()];
        let d = des.on_trigger(&view(ms(0), &queue, &cores, 40.0));
        let mut total = 0.0;
        for p in d.plans.iter().flatten() {
            total += p.speed_plan().total_volume();
            // 30 units over 150 ms = 0.2 GHz.
            assert!(p.speed_plan().max_speed() < 0.3);
        }
        assert!((total - 60.0).abs() < 0.1);
        assert!(d.discarded.is_empty());
        assert!(d.ambient_speeds.iter().all(|&s| s == 0.0));
    }

    #[test]
    fn heavy_load_water_fills_and_respects_budget() {
        let mut des = DesPolicy::new();
        // Two cores, very unequal load; tiny budget forces WF.
        let queue = vec![
            rj(0, 0, 100, 300.0),
            rj(1, 0, 100, 20.0),
            rj(2, 0, 100, 300.0),
        ];
        let cores = vec![CoreView::default(), CoreView::default()];
        let budget = 10.0;
        let d = des.on_trigger(&view(ms(0), &queue, &cores, budget));
        // Instantaneous power at any slice boundary must fit the budget.
        let mut instants = Vec::new();
        for p in d.plans.iter().flatten() {
            for s in p.slices() {
                instants.push(s.start);
                instants.push(s.end);
            }
        }
        for &t in &instants {
            let power: f64 = d
                .plans
                .iter()
                .flatten()
                .map(|p| MODEL.dynamic_power(p.speed_plan().speed_at(t)))
                .sum();
            assert!(power <= budget + 1e-6, "power {power} at {t:?}");
        }
    }

    #[test]
    fn heavy_loaded_core_gets_more_power_than_light_one() {
        let mut des = DesPolicy::new();
        // Core 0 gets the heavy job, core 1 the light one (C-RR order).
        let queue = vec![rj(0, 0, 100, 400.0), rj(1, 0, 100, 40.0)];
        let cores = vec![CoreView::default(), CoreView::default()];
        let d = des.on_trigger(&view(ms(0), &queue, &cores, 15.0));
        let peak = |i: usize| {
            d.plans[i]
                .as_ref()
                .map(|p| p.speed_plan().peak_power(&MODEL))
                .unwrap_or(0.0)
        };
        assert!(peak(0) > peak(1), "heavy {} vs light {}", peak(0), peak(1));
    }

    #[test]
    fn no_dvfs_runs_fixed_speed_with_ambient_draw() {
        let mut des = DesPolicy::on_arch(ArchKind::NoDvfs);
        let queue = vec![rj(0, 0, 150, 30.0)];
        let cores = vec![CoreView::default(), CoreView::default()];
        let budget = 40.0; // share 20 W → 2 GHz fixed
        let d = des.on_trigger(&view(ms(0), &queue, &cores, budget));
        for p in d.plans.iter().flatten() {
            for s in p.slices() {
                assert!((s.speed - 2.0).abs() < 1e-9);
            }
        }
        assert!(d.ambient_speeds.iter().all(|&s| (s - 2.0).abs() < 1e-9));
    }

    #[test]
    fn s_dvfs_locks_all_cores_to_shared_speed() {
        let mut des = DesPolicy::on_arch(ArchKind::SDvfs);
        // Unequal load: shared speed = max request clamped by share.
        let queue = vec![rj(0, 0, 100, 150.0), rj(1, 0, 100, 10.0)];
        let cores = vec![CoreView::default(), CoreView::default()];
        let d = des.on_trigger(&view(ms(0), &queue, &cores, 40.0));
        // Max request: 150 units/100 ms = 1.5 GHz → 11.25 W < 20 W share.
        let expect = 1.5;
        for p in d.plans.iter().flatten() {
            for s in p.slices() {
                assert!((s.speed - expect).abs() < 1e-6, "speed {}", s.speed);
            }
        }
        for &s in &d.ambient_speeds {
            assert!((s - expect).abs() < 1e-6);
        }
    }

    #[test]
    fn s_dvfs_clamps_shared_speed_at_equal_share() {
        let mut des = DesPolicy::on_arch(ArchKind::SDvfs);
        // A hot core wanting 4 GHz (80 W) with a 40 W budget over 2 cores:
        // clamp at 20 W → 2 GHz.
        let queue = vec![rj(0, 0, 100, 400.0)];
        let cores = vec![CoreView::default(), CoreView::default()];
        let d = des.on_trigger(&view(ms(0), &queue, &cores, 40.0));
        let plan = d.plans[0].as_ref().unwrap();
        assert!((plan.speed_plan().max_speed() - 2.0).abs() < 1e-6);
    }

    #[test]
    fn discrete_mode_emits_only_ladder_speeds() {
        let set = crate::discrete::default_ladder(&MODEL);
        let mut des = DesPolicy::with_discrete(set.clone());
        let queue = vec![
            rj(0, 0, 100, 170.0),
            rj(1, 0, 100, 90.0),
            rj(2, 0, 100, 260.0),
        ];
        let cores = vec![CoreView::default(), CoreView::default()];
        let d = des.on_trigger(&view(ms(0), &queue, &cores, 30.0));
        for p in d.plans.iter().flatten() {
            for s in p.slices() {
                let on_ladder = set.speeds().iter().any(|&l| (l - s.speed).abs() < 1e-9);
                assert!(on_ladder, "speed {} not on ladder", s.speed);
            }
        }
    }

    #[test]
    fn empty_system_is_a_noop() {
        let mut des = DesPolicy::new();
        let cores = vec![CoreView::default(); 4];
        let d = des.on_trigger(&view(ms(100), &[], &cores, 320.0));
        assert!(d.assignments.is_empty());
        assert!(d.discarded.is_empty());
        for p in d.plans.iter().flatten() {
            assert!(p.is_empty());
        }
    }

    #[test]
    fn expired_queue_jobs_are_not_assigned() {
        let mut des = DesPolicy::new();
        let queue = vec![rj(0, 0, 50, 30.0), rj(1, 0, 150, 30.0)];
        let cores = vec![CoreView::default()];
        let d = des.on_trigger(&view(ms(100), &queue, &cores, 20.0));
        assert_eq!(d.assignments.len(), 1);
        assert_eq!(d.assignments[0].0, JobId(1));
    }

    #[test]
    fn restart_rr_always_deals_from_core_zero() {
        let mut des = DesPolicy::new().with_job_sharing(JobSharing::RestartRr);
        let cores = vec![
            CoreView::default(),
            CoreView::default(),
            CoreView::default(),
        ];
        for round in 0..3 {
            let queue = vec![rj(round, 0, 300, 10.0)];
            let d = des.on_trigger(&view(ms(0), &queue, &cores, 60.0));
            assert_eq!(
                d.assignments[0].1, 0,
                "round {round} should restart at core 0"
            );
        }
        // Whereas C-RR advances the cursor.
        let mut des = DesPolicy::new();
        let mut targets = Vec::new();
        for round in 0..3 {
            let queue = vec![rj(10 + round, 0, 300, 10.0)];
            let d = des.on_trigger(&view(ms(0), &queue, &cores, 60.0));
            targets.push(d.assignments[0].1);
        }
        assert_eq!(targets, vec![0, 1, 2]);
    }

    #[test]
    fn static_power_sharing_caps_each_core_at_equal_share() {
        // One hot core wanting far more than H/m: WF would grant it extra;
        // static sharing must cap its speed at the share speed.
        let mut des = DesPolicy::new().with_power_sharing(PowerSharing::StaticEqual);
        let queue = vec![rj(0, 0, 100, 400.0), rj(1, 0, 100, 10.0)];
        let cores = vec![CoreView::default(), CoreView::default()];
        let d = des.on_trigger(&view(ms(0), &queue, &cores, 40.0));
        let share_speed = MODEL.speed_for_dynamic_power(20.0);
        for p in d.plans.iter().flatten() {
            assert!(
                p.speed_plan().max_speed() <= share_speed + 1e-9,
                "speed {} exceeds the static share {}",
                p.speed_plan().max_speed(),
                share_speed
            );
        }
    }

    #[test]
    fn efficient_mode_stretches_where_eager_front_loads() {
        // One overloaded-enough job that WF engages: eager runs at s_max
        // (constant grant speed), efficient applies Energy-OPT stretching
        // (slower than s_max somewhere).
        let queue = vec![rj(0, 0, 100, 300.0), rj(1, 0, 100, 300.0)];
        let cores = vec![CoreView::default(), CoreView::default()];
        let budget = 20.0; // forces the WF path (each core wants 3 GHz = 45 W)
        let mut eager = DesPolicy::new();
        let de = eager.on_trigger(&view(ms(0), &queue, &cores, budget));
        let mut efficient = DesPolicy::new().with_mode(OnlineMode::Efficient);
        let df = efficient.on_trigger(&view(ms(0), &queue, &cores, budget));
        let span = |d: &crate::policy::PolicyDecision| -> u64 {
            d.plans
                .iter()
                .flatten()
                .filter_map(|p| p.slices().last().map(|s| s.end.as_micros()))
                .max()
                .unwrap_or(0)
        };
        // Both saturated plans cover the window; eager never ends later.
        assert!(span(&de) <= span(&df) + 1_000);
        // Under saturation both run at the grant speed: volumes match.
        let vol = |d: &crate::policy::PolicyDecision| -> f64 {
            d.plans
                .iter()
                .flatten()
                .map(|p| p.speed_plan().total_volume())
                .sum()
        };
        assert!(
            (vol(&de) - vol(&df)).abs() < 1.0,
            "{} vs {}",
            vol(&de),
            vol(&df)
        );
    }

    #[test]
    fn policy_names() {
        assert_eq!(DesPolicy::new().name(), "DES/C-DVFS");
        assert_eq!(DesPolicy::on_arch(ArchKind::NoDvfs).name(), "DES/No-DVFS");
        let set = crate::discrete::default_ladder(&MODEL);
        assert_eq!(DesPolicy::with_discrete(set).name(), "DES/C-DVFS/discrete");
    }
}
