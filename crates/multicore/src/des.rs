//! **DES (Dynamic Equal Sharing)** — the paper's multicore scheduler
//! (§IV-D).
//!
//! DES divides the global multicore problem into per-core single-core
//! problems by equal sharing of jobs and power. Each invocation runs four
//! steps:
//!
//! 1. **Ready-job-distribution** — deal waiting jobs to cores with C-RR.
//! 2. **Budget-free-independent-core-scheduling** — per core, compute the
//!    Energy-OPT schedule pretending power were unlimited; read off each
//!    core's instantaneous power request `P_i(t)` (all jobs re-release at
//!    `t`, so the YDS profile is non-increasing and `P_i(t)` is the peak).
//!    If `Σ P_i(t) ≤ H`, these schedules already complete every job within
//!    the budget — done.
//! 3. **Dynamic-power-distribution** — otherwise water-fill the budget
//!    over the requests.
//! 4. **Budget-bounded-independent-core-scheduling** — per core, run
//!    Online-QE under the granted power.
//!
//! [`ArchKind`] selects the §V-A degradations (No-DVFS, S-DVFS), and an
//! optional [`DiscreteSpeedSet`] enables the §V-F discrete-speed variant.

use qes_core::job::JobId;
use qes_core::job::{Job, JobSet};
use qes_core::power::DiscreteSpeedSet;
use qes_core::schedule::CoreSchedule;
use qes_singlecore::energy_opt::energy_opt;
use qes_singlecore::online_qe::{OnlineMode, QeSolver, ReadyJob};

use crate::arch::{fixed_speed_plan, ArchKind};
use crate::crr::CrrDistributor;
use crate::discrete::{rectify_speeds, snap_plan_up};
use crate::policy::{PolicyDecision, SchedulingPolicy, SystemView, TriggerRequest};
use crate::water_filling::{water_filling_with_rounds, WaterFillingCache};

/// How DES distributes ready jobs to cores (ablation knob; the paper's
/// design is [`JobSharing::Crr`], §IV-B).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum JobSharing {
    /// Cumulative round-robin: the dealing cursor persists across
    /// invocations (the paper's choice).
    #[default]
    Crr,
    /// Plain round-robin restarting at core 0 every invocation — the
    /// strawman §IV-B argues against; kept for the ablation study.
    RestartRr,
}

/// How DES distributes the power budget (ablation knob; the paper's
/// design is [`PowerSharing::WaterFilling`], §IV-C).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum PowerSharing {
    /// Dynamic water-filling over the per-core requests (the paper's
    /// choice).
    #[default]
    WaterFilling,
    /// Static equal sharing: every core owns `H/m` regardless of load —
    /// what the baselines use; kept for the ablation study.
    StaticEqual,
}

/// How DES recomputes per-core schedules across invocations.
///
/// All modes are **bit-identical by construction** (asserted by the
/// differential suite, `tests/differential.rs`): they share the same
/// closed-form power probe and the same plan-construction functions, and
/// the caching modes only skip a recomputation when its inputs —
/// invocation instant, live job set with sunk-work frontier, and grant —
/// are exactly the inputs the cached result was computed from, so the
/// recomputation is a pure function that would return the cached value.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum RecomputeMode {
    /// Rebuild every core's plan from scratch on every invocation — the
    /// reference the differential suite compares against.
    Full,
    /// Reuse a core's cached `CoreSchedule` when unchanged (keyed by a
    /// canonical job-set signature rebuilt per invocation), and re-level
    /// water-filling only when the request vector changes.
    Incremental,
    /// `Incremental`, plus a per-core deadline-sorted ready index with
    /// resumable prefix demand sums: the power probe reads the stored
    /// prefix sums instead of re-sorting, cache cleanliness is a dirty
    /// flag maintained by the index diff instead of a signature compare,
    /// and the budget-bounded step feeds the index straight into a
    /// per-core warm [`QeSolver`] (no per-invocation materialization).
    #[default]
    IncrementalQe,
}

impl RecomputeMode {
    /// Whether this mode caches plans and water-filling grants.
    fn caches(self) -> bool {
        !matches!(self, RecomputeMode::Full)
    }
}

/// What produced a cached plan: the step-2 early exit (budget-free
/// Energy-OPT) or a budget-bounded solve under an exact grant (bits).
/// The branch is part of the cache key — two invocations at the same
/// instant over the same job set still differ if the *system-wide*
/// budget check flipped in between.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum PlanKey {
    Free,
    Granted(u64),
}

/// Canonical job-set signature entry: `(id, demand bits, processed bits,
/// deadline µs)`.
type Sig = (u32, u64, u64, u64);

/// Per-core cache for [`RecomputeMode::Incremental`].
#[derive(Clone, Debug, Default)]
struct CoreMemo {
    /// Canonical (id-sorted) signature of the live job set the plan was
    /// computed from: `(id, demand bits, processed bits, deadline µs)`.
    /// Bitwise `processed` makes any sunk-work advance invalidate.
    sig: Vec<Sig>,
    /// Invocation instant of the cached computation, in µs. Plans are
    /// time-dependent (YDS stretches to the deadlines as seen from
    /// `now`), so reuse requires the same instant — which happens
    /// whenever several triggers coincide at one event time.
    now_us: u64,
    /// What produced `plan`; `None` means nothing cached.
    key: Option<PlanKey>,
    plan: CoreSchedule,
}

/// Per-core ready index for [`RecomputeMode::IncrementalQe`]: the live
/// job set in canonical (deadline, id) order with left-to-right prefix
/// sums of remaining demand, updated by suffix diff each invocation.
///
/// The prefix sums resume from the first diverging position, which is
/// bit-identical to re-summing from the left — so everything derived
/// from them (the power probe, the Online-QE solve) matches a
/// from-scratch computation exactly.
#[derive(Clone, Debug, Default)]
struct CoreQe {
    /// Live jobs, (deadline, id)-sorted — exactly the materialized list
    /// the other recompute modes hand to Online-QE.
    jobs: Vec<ReadyJob>,
    /// `cum[i]` = Σ remaining demand of `jobs[..=i]`, summed left to
    /// right.
    cum: Vec<f64>,
    /// Set when the index changed since the core's memo was last stored;
    /// replaces the signature compare of [`RecomputeMode::Incremental`].
    dirty: bool,
    /// Warm Online-QE solver (scratch reuse only — bitwise inert).
    solver: QeSolver,
}

impl CoreQe {
    /// Rebuild the index from this invocation's live set, resuming the
    /// prefix sums after the longest unchanged prefix.
    fn update(&mut self, live: impl Iterator<Item = ReadyJob>, scratch: &mut Vec<ReadyJob>) {
        scratch.clear();
        scratch.extend(live);
        scratch.sort_unstable_by_key(|r| (r.job.deadline, r.job.id));
        let same = |a: &ReadyJob, b: &ReadyJob| {
            a.job.id == b.job.id
                && a.job.deadline == b.job.deadline
                && a.job.demand.to_bits() == b.job.demand.to_bits()
                && a.processed.to_bits() == b.processed.to_bits()
        };
        let mut p = 0;
        while p < self.jobs.len() && p < scratch.len() && same(&self.jobs[p], &scratch[p]) {
            p += 1;
        }
        if p == self.jobs.len() && p == scratch.len() {
            return;
        }
        self.dirty = true;
        self.jobs.truncate(p);
        self.jobs.extend_from_slice(&scratch[p..]);
        self.cum.truncate(p);
        let mut acc = if p == 0 { 0.0 } else { self.cum[p - 1] };
        for r in &self.jobs[p..] {
            acc += r.remaining();
            self.cum.push(acc);
        }
    }
}

/// Always-on observability counters for [`DesPolicy`]: plain integer
/// adds on paths that already branch, far too cheap to gate. Drained
/// through [`SchedulingPolicy::metrics`] at the end of an observed run
/// (unobserved runs simply never read them).
#[derive(Clone, Debug, Default)]
struct DesStats {
    /// `on_trigger` calls.
    triggers: u64,
    /// Queued jobs dealt to cores (C-RR step 1).
    jobs_dealt: u64,
    /// Invocations resolved by the step-2 early exit (Σ requests ≤ H).
    free_exits: u64,
    /// Invocations that ran the budget-bounded steps 3–4.
    budget_bound: u64,
    /// Cores resolved by the keep-plan rule.
    keeps: u64,
    /// Cores whose plan was reused from the per-core memo.
    cache_hits: u64,
    /// Cores whose plan was recomputed (free or granted).
    cache_misses: u64,
    /// Fresh budget-free Energy-OPT materializations.
    free_solves: u64,
    /// Fresh budget-bounded Online-QE solves.
    qe_solves: u64,
    /// Jobs the §V-D discard loop abandoned.
    discards: u64,
    /// Water-filling peel/level passes run outside the cache
    /// ([`RecomputeMode::Full`] only; cached modes count in
    /// [`WaterFillingCache`]).
    wf_levelings: u64,
    /// Peeling rounds across those passes.
    wf_rounds: u64,
}

/// The DES scheduling policy.
#[derive(Clone, Debug)]
pub struct DesPolicy {
    arch: ArchKind,
    crr: CrrDistributor,
    discrete: Option<DiscreteSpeedSet>,
    triggers: TriggerRequest,
    job_sharing: JobSharing,
    power_sharing: PowerSharing,
    mode: OnlineMode,
    recompute: RecomputeMode,
    memo: Vec<CoreMemo>,
    wf_cache: WaterFillingCache,
    /// Per core: every plan installed since the core's last
    /// budget-bounded (or discrete) recomputation came from the step-2
    /// early exit. Part of the *decision procedure* (maintained
    /// identically by every [`RecomputeMode`]), not a cache: it licenses
    /// the keep-plan rule in `on_trigger`.
    free_streak: Vec<bool>,
    /// Per-core ready indexes ([`RecomputeMode::IncrementalQe`] only).
    core_qe: Vec<CoreQe>,
    /// Shared warm solver for the non-indexed recompute modes and the
    /// discrete ladder path. Purely an allocation amortizer.
    qe_scratch: QeSolver,
    /// Sort buffer for [`CoreQe::update`].
    sort_scratch: Vec<ReadyJob>,
    /// Observability counters (see [`DesStats`]).
    stats: DesStats,
}

impl DesPolicy {
    /// Full DES on core-level DVFS (the paper's design target).
    pub fn new() -> Self {
        Self::on_arch(ArchKind::CDvfs)
    }

    /// DES degraded to the given architecture (§V-A).
    pub fn on_arch(arch: ArchKind) -> Self {
        DesPolicy {
            arch,
            crr: CrrDistributor::new(),
            discrete: None,
            triggers: TriggerRequest::paper_default(),
            job_sharing: JobSharing::Crr,
            power_sharing: PowerSharing::WaterFilling,
            mode: OnlineMode::Eager,
            recompute: RecomputeMode::default(),
            memo: Vec::new(),
            wf_cache: WaterFillingCache::new(),
            free_streak: Vec::new(),
            core_qe: Vec::new(),
            qe_scratch: QeSolver::default(),
            sort_scratch: Vec::new(),
            stats: DesStats::default(),
        }
    }

    /// DES with discrete speed scaling (§V-F); implies C-DVFS.
    pub fn with_discrete(set: DiscreteSpeedSet) -> Self {
        DesPolicy {
            discrete: Some(set),
            ..Self::on_arch(ArchKind::CDvfs)
        }
    }

    /// Override the triggering events (default: paper's §V-B settings).
    pub fn with_triggers(mut self, t: TriggerRequest) -> Self {
        self.triggers = t;
        self
    }

    /// Ablation: choose the job-distribution policy (default: C-RR).
    pub fn with_job_sharing(mut self, j: JobSharing) -> Self {
        self.job_sharing = j;
        self
    }

    /// Ablation: choose the power-distribution policy (default: WF).
    pub fn with_power_sharing(mut self, p: PowerSharing) -> Self {
        self.power_sharing = p;
        self
    }

    /// Ablation: how the budget-bounded step realizes its volumes
    /// (default: eager — see `OnlineMode`).
    pub fn with_mode(mut self, mode: OnlineMode) -> Self {
        self.mode = mode;
        self
    }

    /// Choose the recomputation strategy (default:
    /// [`RecomputeMode::IncrementalQe`]).
    pub fn with_recompute(mut self, r: RecomputeMode) -> Self {
        self.recompute = r;
        self
    }

    /// The architecture this instance runs on.
    pub fn arch(&self) -> ArchKind {
        self.arch
    }

    /// Step 3: distribute the budget per the configured policy. In
    /// incremental mode water-filling re-levels only when the request
    /// vector or budget changed since the previous invocation.
    fn distribute_power(&mut self, requests: &[f64], budget: f64, m: usize) -> Vec<f64> {
        match self.power_sharing {
            PowerSharing::WaterFilling => {
                if self.recompute.caches() {
                    self.wf_cache.grants(requests, budget).to_vec()
                } else {
                    let (grants, rounds) = water_filling_with_rounds(requests, budget);
                    self.stats.wf_levelings += 1;
                    self.stats.wf_rounds += rounds;
                    grants
                }
            }
            PowerSharing::StaticEqual => vec![budget / m as f64; m],
        }
    }

    /// Step 2's power request in closed form. With every job re-released
    /// at `now`, the unconstrained YDS profile is non-increasing, so its
    /// initial (peak) speed — the probe value `P_i(t)` — is the maximum
    /// prefix density over deadline-ordered jobs. This replaces a full
    /// Energy-OPT solve per core per invocation; the schedule itself is
    /// only materialized on the early-exit branch. Shared verbatim by
    /// both [`RecomputeMode`]s so their requests agree bit-for-bit.
    fn probe_request(view: &SystemView<'_>, live: impl Iterator<Item = ReadyJob>) -> f64 {
        let now_us = view.now.as_micros();
        // The id tiebreak makes the summation order — and so the float
        // result — a function of the job set, not the caller's order.
        let mut dw: Vec<(u64, u32, f64)> = live
            .map(|r| (r.job.deadline.as_micros(), r.job.id.0, r.remaining()))
            .collect();
        dw.sort_unstable_by_key(|&(d, id, _)| (d, id));
        let mut cum = 0.0;
        let mut speed: f64 = 0.0;
        for &(d_us, _, w) in &dw {
            cum += w;
            speed = speed.max(cum * 1000.0 / (d_us - now_us) as f64);
        }
        view.model.dynamic_power(speed)
    }

    /// [`Self::probe_request`] read off a core's ready index: the jobs
    /// are already (deadline, id)-sorted and `cum` holds exactly the
    /// left-to-right prefix sums the probe would compute, so the result
    /// is bit-identical — only the sort and the summation are skipped.
    fn probe_from_index(view: &SystemView<'_>, cq: &CoreQe) -> f64 {
        let now_us = view.now.as_micros();
        let mut speed: f64 = 0.0;
        for (r, &cum) in cq.jobs.iter().zip(&cq.cum) {
            let d_us = r.job.deadline.as_micros();
            speed = speed.max(cum * 1000.0 / (d_us - now_us) as f64);
        }
        view.model.dynamic_power(speed)
    }

    /// Canonical (id-sorted) signature of a core's live job set — the
    /// incremental cache key. Order-independent: the engine's per-core
    /// lists are reordered by `swap_remove`, which must not look like a
    /// state change.
    fn signature(live: impl Iterator<Item = ReadyJob>) -> Vec<(u32, u64, u64, u64)> {
        let mut sig: Vec<(u32, u64, u64, u64)> = live
            .map(|r| {
                (
                    r.job.id.0,
                    r.job.demand.to_bits(),
                    r.processed.to_bits(),
                    r.job.deadline.as_micros(),
                )
            })
            .collect();
        sig.sort_unstable();
        sig
    }

    /// The step-2 early-exit schedule for one core: unconstrained
    /// Energy-OPT over the live jobs re-released at `now` with their
    /// remaining demands (the sunk work needs no future power).
    fn free_schedule(view: &SystemView<'_>, ready: &[ReadyJob]) -> CoreSchedule {
        let jobs: Vec<Job> = ready
            .iter()
            .map(|r| Job {
                release: view.now,
                demand: r.remaining(),
                ..r.job
            })
            .collect();
        energy_opt(&JobSet::new_unchecked(jobs)).schedule
    }
}

impl Default for DesPolicy {
    fn default() -> Self {
        Self::new()
    }
}

impl SchedulingPolicy for DesPolicy {
    fn name(&self) -> String {
        let mut n = format!("DES/{}", self.arch.name());
        if self.discrete.is_some() {
            n.push_str("/discrete");
        }
        if self.job_sharing == JobSharing::RestartRr {
            n.push_str("/restart-rr");
        }
        if self.power_sharing == PowerSharing::StaticEqual {
            n.push_str("/static-power");
        }
        if self.mode == OnlineMode::Efficient {
            n.push_str("/efficient");
        }
        match self.recompute {
            RecomputeMode::Full => n.push_str("/full-recompute"),
            RecomputeMode::Incremental => n.push_str("/incremental"),
            RecomputeMode::IncrementalQe => {}
        }
        n
    }

    fn triggers(&self) -> TriggerRequest {
        self.triggers
    }

    fn on_trigger(&mut self, view: &SystemView<'_>) -> PolicyDecision {
        let m = view.num_cores();
        let now = view.now;
        self.stats.triggers += 1;

        // Step 1: C-RR distribution of the waiting queue.
        let live_queue: Vec<&ReadyJob> = view
            .queue
            .iter()
            .filter(|r| r.job.deadline > now && r.remaining() > 1e-9)
            .collect();
        if self.job_sharing == JobSharing::RestartRr {
            // Ablation: forget the cumulative cursor every invocation.
            self.crr = CrrDistributor::new();
        }
        let dealt = self.crr.assign(live_queue.len(), m);
        let mut assignments = Vec::with_capacity(live_queue.len());
        // Newly dealt jobs, kept apart from the *borrowed* core views: a
        // core that receives no new work and needs no recomputation never
        // copies its job list.
        let mut extra: Vec<Vec<ReadyJob>> = vec![Vec::new(); m];
        for (r, &core) in live_queue.iter().zip(&dealt) {
            assignments.push((r.job.id, core));
            extra[core].push(**r);
        }
        self.stats.jobs_dealt += assignments.len() as u64;
        // One core's live set (current jobs + newly dealt), borrowed.
        let live_iter = |c: usize| view.cores[c].live_jobs(now).chain(extra[c].iter().copied());
        // The same set materialized in canonical (deadline, id) order for
        // plan construction — the order Online-QE itself canonicalizes
        // to, so every computed plan is a function of the job set alone.
        let materialize = |c: usize| -> Vec<ReadyJob> {
            let mut v: Vec<ReadyJob> = live_iter(c).collect();
            v.sort_unstable_by_key(|r| (r.job.deadline, r.job.id));
            v
        };

        let mut plans: Vec<Option<CoreSchedule>> = Vec::with_capacity(m);
        let mut discarded: Vec<JobId> = Vec::new();
        let mut ambient = vec![0.0; m];

        match self.arch {
            ArchKind::NoDvfs => {
                // Fixed speed funded by the static equal share; cores
                // cannot scale down, so they draw it even when idle.
                let s_fix = view.model.speed_for_dynamic_power(view.budget / m as f64);
                for c in 0..m {
                    let (plan, disc) = fixed_speed_plan(now, &materialize(c), s_fix);
                    plans.push(Some(plan));
                    discarded.extend(disc);
                }
                ambient = vec![s_fix; m];
            }
            ArchKind::SDvfs => {
                // One shared clock: the maximum request, clamped by the
                // equal share (WF over identical requests).
                let h_max = (0..m)
                    .map(|c| Self::probe_request(view, live_iter(c)))
                    .fold(0.0, f64::max);
                let shared = h_max.min(view.budget / m as f64);
                let s_shared = view.model.speed_for_dynamic_power(shared);
                for c in 0..m {
                    let (plan, disc) = fixed_speed_plan(now, &materialize(c), s_shared);
                    plans.push(Some(plan));
                    discarded.extend(disc);
                }
                // Idle cores stay locked to the shared clock.
                ambient = vec![s_shared; m];
            }
            ArchKind::CDvfs => {
                let inc = self.recompute.caches();
                let iqe = self.recompute == RecomputeMode::IncrementalQe;
                if self.memo.len() != m {
                    self.memo = vec![CoreMemo::default(); m];
                }
                if self.free_streak.len() != m {
                    self.free_streak = vec![false; m];
                }
                if iqe {
                    if self.core_qe.len() != m {
                        self.core_qe = std::iter::repeat_with(CoreQe::default).take(m).collect();
                    }
                    // Refresh every core's ready index up front: the
                    // probe, the cleanliness check, and the solves below
                    // all read it.
                    for c in 0..m {
                        self.core_qe[c].update(live_iter(c), &mut self.sort_scratch);
                    }
                }
                let now_us = now.as_micros();
                // Requests depend on `now`, so they are recomputed every
                // invocation — but via the closed form, not a YDS solve,
                // and off the stored prefix sums when the index is on.
                let requests: Vec<f64> = if iqe {
                    (0..m)
                        .map(|c| Self::probe_from_index(view, &self.core_qe[c]))
                        .collect()
                } else {
                    (0..m)
                        .map(|c| Self::probe_request(view, live_iter(c)))
                        .collect()
                };
                let total: f64 = requests.iter().sum();
                // Canonical signatures, built lazily: cores resolved by
                // the keep rule or the empty check never pay for one.
                // `IncrementalQe` replaces them with the index dirty flag.
                let mut sigs: Vec<Option<Vec<Sig>>> = vec![None; m];
                // A cached plan is reusable only if it was computed at
                // this same instant from this same live set (bitwise);
                // the grant side of the key is checked per branch below.
                let clean = |memo: &CoreMemo, sig: &[Sig]| memo.now_us == now_us && memo.sig == sig;
                // Hoisted out of the match: `distribute_power` needs
                // `&mut self` (WF cache), which cannot overlap the borrow
                // of `self.discrete` below. Only the budget-bound paths
                // use the grants.
                let grants = if self.discrete.is_some() || total > view.budget {
                    self.distribute_power(&requests, view.budget, m)
                } else {
                    Vec::new()
                };
                match &self.discrete {
                    None if total <= view.budget => {
                        // Step 2 early exit: the unconstrained schedules
                        // already fit the budget and complete every job.
                        self.stats.free_exits += 1;
                        for c in 0..m {
                            // Keep rule — shared by every recompute mode,
                            // so it is part of the decision procedure,
                            // not a cache: a core that received no new
                            // work and is still executing a budget-free
                            // plan keeps it. Energy-OPT is
                            // time-consistent along its own execution
                            // (re-solving over the remaining demands
                            // reproduces the tail of the running plan),
                            // so a recompute could only re-derive what is
                            // already installed.
                            if self.free_streak[c] && extra[c].is_empty() && view.cores[c].busy {
                                self.stats.keeps += 1;
                                plans.push(None);
                                continue;
                            }
                            self.free_streak[c] = true;
                            let empty = if iqe {
                                self.core_qe[c].jobs.is_empty()
                            } else {
                                live_iter(c).next().is_none()
                            };
                            if empty {
                                // No live work: Energy-OPT over nothing.
                                plans.push(Some(CoreSchedule::default()));
                                if inc {
                                    self.memo[c] = CoreMemo {
                                        sig: Vec::new(),
                                        now_us,
                                        key: Some(PlanKey::Free),
                                        plan: CoreSchedule::default(),
                                    };
                                    if iqe {
                                        self.core_qe[c].dirty = false;
                                    }
                                }
                                continue;
                            }
                            let reusable = if iqe {
                                !self.core_qe[c].dirty && self.memo[c].now_us == now_us
                            } else {
                                let sig =
                                    sigs[c].get_or_insert_with(|| Self::signature(live_iter(c)));
                                clean(&self.memo[c], sig)
                            };
                            if inc && self.memo[c].key == Some(PlanKey::Free) && reusable {
                                self.stats.cache_hits += 1;
                                plans.push(Some(self.memo[c].plan.clone()));
                                continue;
                            }
                            self.stats.cache_misses += 1;
                            self.stats.free_solves += 1;
                            let plan = if iqe {
                                Self::free_schedule(view, &self.core_qe[c].jobs)
                            } else {
                                Self::free_schedule(view, &materialize(c))
                            };
                            plans.push(Some(plan.clone()));
                            if inc {
                                self.memo[c] = CoreMemo {
                                    sig: sigs[c].take().unwrap_or_default(),
                                    now_us,
                                    key: Some(PlanKey::Free),
                                    plan,
                                };
                                if iqe {
                                    self.core_qe[c].dirty = false;
                                }
                            }
                        }
                    }
                    None => {
                        // Steps 3–4: distribute power, then Online-QE per
                        // core. The budget binds here, so the grant is
                        // spent eagerly by default (see `OnlineMode`).
                        self.stats.budget_bound += 1;
                        for (c, &grant) in grants.iter().enumerate() {
                            self.free_streak[c] = false;
                            let empty = if iqe {
                                self.core_qe[c].jobs.is_empty()
                            } else {
                                live_iter(c).next().is_none()
                            };
                            if empty || grant <= 0.0 {
                                // Nothing live, or a zero grant (s* = 0):
                                // Online-QE returns an empty plan and no
                                // discards without looking at the jobs.
                                plans.push(Some(CoreSchedule::default()));
                                if inc {
                                    let sig = if iqe {
                                        self.core_qe[c].dirty = false;
                                        Vec::new()
                                    } else {
                                        sigs[c]
                                            .get_or_insert_with(|| Self::signature(live_iter(c)))
                                            .clone()
                                    };
                                    self.memo[c] = CoreMemo {
                                        sig,
                                        now_us,
                                        key: Some(PlanKey::Granted(grant.to_bits())),
                                        plan: CoreSchedule::default(),
                                    };
                                }
                                continue;
                            }
                            let key = PlanKey::Granted(grant.to_bits());
                            let reusable = if iqe {
                                !self.core_qe[c].dirty && self.memo[c].now_us == now_us
                            } else {
                                let sig =
                                    sigs[c].get_or_insert_with(|| Self::signature(live_iter(c)));
                                clean(&self.memo[c], sig)
                            };
                            if inc && self.memo[c].key == Some(key) && reusable {
                                // A reused plan had no discards: any
                                // discard would have been settled by the
                                // engine, changing the live set.
                                self.stats.cache_hits += 1;
                                plans.push(Some(self.memo[c].plan.clone()));
                                continue;
                            }
                            self.stats.cache_misses += 1;
                            self.stats.qe_solves += 1;
                            let out = if iqe {
                                let CoreQe { jobs, solver, .. } = &mut self.core_qe[c];
                                solver.solve(now, jobs, view.model, grant, self.mode)
                            } else {
                                self.qe_scratch.solve(
                                    now,
                                    &materialize(c),
                                    view.model,
                                    grant,
                                    self.mode,
                                )
                            };
                            discarded.extend(out.discarded);
                            plans.push(Some(out.schedule.clone()));
                            if inc {
                                self.memo[c] = CoreMemo {
                                    sig: sigs[c].take().unwrap_or_default(),
                                    now_us,
                                    key: Some(key),
                                    plan: out.schedule,
                                };
                                if iqe {
                                    self.core_qe[c].dirty = false;
                                }
                            }
                        }
                    }
                    Some(set) => {
                        // §V-F: always rectify the WF grants to discrete
                        // speeds, then Online-QE under the rectified power
                        // with slice speeds snapped onto the ladder. The
                        // per-core memo does not apply to the ladder path
                        // (plans are recomputed in full).
                        self.free_streak.fill(false);
                        let speeds = rectify_speeds(&grants, set, view.model, view.budget);
                        for (c, &cap) in speeds.iter().enumerate() {
                            self.stats.qe_solves += 1;
                            let grant = view.model.dynamic_power(cap);
                            let out = self.qe_scratch.solve(
                                now,
                                &materialize(c),
                                view.model,
                                grant,
                                self.mode,
                            );
                            discarded.extend(out.discarded);
                            plans.push(Some(snap_plan_up(&out.schedule, set)));
                        }
                    }
                }
            }
        }

        self.stats.discards += discarded.len() as u64;
        PolicyDecision {
            assignments,
            plans,
            discarded,
            ambient_speeds: ambient,
        }
    }

    fn metrics(&self, sink: &mut dyn FnMut(&'static str, u64)) {
        let s = &self.stats;
        sink("des.triggers", s.triggers);
        sink("des.jobs_dealt", s.jobs_dealt);
        sink("des.free_exits", s.free_exits);
        sink("des.budget_bound", s.budget_bound);
        sink("des.keep_plan", s.keeps);
        sink("des.cache_hit", s.cache_hits);
        sink("des.cache_miss", s.cache_misses);
        sink("des.free_solve", s.free_solves);
        sink("des.qe_solve", s.qe_solves);
        sink("des.discards", s.discards);
        // Water-filling work: cached modes level inside the cache, Full
        // levels directly — merge both views into one pair of counters.
        sink("des.wf_hits", self.wf_cache.hits());
        sink(
            "des.wf_levelings",
            s.wf_levelings + self.wf_cache.levelings(),
        );
        sink("des.wf_rounds", s.wf_rounds + self.wf_cache.rounds());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::CoreView;
    use qes_core::power::{PolynomialPower, PowerModel};
    use qes_core::time::SimTime;

    const MODEL: PolynomialPower = PolynomialPower::PAPER_SIM;

    fn ms(x: u64) -> SimTime {
        SimTime::from_millis(x)
    }

    fn rj(id: u32, r: u64, d: u64, w: f64) -> ReadyJob {
        ReadyJob {
            job: Job::new(id, ms(r), ms(d), w).unwrap(),
            processed: 0.0,
        }
    }

    fn view<'a>(
        now: SimTime,
        queue: &'a [ReadyJob],
        cores: &'a [CoreView<'a>],
        budget: f64,
    ) -> SystemView<'a> {
        SystemView {
            now,
            queue,
            cores,
            budget,
            model: &MODEL,
        }
    }

    #[test]
    fn distributes_queue_round_robin() {
        let mut des = DesPolicy::new();
        let queue = vec![
            rj(0, 0, 150, 50.0),
            rj(1, 0, 150, 50.0),
            rj(2, 0, 150, 50.0),
        ];
        let cores = vec![CoreView::default(), CoreView::default()];
        let d = des.on_trigger(&view(ms(0), &queue, &cores, 40.0));
        let targets: Vec<usize> = d.assignments.iter().map(|&(_, c)| c).collect();
        assert_eq!(targets, vec![0, 1, 0]);
        // Cumulative: the next invocation starts at core 1.
        let queue2 = vec![rj(3, 0, 300, 50.0)];
        let d2 = des.on_trigger(&view(ms(0), &queue2, &cores, 40.0));
        assert_eq!(d2.assignments[0].1, 1);
    }

    #[test]
    fn light_load_uses_budget_free_schedules() {
        // One small job per core: unconstrained YDS fits the budget, all
        // jobs complete, and speeds are the slow deadline-stretching ones.
        let mut des = DesPolicy::new();
        let queue = vec![rj(0, 0, 150, 30.0), rj(1, 0, 150, 30.0)];
        let cores = vec![CoreView::default(), CoreView::default()];
        let d = des.on_trigger(&view(ms(0), &queue, &cores, 40.0));
        let mut total = 0.0;
        for p in d.plans.iter().flatten() {
            total += p.speed_plan().total_volume();
            // 30 units over 150 ms = 0.2 GHz.
            assert!(p.speed_plan().max_speed() < 0.3);
        }
        assert!((total - 60.0).abs() < 0.1);
        assert!(d.discarded.is_empty());
        assert!(d.ambient_speeds.iter().all(|&s| s == 0.0));
    }

    #[test]
    fn heavy_load_water_fills_and_respects_budget() {
        let mut des = DesPolicy::new();
        // Two cores, very unequal load; tiny budget forces WF.
        let queue = vec![
            rj(0, 0, 100, 300.0),
            rj(1, 0, 100, 20.0),
            rj(2, 0, 100, 300.0),
        ];
        let cores = vec![CoreView::default(), CoreView::default()];
        let budget = 10.0;
        let d = des.on_trigger(&view(ms(0), &queue, &cores, budget));
        // Instantaneous power at any slice boundary must fit the budget.
        let mut instants = Vec::new();
        for p in d.plans.iter().flatten() {
            for s in p.slices() {
                instants.push(s.start);
                instants.push(s.end);
            }
        }
        for &t in &instants {
            let power: f64 = d
                .plans
                .iter()
                .flatten()
                .map(|p| MODEL.dynamic_power(p.speed_plan().speed_at(t)))
                .sum();
            assert!(power <= budget + 1e-6, "power {power} at {t:?}");
        }
    }

    #[test]
    fn heavy_loaded_core_gets_more_power_than_light_one() {
        let mut des = DesPolicy::new();
        // Core 0 gets the heavy job, core 1 the light one (C-RR order).
        let queue = vec![rj(0, 0, 100, 400.0), rj(1, 0, 100, 40.0)];
        let cores = vec![CoreView::default(), CoreView::default()];
        let d = des.on_trigger(&view(ms(0), &queue, &cores, 15.0));
        let peak = |i: usize| {
            d.plans[i]
                .as_ref()
                .map(|p| p.speed_plan().peak_power(&MODEL))
                .unwrap_or(0.0)
        };
        assert!(peak(0) > peak(1), "heavy {} vs light {}", peak(0), peak(1));
    }

    #[test]
    fn no_dvfs_runs_fixed_speed_with_ambient_draw() {
        let mut des = DesPolicy::on_arch(ArchKind::NoDvfs);
        let queue = vec![rj(0, 0, 150, 30.0)];
        let cores = vec![CoreView::default(), CoreView::default()];
        let budget = 40.0; // share 20 W → 2 GHz fixed
        let d = des.on_trigger(&view(ms(0), &queue, &cores, budget));
        for p in d.plans.iter().flatten() {
            for s in p.slices() {
                assert!((s.speed - 2.0).abs() < 1e-9);
            }
        }
        assert!(d.ambient_speeds.iter().all(|&s| (s - 2.0).abs() < 1e-9));
    }

    #[test]
    fn s_dvfs_locks_all_cores_to_shared_speed() {
        let mut des = DesPolicy::on_arch(ArchKind::SDvfs);
        // Unequal load: shared speed = max request clamped by share.
        let queue = vec![rj(0, 0, 100, 150.0), rj(1, 0, 100, 10.0)];
        let cores = vec![CoreView::default(), CoreView::default()];
        let d = des.on_trigger(&view(ms(0), &queue, &cores, 40.0));
        // Max request: 150 units/100 ms = 1.5 GHz → 11.25 W < 20 W share.
        let expect = 1.5;
        for p in d.plans.iter().flatten() {
            for s in p.slices() {
                assert!((s.speed - expect).abs() < 1e-6, "speed {}", s.speed);
            }
        }
        for &s in &d.ambient_speeds {
            assert!((s - expect).abs() < 1e-6);
        }
    }

    #[test]
    fn s_dvfs_clamps_shared_speed_at_equal_share() {
        let mut des = DesPolicy::on_arch(ArchKind::SDvfs);
        // A hot core wanting 4 GHz (80 W) with a 40 W budget over 2 cores:
        // clamp at 20 W → 2 GHz.
        let queue = vec![rj(0, 0, 100, 400.0)];
        let cores = vec![CoreView::default(), CoreView::default()];
        let d = des.on_trigger(&view(ms(0), &queue, &cores, 40.0));
        let plan = d.plans[0].as_ref().unwrap();
        assert!((plan.speed_plan().max_speed() - 2.0).abs() < 1e-6);
    }

    #[test]
    fn discrete_mode_emits_only_ladder_speeds() {
        let set = crate::discrete::default_ladder(&MODEL);
        let mut des = DesPolicy::with_discrete(set.clone());
        let queue = vec![
            rj(0, 0, 100, 170.0),
            rj(1, 0, 100, 90.0),
            rj(2, 0, 100, 260.0),
        ];
        let cores = vec![CoreView::default(), CoreView::default()];
        let d = des.on_trigger(&view(ms(0), &queue, &cores, 30.0));
        for p in d.plans.iter().flatten() {
            for s in p.slices() {
                let on_ladder = set.speeds().iter().any(|&l| (l - s.speed).abs() < 1e-9);
                assert!(on_ladder, "speed {} not on ladder", s.speed);
            }
        }
    }

    #[test]
    fn empty_system_is_a_noop() {
        let mut des = DesPolicy::new();
        let cores = vec![CoreView::default(); 4];
        let d = des.on_trigger(&view(ms(100), &[], &cores, 320.0));
        assert!(d.assignments.is_empty());
        assert!(d.discarded.is_empty());
        for p in d.plans.iter().flatten() {
            assert!(p.is_empty());
        }
    }

    #[test]
    fn expired_queue_jobs_are_not_assigned() {
        let mut des = DesPolicy::new();
        let queue = vec![rj(0, 0, 50, 30.0), rj(1, 0, 150, 30.0)];
        let cores = vec![CoreView::default()];
        let d = des.on_trigger(&view(ms(100), &queue, &cores, 20.0));
        assert_eq!(d.assignments.len(), 1);
        assert_eq!(d.assignments[0].0, JobId(1));
    }

    #[test]
    fn restart_rr_always_deals_from_core_zero() {
        let mut des = DesPolicy::new().with_job_sharing(JobSharing::RestartRr);
        let cores = vec![
            CoreView::default(),
            CoreView::default(),
            CoreView::default(),
        ];
        for round in 0..3 {
            let queue = vec![rj(round, 0, 300, 10.0)];
            let d = des.on_trigger(&view(ms(0), &queue, &cores, 60.0));
            assert_eq!(
                d.assignments[0].1, 0,
                "round {round} should restart at core 0"
            );
        }
        // Whereas C-RR advances the cursor.
        let mut des = DesPolicy::new();
        let mut targets = Vec::new();
        for round in 0..3 {
            let queue = vec![rj(10 + round, 0, 300, 10.0)];
            let d = des.on_trigger(&view(ms(0), &queue, &cores, 60.0));
            targets.push(d.assignments[0].1);
        }
        assert_eq!(targets, vec![0, 1, 2]);
    }

    #[test]
    fn static_power_sharing_caps_each_core_at_equal_share() {
        // One hot core wanting far more than H/m: WF would grant it extra;
        // static sharing must cap its speed at the share speed.
        let mut des = DesPolicy::new().with_power_sharing(PowerSharing::StaticEqual);
        let queue = vec![rj(0, 0, 100, 400.0), rj(1, 0, 100, 10.0)];
        let cores = vec![CoreView::default(), CoreView::default()];
        let d = des.on_trigger(&view(ms(0), &queue, &cores, 40.0));
        let share_speed = MODEL.speed_for_dynamic_power(20.0);
        for p in d.plans.iter().flatten() {
            assert!(
                p.speed_plan().max_speed() <= share_speed + 1e-9,
                "speed {} exceeds the static share {}",
                p.speed_plan().max_speed(),
                share_speed
            );
        }
    }

    #[test]
    fn efficient_mode_stretches_where_eager_front_loads() {
        // One overloaded-enough job that WF engages: eager runs at s_max
        // (constant grant speed), efficient applies Energy-OPT stretching
        // (slower than s_max somewhere).
        let queue = vec![rj(0, 0, 100, 300.0), rj(1, 0, 100, 300.0)];
        let cores = vec![CoreView::default(), CoreView::default()];
        let budget = 20.0; // forces the WF path (each core wants 3 GHz = 45 W)
        let mut eager = DesPolicy::new();
        let de = eager.on_trigger(&view(ms(0), &queue, &cores, budget));
        let mut efficient = DesPolicy::new().with_mode(OnlineMode::Efficient);
        let df = efficient.on_trigger(&view(ms(0), &queue, &cores, budget));
        let span = |d: &crate::policy::PolicyDecision| -> u64 {
            d.plans
                .iter()
                .flatten()
                .filter_map(|p| p.slices().last().map(|s| s.end.as_micros()))
                .max()
                .unwrap_or(0)
        };
        // Both saturated plans cover the window; eager never ends later.
        assert!(span(&de) <= span(&df) + 1_000);
        // Under saturation both run at the grant speed: volumes match.
        let vol = |d: &crate::policy::PolicyDecision| -> f64 {
            d.plans
                .iter()
                .flatten()
                .map(|p| p.speed_plan().total_volume())
                .sum()
        };
        assert!(
            (vol(&de) - vol(&df)).abs() < 1.0,
            "{} vs {}",
            vol(&de),
            vol(&df)
        );
    }

    #[test]
    fn policy_names() {
        assert_eq!(DesPolicy::new().name(), "DES/C-DVFS");
        assert_eq!(DesPolicy::on_arch(ArchKind::NoDvfs).name(), "DES/No-DVFS");
        let set = crate::discrete::default_ladder(&MODEL);
        assert_eq!(DesPolicy::with_discrete(set).name(), "DES/C-DVFS/discrete");
        assert_eq!(
            DesPolicy::new().with_recompute(RecomputeMode::Full).name(),
            "DES/C-DVFS/full-recompute"
        );
        assert_eq!(
            DesPolicy::new()
                .with_recompute(RecomputeMode::Incremental)
                .name(),
            "DES/C-DVFS/incremental"
        );
        // The default is IncrementalQe, which carries no suffix.
        assert_eq!(
            DesPolicy::new()
                .with_recompute(RecomputeMode::IncrementalQe)
                .name(),
            "DES/C-DVFS"
        );
    }

    #[test]
    fn closed_form_probe_matches_energy_opt_initial_speed() {
        // The probe request must equal the power at the YDS initial speed
        // of the re-released job set — the quantity `budget_free_probe`
        // used to extract from a full Energy-OPT solve.
        use qes_singlecore::energy_opt::energy_opt;
        let now = ms(40);
        let cases: Vec<Vec<ReadyJob>> = vec![
            vec![],
            vec![rj(0, 0, 150, 50.0)],
            vec![
                rj(0, 0, 150, 50.0),
                rj(1, 10, 90, 120.0),
                rj(2, 0, 300, 7.5),
            ],
            vec![
                ReadyJob {
                    job: Job::new(3, ms(0), ms(200), 80.0).unwrap(),
                    processed: 33.25,
                },
                rj(4, 0, 41, 10.0),
                rj(5, 0, 500, 400.0),
                rj(6, 0, 77, 3.0),
            ],
        ];
        for ready in cases {
            let live: Vec<ReadyJob> = ready
                .iter()
                .filter(|r| r.job.deadline > now && r.remaining() > 1e-9)
                .copied()
                .collect();
            let queue: [ReadyJob; 0] = [];
            let cores = [CoreView {
                jobs: &live,
                busy: false,
            }];
            let v = view(now, &queue, &cores, 40.0);
            let closed = DesPolicy::probe_request(&v, live.iter().copied());
            let jobs: Vec<Job> = live
                .iter()
                .map(|r| Job {
                    release: now,
                    demand: r.remaining(),
                    ..r.job
                })
                .collect();
            let yds = MODEL.dynamic_power(energy_opt(&JobSet::new_unchecked(jobs)).initial_speed());
            assert!(
                (closed - yds).abs() <= 1e-9 * yds.max(1.0),
                "closed {closed} vs YDS {yds} for {} jobs",
                live.len()
            );
        }
    }

    /// One differential step: `(now ms, waiting queue, per-core jobs,
    /// budget)`.
    type Step = (u64, Vec<ReadyJob>, Vec<Vec<ReadyJob>>, f64);

    /// Drive a Full policy and each caching mode through the same trigger
    /// sequence and require bitwise-equal decisions at every step.
    fn assert_differential_equal(steps: &[Step]) {
        for mode in [RecomputeMode::Incremental, RecomputeMode::IncrementalQe] {
            let mut full = DesPolicy::new().with_recompute(RecomputeMode::Full);
            let mut inc = DesPolicy::new().with_recompute(mode);
            for (i, (now_ms, queue, core_jobs, budget)) in steps.iter().enumerate() {
                let cores: Vec<CoreView<'_>> = core_jobs
                    .iter()
                    .map(|j| CoreView {
                        jobs: j,
                        busy: false,
                    })
                    .collect();
                let v = view(ms(*now_ms), queue, &cores, *budget);
                let df = full.on_trigger(&v);
                let di = inc.on_trigger(&v);
                assert_eq!(df.assignments, di.assignments, "{mode:?} step {i}");
                assert_eq!(df.discarded, di.discarded, "{mode:?} step {i}");
                assert_eq!(df.plans.len(), di.plans.len(), "{mode:?} step {i}");
                for (c, (pf, pi)) in df.plans.iter().zip(&di.plans).enumerate() {
                    let sf = pf.as_ref().map(|p| p.slices());
                    let si = pi.as_ref().map(|p| p.slices());
                    assert_eq!(sf, si, "{mode:?} step {i} core {c} plans diverge");
                }
                assert_eq!(df.ambient_speeds, di.ambient_speeds, "{mode:?} step {i}");
            }
        }
    }

    #[test]
    fn incremental_reuses_bitwise_identical_plans() {
        let busy = |id, r, d, w, done| ReadyJob {
            job: Job::new(id, ms(r), ms(d), w).unwrap(),
            processed: done,
        };
        // A same-instant re-trigger (the Tier-A reuse case), an advance
        // where one core's state moved and the other's did not, and a
        // budget squeeze that engages water-filling with a starved core.
        let steps: Vec<Step> = vec![
            // t=0: deal two jobs across two cores (light: early exit).
            (
                0,
                vec![rj(0, 0, 150, 60.0), rj(1, 0, 150, 30.0)],
                vec![vec![], vec![]],
                40.0,
            ),
            // t=0 again, same instant, jobs now on cores: reuse legal.
            (
                0,
                vec![],
                vec![vec![rj(0, 0, 150, 60.0)], vec![rj(1, 0, 150, 30.0)]],
                40.0,
            ),
            // t=50: core 0 ran (sunk work moved), core 1 untouched.
            (
                50,
                vec![rj(2, 50, 200, 100.0)],
                vec![vec![busy(0, 0, 150, 60.0, 25.0)], vec![rj(1, 0, 150, 30.0)]],
                40.0,
            ),
            // t=60: tiny budget forces WF; the heavy core starves the
            // light one toward a zero/low grant.
            (
                60,
                vec![],
                vec![
                    vec![busy(0, 0, 150, 60.0, 25.0), rj(3, 0, 160, 500.0)],
                    vec![rj(1, 0, 150, 30.0)],
                ],
                6.0,
            ),
            // t=60 same instant re-trigger under WF: Tier-A reuse on the
            // granted branch.
            (
                60,
                vec![],
                vec![
                    vec![busy(0, 0, 150, 60.0, 25.0), rj(3, 0, 160, 500.0)],
                    vec![rj(1, 0, 150, 30.0)],
                ],
                6.0,
            ),
        ];
        assert_differential_equal(&steps);
    }

    #[test]
    fn incremental_plan_survives_job_list_reordering() {
        // The engine's `swap_remove` permutes per-core job lists without
        // changing the set; the signature (and so the plan) must not
        // care. `busy: false` keeps the keep-plan rule out of the way so
        // the memo path itself is exercised.
        let a = rj(0, 0, 150, 60.0);
        let b = rj(1, 0, 180, 45.0);
        let c = rj(2, 0, 210, 30.0);
        let mut inc = DesPolicy::new();
        let order1 = vec![a, b, c];
        let cores1 = vec![CoreView {
            jobs: &order1,
            busy: false,
        }];
        let v1 = view(ms(10), &[], &cores1, 40.0);
        let d1 = inc.on_trigger(&v1);
        let order2 = vec![c, a, b];
        let cores2 = vec![CoreView {
            jobs: &order2,
            busy: false,
        }];
        let v2 = view(ms(10), &[], &cores2, 40.0);
        let d2 = inc.on_trigger(&v2);
        assert!(d1.plans[0].is_some());
        assert_eq!(
            d1.plans[0].as_ref().map(|p| p.slices()),
            d2.plans[0].as_ref().map(|p| p.slices()),
            "reordering the job list must not invalidate or change the plan"
        );
    }

    #[test]
    fn busy_core_on_free_streak_keeps_its_plan() {
        // Once a core is executing a budget-free plan and receives no
        // new work, re-triggering must keep the installed plan (`None`)
        // rather than recompute — in both recompute modes, since the
        // keep rule is part of the decision procedure.
        for mode in [
            RecomputeMode::Full,
            RecomputeMode::Incremental,
            RecomputeMode::IncrementalQe,
        ] {
            let jobs = vec![rj(0, 0, 150, 60.0), rj(1, 0, 180, 45.0)];
            let mut p = DesPolicy::new().with_recompute(mode);
            let cores = vec![CoreView {
                jobs: &jobs,
                busy: true,
            }];
            let v1 = view(ms(10), &[], &cores, 40.0);
            let d1 = p.on_trigger(&v1);
            assert!(d1.plans[0].is_some(), "{mode:?}: first plan installed");
            let v2 = view(ms(20), &[], &cores, 40.0);
            let d2 = p.on_trigger(&v2);
            assert!(
                d2.plans[0].is_none(),
                "{mode:?}: clean busy core must keep its plan"
            );
            // An idle core (plan ran out) must recompute even on a streak.
            let idle = vec![CoreView {
                jobs: &jobs,
                busy: false,
            }];
            let v3 = view(ms(30), &[], &idle, 40.0);
            let d3 = p.on_trigger(&v3);
            assert!(
                d3.plans[0].is_some(),
                "{mode:?}: idle core must get a fresh plan"
            );
        }
    }
}
