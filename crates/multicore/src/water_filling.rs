//! **WF** — Water-Filling power distribution (paper §IV-C, Fig. 2).
//!
//! Because the power function is convex, the sum of core speeds — and so
//! the total work per unit time — is maximized by equal power sharing.
//! But a lightly loaded core may need *less* than the equal share; giving
//! it only what it requests and re-sharing the surplus is both more
//! energy-efficient and quality-raising. WF is the fixed point of that
//! idea, computed exactly as the paper specifies:
//!
//! 1. among unsatisfied cores, find the minimum outstanding request
//!    `h_min`;
//! 2. if `h_min · m′ ≥ H_remaining`, split the remaining budget evenly
//!    and stop; otherwise grant `h_min` to every unsatisfied core,
//!    subtract, and repeat.

/// Distribute `budget` watts across cores requesting `requests` watts.
///
/// Returns the per-core grant. Invariants (tested):
/// * `grant[i] ≤ requests[i]` + an equal share of any surplus the core
///   can't use is **not** granted — a core never receives more than it
///   requested;
/// * `Σ grant ≤ budget`, with equality when `Σ requests ≥ budget`;
/// * when `Σ requests ≤ budget`, every core gets exactly its request;
/// * any two cores whose requests exceed the final water level receive
///   the same grant (the level).
pub fn water_filling(requests: &[f64], budget: f64) -> Vec<f64> {
    water_filling_with_rounds(requests, budget).0
}

/// [`water_filling`] that also reports how many peeling rounds the loop
/// ran (0 when the inputs are degenerate or every request is satisfiable
/// without peeling past round one). Observability hook: DES exports the
/// accumulated round count as `des.wf_rounds`.
pub fn water_filling_with_rounds(requests: &[f64], budget: f64) -> (Vec<f64>, u64) {
    let m = requests.len();
    let mut grant = vec![0.0; m];
    if m == 0 || budget <= 0.0 {
        return (grant, 0);
    }
    let mut rounds = 0u64;
    // Outstanding (not yet granted) request per unsatisfied core.
    let mut rest: Vec<f64> = requests.iter().map(|&h| h.max(0.0)).collect();
    let mut remaining = budget;
    loop {
        let unsat: Vec<usize> = (0..m).filter(|&i| rest[i] > 1e-12).collect();
        if unsat.is_empty() || remaining <= 1e-12 {
            break;
        }
        rounds += 1;
        let h_min = unsat.iter().map(|&i| rest[i]).fold(f64::INFINITY, f64::min);
        let k = unsat.len() as f64;
        if h_min * k >= remaining {
            // Not enough water to reach the next container rim: level off.
            let share = remaining / k;
            for &i in &unsat {
                grant[i] += share;
                rest[i] -= share;
            }
            break;
        }
        // Fill every unsatisfied container by h_min; the minimal ones are
        // now satisfied.
        for &i in &unsat {
            grant[i] += h_min;
            rest[i] -= h_min;
        }
        remaining -= h_min * k;
    }
    (grant, rounds)
}

/// Incremental entry point to [`water_filling`]: caches the last solve
/// and re-levels only when the request vector or budget changed
/// (bitwise). DES invokes WF on every budget-bounded trigger; when
/// several triggers coincide at one instant — or the system is in a
/// steady state where no core's request moved — the grants are provably
/// the previous ones and the peeling loop is skipped.
#[derive(Clone, Debug, Default)]
pub struct WaterFillingCache {
    requests: Vec<f64>,
    budget: f64,
    grants: Vec<f64>,
    valid: bool,
    hits: u64,
    levelings: u64,
    rounds: u64,
}

impl WaterFillingCache {
    /// An empty cache; the first [`WaterFillingCache::grants`] call
    /// always solves.
    pub fn new() -> Self {
        Self::default()
    }

    /// Grants for `requests` under `budget` — bitwise identical to
    /// `water_filling(requests, budget)`, reusing the previous solve
    /// when both inputs match it exactly.
    pub fn grants(&mut self, requests: &[f64], budget: f64) -> &[f64] {
        let hit = self.valid
            && self.budget.to_bits() == budget.to_bits()
            && self.requests.len() == requests.len()
            && self
                .requests
                .iter()
                .zip(requests)
                .all(|(a, b)| a.to_bits() == b.to_bits());
        if !hit {
            let (grants, rounds) = water_filling_with_rounds(requests, budget);
            self.grants = grants;
            self.levelings += 1;
            self.rounds += rounds;
            self.requests.clear();
            self.requests.extend_from_slice(requests);
            self.budget = budget;
            self.valid = true;
        } else {
            self.hits += 1;
        }
        &self.grants
    }

    /// How often a call was served from the cached solve.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// How often the peeling loop actually ran (cache misses).
    pub fn levelings(&self) -> u64 {
        self.levelings
    }

    /// Total peeling rounds across all levelings.
    pub fn rounds(&self) -> u64 {
        self.rounds
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn total(v: &[f64]) -> f64 {
        v.iter().sum()
    }

    #[test]
    fn underload_grants_exact_requests() {
        let req = [5.0, 10.0, 3.0];
        let g = water_filling(&req, 100.0);
        for (a, b) in g.iter().zip(req.iter()) {
            assert!((a - b).abs() < 1e-9);
        }
    }

    #[test]
    fn paper_figure2_example() {
        // 4-core system: core 4 requests less than the equal share and
        // gets what it demands; cores 1–3 equally share the rest.
        let req = [30.0, 40.0, 35.0, 10.0];
        let budget = 70.0;
        let g = water_filling(&req, budget);
        assert!((g[3] - 10.0).abs() < 1e-9);
        let level = (budget - 10.0) / 3.0; // 20 W each
        for &i in &[0usize, 1, 2] {
            assert!((g[i] - level).abs() < 1e-9, "core {i}: {}", g[i]);
        }
        assert!((total(&g) - budget).abs() < 1e-9);
    }

    #[test]
    fn overload_levels_equally() {
        let req = [50.0, 50.0, 50.0, 50.0];
        let g = water_filling(&req, 80.0);
        for &x in &g {
            assert!((x - 20.0).abs() < 1e-9);
        }
    }

    #[test]
    fn never_grants_more_than_request() {
        let req = [1.0, 2.0, 100.0, 0.5];
        let g = water_filling(&req, 50.0);
        for (a, b) in g.iter().zip(req.iter()) {
            assert!(*a <= *b + 1e-9, "{a} > {b}");
        }
        assert!((total(&g) - 50.0).abs() < 1e-9);
    }

    #[test]
    fn conservation_never_exceeds_budget() {
        let cases: &[(&[f64], f64)] = &[
            (&[10.0, 20.0, 30.0], 15.0),
            (&[10.0, 20.0, 30.0], 60.0),
            (&[10.0, 20.0, 30.0], 1000.0),
            (&[0.0, 0.0, 5.0], 3.0),
        ];
        for &(req, h) in cases {
            let g = water_filling(req, h);
            assert!(total(&g) <= h + 1e-9, "req {req:?} H {h}");
            assert!(total(&g) <= req.iter().sum::<f64>() + 1e-9);
        }
    }

    #[test]
    fn multi_round_peeling() {
        // Ascending requests force several peel rounds before levelling.
        let req = [2.0, 4.0, 8.0, 100.0];
        let g = water_filling(&req, 30.0);
        // Rounds: grant 2 to all (rem 22); grant 2 more to last three
        // (rem 16, core1 done at 4); grant 4 more to last two (rem 8,
        // core2 done at 8); split 8 between... only core3 unsatisfied:
        // level check 92*1 >= 8 → core3 gets 8 more → 16.
        assert!((g[0] - 2.0).abs() < 1e-9);
        assert!((g[1] - 4.0).abs() < 1e-9);
        assert!((g[2] - 8.0).abs() < 1e-9);
        assert!((g[3] - 16.0).abs() < 1e-9);
        // The peel/level structure above is exactly four loop rounds.
        let (g2, rounds) = water_filling_with_rounds(&req, 30.0);
        assert_eq!(g2, g);
        assert_eq!(rounds, 4);
    }

    #[test]
    fn cache_counts_hits_and_rounds() {
        let mut cache = WaterFillingCache::new();
        let req = [2.0, 4.0, 8.0, 100.0];
        cache.grants(&req, 30.0);
        cache.grants(&req, 30.0);
        cache.grants(&req, 30.0);
        assert_eq!(cache.levelings(), 1);
        assert_eq!(cache.hits(), 2);
        assert_eq!(cache.rounds(), 4);
        cache.grants(&req, 31.0);
        assert_eq!(cache.levelings(), 2);
    }

    #[test]
    fn unsatisfied_cores_share_a_common_level() {
        let req = [3.0, 50.0, 70.0, 90.0, 1.0];
        let g = water_filling(&req, 100.0);
        // Cores 1,2,3 exceed the level; they must be equal.
        assert!((g[1] - g[2]).abs() < 1e-9);
        assert!((g[2] - g[3]).abs() < 1e-9);
        assert!((g[0] - 3.0).abs() < 1e-9);
        assert!((g[4] - 1.0).abs() < 1e-9);
    }

    #[test]
    fn degenerate_inputs() {
        assert!(water_filling(&[], 10.0).is_empty());
        assert_eq!(water_filling(&[5.0, 5.0], 0.0), vec![0.0, 0.0]);
        assert_eq!(water_filling(&[5.0, 5.0], -3.0), vec![0.0, 0.0]);
        // Negative requests are clamped to zero.
        let g = water_filling(&[-5.0, 10.0], 20.0);
        assert_eq!(g[0], 0.0);
        assert!((g[1] - 10.0).abs() < 1e-9);
        // All-zero requests grant nothing.
        assert_eq!(water_filling(&[0.0, 0.0], 10.0), vec![0.0, 0.0]);
    }

    #[test]
    fn monotone_in_budget() {
        let req = [7.0, 13.0, 29.0, 41.0];
        let mut prev = vec![0.0; 4];
        for h in [0.0, 10.0, 20.0, 40.0, 80.0, 160.0] {
            let g = water_filling(&req, h);
            for i in 0..4 {
                assert!(g[i] + 1e-9 >= prev[i], "grant shrank with bigger budget");
            }
            prev = g;
        }
    }

    #[test]
    fn cache_hits_are_bitwise_identical_and_invalidate_on_change() {
        let mut cache = WaterFillingCache::new();
        let req = [30.0, 40.0, 35.0, 10.0];
        let direct = water_filling(&req, 70.0);
        let first = cache.grants(&req, 70.0).to_vec();
        assert_eq!(
            first.iter().map(|g| g.to_bits()).collect::<Vec<_>>(),
            direct.iter().map(|g| g.to_bits()).collect::<Vec<_>>()
        );
        // Hit: same inputs, same (cached) output.
        let second = cache.grants(&req, 70.0).to_vec();
        assert_eq!(first, second);
        // Budget change invalidates…
        let wider = cache.grants(&req, 200.0).to_vec();
        assert_eq!(
            wider.iter().map(|g| g.to_bits()).collect::<Vec<_>>(),
            water_filling(&req, 200.0)
                .iter()
                .map(|g| g.to_bits())
                .collect::<Vec<_>>()
        );
        // …and so does any request change, including length.
        let req2 = [30.0, 40.0, 35.0];
        let shorter = cache.grants(&req2, 200.0).to_vec();
        assert_eq!(shorter.len(), 3);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(200))]

        #[test]
        fn prop_conservation_and_request_cap(
            req in proptest::collection::vec(0.0f64..120.0, 0..10),
            budget in 0.0f64..500.0,
        ) {
            let g = water_filling(&req, budget);
            prop_assert_eq!(g.len(), req.len());
            let sum: f64 = g.iter().sum();
            // Σ grant ≤ budget, and ≤ Σ requests (never invent demand).
            prop_assert!(sum <= budget + 1e-9, "sum {} budget {}", sum, budget);
            let want: f64 = req.iter().sum();
            prop_assert!(sum <= want + 1e-9, "sum {} requests {}", sum, want);
            // Per-core: never more than requested, never negative.
            for (gi, ri) in g.iter().zip(&req) {
                prop_assert!(*gi >= 0.0);
                prop_assert!(*gi <= *ri + 1e-9, "grant {} request {}", gi, ri);
            }
            // When the budget covers the demand, everyone is satisfied;
            // when it doesn't, it is spent in full.
            if want <= budget {
                for (gi, ri) in g.iter().zip(&req) {
                    prop_assert!((gi - ri).abs() < 1e-9);
                }
            } else {
                prop_assert!((sum - budget).abs() < 1e-6, "sum {} budget {}", sum, budget);
            }
        }

        #[test]
        fn prop_monotone_in_budget(
            req in proptest::collection::vec(0.0f64..120.0, 1..10),
            lo in 0.0f64..250.0,
            delta in 0.0f64..250.0,
        ) {
            let small = water_filling(&req, lo);
            let big = water_filling(&req, lo + delta);
            for (s, b) in small.iter().zip(&big) {
                prop_assert!(b + 1e-9 >= *s, "grant shrank: {} -> {}", s, b);
            }
        }

        #[test]
        fn prop_incremental_matches_full(
            reqs in proptest::collection::vec(
                proptest::collection::vec(0.0f64..120.0, 0..8),
                1..6,
            ),
            budget in 0.0f64..400.0,
            repeat in proptest::bool::ANY,
        ) {
            // Feed a sequence of request vectors (optionally re-playing
            // each one to force cache hits) and require every answer to
            // be bitwise equal to the direct solve.
            let mut cache = WaterFillingCache::new();
            for req in &reqs {
                let n = if repeat { 3 } else { 1 };
                for _ in 0..n {
                    let cached = cache.grants(req, budget).to_vec();
                    let direct = water_filling(req, budget);
                    prop_assert_eq!(cached.len(), direct.len());
                    for (ca, d) in cached.iter().zip(&direct) {
                        prop_assert_eq!(ca.to_bits(), d.to_bits());
                    }
                }
            }
        }
    }
}
