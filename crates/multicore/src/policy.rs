//! The contract between scheduling policies and the simulation engine.
//!
//! The engine owns all state (waiting queue, per-core job sets, progress,
//! energy accounting). On every triggering event (§IV-E) it builds a
//! read-only [`SystemView`] and asks the policy for a [`PolicyDecision`]:
//! which queued jobs move to which cores, which per-core plans replace the
//! current ones, and which jobs are abandoned.

use qes_core::job::JobId;
use qes_core::power::PowerModel;
use qes_core::schedule::CoreSchedule;
use qes_core::time::{SimDuration, SimTime};
use qes_singlecore::online_qe::ReadyJob;

/// What one core looks like at a trigger instant.
///
/// The view *borrows* the engine's per-core job list — building a
/// [`SystemView`] is allocation-free, so policies with cheap decisions
/// (the one-job-at-a-time baselines) are not taxed by snapshot copies on
/// every trigger.
#[derive(Clone, Copy, Debug, Default)]
pub struct CoreView<'a> {
    /// Unfinished, unexpired jobs assigned to this core (non-migratory),
    /// with their processed volumes. Includes the running job, if any.
    pub jobs: &'a [ReadyJob],
    /// True if the core still has planned work from the previous decision.
    pub busy: bool,
}

impl CoreView<'_> {
    /// Jobs still live at `now` with remaining work.
    pub fn live_jobs(&self, now: SimTime) -> impl Iterator<Item = ReadyJob> + '_ {
        self.jobs
            .iter()
            .filter(move |r| r.job.deadline > now && r.remaining() > 1e-9)
            .copied()
    }
}

/// Read-only snapshot handed to the policy at each trigger.
pub struct SystemView<'a> {
    /// Current simulation time.
    pub now: SimTime,
    /// Arrived, not-yet-assigned jobs, in arrival order.
    pub queue: &'a [ReadyJob],
    /// Per-core state.
    pub cores: &'a [CoreView<'a>],
    /// Total dynamic power budget `H` (W).
    pub budget: f64,
    /// The per-core power model.
    pub model: &'a dyn PowerModel,
}

impl SystemView<'_> {
    /// Number of cores.
    pub fn num_cores(&self) -> usize {
        self.cores.len()
    }
}

/// What the policy wants done.
#[derive(Clone, Debug, Default)]
pub struct PolicyDecision {
    /// Queued jobs to move onto cores: `(job, core index)`. A job may be
    /// assigned at most once and stays on its core forever (non-migratory).
    pub assignments: Vec<(JobId, usize)>,
    /// Replacement plan per core, with slices starting at or after the
    /// trigger instant. `None` keeps the core's current plan; a vector
    /// shorter than the core count keeps the plans of the missing tail
    /// (so an empty vector keeps every core's plan).
    pub plans: Vec<Option<CoreSchedule>>,
    /// Jobs abandoned now (engine stops tracking them; their quality is
    /// settled from whatever volume they already processed).
    pub discarded: Vec<JobId>,
    /// Speed each core runs at while *not* executing a slice, until the
    /// next decision. Empty means all zero (cores gate off when idle —
    /// the C-DVFS behaviour). No-DVFS cores cannot scale down and spin at
    /// their fixed speed; S-DVFS cores are locked to the shared clock
    /// (§V-A), so both report nonzero ambient speeds here.
    ///
    /// **Length contract:** either empty or exactly one entry per core.
    /// Any other length is a policy bug: the engine rejects it with a
    /// `debug_assert!` and ignores the vector in release builds rather
    /// than misattributing speeds to the wrong cores.
    pub ambient_speeds: Vec<f64>,
}

impl PolicyDecision {
    /// A decision that keeps every core's current plan. Allocation-free:
    /// an empty `plans` vector means "no replacements", whatever the core
    /// count.
    pub fn keep_all(_num_cores: usize) -> Self {
        PolicyDecision::default()
    }
}

/// Which of the §IV-E triggering events a policy wants.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TriggerRequest {
    /// Quantum trigger: invoke every `Some(q)` of simulated time.
    pub quantum: Option<SimDuration>,
    /// Counter trigger: invoke when this many jobs are waiting.
    pub counter: Option<usize>,
    /// Idle-core trigger: invoke when a core runs out of planned work.
    pub on_idle: bool,
    /// Gate the idle-core trigger on waiting work: a core running out of
    /// planned work (`PlanEnd`) only re-invokes the policy when at least
    /// one live job is waiting in the queue. §IV-E's idle trigger exists
    /// "to start assigning more jobs" — with nothing to assign, the
    /// invocation can only re-derive the plans it already produced, so
    /// grouped scheduling skips it. A job arriving while a core sits idle
    /// still fires immediately (the arrival itself is the waiting work).
    pub idle_requires_work: bool,
    /// Invoke on every job arrival (used by the one-job-at-a-time
    /// baselines, which otherwise would never see a job that arrives
    /// while cores sit idle).
    pub on_arrival: bool,
}

impl TriggerRequest {
    /// The paper's DES defaults (§V-B): 500 ms quantum, counter of 8,
    /// idle-core trigger on — grouped scheduling, so the idle trigger
    /// only fires when there is waiting work to assign.
    pub fn paper_default() -> Self {
        TriggerRequest {
            quantum: Some(SimDuration::from_millis(500)),
            counter: Some(8),
            on_idle: true,
            idle_requires_work: true,
            on_arrival: false,
        }
    }

    /// §IV-E "Immediate Scheduling": invoke on every arrival and on
    /// every plan end, no batching. The strawman grouped scheduling is
    /// measured against (and the differential suite's reference).
    pub fn per_event() -> Self {
        TriggerRequest {
            quantum: None,
            counter: None,
            on_idle: true,
            idle_requires_work: false,
            on_arrival: true,
        }
    }

    /// Baseline schedulers: react to idle cores and arrivals only. The
    /// idle trigger stays ungated — the +WF baselines re-level power on
    /// every plan end even with an empty queue.
    pub fn baseline() -> Self {
        TriggerRequest {
            quantum: None,
            counter: None,
            on_idle: true,
            idle_requires_work: false,
            on_arrival: true,
        }
    }
}

/// A multicore scheduling policy driven by the simulation engine.
pub trait SchedulingPolicy {
    /// Human-readable name used in reports.
    fn name(&self) -> String;

    /// The triggering events this policy wants.
    fn triggers(&self) -> TriggerRequest;

    /// Produce a decision for the current system state. Called on every
    /// trigger; the engine has already advanced all progress to
    /// `view.now`.
    fn on_trigger(&mut self, view: &SystemView<'_>) -> PolicyDecision;

    /// Drain policy-internal observability counters into `sink` as
    /// `(name, monotonic value)` pairs. The engine calls this once at the
    /// end of an observed run and forwards each pair as a
    /// `PolicyCounter` event (`qes_core::obs`); unobserved runs never
    /// call it. Names should be stable, dot-separated, and prefixed with
    /// the policy family (e.g. `des.cache_hit`). The default reports
    /// nothing.
    fn metrics(&self, _sink: &mut dyn FnMut(&'static str, u64)) {}
}

#[cfg(test)]
mod tests {
    use super::*;
    use qes_core::job::Job;

    #[test]
    fn live_jobs_filters_expired_and_finished() {
        let ms = SimTime::from_millis;
        let mk = |id, d, w, done| ReadyJob {
            job: Job::new(id, ms(0), ms(d), w).unwrap(),
            processed: done,
        };
        let jobs = [
            mk(0, 100, 50.0, 0.0),
            mk(1, 100, 50.0, 50.0),
            mk(2, 10, 50.0, 0.0),
        ];
        let core = CoreView {
            jobs: &jobs,
            busy: true,
        };
        let live: Vec<_> = core.live_jobs(ms(50)).collect();
        assert_eq!(live.len(), 1);
        assert_eq!(live[0].job.id.0, 0);
    }

    #[test]
    fn default_trigger_profiles() {
        let d = TriggerRequest::paper_default();
        assert_eq!(d.quantum, Some(SimDuration::from_millis(500)));
        assert_eq!(d.counter, Some(8));
        assert!(d.on_idle);
        assert!(d.idle_requires_work);
        assert!(!d.on_arrival);
        let b = TriggerRequest::baseline();
        assert!(b.on_idle && b.on_arrival);
        assert!(!b.idle_requires_work);
        assert!(b.quantum.is_none() && b.counter.is_none());
        let p = TriggerRequest::per_event();
        assert!(p.on_idle && p.on_arrival && !p.idle_requires_work);
        assert!(p.quantum.is_none() && p.counter.is_none());
    }

    #[test]
    fn keep_all_preserves_plans() {
        let d = PolicyDecision::keep_all(3);
        assert!(d.plans.iter().all(|p| p.is_none()));
        assert!(d.assignments.is_empty());
        assert!(d.discarded.is_empty());
        assert!(d.ambient_speeds.is_empty());
    }
}
