//! Offline (clairvoyant) reference schedules.
//!
//! The offline multicore ⟨quality, energy⟩ problem is NP-hard (§IV), so no
//! exact polynomial solver exists; but two well-defined references are
//! still invaluable for quantifying DES's *online* (myopia) gap:
//!
//! * [`offline_crr_qe_opt`] — fix the job→core assignment with the same
//!   C-RR dealing DES uses, give every core the static equal power share
//!   `H/m`, and solve each core *optimally* with full future knowledge
//!   (QE-OPT). Any quality DES loses against this reference is the price
//!   of not knowing the future (plus the dynamic-vs-static power-sharing
//!   difference, which favours DES).
//! * [`offline_best_assignment`] — for small instances, enumerate *every*
//!   `m^n` job→core assignment, solve each with per-core QE-OPT, and
//!   keep the lexicographic best. Exponential; guarded by an instance
//!   size cap. This bounds how much the assignment policy itself can
//!   matter.
//!
//! Neither is a true multicore optimum (power cannot migrate between
//! cores over time here), but both are *feasible* schedules under the
//! budget, so DES beating them is meaningful and losing to them is a
//! measured regret.

use qes_core::job::{Job, JobSet};
use qes_core::metric::QualityEnergy;
use qes_core::power::PowerModel;
use qes_core::quality::QualityFunction;
use qes_core::schedule::{CoreSchedule, Schedule};
use qes_singlecore::qe_opt::qe_opt;

use crate::crr::CrrDistributor;

/// A reference schedule with its score.
#[derive(Clone, Debug)]
pub struct OfflineResult {
    /// The feasible multicore schedule.
    pub schedule: Schedule,
    /// Its ⟨quality, energy⟩ score under the given quality function.
    pub score: QualityEnergy,
}

/// Solve per-core QE-OPT for a fixed assignment. `assignment[i]` is the
/// core of `jobs.jobs()[i]`.
fn solve_assignment(
    jobs: &JobSet,
    assignment: &[usize],
    m: usize,
    model: &dyn PowerModel,
    share: f64,
    quality: &dyn QualityFunction,
) -> OfflineResult {
    let mut per_core: Vec<Vec<Job>> = vec![Vec::new(); m];
    for (job, &core) in jobs.iter().zip(assignment) {
        per_core[core].push(*job);
    }
    let mut cores = Vec::with_capacity(m);
    let mut total_quality = 0.0;
    for bucket in per_core {
        if bucket.is_empty() {
            cores.push(CoreSchedule::default());
            continue;
        }
        let set = JobSet::new_unchecked(bucket);
        let r = qe_opt(&set, model, share);
        total_quality += set
            .iter()
            .map(|j| quality.job_quality(j, r.volume(j.id)))
            .sum::<f64>();
        cores.push(r.schedule);
    }
    let schedule = Schedule::new(cores);
    let energy = schedule.total_energy(model);
    OfflineResult {
        schedule,
        score: QualityEnergy::new(total_quality, energy),
    }
}

/// Clairvoyant reference: C-RR assignment + static equal power + per-core
/// QE-OPT with full future knowledge.
pub fn offline_crr_qe_opt(
    jobs: &JobSet,
    m: usize,
    model: &dyn PowerModel,
    budget: f64,
    quality: &dyn QualityFunction,
) -> OfflineResult {
    assert!(m > 0);
    let mut crr = CrrDistributor::new();
    let assignment = crr.assign(jobs.len(), m);
    solve_assignment(jobs, &assignment, m, model, budget / m as f64, quality)
}

/// Maximum `m^n` combinations [`offline_best_assignment`] will enumerate.
pub const BRUTE_FORCE_CAP: u64 = 1_000_000;

/// Exhaustive best assignment for small instances (per-core QE-OPT,
/// static equal power). Returns `None` when `m^n` exceeds
/// [`BRUTE_FORCE_CAP`].
pub fn offline_best_assignment(
    jobs: &JobSet,
    m: usize,
    model: &dyn PowerModel,
    budget: f64,
    quality: &dyn QualityFunction,
) -> Option<OfflineResult> {
    assert!(m > 0);
    let n = jobs.len() as u32;
    let combos = (m as u64).checked_pow(n)?;
    if combos > BRUTE_FORCE_CAP {
        return None;
    }
    let share = budget / m as f64;
    let mut best: Option<OfflineResult> = None;
    let mut assignment = vec![0usize; jobs.len()];
    loop {
        let cand = solve_assignment(jobs, &assignment, m, model, share, quality);
        best = Some(match best {
            None => cand,
            Some(b) if cand.score.compare(&b.score) == std::cmp::Ordering::Greater => cand,
            Some(b) => b,
        });
        // Odometer increment over base-m digits.
        let mut i = 0;
        loop {
            if i == assignment.len() {
                return best;
            }
            assignment[i] += 1;
            if assignment[i] < m {
                break;
            }
            assignment[i] = 0;
            i += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qes_core::power::PolynomialPower;
    use qes_core::quality::ExpQuality;
    use qes_core::time::SimTime;

    const MODEL: PolynomialPower = PolynomialPower::PAPER_SIM;
    const Q: ExpQuality = ExpQuality::PAPER_DEFAULT;

    fn ms(x: u64) -> SimTime {
        SimTime::from_millis(x)
    }

    fn js(specs: &[(u64, u64, f64)]) -> JobSet {
        JobSet::new(
            specs
                .iter()
                .enumerate()
                .map(|(i, &(r, d, w))| Job::new(i as u32, ms(r), ms(d), w).unwrap())
                .collect(),
        )
        .unwrap()
    }

    #[test]
    fn crr_reference_is_feasible() {
        let jobs = js(&[
            (0, 150, 200.0),
            (10, 160, 150.0),
            (20, 170, 300.0),
            (30, 180, 100.0),
        ]);
        let r = offline_crr_qe_opt(&jobs, 2, &MODEL, 40.0, &Q);
        r.schedule
            .validate_with_tolerance(&jobs, &MODEL, 40.0, 0.25, 1e-3)
            .unwrap();
        assert!(r.score.quality > 0.0);
        assert!(r.score.energy > 0.0);
    }

    #[test]
    fn brute_force_at_least_matches_crr() {
        let jobs = js(&[
            (0, 100, 180.0),
            (0, 100, 180.0),
            (5, 105, 60.0),
            (10, 110, 240.0),
        ]);
        let crr = offline_crr_qe_opt(&jobs, 2, &MODEL, 20.0, &Q);
        let best = offline_best_assignment(&jobs, 2, &MODEL, 20.0, &Q).unwrap();
        assert!(
            best.score.dominates_or_ties(&crr.score),
            "brute force {} worse than C-RR {}",
            best.score,
            crr.score
        );
    }

    #[test]
    fn brute_force_prefers_balanced_assignments() {
        // Two identical heavy jobs, two cores: splitting them dominates
        // stacking them (concavity + per-core capacity).
        let jobs = js(&[(0, 100, 180.0), (0, 100, 180.0)]);
        let best = offline_best_assignment(&jobs, 2, &MODEL, 10.0, &Q).unwrap();
        // Both cores must run something.
        let busy = best
            .schedule
            .cores()
            .iter()
            .filter(|c| !c.is_empty())
            .count();
        assert_eq!(busy, 2);
    }

    #[test]
    fn brute_force_caps_instance_size() {
        let jobs = js([(0, 100, 10.0); 30].as_slice());
        assert!(offline_best_assignment(&jobs, 4, &MODEL, 40.0, &Q).is_none());
    }

    #[test]
    fn empty_jobset_scores_zero() {
        let jobs = JobSet::new(vec![]).unwrap();
        let r = offline_crr_qe_opt(&jobs, 3, &MODEL, 60.0, &Q);
        assert_eq!(r.score.quality, 0.0);
        assert_eq!(r.score.energy, 0.0);
    }
}
