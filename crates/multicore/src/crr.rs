//! **C-RR** — Cumulative Round-Robin job distribution (paper §IV-B).
//!
//! To balance load (maximizing quality *and* letting each core run
//! slower, minimizing energy) DES deals ready jobs to the cores evenly.
//! The policy is *cumulative*: each invocation continues dealing from the
//! core after the one where the previous invocation stopped. Compared to
//! restarting at core 0 every time, this keeps the per-core job counts
//! within one of each other over the whole run, not just within one
//! invocation.

/// Stateful cumulative round-robin dealer.
#[derive(Clone, Debug, Default)]
pub struct CrrDistributor {
    next: usize,
}

impl CrrDistributor {
    /// Start dealing at core 0.
    pub fn new() -> Self {
        CrrDistributor { next: 0 }
    }

    /// The core the next job will be dealt to.
    pub fn cursor(&self) -> usize {
        self.next
    }

    /// Deal `count` jobs to `m` cores; returns the core index for each job
    /// in order, advancing the persistent cursor.
    pub fn assign(&mut self, count: usize, m: usize) -> Vec<usize> {
        assert!(m > 0, "cannot distribute to zero cores");
        let mut out = Vec::with_capacity(count);
        self.next %= m; // re-sync if the core count changed between calls
        for _ in 0..count {
            out.push(self.next);
            self.next = (self.next + 1) % m;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deals_round_robin() {
        let mut d = CrrDistributor::new();
        assert_eq!(d.assign(5, 3), vec![0, 1, 2, 0, 1]);
    }

    #[test]
    fn cursor_is_cumulative_across_invocations() {
        let mut d = CrrDistributor::new();
        assert_eq!(d.assign(2, 4), vec![0, 1]);
        // Next invocation continues where the last one stopped.
        assert_eq!(d.assign(3, 4), vec![2, 3, 0]);
        assert_eq!(d.cursor(), 1);
    }

    #[test]
    fn non_cumulative_would_skew_but_crr_does_not() {
        // Many invocations of 1 job each on 4 cores: C-RR spreads them
        // evenly; a restart-at-zero dealer would put all on core 0.
        let mut d = CrrDistributor::new();
        let mut counts = [0usize; 4];
        for _ in 0..40 {
            for c in d.assign(1, 4) {
                counts[c] += 1;
            }
        }
        assert_eq!(counts, [10, 10, 10, 10]);
    }

    #[test]
    fn long_run_balance_is_within_one() {
        let mut d = CrrDistributor::new();
        let mut counts = vec![0usize; 7];
        // Irregular batch sizes.
        for batch in [3usize, 1, 5, 2, 8, 1, 1, 4, 6, 2] {
            for c in d.assign(batch, 7) {
                counts[c] += 1;
            }
        }
        let min = counts.iter().min().unwrap();
        let max = counts.iter().max().unwrap();
        assert!(max - min <= 1, "{counts:?}");
    }

    #[test]
    fn handles_core_count_change() {
        let mut d = CrrDistributor::new();
        d.assign(3, 4);
        // Shrink to 2 cores: cursor re-syncs instead of panicking.
        let a = d.assign(2, 2);
        assert_eq!(a.len(), 2);
        assert!(a.iter().all(|&c| c < 2));
    }

    #[test]
    fn zero_jobs_is_a_noop() {
        let mut d = CrrDistributor::new();
        assert!(d.assign(0, 3).is_empty());
        assert_eq!(d.cursor(), 0);
    }
}
