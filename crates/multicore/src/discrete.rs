//! Discrete speed scaling support (paper §V-F).
//!
//! Real processors offer a handful of P-states rather than a continuum.
//! The paper adapts DES by rectifying the water-filling output: starting
//! from the core with the *lowest* assigned power, each core's continuous
//! speed is rounded up to the nearest discrete level — subject to the
//! total power budget — falling back to the next lower level when the
//! budget cannot fund the round-up.
//!
//! [`rectify_speeds`] implements that pass; [`snap_plan_up`] then adjusts
//! a core's variable-speed plan so every slice runs at a discrete level
//! (volume-preserving: speeds round up, slices shorten).

use qes_core::power::{DiscreteSpeedSet, PowerModel};
use qes_core::schedule::{CoreSchedule, Slice};
use qes_core::time::SimTime;

/// Rectify per-core WF power grants to discrete speeds (§V-F).
///
/// `grants[i]` is core `i`'s continuous power grant (Σ grants ≤ `budget`).
/// Returns the per-core discrete speed cap. Cores are processed in
/// ascending-grant order; each rounds its continuous speed up if the
/// accumulated extra power still fits the budget, otherwise down.
pub fn rectify_speeds(
    grants: &[f64],
    set: &DiscreteSpeedSet,
    model: &dyn PowerModel,
    budget: f64,
) -> Vec<f64> {
    let m = grants.len();
    let mut order: Vec<usize> = (0..m).collect();
    order.sort_by(|&a, &b| grants[a].total_cmp(&grants[b]));
    let granted: f64 = grants.iter().sum();
    let mut slack = (budget - granted).max(0.0);
    let mut speeds = vec![0.0; m];
    for &i in &order {
        if grants[i] <= 1e-12 {
            continue;
        }
        let s_cont = model.speed_for_dynamic_power(grants[i]);
        // First choice: smallest discrete level ≥ the continuous speed
        // (capped at the fastest level when the continuum exceeds it).
        let up = set.round_up(s_cont).unwrap_or_else(|| set.max_speed());
        let extra = model.dynamic_power(up) - grants[i];
        if extra <= slack + 1e-12 {
            speeds[i] = up;
            slack -= extra.max(0.0);
            if extra < 0.0 {
                // Round-up below the grant (continuum above the fastest
                // level): the unused grant returns to the slack pool.
                slack += -extra;
            }
        } else if let Some(down) = set.round_down(s_cont) {
            speeds[i] = down;
            slack += grants[i] - model.dynamic_power(down);
        } else {
            // Even the slowest level exceeds the grant and the budget has
            // no room: the core cannot run this round.
            speeds[i] = 0.0;
            slack += grants[i];
        }
    }
    speeds
}

/// Snap every slice of `plan` up to a discrete level, preserving volume by
/// shortening the slice (speeds only rise, so nothing overlaps).
///
/// Slice speeds must not exceed the fastest discrete level by construction
/// (the per-core budget funds at most the rectified speed); slices above
/// it are clamped there and keep their duration, losing the excess volume.
pub fn snap_plan_up(plan: &CoreSchedule, set: &DiscreteSpeedSet) -> CoreSchedule {
    let mut out = Vec::with_capacity(plan.slices().len());
    for s in plan.slices() {
        match set.round_up(s.speed) {
            Some(d) => {
                if (d - s.speed).abs() < 1e-12 {
                    out.push(*s);
                } else {
                    // Same volume at a higher speed: shorter slice.
                    let dur = s.end.saturating_since(s.start).as_micros() as f64;
                    let new_dur = dur * s.speed / d;
                    let end = SimTime::from_micros(s.start.as_micros() + new_dur.round() as u64);
                    if end > s.start {
                        out.push(Slice {
                            job: s.job,
                            start: s.start,
                            end,
                            speed: d,
                        });
                    }
                }
            }
            None => {
                // Above the fastest level: clamp, losing volume.
                out.push(Slice {
                    speed: set.max_speed(),
                    ..*s
                });
            }
        }
    }
    CoreSchedule::new(out)
}

/// The discrete level ladder used by the Fig. 10 experiment: 0.25 GHz
/// steps up to 3 GHz under the paper's `P = 5·s²` model. (The paper does
/// not publish its ladder; this one brackets the 2 GHz equal-share speed
/// the same way the Opteron table brackets its operating point.)
pub fn default_ladder(model: &dyn PowerModel) -> DiscreteSpeedSet {
    let speeds: Vec<f64> = (1..=12).map(|i| i as f64 * 0.25).collect();
    DiscreteSpeedSet::from_model(model, &speeds).expect("static ladder is valid")
}

#[cfg(test)]
mod tests {
    use super::*;
    use qes_core::job::JobId;
    use qes_core::power::PolynomialPower;

    const MODEL: PolynomialPower = PolynomialPower::PAPER_SIM;

    fn opteron() -> DiscreteSpeedSet {
        DiscreteSpeedSet::opteron_2380()
    }

    #[test]
    fn rectify_rounds_up_when_budget_allows() {
        // One core granted 5 W → 1 GHz continuous → 1.3 GHz discrete
        // (P = 8.45 W) affordable under a 20 W budget.
        let speeds = rectify_speeds(&[5.0], &opteron(), &MODEL, 20.0);
        assert!((speeds[0] - 1.3).abs() < 1e-12);
    }

    #[test]
    fn rectify_falls_back_down_when_budget_tight() {
        // Grant 5 W with zero slack: 1.3 GHz costs 8.45 W > 5 W → 0.8 GHz.
        let speeds = rectify_speeds(&[5.0], &opteron(), &MODEL, 5.0);
        assert!((speeds[0] - 0.8).abs() < 1e-12);
    }

    #[test]
    fn rectify_processes_lowest_grant_first() {
        // Slack 2 W. Core B (low grant) rounds up first and consumes the
        // slack; core A must round down.
        // B: 3 W → 0.775 GHz → up 0.8 GHz costs 3.2 W (extra 0.2).
        // A: 18 W → 1.897 GHz → up 2.5 GHz costs 31.25 (extra 13.25 > 1.8
        //    remaining slack) → down to 1.8 GHz (16.2 W).
        let speeds = rectify_speeds(&[18.0, 3.0], &opteron(), &MODEL, 23.0);
        assert!((speeds[1] - 0.8).abs() < 1e-12);
        assert!((speeds[0] - 1.8).abs() < 1e-12);
    }

    #[test]
    fn rectified_total_power_fits_budget() {
        let grants = [2.0, 7.0, 13.0, 19.0, 31.0];
        for budget in [72.0_f64, 80.0, 100.0, 200.0] {
            let speeds = rectify_speeds(&grants, &opteron(), &MODEL, budget);
            let total: f64 = speeds.iter().map(|&s| MODEL.dynamic_power(s)).sum();
            assert!(total <= budget + 1e-9, "budget {budget}: total {total}");
        }
    }

    #[test]
    fn zero_grant_core_stays_off() {
        let speeds = rectify_speeds(&[0.0, 10.0], &opteron(), &MODEL, 20.0);
        assert_eq!(speeds[0], 0.0);
        assert!(speeds[1] > 0.0);
    }

    #[test]
    fn continuum_above_fastest_level_caps() {
        // 100 W grant → 4.47 GHz continuous > 2.5 GHz max → capped, and
        // the surplus returns to slack.
        let speeds = rectify_speeds(&[100.0], &opteron(), &MODEL, 100.0);
        assert!((speeds[0] - 2.5).abs() < 1e-12);
    }

    #[test]
    fn snap_preserves_volume_per_slice() {
        let ms = SimTime::from_millis;
        let plan = CoreSchedule::new(vec![Slice {
            job: JobId(0),
            start: ms(0),
            end: ms(100),
            speed: 1.0,
        }]);
        let snapped = snap_plan_up(&plan, &opteron());
        let s = &snapped.slices()[0];
        assert!((s.speed - 1.3).abs() < 1e-12);
        // Volume 100 units preserved: 100/1.3 ms ≈ 76.923 ms.
        let vol = snapped.volumes()[&JobId(0)];
        assert!((vol - 100.0).abs() < 0.01, "vol {vol}");
        assert!(s.end < ms(100));
    }

    #[test]
    fn snap_clamps_overspeed_slices() {
        let ms = SimTime::from_millis;
        let plan = CoreSchedule::new(vec![Slice {
            job: JobId(0),
            start: ms(0),
            end: ms(100),
            speed: 4.0, // above the 2.5 GHz ceiling
        }]);
        let snapped = snap_plan_up(&plan, &opteron());
        let s = &snapped.slices()[0];
        assert!((s.speed - 2.5).abs() < 1e-12);
        assert_eq!(s.end, ms(100)); // duration kept, volume lost
        let vol = snapped.volumes()[&JobId(0)];
        assert!((vol - 250.0).abs() < 0.01);
    }

    #[test]
    fn snap_keeps_exact_levels_untouched() {
        let ms = SimTime::from_millis;
        let plan = CoreSchedule::new(vec![Slice {
            job: JobId(0),
            start: ms(0),
            end: ms(50),
            speed: 1.8,
        }]);
        let snapped = snap_plan_up(&plan, &opteron());
        assert_eq!(snapped.slices(), plan.slices());
    }

    #[test]
    fn default_ladder_brackets_operating_point() {
        let set = default_ladder(&MODEL);
        assert!((set.min_speed() - 0.25).abs() < 1e-12);
        assert!((set.max_speed() - 3.0).abs() < 1e-12);
        assert_eq!(set.round_up(2.0), Some(2.0)); // equal-share speed on the ladder
    }
}
