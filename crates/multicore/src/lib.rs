#![warn(missing_docs)]

//! # qes-multicore — the paper's multicore scheduling algorithms (§IV–§V)
//!
//! The centrepiece is [`DesPolicy`] — **DES (Dynamic Equal Sharing)** —
//! which decomposes the (NP-hard offline) multicore ⟨quality, energy⟩
//! problem into per-core single-core problems via two equal-sharing
//! policies, then solves each core with Online-QE:
//!
//! ```text
//! DES = C-RR + WF + Online-QE
//! ```
//!
//! * [`CrrDistributor`] — **C-RR** (Cumulative Round-Robin) job
//!   distribution (§IV-B): ready jobs are dealt to cores round-robin, and
//!   the dealing position *persists across invocations* so distribution
//!   stays balanced in the long run.
//! * [`water_filling`] — **WF** (Water-Filling) power distribution
//!   (§IV-C): cores requesting less than the equal share get exactly what
//!   they ask; the surplus is equally shared among the rest.
//! * [`DesPolicy`] — the four-step invocation of §IV-D, parameterized by
//!   [`ArchKind`] to model the paper's three architectures (§V-A):
//!   No-DVFS, S-DVFS (system-level), C-DVFS (core-level).
//! * [`BaselinePolicy`] — the comparison schedulers FCFS (≡ EDF for
//!   agreeable deadlines), LJF, SJF, each with static equal power sharing
//!   or WF enhancement (§V-E).
//! * [`discrete`] — discrete speed scaling support: WF output rectified to
//!   a [`qes_core::DiscreteSpeedSet`] (§V-F).
//!
//! Policies implement [`SchedulingPolicy`], the contract the `qes-sim`
//! engine drives.

pub mod arch;
pub mod baselines;
pub mod crr;
pub mod des;
pub mod differential;
pub mod discrete;
pub mod offline;
pub mod policy;
pub mod water_filling;

pub use arch::ArchKind;
pub use baselines::{BaselineOrder, BaselinePolicy};
pub use crr::CrrDistributor;
pub use des::{DesPolicy, JobSharing, PowerSharing, RecomputeMode};
pub use differential::{DifferentialConfig, TriggerMode};
pub use offline::{offline_best_assignment, offline_crr_qe_opt, OfflineResult};
pub use policy::{CoreView, PolicyDecision, SchedulingPolicy, SystemView, TriggerRequest};
pub use water_filling::{water_filling, WaterFillingCache};
