//! Structured figure reports: ASCII tables and CSV files.

use std::fmt::Write as _;
use std::io;
use std::path::Path;

/// One row of a figure's data.
#[derive(Clone, Debug)]
pub struct Row {
    /// Cell values, one per column.
    pub cells: Vec<f64>,
}

impl Row {
    /// Build a row from cells.
    pub fn new(cells: Vec<f64>) -> Self {
        Row { cells }
    }
}

/// A figure regenerated as a table: named columns, numeric rows, free-form
/// notes (the headline numbers the paper quotes in prose).
#[derive(Clone, Debug)]
pub struct FigureReport {
    /// Short id, e.g. `"fig05"`.
    pub id: String,
    /// Human title, e.g. `"Quality and energy vs arrival rate"`.
    pub title: String,
    /// Column names; first column is the x-axis.
    pub columns: Vec<String>,
    /// Data rows.
    pub rows: Vec<Row>,
    /// Derived headline numbers and commentary.
    pub notes: Vec<String>,
}

impl FigureReport {
    /// Create an empty report.
    pub fn new(id: &str, title: &str, columns: Vec<String>) -> Self {
        FigureReport {
            id: id.to_string(),
            title: title.to_string(),
            columns,
            rows: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Append a data row; panics if the arity mismatches the header.
    pub fn push_row(&mut self, cells: Vec<f64>) {
        assert_eq!(cells.len(), self.columns.len(), "row arity mismatch");
        self.rows.push(Row::new(cells));
    }

    /// Append a commentary note.
    pub fn note(&mut self, s: impl Into<String>) {
        self.notes.push(s.into());
    }

    /// Column index by name.
    pub fn column(&self, name: &str) -> Option<usize> {
        self.columns.iter().position(|c| c == name)
    }

    /// Extract one column's values.
    pub fn column_values(&self, name: &str) -> Option<Vec<f64>> {
        let i = self.column(name)?;
        Some(self.rows.iter().map(|r| r.cells[i]).collect())
    }

    /// Render an ASCII table with notes.
    pub fn to_table(&self) -> String {
        let mut widths: Vec<usize> = self.columns.iter().map(|c| c.len()).collect();
        let fmt_cell = |v: f64| -> String {
            if v.abs() >= 1000.0 {
                format!("{v:.0}")
            } else if v.abs() >= 10.0 {
                format!("{v:.2}")
            } else {
                format!("{v:.4}")
            }
        };
        let cells: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|r| r.cells.iter().map(|&v| fmt_cell(v)).collect())
            .collect();
        for row in &cells {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "== {} — {} ==", self.id, self.title);
        let header: Vec<String> = self
            .columns
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{c:>w$}", w = widths[i]))
            .collect();
        let _ = writeln!(out, "{}", header.join("  "));
        let _ = writeln!(
            out,
            "{}",
            "-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1))
        );
        for row in &cells {
            let line: Vec<String> = row
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{c:>w$}", w = widths[i]))
                .collect();
            let _ = writeln!(out, "{}", line.join("  "));
        }
        for n in &self.notes {
            let _ = writeln!(out, "  note: {n}");
        }
        out
    }

    /// Render as CSV (notes become `#` comment lines).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "# {} — {}", self.id, self.title);
        for n in &self.notes {
            let _ = writeln!(out, "# {n}");
        }
        let _ = writeln!(out, "{}", self.columns.join(","));
        for r in &self.rows {
            let line: Vec<String> = r.cells.iter().map(|v| format!("{v}")).collect();
            let _ = writeln!(out, "{}", line.join(","));
        }
        out
    }

    /// Write the CSV next to other experiment outputs.
    pub fn write_csv(&self, dir: &Path) -> io::Result<std::path::PathBuf> {
        std::fs::create_dir_all(dir)?;
        let path = dir.join(format!("{}.csv", self.id));
        std::fs::write(&path, self.to_csv())?;
        Ok(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> FigureReport {
        let mut f = FigureReport::new(
            "fig99",
            "test figure",
            vec!["rate".into(), "quality".into(), "energy".into()],
        );
        f.push_row(vec![100.0, 0.98, 123456.0]);
        f.push_row(vec![200.0, 0.91, 234567.0]);
        f.note("headline: everything fine");
        f
    }

    #[test]
    fn table_renders_header_rows_and_notes() {
        let t = sample().to_table();
        assert!(t.contains("fig99"));
        assert!(t.contains("rate"));
        assert!(t.contains("0.9800"));
        assert!(t.contains("note: headline"));
    }

    #[test]
    fn csv_roundtrip_values() {
        let c = sample().to_csv();
        assert!(c.contains("rate,quality,energy"));
        assert!(c.contains("100,0.98,123456"));
        assert!(c.starts_with("# fig99"));
    }

    #[test]
    fn column_extraction() {
        let f = sample();
        assert_eq!(f.column_values("quality").unwrap(), vec![0.98, 0.91]);
        assert!(f.column_values("nope").is_none());
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn arity_mismatch_panics() {
        sample().push_row(vec![1.0]);
    }

    #[test]
    fn csv_write_to_disk() {
        let dir = std::env::temp_dir().join("qes_report_test");
        let p = sample().write_csv(&dir).unwrap();
        let s = std::fs::read_to_string(p).unwrap();
        assert!(s.contains("fig99"));
    }
}
