//! CLI driver regenerating the paper's figures.
//!
//! ```text
//! figures <fig01|fig02|...|fig11|all> [--full] [--seed N] [--out DIR]
//! ```
//!
//! Prints each figure as an ASCII table and writes a CSV per panel. By
//! default runs the quick profile (30 s horizon); `--full` switches to
//! the paper's 1800 s horizon and fine rate grid (use `--release`!).

use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Instant;

use qes_experiments::figures::{
    ablation, cluster, cluster_faults, cluster_overload, competitive, demand_dist, diurnal, fig01,
    fig02, fig03, fig04, fig05, fig06, fig07, fig08, fig09, fig10, fig11, tail, triggers,
    FigOptions,
};
use qes_experiments::report::FigureReport;

fn usage() -> ExitCode {
    eprintln!(
        "usage: figures <fig01..fig11|ablation|cluster|cluster_faults|cluster_overload|diurnal|tail|competitive|triggers|demand_dist|all> [--full] [--seed N] [--out DIR]\n\
         \n\
         --full    paper-scale runs (1800 s horizon; pair with --release)\n\
         --seed N  workload seed (default 42)\n\
         --out DIR CSV output directory (default target/experiments)"
    );
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut which: Option<String> = None;
    let mut opt = FigOptions::default();
    let mut out = PathBuf::from("target/experiments");
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--full" => opt.full = true,
            "--seed" => {
                i += 1;
                let Some(v) = args.get(i).and_then(|s| s.parse().ok()) else {
                    return usage();
                };
                opt.seed = v;
            }
            "--out" => {
                i += 1;
                let Some(v) = args.get(i) else { return usage() };
                out = PathBuf::from(v);
            }
            s if which.is_none() && !s.starts_with('-') => which = Some(s.to_string()),
            _ => return usage(),
        }
        i += 1;
    }
    let Some(which) = which else { return usage() };

    let all = [
        "fig01",
        "fig02",
        "fig03",
        "fig04",
        "fig05",
        "fig06",
        "fig07",
        "fig08",
        "fig09",
        "fig10",
        "fig11",
        "ablation",
        "cluster",
        "cluster_faults",
        "cluster_overload",
        "diurnal",
        "tail",
        "competitive",
        "triggers",
        "demand_dist",
    ];
    let selected: Vec<&str> = if which == "all" {
        all.to_vec()
    } else if all.contains(&which.as_str()) {
        vec![which.as_str()]
    } else {
        return usage();
    };

    for id in selected {
        let t0 = Instant::now();
        let reports: Vec<FigureReport> = match id {
            "fig01" => vec![fig01::run()],
            "fig02" => vec![fig02::run()],
            "fig03" => fig03::run(&opt),
            "fig04" => fig04::run(&opt),
            "fig05" => fig05::run(&opt),
            "fig06" => fig06::run(&opt),
            "fig07" => fig07::run(&opt),
            "fig08" => fig08::run(&opt),
            "fig09" => fig09::run(&opt),
            "fig10" => fig10::run(&opt),
            "fig11" => fig11::run(&opt),
            "ablation" => ablation::run(&opt),
            "cluster" => cluster::run(&opt),
            "cluster_faults" => cluster_faults::run(&opt),
            "cluster_overload" => cluster_overload::run(&opt),
            "diurnal" => diurnal::run(&opt),
            "tail" => tail::run(&opt),
            "competitive" => competitive::run(&opt),
            "triggers" => triggers::run(&opt),
            "demand_dist" => demand_dist::run(&opt),
            _ => unreachable!(),
        };
        for r in &reports {
            print!("{}", r.to_table());
            match r.write_csv(&out) {
                Ok(p) => println!("  csv: {}", p.display()),
                Err(e) => eprintln!("  csv write failed: {e}"),
            }
            println!();
        }
        eprintln!("[{id} done in {:.1?}]", t0.elapsed());
    }
    ExitCode::SUCCESS
}
