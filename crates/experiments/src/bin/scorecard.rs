//! Reproduction scorecard: run every figure and check the paper's claims
//! programmatically.
//!
//! ```text
//! cargo run --release -p qes-experiments --bin scorecard [--full] [--seed N]
//! ```
//!
//! Each claim the paper makes about a figure becomes one PASS/FAIL row.
//! Quick mode (default) uses 30 s horizons — statistical wiggle applies;
//! `--full` reruns at the paper's scale.

use std::process::ExitCode;

use qes_experiments::figures::{
    fig03, fig04, fig05, fig06, fig07, fig08, fig09, fig10, fig11, FigOptions,
};
use qes_experiments::report::FigureReport;

struct Scorecard {
    rows: Vec<(bool, String)>,
}

impl Scorecard {
    fn new() -> Self {
        Scorecard { rows: Vec::new() }
    }

    fn check(&mut self, ok: bool, label: impl Into<String>) {
        self.rows.push((ok, label.into()));
    }

    fn print_and_exit(self) -> ExitCode {
        let mut failed = 0;
        println!("\n=== reproduction scorecard ===");
        for (ok, label) in &self.rows {
            println!("  [{}] {label}", if *ok { "PASS" } else { "FAIL" });
            if !ok {
                failed += 1;
            }
        }
        println!(
            "\n{} of {} claims hold",
            self.rows.len() - failed,
            self.rows.len()
        );
        if failed == 0 {
            ExitCode::SUCCESS
        } else {
            ExitCode::FAILURE
        }
    }
}

fn col(f: &FigureReport, name: &str) -> Vec<f64> {
    f.column_values(name)
        .unwrap_or_else(|| panic!("missing column {name} in {}", f.id))
}

fn monotone_non_increasing(v: &[f64], slack: f64) -> bool {
    v.windows(2).all(|w| w[1] <= w[0] + slack)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut opt = FigOptions::default();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--full" => opt.full = true,
            "--seed" => {
                i += 1;
                opt.seed = args[i].parse().expect("--seed N");
            }
            other => {
                eprintln!("unknown argument {other}");
                return ExitCode::from(2);
            }
        }
        i += 1;
    }
    let mut sc = Scorecard::new();

    // --- Fig. 3 -----------------------------------------------------
    eprintln!("[fig03] architectures…");
    let r = fig03::run(&opt);
    let (qc, qs, qn) = (
        col(&r[0], "quality_C-DVFS"),
        col(&r[0], "quality_S-DVFS"),
        col(&r[0], "quality_No-DVFS"),
    );
    sc.check(
        qc[0] > qs[0] + 0.01 && qc[0] > qn[0] + 0.01,
        "fig03: C-DVFS quality clearly best at light load (paper: ~2 pp)",
    );
    let n = qc.len() - 1;
    sc.check(
        (qc[n] - qs[n]).abs() < 0.02 && (qs[n] - qn[n]).abs() < 0.02,
        "fig03: architectures converge in quality under heavy load",
    );
    let (ec, es, en) = (
        col(&r[1], "energy_C-DVFS"),
        col(&r[1], "energy_S-DVFS"),
        col(&r[1], "energy_No-DVFS"),
    );
    sc.check(
        en[0] > es[0] && es[0] > ec[0],
        "fig03: light-load energy ordering No > S > C",
    );
    sc.check(
        (en[n] - ec[n]).abs() / en[n] < 0.02,
        "fig03: energies converge to the budget under heavy load",
    );

    // --- Fig. 4 -----------------------------------------------------
    eprintln!("[fig04] partial evaluation…");
    let r = fig04::run(&opt);
    let (q0, q50, q100) = (
        col(&r[0], "quality_0%"),
        col(&r[0], "quality_50%"),
        col(&r[0], "quality_100%"),
    );
    let n = q0.len() - 1;
    sc.check(
        q100[n] > q50[n] && q50[n] > q0[n],
        "fig04: more partial support ⇒ more quality under load",
    );
    let (e0, e100) = (col(&r[1], "energy_0%"), col(&r[1], "energy_100%"));
    sc.check(
        e100[n] > e0[n],
        "fig04: more partial support ⇒ more energy (more work done)",
    );

    // --- Fig. 5 -----------------------------------------------------
    eprintln!("[fig05] baselines…");
    let r = fig05::run(&opt);
    let (qd, qf, ql, qsj) = (
        col(&r[0], "quality_DES"),
        col(&r[0], "quality_FCFS"),
        col(&r[0], "quality_LJF"),
        col(&r[0], "quality_SJF"),
    );
    sc.check(
        (0..qd.len()).all(|i| qd[i] + 0.01 >= qf[i].max(ql[i]).max(qsj[i])),
        "fig05: DES has the best quality at every load",
    );
    let n = qd.len() - 1;
    sc.check(
        qf[n] > ql[n] && ql[n] > qsj[n],
        "fig05: FCFS > LJF > SJF under heavy load (deadline-order argument)",
    );
    let esj = col(&r[1], "energy_SJF");
    let peak = esj.iter().cloned().fold(0.0, f64::max);
    sc.check(
        *esj.last().unwrap() < peak,
        "fig05: SJF energy falls under overload (long jobs starved)",
    );

    // --- Fig. 6 -----------------------------------------------------
    eprintln!("[fig06] WF-enhanced baselines…");
    let r = fig06::run(&opt);
    let (qd, qfw) = (col(&r[0], "quality_DES"), col(&r[0], "quality_FCFS+WF"));
    sc.check(
        qfw[0] > 0.97,
        "fig06: WF lifts FCFS to near-full quality at light load",
    );
    let n = qd.len() - 1;
    sc.check(
        qd[n] + 0.01 >= qfw[n],
        "fig06: DES keeps its advantage over FCFS+WF under heavy load",
    );

    // --- Fig. 7 -----------------------------------------------------
    eprintln!("[fig07] quality functions…");
    let r = fig07::run(&opt);
    let hi = col(&r[1], "quality_c=0.009");
    let lo = col(&r[1], "quality_c=0.0005");
    let n = hi.len() - 1;
    sc.check(
        hi[n] > lo[n],
        "fig07: more concave quality function earns more under load",
    );

    // --- Fig. 8 -----------------------------------------------------
    eprintln!("[fig08] power budgets…");
    let r = fig08::run(&opt);
    let (h80, h320, h640) = (
        col(&r[0], "quality_H=80"),
        col(&r[0], "quality_H=320"),
        col(&r[0], "quality_H=640"),
    );
    let n = h80.len() - 1;
    sc.check(
        h640[n] + 1e-9 >= h320[n] && h320[n] > h80[n],
        "fig08: more budget sustains more quality under heavy load",
    );
    sc.check(
        h320[0] > 0.97 && h640[0] > 0.97,
        "fig08: extra budget unnecessary at light load",
    );

    // --- Fig. 9 -----------------------------------------------------
    eprintln!("[fig09] core counts…");
    let r = fig09::run(&opt);
    let q = col(&r[0], "quality");
    let e = col(&r[0], "energy");
    sc.check(
        q[0] < q[2] && q[2] < q[4],
        "fig09: quality improves with core count (1 → 4 → 16)",
    );
    sc.check(
        (q[6] - q[4]).abs() < 0.02,
        "fig09: saturation by 16 cores (64 adds nothing)",
    );
    sc.check(
        e[0] > e[4],
        "fig09: few fat cores waste energy (convex power)",
    );

    // --- Fig. 10 ----------------------------------------------------
    eprintln!("[fig10] discrete speeds…");
    let r = fig10::run(&opt);
    let (qc, qd) = (
        col(&r[0], "quality_continuous"),
        col(&r[0], "quality_discrete"),
    );
    sc.check(
        (0..qc.len()).all(|i| qc[i] + 0.01 >= qd[i] && qc[i] - qd[i] < 0.05),
        "fig10: discrete tracks continuous within a few pp",
    );
    let gaps: Vec<f64> = (0..qc.len()).map(|i| qc[i] - qd[i]).collect();
    sc.check(
        gaps[gaps.len() - 1] <= gaps[0] + 0.01,
        "fig10: the discrete gap shrinks under heavy load",
    );

    // --- Fig. 11 ----------------------------------------------------
    eprintln!("[fig11] real-system validation…");
    let r = fig11::run(&opt);
    let sim = col(&r[0], "sim_energy");
    let real = col(&r[0], "real_energy");
    sc.check(
        (0..sim.len()).all(|i| (real[i] / sim[i] - 1.0).abs() < 0.05),
        "fig11: measured energy within 5% of simulation",
    );
    sc.check(
        (0..sim.len()).all(|i| real[i] >= sim[i]),
        "fig11: measured side marginally higher (scheduling overhead)",
    );
    sc.check(
        monotone_non_increasing(&sim.iter().rev().cloned().collect::<Vec<_>>(), 1e-9),
        "fig11: energy grows with arrival rate",
    );

    sc.print_and_exit()
}
