//! Experiment configuration and the policy factory.

use qes_core::power::{DiscreteSpeedSet, PolynomialPower};
use qes_core::quality::ExpQuality;
use qes_core::time::{SimDuration, SimTime};
use qes_multicore::discrete::default_ladder;
use qes_multicore::{ArchKind, BaselineOrder, BaselinePolicy, DesPolicy, SchedulingPolicy};
use qes_sim::engine::{SimConfig, Simulator};
use qes_sim::report::SimReport;
use qes_sim::trace::SimTrace;
use qes_workload::WebSearchWorkload;

/// Every scheduler variant evaluated in the paper.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum PolicyKind {
    /// DES on core-level DVFS (the paper's algorithm).
    Des,
    /// DES degraded to system-level DVFS (§V-A).
    DesSDvfs,
    /// DES degraded to no DVFS (§V-A).
    DesNoDvfs,
    /// DES with discrete speed scaling (§V-F).
    DesDiscrete,
    /// FCFS with static equal power sharing.
    Fcfs,
    /// LJF with static equal power sharing.
    Ljf,
    /// SJF with static equal power sharing.
    Sjf,
    /// FCFS enhanced with WF power distribution (§V-E).
    FcfsWf,
    /// LJF enhanced with WF power distribution.
    LjfWf,
    /// SJF enhanced with WF power distribution.
    SjfWf,
}

impl PolicyKind {
    /// Display name matching the paper's legends.
    pub fn name(self) -> &'static str {
        match self {
            PolicyKind::Des => "DES",
            PolicyKind::DesSDvfs => "DES/S-DVFS",
            PolicyKind::DesNoDvfs => "DES/No-DVFS",
            PolicyKind::DesDiscrete => "DES/discrete",
            PolicyKind::Fcfs => "FCFS",
            PolicyKind::Ljf => "LJF",
            PolicyKind::Sjf => "SJF",
            PolicyKind::FcfsWf => "FCFS+WF",
            PolicyKind::LjfWf => "LJF+WF",
            PolicyKind::SjfWf => "SJF+WF",
        }
    }

    /// Instantiate the policy, given the (continuous) power model for
    /// ladder derivation.
    pub fn build(self, model: &PolynomialPower) -> Box<dyn SchedulingPolicy> {
        match self {
            PolicyKind::Des => Box::new(DesPolicy::new()),
            PolicyKind::DesSDvfs => Box::new(DesPolicy::on_arch(ArchKind::SDvfs)),
            PolicyKind::DesNoDvfs => Box::new(DesPolicy::on_arch(ArchKind::NoDvfs)),
            PolicyKind::DesDiscrete => Box::new(DesPolicy::with_discrete(default_ladder(model))),
            PolicyKind::Fcfs => Box::new(BaselinePolicy::new(BaselineOrder::Fcfs)),
            PolicyKind::Ljf => Box::new(BaselinePolicy::new(BaselineOrder::Ljf)),
            PolicyKind::Sjf => Box::new(BaselinePolicy::new(BaselineOrder::Sjf)),
            PolicyKind::FcfsWf => Box::new(BaselinePolicy::with_wf(BaselineOrder::Fcfs)),
            PolicyKind::LjfWf => Box::new(BaselinePolicy::with_wf(BaselineOrder::Ljf)),
            PolicyKind::SjfWf => Box::new(BaselinePolicy::with_wf(BaselineOrder::Sjf)),
        }
    }
}

/// Full description of one simulation experiment.
#[derive(Clone, Debug)]
pub struct ExperimentConfig {
    /// Number of cores `m` (paper: 16).
    pub num_cores: usize,
    /// Dynamic power budget `H` in watts (paper: 320).
    pub budget: f64,
    /// The continuous power model (paper: `P = 5·s²`).
    pub power: PolynomialPower,
    /// Quality-function concavity `c` (paper: 0.003).
    pub quality_c: f64,
    /// Poisson arrival rate in requests/second.
    pub arrival_rate: f64,
    /// Fraction of jobs supporting partial evaluation (§V-D).
    pub partial_fraction: f64,
    /// Simulated horizon in seconds (paper: 1800).
    pub sim_seconds: f64,
    /// Override the discrete ladder for [`PolicyKind::DesDiscrete`];
    /// `None` uses [`default_ladder`].
    pub ladder: Option<DiscreteSpeedSet>,
}

impl ExperimentConfig {
    /// The paper's §V-B defaults at a 120 req/s light load.
    pub fn paper_default() -> Self {
        ExperimentConfig {
            num_cores: 16,
            budget: 320.0,
            power: PolynomialPower::PAPER_SIM,
            quality_c: 0.003,
            arrival_rate: 120.0,
            partial_fraction: 1.0,
            sim_seconds: 1800.0,
            ladder: None,
        }
    }

    /// A scaled-down variant for CI and quick runs (same parameters, a
    /// 20 s horizon).
    pub fn quick() -> Self {
        Self::paper_default().with_sim_seconds(20.0)
    }

    /// Builder: arrival rate.
    pub fn with_arrival_rate(mut self, r: f64) -> Self {
        self.arrival_rate = r;
        self
    }

    /// Builder: horizon seconds.
    pub fn with_sim_seconds(mut self, s: f64) -> Self {
        self.sim_seconds = s;
        self
    }

    /// Builder: power budget.
    pub fn with_budget(mut self, h: f64) -> Self {
        self.budget = h;
        self
    }

    /// Builder: core count.
    pub fn with_cores(mut self, m: usize) -> Self {
        self.num_cores = m;
        self
    }

    /// Builder: quality concavity.
    pub fn with_quality_c(mut self, c: f64) -> Self {
        self.quality_c = c;
        self
    }

    /// Builder: partial-evaluation fraction.
    pub fn with_partial_fraction(mut self, f: f64) -> Self {
        self.partial_fraction = f;
        self
    }

    /// The workload this configuration generates.
    pub fn workload(&self) -> WebSearchWorkload {
        WebSearchWorkload::new(self.arrival_rate)
            .with_horizon(SimTime::from_secs_f64(self.sim_seconds))
            .with_partial_fraction(self.partial_fraction)
    }
}

/// Run one policy over this configuration's workload, deterministically
/// from `seed`.
pub fn run_policy(cfg: &ExperimentConfig, kind: PolicyKind, seed: u64) -> SimReport {
    run_inner(cfg, kind, seed, false).0
}

/// [`run_policy`], also returning the executed trace (for §V-G replay).
pub fn run_policy_traced(
    cfg: &ExperimentConfig,
    kind: PolicyKind,
    seed: u64,
) -> (SimReport, SimTrace) {
    run_inner(cfg, kind, seed, true)
}

/// Run a policy over an explicit, pre-generated job set (for workloads
/// the [`ExperimentConfig`] generator cannot express, e.g. time-varying
/// arrival rates).
pub fn run_jobset(
    cfg: &ExperimentConfig,
    kind: PolicyKind,
    jobs: &qes_core::job::JobSet,
) -> SimReport {
    let quality = ExpQuality::new(cfg.quality_c);
    let sim_cfg = SimConfig {
        num_cores: cfg.num_cores,
        budget: cfg.budget,
        model: &cfg.power,
        quality: &quality,
        end: SimTime::from_secs_f64(cfg.sim_seconds),
        record_trace: false,
        overhead: SimDuration::ZERO,
    };
    let mut policy: Box<dyn SchedulingPolicy> = match (kind, &cfg.ladder) {
        (PolicyKind::DesDiscrete, Some(l)) => Box::new(DesPolicy::with_discrete(l.clone())),
        _ => kind.build(&cfg.power),
    };
    let (mut report, _) = Simulator::run(&sim_cfg, policy.as_mut(), jobs);
    report.policy = kind.name().to_string();
    report
}

fn run_inner(
    cfg: &ExperimentConfig,
    kind: PolicyKind,
    seed: u64,
    record_trace: bool,
) -> (SimReport, SimTrace) {
    let jobs = cfg
        .workload()
        .generate(seed)
        .expect("web-search workload always validates");
    let quality = ExpQuality::new(cfg.quality_c);
    let sim_cfg = SimConfig {
        num_cores: cfg.num_cores,
        budget: cfg.budget,
        model: &cfg.power,
        quality: &quality,
        end: SimTime::from_secs_f64(cfg.sim_seconds),
        record_trace,
        overhead: SimDuration::ZERO,
    };
    let mut policy: Box<dyn SchedulingPolicy> = match (kind, &cfg.ladder) {
        (PolicyKind::DesDiscrete, Some(l)) => Box::new(DesPolicy::with_discrete(l.clone())),
        _ => kind.build(&cfg.power),
    };
    // `QES_TRACE=path` turns event tracing on for any figure or sweep run
    // without code changes. Observers are passive — the traced run is
    // bitwise-identical to the untraced one (tests/observability.rs pins
    // this) — so results are unaffected either way.
    let (mut report, trace) = match std::env::var("QES_TRACE") {
        Ok(path) if !path.is_empty() => {
            let mut obs = qes_core::TraceObserver::new();
            let out = Simulator::run_observed(&sim_cfg, policy.as_mut(), &jobs, &mut obs);
            let label = format!("{} seed={seed} rate={}", kind.name(), cfg.arrival_rate);
            if let Err(e) = obs.append_csv(&path, &label) {
                eprintln!("QES_TRACE: could not append to {path}: {e}");
            }
            out
        }
        _ => Simulator::run(&sim_cfg, policy.as_mut(), &jobs),
    };
    report.policy = kind.name().to_string();
    (report, trace)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_defaults_match_section_5b() {
        let c = ExperimentConfig::paper_default();
        assert_eq!(c.num_cores, 16);
        assert_eq!(c.budget, 320.0);
        assert_eq!(c.power.a, 5.0);
        assert_eq!(c.power.beta, 2.0);
        assert_eq!(c.quality_c, 0.003);
        assert_eq!(c.sim_seconds, 1800.0);
    }

    #[test]
    fn builders_override() {
        let c = ExperimentConfig::paper_default()
            .with_arrival_rate(200.0)
            .with_budget(80.0)
            .with_cores(4)
            .with_quality_c(0.009)
            .with_partial_fraction(0.5)
            .with_sim_seconds(10.0);
        assert_eq!(c.arrival_rate, 200.0);
        assert_eq!(c.budget, 80.0);
        assert_eq!(c.num_cores, 4);
        assert_eq!(c.quality_c, 0.009);
        assert_eq!(c.partial_fraction, 0.5);
        assert_eq!(c.sim_seconds, 10.0);
    }

    #[test]
    fn policy_names_cover_paper_legends() {
        let names: Vec<&str> = [
            PolicyKind::Des,
            PolicyKind::Fcfs,
            PolicyKind::Ljf,
            PolicyKind::Sjf,
            PolicyKind::FcfsWf,
            PolicyKind::LjfWf,
            PolicyKind::SjfWf,
            PolicyKind::DesSDvfs,
            PolicyKind::DesNoDvfs,
            PolicyKind::DesDiscrete,
        ]
        .iter()
        .map(|k| k.name())
        .collect();
        assert!(names.contains(&"DES"));
        assert!(names.contains(&"SJF+WF"));
        assert!(names.contains(&"DES/discrete"));
    }

    #[test]
    fn run_policy_is_deterministic() {
        let cfg = ExperimentConfig::quick()
            .with_sim_seconds(3.0)
            .with_arrival_rate(60.0);
        let a = run_policy(&cfg, PolicyKind::Des, 7);
        let b = run_policy(&cfg, PolicyKind::Des, 7);
        assert_eq!(a.total_quality, b.total_quality);
        assert_eq!(a.energy_joules, b.energy_joules);
        assert_eq!(a.jobs_total(), b.jobs_total());
    }

    #[test]
    fn light_load_near_full_quality() {
        let cfg = ExperimentConfig::quick()
            .with_sim_seconds(5.0)
            .with_arrival_rate(60.0);
        let r = run_policy(&cfg, PolicyKind::Des, 1);
        assert!(
            r.normalized_quality() > 0.98,
            "quality {}",
            r.normalized_quality()
        );
    }

    #[test]
    fn trace_energy_consistent_with_report_for_des() {
        let cfg = ExperimentConfig::quick()
            .with_sim_seconds(3.0)
            .with_arrival_rate(80.0);
        let (report, trace) = run_policy_traced(&cfg, PolicyKind::Des, 3);
        // C-DVFS gates idle cores: trace energy == report energy.
        assert!((report.energy_joules - trace.dynamic_energy(&cfg.power)).abs() < 1e-6);
    }
}
