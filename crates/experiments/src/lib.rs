#![warn(missing_docs)]

//! # qes-experiments — drivers that regenerate every figure of the paper
//!
//! One module per figure of the evaluation section (§V), each producing a
//! structured [`FigureReport`] (printable as an ASCII table, writable as
//! CSV) from the same building blocks:
//!
//! * [`ExperimentConfig`] — the §V-B defaults (16 cores, `H = 320` W,
//!   `P = 5·s²`, quality `c = 0.003`, 150 ms deadlines, bounded-Pareto
//!   demands, 1800 s horizon) with builder-style overrides;
//! * [`PolicyKind`] — every scheduler variant evaluated in the paper;
//! * [`run_policy`] — one simulation run, seeded and deterministic;
//! * [`sweep`] — rayon-parallel ⟨policy, arrival-rate⟩ sweeps.
//!
//! | Module | Reproduces |
//! |--------|------------|
//! | [`figures::fig01`] | Fig. 1 — example quality function |
//! | [`figures::fig02`] | Fig. 2 — WF worked example |
//! | [`figures::fig03`] | Fig. 3 — DES on No-/S-/C-DVFS |
//! | [`figures::fig04`] | Fig. 4 — partial-evaluation proportions |
//! | [`figures::fig05`] | Fig. 5 — DES vs FCFS/LJF/SJF |
//! | [`figures::fig06`] | Fig. 6 — DES vs WF-enhanced baselines |
//! | [`figures::fig07`] | Fig. 7 — quality-function sensitivity |
//! | [`figures::fig08`] | Fig. 8 — power-budget sensitivity |
//! | [`figures::fig09`] | Fig. 9 — core-count sensitivity |
//! | [`figures::fig10`] | Fig. 10 — continuous vs discrete speed |
//! | [`figures::fig11`] | Fig. 11 — simulation vs real-system energy |
//!
//! Run them all from the CLI:
//!
//! ```text
//! cargo run --release -p qes-experiments --bin figures -- all
//! cargo run --release -p qes-experiments --bin figures -- fig05 --full
//! ```

pub mod config;
pub mod figures;
pub mod report;
pub mod sweep;

pub use config::{run_jobset, run_policy, run_policy_traced, ExperimentConfig, PolicyKind};
pub use report::{FigureReport, Row};
pub use sweep::{sweep, SweepPoint};
