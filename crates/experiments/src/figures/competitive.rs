//! Empirical competitive study: Online-QE vs offline QE-OPT (extension).
//!
//! §III-B proves Online-QE *myopically* optimal but offers no competitive
//! ratio against the clairvoyant offline optimum. This experiment
//! measures one empirically on a single core: for many random instances,
//! simulate the online algorithm (DES on one core reduces to Online-QE
//! driven by the triggers) and compare its quality with QE-OPT run on the
//! full instance. The energy ratio is reported alongside — note energy
//! comparisons are only meaningful between runs of equal quality (the
//! metric is lexicographic), so the headline column is the quality ratio.

use rayon::prelude::*;

use qes_core::quality::{ExpQuality, QualityFunction};
use qes_core::time::{SimDuration, SimTime};
use qes_multicore::DesPolicy;
use qes_sim::engine::{SimConfig, Simulator};
use qes_singlecore::qe_opt::qe_opt;

use crate::config::ExperimentConfig;
use crate::figures::FigOptions;
use crate::report::FigureReport;

/// One instance's online/offline comparison.
fn one_instance(cfg: &ExperimentConfig, seed: u64) -> (f64, f64) {
    let jobs = cfg.workload().generate(seed).expect("valid workload");
    let quality = ExpQuality::new(cfg.quality_c);

    // Online: one core, the paper's triggers.
    let sim_cfg = SimConfig {
        num_cores: 1,
        budget: cfg.budget,
        model: &cfg.power,
        quality: &quality,
        end: SimTime::from_secs_f64(cfg.sim_seconds),
        record_trace: false,
        overhead: SimDuration::ZERO,
    };
    let (online, _) = Simulator::run(&sim_cfg, &mut DesPolicy::new(), &jobs);

    // Offline: clairvoyant QE-OPT over the whole instance.
    let off = qe_opt(&jobs, &cfg.power, cfg.budget);
    let off_quality: f64 = jobs
        .iter()
        .map(|j| quality.job_quality(j, off.volume(j.id)))
        .sum();
    let off_energy = off.schedule.energy(&cfg.power);

    let q_ratio = if off_quality > 0.0 {
        online.total_quality / off_quality
    } else {
        1.0
    };
    let e_ratio = if off_energy > 0.0 {
        online.energy_joules / off_energy
    } else {
        1.0
    };
    (q_ratio, e_ratio)
}

/// Measure the empirical competitive behaviour over many instances at
/// several single-core loads.
pub fn run(opt: &FigOptions) -> Vec<FigureReport> {
    // Offline QE-OPT is O(n³)-ish in the instance size, so full mode buys
    // statistical power with more instances, not longer horizons.
    let instances: u64 = if opt.full { 30 } else { 12 };
    let horizon = if opt.full { 15.0 } else { 10.0 };
    // Single-core at 20 W (s* = 2 GHz → 2000 units/s capacity): rates in
    // req/s chosen to span under- to over-load.
    let rates = [5.0, 8.0, 10.0, 13.0, 16.0];

    let mut f = FigureReport::new(
        "competitive",
        "Online-QE vs offline QE-OPT on one core: quality/energy ratios",
        vec![
            "rate".into(),
            "q_ratio_min".into(),
            "q_ratio_mean".into(),
            "e_ratio_mean".into(),
        ],
    );
    for &rate in &rates {
        let cfg = ExperimentConfig::paper_default()
            .with_cores(1)
            .with_budget(20.0)
            .with_arrival_rate(rate)
            .with_sim_seconds(horizon);
        let ratios: Vec<(f64, f64)> = (0..instances)
            .into_par_iter()
            .map(|i| one_instance(&cfg, opt.seed.wrapping_add(i)))
            .collect();
        let q_min = ratios.iter().map(|r| r.0).fold(f64::INFINITY, f64::min);
        let q_mean = ratios.iter().map(|r| r.0).sum::<f64>() / ratios.len() as f64;
        let e_mean = ratios.iter().map(|r| r.1).sum::<f64>() / ratios.len() as f64;
        f.push_row(vec![rate, q_min, q_mean, e_mean]);
    }
    f.note(format!(
        "{instances} instances per rate; q_ratio = online/offline total quality \
         (1.0 = matches the clairvoyant optimum)"
    ));
    f.note(
        "the energy ratio can sit below or above 1: the online runs at \
         different quality, so only equal-quality rows compare energies \
         meaningfully (lexicographic metric)",
    );
    f.note(
        "the ~5–10% myopia gap on ONE core is the classic online lower-bound \
         effect (work stretched toward deadlines gets squeezed by arrivals \
         the scheduler couldn't foresee); on 16 cores statistical smoothing \
         shrinks it below 5% (see tests/online_vs_offline.rs)",
    );
    vec![f]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn online_stays_close_to_clairvoyant_on_single_core() {
        let opt = FigOptions {
            full: false,
            seed: 77,
        };
        let f = &run(&opt)[0];
        let q_min = f.column_values("q_ratio_min").unwrap();
        let q_mean = f.column_values("q_ratio_mean").unwrap();
        for i in 0..q_min.len() {
            // The myopia gap is real — an online algorithm stretches work
            // it doesn't know will be squeezed by future arrivals — but it
            // stays bounded: worst instance ≥ 70 %, mean ≥ 85 %.
            assert!(q_min[i] > 0.70, "rate idx {i}: min ratio {}", q_min[i]);
            assert!(q_mean[i] > 0.85, "rate idx {i}: mean ratio {}", q_mean[i]);
            // And never (meaningfully) above 1: offline is optimal.
            assert!(q_mean[i] < 1.0 + 1e-6);
        }
    }
}
