//! Fig. 5 — DES vs FCFS / LJF / SJF with static power sharing (§V-E).
//!
//! Expected shape (paper): DES has the best quality at every load (≈ 2 pp
//! better even at light load); FCFS beats LJF and SJF; SJF is worst and
//! its energy *falls* under overload (it keeps running short jobs slowly
//! and drops the long ones). Throughput at quality 0.9: DES ≈ 196 req/s
//! vs FCFS 164, LJF 132, SJF 116 — +20 % / +48 % / +69 %.

use crate::config::{ExperimentConfig, PolicyKind};
use crate::figures::common::{measure, panels, Series};
use crate::figures::FigOptions;
use crate::report::FigureReport;

/// Regenerate Fig. 5.
pub fn run(opt: &FigOptions) -> Vec<FigureReport> {
    let base = ExperimentConfig::paper_default().with_sim_seconds(opt.sim_seconds());
    let series = vec![
        Series::new("DES", base.clone(), PolicyKind::Des),
        Series::new("FCFS", base.clone(), PolicyKind::Fcfs),
        Series::new("LJF", base.clone(), PolicyKind::Ljf),
        Series::new("SJF", base, PolicyKind::Sjf),
    ];
    let data = measure(&series, &opt.rates(), opt.seed);
    let (mut fq, fe) = panels("fig05", "DES vs FCFS/LJF/SJF (static power sharing)", &data);
    let t: Vec<f64> = (0..4).map(|s| data.throughput_at(s, 0.9)).collect();
    fq.note(format!(
        "throughput at quality 0.9: DES {:.0}, FCFS {:.0}, LJF {:.0}, SJF {:.0} req/s \
         (paper: 196 / 164 / 132 / 116)",
        t[0], t[1], t[2], t[3]
    ));
    if t[1] > 0.0 {
        fq.note(format!(
            "DES throughput advantage: +{:.0}% vs FCFS, +{:.0}% vs LJF, +{:.0}% vs SJF \
             (paper: +20% / +48% / +69%)",
            100.0 * (t[0] / t[1] - 1.0),
            100.0 * (t[0] / t[2] - 1.0),
            100.0 * (t[0] / t[3] - 1.0)
        ));
    }
    vec![fq, fe]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn des_dominates_and_ordering_matches_paper() {
        let opt = FigOptions {
            full: false,
            seed: 11,
        };
        let reports = run(&opt);
        let fq = &reports[0];
        let qd = fq.column_values("quality_DES").unwrap();
        let qf = fq.column_values("quality_FCFS").unwrap();
        let ql = fq.column_values("quality_LJF").unwrap();
        let qs = fq.column_values("quality_SJF").unwrap();
        for i in 0..qd.len() {
            assert!(qd[i] + 0.01 >= qf[i], "DES vs FCFS at idx {i}");
            assert!(qd[i] + 0.01 >= ql[i], "DES vs LJF at idx {i}");
            assert!(qd[i] + 0.01 >= qs[i], "DES vs SJF at idx {i}");
        }
        // Under the heaviest load FCFS clearly beats SJF (paper ordering).
        let n = qd.len();
        assert!(
            qf[n - 1] > qs[n - 1],
            "FCFS {} !> SJF {}",
            qf[n - 1],
            qs[n - 1]
        );
    }
}
