//! Fig. 6 — DES vs the WF-enhanced baselines (§V-E).
//!
//! Expected shape (paper): with WF power distribution all baselines reach
//! nearly full quality at light load (a big step up from Fig. 5), but DES
//! keeps its advantage as load grows — it schedules the whole ready queue
//! jointly where the baselines pick one job at a time.

use crate::config::{ExperimentConfig, PolicyKind};
use crate::figures::common::{measure, panels, Series};
use crate::figures::FigOptions;
use crate::report::FigureReport;

/// Regenerate Fig. 6.
pub fn run(opt: &FigOptions) -> Vec<FigureReport> {
    let base = ExperimentConfig::paper_default().with_sim_seconds(opt.sim_seconds());
    let series = vec![
        Series::new("DES", base.clone(), PolicyKind::Des),
        Series::new("FCFS+WF", base.clone(), PolicyKind::FcfsWf),
        Series::new("LJF+WF", base.clone(), PolicyKind::LjfWf),
        Series::new("SJF+WF", base, PolicyKind::SjfWf),
    ];
    let data = measure(&series, &opt.rates(), opt.seed);
    let (mut fq, fe) = panels("fig06", "DES vs WF-enhanced baselines", &data);
    let light_gap: Vec<f64> = (1..4)
        .map(|s| data.quality[0][0] - data.quality[s][0])
        .collect();
    fq.note(format!(
        "light-load quality gap DES−baseline: {:.3} / {:.3} / {:.3} \
         (paper: near zero — WF lifts every baseline to almost full quality)",
        light_gap[0], light_gap[1], light_gap[2]
    ));
    let n = data.rates.len() - 1;
    fq.note(format!(
        "heavy-load quality: DES {:.3} vs FCFS+WF {:.3}, LJF+WF {:.3}, SJF+WF {:.3} \
         (paper: DES maintains its advantage)",
        data.quality[0][n], data.quality[1][n], data.quality[2][n], data.quality[3][n]
    ));
    vec![fq, fe]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wf_lifts_baselines_at_light_load_but_des_wins_heavy() {
        let opt = FigOptions {
            full: false,
            seed: 13,
        };
        let reports = run(&opt);
        let fq = &reports[0];
        let qd = fq.column_values("quality_DES").unwrap();
        let qf = fq.column_values("quality_FCFS+WF").unwrap();
        // Light load: FCFS+WF near full quality.
        assert!(qf[0] > 0.95, "FCFS+WF light-load quality {}", qf[0]);
        // Heavy load: DES at least matches FCFS+WF.
        let n = qd.len() - 1;
        assert!(qd[n] + 0.01 >= qf[n], "{} vs {}", qd[n], qf[n]);
    }
}
