//! Ablation study: which of DES's ingredients buys what.
//!
//! Not a figure in the paper, but the natural companion to its design
//! arguments: §IV-B argues for *cumulative* round-robin over restarting,
//! §IV-C for water-filling over static power shares, and our DESIGN.md §3
//! documents the eager-vs-efficient realization choice of the
//! budget-bounded step. Each variant removes exactly one ingredient from
//! full DES.

use rayon::prelude::*;

use qes_core::quality::ExpQuality;
use qes_core::time::{SimDuration, SimTime};
use qes_multicore::des::{DesPolicy, JobSharing, PowerSharing};
use qes_sim::engine::{SimConfig, Simulator};
use qes_singlecore::OnlineMode;

use crate::config::ExperimentConfig;
use crate::figures::FigOptions;
use crate::report::FigureReport;

/// The ablation variants, in presentation order.
fn variants() -> Vec<(&'static str, DesPolicy)> {
    vec![
        ("full", DesPolicy::new()),
        (
            "restart-rr",
            DesPolicy::new().with_job_sharing(JobSharing::RestartRr),
        ),
        (
            "static-power",
            DesPolicy::new().with_power_sharing(PowerSharing::StaticEqual),
        ),
        (
            "efficient",
            DesPolicy::new().with_mode(OnlineMode::Efficient),
        ),
    ]
}

/// Run the ablation sweep.
pub fn run(opt: &FigOptions) -> Vec<FigureReport> {
    let base = ExperimentConfig::paper_default().with_sim_seconds(opt.sim_seconds());
    let rates = opt.rates();
    let labels: Vec<&'static str> = variants().iter().map(|(l, _)| *l).collect();

    let combos: Vec<(usize, f64)> = (0..labels.len())
        .flat_map(|v| rates.iter().map(move |&r| (v, r)))
        .collect();
    let results: Vec<(usize, f64, f64, f64)> = combos
        .into_par_iter()
        .map(|(v, rate)| {
            let cfg = base.clone().with_arrival_rate(rate);
            let jobs = cfg.workload().generate(opt.seed).expect("valid workload");
            let quality = ExpQuality::new(cfg.quality_c);
            let sim_cfg = SimConfig {
                num_cores: cfg.num_cores,
                budget: cfg.budget,
                model: &cfg.power,
                quality: &quality,
                end: SimTime::from_secs_f64(cfg.sim_seconds),
                record_trace: false,
                overhead: SimDuration::ZERO,
            };
            let mut policy = variants().swap_remove(v).1;
            let (rep, _) = Simulator::run(&sim_cfg, &mut policy, &jobs);
            (v, rate, rep.normalized_quality(), rep.energy_joules)
        })
        .collect();

    let mut cols_q = vec!["rate".to_string()];
    let mut cols_e = vec!["rate".to_string()];
    for l in &labels {
        cols_q.push(format!("quality_{l}"));
        cols_e.push(format!("energy_{l}"));
    }
    let mut fq = FigureReport::new("ablationa", "DES ablation — quality", cols_q);
    let mut fe = FigureReport::new("ablationb", "DES ablation — energy", cols_e);
    for &rate in &rates {
        let mut rq = vec![rate];
        let mut re = vec![rate];
        for v in 0..labels.len() {
            let &(_, _, q, e) = results
                .iter()
                .find(|&&(vv, rr, _, _)| vv == v && rr == rate)
                .expect("measured");
            rq.push(q);
            re.push(e);
        }
        fq.push_row(rq);
        fe.push_row(re);
    }
    fq.note(
        "each variant removes one ingredient from full DES: restart-rr \
         (§IV-B strawman), static-power (no WF), efficient (Energy-OPT \
         stretching under a binding budget)",
    );
    vec![fq, fe]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_des_is_never_clearly_beaten() {
        let opt = FigOptions {
            full: false,
            seed: 41,
        };
        let reports = run(&opt);
        let fq = &reports[0];
        let full = fq.column_values("quality_full").unwrap();
        for variant in [
            "quality_restart-rr",
            "quality_static-power",
            "quality_efficient",
        ] {
            let v = fq.column_values(variant).unwrap();
            for i in 0..full.len() {
                assert!(
                    full[i] + 0.02 >= v[i],
                    "{variant} beats full DES at idx {i}: {} vs {}",
                    v[i],
                    full[i]
                );
            }
        }
    }

    #[test]
    fn efficient_mode_loses_quality_under_overload() {
        // The DESIGN.md §3 rationale, demonstrated.
        let opt = FigOptions {
            full: false,
            seed: 41,
        };
        let reports = run(&opt);
        let fq = &reports[0];
        let full = fq.column_values("quality_full").unwrap();
        let eff = fq.column_values("quality_efficient").unwrap();
        let n = full.len() - 1;
        assert!(
            full[n] > eff[n] - 1e-9,
            "eager {} should be >= efficient {} at the heaviest load",
            full[n],
            eff[n]
        );
    }
}
