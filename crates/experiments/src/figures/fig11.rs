//! Fig. 11 — simulation vs (simulated) real-system energy (§V-G).
//!
//! The paper replays DES discrete-speed schedules on an Opteron cluster
//! and compares PowerPack-measured energy against the simulator's
//! prediction under the regression-fitted power model
//! `P = 2.6075·s^1.791 + 9.2562` with a 152 W budget. Our real system is
//! the `qes-cluster` substrate (see DESIGN.md, *Substitutions*): the same
//! trace is integrated exactly (simulation) and sampled through a noisy
//! metered replay with scheduling overhead (real). Expected shape: the
//! two curves nearly coincide, the measured one marginally higher.

use qes_cluster::meter::PowerMeter;
use qes_cluster::regression::{fit_power_model, opteron_pairs};
use qes_cluster::replay::{exact_energy, measured_energy};
use qes_cluster::spec::ClusterSpec;
use qes_core::power::{DiscreteSpeedSet, PolynomialPower};
use qes_core::time::SimTime;
use rayon::prelude::*;

use crate::config::{run_policy_traced, ExperimentConfig, PolicyKind};
use crate::figures::FigOptions;
use crate::report::FigureReport;

/// The §V-G dynamic power budget (W).
pub const BUDGET: f64 = 152.0;

/// Regenerate Fig. 11.
pub fn run(opt: &FigOptions) -> Vec<FigureReport> {
    // The paper's regression methodology: fit the model from the measured
    // speed/power table, then drive the simulation with the fit.
    let fit = fit_power_model(&opteron_pairs()).expect("Opteron table fits");
    let model = PolynomialPower {
        b: 0.0,
        ..fit.model
    }; // scheduler sees dynamic power
    let cluster = ClusterSpec::paper_validation();
    let horizon = SimTime::from_secs_f64(opt.validation_seconds());
    let meter = PowerMeter::default();

    let rows: Vec<(f64, f64, f64)> = opt
        .validation_rates()
        .into_par_iter()
        .map(|rate| {
            let cfg = ExperimentConfig {
                num_cores: cluster.total_cores(),
                budget: BUDGET,
                power: model,
                ladder: Some(DiscreteSpeedSet::opteron_2380()),
                ..ExperimentConfig::paper_default()
            }
            .with_arrival_rate(rate)
            .with_sim_seconds(opt.validation_seconds());
            let (_, trace) = run_policy_traced(&cfg, PolicyKind::DesDiscrete, opt.seed);
            let sim = exact_energy(&trace, &cluster, horizon);
            let real = measured_energy(&trace, &cluster, horizon, &meter);
            (rate, sim, real)
        })
        .collect();

    let mut f = FigureReport::new(
        "fig11",
        "Energy: simulation vs (simulated) real system (H = 152 W, Opteron table)",
        vec![
            "rate".into(),
            "sim_energy".into(),
            "real_energy".into(),
            "real_over_sim".into(),
        ],
    );
    let mut max_rel: f64 = 0.0;
    for &(rate, sim, real) in &rows {
        let ratio = if sim > 0.0 { real / sim } else { 1.0 };
        max_rel = max_rel.max((ratio - 1.0).abs());
        f.push_row(vec![rate, sim, real, ratio]);
    }
    f.note(format!(
        "fitted model: a = {:.4}, β = {:.3}, b = {:.4} (paper: 2.6075 / 1.791 / 9.2562)",
        fit.model.a, fit.model.beta, fit.model.b
    ));
    f.note(format!(
        "max |real/sim − 1| = {:.1}% (paper: curves very close; real slightly higher \
         from scheduling overhead)",
        100.0 * max_rel
    ));
    vec![f]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simulation_and_measurement_agree_closely() {
        let opt = FigOptions {
            full: false,
            seed: 37,
        };
        let f = &run(&opt)[0];
        let sim = f.column_values("sim_energy").unwrap();
        let real = f.column_values("real_energy").unwrap();
        for i in 0..sim.len() {
            assert!(sim[i] > 0.0);
            let rel = (real[i] - sim[i]).abs() / sim[i];
            assert!(rel < 0.05, "row {i}: sim {} vs real {}", sim[i], real[i]);
            // Scheduling overhead keeps the measured side on top.
            assert!(real[i] > sim[i] * 0.999, "row {i}");
        }
    }

    #[test]
    fn energy_grows_with_arrival_rate() {
        let opt = FigOptions {
            full: false,
            seed: 37,
        };
        let f = &run(&opt)[0];
        let sim = f.column_values("sim_energy").unwrap();
        assert!(
            sim.last().unwrap() > sim.first().unwrap(),
            "energy should grow with load: {sim:?}"
        );
    }
}
