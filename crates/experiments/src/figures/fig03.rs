//! Fig. 3 — quality and energy of DES on the three architectures (§V-C).
//!
//! Expected shape (paper): C-DVFS achieves the highest quality at every
//! load and the lowest energy; S-DVFS saves ≥ 35.6 % of dynamic energy
//! against No-DVFS at light load and C-DVFS a further ~6.8 %; under heavy
//! load the three architectures converge in both metrics.

use crate::config::{ExperimentConfig, PolicyKind};
use crate::figures::common::{measure, panels, Series};
use crate::figures::FigOptions;
use crate::report::FigureReport;

/// Regenerate Fig. 3.
pub fn run(opt: &FigOptions) -> Vec<FigureReport> {
    let base = ExperimentConfig::paper_default().with_sim_seconds(opt.sim_seconds());
    let series = vec![
        Series::new("C-DVFS", base.clone(), PolicyKind::Des),
        Series::new("S-DVFS", base.clone(), PolicyKind::DesSDvfs),
        Series::new("No-DVFS", base, PolicyKind::DesNoDvfs),
    ];
    let data = measure(&series, &opt.rates(), opt.seed);
    let (mut fq, mut fe) = panels("fig03", "DES on No-/S-/C-DVFS architectures", &data);

    // §V-C headline numbers at the lightest measured load.
    let e_c = data.energy[0][0];
    let e_s = data.energy[1][0];
    let e_n = data.energy[2][0];
    if e_n > 0.0 && e_s > 0.0 {
        let s_saving = 100.0 * (1.0 - e_s / e_n);
        let c_saving = 100.0 * (1.0 - e_c / e_s);
        fe.note(format!(
            "light load ({} req/s): S-DVFS saves {s_saving:.1}% of dynamic energy vs \
             No-DVFS (paper: ≥35.6%); C-DVFS saves a further {c_saving:.1}% (paper: ~6.8%)",
            data.rates[0]
        ));
    }
    let q_gap = 100.0 * (data.quality[0][0] - data.quality[1][0].max(data.quality[2][0]));
    fq.note(format!(
        "light load: C-DVFS quality exceeds S-/No-DVFS by {q_gap:.2} pp (paper: ~2%)"
    ));
    vec![fq, fe]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn architecture_ordering_holds() {
        let opt = FigOptions {
            full: false,
            seed: 7,
        };
        let reports = run(&opt);
        let fq = &reports[0];
        let fe = &reports[1];
        let qc = fq.column_values("quality_C-DVFS").unwrap();
        let qs = fq.column_values("quality_S-DVFS").unwrap();
        let qn = fq.column_values("quality_No-DVFS").unwrap();
        // C-DVFS at least matches the others at every rate.
        for i in 0..qc.len() {
            assert!(
                qc[i] + 0.01 >= qs[i],
                "rate index {i}: {} vs {}",
                qc[i],
                qs[i]
            );
            assert!(qc[i] + 0.01 >= qn[i], "rate index {i}");
        }
        // Energy at light load: No-DVFS > S-DVFS > C-DVFS.
        let ec = fe.column_values("energy_C-DVFS").unwrap();
        let es = fe.column_values("energy_S-DVFS").unwrap();
        let en = fe.column_values("energy_No-DVFS").unwrap();
        assert!(en[0] > es[0], "No-DVFS {} !> S-DVFS {}", en[0], es[0]);
        assert!(es[0] > ec[0], "S-DVFS {} !> C-DVFS {}", es[0], ec[0]);
    }
}
