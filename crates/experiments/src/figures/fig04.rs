//! Fig. 4 — DES with different proportions of partial-evaluation support
//! (§V-D).
//!
//! Expected shape (paper): more partial-evaluatable jobs ⇒ higher quality
//! at the same load and more energy (more useful work gets done); at
//! quality 0.9 the 100 % case supports ~194 req/s vs ~168 (50 %) and
//! ~158 (0 %).

use crate::config::{ExperimentConfig, PolicyKind};
use crate::figures::common::{measure, panels, Series};
use crate::figures::FigOptions;
use crate::report::FigureReport;

/// Regenerate Fig. 4.
pub fn run(opt: &FigOptions) -> Vec<FigureReport> {
    let base = ExperimentConfig::paper_default().with_sim_seconds(opt.sim_seconds());
    let series = vec![
        Series::new(
            "0%",
            base.clone().with_partial_fraction(0.0),
            PolicyKind::Des,
        ),
        Series::new(
            "50%",
            base.clone().with_partial_fraction(0.5),
            PolicyKind::Des,
        ),
        Series::new("100%", base.with_partial_fraction(1.0), PolicyKind::Des),
    ];
    let data = measure(&series, &opt.rates(), opt.seed);
    let (mut fq, fe) = panels(
        "fig04",
        "DES with 0/50/100% partial-evaluation support",
        &data,
    );
    let t0 = data.throughput_at(0, 0.9);
    let t50 = data.throughput_at(1, 0.9);
    let t100 = data.throughput_at(2, 0.9);
    fq.note(format!(
        "throughput at quality 0.9: 100% = {t100:.0} req/s, 50% = {t50:.0}, 0% = {t0:.0} \
         (paper: 194 / 168 / 158)"
    ));
    vec![fq, fe]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn more_partial_support_means_more_quality() {
        let opt = FigOptions {
            full: false,
            seed: 5,
        };
        let reports = run(&opt);
        let fq = &reports[0];
        let q0 = fq.column_values("quality_0%").unwrap();
        let q50 = fq.column_values("quality_50%").unwrap();
        let q100 = fq.column_values("quality_100%").unwrap();
        // At the heavier rates the ordering must be strict.
        let n = q0.len();
        for i in (n - 2)..n {
            assert!(
                q100[i] >= q50[i] - 0.01,
                "idx {i}: {} vs {}",
                q100[i],
                q50[i]
            );
            assert!(q50[i] >= q0[i] - 0.01, "idx {i}: {} vs {}", q50[i], q0[i]);
        }
        assert!(
            q100[n - 1] > q0[n - 1] + 0.02,
            "100% should clearly beat 0% under heavy load: {} vs {}",
            q100[n - 1],
            q0[n - 1]
        );
    }
}
