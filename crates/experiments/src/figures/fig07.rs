//! Fig. 7 — sensitivity to the quality function's concavity (§V-F).
//!
//! Panel (a) tabulates the quality family of Eq. (1) for the paper's six
//! values of `c`; panel (b) runs DES under each and shows that a more
//! concave function (larger `c`) earns more quality from the same
//! schedule, while energy is unaffected by the quality function.

use qes_core::quality::{ExpQuality, QualityFunction};

use crate::config::{ExperimentConfig, PolicyKind};
use crate::figures::common::{measure, panels, Series};
use crate::figures::FigOptions;
use crate::report::FigureReport;

/// The paper's sweep of concavity constants.
pub const C_VALUES: [f64; 6] = [0.009, 0.005, 0.003, 0.002, 0.001, 0.0005];

/// Regenerate Fig. 7 (both panels).
pub fn run(opt: &FigOptions) -> Vec<FigureReport> {
    // Panel (a): the function shapes.
    let mut fa = FigureReport::new(
        "fig07a",
        "Quality functions q(x) for different concavity constants c",
        std::iter::once("x".to_string())
            .chain(C_VALUES.iter().map(|c| format!("c={c}")))
            .collect(),
    );
    for i in 0..=20 {
        let x = i as f64 * 50.0;
        let mut row = vec![x];
        for &c in &C_VALUES {
            row.push(ExpQuality::new(c).value(x));
        }
        fa.push_row(row);
    }
    fa.note("larger c ⇒ more concave ⇒ more quality from the same partial volume");

    // Panel (b): DES quality under each function.
    let base = ExperimentConfig::paper_default().with_sim_seconds(opt.sim_seconds());
    let series: Vec<Series> = C_VALUES
        .iter()
        .map(|&c| {
            Series::new(
                format!("c={c}"),
                base.clone().with_quality_c(c),
                PolicyKind::Des,
            )
        })
        .collect();
    let data = measure(&series, &opt.rates(), opt.seed);
    let (mut fb, fe) = panels(
        "fig07b",
        "DES quality under different quality functions",
        &data,
    );

    // Energy is independent of the quality function under overload-free
    // identical schedules; report the spread.
    let n = data.rates.len();
    let mut max_spread: f64 = 0.0;
    for i in 0..n {
        let es: Vec<f64> = (0..C_VALUES.len()).map(|s| data.energy[s][i]).collect();
        let lo = es.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = es.iter().cloned().fold(0.0, f64::max);
        if lo > 0.0 {
            max_spread = max_spread.max(hi / lo - 1.0);
        }
    }
    fb.note(format!(
        "energy spread across quality functions ≤ {:.2}% (paper: energy unaffected)",
        100.0 * max_spread
    ));
    vec![fa, fb, fe]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn larger_c_earns_more_quality_under_load() {
        let opt = FigOptions {
            full: false,
            seed: 17,
        };
        let reports = run(&opt);
        let fb = &reports[1];
        let hi = fb.column_values("quality_c=0.009").unwrap();
        let lo = fb.column_values("quality_c=0.0005").unwrap();
        // At the heaviest load the concave advantage must be visible.
        let n = hi.len() - 1;
        assert!(
            hi[n] > lo[n] + 0.02,
            "c=0.009 {} vs c=0.0005 {}",
            hi[n],
            lo[n]
        );
    }

    #[test]
    fn panel_a_shapes_are_ordered() {
        let opt = FigOptions::default();
        let fa = &run(&opt)[0];
        // At x=250 the most concave function dominates the least concave.
        let row = fa.rows.iter().find(|r| r.cells[0] == 250.0).unwrap();
        let q_hi = row.cells[1]; // c=0.009 column
        let q_lo = *row.cells.last().unwrap(); // c=0.0005 column
        assert!(q_hi > q_lo);
    }
}
