//! Time-varying load study (extension; not a paper figure).
//!
//! Interactive services see diurnal load swings; a scheduler that only
//! shines at one operating point is fragile. This experiment drives every
//! policy through one full sinusoidal load cycle swinging between light
//! load and overload, on the same job stream.

use rayon::prelude::*;

use qes_core::job::JobSet;
use qes_core::time::SimTime;
use qes_workload::DiurnalWorkload;

use crate::config::{run_jobset, ExperimentConfig, PolicyKind};
use crate::figures::FigOptions;
use crate::report::FigureReport;

/// Build the diurnal web-search stream: rate swinging `base ± amp` over
/// `period` seconds, Pareto demands, 150 ms deadlines. Thin wrapper over
/// [`DiurnalWorkload`] (all jobs partial, like §V-B).
pub fn diurnal_jobs(base: f64, amp: f64, period_secs: f64, horizon: SimTime, seed: u64) -> JobSet {
    DiurnalWorkload::new(base, amp, period_secs)
        .with_horizon(horizon)
        .generate(seed)
        .expect("agreeable by construction")
}

/// Run the diurnal comparison.
pub fn run(opt: &FigOptions) -> Vec<FigureReport> {
    let horizon_secs = if opt.full { 600.0 } else { 60.0 };
    let horizon = SimTime::from_secs_f64(horizon_secs);
    // Swing between ~40 and ~240 req/s: under- to over-loaded each cycle.
    let (base, amp, period) = (140.0, 100.0, horizon_secs / 2.0);
    let jobs = diurnal_jobs(base, amp, period, horizon, opt.seed);

    let kinds = [
        PolicyKind::Des,
        PolicyKind::Fcfs,
        PolicyKind::FcfsWf,
        PolicyKind::Sjf,
        PolicyKind::SjfWf,
    ];
    let cfg = ExperimentConfig::paper_default().with_sim_seconds(horizon_secs);
    let rows: Vec<(usize, f64, f64, f64)> = kinds
        .par_iter()
        .enumerate()
        .map(|(i, &k)| {
            let rep = run_jobset(&cfg, k, &jobs);
            (
                i,
                rep.normalized_quality(),
                rep.energy_joules,
                rep.satisfaction_rate(),
            )
        })
        .collect();

    let mut f = FigureReport::new(
        "diurnal",
        &format!(
            "Diurnal load ({base}±{amp} req/s, period {period:.0} s): quality, energy, satisfaction"
        ),
        vec![
            "policy_index".into(),
            "quality".into(),
            "energy".into(),
            "satisfaction".into(),
        ],
    );
    let mut sorted = rows.clone();
    sorted.sort_by_key(|&(i, _, _, _)| i);
    for &(i, q, e, s) in &sorted {
        f.push_row(vec![i as f64, q, e, s]);
    }
    for (i, k) in kinds.iter().enumerate() {
        f.note(format!("policy {i} = {}", k.name()));
    }
    let des_q = sorted[0].1;
    let fcfs_q = sorted[1].1;
    f.note(format!(
        "DES sustains {des_q:.3} through the full swing vs FCFS {fcfs_q:.3} — the \
         gap concentrates in the overloaded half-cycles"
    ));
    vec![f]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn diurnal_stream_is_agreeable_and_modulated() {
        let horizon = SimTime::from_secs(40);
        let jobs = diurnal_jobs(100.0, 80.0, 40.0, horizon, 5);
        assert!(jobs.len() > 2000, "{}", jobs.len());
        // The first half-cycle (rising sine) must carry more arrivals
        // than the second.
        let half = SimTime::from_secs(20);
        let first = jobs.iter().filter(|j| j.release < half).count();
        let second = jobs.len() - first;
        assert!(first > second, "{first} vs {second}");
    }

    #[test]
    fn des_tops_the_diurnal_comparison() {
        let opt = FigOptions {
            full: false,
            seed: 3,
        };
        let f = &run(&opt)[0];
        let q = f.column_values("quality").unwrap();
        // Row 0 is DES; it must at least match every baseline.
        for (i, &v) in q.iter().enumerate().skip(1) {
            assert!(q[0] + 0.01 >= v, "policy {i} beats DES: {v} vs {}", q[0]);
        }
    }
}
