//! One module per paper figure. Each exposes `run(...) -> Vec<FigureReport>`
//! (most take [`FigOptions`]; the two analytic figures take nothing).

pub mod ablation;
pub mod cluster;
pub mod cluster_faults;
pub mod cluster_overload;
pub mod common;
pub mod competitive;
pub mod demand_dist;
pub mod diurnal;
pub mod fig01;
pub mod fig02;
pub mod fig03;
pub mod fig04;
pub mod fig05;
pub mod fig06;
pub mod fig07;
pub mod fig08;
pub mod fig09;
pub mod fig10;
pub mod fig11;
pub mod tail;
pub mod triggers;

/// Shared knobs for the simulation-backed figures.
#[derive(Clone, Copy, Debug)]
pub struct FigOptions {
    /// Paper-scale runs (1800 s horizon, fine rate grid) vs quick runs
    /// (30 s horizon, coarse grid) for CI and smoke tests.
    pub full: bool,
    /// Workload seed; all policies at one rate share the same job stream.
    pub seed: u64,
}

impl Default for FigOptions {
    fn default() -> Self {
        FigOptions {
            full: false,
            seed: 42,
        }
    }
}

impl FigOptions {
    /// Simulated horizon in seconds.
    pub fn sim_seconds(&self) -> f64 {
        if self.full {
            1800.0
        } else {
            30.0
        }
    }

    /// The arrival-rate grid of the paper's x-axes (80–260 req/s).
    pub fn rates(&self) -> Vec<f64> {
        if self.full {
            (0..=9).map(|i| 80.0 + 20.0 * i as f64).collect()
        } else {
            vec![80.0, 120.0, 160.0, 200.0, 240.0]
        }
    }

    /// The §V-G validation rate grid (40–120 req/s).
    pub fn validation_rates(&self) -> Vec<f64> {
        if self.full {
            vec![40.0, 60.0, 80.0, 100.0, 120.0]
        } else {
            vec![40.0, 80.0, 120.0]
        }
    }

    /// The §V-G horizon ("the simulation time for each arrival rate is
    /// 10 min").
    pub fn validation_seconds(&self) -> f64 {
        if self.full {
            600.0
        } else {
            30.0
        }
    }
}
