//! Cluster sharding study (extension; not a paper figure).
//!
//! The paper's evaluation is a single 16-core machine; a front end
//! serving millions of users runs N such machines behind a dispatcher.
//! This experiment drives one diurnal arrival stream through
//! [`ClusterEngine`] at several shard counts and routing policies, each
//! shard an independent DES machine, and reports merged quality, energy
//! and per-shard balance. Everything is deterministic (routing is a
//! sequential pre-pass; shard fan-out merges in shard order), so the CI
//! double-run CSV diff covers this figure too.

use qes_cluster::{ClusterEngine, RoutingPolicy};
use qes_core::quality::ExpQuality;
use qes_core::time::{SimDuration, SimTime};
use qes_sim::engine::SimConfig;
use qes_workload::DiurnalWorkload;

use crate::config::{ExperimentConfig, PolicyKind};
use crate::figures::FigOptions;
use crate::report::FigureReport;

/// Routing policies compared, in row order.
fn routings() -> [RoutingPolicy; 4] {
    [
        RoutingPolicy::RoundRobin,
        RoutingPolicy::Random { seed: 1 },
        RoutingPolicy::Jsq,
        RoutingPolicy::LeastEnergy,
    ]
}

/// Run the cluster sweep: shard counts × routing policies over one
/// shared diurnal stream sized for the 4-shard point (~90 % mean
/// utilization there, so fewer shards run overloaded and more run
/// light).
pub fn run(opt: &FigOptions) -> Vec<FigureReport> {
    let horizon_secs = if opt.full { 600.0 } else { 45.0 };
    let horizon = SimTime::from_secs_f64(horizon_secs);
    // Each shard machine: half the paper's server (8 cores, 160 W).
    let machine = ExperimentConfig::paper_default()
        .with_cores(8)
        .with_budget(160.0);
    // Mean rate for ~0.9 utilization across 4 shards at the nominal
    // 2 GHz: 0.9 · 4 · 8 · 2 GHz · 1000 units / 192 units ≈ 300 req/s.
    let base = 300.0;
    let jobs = DiurnalWorkload::new(base, 0.5 * base, horizon_secs / 2.0)
        .with_horizon(horizon)
        .generate(opt.seed)
        .expect("agreeable by construction");

    let quality = ExpQuality::new(machine.quality_c);
    let cfg = SimConfig {
        num_cores: machine.num_cores,
        budget: machine.budget,
        model: &machine.power,
        quality: &quality,
        end: horizon,
        record_trace: false,
        overhead: SimDuration::ZERO,
    };

    let mut f = FigureReport::new(
        "cluster",
        &format!(
            "Sharded cluster ({base}±{:.0} req/s diurnal, {} jobs): routing × shard count",
            0.5 * base,
            jobs.len()
        ),
        vec![
            "shards".into(),
            "routing_index".into(),
            "quality".into(),
            "energy".into(),
            "satisfaction".into(),
            "max_shard_jobs".into(),
            "min_shard_jobs".into(),
        ],
    );
    for (ri, routing) in routings().iter().enumerate() {
        f.note(format!("routing {ri} = {}", routing.label()));
    }

    let mut jsq4 = None;
    let mut rr4 = None;
    for shards in [1usize, 2, 4] {
        for (ri, routing) in routings().iter().enumerate() {
            let engine = ClusterEngine::new(shards)
                .with_routing(routing.clone())
                .with_seed(opt.seed);
            let rep = engine.run(&cfg, &jobs, |_| PolicyKind::Des.build(&machine.power));
            assert_eq!(rep.merged.jobs_total(), jobs.len(), "jobs conserved");
            f.push_row(vec![
                shards as f64,
                ri as f64,
                rep.merged.normalized_quality(),
                rep.merged.energy_joules,
                rep.merged.satisfaction_rate(),
                rep.max_shard_jobs() as f64,
                rep.min_shard_jobs() as f64,
            ]);
            if shards == 4 {
                match routing {
                    RoutingPolicy::Jsq => jsq4 = Some(rep.merged.normalized_quality()),
                    RoutingPolicy::RoundRobin => rr4 = Some(rep.merged.normalized_quality()),
                    _ => {}
                }
            }
        }
    }
    if let (Some(j), Some(r)) = (jsq4, rr4) {
        f.note(format!(
            "4 shards: JSQ sustains {j:.4} normalized quality vs round-robin {r:.4} — \
             load-aware routing absorbs the diurnal peaks"
        ));
    }
    vec![f]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cluster_figure_rows_cover_the_grid_and_conserve_quality() {
        let opt = FigOptions {
            full: false,
            seed: 11,
        };
        let f = &run(&opt)[0];
        // 3 shard counts × 4 routings.
        assert_eq!(f.rows.len(), 12);
        let q = f.column_values("quality").unwrap();
        assert!(q.iter().all(|&v| (0.0..=1.0 + 1e-9).contains(&v)));
        // All 1-shard rows agree regardless of routing: one shard takes
        // everything, so routing cannot matter.
        let shards = f.column_values("shards").unwrap();
        let e = f.column_values("energy").unwrap();
        let one: Vec<usize> = (0..f.rows.len()).filter(|&i| shards[i] == 1.0).collect();
        for w in one.windows(2) {
            assert_eq!(q[w[0]].to_bits(), q[w[1]].to_bits());
            assert_eq!(e[w[0]].to_bits(), e[w[1]].to_bits());
        }
    }

    #[test]
    fn routing_balance_structure_at_four_shards() {
        let opt = FigOptions {
            full: false,
            seed: 2,
        };
        let f = &run(&opt)[0];
        let shards = f.column_values("shards").unwrap();
        let ri = f.column_values("routing_index").unwrap();
        let max_j = f.column_values("max_shard_jobs").unwrap();
        let min_j = f.column_values("min_shard_jobs").unwrap();
        let at4 = |routing: f64| -> (f64, f64) {
            (0..f.rows.len())
                .find(|&i| shards[i] == 4.0 && ri[i] == routing)
                .map(|i| (max_j[i], min_j[i]))
                .unwrap()
        };
        // Round-robin (index 0) splits counts exactly evenly (±1).
        let (rr_max, rr_min) = at4(0.0);
        assert!(rr_max - rr_min <= 1.0, "{rr_max} vs {rr_min}");
        // JSQ (2) ties toward shard 0 when windows are empty, so counts
        // skew low-index — but under diurnal peaks it must still engage
        // every shard.
        let (_, jsq_min) = at4(2.0);
        assert!(jsq_min > 0.0, "JSQ left a shard idle all run");
        // Least-energy (3) likewise spreads peak load across all shards.
        let (_, le_min) = at4(3.0);
        assert!(le_min > 0.0, "least-energy left a shard idle all run");
    }
}
