//! Cluster fault-injection study (extension; not a paper figure).
//!
//! The paper's premise is graceful degradation — best-effort services
//! return partial results rather than failing — but PR 8's cluster only
//! models healthy machines. This experiment injects seeded
//! crash/brownout windows ([`FaultPlan::seeded`]) at a grid of fault
//! rates and compares routing policies on a 4-shard cluster: how much
//! response quality survives capacity loss, what the energy bill looks
//! like, and how many jobs the dispatcher had to retry or drop.
//! Quality is reported in *degraded* form
//! ([`qes_cluster::ClusterReport::degraded_quality`]): earned quality
//! over the maximum a fault-free cluster could have earned, dropped
//! jobs included, so hiding drops cannot inflate the score. Fault plans
//! are sampled before the run from the figure seed, so the CI
//! double-run CSV diff covers this figure too.

use qes_cluster::{ClusterEngine, FaultPlan, RoutingPolicy};
use qes_core::quality::ExpQuality;
use qes_core::time::{SimDuration, SimTime};
use qes_sim::engine::SimConfig;
use qes_workload::DiurnalWorkload;

use crate::config::{ExperimentConfig, PolicyKind};
use crate::figures::FigOptions;
use crate::report::FigureReport;

const SHARDS: usize = 4;

/// Routing policies compared, in row order: blind cycling, queue-aware,
/// power-aware, and the failover-aware feedback router.
fn routings() -> [RoutingPolicy; 4] {
    [
        RoutingPolicy::RoundRobin,
        RoutingPolicy::Jsq,
        RoutingPolicy::LeastEnergy,
        RoutingPolicy::Feedback,
    ]
}

/// Mean fault events per shard per 100 s of run, the sweep axis.
const FAULT_RATES: [f64; 4] = [0.0, 2.0, 4.0, 8.0];

/// Run the fault sweep: fault rates × routing policies over one shared
/// diurnal stream on a 4-shard cluster. Rate 0 uses [`FaultPlan::none`]
/// and must reproduce the healthy path exactly.
pub fn run(opt: &FigOptions) -> Vec<FigureReport> {
    let horizon_secs = if opt.full { 600.0 } else { 45.0 };
    let horizon = SimTime::from_secs_f64(horizon_secs);
    let machine = ExperimentConfig::paper_default()
        .with_cores(8)
        .with_budget(160.0);
    // Same sizing as the healthy cluster figure: ~0.9 mean utilization
    // across 4 shards, so lost capacity actually hurts.
    let base = 300.0;
    let jobs = DiurnalWorkload::new(base, 0.5 * base, horizon_secs / 2.0)
        .with_horizon(horizon)
        .generate(opt.seed)
        .expect("agreeable by construction");

    let quality = ExpQuality::new(machine.quality_c);
    let cfg = SimConfig {
        num_cores: machine.num_cores,
        budget: machine.budget,
        model: &machine.power,
        quality: &quality,
        end: horizon,
        record_trace: false,
        overhead: SimDuration::ZERO,
    };

    let mut f = FigureReport::new(
        "cluster_faults",
        &format!(
            "Fault injection on a {SHARDS}-shard cluster ({} jobs): \
             degraded quality vs fault rate × routing",
            jobs.len()
        ),
        vec![
            "fault_rate".into(),
            "routing_index".into(),
            "quality".into(),
            "energy".into(),
            "dropped".into(),
            "retried".into(),
        ],
    );
    for (ri, routing) in routings().iter().enumerate() {
        f.note(format!("routing {ri} = {}", routing.label()));
    }
    f.note(
        "fault_rate = mean fault events per shard per 100 s \
         (half crashes, half brownouts, mean outage 3 s); \
         quality is degraded-mode (dropped jobs count against the maximum)"
            .to_string(),
    );

    let mut feedback_top = None;
    let mut rr_top = None;
    let top_rate = FAULT_RATES[FAULT_RATES.len() - 1];
    for &rate in &FAULT_RATES {
        let plan = if rate == 0.0 {
            FaultPlan::none(SHARDS)
        } else {
            // mean_up from the rate: `rate` outages per 100 s means a
            // healthy gap of 100/rate − mean_down seconds on average.
            let mean_down = 3.0;
            let mean_up = (100.0 / rate - mean_down).max(1.0);
            FaultPlan::seeded(SHARDS, horizon, opt.seed, mean_up, mean_down, 0.5)
        };
        for (ri, routing) in routings().iter().enumerate() {
            let engine = ClusterEngine::new(SHARDS)
                .with_routing(routing.clone())
                .with_seed(opt.seed)
                .with_fault_plan(plan.clone());
            let rep = engine.run(&cfg, &jobs, |_| PolicyKind::Des.build(&machine.power));
            assert_eq!(
                rep.merged.jobs_total() as u64 + rep.jobs_dropped,
                jobs.len() as u64,
                "jobs conserved under faults"
            );
            f.push_row(vec![
                rate,
                ri as f64,
                rep.degraded_quality(),
                rep.merged.energy_joules,
                rep.jobs_dropped as f64,
                rep.jobs_retried as f64,
            ]);
            if rate == top_rate {
                match routing {
                    RoutingPolicy::Feedback => feedback_top = Some(rep.degraded_quality()),
                    RoutingPolicy::RoundRobin => rr_top = Some(rep.degraded_quality()),
                    _ => {}
                }
            }
        }
    }
    if let (Some(fb), Some(rr)) = (feedback_top, rr_top) {
        f.note(format!(
            "at {top_rate} faults/shard/100s: feedback routing holds {fb:.4} degraded \
             quality vs round-robin {rr:.4} — health-aware dispatch sheds load \
             from degraded shards"
        ));
    }
    vec![f]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fault_figure_covers_the_grid_and_zero_rate_is_clean() {
        let opt = FigOptions {
            full: false,
            seed: 11,
        };
        let f = &run(&opt)[0];
        // 4 fault rates × 4 routings.
        assert_eq!(f.rows.len(), 16);
        let rate = f.column_values("fault_rate").unwrap();
        let q = f.column_values("quality").unwrap();
        let dropped = f.column_values("dropped").unwrap();
        let retried = f.column_values("retried").unwrap();
        assert!(q.iter().all(|&v| (0.0..=1.0 + 1e-9).contains(&v)));
        // Rate 0 rows: no faults, so nothing dropped or retried.
        for i in 0..f.rows.len() {
            if rate[i] == 0.0 {
                assert_eq!(dropped[i], 0.0, "row {i}");
                assert_eq!(retried[i], 0.0, "row {i}");
            }
        }
        // The top rate must actually exercise the failover path for at
        // least one routing.
        let top = FAULT_RATES[FAULT_RATES.len() - 1];
        let stress: f64 = (0..f.rows.len())
            .filter(|&i| rate[i] == top)
            .map(|i| dropped[i] + retried[i])
            .sum();
        assert!(stress > 0.0, "top fault rate never stranded a job");
    }

    #[test]
    fn fault_figure_is_deterministic_per_seed() {
        let opt = FigOptions {
            full: false,
            seed: 3,
        };
        let a = &run(&opt)[0];
        let b = &run(&opt)[0];
        for (ra, rb) in a.rows.iter().zip(&b.rows) {
            for (x, y) in ra.cells.iter().zip(&rb.cells) {
                assert_eq!(x.to_bits(), y.to_bits());
            }
        }
    }
}
