//! Fig. 9 — sensitivity to the number of cores (§V-F).
//!
//! With the total budget held at 320 W and the arrival rate at 90 req/s,
//! the paper sweeps m = 2^x cores. Expected shape: few fat cores obtain
//! limited quality at great energy cost (convex power: one fast core is
//! far less efficient than many slow ones); both metrics improve with
//! more cores until parallelism saturates around 16 cores.

use rayon::prelude::*;

use crate::config::{run_policy, ExperimentConfig, PolicyKind};
use crate::figures::FigOptions;
use crate::report::FigureReport;

/// The paper's core-count sweep.
pub const CORE_COUNTS: [usize; 7] = [1, 2, 4, 8, 16, 32, 64];

/// The fixed arrival rate of the sweep.
pub const RATE: f64 = 90.0;

/// Regenerate Fig. 9.
pub fn run(opt: &FigOptions) -> Vec<FigureReport> {
    let base = ExperimentConfig::paper_default()
        .with_sim_seconds(opt.sim_seconds())
        .with_arrival_rate(RATE);
    let rows: Vec<(usize, f64, f64)> = CORE_COUNTS
        .par_iter()
        .map(|&m| {
            let rep = run_policy(&base.clone().with_cores(m), PolicyKind::Des, opt.seed);
            (m, rep.normalized_quality(), rep.energy_joules)
        })
        .collect();
    let mut f = FigureReport::new(
        "fig09",
        "DES quality and energy vs number of cores (rate 90 req/s, H = 320 W)",
        vec!["cores".into(), "quality".into(), "energy".into()],
    );
    for &(m, q, e) in &rows {
        f.push_row(vec![m as f64, q, e]);
    }
    let q16 = rows.iter().find(|r| r.0 == 16).map(|r| r.1).unwrap_or(0.0);
    let q64 = rows.iter().find(|r| r.0 == 64).map(|r| r.1).unwrap_or(0.0);
    f.note(format!(
        "16 cores already sustain quality {q16:.3}; 64 cores add only {:+.3} \
         (paper: saturation at 16 cores)",
        q64 - q16
    ));
    vec![f]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quality_improves_then_saturates_with_cores() {
        let opt = FigOptions {
            full: false,
            seed: 29,
        };
        let f = &run(&opt)[0];
        let q = f.column_values("quality").unwrap();
        let e = f.column_values("energy").unwrap();
        // 1 core is much worse than 16 in quality and costs more energy.
        let i1 = 0;
        let i16 = CORE_COUNTS.iter().position(|&m| m == 16).unwrap();
        assert!(
            q[i16] > q[i1] + 0.1,
            "16 cores {} vs 1 core {}",
            q[i16],
            q[i1]
        );
        assert!(
            e[i1] > e[i16],
            "1-core energy {} should exceed 16-core {}",
            e[i1],
            e[i16]
        );
        // Saturation: 64 cores no more than marginally better than 16.
        let i64c = CORE_COUNTS.iter().position(|&m| m == 64).unwrap();
        assert!((q[i64c] - q[i16]).abs() < 0.05);
    }
}
