//! Trigger-sensitivity study (extension; quantifies §IV-E's design talk).
//!
//! The paper adopts Grouped Scheduling with three triggers (500 ms
//! quantum, counter of 8, idle-core) and argues it "reduces scheduling
//! overhead \[and\] helps to improve the quality of scheduling decision by
//! considering multiple requests together" — but doesn't plot the
//! sensitivity. This experiment sweeps the quantum and the counter and
//! reports quality, energy, and how often the scheduler actually ran.

use rayon::prelude::*;

use qes_core::quality::ExpQuality;
use qes_core::time::{SimDuration, SimTime};
use qes_multicore::{DesPolicy, TriggerRequest};
use qes_sim::engine::{SimConfig, Simulator};

use crate::config::ExperimentConfig;
use crate::figures::FigOptions;
use crate::report::FigureReport;

fn run_with_triggers(cfg: &ExperimentConfig, trig: TriggerRequest, seed: u64) -> (f64, f64, u64) {
    run_with_triggers_overhead(cfg, trig, seed, SimDuration::ZERO)
}

fn run_with_triggers_overhead(
    cfg: &ExperimentConfig,
    trig: TriggerRequest,
    seed: u64,
    overhead: SimDuration,
) -> (f64, f64, u64) {
    let jobs = cfg.workload().generate(seed).expect("valid workload");
    let quality = ExpQuality::new(cfg.quality_c);
    let sim_cfg = SimConfig {
        num_cores: cfg.num_cores,
        budget: cfg.budget,
        model: &cfg.power,
        quality: &quality,
        end: SimTime::from_secs_f64(cfg.sim_seconds),
        record_trace: false,
        overhead,
    };
    let mut policy = DesPolicy::new().with_triggers(trig);
    let (rep, _) = Simulator::run(&sim_cfg, &mut policy, &jobs);
    // Scheduling overhead is paid on every wakeup, whether or not the
    // decision changed anything — report wakeups, not just the
    // state-changing invocations.
    (
        rep.normalized_quality(),
        rep.energy_joules,
        rep.counters.wakeups(),
    )
}

/// Sweep the §IV-E trigger parameters at a moderately heavy load.
pub fn run(opt: &FigOptions) -> Vec<FigureReport> {
    let cfg = ExperimentConfig::paper_default()
        .with_arrival_rate(170.0)
        .with_sim_seconds(if opt.full { 300.0 } else { 30.0 });

    // Counter sweep (quantum fixed at the paper's 500 ms).
    let counters: Vec<usize> = vec![1, 2, 4, 8, 16, 32, 64];
    let mut fc = FigureReport::new(
        "triggersa",
        "Counter-trigger sweep (quantum 500 ms, idle-core on, 170 req/s)",
        vec![
            "counter".into(),
            "quality".into(),
            "energy".into(),
            "invocations_per_sec".into(),
        ],
    );
    let rows: Vec<(usize, f64, f64, u64)> = counters
        .par_iter()
        .map(|&c| {
            let trig = TriggerRequest {
                counter: Some(c),
                ..TriggerRequest::paper_default()
            };
            let (q, e, inv) = run_with_triggers(&cfg, trig, opt.seed);
            (c, q, e, inv)
        })
        .collect();
    for &(c, q, e, inv) in &rows {
        fc.push_row(vec![c as f64, q, e, inv as f64 / cfg.sim_seconds]);
    }
    fc.note(
        "counter 1 ≈ Immediate Scheduling: most invocations, marginal quality \
         difference; the paper's 8 batches arrivals at a fraction of the cost",
    );

    // Quantum sweep (counter fixed at 8).
    let quanta_ms: Vec<u64> = vec![50, 125, 250, 500, 1000, 2000];
    let mut fq = FigureReport::new(
        "triggersb",
        "Quantum-trigger sweep (counter 8, idle-core on, 170 req/s)",
        vec![
            "quantum_ms".into(),
            "quality".into(),
            "energy".into(),
            "invocations_per_sec".into(),
        ],
    );
    let rows: Vec<(u64, f64, f64, u64)> = quanta_ms
        .par_iter()
        .map(|&ms| {
            let trig = TriggerRequest {
                quantum: Some(SimDuration::from_millis(ms)),
                ..TriggerRequest::paper_default()
            };
            let (q, e, inv) = run_with_triggers(&cfg, trig, opt.seed);
            (ms, q, e, inv)
        })
        .collect();
    for &(ms, q, e, inv) in &rows {
        fq.push_row(vec![ms as f64, q, e, inv as f64 / cfg.sim_seconds]);
    }
    fq.note(
        "with the counter and idle triggers active, the quantum is a backstop: \
         quality barely moves across a 40× quantum range (§IV-E robustness)",
    );

    // Overhead sweep: with a per-invocation stall, Immediate Scheduling
    // (counter 1) pays for its invocation count — the §IV-E argument for
    // grouped scheduling, measured.
    let overheads_us: Vec<u64> = vec![0, 100, 500, 2000];
    let mut fo = FigureReport::new(
        "triggersc",
        "Scheduling overhead: IS (counter 1) vs GS (counter 8) quality",
        vec![
            "overhead_us".into(),
            "quality_is".into(),
            "quality_gs".into(),
        ],
    );
    let rows: Vec<(u64, f64, f64)> = overheads_us
        .par_iter()
        .map(|&us| {
            let ov = SimDuration::from_micros(us);
            let is_trig = TriggerRequest {
                counter: Some(1),
                ..TriggerRequest::paper_default()
            };
            let gs_trig = TriggerRequest::paper_default();
            let (q_is, _, _) = run_with_triggers_overhead(&cfg, is_trig, opt.seed, ov);
            let (q_gs, _, _) = run_with_triggers_overhead(&cfg, gs_trig, opt.seed, ov);
            (us, q_is, q_gs)
        })
        .collect();
    for &(us, q_is, q_gs) in &rows {
        fo.push_row(vec![us as f64, q_is, q_gs]);
    }
    fo.note(
        "GS's advantage grows with the per-invocation cost: IS stalls the \
         cores on every arrival, GS once per batch",
    );
    vec![fc, fq, fo]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_one_costs_invocations_not_quality() {
        let opt = FigOptions {
            full: false,
            seed: 53,
        };
        let reports = run(&opt);
        let fc = &reports[0];
        let q = fc.column_values("quality").unwrap();
        let inv = fc.column_values("invocations_per_sec").unwrap();
        // Counter 1 (IS) invokes far more often than counter 8.
        assert!(inv[0] > 1.5 * inv[3], "{} vs {}", inv[0], inv[3]);
        // The paper's counter of 8 gives up at most ~2 pp against IS.
        assert!(
            q[3] > q[0] - 0.02,
            "counter 8 {} vs counter 1 {}",
            q[3],
            q[0]
        );
    }

    #[test]
    fn overhead_punishes_immediate_scheduling() {
        let opt = FigOptions {
            full: false,
            seed: 53,
        };
        let reports = run(&opt);
        let fo = &reports[2];
        let q_is = fo.column_values("quality_is").unwrap();
        let q_gs = fo.column_values("quality_gs").unwrap();
        // With zero overhead the two are close; at 2 ms per invocation the
        // grouped scheduler must clearly win.
        let n = q_is.len() - 1;
        assert!(
            q_gs[n] > q_is[n] + 0.01,
            "GS {} should beat IS {} at 2 ms overhead",
            q_gs[n],
            q_is[n]
        );
        // And GS degrades less from its own zero-overhead point than IS.
        assert!((q_gs[0] - q_gs[n]) < (q_is[0] - q_is[n]) + 1e-9);
    }

    #[test]
    fn quantum_is_a_backstop_not_a_driver() {
        let opt = FigOptions {
            full: false,
            seed: 53,
        };
        let reports = run(&opt);
        let fq = &reports[1];
        let q = fq.column_values("quality").unwrap();
        let spread =
            q.iter().cloned().fold(0.0, f64::max) - q.iter().cloned().fold(f64::INFINITY, f64::min);
        assert!(spread < 0.05, "quality spread across quanta: {spread}");
    }
}
