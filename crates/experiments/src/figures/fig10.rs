//! Fig. 10 — continuous vs discrete speed scaling (§V-F).
//!
//! Expected shape (paper): the discrete implementation loses a little
//! quality (~1 pp at light load) because it cannot hit the ideal speeds —
//! notably the tail of long requests that would need speeds above the
//! ladder's ceiling — and the differences shrink to < 0.5 pp under heavy
//! load as both implementations saturate the budget.

use crate::config::{ExperimentConfig, PolicyKind};
use crate::figures::common::{measure, panels, Series};
use crate::figures::FigOptions;
use crate::report::FigureReport;

/// Regenerate Fig. 10.
pub fn run(opt: &FigOptions) -> Vec<FigureReport> {
    let base = ExperimentConfig::paper_default().with_sim_seconds(opt.sim_seconds());
    let series = vec![
        Series::new("continuous", base.clone(), PolicyKind::Des),
        Series::new("discrete", base, PolicyKind::DesDiscrete),
    ];
    let data = measure(&series, &opt.rates(), opt.seed);
    let (mut fq, mut fe) = panels(
        "fig10",
        "DES with continuous vs discrete speed scaling",
        &data,
    );
    let n = data.rates.len() - 1;
    fq.note(format!(
        "quality gap (continuous − discrete): light {:.3}, heavy {:.3} \
         (paper: ~1% light, <0.5% heavy)",
        data.quality[0][0] - data.quality[1][0],
        data.quality[0][n] - data.quality[1][n]
    ));
    if data.energy[0][0] > 0.0 {
        fe.note(format!(
            "energy ratio discrete/continuous: light {:.3}, heavy {:.3} \
             (paper: discrete uses less energy, ≤7.6% gap at light load)",
            data.energy[1][0] / data.energy[0][0],
            data.energy[1][n] / data.energy[0][n]
        ));
    }
    vec![fq, fe]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn discrete_close_to_continuous() {
        let opt = FigOptions {
            full: false,
            seed: 31,
        };
        let reports = run(&opt);
        let fq = &reports[0];
        let qc = fq.column_values("quality_continuous").unwrap();
        let qd = fq.column_values("quality_discrete").unwrap();
        for i in 0..qc.len() {
            // Continuous at least matches discrete, within a small gap.
            assert!(qc[i] + 0.01 >= qd[i], "idx {i}: {} vs {}", qc[i], qd[i]);
            assert!(qc[i] - qd[i] < 0.08, "gap too large at idx {i}");
        }
    }
}
