//! Tail-quality study (extension; not a paper figure).
//!
//! The paper reports *total* quality; a service operator also cares about
//! the tail — how badly the worst-served requests fare. Concavity implies
//! equal sharing lifts the tail: DES's d-mean equalization should show a
//! markedly better p5/p25 per-job quality than the one-job-at-a-time
//! baselines, whose losers get nothing at all.

use rayon::prelude::*;

use qes_core::quality::ExpQuality;
use qes_core::time::{SimDuration, SimTime};
use qes_sim::engine::{SimConfig, Simulator};

use crate::config::{ExperimentConfig, PolicyKind};
use crate::figures::FigOptions;
use crate::report::FigureReport;

/// Per-job quality quantiles per policy at one load.
pub fn run(opt: &FigOptions) -> Vec<FigureReport> {
    let rate = 180.0; // the paper's heavy-load threshold
    let cfg = ExperimentConfig::paper_default()
        .with_arrival_rate(rate)
        .with_sim_seconds(if opt.full { 600.0 } else { 30.0 });
    let kinds = [
        PolicyKind::Des,
        PolicyKind::Fcfs,
        PolicyKind::FcfsWf,
        PolicyKind::Sjf,
    ];
    let jobs = cfg.workload().generate(opt.seed).expect("valid workload");
    let quality = ExpQuality::new(cfg.quality_c);

    let rows: Vec<(usize, Vec<f64>)> = kinds
        .par_iter()
        .enumerate()
        .map(|(i, &k)| {
            let sim_cfg = SimConfig {
                num_cores: cfg.num_cores,
                budget: cfg.budget,
                model: &cfg.power,
                quality: &quality,
                end: SimTime::from_secs_f64(cfg.sim_seconds),
                record_trace: false,
                overhead: SimDuration::ZERO,
            };
            let mut policy = k.build(&cfg.power);
            let (_, _, stats) = Simulator::run_detailed(&sim_cfg, policy.as_mut(), &jobs);
            // One sort answers all five quantiles (the per-quantile
            // getters would re-sort the outcomes on every call).
            let qs: Vec<f64> = stats
                .completion_quantiles(&[0.05, 0.25, 0.50, 0.75, 0.95])
                .unwrap_or_else(|| vec![0.0; 5]);
            let spread = stats.utilization_spread();
            let mut cells = vec![i as f64];
            cells.extend(qs);
            cells.push(spread);
            (i, cells)
        })
        .collect();

    let mut f = FigureReport::new(
        "tail",
        &format!("Per-job completion quantiles at {rate} req/s (heavy load)"),
        vec![
            "policy_index".into(),
            "p05".into(),
            "p25".into(),
            "p50".into(),
            "p75".into(),
            "p95".into(),
            "util_spread".into(),
        ],
    );
    let mut sorted = rows;
    sorted.sort_by_key(|&(i, _)| i);
    for (_, cells) in &sorted {
        f.push_row(cells.clone());
    }
    for (i, k) in kinds.iter().enumerate() {
        f.note(format!("policy {i} = {}", k.name()));
    }
    f.note(
        "p05/p25: how the worst-served jobs fare — DES's d-mean equalization \
         lifts the tail; SJF zeroes it (long jobs never run). util_spread: \
         max−min per-core busy fraction (C-RR balance).",
    );
    vec![f]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn des_lifts_the_tail_over_sjf() {
        let opt = FigOptions {
            full: false,
            seed: 19,
        };
        let f = &run(&opt)[0];
        let p25 = f.column_values("p25").unwrap();
        // Row 0 = DES, row 3 = SJF.
        assert!(
            p25[0] > p25[3] + 0.1,
            "DES p25 {} should clearly beat SJF p25 {}",
            p25[0],
            p25[3]
        );
    }

    #[test]
    fn utilization_spread_is_small_for_des() {
        let opt = FigOptions {
            full: false,
            seed: 19,
        };
        let f = &run(&opt)[0];
        let spread = f.column_values("util_spread").unwrap();
        assert!(
            spread[0] < 0.2,
            "DES per-core utilization spread {}",
            spread[0]
        );
    }
}
