//! Cluster overload study (extension; not a paper figure).
//!
//! PR 9's fault figure stresses the cluster by taking capacity away;
//! this one stresses it by offering more load than the shards can
//! serve. The shards run the FCFS baseline — a backend that does *not*
//! triage — over an all-or-nothing stream (`partial_fraction = 0`).
//! That is the classic regime where front-end admission control pays:
//! under sustained overload FCFS serves arrivals in order, every job
//! starts late, and partial service on a job that then misses its
//! deadline earns zero quality while still burning energy. (The
//! paper's DES scheduler triages internally — it abandons hopeless
//! jobs with full knowledge of remaining work — so an open DES system
//! degrades gracefully on its own and front-end shedding, which prices
//! jobs at full demand, cannot beat it. Admission control is the
//! defense for backends without that luxury.)
//!
//! The experiment sweeps an offered-load multiplier × the front end's
//! [`AdmissionPolicy`] variants on a 4-shard cluster and reports
//! *degraded* quality ([`qes_cluster::ClusterReport::degraded_quality`]):
//! earned quality over the maximum a cluster admitting everything could
//! have earned, with dropped *and rejected* jobs counting against the
//! maximum — so turning arrivals away cannot inflate the score, and an
//! admission policy only wins if the jobs it keeps actually finish.

use qes_cluster::{AdmissionPolicy, ClusterEngine, RoutingPolicy};
use qes_core::power::PowerModel;
use qes_core::quality::ExpQuality;
use qes_core::time::{SimDuration, SimTime};
use qes_sim::engine::SimConfig;
use qes_workload::DiurnalWorkload;

use crate::config::{ExperimentConfig, PolicyKind};
use crate::figures::FigOptions;
use crate::report::FigureReport;

const SHARDS: usize = 4;

/// Offered-load multipliers applied to the healthy ~0.9-utilization
/// base rate: nominal, 2x and 3x overload.
const LOAD_MULTS: [f64; 3] = [1.0, 2.0, 3.0];

/// Admission policies compared, in row order. `capacity_ghz` is the
/// shard's sustainable aggregate speed under its power budget (no
/// scheduler can run faster on average), so the slack-floor probe
/// prices arrivals against what the machine can actually deliver.
fn admissions(capacity_ghz: f64) -> [AdmissionPolicy; 3] {
    // The front end prices in-flight jobs at *full* demand (it cannot
    // see how far the shard has served them), so a job mid-flight
    // counts roughly twice its remaining work on average. Give the
    // probe 2x headroom so pricing tracks remaining backlog rather
    // than double-counting served cycles.
    let probe_ghz = 2.0 * capacity_ghz;
    // In-flight (full-demand) backlog a shard can clear within one
    // 150 ms deadline: probe GHz × 150 ms of GHz·ms demand units.
    let clearable = probe_ghz * 150.0;
    [
        AdmissionPolicy::AcceptAll,
        AdmissionPolicy::SlackFloor {
            floor: 0.5,
            capacity_ghz: probe_ghz,
        },
        AdmissionPolicy::Backpressure {
            cap: clearable,
            resume: 0.5 * clearable,
        },
    ]
}

/// Run the overload sweep: offered-load multipliers × admission
/// policies over per-multiplier diurnal streams on a 4-shard cluster.
/// Multiplier 1 with [`AdmissionPolicy::AcceptAll`] reproduces the
/// healthy open-system path.
pub fn run(opt: &FigOptions) -> Vec<FigureReport> {
    let horizon_secs = if opt.full { 600.0 } else { 45.0 };
    let horizon = SimTime::from_secs_f64(horizon_secs);
    let machine = ExperimentConfig::paper_default()
        .with_cores(8)
        .with_budget(160.0);
    // Same sizing as the fault figure: ~0.9 mean utilization across 4
    // shards at multiplier 1, so 2x offered load is real overload.
    let base = 300.0;
    // Sustainable per-shard speed: every core at the speed the per-core
    // power budget allows (P = 5·s² at 20 W/core ⇒ 2 GHz ⇒ 16 GHz/shard).
    let capacity_ghz = machine.num_cores as f64
        * machine
            .power
            .speed_for_dynamic_power(machine.budget / machine.num_cores as f64);

    let quality = ExpQuality::new(machine.quality_c);
    let cfg = SimConfig {
        num_cores: machine.num_cores,
        budget: machine.budget,
        model: &machine.power,
        quality: &quality,
        end: horizon,
        record_trace: false,
        overhead: SimDuration::ZERO,
    };

    let mut f = FigureReport::new(
        "cluster_overload",
        &format!(
            "Overload on a {SHARDS}-shard FCFS cluster: degraded quality \
             vs offered load × admission policy (all-or-nothing jobs, \
             base {base} req/s)"
        ),
        vec![
            "load_mult".into(),
            "admission_index".into(),
            "quality".into(),
            "energy".into(),
            "rejected".into(),
            "dropped".into(),
            "jobs_offered".into(),
        ],
    );
    for (ai, adm) in admissions(capacity_ghz).iter().enumerate() {
        f.note(format!("admission {ai} = {}", adm.label()));
    }
    f.note(format!(
        "load_mult scales the diurnal base rate ({base} req/s ≈ 0.9 \
         utilization); quality is degraded-mode (rejected and dropped \
         jobs count against the maximum); slack-floor prices against \
         {capacity_ghz:.1} GHz sustainable per shard"
    ));

    let top_mult = LOAD_MULTS[LOAD_MULTS.len() - 1];
    let mut top_quality = [None; 3];
    for &mult in &LOAD_MULTS {
        let jobs = DiurnalWorkload::new(base * mult, 0.5 * base * mult, horizon_secs / 2.0)
            .with_horizon(horizon)
            .with_partial_fraction(0.0)
            .generate(opt.seed)
            .expect("agreeable by construction");
        for (ai, adm) in admissions(capacity_ghz).iter().enumerate() {
            let engine = ClusterEngine::new(SHARDS)
                .with_routing(RoutingPolicy::Feedback)
                .with_seed(opt.seed)
                .with_admission(adm.clone());
            let rep = engine.run(&cfg, &jobs, |_| PolicyKind::Fcfs.build(&machine.power));
            assert_eq!(
                rep.merged.jobs_total() as u64 + rep.jobs_dropped + rep.jobs_rejected,
                jobs.len() as u64,
                "jobs conserved under admission control"
            );
            f.push_row(vec![
                mult,
                ai as f64,
                rep.degraded_quality(),
                rep.merged.energy_joules,
                rep.jobs_rejected as f64,
                rep.jobs_dropped as f64,
                jobs.len() as f64,
            ]);
            if mult == top_mult {
                top_quality[ai] = Some(rep.degraded_quality());
            }
        }
    }
    if let [Some(open), Some(slack), Some(bp)] = top_quality {
        f.note(format!(
            "at {top_mult}x offered load: accept-all delivers {open:.4} degraded \
             quality vs slack-floor {slack:.4} and backpressure {bp:.4} — \
             shedding hopeless arrivals early keeps capacity for jobs that \
             can still finish"
        ));
    }
    vec![f]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overload_figure_covers_the_grid_and_accept_all_never_rejects() {
        let opt = FigOptions {
            full: false,
            seed: 11,
        };
        let f = &run(&opt)[0];
        // 3 load multipliers × 3 admission policies.
        assert_eq!(f.rows.len(), 9);
        let adm = f.column_values("admission_index").unwrap();
        let q = f.column_values("quality").unwrap();
        let rejected = f.column_values("rejected").unwrap();
        assert!(q.iter().all(|&v| (0.0..=1.0 + 1e-9).contains(&v)));
        for i in 0..f.rows.len() {
            if adm[i] == 0.0 {
                assert_eq!(rejected[i], 0.0, "accept-all rejected a job (row {i})");
            }
        }
        // The active policies must actually turn arrivals away somewhere
        // on the grid — otherwise the sweep never exercises admission.
        let shed: f64 = rejected.iter().sum();
        assert!(shed > 0.0, "no admission policy ever rejected a job");
    }

    #[test]
    fn admission_beats_accept_all_at_two_x_overload() {
        // The ISSUE acceptance bar: at ≥2x offered load both active
        // policies must retain strictly more delivered quality than the
        // open system, with the default figure seed.
        let f = &run(&FigOptions::default())[0];
        let mult = f.column_values("load_mult").unwrap();
        let adm = f.column_values("admission_index").unwrap();
        let q = f.column_values("quality").unwrap();
        for &m in &[2.0, 3.0] {
            let at = |a: f64| {
                (0..f.rows.len())
                    .find(|&i| mult[i] == m && adm[i] == a)
                    .map(|i| q[i])
                    .unwrap()
            };
            let (open, slack, bp) = (at(0.0), at(1.0), at(2.0));
            assert!(
                slack > open,
                "slack-floor {slack} ≤ accept-all {open} at {m}x"
            );
            assert!(bp > open, "backpressure {bp} ≤ accept-all {open} at {m}x");
        }
    }

    #[test]
    fn overload_figure_is_deterministic_per_seed() {
        let opt = FigOptions {
            full: false,
            seed: 3,
        };
        let a = &run(&opt)[0];
        let b = &run(&opt)[0];
        for (ra, rb) in a.rows.iter().zip(&b.rows) {
            for (x, y) in ra.cells.iter().zip(&rb.cells) {
                assert_eq!(x.to_bits(), y.to_bits());
            }
        }
    }
}
