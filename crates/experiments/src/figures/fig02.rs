//! Fig. 2 — the Water-Filling power distribution, worked example.
//!
//! The paper illustrates WF on a 4-core system where core 4 requests less
//! than the equal share (and receives exactly its demand) while cores 1–3
//! equally share the remainder. This driver reproduces that worked example
//! and a few neighbouring budgets to show the levelling behaviour.

use qes_multicore::water_filling;

use crate::report::FigureReport;

/// Tabulate the WF example: one row per budget, requested vs granted.
pub fn run() -> FigureReport {
    // The illustrative request vector: three thirsty cores plus one
    // lightly loaded core.
    let requests = [30.0, 40.0, 35.0, 10.0];
    let mut f = FigureReport::new(
        "fig02",
        "Water-Filling power distribution over requests [30, 40, 35, 10] W",
        vec![
            "budget".into(),
            "grant_1".into(),
            "grant_2".into(),
            "grant_3".into(),
            "grant_4".into(),
            "total".into(),
        ],
    );
    for budget in [20.0, 40.0, 70.0, 100.0, 115.0, 150.0] {
        let g = water_filling(&requests, budget);
        let total: f64 = g.iter().sum();
        f.push_row(vec![budget, g[0], g[1], g[2], g[3], total]);
    }
    f.note(
        "at H = 70 W core 4 gets its full 10 W request; cores 1–3 level at \
         20 W each — the paper's Fig. 2 scenario",
    );
    f.note("at H ≥ 115 W every request is satisfied and grants stop growing");
    f
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reproduces_paper_scenario_row() {
        let f = run();
        let i = f.rows.iter().position(|r| r.cells[0] == 70.0).unwrap();
        let r = &f.rows[i].cells;
        assert!((r[4] - 10.0).abs() < 1e-9); // core 4 fully granted
        for &grant in &r[1..=3] {
            assert!((grant - 20.0).abs() < 1e-9); // levelled
        }
        assert!((r[5] - 70.0).abs() < 1e-9); // conservation
    }

    #[test]
    fn grants_cap_at_total_request() {
        let f = run();
        let last = f.rows.last().unwrap();
        assert!((last.cells[5] - 115.0).abs() < 1e-9); // Σ requests
    }
}
