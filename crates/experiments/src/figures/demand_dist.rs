//! Demand-distribution robustness study (extension).
//!
//! §V-B claims "our simulation results show consistency with different
//! parameter values" but only publishes the bounded-Pareto setting. This
//! experiment holds the *offered load* fixed (arrival rate × mean demand)
//! and swaps the demand shape: deterministic, uniform, Pareto (the
//! paper's), and clamped lognormal. DES's advantage over FCFS should
//! survive every shape — with the gap growing in the demand variance,
//! since WF exists to absorb exactly that variance.

use rayon::prelude::*;

use qes_core::quality::ExpQuality;
use qes_core::time::{SimDuration, SimTime};
use qes_multicore::{BaselineOrder, BaselinePolicy, DesPolicy, SchedulingPolicy};
use qes_sim::engine::{SimConfig, Simulator};
use qes_workload::distributions::{
    DemandDistribution, Deterministic, LognormalDemand, UniformDemand,
};
use qes_workload::modulated::ConstantRate;
use qes_workload::{BoundedPareto, GeneralWorkload};

use crate::config::ExperimentConfig;
use crate::figures::FigOptions;
use crate::report::FigureReport;

fn shapes() -> Vec<(&'static str, Box<dyn DemandDistribution>)> {
    vec![
        ("const", Box::new(Deterministic { units: 192.0 })),
        ("uniform", Box::new(UniformDemand::new(130.0, 254.0))), // mean 192
        ("pareto", Box::new(BoundedPareto::paper_default())),    // mean 192
        ("lognormal", Box::new(LognormalDemand::paper_like())),  // mean ≈ 187
    ]
}

/// Run the robustness comparison at a fixed offered load.
pub fn run(opt: &FigOptions) -> Vec<FigureReport> {
    let rate = 170.0; // ≈ equal offered load across shapes (~33 kunits/s)
    let horizon_secs = if opt.full { 600.0 } else { 30.0 };
    let base = ExperimentConfig::paper_default().with_sim_seconds(horizon_secs);

    let rows: Vec<(usize, f64, f64)> = (0..shapes().len())
        .into_par_iter()
        .map(|i| {
            let (_, dist) = shapes().swap_remove(i);
            let jobs = GeneralWorkload::new(ConstantRate(rate), DistBox(dist))
                .with_horizon(SimTime::from_secs_f64(horizon_secs))
                .with_deadline(SimDuration::from_millis(150))
                .generate(opt.seed)
                .expect("valid workload");
            let quality = ExpQuality::new(base.quality_c);
            let run = |policy: &mut dyn SchedulingPolicy| {
                let sim_cfg = SimConfig {
                    num_cores: base.num_cores,
                    budget: base.budget,
                    model: &base.power,
                    quality: &quality,
                    end: SimTime::from_secs_f64(horizon_secs),
                    record_trace: false,
                    overhead: SimDuration::ZERO,
                };
                Simulator::run(&sim_cfg, policy, &jobs)
                    .0
                    .normalized_quality()
            };
            let des = run(&mut DesPolicy::new());
            let fcfs = run(&mut BaselinePolicy::new(BaselineOrder::Fcfs));
            (i, des, fcfs)
        })
        .collect();

    let mut f = FigureReport::new(
        "demand_dist",
        &format!("Demand-shape robustness at {rate} req/s (equal offered load)"),
        vec![
            "shape_index".into(),
            "quality_des".into(),
            "quality_fcfs".into(),
            "des_gap".into(),
        ],
    );
    let mut sorted = rows;
    sorted.sort_by_key(|&(i, _, _)| i);
    for &(i, d, fc) in &sorted {
        f.push_row(vec![i as f64, d, fc, d - fc]);
    }
    for (i, (label, _)) in shapes().iter().enumerate() {
        f.note(format!("shape {i} = {label}"));
    }
    f.note(
        "DES ≥ FCFS under every shape; the gap tracks the demand variance \
         (WF absorbs exactly that variance) — the §V-B consistency claim",
    );
    vec![f]
}

/// Adapter: `Box<dyn DemandDistribution>` itself as a distribution.
struct DistBox(Box<dyn DemandDistribution>);

impl DemandDistribution for DistBox {
    fn sample(&self, rng: &mut dyn rand::RngCore) -> f64 {
        self.0.sample(rng)
    }

    fn mean(&self) -> f64 {
        self.0.mean()
    }

    fn label(&self) -> String {
        self.0.label()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn des_beats_fcfs_under_every_demand_shape() {
        let opt = FigOptions {
            full: false,
            seed: 61,
        };
        let f = &run(&opt)[0];
        let gaps = f.column_values("des_gap").unwrap();
        for (i, &g) in gaps.iter().enumerate() {
            assert!(g > -0.01, "shape {i}: DES loses by {g}");
        }
        // The variance story: Pareto (index 2) gap exceeds const (index 0).
        assert!(
            gaps[2] > gaps[0] - 0.005,
            "pareto gap {} vs const gap {}",
            gaps[2],
            gaps[0]
        );
    }
}
