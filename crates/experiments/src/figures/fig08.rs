//! Fig. 8 — sensitivity to the power budget (§V-F).
//!
//! Expected shape (paper): more budget sustains higher load at the same
//! quality (and costs more energy); at light load extra budget is
//! unnecessary; energy grows with load until the budget saturates, after
//! which quality degrades instead.

use crate::config::{ExperimentConfig, PolicyKind};
use crate::figures::common::{measure, panels, Series};
use crate::figures::FigOptions;
use crate::report::FigureReport;

/// The paper's budget sweep (W).
pub const BUDGETS: [f64; 5] = [80.0, 160.0, 320.0, 480.0, 640.0];

/// Regenerate Fig. 8.
pub fn run(opt: &FigOptions) -> Vec<FigureReport> {
    let base = ExperimentConfig::paper_default().with_sim_seconds(opt.sim_seconds());
    let series: Vec<Series> = BUDGETS
        .iter()
        .map(|&h| {
            Series::new(
                format!("H={h:.0}"),
                base.clone().with_budget(h),
                PolicyKind::Des,
            )
        })
        .collect();
    let data = measure(&series, &opt.rates(), opt.seed);
    let (mut fq, mut fe) = panels("fig08", "DES under different power budgets", &data);
    let n = data.rates.len() - 1;
    fq.note(format!(
        "heavy load ({} req/s): quality rises with budget — {}",
        data.rates[n],
        BUDGETS
            .iter()
            .enumerate()
            .map(|(s, h)| format!("H={h:.0}: {:.3}", data.quality[s][n]))
            .collect::<Vec<_>>()
            .join(", ")
    ));
    for (s, &h) in BUDGETS.iter().enumerate() {
        // The engine drains in-flight jobs ≤ one relative deadline past
        // the horizon, so the cap window is sim_seconds + 0.15 s.
        let cap = h * (base.sim_seconds + 0.15);
        let peak = data.energy[s].iter().cloned().fold(0.0, f64::max);
        fe.note(format!(
            "H={h:.0}: peak energy {:.0} J ≤ budget·time {:.0} J ({:.0}% of cap)",
            peak,
            cap,
            100.0 * peak / cap
        ));
    }
    vec![fq, fe]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn more_budget_more_quality_under_heavy_load() {
        let opt = FigOptions {
            full: false,
            seed: 23,
        };
        let reports = run(&opt);
        let fq = &reports[0];
        let q80 = fq.column_values("quality_H=80").unwrap();
        let q320 = fq.column_values("quality_H=320").unwrap();
        let q640 = fq.column_values("quality_H=640").unwrap();
        let n = q80.len() - 1;
        assert!(q320[n] > q80[n] + 0.02, "{} vs {}", q320[n], q80[n]);
        assert!(q640[n] + 0.01 >= q320[n], "{} vs {}", q640[n], q320[n]);
        // Light load: big budgets are unnecessary (quality already ~full).
        assert!(q320[0] > 0.97 && q640[0] > 0.97);
    }

    #[test]
    fn energy_respects_each_budget_cap() {
        let opt = FigOptions {
            full: false,
            seed: 23,
        };
        let reports = run(&opt);
        let fe = &reports[1];
        for (s, &h) in BUDGETS.iter().enumerate() {
            let col = &fe.columns[s + 1];
            let vals = fe.column_values(col).unwrap();
            let cap = h * (opt.sim_seconds() + 0.15);
            for v in vals {
                assert!(v <= cap + 1e-6, "H={h}: {v} > {cap}");
            }
        }
    }
}
