//! Fig. 1 — the example quality function.
use crate::report::FigureReport;
use qes_core::quality::{ExpQuality, QualityFunction};

/// Tabulate the paper's default quality function over [0, 1000] units.
pub fn run() -> FigureReport {
    let q = ExpQuality::PAPER_DEFAULT;
    let mut f = FigureReport::new(
        "fig01",
        "Example quality function (c = 0.003)",
        vec!["processing_units".into(), "quality".into()],
    );
    for i in 0..=20 {
        let x = i as f64 * 50.0;
        f.push_row(vec![x, q.value(x)]);
    }
    f.note(format!(
        "q(500) = {:.3}; q(1000) = 1 by normalization",
        q.value(500.0)
    ));
    f
}
