//! Shared machinery for the rate-sweep figures.
//!
//! Most of the paper's figures are a pair of panels — normalized quality
//! vs arrival rate, and energy vs arrival rate — for a handful of labelled
//! series. A series is any ⟨configuration, policy⟩ pair: Fig. 3/5/6/10
//! vary the policy, Fig. 4/7/8 vary the configuration.

use rayon::prelude::*;

use crate::config::{run_policy, ExperimentConfig, PolicyKind};
use crate::report::FigureReport;

/// One labelled curve of a figure.
#[derive(Clone, Debug)]
pub struct Series {
    /// Legend label.
    pub label: String,
    /// Configuration template (the arrival rate is overridden per point).
    pub cfg: ExperimentConfig,
    /// Policy to run.
    pub kind: PolicyKind,
}

impl Series {
    /// Convenience constructor.
    pub fn new(label: impl Into<String>, cfg: ExperimentConfig, kind: PolicyKind) -> Self {
        Series {
            label: label.into(),
            cfg,
            kind,
        }
    }
}

/// Measured panel data: `quality[series][rate]`, `energy[series][rate]`.
pub struct PanelData {
    /// The rate grid.
    pub rates: Vec<f64>,
    /// Legend labels, in series order.
    pub labels: Vec<String>,
    /// Normalized quality per series per rate.
    pub quality: Vec<Vec<f64>>,
    /// Energy (J) per series per rate.
    pub energy: Vec<Vec<f64>>,
}

impl PanelData {
    /// Interpolated largest rate at which series `s` still reaches
    /// `target` quality (§V-E's throughput metric).
    pub fn throughput_at(&self, s: usize, target: f64) -> f64 {
        let q = &self.quality[s];
        // Ends at or above target: the top of the grid sustains it, even
        // if noise dipped the curve below target mid-sweep (a stale
        // down-crossing would under-report the sustained rate).
        if *q.last().unwrap() >= target {
            return *self.rates.last().unwrap();
        }
        // Ends below target: interpolate the final ≥→< crossing.
        for i in (1..q.len()).rev() {
            if q[i - 1] >= target && q[i] < target {
                let t = (q[i - 1] - target) / (q[i - 1] - q[i]);
                return self.rates[i - 1] + t * (self.rates[i] - self.rates[i - 1]);
            }
        }
        // Never reached target at all: saturate at the bottom of the grid.
        *self.rates.first().unwrap()
    }
}

/// Run every ⟨series, rate⟩ point in parallel.
pub fn measure(series: &[Series], rates: &[f64], seed: u64) -> PanelData {
    let combos: Vec<(usize, f64)> = (0..series.len())
        .flat_map(|s| rates.iter().map(move |&r| (s, r)))
        .collect();
    let results: Vec<(usize, f64, f64, f64)> = combos
        .into_par_iter()
        .map(|(s, rate)| {
            let cfg = series[s].cfg.clone().with_arrival_rate(rate);
            let rep = run_policy(&cfg, series[s].kind, seed);
            (s, rate, rep.normalized_quality(), rep.energy_joules)
        })
        .collect();
    let mut quality = vec![vec![0.0; rates.len()]; series.len()];
    let mut energy = vec![vec![0.0; rates.len()]; series.len()];
    for (s, rate, q, e) in results {
        let i = rates.iter().position(|&r| r == rate).unwrap();
        quality[s][i] = q;
        energy[s][i] = e;
    }
    PanelData {
        rates: rates.to_vec(),
        labels: series.iter().map(|s| s.label.clone()).collect(),
        quality,
        energy,
    }
}

/// Build the two standard panels from measured data.
pub fn panels(id: &str, title: &str, data: &PanelData) -> (FigureReport, FigureReport) {
    let mut cols_q = vec!["rate".to_string()];
    let mut cols_e = vec!["rate".to_string()];
    for l in &data.labels {
        cols_q.push(format!("quality_{l}"));
        cols_e.push(format!("energy_{l}"));
    }
    let mut fq = FigureReport::new(&format!("{id}a"), &format!("{title} — quality"), cols_q);
    let mut fe = FigureReport::new(&format!("{id}b"), &format!("{title} — energy"), cols_e);
    for (i, &rate) in data.rates.iter().enumerate() {
        let mut rq = vec![rate];
        let mut re = vec![rate];
        for s in 0..data.labels.len() {
            rq.push(data.quality[s][i]);
            re.push(data.energy[s][i]);
        }
        fq.push_row(rq);
        fe.push_row(re);
    }
    (fq, fe)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measure_and_panels_smoke() {
        let base = ExperimentConfig::quick().with_sim_seconds(2.0);
        let series = vec![
            Series::new("DES", base.clone(), PolicyKind::Des),
            Series::new("FCFS", base, PolicyKind::Fcfs),
        ];
        let data = measure(&series, &[60.0, 120.0], 1);
        assert_eq!(data.quality.len(), 2);
        assert_eq!(data.quality[0].len(), 2);
        let (fq, fe) = panels("figXX", "smoke", &data);
        assert_eq!(fq.rows.len(), 2);
        assert_eq!(fe.columns.len(), 3);
        assert!(fq.to_table().contains("quality_DES"));
    }

    fn panel(rates: Vec<f64>, quality: Vec<f64>) -> PanelData {
        let n = rates.len();
        PanelData {
            rates,
            labels: vec!["x".into()],
            quality: vec![quality],
            energy: vec![vec![0.0; n]],
        }
    }

    #[test]
    fn throughput_at_handles_flat_series() {
        let d = panel(vec![100.0, 200.0], vec![0.99, 0.98]);
        assert_eq!(d.throughput_at(0, 0.9), 200.0);
    }

    #[test]
    fn throughput_at_non_monotone_uses_last_downward_crossing() {
        // Simulation noise can make the measured curve dip below the
        // target and recover; the reported throughput is the *final*
        // crossing, interpolated on its bracketing grid points.
        let d = panel(
            vec![100.0, 200.0, 300.0, 400.0],
            vec![0.95, 0.85, 0.92, 0.70],
        );
        let expect = 300.0 + (0.92 - 0.9) / (0.92 - 0.70) * 100.0;
        assert!((d.throughput_at(0, 0.9) - expect).abs() < 1e-9);
    }

    #[test]
    fn throughput_at_dip_and_recover_reports_top_sustained_rate() {
        // The curve dips under the target mid-sweep but *ends* at or
        // above it: the sustained rate is the top of the grid, not the
        // stale down-crossing (regression; mirrors
        // `sweep::throughput_dip_and_recover_returns_top_sustained_rate`).
        let d = panel(
            vec![100.0, 200.0, 300.0, 400.0],
            vec![0.99, 0.85, 0.95, 0.93],
        );
        assert_eq!(d.throughput_at(0, 0.9), 400.0);
    }

    #[test]
    fn throughput_at_curve_starting_below_target() {
        // Warm-up artifacts can leave the first grid point under the
        // target; a later recovery-then-drop still yields an
        // interpolated crossing, not the grid floor.
        let d = panel(vec![100.0, 200.0, 300.0], vec![0.80, 0.95, 0.85]);
        assert!((d.throughput_at(0, 0.9) - 250.0).abs() < 1e-9);
    }

    #[test]
    fn throughput_at_never_reaching_target_reports_grid_floor() {
        // A series that never attains the target has no meaningful
        // throughput; the convention is the lowest measured rate.
        let d = panel(vec![100.0, 200.0, 300.0], vec![0.50, 0.60, 0.40]);
        assert_eq!(d.throughput_at(0, 0.9), 100.0);
    }
}
