//! Parallel ⟨policy, arrival-rate⟩ sweeps.
//!
//! The paper's figures sweep arrival rate for several policies at 1800 s
//! of simulated time per point. Points are independent, so they run
//! data-parallel on the in-tree rayon thread pool (sized by
//! `QES_THREADS`, default = available parallelism).
//!
//! Two properties make the fan-out safe and deterministic (DESIGN.md
//! §"Parallel execution and determinism"):
//!
//! * **No shared mutable state per point.** Each closure clones its
//!   config and calls [`run_policy`], which builds a *fresh*
//!   `StdRng::seed_from_u64(seed)` inside workload generation — there is
//!   no generator shared across points, so the job stream a point sees
//!   is a pure function of ⟨rate, seed⟩, not of scheduling.
//! * **Index-ordered collection.** The shim's `collect()` returns
//!   results in input order, so the returned `Vec<SweepPoint>` (and
//!   every figure/scorecard artifact derived from it) is bit-for-bit
//!   identical between `QES_THREADS=1` and parallel runs — enforced by
//!   `tests/parallel_determinism.rs` and a byte-for-byte CSV diff in CI.

use rayon::prelude::*;

use crate::config::{run_policy, ExperimentConfig, PolicyKind};

/// One measured point of a sweep.
#[derive(Clone, Debug)]
pub struct SweepPoint {
    /// Policy evaluated.
    pub kind: PolicyKind,
    /// Arrival rate (requests/second).
    pub rate: f64,
    /// Normalized total quality (paper's quality axis).
    pub quality: f64,
    /// Total dynamic energy in joules (paper's energy axis).
    pub energy: f64,
    /// Fraction of jobs fully satisfied.
    pub satisfaction: f64,
}

/// Run every ⟨policy, rate⟩ combination in parallel. Each point uses the
/// same `seed`, so all policies see the *same* job stream per rate.
pub fn sweep(
    base: &ExperimentConfig,
    kinds: &[PolicyKind],
    rates: &[f64],
    seed: u64,
) -> Vec<SweepPoint> {
    let mut combos: Vec<(PolicyKind, f64)> = Vec::with_capacity(kinds.len() * rates.len());
    for &k in kinds {
        for &r in rates {
            combos.push((k, r));
        }
    }
    combos
        .into_par_iter()
        .map(|(kind, rate)| {
            let cfg = base.clone().with_arrival_rate(rate);
            let rep = run_policy(&cfg, kind, seed);
            SweepPoint {
                kind,
                rate,
                quality: rep.normalized_quality(),
                energy: rep.energy_joules,
                satisfaction: rep.satisfaction_rate(),
            }
        })
        .collect()
}

/// Points of one policy, sorted by rate.
pub fn series(points: &[SweepPoint], kind: PolicyKind) -> Vec<&SweepPoint> {
    let mut v: Vec<&SweepPoint> = points.iter().filter(|p| p.kind == kind).collect();
    v.sort_by(|a, b| a.rate.total_cmp(&b.rate));
    v
}

/// The largest arrival rate at which `kind` still reaches `target`
/// normalized quality, linearly interpolated between sweep points — the
/// paper's "throughput at quality 0.9" metric (§V-E).
pub fn throughput_at_quality(points: &[SweepPoint], kind: PolicyKind, target: f64) -> Option<f64> {
    let s = series(points, kind);
    if s.is_empty() {
        return None;
    }
    // Ends at or above target: the top of the sweep sustains it, even if
    // simulation noise dipped the curve below target mid-sweep (a stale
    // down-crossing would under-report the sustained rate).
    if s.last().unwrap().quality >= target {
        return Some(s.last().unwrap().rate);
    }
    // Ends below target: the sustained rate is the final crossing from
    // ≥ target to < target, interpolated on its bracketing grid points.
    for w in s.windows(2).rev() {
        let (a, b) = (w[0], w[1]);
        if a.quality >= target && b.quality < target {
            let t = (a.quality - target) / (a.quality - b.quality);
            return Some(a.rate + t * (b.rate - a.rate));
        }
    }
    // Never reached target at all: saturate at the bottom of the grid.
    Some(s.first().unwrap().rate)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pt(kind: PolicyKind, rate: f64, quality: f64) -> SweepPoint {
        SweepPoint {
            kind,
            rate,
            quality,
            energy: 0.0,
            satisfaction: 0.0,
        }
    }

    #[test]
    fn series_filters_and_sorts() {
        let pts = vec![
            pt(PolicyKind::Des, 200.0, 0.8),
            pt(PolicyKind::Fcfs, 100.0, 0.9),
            pt(PolicyKind::Des, 100.0, 0.99),
        ];
        let s = series(&pts, PolicyKind::Des);
        assert_eq!(s.len(), 2);
        assert_eq!(s[0].rate, 100.0);
        assert_eq!(s[1].rate, 200.0);
    }

    #[test]
    fn throughput_interpolates_crossing() {
        let pts = vec![
            pt(PolicyKind::Des, 100.0, 0.99),
            pt(PolicyKind::Des, 200.0, 0.80),
        ];
        // Crosses 0.9 at 100 + (0.09/0.19)·100 ≈ 147.4.
        let t = throughput_at_quality(&pts, PolicyKind::Des, 0.9).unwrap();
        assert!((t - 147.37).abs() < 0.1, "{t}");
    }

    #[test]
    fn throughput_saturates_at_sweep_edges() {
        let hi = vec![
            pt(PolicyKind::Des, 100.0, 0.99),
            pt(PolicyKind::Des, 200.0, 0.95),
        ];
        assert_eq!(
            throughput_at_quality(&hi, PolicyKind::Des, 0.9),
            Some(200.0)
        );
        let lo = vec![
            pt(PolicyKind::Des, 100.0, 0.5),
            pt(PolicyKind::Des, 200.0, 0.4),
        ];
        assert_eq!(
            throughput_at_quality(&lo, PolicyKind::Des, 0.9),
            Some(100.0)
        );
        assert_eq!(throughput_at_quality(&[], PolicyKind::Des, 0.9), None);
    }

    #[test]
    fn throughput_dip_and_recover_returns_top_sustained_rate() {
        // Noise dips the curve below target mid-sweep, but it *ends* at
        // or above target: the sustained rate is the top of the sweep,
        // not the stale down-crossing (regression: the old code returned
        // the 0.99→0.85 crossing here).
        let pts = vec![
            pt(PolicyKind::Des, 100.0, 0.99),
            pt(PolicyKind::Des, 200.0, 0.85),
            pt(PolicyKind::Des, 300.0, 0.95),
        ];
        assert_eq!(
            throughput_at_quality(&pts, PolicyKind::Des, 0.9),
            Some(300.0)
        );
    }

    #[test]
    fn throughput_dip_without_recovery_uses_final_crossing() {
        // Ends below target after a mid-sweep recovery: the final
        // ≥→< crossing is the one that counts.
        let pts = vec![
            pt(PolicyKind::Des, 100.0, 0.95),
            pt(PolicyKind::Des, 200.0, 0.85),
            pt(PolicyKind::Des, 300.0, 0.92),
            pt(PolicyKind::Des, 400.0, 0.70),
        ];
        let expect = 300.0 + (0.92 - 0.9) / (0.92 - 0.70) * 100.0;
        let t = throughput_at_quality(&pts, PolicyKind::Des, 0.9).unwrap();
        assert!((t - expect).abs() < 1e-9, "{t} vs {expect}");
    }

    #[test]
    fn sweep_runs_all_combos_in_parallel() {
        let base = ExperimentConfig::quick().with_sim_seconds(2.0);
        let pts = sweep(
            &base,
            &[PolicyKind::Des, PolicyKind::Fcfs],
            &[40.0, 80.0],
            1,
        );
        assert_eq!(pts.len(), 4);
        for p in &pts {
            assert!(p.quality > 0.0 && p.quality <= 1.0 + 1e-9);
            assert!(p.energy >= 0.0);
        }
        // Points come back in combo order (kinds-major), independent of
        // which pool worker ran which point.
        let order: Vec<(PolicyKind, f64)> = pts.iter().map(|p| (p.kind, p.rate)).collect();
        assert_eq!(
            order,
            vec![
                (PolicyKind::Des, 40.0),
                (PolicyKind::Des, 80.0),
                (PolicyKind::Fcfs, 40.0),
                (PolicyKind::Fcfs, 80.0),
            ]
        );
    }

    #[test]
    fn sweep_inputs_are_thread_safe() {
        // The fan-out contract: everything a sweep closure captures is
        // shareable across pool workers, and the per-point RNG is plain
        // owned data built inside the point (never shared).
        fn assert_sync<T: Sync>() {}
        fn assert_send_sync<T: Send + Sync>() {}
        assert_sync::<ExperimentConfig>();
        assert_sync::<PolicyKind>();
        assert_send_sync::<rand::rngs::StdRng>();
        assert_send_sync::<SweepPoint>();
    }
}
