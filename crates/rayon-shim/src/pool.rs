//! The global worker pool and the chunked, order-preserving batch
//! executor behind [`crate::ParIter`] and [`crate::join`].
//!
//! # Design
//!
//! * **Pool sizing.** The lane count is `QES_THREADS` if set, else
//!   `RAYON_NUM_THREADS`, else [`std::thread::available_parallelism`]
//!   (read once, at first parallel use). `n` lanes means `n` concurrent
//!   executors: the *calling* thread always participates, so at most
//!   `n - 1` OS workers are spawned — lazily, on the first batch wide
//!   enough to want them, and kept for the process lifetime.
//!   `QES_THREADS=1` (or a single-core host) therefore never spawns a
//!   thread — parallel calls degrade to plain sequential loops.
//!   [`crate::with_threads`] overrides the lane count for a scope.
//!
//! * **Chunked, index-ordered execution.** A batch of `n` items is cut
//!   into at most `lanes × CHUNKS_PER_LANE` contiguous chunks. Chunks
//!   are claimed dynamically (an atomic cursor), so uneven per-item cost
//!   load-balances, but every chunk knows its base index and writes its
//!   results into a per-chunk slot; the caller concatenates the slots in
//!   chunk order. Result order is thus *exactly* input order — the same
//!   bits a sequential run produces — regardless of which worker ran
//!   which chunk, because the per-item closure is applied to the same
//!   `(index, item)` pairs either way.
//!
//! * **No deadlock by construction.** The caller never merely waits on
//!   the pool: it claims and executes chunks itself until none remain.
//!   A batch therefore completes even if every pool worker is busy with
//!   other batches (including nested parallel calls from inside a
//!   chunk), since the thread that owns the batch drains it alone in the
//!   worst case.
//!
//! * **Panic propagation.** A panicking per-item closure is caught in
//!   the worker, the batch still runs to completion (every claimed chunk
//!   is finished or marked), and the first payload is re-raised on the
//!   calling thread by [`std::panic::resume_unwind`] — matching rayon's
//!   contract and keeping the pool's workers alive for the next batch.
//!
//! # Safety
//!
//! Help jobs sent to the pool capture an `Arc` of the batch state, which
//! borrows the caller's stack (the closure and the items). The `'static`
//! bound on the pool's job type is bridged with one `transmute`, sound
//! because the caller blocks until every chunk has been claimed *and
//! finished*: after that point a straggling help job can only observe an
//! exhausted cursor and return without touching the borrowed closure or
//! items, and the `Arc` keeps the (by then fully owned) allocation alive
//! until the straggler drops its clone.

use std::any::Any;
use std::cell::Cell;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::thread;

/// Upper bound on chunks handed to each concurrency lane. More chunks
/// per lane means better load balance when per-item cost is uneven (a
/// high-rate sweep point simulates far more jobs than a low-rate one) at
/// slightly more claim/merge overhead.
const CHUNKS_PER_LANE: usize = 4;

type Job = Box<dyn FnOnce() + Send + 'static>;

struct Pool {
    injector: Sender<Job>,
    /// Shared dequeue end; workers spawned on demand all drain it.
    receiver: Arc<Mutex<Receiver<Job>>>,
    /// How many OS workers exist so far. Workers are spawned lazily, up
    /// to `lanes - 1` for the widest batch seen, and never torn down.
    spawned: Mutex<usize>,
}

static POOL: OnceLock<Pool> = OnceLock::new();
static DEFAULT_LANES: OnceLock<usize> = OnceLock::new();

thread_local! {
    /// Scoped lane override installed by [`crate::with_threads`].
    static LANE_CAP: Cell<Option<usize>> = const { Cell::new(None) };
}

fn env_threads(var: &str) -> Option<usize> {
    std::env::var(var)
        .ok()?
        .trim()
        .parse::<usize>()
        .ok()
        .filter(|&n| n > 0)
}

/// Default lane count from the environment, read once at first parallel
/// use: `QES_THREADS`, else `RAYON_NUM_THREADS`, else the hardware.
fn configured_lanes() -> usize {
    env_threads("QES_THREADS")
        .or_else(|| env_threads("RAYON_NUM_THREADS"))
        .unwrap_or_else(|| {
            thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        })
}

fn worker_loop(rx: Arc<Mutex<Receiver<Job>>>) {
    loop {
        // Hold the receiver lock only while dequeuing, never while running.
        let job = match rx.lock() {
            Ok(guard) => guard.recv(),
            Err(_) => return,
        };
        match job {
            Ok(job) => job(),
            Err(_) => return, // channel closed: pool torn down (never in practice)
        }
    }
}

fn pool() -> &'static Pool {
    POOL.get_or_init(|| {
        let (tx, rx) = channel::<Job>();
        Pool {
            injector: tx,
            receiver: Arc::new(Mutex::new(rx)),
            spawned: Mutex::new(0),
        }
    })
}

impl Pool {
    /// Guarantee at least `want` workers exist, so every queued help job
    /// is eventually picked up (a queued job that never ran would leak
    /// its batch handle).
    fn ensure_workers(&self, want: usize) {
        let mut n = self.spawned.lock().expect("spawn lock");
        while *n < want {
            let rx = Arc::clone(&self.receiver);
            thread::Builder::new()
                .name(format!("qes-par-{n}"))
                .spawn(move || worker_loop(rx))
                .expect("spawn pool worker");
            *n += 1;
        }
    }
}

/// The number of concurrency lanes parallel calls on this thread use
/// right now: the [`crate::with_threads`] override if one is in scope,
/// else the environment/hardware default. A value of 1 never spawns a
/// thread.
pub(crate) fn effective_lanes() -> usize {
    LANE_CAP
        .with(Cell::get)
        .unwrap_or_else(|| *DEFAULT_LANES.get_or_init(configured_lanes))
}

/// Total thread count parallel sections use (rayon's
/// `current_num_threads`). Initializes the pool on first call.
pub fn current_num_threads() -> usize {
    effective_lanes()
}

/// Run `f` with parallel calls on this thread using exactly `n` lanes,
/// overriding the environment/hardware default (raising it is allowed —
/// oversubscription changes wall time, never results).
///
/// `with_threads(1, …)` executes every parallel call inside `f` on the
/// calling thread, in index order — the same code path as
/// `QES_THREADS=1` — which is what the determinism differential tests
/// compare against the parallel path.
pub fn with_threads<R>(n: usize, f: impl FnOnce() -> R) -> R {
    let n = n.max(1);
    let prev = LANE_CAP.with(|c| c.replace(Some(n)));
    // Restore on unwind too, so a panicking test body doesn't leak the
    // cap into later tests on the same thread.
    struct Restore(Option<usize>);
    impl Drop for Restore {
        fn drop(&mut self) {
            LANE_CAP.with(|c| c.set(self.0));
        }
    }
    let _restore = Restore(prev);
    f()
}

/// Shared state of one in-flight batch. `'static` only after the lifetime
/// transmute in [`run_batch`]; see the module-level safety note.
/// One claimable unit of work: `(base index, items)`, taken by the
/// claiming worker.
type Chunk<T> = Mutex<Option<(usize, Vec<T>)>>;

struct Batch<T, O, F> {
    f: F,
    chunks: Vec<Chunk<T>>,
    /// Claim cursor over `chunks`.
    next: AtomicUsize,
    /// Per-chunk results, written by whichever worker ran the chunk.
    out: Vec<Mutex<Option<Vec<O>>>>,
    /// Chunks finished (success or panic), guarded for the condvar.
    done: Mutex<usize>,
    all_done: Condvar,
    /// First panic payload observed, re-raised on the caller.
    panic: Mutex<Option<Box<dyn Any + Send>>>,
}

impl<T, O, F> Batch<T, O, F>
where
    F: Fn(usize, T) -> O,
{
    /// Claim and execute chunks until the cursor is exhausted.
    fn work(&self) {
        loop {
            let i = self.next.fetch_add(1, Ordering::Relaxed);
            if i >= self.chunks.len() {
                return;
            }
            let (base, items) = self.chunks[i]
                .lock()
                .expect("chunk lock")
                .take()
                .expect("chunk claimed twice");
            let result = catch_unwind(AssertUnwindSafe(|| {
                items
                    .into_iter()
                    .enumerate()
                    .map(|(j, x)| (self.f)(base + j, x))
                    .collect::<Vec<O>>()
            }));
            match result {
                Ok(v) => *self.out[i].lock().expect("out lock") = Some(v),
                Err(payload) => {
                    let mut slot = self.panic.lock().expect("panic lock");
                    if slot.is_none() {
                        *slot = Some(payload);
                    }
                }
            }
            let mut done = self.done.lock().expect("done lock");
            *done += 1;
            if *done == self.chunks.len() {
                self.all_done.notify_all();
            }
        }
    }
}

/// Apply `f` to every `(index, item)` pair, in parallel, returning the
/// results **in input order**. This is the single execution primitive the
/// iterator adapters compile down to.
pub(crate) fn run_batch<T, O, F>(items: Vec<T>, f: F) -> Vec<O>
where
    T: Send,
    O: Send,
    F: Fn(usize, T) -> O + Sync + Send,
{
    let n = items.len();
    let lanes = if n > 1 { effective_lanes() } else { 1 };
    if lanes <= 1 {
        // Sequential reference path (`QES_THREADS=1`): same `(index,
        // item)` applications, same order, no pool.
        return items
            .into_iter()
            .enumerate()
            .map(|(i, x)| f(i, x))
            .collect();
    }

    // Cut into contiguous chunks: small enough to load-balance uneven
    // items, large enough to amortize claim overhead.
    let chunk_len = n.div_ceil(lanes * CHUNKS_PER_LANE).max(1);
    let mut chunks = Vec::with_capacity(n.div_ceil(chunk_len));
    let mut items = items;
    let mut base = 0usize;
    while !items.is_empty() {
        let take = chunk_len.min(items.len());
        let rest = items.split_off(take);
        chunks.push(Mutex::new(Some((base, items))));
        base += take;
        items = rest;
    }
    let chunk_count = chunks.len();

    let batch = Arc::new(Batch {
        f,
        out: (0..chunk_count).map(|_| Mutex::new(None)).collect(),
        chunks,
        next: AtomicUsize::new(0),
        done: Mutex::new(0),
        all_done: Condvar::new(),
        panic: Mutex::new(None),
    });

    // Ask up to `lanes - 1` pool workers for help; the caller is the
    // remaining lane. Idle workers pick these up immediately; busy ones
    // find the cursor exhausted later and return — the caller drains
    // whatever they don't.
    let helpers = (lanes - 1).min(chunk_count.saturating_sub(1));
    pool().ensure_workers(helpers);
    for _ in 0..helpers {
        let b = Arc::clone(&batch);
        let job: Box<dyn FnOnce() + Send + '_> = Box::new(move || b.work());
        // SAFETY: see the module-level note — the caller blocks below
        // until every chunk is finished, so the borrowed closure/items
        // are only dereferenced while the caller's frame is live; a
        // straggling job observes an exhausted cursor and exits.
        let job: Job = unsafe {
            std::mem::transmute::<Box<dyn FnOnce() + Send + '_>, Box<dyn FnOnce() + Send + 'static>>(
                job,
            )
        };
        // Send can only fail if the pool was torn down, which never
        // happens (static); fall back to doing the work locally.
        if pool().injector.send(job).is_err() {
            break;
        }
    }

    batch.work();
    let mut done = batch.done.lock().expect("done lock");
    while *done < chunk_count {
        done = batch.all_done.wait(done).expect("done wait");
    }
    drop(done);

    if let Some(payload) = batch.panic.lock().expect("panic lock").take() {
        resume_unwind(payload);
    }

    let mut result = Vec::with_capacity(n);
    for slot in &batch.out {
        result.extend(
            slot.lock()
                .expect("out lock")
                .take()
                .expect("chunk finished without result"),
        );
    }
    result
}

/// Run the two closures, potentially in parallel, and return both
/// results (mirror of `rayon::join`).
///
/// `oper_b` runs on a scoped thread rather than the pool: `join` callers
/// want both sides started unconditionally, and a scoped thread cannot
/// deadlock against pool workers that are themselves blocked in nested
/// `join`s. With one lane both closures run sequentially on the caller.
/// A panic in either closure propagates to the caller after both have
/// finished.
pub fn join<A, B, RA, RB>(oper_a: A, oper_b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    if effective_lanes() <= 1 {
        return (oper_a(), oper_b());
    }
    thread::scope(|s| {
        let hb = s.spawn(oper_b);
        let ra = catch_unwind(AssertUnwindSafe(oper_a));
        let rb = hb.join(); // Err(payload) if `oper_b` panicked
        match (ra, rb) {
            (Ok(ra), Ok(rb)) => (ra, rb),
            (Err(payload), _) => resume_unwind(payload),
            (_, Err(payload)) => resume_unwind(payload),
        }
    })
}
