//! In-tree data-parallel executor behind the subset of `rayon`'s API the
//! workspace uses.
//!
//! The build environment has no access to crates.io, so this crate
//! provides the `par_iter()` / `into_par_iter()` / `join` surface
//! itself, backed by a lazily-initialized global `std::thread` pool (no
//! dependencies). Unlike the earlier sequential stand-in, parallel
//! iterators here really fan out across cores — and they keep the
//! contract the repo's golden traces and scorecard depend on:
//!
//! * **Bitwise determinism.** `collect()` returns results in input
//!   order, produced by applying the same closure to the same
//!   `(index, item)` pairs a sequential run would — so sequential
//!   (`QES_THREADS=1`) and parallel runs are bit-for-bit identical.
//! * **Pool sizing.** `QES_THREADS`, else `RAYON_NUM_THREADS`, else
//!   [`std::thread::available_parallelism`]; the calling thread is one
//!   of the lanes, so `QES_THREADS=1` never spawns a thread.
//! * **Panic propagation.** A panicking closure re-raises on the caller
//!   (after the batch drains) instead of poisoning or deadlocking the
//!   pool.
//!
//! The adapter surface is the subset the workspace uses — `map`,
//! `enumerate`, `for_each`, `collect` — as static-dispatch combinators
//! over an eagerly materialized item vector (every in-tree parallel
//! source is a `Vec`, slice, array or range, so indexed materialization
//! is free). Swapping the workspace dependency back to the real `rayon`
//! still compiles unchanged.
//!
//! See `pool.rs` for the execution design (chunking, load balancing,
//! deadlock freedom) and DESIGN.md §"Parallel execution and
//! determinism" for the repo-level contract.

mod pool;

pub use pool::{current_num_threads, join, with_threads};

/// A parallel iterator over an eagerly materialized sequence: the base
/// items plus a composed per-`(index, item)` transform, executed by
/// [`pool::run_batch`] when a consumer (`collect`, `for_each`) runs.
pub struct ParIter<T, F> {
    items: Vec<T>,
    f: F,
}

/// Identity transform used by the entry points; a plain `fn` pointer so
/// `IntoParallelIterator::Iter` stays nameable.
fn identity<T>(_: usize, x: T) -> T {
    x
}

impl<T> ParIter<T, fn(usize, T) -> T> {
    fn from_items(items: Vec<T>) -> Self {
        ParIter {
            items,
            f: identity::<T>,
        }
    }
}

impl<T, O, F> ParIter<T, F>
where
    F: Fn(usize, T) -> O,
{
    /// Mirror of `ParallelIterator::map`.
    pub fn map<U, G>(self, g: G) -> ParIter<T, impl Fn(usize, T) -> U>
    where
        G: Fn(O) -> U + Sync + Send,
    {
        let f = self.f;
        ParIter {
            items: self.items,
            f: move |i, x| g(f(i, x)),
        }
    }

    /// Mirror of `IndexedParallelIterator::enumerate`. Indices are the
    /// positions in the original input, independent of how chunks are
    /// scheduled.
    pub fn enumerate(self) -> ParIter<T, impl Fn(usize, T) -> (usize, O)> {
        let f = self.f;
        ParIter {
            items: self.items,
            f: move |i, x| (i, f(i, x)),
        }
    }

    /// Mirror of `ParallelIterator::for_each` (side effects only).
    pub fn for_each<G>(self, g: G)
    where
        T: Send,
        O: Send,
        F: Sync + Send,
        G: Fn(O) + Sync + Send,
    {
        let f = self.f;
        pool::run_batch(self.items, move |i, x| g(f(i, x)));
    }

    /// Execute the chain on the pool and collect **in input order** —
    /// bit-for-bit what the sequential chain would produce.
    pub fn collect<C>(self) -> C
    where
        T: Send,
        O: Send,
        F: Sync + Send,
        C: FromIterator<O>,
    {
        pool::run_batch(self.items, self.f).into_iter().collect()
    }

    /// Number of items the chain will process.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// True when there is nothing to process.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }
}

/// Mirror of `rayon::iter::IntoParallelIterator`.
pub trait IntoParallelIterator {
    type Item: Send;
    type Iter;
    fn into_par_iter(self) -> Self::Iter;
}

impl<I> IntoParallelIterator for I
where
    I: IntoIterator,
    I::Item: Send,
{
    type Item = I::Item;
    type Iter = ParIter<I::Item, fn(usize, I::Item) -> I::Item>;
    fn into_par_iter(self) -> Self::Iter {
        ParIter::from_items(self.into_iter().collect())
    }
}

/// Mirror of `rayon::iter::IntoParallelRefIterator`: `c.par_iter()` is
/// `(&c).into_par_iter()`.
pub trait IntoParallelRefIterator<'a> {
    type Item: Send + 'a;
    type Iter;
    fn par_iter(&'a self) -> Self::Iter;
}

impl<'a, C: 'a + ?Sized> IntoParallelRefIterator<'a> for C
where
    &'a C: IntoIterator,
    <&'a C as IntoIterator>::Item: Send,
{
    type Item = <&'a C as IntoIterator>::Item;
    type Iter = ParIter<Self::Item, fn(usize, Self::Item) -> Self::Item>;
    fn par_iter(&'a self) -> Self::Iter {
        self.into_iter().into_par_iter()
    }
}

pub mod prelude {
    pub use crate::{IntoParallelIterator, IntoParallelRefIterator};
}

pub mod iter {
    pub use crate::{IntoParallelIterator, IntoParallelRefIterator};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;

    /// Exercise the real pool even on single-core hosts: the executor's
    /// correctness must not depend on how many lanes the hardware grants.
    fn with_pool<R>(f: impl FnOnce() -> R) -> R {
        with_threads(4, f)
    }

    #[test]
    fn slice_par_iter_maps_and_collects() {
        let v = vec![1, 2, 3];
        let out: Vec<i32> = with_pool(|| v.par_iter().map(|&x| x * 2).collect());
        assert_eq!(out, vec![2, 4, 6]);
    }

    #[test]
    fn vec_and_range_into_par_iter() {
        let out: Vec<usize> = with_pool(|| (0..4usize).into_par_iter().map(|i| i + 1).collect());
        assert_eq!(out, vec![1, 2, 3, 4]);
        let v: Vec<String> = with_pool(|| {
            vec!["a", "b"]
                .into_par_iter()
                .enumerate()
                .map(|(i, s)| format!("{i}{s}"))
                .collect()
        });
        assert_eq!(v, vec!["0a", "1b"]);
    }

    #[test]
    fn collect_preserves_input_order_at_scale() {
        // Enough items for many chunks across many claim races.
        let n = 10_000usize;
        let out: Vec<usize> = with_pool(|| (0..n).into_par_iter().map(|i| i * 3).collect());
        assert_eq!(out.len(), n);
        for (i, &x) in out.iter().enumerate() {
            assert_eq!(x, i * 3);
        }
    }

    #[test]
    fn parallel_equals_sequential_bitwise() {
        let work = |cap: usize| -> Vec<f64> {
            with_threads(cap, || {
                (0..257usize)
                    .into_par_iter()
                    .map(|i| (i as f64 * 0.1).sin().powi(3) / (i as f64 + 0.5))
                    .collect()
            })
        };
        let seq = work(1);
        let par = work(8);
        // Bitwise, not approximate: the same f64 ops run per index.
        assert_eq!(
            seq.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
            par.iter().map(|x| x.to_bits()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn empty_and_singleton_inputs() {
        let empty: Vec<u8> = with_pool(|| Vec::<u8>::new().into_par_iter().collect());
        assert!(empty.is_empty());
        let one: Vec<u8> = with_pool(|| vec![7u8].into_par_iter().collect());
        assert_eq!(one, vec![7]);
    }

    #[test]
    fn for_each_observes_every_item() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let sum = AtomicUsize::new(0);
        with_pool(|| {
            (1..=100usize).into_par_iter().for_each(|i| {
                sum.fetch_add(i, Ordering::Relaxed);
            })
        });
        assert_eq!(sum.load(Ordering::Relaxed), 5050);
    }

    #[test]
    fn panic_propagates_to_caller_and_pool_survives() {
        let r = std::panic::catch_unwind(|| {
            with_pool(|| {
                (0..64usize)
                    .into_par_iter()
                    .map(|i| {
                        if i == 33 {
                            panic!("boom at {i}");
                        }
                        i
                    })
                    .collect::<Vec<_>>()
            })
        });
        assert!(r.is_err(), "panic must reach the caller");
        // The pool must still serve the next batch (no deadlock, no
        // poisoned workers).
        let out: Vec<usize> = with_pool(|| (0..16usize).into_par_iter().collect());
        assert_eq!(out, (0..16).collect::<Vec<_>>());
    }

    #[test]
    fn join_runs_both_and_propagates_panics() {
        let (a, b) = with_pool(|| join(|| 2 + 2, || "ok".to_string()));
        assert_eq!(a, 4);
        assert_eq!(b, "ok");
        let r = std::panic::catch_unwind(|| with_pool(|| join(|| 1, || panic!("right side"))));
        assert!(r.is_err());
    }

    #[test]
    fn nested_parallel_calls_complete() {
        // A chunk closure that itself runs a parallel collect: the inner
        // batch must complete even with every worker busy (the claiming
        // thread drains it), exercising the no-deadlock design.
        let out: Vec<usize> = with_pool(|| {
            (0..8usize)
                .into_par_iter()
                .map(|i| {
                    let inner: Vec<usize> = (0..50usize).into_par_iter().map(|j| j * i).collect();
                    inner.iter().sum::<usize>()
                })
                .collect()
        });
        let expect: Vec<usize> = (0..8).map(|i| (0..50).map(|j| j * i).sum()).collect();
        assert_eq!(out, expect);
    }

    #[test]
    fn with_threads_restores_on_unwind() {
        let _ = std::panic::catch_unwind(|| with_threads(1, || panic!("x")));
        // If the cap leaked, this would run sequentially; either way it
        // must produce ordered output — assert the cap itself is gone.
        assert!(current_num_threads() >= 1);
        let out: Vec<usize> = with_pool(|| (0..10usize).into_par_iter().collect());
        assert_eq!(out, (0..10).collect::<Vec<_>>());
    }
}
