//! Offline stand-in for the subset of `rayon`'s parallel-iterator API the
//! workspace uses.
//!
//! The build environment has no access to crates.io, so `par_iter()` /
//! `into_par_iter()` here return the corresponding *sequential* standard
//! iterators: every adapter chain (`map`, `enumerate`, `collect`, …)
//! compiles unchanged, results are identical, and only wall-clock
//! parallelism is lost. Swapping the workspace dependency back to the
//! real `rayon` restores it with no source changes (tracked as a ROADMAP
//! open item).

/// Mirror of `rayon::iter::IntoParallelIterator`, yielding the sequential
/// `IntoIterator` iterator.
pub trait IntoParallelIterator {
    type Item;
    type Iter: Iterator<Item = Self::Item>;
    fn into_par_iter(self) -> Self::Iter;
}

impl<I: IntoIterator> IntoParallelIterator for I {
    type Item = I::Item;
    type Iter = I::IntoIter;
    fn into_par_iter(self) -> Self::Iter {
        self.into_iter()
    }
}

/// Mirror of `rayon::iter::IntoParallelRefIterator`: `c.par_iter()` is
/// `(&c).into_iter()`.
pub trait IntoParallelRefIterator<'a> {
    type Item: 'a;
    type Iter: Iterator<Item = Self::Item>;
    fn par_iter(&'a self) -> Self::Iter;
}

impl<'a, C: 'a + ?Sized> IntoParallelRefIterator<'a> for C
where
    &'a C: IntoIterator,
{
    type Item = <&'a C as IntoIterator>::Item;
    type Iter = <&'a C as IntoIterator>::IntoIter;
    fn par_iter(&'a self) -> Self::Iter {
        self.into_iter()
    }
}

pub mod prelude {
    pub use crate::{IntoParallelIterator, IntoParallelRefIterator};
}

pub mod iter {
    pub use crate::{IntoParallelIterator, IntoParallelRefIterator};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn slice_par_iter_maps_and_collects() {
        let v = vec![1, 2, 3];
        let out: Vec<i32> = v.par_iter().map(|&x| x * 2).collect();
        assert_eq!(out, vec![2, 4, 6]);
    }

    #[test]
    fn vec_and_range_into_par_iter() {
        let out: Vec<usize> = (0..4usize).into_par_iter().map(|i| i + 1).collect();
        assert_eq!(out, vec![1, 2, 3, 4]);
        let v: Vec<String> = vec!["a", "b"]
            .into_par_iter()
            .enumerate()
            .map(|(i, s)| format!("{i}{s}"))
            .collect();
        assert_eq!(v, vec!["0a", "1b"]);
    }
}
