//! Property tests for the parallel executor's two load-bearing
//! guarantees: `collect()` preserves input order bit-for-bit at any lane
//! count, and a panicking closure propagates to the caller instead of
//! deadlocking or poisoning the pool.

use proptest::prelude::*;
use rayon::prelude::*;
use rayon::with_threads;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn parallel_collect_preserves_input_order(
        v in proptest::collection::vec(0u64..1_000_000, 0..300),
        threads in 1usize..9,
    ) {
        let expect: Vec<u64> = v.iter().map(|&x| x.wrapping_mul(2654435761) ^ x).collect();
        let got: Vec<u64> = with_threads(threads, || {
            v.par_iter().map(|&x| x.wrapping_mul(2654435761) ^ x).collect()
        });
        prop_assert_eq!(got, expect);
    }

    #[test]
    fn enumerate_indices_are_input_positions(
        len in 0usize..200,
        threads in 2usize..9,
    ) {
        let v: Vec<u32> = (0..len as u32).map(|i| i * 7 + 3).collect();
        let got: Vec<(usize, u32)> = with_threads(threads, || {
            v.par_iter().enumerate().map(|(i, &x)| (i, x)).collect()
        });
        prop_assert_eq!(got.len(), len);
        for (k, &(i, x)) in got.iter().enumerate() {
            prop_assert_eq!(i, k);
            prop_assert_eq!(x, v[k]);
        }
    }

    #[test]
    fn panicking_closure_propagates_and_pool_stays_usable(
        len in 1usize..150,
        seed in 0u64..1000,
        threads in 2usize..9,
    ) {
        let bomb = (seed as usize) % len;
        let r = std::panic::catch_unwind(|| {
            with_threads(threads, || {
                (0..len)
                    .into_par_iter()
                    .map(|i| {
                        if i == bomb {
                            panic!("bomb at {i}");
                        }
                        i * 2
                    })
                    .collect::<Vec<_>>()
            })
        });
        prop_assert!(r.is_err(), "panic at index {} must reach the caller", bomb);
        // The next batch on the same pool must complete normally — the
        // panic neither deadlocked workers nor wedged the queue.
        let after: Vec<usize> =
            with_threads(threads, || (0..len).into_par_iter().map(|i| i + 1).collect());
        prop_assert_eq!(after, (1..=len).collect::<Vec<_>>());
    }
}
