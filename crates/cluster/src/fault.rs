//! Deterministic shard fault injection: crash and brownout windows.
//!
//! Real fleets serving millions of users lose and recover machines
//! constantly; the paper's premise — best-effort services degrade
//! *gracefully* — is only testable if the simulation can take capacity
//! away mid-run. A [`FaultPlan`] is a per-shard schedule of
//! [`FaultWindow`]s fixed *before* the run starts:
//!
//! * [`FaultKind::Crash`] — total outage: the shard accepts no work
//!   while the window is open, and jobs routed there earlier whose
//!   deadlines are still ahead are stranded and re-dispatched (see
//!   `dispatch::dispatch_with_faults`);
//! * [`FaultKind::Brownout`] — partial outage: the shard keeps
//!   accepting work but runs with a fraction of its cores and power
//!   budget removed.
//!
//! Because the plan is data (not a random process sampled during the
//! run), fault runs inherit the cluster's determinism contract: the
//! same plan and workload produce bitwise-identical reports at any
//! lane count, and [`FaultPlan::seeded`] derives per-shard window
//! streams from split seeds so plans are reproducible per seed.

use qes_core::time::{SimDuration, SimTime};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::dispatch::split_seed;

/// What a fault window does to its shard's capacity.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum FaultKind {
    /// Total outage: no work accepted, nothing runs, stranded jobs are
    /// re-dispatched to surviving shards.
    Crash,
    /// Partial outage: the shard keeps running with `loss` of its
    /// cores/power budget removed.
    Brownout {
        /// Fraction of capacity lost, in `(0, 1)`.
        loss: f64,
    },
}

impl FaultKind {
    /// Fraction of the shard's capacity still available under this
    /// fault (0 for a crash).
    pub fn capacity_fraction(&self) -> f64 {
        match *self {
            FaultKind::Crash => 0.0,
            FaultKind::Brownout { loss } => 1.0 - loss,
        }
    }
}

/// One contiguous fault window `[start, end)` on a shard.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FaultWindow {
    /// Window opens (inclusive).
    pub start: SimTime,
    /// Window closes (exclusive): the shard is healthy again at `end`.
    pub end: SimTime,
    /// What the window does to the shard.
    pub kind: FaultKind,
}

/// One homogeneous capacity segment of a shard's timeline: the horizon
/// `[0, end)` cut at every fault-window boundary.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Epoch {
    /// Segment start (inclusive).
    pub start: SimTime,
    /// Segment end (exclusive; the last epoch ends at the horizon).
    pub end: SimTime,
    /// The fault active throughout the segment (`None` = healthy).
    pub fault: Option<FaultKind>,
}

/// Cores remaining after losing a `loss` fraction, never below one
/// (a browned-out machine still has a scheduler to run).
pub fn effective_cores(cores: usize, loss: f64) -> usize {
    (((cores as f64) * (1.0 - loss)).floor() as usize).max(1)
}

/// A per-shard schedule of fault windows plus the failover retry knob.
///
/// Windows per shard are kept sorted and non-overlapping (enforced by
/// [`FaultPlan::with_window`]). The plan is pure data: queries like
/// [`FaultPlan::is_crashed`] are lookups, never samples.
#[derive(Clone, Debug, PartialEq)]
pub struct FaultPlan {
    windows: Vec<Vec<FaultWindow>>,
    retry_delay: SimDuration,
}

impl FaultPlan {
    /// Default delay before a stranded job is re-released to the
    /// dispatcher (models detection + re-submission latency).
    pub const DEFAULT_RETRY_DELAY: SimDuration = SimDuration::from_millis(10);

    /// The zero-fault plan: every shard healthy for the whole run. A
    /// cluster run under this plan is bitwise-identical to the
    /// fault-free path.
    pub fn none(shards: usize) -> Self {
        assert!(shards > 0, "a cluster needs at least one shard");
        FaultPlan {
            windows: vec![Vec::new(); shards],
            retry_delay: Self::DEFAULT_RETRY_DELAY,
        }
    }

    /// Builder: add one fault window to `shard`. Panics on an empty or
    /// out-of-range window, an overlap with an existing window on the
    /// same shard, or a brownout loss outside `(0, 1)`.
    pub fn with_window(mut self, shard: usize, window: FaultWindow) -> Self {
        assert!(shard < self.windows.len(), "shard {shard} out of range");
        assert!(window.start < window.end, "empty fault window");
        if let FaultKind::Brownout { loss } = window.kind {
            assert!(
                loss.is_finite() && loss > 0.0 && loss < 1.0,
                "brownout loss must be in (0, 1), got {loss}"
            );
        }
        let ws = &mut self.windows[shard];
        let pos = ws.partition_point(|w| w.start < window.start);
        if pos > 0 {
            assert!(ws[pos - 1].end <= window.start, "overlapping fault windows");
        }
        if pos < ws.len() {
            assert!(window.end <= ws[pos].start, "overlapping fault windows");
        }
        ws.insert(pos, window);
        self
    }

    /// Builder: how long after a crash strands a job before the
    /// dispatcher re-releases it.
    pub fn with_retry_delay(mut self, delay: SimDuration) -> Self {
        self.retry_delay = delay;
        self
    }

    /// Seeded random plan: per shard, alternate exponential healthy
    /// gaps (mean `mean_up_secs`) with exponential fault windows (mean
    /// `mean_down_secs`), each window a crash with probability
    /// `crash_fraction`, otherwise a brownout losing 25–75 % of
    /// capacity. Shard `i` draws from `split_seed(seed, i)`, so plans
    /// are reproducible per seed and re-seeding one shard leaves the
    /// others' windows untouched.
    ///
    /// # Panics
    ///
    /// Panics — in release builds too — on invalid parameters:
    /// `shards == 0`, non-positive (or NaN) mean up/down times, or a
    /// `crash_fraction` outside `[0, 1]`. Use
    /// [`FaultPlan::try_seeded`] to validate without panicking.
    pub fn seeded(
        shards: usize,
        horizon: SimTime,
        seed: u64,
        mean_up_secs: f64,
        mean_down_secs: f64,
        crash_fraction: f64,
    ) -> Self {
        Self::try_seeded(
            shards,
            horizon,
            seed,
            mean_up_secs,
            mean_down_secs,
            crash_fraction,
        )
        .unwrap_or_else(|e| panic!("{e}"))
    }

    /// [`FaultPlan::seeded`] with release-mode parameter validation
    /// returned as a `Result` instead of a panic — for callers fed by
    /// config files or CLI flags, where malformed input is an expected
    /// condition rather than a programming error.
    pub fn try_seeded(
        shards: usize,
        horizon: SimTime,
        seed: u64,
        mean_up_secs: f64,
        mean_down_secs: f64,
        crash_fraction: f64,
    ) -> Result<Self, String> {
        if shards == 0 {
            return Err("a cluster needs at least one shard".into());
        }
        // Compare via `partial_cmp` so NaN fails validation rather
        // than slipping through an inverted comparison.
        let positive = |x: f64| x.partial_cmp(&0.0) == Some(std::cmp::Ordering::Greater);
        if !positive(mean_up_secs) || !positive(mean_down_secs) {
            return Err(format!(
                "mean up/down times must be positive (got up={mean_up_secs}, \
                 down={mean_down_secs})"
            ));
        }
        if !(0.0..=1.0).contains(&crash_fraction) {
            return Err(format!(
                "crash_fraction must be in [0, 1] (got {crash_fraction})"
            ));
        }
        let mut plan = FaultPlan::none(shards);
        for shard in 0..shards {
            let mut rng = StdRng::seed_from_u64(split_seed(seed, shard as u64));
            let mut t = SimTime::ZERO;
            loop {
                let up = exp_draw(&mut rng, mean_up_secs);
                let down = exp_draw(&mut rng, mean_down_secs).max(0.001);
                let start = t + SimDuration::from_secs_f64(up);
                let end = start + SimDuration::from_secs_f64(down);
                if start >= horizon {
                    break;
                }
                let kind = if rng.gen::<f64>() < crash_fraction {
                    FaultKind::Crash
                } else {
                    FaultKind::Brownout {
                        loss: 0.25 + 0.5 * rng.gen::<f64>(),
                    }
                };
                if end > start {
                    plan = plan.with_window(shard, FaultWindow { start, end, kind });
                }
                t = end;
            }
        }
        Ok(plan)
    }

    /// Number of shards the plan covers.
    pub fn shards(&self) -> usize {
        self.windows.len()
    }

    /// The stranded-job retry delay.
    pub fn retry_delay(&self) -> SimDuration {
        self.retry_delay
    }

    /// True if any shard has any fault window.
    pub fn has_faults(&self) -> bool {
        self.windows.iter().any(|w| !w.is_empty())
    }

    /// This shard's fault windows, sorted by start, non-overlapping.
    pub fn windows(&self, shard: usize) -> &[FaultWindow] {
        &self.windows[shard]
    }

    /// The fault active on `shard` at instant `t`, if any.
    pub fn fault_at(&self, shard: usize, t: SimTime) -> Option<FaultKind> {
        let ws = &self.windows[shard];
        let pos = ws.partition_point(|w| w.start <= t);
        if pos > 0 && t < ws[pos - 1].end {
            Some(ws[pos - 1].kind)
        } else {
            None
        }
    }

    /// True when `shard` is inside a crash window at `t` (accepts no
    /// work).
    pub fn is_crashed(&self, shard: usize, t: SimTime) -> bool {
        matches!(self.fault_at(shard, t), Some(FaultKind::Crash))
    }

    /// Fraction of `shard`'s capacity available at `t` (1 when
    /// healthy, 0 when crashed).
    pub fn capacity_fraction(&self, shard: usize, t: SimTime) -> f64 {
        self.fault_at(shard, t)
            .map_or(1.0, |k| k.capacity_fraction())
    }

    /// Every crash-window opening, sorted by `(instant, shard)` — the
    /// event stream the dispatcher's stranding pass consumes.
    pub fn crash_starts(&self) -> Vec<(SimTime, usize)> {
        let mut out: Vec<(SimTime, usize)> = Vec::new();
        for (shard, ws) in self.windows.iter().enumerate() {
            for w in ws {
                if w.kind == FaultKind::Crash {
                    out.push((w.start, shard));
                }
            }
        }
        out.sort_by_key(|&(t, s)| (t, s));
        out
    }

    /// Cut `shard`'s timeline `[0, end)` at every window boundary into
    /// homogeneous [`Epoch`]s (healthy / browned-out / crashed), clipped
    /// to the horizon. A shard with no in-horizon windows yields the
    /// single healthy epoch `[0, end)` — the fault-free run.
    pub fn epochs(&self, shard: usize, end: SimTime) -> Vec<Epoch> {
        let mut out = Vec::new();
        let mut cursor = SimTime::ZERO;
        for w in &self.windows[shard] {
            if w.start >= end {
                break;
            }
            if cursor < w.start {
                out.push(Epoch {
                    start: cursor,
                    end: w.start,
                    fault: None,
                });
            }
            let wend = w.end.min(end);
            if cursor < wend {
                out.push(Epoch {
                    start: w.start.max(cursor),
                    end: wend,
                    fault: Some(w.kind),
                });
                cursor = wend;
            }
        }
        if cursor < end || out.is_empty() {
            out.push(Epoch {
                start: cursor,
                end,
                fault: None,
            });
        }
        out
    }
}

/// Exponential draw with the given mean (inverse-CDF of one uniform).
fn exp_draw(rng: &mut StdRng, mean: f64) -> f64 {
    let u: f64 = rng.gen();
    -mean * (1.0 - u).ln()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(x: u64) -> SimTime {
        SimTime::from_secs(x)
    }

    #[test]
    fn none_plan_is_fault_free() {
        let p = FaultPlan::none(4);
        assert!(!p.has_faults());
        assert_eq!(p.shards(), 4);
        for shard in 0..4 {
            assert!(!p.is_crashed(shard, s(1)));
            assert_eq!(p.capacity_fraction(shard, s(1)), 1.0);
            let e = p.epochs(shard, s(10));
            assert_eq!(e.len(), 1);
            assert_eq!(
                e[0],
                Epoch {
                    start: SimTime::ZERO,
                    end: s(10),
                    fault: None
                }
            );
        }
        assert!(p.crash_starts().is_empty());
    }

    #[test]
    fn window_queries_are_half_open() {
        let p = FaultPlan::none(2).with_window(
            1,
            FaultWindow {
                start: s(2),
                end: s(4),
                kind: FaultKind::Crash,
            },
        );
        assert!(!p.is_crashed(1, s(2) - SimDuration::from_micros(1)));
        assert!(p.is_crashed(1, s(2)));
        assert!(p.is_crashed(1, s(4) - SimDuration::from_micros(1)));
        assert!(!p.is_crashed(1, s(4)));
        assert!(!p.is_crashed(0, s(3)));
        assert_eq!(p.crash_starts(), vec![(s(2), 1)]);
    }

    #[test]
    fn brownout_capacity_fraction() {
        let p = FaultPlan::none(1).with_window(
            0,
            FaultWindow {
                start: s(1),
                end: s(3),
                kind: FaultKind::Brownout { loss: 0.5 },
            },
        );
        assert_eq!(p.capacity_fraction(0, s(0)), 1.0);
        assert!((p.capacity_fraction(0, s(2)) - 0.5).abs() < 1e-12);
        assert!(!p.is_crashed(0, s(2)), "brownout still accepts work");
    }

    #[test]
    fn epochs_cut_at_boundaries_and_clip_to_horizon() {
        let p = FaultPlan::none(1)
            .with_window(
                0,
                FaultWindow {
                    start: s(2),
                    end: s(3),
                    kind: FaultKind::Crash,
                },
            )
            .with_window(
                0,
                FaultWindow {
                    start: s(5),
                    end: s(20),
                    kind: FaultKind::Brownout { loss: 0.25 },
                },
            );
        let e = p.epochs(0, s(10));
        assert_eq!(e.len(), 4);
        assert_eq!(e[0].fault, None);
        assert_eq!(
            (e[1].start, e[1].end, e[1].fault),
            (s(2), s(3), Some(FaultKind::Crash))
        );
        assert_eq!(e[2].fault, None);
        assert_eq!(
            (e[3].start, e[3].end),
            (s(5), s(10)),
            "window past the horizon is clipped"
        );
        // Epochs tile the horizon contiguously.
        assert_eq!(e[0].start, SimTime::ZERO);
        for w in e.windows(2) {
            assert_eq!(w[0].end, w[1].start);
        }
        assert_eq!(e.last().unwrap().end, s(10));
    }

    #[test]
    fn effective_cores_floor_and_minimum() {
        assert_eq!(effective_cores(8, 0.5), 4);
        assert_eq!(effective_cores(8, 0.3), 5);
        assert_eq!(effective_cores(1, 0.9), 1);
        assert_eq!(effective_cores(4, 0.99), 1);
    }

    #[test]
    #[should_panic(expected = "overlapping")]
    fn overlapping_windows_rejected() {
        let _ = FaultPlan::none(1)
            .with_window(
                0,
                FaultWindow {
                    start: s(1),
                    end: s(3),
                    kind: FaultKind::Crash,
                },
            )
            .with_window(
                0,
                FaultWindow {
                    start: s(2),
                    end: s(4),
                    kind: FaultKind::Crash,
                },
            );
    }

    #[test]
    fn seeded_plans_are_reproducible_and_shard_independent() {
        let horizon = s(100);
        let a = FaultPlan::seeded(4, horizon, 7, 10.0, 2.0, 0.5);
        let b = FaultPlan::seeded(4, horizon, 7, 10.0, 2.0, 0.5);
        assert_eq!(a, b, "same seed, same plan");
        let c = FaultPlan::seeded(4, horizon, 8, 10.0, 2.0, 0.5);
        assert_ne!(a, c, "different seed reshuffles windows");
        assert!(a.has_faults(), "100 s at mtbf 10 s should fault");
        // Windows are sorted, non-overlapping, in-horizon starts.
        for shard in 0..4 {
            let ws = a.windows(shard);
            for w in ws {
                assert!(w.start < w.end);
                assert!(w.start < horizon);
                if let FaultKind::Brownout { loss } = w.kind {
                    assert!(loss > 0.0 && loss < 1.0);
                }
            }
            for pair in ws.windows(2) {
                assert!(pair[0].end <= pair[1].start);
            }
        }
        // Shards draw from split seeds: streams differ.
        assert_ne!(a.windows(0), a.windows(1));
    }

    #[test]
    fn try_seeded_validates_in_release_builds_too() {
        let horizon = s(100);
        // Valid parameters round-trip through the fallible constructor
        // and match the panicking one exactly.
        let ok = FaultPlan::try_seeded(2, horizon, 7, 10.0, 2.0, 0.5).unwrap();
        let direct = FaultPlan::seeded(2, horizon, 7, 10.0, 2.0, 0.5);
        assert_eq!(ok.windows(0), direct.windows(0));
        assert_eq!(ok.windows(1), direct.windows(1));

        // These run identically with and without debug assertions —
        // the checks are plain release-mode code, not debug_assert!s.
        assert!(FaultPlan::try_seeded(0, horizon, 7, 10.0, 2.0, 0.5).is_err());
        let e = FaultPlan::try_seeded(2, horizon, 7, 0.0, 2.0, 0.5).unwrap_err();
        assert!(e.contains("positive"), "{e}");
        let e = FaultPlan::try_seeded(2, horizon, 7, -1.0, 2.0, 0.5).unwrap_err();
        assert!(e.contains("positive"), "{e}");
        assert!(FaultPlan::try_seeded(2, horizon, 7, 10.0, -2.0, 0.5).is_err());
        // NaN means must fail, not slip through an inverted compare.
        assert!(FaultPlan::try_seeded(2, horizon, 7, f64::NAN, 2.0, 0.5).is_err());
        let e = FaultPlan::try_seeded(2, horizon, 7, 10.0, 2.0, 1.5).unwrap_err();
        assert!(e.contains("crash_fraction"), "{e}");
        assert!(FaultPlan::try_seeded(2, horizon, 7, 10.0, 2.0, -0.1).is_err());
        assert!(FaultPlan::try_seeded(2, horizon, 7, 10.0, 2.0, f64::NAN).is_err());
    }

    #[test]
    #[should_panic(expected = "crash_fraction")]
    fn seeded_panics_on_out_of_range_crash_fraction() {
        let _ = FaultPlan::seeded(2, s(10), 7, 10.0, 2.0, 2.0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn seeded_panics_on_non_positive_mean_up() {
        let _ = FaultPlan::seeded(2, s(10), 7, 0.0, 2.0, 0.5);
    }
}
