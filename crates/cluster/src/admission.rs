//! Overload protection for the cluster front end: admission control,
//! retry budgets, and request hedging.
//!
//! The paper's services are *best-effort*: under sustained overload the
//! right move is to degrade gracefully, not to blow every deadline at
//! once. PR 9's front end accepts every arrival unconditionally and
//! re-releases stranded jobs after one fixed delay forever; this module
//! adds the three classic overload-protection mechanisms as pure data
//! consumed by the dispatch pre-pass (`dispatch::dispatch_protected`):
//!
//! * [`AdmissionPolicy`] — turn hopeless work away at the door, before
//!   it costs routing state or shard capacity;
//! * [`RetryPolicy`] — bound how often and how eagerly a stranded job
//!   is re-released (max attempts, exponential backoff, seeded jitter);
//! * [`HedgePolicy`] — tail tolerance: dispatch a second copy of a
//!   slow job to another shard, first copy to finish wins.
//!
//! # Determinism contract
//!
//! Every decision these policies make is a function of the arrival
//! stream, the fault plan, and seeds fixed *before* the run — never of
//! wall-clock time, thread scheduling, or simulation results. Jitter is
//! drawn from a per-`(job, attempt)` stream derived with
//! [`split_seed`](crate::dispatch::split_seed), so one job's jitter
//! cannot perturb another's. [`OverloadPolicy::default`] — accept all,
//! unlimited flat-delay retries, no hedging — degenerates *by
//! construction* to the PR 9 dispatch path: the same branches run with
//! the same arithmetic, and reports are bitwise identical
//! (`tests/cluster_differential.rs` pins this across the routing ×
//! fault matrix).

use qes_core::time::SimDuration;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::dispatch::split_seed;

/// Decides, per *original* arrival (never retries or hedge copies),
/// whether the cluster accepts the job at all. Rejected jobs are
/// counted as `jobs_rejected` — a class distinct from the fault path's
/// `jobs_dropped` — and score zero quality against their full mass in
/// `ClusterReport::degraded_quality`.
#[derive(Clone, Debug, Default, PartialEq)]
pub enum AdmissionPolicy {
    /// Admit everything (the pre-overload behaviour; the default).
    #[default]
    AcceptAll,
    /// Deadline-aware admission: price the arrival on every eligible
    /// shard with the step-2 `probe_speed` (the same closed-form
    /// max-prefix-density the `LeastEnergy` router uses), cap the
    /// achievable completed fraction by the shard's effective capacity,
    /// and reject the job if even its *best* shard cannot achieve a
    /// quality ratio of at least `floor`.
    SlackFloor {
        /// Minimum achievable quality ratio (achievable quality over
        /// the job's max quality) in `[0, 1]`; jobs below it are
        /// rejected.
        floor: f64,
        /// One shard's aggregate compute capacity in GHz (e.g. cores ×
        /// nominal per-core speed, or
        /// `ClusterSpec::peak_capacity_ghz`). Scaled down by the fault
        /// plan's per-shard capacity fraction during brownouts.
        capacity_ghz: f64,
    },
    /// Per-shard in-flight demand cap with hysteresis, fed by the same
    /// pending-demand feedback `RoutingPolicy::Feedback` reads: a shard
    /// starts shedding when its in-flight demand reaches `cap` and
    /// resumes accepting once it drains to `resume`. An arrival is
    /// rejected only when *every* eligible shard is shedding.
    Backpressure {
        /// In-flight demand (processing units) at which a shard starts
        /// shedding.
        cap: f64,
        /// Demand level at which a shedding shard resumes (must be
        /// ≤ `cap`; the gap is the hysteresis band).
        resume: f64,
    },
}

impl AdmissionPolicy {
    /// Stable lowercase label for report keys, figure rows, and the
    /// `admission_reject` event's `arg2`.
    pub fn label(&self) -> &'static str {
        match self {
            AdmissionPolicy::AcceptAll => "accept-all",
            AdmissionPolicy::SlackFloor { .. } => "slack-floor",
            AdmissionPolicy::Backpressure { .. } => "backpressure",
        }
    }
}

/// Retry budget and backoff schedule for stranded jobs.
///
/// Attempt `k` (1-based: the first re-release is attempt 1) of job `j`
/// is delayed by
///
/// ```text
/// delay(k) = min(base · backoff^(k-1), max_delay) · (1 + jitter · u_{j,k})
/// ```
///
/// where `u_{j,k} ∈ [0, 1)` is drawn from the seeded per-(job, attempt)
/// stream. With `backoff == 1` and `jitter == 0` (the default) the
/// computation short-circuits to `base` *exactly* — no float round
/// trip — so the default policy reproduces PR 9's fixed-delay
/// arithmetic bit for bit. Once a job has used `max_attempts`
/// re-releases (or its delayed release lands past its deadline or the
/// horizon), it gives up cleanly into `jobs_dropped`.
#[derive(Clone, Debug, PartialEq)]
pub struct RetryPolicy {
    /// Maximum re-releases per job (`u32::MAX` = unlimited, the PR 9
    /// behaviour).
    pub max_attempts: u32,
    /// First-attempt delay; `None` uses the fault plan's
    /// `retry_delay()` (the PR 9 knob).
    pub base_delay: Option<SimDuration>,
    /// Multiplicative backoff per attempt (`1.0` = flat).
    pub backoff: f64,
    /// Upper clamp on the un-jittered delay.
    pub max_delay: SimDuration,
    /// Jitter fraction in `[0, 1)`: attempt delays stretch by up to
    /// `jitter × delay`, decorrelating retry storms deterministically.
    pub jitter: f64,
    /// Base seed of the jitter streams (split per job and attempt).
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: u32::MAX,
            base_delay: None,
            backoff: 1.0,
            max_delay: SimDuration::from_secs(3600),
            jitter: 0.0,
            seed: 0,
        }
    }
}

impl RetryPolicy {
    /// A bounded exponential-backoff schedule: at most `max_attempts`
    /// re-releases, doubling from `base` up to 16× base, no jitter.
    pub fn exponential(max_attempts: u32, base: SimDuration) -> Self {
        RetryPolicy {
            max_attempts,
            base_delay: Some(base),
            backoff: 2.0,
            max_delay: SimDuration::from_micros(base.as_micros().saturating_mul(16)),
            jitter: 0.0,
            seed: 0,
        }
    }

    /// Builder: seeded jitter fraction.
    pub fn with_jitter(mut self, jitter: f64, seed: u64) -> Self {
        assert!(
            (0.0..1.0).contains(&jitter),
            "jitter must be in [0, 1), got {jitter}"
        );
        self.jitter = jitter;
        self.seed = seed;
        self
    }

    /// The delay before re-release number `attempt` (1-based) of job
    /// `job_id`. `default_delay` is the fault plan's retry delay, used
    /// when `base_delay` is `None`.
    pub fn delay_for(&self, attempt: u32, default_delay: SimDuration, job_id: u32) -> SimDuration {
        let base = self.base_delay.unwrap_or(default_delay);
        if self.backoff == 1.0 && self.jitter == 0.0 {
            // The degenerate schedule must reproduce PR 9's fixed-delay
            // arithmetic exactly: return the base duration untouched.
            return base;
        }
        let exp = self.backoff.powi(attempt.saturating_sub(1).min(63) as i32);
        let mut delay_us = (base.as_micros() as f64 * exp).min(self.max_delay.as_micros() as f64);
        if self.jitter > 0.0 {
            // One fresh stream per (job, attempt): sampled on demand but
            // fully determined before the run by (seed, job, attempt).
            let mut rng = StdRng::seed_from_u64(split_seed(
                split_seed(self.seed, job_id as u64),
                attempt as u64,
            ));
            let u: f64 = rng.gen();
            delay_us *= 1.0 + self.jitter * u;
        }
        SimDuration::from_micros((delay_us.round() as u64).max(1))
    }
}

/// When (if ever) the dispatcher hedges a slow job with a second copy.
#[derive(Clone, Debug, Default, PartialEq)]
pub enum HedgePolicy {
    /// Never hedge (the default).
    #[default]
    Disabled,
    /// Dispatch a hedge copy once `fraction` of the job's
    /// release-to-deadline slack has elapsed without the primary
    /// settling, to the next-best healthy shard (lowest pending-demand
    /// ÷ capacity score, excluding the primary's shard). First copy to
    /// finish wins; the loser's work is charged to energy but not
    /// quality.
    SlackFraction {
        /// Elapsed-slack fraction in `(0, 1)` that triggers the hedge.
        fraction: f64,
    },
}

impl HedgePolicy {
    /// True when this policy never dispatches hedges.
    pub fn is_disabled(&self) -> bool {
        matches!(self, HedgePolicy::Disabled)
    }

    /// Stable lowercase label for report keys and figure rows.
    pub fn label(&self) -> &'static str {
        match self {
            HedgePolicy::Disabled => "no-hedge",
            HedgePolicy::SlackFraction { .. } => "slack-fraction",
        }
    }
}

/// The full overload-protection configuration of a cluster front end.
///
/// The default — [`AdmissionPolicy::AcceptAll`], default
/// [`RetryPolicy`], [`HedgePolicy::Disabled`] — is bitwise-identical to
/// the PR 9 dispatch path by construction.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct OverloadPolicy {
    /// Who gets in.
    pub admission: AdmissionPolicy,
    /// How stranded jobs are re-released.
    pub retry: RetryPolicy,
    /// Whether slow jobs are hedged.
    pub hedge: HedgePolicy,
}

impl OverloadPolicy {
    /// True when every mechanism is at its degenerate default, i.e. the
    /// dispatch pre-pass is guaranteed to reproduce the PR 9 path.
    pub fn is_degenerate(&self) -> bool {
        self.admission == AdmissionPolicy::AcceptAll
            && self.retry == RetryPolicy::default()
            && self.hedge.is_disabled()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_policy_is_degenerate() {
        let p = OverloadPolicy::default();
        assert!(p.is_degenerate());
        assert_eq!(p.admission.label(), "accept-all");
        assert_eq!(p.hedge.label(), "no-hedge");
    }

    #[test]
    fn default_retry_delay_is_the_plan_delay_exactly() {
        let p = RetryPolicy::default();
        let plan_delay = SimDuration::from_millis(10);
        for attempt in [1u32, 2, 7, 1000] {
            assert_eq!(p.delay_for(attempt, plan_delay, 3), plan_delay);
        }
        // Odd microsecond counts survive untouched (no float round trip).
        let odd = SimDuration::from_micros(12_345);
        assert_eq!(p.delay_for(5, odd, 99), odd);
    }

    #[test]
    fn exponential_backoff_doubles_and_clamps() {
        let base = SimDuration::from_millis(10);
        let p = RetryPolicy::exponential(8, base);
        let d = |k| p.delay_for(k, SimDuration::ZERO, 0).as_micros();
        assert_eq!(d(1), 10_000);
        assert_eq!(d(2), 20_000);
        assert_eq!(d(3), 40_000);
        assert_eq!(d(5), 160_000);
        // 2^(k-1) ≥ 16 clamps at max_delay = 16 × base.
        assert_eq!(d(6), 160_000);
        assert_eq!(d(40), 160_000);
    }

    #[test]
    fn jitter_is_deterministic_and_bounded() {
        let base = SimDuration::from_millis(10);
        let p = RetryPolicy::exponential(8, base).with_jitter(0.5, 42);
        let a = p.delay_for(1, SimDuration::ZERO, 7);
        let b = p.delay_for(1, SimDuration::ZERO, 7);
        assert_eq!(a, b, "same (job, attempt) stream, same jitter");
        // Bounded by [delay, delay * 1.5).
        assert!(a >= base && a < SimDuration::from_micros(15_000), "{a:?}");
        // Different jobs and different attempts draw different streams.
        let c = p.delay_for(1, SimDuration::ZERO, 8);
        let d = p.delay_for(2, SimDuration::ZERO, 7);
        assert_ne!(a, c);
        assert_ne!(a.as_micros() * 2, d.as_micros());
    }

    #[test]
    fn retry_gives_up_after_max_attempts() {
        // The budget itself is enforced by the dispatcher; here we only
        // pin the policy data contract.
        let p = RetryPolicy::exponential(2, SimDuration::from_millis(5));
        assert_eq!(p.max_attempts, 2);
    }

    #[test]
    #[should_panic(expected = "jitter must be in [0, 1)")]
    fn out_of_range_jitter_is_rejected() {
        let _ = RetryPolicy::default().with_jitter(1.5, 0);
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(
            AdmissionPolicy::SlackFloor {
                floor: 0.5,
                capacity_ghz: 16.0
            }
            .label(),
            "slack-floor"
        );
        assert_eq!(
            AdmissionPolicy::Backpressure {
                cap: 100.0,
                resume: 50.0
            }
            .label(),
            "backpressure"
        );
        assert_eq!(
            HedgePolicy::SlackFraction { fraction: 0.5 }.label(),
            "slack-fraction"
        );
    }
}
