//! Regression fitting of the power model (paper §V-G).
//!
//! The paper fits `P = a·s^β + b` to measured ⟨speed, power⟩ pairs. The
//! model is linear in `(a, b)` once `β` is fixed, so we solve the 2×2
//! normal equations per candidate `β` and golden-section search the
//! one-dimensional residual over `β`.

use qes_core::power::PolynomialPower;

/// Outcome of a power-model fit.
#[derive(Clone, Copy, Debug)]
pub struct FitReport {
    /// The fitted model.
    pub model: PolynomialPower,
    /// Sum of squared residuals at the optimum.
    pub sse: f64,
}

/// Sum of squared residuals and the best `(a, b)` for a fixed `β`.
fn fit_linear(pairs: &[(f64, f64)], beta: f64) -> (f64, f64, f64) {
    // Least squares for p ≈ a·x + b with x = s^β.
    let n = pairs.len() as f64;
    let (mut sx, mut sy, mut sxx, mut sxy) = (0.0, 0.0, 0.0, 0.0);
    for &(s, p) in pairs {
        let x = s.powf(beta);
        sx += x;
        sy += p;
        sxx += x * x;
        sxy += x * p;
    }
    let det = n * sxx - sx * sx;
    if det.abs() < 1e-12 {
        return (0.0, 0.0, f64::INFINITY);
    }
    let a = (n * sxy - sx * sy) / det;
    let b = (sy - a * sx) / n;
    let sse: f64 = pairs
        .iter()
        .map(|&(s, p)| {
            let e = a * s.powf(beta) + b - p;
            e * e
        })
        .sum();
    (a, b, sse)
}

/// Fit `P = a·s^β + b` to ⟨speed GHz, total power W⟩ pairs.
///
/// Requires at least three pairs (three unknowns). `β` is searched over
/// `(1, 4]` — the physically meaningful convex range.
pub fn fit_power_model(pairs: &[(f64, f64)]) -> Option<FitReport> {
    if pairs.len() < 3 {
        return None;
    }
    // Golden-section search on the SSE over β.
    let (mut lo, mut hi) = (1.0001f64, 4.0f64);
    let phi = (5.0f64.sqrt() - 1.0) / 2.0;
    let sse_at = |beta: f64| fit_linear(pairs, beta).2;
    let (mut x1, mut x2) = (hi - phi * (hi - lo), lo + phi * (hi - lo));
    let (mut f1, mut f2) = (sse_at(x1), sse_at(x2));
    for _ in 0..200 {
        if f1 < f2 {
            hi = x2;
            x2 = x1;
            f2 = f1;
            x1 = hi - phi * (hi - lo);
            f1 = sse_at(x1);
        } else {
            lo = x1;
            x1 = x2;
            f1 = f2;
            x2 = lo + phi * (hi - lo);
            f2 = sse_at(x2);
        }
        if hi - lo < 1e-10 {
            break;
        }
    }
    let beta = 0.5 * (lo + hi);
    let (a, b, sse) = fit_linear(pairs, beta);
    if !a.is_finite() || a <= 0.0 || !b.is_finite() {
        return None;
    }
    let model = PolynomialPower::new(a, beta, b.max(0.0)).ok()?;
    Some(FitReport { model, sse })
}

/// The Opteron 2380 measurement table of §V-G, as ⟨speed, power⟩ pairs.
pub fn opteron_pairs() -> Vec<(f64, f64)> {
    vec![(0.8, 11.06), (1.3, 13.275), (1.8, 16.85), (2.5, 22.69)]
}

#[cfg(test)]
mod tests {
    use super::*;
    use qes_core::power::PowerModel;

    #[test]
    fn reproduces_paper_fit_on_opteron_table() {
        // §V-G: "we can get a = 2.6075, β = 1.791 and b = 9.2562".
        let fit = fit_power_model(&opteron_pairs()).unwrap();
        let m = fit.model;
        assert!((m.beta - 1.791).abs() < 0.02, "beta {}", m.beta);
        assert!((m.a - 2.6075).abs() < 0.05, "a {}", m.a);
        assert!((m.b - 9.2562).abs() < 0.10, "b {}", m.b);
        // The table is not exactly polynomial: the paper's own fit leaves
        // a ~0.15 W residual at 1.3 GHz. SSE ≈ 0.042.
        assert!(fit.sse < 0.1, "sse {}", fit.sse);
    }

    #[test]
    fn recovers_known_model_exactly() {
        let truth = PolynomialPower {
            a: 5.0,
            beta: 2.0,
            b: 3.0,
        };
        let pairs: Vec<(f64, f64)> = [0.5, 1.0, 1.5, 2.0, 2.5, 3.0]
            .iter()
            .map(|&s| (s, truth.power(s)))
            .collect();
        let fit = fit_power_model(&pairs).unwrap();
        assert!((fit.model.a - 5.0).abs() < 1e-4);
        assert!((fit.model.beta - 2.0).abs() < 1e-4);
        assert!((fit.model.b - 3.0).abs() < 1e-4);
        assert!(fit.sse < 1e-8);
    }

    #[test]
    fn fitted_model_predicts_table_points() {
        let fit = fit_power_model(&opteron_pairs()).unwrap();
        for (s, p) in opteron_pairs() {
            let pred = fit.model.power(s);
            assert!((pred - p).abs() < 0.2, "at {s} GHz: {pred} vs {p}");
        }
    }

    #[test]
    fn too_few_points_rejected() {
        assert!(fit_power_model(&[(1.0, 5.0), (2.0, 9.0)]).is_none());
        assert!(fit_power_model(&[]).is_none());
    }

    #[test]
    fn degenerate_identical_speeds_rejected() {
        // All samples at one speed: the normal equations are singular.
        let pairs = vec![(1.0, 5.0), (1.0, 5.1), (1.0, 4.9)];
        assert!(fit_power_model(&pairs).is_none());
    }

    #[test]
    fn noisy_fit_stays_close() {
        let truth = PolynomialPower::PAPER_REAL;
        // ±1 % deterministic "noise".
        let noise = [1.01, 0.99, 1.005, 0.995, 1.008, 0.992];
        let pairs: Vec<(f64, f64)> = [0.8, 1.0, 1.3, 1.8, 2.2, 2.5]
            .iter()
            .zip(noise.iter())
            .map(|(&s, &k)| (s, truth.power(s) * k))
            .collect();
        let fit = fit_power_model(&pairs).unwrap();
        assert!((fit.model.beta - truth.beta).abs() < 0.25);
        for &(s, _) in &pairs {
            let rel = (fit.model.power(s) - truth.power(s)).abs() / truth.power(s);
            assert!(rel < 0.03, "rel err {rel} at {s}");
        }
    }
}
