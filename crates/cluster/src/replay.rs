//! Trace replay on the cluster: exact vs measured energy (Fig. 11).
//!
//! The §V-G experiment takes a discrete-speed DES schedule from the
//! simulator and runs it on the cluster, comparing the simulator's energy
//! prediction against the meter's reading. Here both sides consume the
//! same recorded [`SimTrace`]:
//!
//! * [`exact_energy`] integrates the trace analytically under the
//!   cluster's speed/power table — the *simulation* curve of Fig. 11;
//! * [`measured_energy`] "runs" the trace and lets a [`PowerMeter`]
//!   sample total cluster power — the *real system* curve.

use qes_core::time::SimTime;
use qes_sim::trace::SimTrace;

use crate::meter::PowerMeter;
use crate::spec::ClusterSpec;

/// Exact energy (J) of executing `trace` on `cluster` over `[0, end)`:
/// per-core table power while a slice runs, idle power otherwise.
pub fn exact_energy(trace: &SimTrace, cluster: &ClusterSpec, end: SimTime) -> f64 {
    exact_energy_window(trace, cluster, SimTime::ZERO, end)
}

/// Exact energy (J) over the replay window `[start, end)` only. Slices
/// straddling a boundary contribute exactly the part inside the window,
/// and the idle floor covers only the window's span — so adjacent
/// windows partition [`exact_energy`] with no double counting.
pub fn exact_energy_window(
    trace: &SimTrace,
    cluster: &ClusterSpec,
    start: SimTime,
    end: SimTime,
) -> f64 {
    let horizon = end.saturating_since(start).as_secs_f64();
    let mut busy_energy = 0.0;
    let mut busy_secs = 0.0;
    for s in trace.slices() {
        if s.start >= end {
            continue;
        }
        let from = s.start.max(start);
        let stop = s.end.min(end);
        let secs = stop.saturating_since(from).as_secs_f64();
        busy_energy += cluster.core_power(s.speed) * secs;
        busy_secs += secs;
    }
    let idle_secs = (cluster.total_cores() as f64 * horizon - busy_secs).max(0.0);
    busy_energy + cluster.idle_power * idle_secs
}

/// Measured energy (J): the meter samples total cluster power while the
/// trace executes.
pub fn measured_energy(
    trace: &SimTrace,
    cluster: &ClusterSpec,
    end: SimTime,
    meter: &PowerMeter,
) -> f64 {
    measured_energy_window(trace, cluster, SimTime::ZERO, end, meter)
}

/// Measured energy (J) over the replay window `[start, end)`: the meter
/// free-runs from `t = 0` (grid and noise stream anchored there, see
/// [`PowerMeter::measure_window`]) and only the in-window part of each
/// sample interval is integrated.
pub fn measured_energy_window(
    trace: &SimTrace,
    cluster: &ClusterSpec,
    start: SimTime,
    end: SimTime,
    meter: &PowerMeter,
) -> f64 {
    // Pre-index slices per core, sorted by start, for O(log n) sampling.
    let mut per_core: Vec<Vec<(SimTime, SimTime, f64)>> = vec![Vec::new(); cluster.total_cores()];
    for s in trace.slices() {
        if s.core < per_core.len() {
            per_core[s.core].push((s.start, s.end, s.speed));
        }
    }
    for v in &mut per_core {
        v.sort_by_key(|&(start, _, _)| start);
    }
    let speed_at = |slices: &[(SimTime, SimTime, f64)], t: SimTime| -> f64 {
        let idx = slices.partition_point(|&(_, e, _)| e <= t);
        match slices.get(idx) {
            Some(&(s, _, sp)) if s <= t => sp,
            _ => 0.0,
        }
    };
    meter.measure_window(start, end, |t| {
        per_core
            .iter()
            .map(|slices| cluster.core_power(speed_at(slices, t)))
            .sum()
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use qes_core::job::JobId;
    use qes_sim::trace::TraceSlice;

    fn ms(x: u64) -> SimTime {
        SimTime::from_millis(x)
    }

    fn trace_one_slice(core: usize, a: u64, b: u64, speed: f64) -> SimTrace {
        let mut t = SimTrace::default();
        t.push(TraceSlice {
            core,
            job: JobId(0),
            start: ms(a),
            end: ms(b),
            speed,
        });
        t
    }

    fn tiny_cluster() -> ClusterSpec {
        ClusterSpec {
            nodes: 1,
            cores_per_node: 2,
            ..ClusterSpec::paper_validation()
        }
    }

    #[test]
    fn exact_energy_accounts_busy_and_idle() {
        let c = tiny_cluster();
        // Core 0 runs 1 s at 2.5 GHz (22.69 W); 2 cores × 2 s horizon.
        let t = trace_one_slice(0, 0, 1000, 2.5);
        let e = exact_energy(&t, &c, SimTime::from_secs(2));
        // Busy: 22.69. Idle: (2·2 − 1) s × 9.2562.
        let expect = 22.69 + 3.0 * 9.2562;
        assert!((e - expect).abs() < 1e-9, "{e} vs {expect}");
    }

    #[test]
    fn exact_energy_clips_at_horizon() {
        let c = tiny_cluster();
        let t = trace_one_slice(0, 0, 5000, 2.5);
        let e = exact_energy(&t, &c, SimTime::from_secs(1));
        let expect = 22.69 + 1.0 * 9.2562; // 1 s busy + 1 core-s idle
        assert!((e - expect).abs() < 1e-9);
    }

    #[test]
    fn noiseless_measurement_matches_exact() {
        let c = tiny_cluster();
        let mut t = SimTrace::default();
        t.push(TraceSlice {
            core: 0,
            job: JobId(0),
            start: ms(0),
            end: ms(1500),
            speed: 1.8,
        });
        t.push(TraceSlice {
            core: 1,
            job: JobId(1),
            start: ms(500),
            end: ms(2000),
            speed: 0.8,
        });
        let end = SimTime::from_secs(2);
        let meter = PowerMeter {
            sample_period: qes_core::SimDuration::from_millis(1),
            noise_std: 0.0,
            overhead: 0.0,
            seed: 0,
        };
        let exact = exact_energy(&t, &c, end);
        let measured = measured_energy(&t, &c, end, &meter);
        assert!(
            (measured - exact).abs() / exact < 0.01,
            "measured {measured} vs exact {exact}"
        );
    }

    #[test]
    fn overhead_makes_measured_exceed_exact() {
        let c = tiny_cluster();
        let t = trace_one_slice(0, 0, 1000, 1.3);
        let end = SimTime::from_secs(1);
        let meter = PowerMeter {
            noise_std: 0.0,
            overhead: 0.03,
            ..PowerMeter::default()
        };
        let exact = exact_energy(&t, &c, end);
        let measured = measured_energy(&t, &c, end, &meter);
        assert!(measured > exact);
        assert!((measured / exact - 1.03).abs() < 0.01);
    }

    #[test]
    fn empty_trace_is_pure_idle() {
        let c = tiny_cluster();
        let e = exact_energy(&SimTrace::default(), &c, SimTime::from_secs(1));
        assert!((e - 2.0 * 9.2562).abs() < 1e-9);
    }

    #[test]
    fn exact_window_clips_slices_at_both_boundaries() {
        let c = tiny_cluster();
        // A 2 s slice at 2.5 GHz; the window [500, 1500) ms sees 1 s of it.
        let t = trace_one_slice(0, 0, 2000, 2.5);
        let e = exact_energy_window(&t, &c, ms(500), ms(1500));
        // Busy: 22.69 × 1 s. Idle: (2 cores × 1 s − 1 busy core-s) × 9.2562.
        let expect = 22.69 + 1.0 * 9.2562;
        assert!((e - expect).abs() < 1e-9, "{e} vs {expect}");
        // Adjacent windows partition the full-range integral.
        let whole = exact_energy(&t, &c, SimTime::from_secs(3));
        let parts = exact_energy_window(&t, &c, SimTime::ZERO, ms(700))
            + exact_energy_window(&t, &c, ms(700), ms(2100))
            + exact_energy_window(&t, &c, ms(2100), SimTime::from_secs(3));
        assert!((whole - parts).abs() < 1e-9, "{whole} vs {parts}");
    }

    #[test]
    fn measured_window_clips_partial_samples_to_closed_form() {
        let c = tiny_cluster();
        // Empty trace: both cores idle at 9.2562 W, so total power is a
        // constant 18.5124 W and the integral has a closed form. The
        // 300 ms sampling grid is cut mid-sample at 100 ms: the window
        // [100, 1000) ms must integrate 0.9 s, not 1.0 s.
        let meter = PowerMeter {
            sample_period: qes_core::SimDuration::from_millis(300),
            noise_std: 0.0,
            overhead: 0.0,
            seed: 0,
        };
        let e = measured_energy_window(&SimTrace::default(), &c, ms(100), ms(1000), &meter);
        let expect = 0.9 * 2.0 * 9.2562;
        assert!((e - expect).abs() < 1e-9, "{e} vs {expect}");
        let exact = exact_energy_window(&SimTrace::default(), &c, ms(100), ms(1000));
        assert!((e - exact).abs() < 1e-9, "{e} vs exact {exact}");
    }

    #[test]
    fn out_of_range_core_ignored_in_measurement() {
        let c = tiny_cluster();
        let t = trace_one_slice(99, 0, 1000, 2.5);
        let meter = PowerMeter {
            noise_std: 0.0,
            overhead: 0.0,
            ..PowerMeter::default()
        };
        // Slice on a nonexistent core contributes nothing beyond idle.
        let measured = measured_energy(&t, &c, SimTime::from_secs(1), &meter);
        assert!((measured - 2.0 * 9.2562).abs() < 1e-6);
    }
}
