//! Per-node power accounting and meter failure modes.
//!
//! PowerPack instruments each *node* (its PDU line) separately; the
//! cluster-level energy is the sum of node meters. That structure matters
//! for two reasons the flat model hides:
//!
//! * **breakdowns** — per-node energy shows whether load (and heat) is
//!   spread across chassis, and how much of each node's draw is static;
//! * **failure modes** — a node meter that drops samples silently
//!   under-counts total energy. [`NodeMeterArray`] models per-node meters
//!   with an optional dropout probability so validation code can check
//!   how robust a comparison is to instrumentation faults.

use qes_core::time::SimTime;
use qes_sim::trace::SimTrace;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::fault::{effective_cores, FaultKind, FaultPlan};
use crate::meter::PowerMeter;
use crate::spec::ClusterSpec;

/// Which node hosts a core under the spec's contiguous layout.
pub fn node_of_core(spec: &ClusterSpec, core: usize) -> usize {
    core / spec.cores_per_node
}

/// Energy breakdown of one node over a replayed trace.
#[derive(Clone, Debug, Default)]
pub struct NodeEnergy {
    /// Node index.
    pub node: usize,
    /// Energy attributable to executing slices above idle (J).
    pub active_joules: f64,
    /// Idle/static floor energy (J).
    pub idle_joules: f64,
    /// Busy core-seconds on this node.
    pub busy_core_secs: f64,
}

impl NodeEnergy {
    /// Total node energy.
    pub fn total(&self) -> f64 {
        self.active_joules + self.idle_joules
    }
}

/// Exact per-node energy breakdown of a trace over `[0, end)`.
pub fn node_breakdown(trace: &SimTrace, spec: &ClusterSpec, end: SimTime) -> Vec<NodeEnergy> {
    let mut nodes: Vec<NodeEnergy> = (0..spec.nodes)
        .map(|node| NodeEnergy {
            node,
            ..NodeEnergy::default()
        })
        .collect();
    // Idle floor: every powered core draws the idle power all the time;
    // executing a slice *adds* (table − idle) on top.
    let horizon = end.as_secs_f64();
    for n in &mut nodes {
        n.idle_joules = spec.idle_power * spec.cores_per_node as f64 * horizon;
    }
    for s in trace.slices() {
        if s.start >= end {
            continue;
        }
        let node = node_of_core(spec, s.core);
        if node >= nodes.len() {
            continue;
        }
        let secs = s.end.min(end).saturating_since(s.start).as_secs_f64();
        let extra = (spec.core_power(s.speed) - spec.idle_power).max(0.0);
        nodes[node].active_joules += extra * secs;
        nodes[node].busy_core_secs += secs;
    }
    nodes
}

/// [`node_breakdown`] under a per-node [`FaultPlan`] (one plan "shard"
/// per node): a crashed node draws nothing during its outage windows,
/// and a browned-out node only pays the idle floor for the cores that
/// stay powered. Active slices are charged as recorded — a faulted
/// node's shard runs fewer (or no) slices, so the reduction shows up in
/// the trace itself. With [`FaultPlan::none`] this is exactly
/// [`node_breakdown`].
pub fn node_breakdown_with_outages(
    trace: &SimTrace,
    spec: &ClusterSpec,
    end: SimTime,
    plan: &FaultPlan,
) -> Vec<NodeEnergy> {
    assert_eq!(plan.shards(), spec.nodes, "one fault lane per node");
    let mut nodes = node_breakdown(trace, spec, end);
    for (node, n) in nodes.iter_mut().enumerate() {
        for w in plan.windows(node) {
            let lo = w.start.min(end);
            let hi = w.end.min(end);
            let secs = hi.saturating_since(lo).as_secs_f64();
            let cores_off = match w.kind {
                FaultKind::Crash => spec.cores_per_node,
                FaultKind::Brownout { loss } => {
                    spec.cores_per_node - effective_cores(spec.cores_per_node, loss)
                }
            };
            n.idle_joules -= spec.idle_power * cores_off as f64 * secs;
        }
        n.idle_joules = n.idle_joules.max(0.0);
    }
    nodes
}

/// An array of per-node meters, each sampling its node's power, with an
/// optional per-sample dropout probability (a dropped sample contributes
/// zero — the silent under-count real deployments suffer).
#[derive(Clone, Debug)]
pub struct NodeMeterArray {
    /// The per-node meter template (period, noise, overhead; the seed is
    /// offset per node).
    pub meter: PowerMeter,
    /// Probability each sample is silently lost.
    pub dropout: f64,
}

impl NodeMeterArray {
    /// All nodes healthy.
    pub fn healthy(meter: PowerMeter) -> Self {
        NodeMeterArray {
            meter,
            dropout: 0.0,
        }
    }

    /// Measure the trace per node; returns per-node energies.
    pub fn measure(&self, trace: &SimTrace, spec: &ClusterSpec, end: SimTime) -> Vec<f64> {
        self.measure_observed(trace, spec, end, &mut qes_core::NoopObserver)
    }

    /// [`measure`](Self::measure) with an observer: each node's meter
    /// reports its perturbed power samples as
    /// [`PowerSample`](qes_core::obs::Event::PowerSample) events tagged
    /// with the node index. Identical energies to the plain call — the
    /// hook only *reads* the samples.
    pub fn measure_observed<O: qes_core::Observer>(
        &self,
        trace: &SimTrace,
        spec: &ClusterSpec,
        end: SimTime,
        obs: &mut O,
    ) -> Vec<f64> {
        // Index slices per node.
        let mut per_node: Vec<Vec<(SimTime, SimTime, f64)>> = vec![Vec::new(); spec.nodes];
        for s in trace.slices() {
            let node = node_of_core(spec, s.core);
            if node < per_node.len() {
                per_node[node].push((s.start, s.end, s.speed));
            }
        }
        for v in &mut per_node {
            v.sort_by_key(|&(a, _, _)| a);
        }
        (0..spec.nodes)
            .map(|node| {
                let meter = PowerMeter {
                    seed: self.meter.seed.wrapping_add(node as u64 + 1),
                    ..self.meter.clone()
                };
                let mut drop_rng = StdRng::seed_from_u64(
                    self.meter.seed.wrapping_mul(31).wrapping_add(node as u64),
                );
                let slices = &per_node[node];
                meter.measure_window_observed(
                    node as u32,
                    SimTime::ZERO,
                    end,
                    |t| {
                        if self.dropout > 0.0 && drop_rng.gen::<f64>() < self.dropout {
                            return 0.0; // sample lost
                        }
                        // Count busy cores and their draw; idle cores draw the
                        // static floor.
                        let busy: Vec<f64> = slices
                            .iter()
                            .filter(|&&(a, b, _)| a <= t && t < b)
                            .map(|&(_, _, sp)| spec.core_power(sp))
                            .collect();
                        let idle_cores = spec.cores_per_node.saturating_sub(busy.len());
                        busy.iter().sum::<f64>() + idle_cores as f64 * spec.idle_power
                    },
                    obs,
                )
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qes_core::job::JobId;
    use qes_sim::trace::TraceSlice;

    fn ms(x: u64) -> SimTime {
        SimTime::from_millis(x)
    }

    fn spec() -> ClusterSpec {
        ClusterSpec {
            nodes: 2,
            cores_per_node: 2,
            ..ClusterSpec::paper_validation()
        }
    }

    fn trace() -> SimTrace {
        let mut t = SimTrace::default();
        // Node 0 (cores 0–1): one busy second at 2.5 GHz.
        t.push(TraceSlice {
            core: 0,
            job: JobId(0),
            start: ms(0),
            end: ms(1000),
            speed: 2.5,
        });
        // Node 1 (cores 2–3): half a second at 0.8 GHz.
        t.push(TraceSlice {
            core: 2,
            job: JobId(1),
            start: ms(0),
            end: ms(500),
            speed: 0.8,
        });
        t
    }

    #[test]
    fn core_to_node_layout() {
        let s = spec();
        assert_eq!(node_of_core(&s, 0), 0);
        assert_eq!(node_of_core(&s, 1), 0);
        assert_eq!(node_of_core(&s, 2), 1);
        assert_eq!(node_of_core(&s, 3), 1);
    }

    #[test]
    fn breakdown_accounts_active_and_idle() {
        let s = spec();
        let nodes = node_breakdown(&trace(), &s, SimTime::from_secs(1));
        // Node 0: idle floor 2 cores × 9.2562 + (22.69 − 9.2562) × 1 s.
        let idle = 2.0 * 9.2562;
        assert!((nodes[0].idle_joules - idle).abs() < 1e-9);
        assert!((nodes[0].active_joules - (22.69 - 9.2562)).abs() < 1e-9);
        assert!((nodes[0].busy_core_secs - 1.0).abs() < 1e-12);
        // Node 1: (11.06 − 9.2562) × 0.5 s of active draw.
        assert!((nodes[1].active_joules - 0.5 * (11.06 - 9.2562)).abs() < 1e-9);
        // Totals are positive and node 0 > node 1.
        assert!(nodes[0].total() > nodes[1].total());
    }

    #[test]
    fn breakdown_matches_flat_exact_energy() {
        use crate::replay::exact_energy;
        let s = spec();
        let end = SimTime::from_secs(1);
        let flat = exact_energy(&trace(), &s, end);
        let sum: f64 = node_breakdown(&trace(), &s, end)
            .iter()
            .map(|n| n.total())
            .sum();
        assert!((flat - sum).abs() < 1e-9, "{flat} vs {sum}");
    }

    #[test]
    fn outage_breakdown_matches_plain_without_faults_and_credits_idle() {
        use crate::fault::{FaultKind, FaultPlan, FaultWindow};
        let s = spec();
        let end = SimTime::from_secs(1);
        let plain = node_breakdown(&trace(), &s, end);
        let none = node_breakdown_with_outages(&trace(), &s, end, &FaultPlan::none(2));
        for (a, b) in plain.iter().zip(&none) {
            assert_eq!(a.idle_joules.to_bits(), b.idle_joules.to_bits());
            assert_eq!(a.active_joules.to_bits(), b.active_joules.to_bits());
        }
        // Node 1 crashed for the second half: half its idle floor gone.
        let plan = FaultPlan::none(2).with_window(
            1,
            FaultWindow {
                start: SimTime::from_millis(500),
                end,
                kind: FaultKind::Crash,
            },
        );
        let faulted = node_breakdown_with_outages(&trace(), &s, end, &plan);
        assert!((faulted[1].idle_joules - 0.5 * plain[1].idle_joules).abs() < 1e-9);
        assert_eq!(
            faulted[0].idle_joules.to_bits(),
            plain[0].idle_joules.to_bits()
        );
        // A 50 % brownout of a 2-core node powers off one core.
        let brown = FaultPlan::none(2).with_window(
            0,
            FaultWindow {
                start: SimTime::ZERO,
                end,
                kind: FaultKind::Brownout { loss: 0.5 },
            },
        );
        let browned = node_breakdown_with_outages(&trace(), &s, end, &brown);
        assert!((browned[0].idle_joules - 0.5 * plain[0].idle_joules).abs() < 1e-9);
    }

    #[test]
    fn healthy_node_meters_sum_close_to_exact() {
        use crate::replay::exact_energy;
        let s = spec();
        let end = SimTime::from_secs(2);
        let meters = NodeMeterArray::healthy(PowerMeter {
            noise_std: 0.0,
            overhead: 0.0,
            sample_period: qes_core::SimDuration::from_millis(10),
            seed: 0,
        });
        let measured: f64 = meters.measure(&trace(), &s, end).iter().sum();
        let exact = exact_energy(&trace(), &s, end);
        assert!(
            (measured - exact).abs() / exact < 0.01,
            "measured {measured} vs exact {exact}"
        );
    }

    #[test]
    fn dropout_undercounts() {
        let s = spec();
        let end = SimTime::from_secs(5);
        let healthy = NodeMeterArray::healthy(PowerMeter {
            noise_std: 0.0,
            overhead: 0.0,
            ..PowerMeter::default()
        });
        let flaky = NodeMeterArray {
            dropout: 0.3,
            ..healthy.clone()
        };
        let e_healthy: f64 = healthy.measure(&trace(), &s, end).iter().sum();
        let e_flaky: f64 = flaky.measure(&trace(), &s, end).iter().sum();
        assert!(
            e_flaky < 0.85 * e_healthy,
            "30% dropout should undercount: {e_flaky} vs {e_healthy}"
        );
    }

    #[test]
    fn observed_node_measurement_is_identical_and_tags_nodes() {
        use qes_core::MetricsRegistry;
        let s = spec();
        let end = SimTime::from_secs(1);
        let m = NodeMeterArray::healthy(PowerMeter::default());
        let plain = m.measure(&trace(), &s, end);
        let mut reg = MetricsRegistry::new();
        let observed = m.measure_observed(&trace(), &s, end, &mut reg);
        assert_eq!(plain.len(), observed.len());
        for (a, b) in plain.iter().zip(&observed) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        // Default meter: 100 ms period over 1 s = 10 samples × 2 nodes.
        assert_eq!(reg.counter("cluster.power.samples"), 20);
        // Both nodes left a last-sample gauge.
        assert!(reg.gauge("cluster.node0.last_watts").is_some());
        assert!(reg.gauge("cluster.node1.last_watts").is_some());
    }

    #[test]
    fn deterministic_per_seed_and_node() {
        let s = spec();
        let end = SimTime::from_secs(1);
        let m = NodeMeterArray::healthy(PowerMeter::default());
        let a = m.measure(&trace(), &s, end);
        let b = m.measure(&trace(), &s, end);
        assert_eq!(a, b);
        // Different nodes see different noise streams.
        assert_ne!(a[0], a[1]);
    }
}
