#![warn(missing_docs)]

//! # qes-cluster — the simulated "real system" of the paper's §V-G
//!
//! The paper validates its simulator by replaying a DES discrete-speed
//! scheduling trace on an 8-node cluster of dual quad-core AMD Opteron
//! 2380 machines instrumented with PowerPack, and comparing measured
//! against simulated energy. We do not have that hardware, so this crate
//! builds the closest synthetic equivalent that exercises the same code
//! path (see DESIGN.md, *Substitutions*):
//!
//! * [`spec::ClusterSpec`] — the cluster topology and the Opteron's
//!   discrete speed/power table ({0.8, 1.3, 1.8, 2.5} GHz drawing
//!   {11.06, 13.275, 16.85, 22.69} W);
//! * [`regression`] — the paper's regression methodology: fitting
//!   `P = a·s^β + b` to measured ⟨speed, power⟩ pairs (the paper obtains
//!   `a = 2.6075`, `β = 1.791`, `b = 9.2562`; our fitter reproduces it
//!   from the same four points);
//! * [`meter::PowerMeter`] — a PowerPack-like wall-power meter: samples
//!   total cluster power at a fixed period with Gaussian measurement
//!   noise, plus a configurable multiplicative overhead representing the
//!   scheduling/OS activity a real system adds on top of the planned
//!   schedule;
//! * [`replay`] — executes a recorded [`qes_sim::SimTrace`] on the
//!   cluster: *exact* energy (what the simulator predicts) and *measured*
//!   energy (what the meter reports) for Fig. 11;
//! * [`dispatch`] — the sharded cluster *front end*: a deterministic
//!   dispatcher ([`dispatch::route`]) splitting one arrival stream over N
//!   independent simulated machines, and [`dispatch::ClusterEngine`]
//!   running the per-shard simulations in parallel and merging their
//!   reports (determinism contract in DESIGN.md §9);
//! * [`fault`] — deterministic fault injection: seeded per-shard
//!   crash/brownout windows ([`fault::FaultPlan`]) that the dispatcher
//!   routes around and the engine simulates as capacity epochs, with
//!   stranded-job failover (DESIGN.md §10);
//! * [`admission`] — overload protection for the front end:
//!   deadline-aware admission control, retry budgets with exponential
//!   backoff and seeded jitter, and deterministic request hedging with
//!   first-wins accounting (DESIGN.md §11). The default
//!   [`admission::OverloadPolicy`] is bitwise-identical to running
//!   without one.

pub mod admission;
pub mod dispatch;
pub mod fault;
pub mod meter;
pub mod nodes;
pub mod regression;
pub mod replay;
pub mod spec;

pub use admission::{AdmissionPolicy, HedgePolicy, OverloadPolicy, RetryPolicy};
pub use dispatch::{
    dispatch_protected, dispatch_with_faults, route, split_jobs, split_seed, ClusterEngine,
    ClusterReport, DispatchPlan, HedgeRecord, RoutingPolicy, ShardRun,
};
pub use fault::{effective_cores, Epoch, FaultKind, FaultPlan, FaultWindow};
pub use meter::PowerMeter;
pub use nodes::{
    node_breakdown, node_breakdown_with_outages, node_of_core, NodeEnergy, NodeMeterArray,
};
pub use regression::{fit_power_model, FitReport};
pub use replay::{exact_energy, measured_energy};
pub use spec::ClusterSpec;
