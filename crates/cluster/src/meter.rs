//! A PowerPack-like sampled power meter.
//!
//! PowerPack instruments a cluster with per-component power sensors read
//! at a fixed sampling rate; energy is the numerical integral of those
//! samples. Two effects separate its reading from the simulator's exact
//! integral: sampling quantization plus sensor noise, and the extra power
//! a real machine spends on scheduling/OS work that the planned schedule
//! does not show. [`PowerMeter`] models all three.

use qes_core::time::{SimDuration, SimTime};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration of the simulated wall-power meter.
#[derive(Clone, Debug)]
pub struct PowerMeter {
    /// Sampling period (PowerPack-class meters sample at ~10–1000 Hz).
    pub sample_period: SimDuration,
    /// Standard deviation of zero-mean Gaussian sensor noise per sample
    /// (W).
    pub noise_std: f64,
    /// Multiplicative overhead representing real-system scheduling/OS
    /// activity (e.g. `0.02` = +2 %).
    pub overhead: f64,
    /// RNG seed for the noise stream.
    pub seed: u64,
}

impl Default for PowerMeter {
    fn default() -> Self {
        PowerMeter {
            sample_period: SimDuration::from_millis(100),
            noise_std: 1.0,
            overhead: 0.02,
            seed: 0,
        }
    }
}

impl PowerMeter {
    /// Integrate `power_at` (instantaneous total W) over `[0, end)` the
    /// way the meter would: sample, perturb, sum.
    pub fn measure(&self, end: SimTime, mut power_at: impl FnMut(SimTime) -> f64) -> f64 {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let dt = self.sample_period.as_secs_f64();
        assert!(dt > 0.0, "sample period must be positive");
        let mut t = SimTime::ZERO;
        let mut energy = 0.0;
        while t < end {
            let span = self.sample_period.min(end.saturating_since(t));
            let p = power_at(t) * (1.0 + self.overhead) + self.gaussian(&mut rng);
            energy += p.max(0.0) * span.as_secs_f64();
            t += self.sample_period;
        }
        energy
    }

    /// One zero-mean Gaussian sample via Box–Muller.
    fn gaussian(&self, rng: &mut StdRng) -> f64 {
        if self.noise_std <= 0.0 {
            return 0.0;
        }
        let u1: f64 = rng.gen::<f64>().max(1e-12);
        let u2: f64 = rng.gen::<f64>();
        self.noise_std * (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noiseless_meter_integrates_constant_power() {
        let m = PowerMeter {
            noise_std: 0.0,
            overhead: 0.0,
            ..PowerMeter::default()
        };
        let e = m.measure(SimTime::from_secs(10), |_| 50.0);
        assert!((e - 500.0).abs() < 1e-9);
    }

    #[test]
    fn overhead_inflates_reading() {
        let m = PowerMeter {
            noise_std: 0.0,
            overhead: 0.05,
            ..PowerMeter::default()
        };
        let e = m.measure(SimTime::from_secs(10), |_| 100.0);
        assert!((e - 1050.0).abs() < 1e-9);
    }

    #[test]
    fn noise_averages_out_over_long_runs() {
        let m = PowerMeter {
            noise_std: 5.0,
            overhead: 0.0,
            ..PowerMeter::default()
        };
        let e = m.measure(SimTime::from_secs(100), |_| 100.0);
        // 1000 samples of σ=5 noise: standard error ≈ 5/√1000 ≈ 0.16 W.
        assert!((e - 10_000.0).abs() < 100.0, "energy {e}");
    }

    #[test]
    fn deterministic_per_seed() {
        let mk = |seed| PowerMeter {
            seed,
            ..PowerMeter::default()
        };
        let f = |_| 75.0;
        let a = mk(1).measure(SimTime::from_secs(5), f);
        let b = mk(1).measure(SimTime::from_secs(5), f);
        let c = mk(2).measure(SimTime::from_secs(5), f);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn samples_track_time_varying_power() {
        let m = PowerMeter {
            noise_std: 0.0,
            overhead: 0.0,
            ..PowerMeter::default()
        };
        // 100 W for the first 5 s, 0 after.
        let e = m.measure(SimTime::from_secs(10), |t| {
            if t < SimTime::from_secs(5) {
                100.0
            } else {
                0.0
            }
        });
        assert!((e - 500.0).abs() < 1e-9);
    }

    #[test]
    fn partial_last_sample_weighted_correctly() {
        let m = PowerMeter {
            sample_period: SimDuration::from_millis(300),
            noise_std: 0.0,
            overhead: 0.0,
            seed: 0,
        };
        // 1 s horizon = 3 full samples + one 100 ms remainder.
        let e = m.measure(SimTime::from_secs(1), |_| 10.0);
        assert!((e - 10.0).abs() < 1e-9, "energy {e}");
    }
}
