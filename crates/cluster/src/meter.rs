//! A PowerPack-like sampled power meter.
//!
//! PowerPack instruments a cluster with per-component power sensors read
//! at a fixed sampling rate; energy is the numerical integral of those
//! samples. Two effects separate its reading from the simulator's exact
//! integral: sampling quantization plus sensor noise, and the extra power
//! a real machine spends on scheduling/OS work that the planned schedule
//! does not show. [`PowerMeter`] models all three.

use qes_core::obs::{Event, NoopObserver, Observer};
use qes_core::time::{SimDuration, SimTime};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration of the simulated wall-power meter.
#[derive(Clone, Debug)]
pub struct PowerMeter {
    /// Sampling period (PowerPack-class meters sample at ~10–1000 Hz).
    pub sample_period: SimDuration,
    /// Standard deviation of zero-mean Gaussian sensor noise per sample
    /// (W).
    pub noise_std: f64,
    /// Multiplicative overhead representing real-system scheduling/OS
    /// activity (e.g. `0.02` = +2 %).
    pub overhead: f64,
    /// RNG seed for the noise stream.
    pub seed: u64,
}

impl Default for PowerMeter {
    fn default() -> Self {
        PowerMeter {
            sample_period: SimDuration::from_millis(100),
            noise_std: 1.0,
            overhead: 0.02,
            seed: 0,
        }
    }
}

impl PowerMeter {
    /// Integrate `power_at` (instantaneous total W) over `[0, end)` the
    /// way the meter would: sample, perturb, sum.
    pub fn measure(&self, end: SimTime, power_at: impl FnMut(SimTime) -> f64) -> f64 {
        self.measure_window(SimTime::ZERO, end, power_at)
    }

    /// Integrate over the replay window `[start, end)` only.
    ///
    /// The sampling grid stays anchored at `t = 0` regardless of the
    /// window — a real meter free-runs; a window is a post-hoc cut of its
    /// log. Samples straddling a boundary contribute only the part of
    /// their interval inside the window (the sensor reading itself is
    /// taken at the grid instant, as always). The noise stream also stays
    /// anchored: samples before `start` still consume their Gaussian
    /// draw, so `measure_window(ZERO, end)` is bit-identical to
    /// `measure(end)` and adjacent windows partition the energy.
    pub fn measure_window(
        &self,
        start: SimTime,
        end: SimTime,
        power_at: impl FnMut(SimTime) -> f64,
    ) -> f64 {
        self.measure_window_observed(0, start, end, power_at, &mut NoopObserver)
    }

    /// [`measure_window`](Self::measure_window) with an observer: every
    /// in-window perturbed sample is reported as a
    /// [`PowerSample`](qes_core::obs::Event::PowerSample) for `node`,
    /// timestamped at its grid instant. With [`NoopObserver`] this is the
    /// plain measurement — the hook compiles out.
    pub fn measure_window_observed<O: Observer>(
        &self,
        node: u32,
        start: SimTime,
        end: SimTime,
        mut power_at: impl FnMut(SimTime) -> f64,
        obs: &mut O,
    ) -> f64 {
        let mut rng = StdRng::seed_from_u64(self.seed);
        assert!(
            self.sample_period.as_secs_f64() > 0.0,
            "sample period must be positive"
        );
        let mut t = SimTime::ZERO;
        let mut energy = 0.0;
        while t < end {
            let sample_end = (t + self.sample_period).min(end);
            if sample_end <= start {
                // Entirely before the window: the free-running sensor
                // still took the sample (the noise stream advances), but
                // none of its interval is ours.
                let _ = self.gaussian(&mut rng);
                t += self.sample_period;
                continue;
            }
            let p = power_at(t) * (1.0 + self.overhead) + self.gaussian(&mut rng);
            if O::ENABLED {
                obs.record(t, Event::PowerSample { node, watts: p });
            }
            let span = sample_end.saturating_since(t.max(start));
            energy += p.max(0.0) * span.as_secs_f64();
            t += self.sample_period;
        }
        energy
    }

    /// One zero-mean Gaussian sample via Box–Muller.
    fn gaussian(&self, rng: &mut StdRng) -> f64 {
        if self.noise_std <= 0.0 {
            return 0.0;
        }
        let u1: f64 = rng.gen::<f64>().max(1e-12);
        let u2: f64 = rng.gen::<f64>();
        self.noise_std * (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noiseless_meter_integrates_constant_power() {
        let m = PowerMeter {
            noise_std: 0.0,
            overhead: 0.0,
            ..PowerMeter::default()
        };
        let e = m.measure(SimTime::from_secs(10), |_| 50.0);
        assert!((e - 500.0).abs() < 1e-9);
    }

    #[test]
    fn overhead_inflates_reading() {
        let m = PowerMeter {
            noise_std: 0.0,
            overhead: 0.05,
            ..PowerMeter::default()
        };
        let e = m.measure(SimTime::from_secs(10), |_| 100.0);
        assert!((e - 1050.0).abs() < 1e-9);
    }

    #[test]
    fn noise_averages_out_over_long_runs() {
        let m = PowerMeter {
            noise_std: 5.0,
            overhead: 0.0,
            ..PowerMeter::default()
        };
        let e = m.measure(SimTime::from_secs(100), |_| 100.0);
        // 1000 samples of σ=5 noise: standard error ≈ 5/√1000 ≈ 0.16 W.
        assert!((e - 10_000.0).abs() < 100.0, "energy {e}");
    }

    #[test]
    fn deterministic_per_seed() {
        let mk = |seed| PowerMeter {
            seed,
            ..PowerMeter::default()
        };
        let f = |_| 75.0;
        let a = mk(1).measure(SimTime::from_secs(5), f);
        let b = mk(1).measure(SimTime::from_secs(5), f);
        let c = mk(2).measure(SimTime::from_secs(5), f);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn samples_track_time_varying_power() {
        let m = PowerMeter {
            noise_std: 0.0,
            overhead: 0.0,
            ..PowerMeter::default()
        };
        // 100 W for the first 5 s, 0 after.
        let e = m.measure(SimTime::from_secs(10), |t| {
            if t < SimTime::from_secs(5) {
                100.0
            } else {
                0.0
            }
        });
        assert!((e - 500.0).abs() < 1e-9);
    }

    #[test]
    fn partial_last_sample_weighted_correctly() {
        let m = PowerMeter {
            sample_period: SimDuration::from_millis(300),
            noise_std: 0.0,
            overhead: 0.0,
            seed: 0,
        };
        // 1 s horizon = 3 full samples + one 100 ms remainder.
        let e = m.measure(SimTime::from_secs(1), |_| 10.0);
        assert!((e - 10.0).abs() < 1e-9, "energy {e}");
    }

    #[test]
    fn window_clips_boundary_samples_to_closed_form() {
        let m = PowerMeter {
            sample_period: SimDuration::from_millis(300),
            noise_std: 0.0,
            overhead: 0.0,
            seed: 0,
        };
        // Grid samples cover [0,300) [300,600) [600,900) [900,1000) ms.
        // The window [100, 1000) ms cuts the first sample mid-interval:
        // it contributes 200 ms, not its full 300 ms. Closed form at a
        // constant 10 W: 0.9 s × 10 W = 9 J exactly — counting the first
        // interval in full would read 10 J.
        let e = m.measure_window(SimTime::from_millis(100), SimTime::from_secs(1), |_| 10.0);
        assert!((e - 9.0).abs() < 1e-9, "energy {e}");
        // A window cutting the *last* sample too: [100, 950) ms = 0.85 s.
        let e = m.measure_window(SimTime::from_millis(100), SimTime::from_millis(950), |_| {
            10.0
        });
        assert!((e - 8.5).abs() < 1e-9, "energy {e}");
    }

    #[test]
    fn full_window_is_bitwise_identical_to_measure() {
        // With noise ON: identical grid + identical RNG stream.
        let m = PowerMeter::default();
        let f = |t: SimTime| 60.0 + t.as_secs_f64();
        let a = m.measure(SimTime::from_secs(3), f);
        let b = m.measure_window(SimTime::ZERO, SimTime::from_secs(3), f);
        assert_eq!(a.to_bits(), b.to_bits());
    }

    #[test]
    fn adjacent_windows_partition_the_measurement() {
        // Noise on; the cut lands mid-sample (off-grid). Because the grid
        // and the noise stream are both anchored at t = 0, the two window
        // readings sum to the full reading up to f64 addition order.
        let m = PowerMeter::default();
        let f = |t: SimTime| {
            if t < SimTime::from_secs(1) {
                80.0
            } else {
                20.0
            }
        };
        let cut = SimTime::from_millis(1234);
        let end = SimTime::from_secs(3);
        let whole = m.measure(end, f);
        let left = m.measure_window(SimTime::ZERO, cut, f);
        let right = m.measure_window(cut, end, f);
        assert!(
            (left + right - whole).abs() < 1e-9,
            "{left} + {right} != {whole}"
        );
    }

    #[test]
    fn observed_measurement_reports_every_in_window_sample() {
        use qes_core::MetricsRegistry;
        let m = PowerMeter {
            sample_period: SimDuration::from_millis(100),
            noise_std: 0.0,
            overhead: 0.0,
            seed: 7,
        };
        let mut reg = MetricsRegistry::new();
        let start = SimTime::from_millis(250);
        let end = SimTime::from_secs(1);
        let e_obs = m.measure_window_observed(3, start, end, |_| 40.0, &mut reg);
        let e_plain = m.measure_window(start, end, |_| 40.0);
        assert_eq!(e_obs.to_bits(), e_plain.to_bits());
        // Samples at 200..900 ms overlap the window: 8 of the 10.
        assert_eq!(reg.counter("cluster.power.samples"), 8);
        assert_eq!(reg.gauge("cluster.node3.last_watts"), Some(40.0));
    }
}
