//! Sharded cluster front end: one arrival stream, N simulated machines.
//!
//! The paper evaluates DES on a single 16-core machine; a service with
//! "heavy traffic from millions of users" runs many such machines behind
//! a dispatcher. This module scales the *simulation itself* across
//! machines: [`route`] splits a single release-ordered arrival stream
//! over `N` shards under a pluggable [`RoutingPolicy`], and
//! [`ClusterEngine`] runs one independent per-shard simulation (the
//! unmodified `qes-sim` engine with its own policy instance) per shard,
//! fanning the shards out on the rayon thread pool and merging the
//! per-shard [`SimReport`]s into a cluster-level [`ClusterReport`].
//!
//! # Determinism contract
//!
//! * **Routing is a sequential pre-pass.** Shard assignment is computed
//!   by one in-order scan of the release-sorted job stream before any
//!   simulation starts, so it cannot depend on thread scheduling.
//! * **Lane count is unobservable.** Per-shard simulations are pure
//!   functions of (shard job set, policy, machine config); the rayon
//!   shim's `collect()` returns them in shard order, so a run under
//!   `QES_THREADS=1` is bit-for-bit identical to a fanned-out run
//!   (`tests/cluster_differential.rs` pins this).
//! * **One shard degenerates to the plain engine.** With `N = 1` every
//!   job lands on shard 0 and the merged report is the shard's report —
//!   bitwise, including every counter.
//! * **Seed-split RNGs.** Shard `i` owns the derived seed
//!   [`split_seed`]`(base, i)`; the streams are disjoint, so re-seeding
//!   one shard cannot perturb another shard's results. The core
//!   quality/energy path consumes no randomness at all — seeds only feed
//!   the optional per-shard [`PowerMeter`] noise stream.
//!
//! # Routing policies
//!
//! The dispatcher tracks, per shard, the jobs routed there whose
//! deadlines have not yet passed (the *in-flight window* — pessimistic:
//! a routed job is assumed to occupy its shard until its deadline).
//! Because deadlines are agreeable and the stream is release-sorted,
//! in-flight windows are FIFO by deadline, so maintenance is O(1)
//! amortized per arrival. On top of that window:
//!
//! * [`RoutingPolicy::RoundRobin`] — cyclic assignment;
//! * [`RoutingPolicy::Random`] — seeded uniform choice;
//! * [`RoutingPolicy::Jsq`] — join-shortest-queue on the in-flight
//!   count, ties broken toward the lowest shard index (so decisions are
//!   a function of the `(release, deadline)` stream, not of job-id
//!   labels);
//! * [`RoutingPolicy::LeastEnergy`] — power-aware: route where the
//!   DES step-2 power probe (the closed-form max-prefix-density speed
//!   of the shard's in-flight window, priced through the machine's
//!   power model) grows the least, ties again toward the lowest index.

use std::collections::VecDeque;

use qes_core::job::{Job, JobSet};
use qes_core::obs::{Event, NoopObserver, Observer};
use qes_core::power::PowerModel;
use qes_core::time::SimTime;
use qes_core::MetricsRegistry;
use qes_multicore::SchedulingPolicy;
use qes_sim::engine::{SimConfig, Simulator};
use qes_sim::report::{SimCounters, SimReport};
use qes_sim::trace::SimTrace;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rayon::prelude::*;

use crate::meter::PowerMeter;

/// How the dispatcher picks a shard for each arriving job.
#[derive(Clone, Debug, PartialEq)]
pub enum RoutingPolicy {
    /// Cyclic assignment: job `k` (in release order) goes to shard
    /// `k mod N`.
    RoundRobin,
    /// Uniform random shard per job, drawn from a dedicated
    /// deterministic stream.
    Random {
        /// Seed of the routing RNG (independent of the shard seeds).
        seed: u64,
    },
    /// Join-shortest-queue on the in-flight job count; ties go to the
    /// lowest shard index.
    Jsq,
    /// Least-energy-increment: the shard whose step-2 power probe rises
    /// the least when the job is added; ties go to the lowest index.
    LeastEnergy,
}

impl RoutingPolicy {
    /// Stable lowercase label for report keys and figure rows.
    pub fn label(&self) -> &'static str {
        match self {
            RoutingPolicy::RoundRobin => "round-robin",
            RoutingPolicy::Random { .. } => "random",
            RoutingPolicy::Jsq => "jsq",
            RoutingPolicy::LeastEnergy => "least-energy",
        }
    }
}

/// Derive shard `lane`'s seed from a cluster base seed (SplitMix64-style
/// mix-and-finalize). Distinct lanes map to distinct, well-separated
/// seeds, so per-shard `StdRng` streams are disjoint in practice;
/// changing one shard's seed leaves every other shard's stream — and
/// report — untouched.
pub fn split_seed(base: u64, lane: u64) -> u64 {
    let mut z = base ^ lane.wrapping_add(1).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The in-flight window of one shard: `(deadline_us, demand)` of routed
/// jobs whose deadlines are still ahead. Deadline-sorted by construction
/// (agreeable deadlines + release-ordered arrivals), so retirement pops
/// from the front and the probe scans prefixes in deadline order.
type InFlight = VecDeque<(u64, f64)>;

/// The step-2 probe speed (GHz) of one in-flight window at `now_us`,
/// optionally with a candidate job appended: the maximum prefix density
/// over deadline-ordered jobs, exactly the closed form the DES policy
/// uses for its per-core power requests (demands are processing units =
/// 1 GHz·ms, hence the factor 1000 against microsecond windows).
fn probe_speed(window: &InFlight, now_us: u64, candidate: Option<(u64, f64)>) -> f64 {
    let mut cum = 0.0;
    let mut speed = 0.0f64;
    for &(d_us, w) in window {
        cum += w;
        speed = speed.max(cum * 1000.0 / (d_us - now_us) as f64);
    }
    if let Some((d_us, w)) = candidate {
        cum += w;
        speed = speed.max(cum * 1000.0 / (d_us - now_us) as f64);
    }
    speed
}

/// Assign every job of the release-sorted stream to a shard.
///
/// Returns one shard index per job, in the job set's stored
/// `(release, deadline, id)` order. This is a deterministic sequential
/// pre-pass: the same stream and routing policy always produce the same
/// assignment, independent of thread count. `model` prices the
/// [`RoutingPolicy::LeastEnergy`] probe and is ignored by the other
/// policies.
pub fn route(
    jobs: &JobSet,
    shards: usize,
    routing: &RoutingPolicy,
    model: &dyn PowerModel,
) -> Vec<u32> {
    assert!(shards > 0, "a cluster needs at least one shard");
    let mut inflight: Vec<InFlight> = vec![InFlight::new(); shards];
    let mut rr = 0usize;
    let mut rng = match routing {
        RoutingPolicy::Random { seed } => Some(StdRng::seed_from_u64(*seed)),
        _ => None,
    };
    let mut out = Vec::with_capacity(jobs.len());
    for job in jobs.iter() {
        let now_us = job.release.as_micros();
        // Retire expired in-flight entries everywhere, so counts and
        // probes see only live work. Windows are deadline-FIFO.
        for w in &mut inflight {
            while w.front().is_some_and(|&(d, _)| d <= now_us) {
                w.pop_front();
            }
        }
        let shard = match routing {
            RoutingPolicy::RoundRobin => {
                let s = rr;
                rr = (rr + 1) % shards;
                s
            }
            RoutingPolicy::Random { .. } => {
                let u: f64 = rng.as_mut().expect("random routing carries an rng").gen();
                ((u * shards as f64) as usize).min(shards - 1)
            }
            RoutingPolicy::Jsq => {
                // Strict `<` keeps the lowest index on ties.
                let mut best = 0usize;
                for (i, w) in inflight.iter().enumerate().skip(1) {
                    if w.len() < inflight[best].len() {
                        best = i;
                    }
                }
                best
            }
            RoutingPolicy::LeastEnergy => {
                let cand = (job.deadline.as_micros(), job.demand);
                let mut best = 0usize;
                let mut best_delta = f64::INFINITY;
                for (i, w) in inflight.iter().enumerate() {
                    let before = model.dynamic_power(probe_speed(w, now_us, None));
                    let after = model.dynamic_power(probe_speed(w, now_us, Some(cand)));
                    let delta = after - before;
                    if delta < best_delta {
                        best_delta = delta;
                        best = i;
                    }
                }
                best
            }
        };
        inflight[shard].push_back((job.deadline.as_micros(), job.demand));
        out.push(shard as u32);
    }
    out
}

/// Split a job set into per-shard job sets according to a [`route`]
/// assignment. Jobs keep their global ids; each shard's subset of an
/// agreeable stream is agreeable, and re-validation preserves the
/// relative order (a subsequence of a sorted sequence is sorted).
pub fn split_jobs(jobs: &JobSet, assignment: &[u32], shards: usize) -> Vec<JobSet> {
    assert_eq!(jobs.len(), assignment.len(), "one shard per job");
    let mut per: Vec<Vec<Job>> = vec![Vec::new(); shards];
    for (job, &s) in jobs.iter().zip(assignment) {
        per[s as usize].push(*job);
    }
    per.into_iter()
        .map(|v| JobSet::new(v).expect("subset of an agreeable stream is agreeable"))
        .collect()
}

/// One shard's outcome inside a [`ClusterReport`].
#[derive(Clone, Debug)]
pub struct ShardRun {
    /// Shard index (0-based).
    pub shard: usize,
    /// The shard's derived seed ([`split_seed`] of the cluster base
    /// seed, unless overridden).
    pub seed: u64,
    /// The shard machine's simulation report.
    pub report: SimReport,
    /// Metered wall-energy reading of this shard's schedule, when the
    /// engine carries a [`PowerMeter`] (noise stream seeded by
    /// [`ShardRun::seed`]).
    pub measured_energy: Option<f64>,
}

/// The merged outcome of a sharded cluster run.
#[derive(Clone, Debug)]
pub struct ClusterReport {
    /// Routing policy label.
    pub routing: String,
    /// Cluster-level aggregate: quality/energy/max-quality and every
    /// counter summed over shards in shard order. For a 1-shard cluster
    /// this *is* the shard's report (bitwise).
    pub merged: SimReport,
    /// Per-shard reports, indexed by shard.
    pub shards: Vec<ShardRun>,
}

impl ClusterReport {
    /// Total metered energy, if every shard was metered (summed in
    /// shard order).
    pub fn measured_energy(&self) -> Option<f64> {
        self.shards
            .iter()
            .map(|s| s.measured_energy)
            .try_fold(0.0, |acc, e| e.map(|e| acc + e))
    }

    /// Largest per-shard job count — with [`ClusterReport::min_shard_jobs`]
    /// a quick balance check on the routing policy.
    pub fn max_shard_jobs(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.report.jobs_total())
            .max()
            .unwrap_or(0)
    }

    /// Smallest per-shard job count.
    pub fn min_shard_jobs(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.report.jobs_total())
            .min()
            .unwrap_or(0)
    }

    /// Export the merged report plus per-shard gauges into a registry.
    pub fn export_metrics(&self, reg: &mut MetricsRegistry) {
        self.merged.export_metrics(reg);
        for s in &self.shards {
            reg.set_gauge(
                format!("cluster.shard{}.quality", s.shard),
                s.report.total_quality,
            );
            reg.set_gauge(
                format!("cluster.shard{}.energy", s.shard),
                s.report.energy_joules,
            );
            reg.set_gauge(
                format!("cluster.shard{}.jobs", s.shard),
                s.report.jobs_total() as f64,
            );
        }
        if let Some(e) = self.measured_energy() {
            reg.set_gauge("cluster.measured_energy", e);
        }
    }
}

/// Field-by-field counter sum (destructured so a new [`SimCounters`]
/// field is a compile error here instead of a silent merge bug).
fn add_counters(into: &mut SimCounters, from: &SimCounters) {
    let SimCounters {
        jobs_total,
        jobs_satisfied,
        jobs_partial,
        jobs_zero,
        jobs_discarded,
        invocations,
        invocations_kept,
        plans_installed,
        plans_kept,
    } = from;
    into.jobs_total += jobs_total;
    into.jobs_satisfied += jobs_satisfied;
    into.jobs_partial += jobs_partial;
    into.jobs_zero += jobs_zero;
    into.jobs_discarded += jobs_discarded;
    into.invocations += invocations;
    into.invocations_kept += invocations_kept;
    into.plans_installed += plans_installed;
    into.plans_kept += plans_kept;
}

/// A cluster of `N` identical simulated machines behind one dispatcher.
///
/// Each shard runs the unmodified [`Simulator`] over its routed slice of
/// the arrival stream with its own policy instance; shards execute in
/// parallel on the rayon pool and merge deterministically (see the
/// module docs for the contract).
#[derive(Clone, Debug)]
pub struct ClusterEngine {
    shards: usize,
    routing: RoutingPolicy,
    seed: u64,
    shard_seeds: Option<Vec<u64>>,
    meter: Option<PowerMeter>,
}

impl ClusterEngine {
    /// A cluster of `shards` machines, round-robin routing, base seed 0,
    /// no metering.
    pub fn new(shards: usize) -> Self {
        assert!(shards > 0, "a cluster needs at least one shard");
        ClusterEngine {
            shards,
            routing: RoutingPolicy::RoundRobin,
            seed: 0,
            shard_seeds: None,
            meter: None,
        }
    }

    /// Builder: routing policy.
    pub fn with_routing(mut self, routing: RoutingPolicy) -> Self {
        self.routing = routing;
        self
    }

    /// Builder: cluster base seed (shard `i` derives
    /// [`split_seed`]`(seed, i)`).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Builder: explicit per-shard seeds, overriding the derived split.
    /// Must supply exactly one seed per shard.
    pub fn with_shard_seeds(mut self, seeds: Vec<u64>) -> Self {
        assert_eq!(seeds.len(), self.shards, "one seed per shard");
        self.shard_seeds = Some(seeds);
        self
    }

    /// Builder: meter every shard's schedule with a [`PowerMeter`]
    /// (its noise stream re-seeded per shard from the shard seed).
    pub fn with_meter(mut self, meter: PowerMeter) -> Self {
        self.meter = Some(meter);
        self
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// The routing policy.
    pub fn routing(&self) -> &RoutingPolicy {
        &self.routing
    }

    /// The seed shard `i` runs with.
    pub fn shard_seed(&self, shard: usize) -> u64 {
        match &self.shard_seeds {
            Some(seeds) => seeds[shard],
            None => split_seed(self.seed, shard as u64),
        }
    }

    /// Run the cluster: route `jobs`, simulate every shard (in parallel)
    /// on a machine configured like `cfg`, merge. `make_policy(i)`
    /// builds shard `i`'s scheduling policy.
    pub fn run<F>(&self, cfg: &SimConfig<'_>, jobs: &JobSet, make_policy: F) -> ClusterReport
    where
        F: Fn(usize) -> Box<dyn SchedulingPolicy> + Sync + Send,
    {
        self.run_observed(cfg, jobs, make_policy, |_| NoopObserver)
            .0
    }

    /// [`ClusterEngine::run`] with one observer per shard, built by
    /// `make_observer(i)` and returned in shard order. Each shard's
    /// event stream opens with a shard-tagged
    /// [`Event::ShardAssign`]; metered runs additionally tag their
    /// [`Event::PowerSample`]s with the shard index. Observers are
    /// passive: the cluster report is bitwise-identical with or without
    /// them.
    pub fn run_observed<O, F, M>(
        &self,
        cfg: &SimConfig<'_>,
        jobs: &JobSet,
        make_policy: F,
        make_observer: M,
    ) -> (ClusterReport, Vec<O>)
    where
        O: Observer + Send,
        F: Fn(usize) -> Box<dyn SchedulingPolicy> + Sync + Send,
        M: Fn(usize) -> O + Sync + Send,
    {
        let assignment = route(jobs, self.shards, &self.routing, cfg.model);
        let shard_jobs = split_jobs(jobs, &assignment, self.shards);
        debug_assert_eq!(
            shard_jobs.iter().map(JobSet::len).sum::<usize>(),
            jobs.len(),
            "every arrival routed exactly once"
        );

        let runs: Vec<(ShardRun, O)> = (0..self.shards)
            .into_par_iter()
            .map(|i| {
                let mut policy = make_policy(i);
                let mut obs = make_observer(i);
                if O::ENABLED {
                    obs.record(
                        SimTime::ZERO,
                        Event::ShardAssign {
                            shard: i as u32,
                            jobs: shard_jobs[i].len() as u32,
                        },
                    );
                }
                let scfg = SimConfig {
                    num_cores: cfg.num_cores,
                    budget: cfg.budget,
                    model: cfg.model,
                    quality: cfg.quality,
                    end: cfg.end,
                    record_trace: cfg.record_trace || self.meter.is_some(),
                    overhead: cfg.overhead,
                };
                let (report, trace) =
                    Simulator::run_observed(&scfg, policy.as_mut(), &shard_jobs[i], &mut obs);
                let seed = self.shard_seed(i);
                let measured = self.meter.as_ref().map(|m| {
                    let m = PowerMeter { seed, ..m.clone() };
                    measured_shard_energy(
                        &m,
                        cfg.model,
                        cfg.num_cores,
                        cfg.end,
                        &trace,
                        i as u32,
                        &mut obs,
                    )
                });
                (
                    ShardRun {
                        shard: i,
                        seed,
                        report,
                        measured_energy: measured,
                    },
                    obs,
                )
            })
            .collect();

        let mut shards = Vec::with_capacity(self.shards);
        let mut observers = Vec::with_capacity(self.shards);
        for (run, obs) in runs {
            shards.push(run);
            observers.push(obs);
        }

        // Merge in shard order, seeded from shard 0's report so a
        // 1-shard cluster is the plain engine run to the bit.
        let mut merged = shards[0].report.clone();
        for s in &shards[1..] {
            merged.total_quality += s.report.total_quality;
            merged.max_quality += s.report.max_quality;
            merged.energy_joules += s.report.energy_joules;
            add_counters(&mut merged.counters, &s.report.counters);
        }
        merged.policy = format!(
            "cluster/{}x/{}/{}",
            self.shards,
            self.routing.label(),
            shards[0].report.policy
        );

        (
            ClusterReport {
                routing: self.routing.label().to_string(),
                merged,
                shards,
            },
            observers,
        )
    }
}

/// Meter one shard's executed schedule: replay the recorded trace as a
/// per-core speed profile, price it through the machine's *dynamic*
/// power curve (matching [`SimReport::energy_joules`]'s scope), and let
/// the shard's [`PowerMeter`] sample it. `PowerSample` events carry the
/// shard index as their node tag.
fn measured_shard_energy<O: Observer>(
    meter: &PowerMeter,
    model: &dyn PowerModel,
    num_cores: usize,
    end: SimTime,
    trace: &SimTrace,
    shard: u32,
    obs: &mut O,
) -> f64 {
    let mut per_core: Vec<Vec<(SimTime, SimTime, f64)>> = vec![Vec::new(); num_cores];
    for s in trace.slices() {
        if s.core < per_core.len() {
            per_core[s.core].push((s.start, s.end, s.speed));
        }
    }
    for v in &mut per_core {
        v.sort_by_key(|&(start, _, _)| start);
    }
    let speed_at = |slices: &[(SimTime, SimTime, f64)], t: SimTime| -> f64 {
        let idx = slices.partition_point(|&(_, e, _)| e <= t);
        match slices.get(idx) {
            Some(&(s, _, sp)) if s <= t => sp,
            _ => 0.0,
        }
    };
    meter.measure_window_observed(
        shard,
        SimTime::ZERO,
        end,
        |t| {
            per_core
                .iter()
                .map(|slices| model.dynamic_power(speed_at(slices, t)))
                .sum()
        },
        obs,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use qes_core::power::PolynomialPower;
    use qes_core::time::SimDuration;

    fn stream(n: usize, gap_ms: u64, demand: f64) -> JobSet {
        let jobs: Vec<Job> = (0..n)
            .map(|i| {
                let at = SimTime::from_millis(i as u64 * gap_ms);
                Job::new(i as u32, at, at + SimDuration::from_millis(150), demand).unwrap()
            })
            .collect();
        JobSet::new(jobs).unwrap()
    }

    #[test]
    fn round_robin_cycles_and_conserves() {
        let jobs = stream(10, 1, 100.0);
        let a = route(
            &jobs,
            3,
            &RoutingPolicy::RoundRobin,
            &PolynomialPower::PAPER_SIM,
        );
        assert_eq!(a, vec![0, 1, 2, 0, 1, 2, 0, 1, 2, 0]);
        let split = split_jobs(&jobs, &a, 3);
        assert_eq!(split.iter().map(JobSet::len).sum::<usize>(), 10);
        assert_eq!(split[0].len(), 4);
    }

    #[test]
    fn jsq_prefers_the_emptier_shard_and_breaks_ties_low() {
        // Two simultaneous arrivals: both shards empty -> shard 0 wins the
        // tie; the second sees shard 0 loaded and goes to shard 1.
        let jobs = JobSet::new(vec![
            Job::new(0, SimTime::ZERO, SimTime::from_millis(150), 100.0).unwrap(),
            Job::new(1, SimTime::ZERO, SimTime::from_millis(150), 100.0).unwrap(),
            Job::new(2, SimTime::from_millis(1), SimTime::from_millis(151), 100.0).unwrap(),
        ])
        .unwrap();
        let a = route(&jobs, 2, &RoutingPolicy::Jsq, &PolynomialPower::PAPER_SIM);
        // Third arrival: both shards hold one in-flight job; tie -> 0.
        assert_eq!(a, vec![0, 1, 0]);
    }

    #[test]
    fn jsq_retires_expired_windows() {
        // Second arrival lands after the first job's deadline: shard 0 is
        // empty again and wins the tie.
        let jobs = JobSet::new(vec![
            Job::new(0, SimTime::ZERO, SimTime::from_millis(150), 100.0).unwrap(),
            Job::new(
                1,
                SimTime::from_millis(200),
                SimTime::from_millis(350),
                100.0,
            )
            .unwrap(),
        ])
        .unwrap();
        let a = route(&jobs, 2, &RoutingPolicy::Jsq, &PolynomialPower::PAPER_SIM);
        assert_eq!(a, vec![0, 0]);
    }

    #[test]
    fn least_energy_spreads_simultaneous_load() {
        // The probe is convex in load, so stacking two simultaneous jobs
        // on one shard costs more than spreading them.
        let jobs = JobSet::new(vec![
            Job::new(0, SimTime::ZERO, SimTime::from_millis(150), 300.0).unwrap(),
            Job::new(1, SimTime::ZERO, SimTime::from_millis(150), 300.0).unwrap(),
        ])
        .unwrap();
        let a = route(
            &jobs,
            2,
            &RoutingPolicy::LeastEnergy,
            &PolynomialPower::PAPER_SIM,
        );
        assert_eq!(a, vec![0, 1]);
    }

    #[test]
    fn random_routing_is_deterministic_per_seed_and_in_range() {
        let jobs = stream(50, 2, 150.0);
        let r = RoutingPolicy::Random { seed: 9 };
        let a = route(&jobs, 4, &r, &PolynomialPower::PAPER_SIM);
        let b = route(&jobs, 4, &r, &PolynomialPower::PAPER_SIM);
        assert_eq!(a, b);
        assert!(a.iter().all(|&s| s < 4));
        let c = route(
            &jobs,
            4,
            &RoutingPolicy::Random { seed: 10 },
            &PolynomialPower::PAPER_SIM,
        );
        assert_ne!(a, c, "different seed should reshuffle some assignment");
    }

    #[test]
    fn split_seed_is_injective_over_small_lanes() {
        let mut seen = std::collections::HashSet::new();
        for base in [0u64, 1, 42, u64::MAX] {
            for lane in 0..64u64 {
                assert!(
                    seen.insert(split_seed(base, lane)),
                    "collision at {base}/{lane}"
                );
            }
        }
    }

    #[test]
    fn probe_speed_matches_hand_computation() {
        let mut w = InFlight::new();
        // 100 units due in 100 ms, 50 more due in 200 ms (cum 150).
        w.push_back((100_000, 100.0));
        w.push_back((200_000, 50.0));
        let s = probe_speed(&w, 0, None);
        // max(100/100ms, 150/200ms) = max(1.0, 0.75) GHz.
        assert!((s - 1.0).abs() < 1e-12, "{s}");
        let s2 = probe_speed(&w, 0, Some((200_000, 150.0)));
        // cum 300 over 200 ms = 1.5 GHz.
        assert!((s2 - 1.5).abs() < 1e-12, "{s2}");
    }
}
