//! Sharded cluster front end: one arrival stream, N simulated machines.
//!
//! The paper evaluates DES on a single 16-core machine; a service with
//! "heavy traffic from millions of users" runs many such machines behind
//! a dispatcher. This module scales the *simulation itself* across
//! machines: [`route`] splits a single release-ordered arrival stream
//! over `N` shards under a pluggable [`RoutingPolicy`], and
//! [`ClusterEngine`] runs one independent per-shard simulation (the
//! unmodified `qes-sim` engine with its own policy instance) per shard,
//! fanning the shards out on the rayon thread pool and merging the
//! per-shard [`SimReport`]s into a cluster-level [`ClusterReport`].
//!
//! On top of the healthy path, the engine accepts a deterministic
//! [`FaultPlan`] (crash/brownout windows per shard, see `fault`): the
//! dispatch pre-pass skips crashed shards, strands the jobs caught on a
//! crashing shard and re-releases them to survivors after a retry
//! delay, and each shard's simulation is segmented into capacity
//! epochs (full / browned-out / down). Dropped and retried jobs are
//! surfaced on the [`ClusterReport`].
//!
//! Overload protection (see `admission`) layers three more mechanisms
//! into the same pre-pass, all pure functions of pre-run data:
//! deadline-aware **admission control** (reject hopeless arrivals into
//! a `jobs_rejected` class distinct from the fault path's drops),
//! **retry budgets** with exponential backoff and seeded jitter
//! (stranded jobs give up cleanly into `jobs_dropped` when the budget
//! or the deadline is exhausted), and deterministic **request hedging**
//! (once a slack fraction elapses, dispatch a second copy to the
//! next-best healthy shard; the first copy to finish wins, the loser is
//! charged to energy but not quality). The default
//! [`OverloadPolicy`] degenerates to the PR 9 path by construction.
//!
//! # Determinism contract
//!
//! * **Routing is a sequential pre-pass.** Shard assignment — and all
//!   fault handling: stranding, retry re-release, dropping — is computed
//!   by one in-order scan of the merged (arrivals ∪ retries ∪ crash
//!   instants) event stream before any simulation starts, so it cannot
//!   depend on thread scheduling.
//! * **Lane count is unobservable.** Per-shard simulations are pure
//!   functions of (shard job set, fault epochs, policy, machine config);
//!   the rayon shim's `collect()` returns them in shard order, so a run
//!   under `QES_THREADS=1` is bit-for-bit identical to a fanned-out run
//!   (`tests/cluster_differential.rs` pins this).
//! * **Zero faults ≡ the fault-free path.** Under
//!   [`FaultPlan::none`] every query degenerates (all shards eligible,
//!   one healthy epoch per shard), and each construct is written so the
//!   degenerate case is the PR 8 code path *by construction* — the
//!   reports are bitwise identical across the routing matrix.
//! * **One shard degenerates to the plain engine.** With `N = 1` every
//!   job lands on shard 0 and the merged report is the shard's report —
//!   bitwise, including every counter.
//! * **Seed-split RNGs.** Shard `i` owns the derived seed
//!   [`split_seed`]`(base, i)`; the streams are disjoint, so re-seeding
//!   one shard cannot perturb another shard's results. The core
//!   quality/energy path consumes no randomness at all — seeds only feed
//!   the optional per-shard [`PowerMeter`] noise stream (fault plans are
//!   sampled *before* the run by [`FaultPlan::seeded`], never during).
//!
//! # Routing policies
//!
//! The dispatcher tracks, per shard, the jobs routed there whose
//! deadlines have not yet passed (the *in-flight window* — pessimistic:
//! a routed job is assumed to occupy its shard until its deadline).
//! Windows are deadline-sorted; retry re-releases may carry earlier
//! deadlines than the window tail, so insertion keeps the sort (for an
//! agreeable stream with no retries this is a plain push-back).
//! Crashed shards are never eligible; when every shard is crashed the
//! job is dropped. On top of that window:
//!
//! * [`RoutingPolicy::RoundRobin`] — cyclic assignment (skipping
//!   crashed shards without consuming their turn's successor);
//! * [`RoutingPolicy::Random`] — seeded uniform choice among eligible
//!   shards;
//! * [`RoutingPolicy::Jsq`] — join-shortest-queue on the in-flight
//!   count, ties broken toward the lowest shard index (so decisions are
//!   a function of the `(release, deadline)` stream, not of job-id
//!   labels);
//! * [`RoutingPolicy::LeastEnergy`] — power-aware: route where the
//!   DES step-2 power probe (the closed-form max-prefix-density speed
//!   of the shard's in-flight window, priced through the machine's
//!   power model) grows the least; comparisons use `f64::total_cmp`
//!   with ties toward the lowest index, so NaN deltas (degenerate power
//!   models) still produce a deterministic, documented choice;
//! * [`RoutingPolicy::Feedback`] — failover-aware feedback routing:
//!   each shard reports its queue depth (pending in-flight demand) and
//!   health (current capacity fraction from the fault plan); the job
//!   goes to the shard with the lowest depth ÷ capacity score, ties
//!   toward the lowest index. With no faults this is least-pending-work
//!   routing; under brownouts it sheds load away from degraded shards.

use std::cmp::Ordering;
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// One hedged job's `(id, processed, quality)` as observed on a shard,
/// fed to the first-wins duel settlement in the merge.
type DuelOutcome = (u32, f64, f64);

use qes_core::job::{Job, JobId, JobSet};
use qes_core::obs::{Event, NoopObserver, Observer, OutageKind};
use qes_core::power::PowerModel;
use qes_core::quality::{ExpQuality, QualityFunction};
use qes_core::time::SimTime;
use qes_core::MetricsRegistry;
use qes_multicore::SchedulingPolicy;
use qes_sim::engine::{demand_met, SimConfig, Simulator};
use qes_sim::report::{SimCounters, SimReport};
use qes_sim::trace::{SimTrace, TraceSlice};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rayon::prelude::*;

use crate::admission::{AdmissionPolicy, HedgePolicy, OverloadPolicy, RetryPolicy};
use crate::fault::{effective_cores, FaultKind, FaultPlan};
use crate::meter::PowerMeter;

/// How the dispatcher picks a shard for each arriving job.
#[derive(Clone, Debug, PartialEq)]
pub enum RoutingPolicy {
    /// Cyclic assignment: job `k` (in release order) goes to shard
    /// `k mod N` (the next eligible shard under faults).
    RoundRobin,
    /// Uniform random shard per job, drawn from a dedicated
    /// deterministic stream.
    Random {
        /// Seed of the routing RNG (independent of the shard seeds).
        seed: u64,
    },
    /// Join-shortest-queue on the in-flight job count; ties go to the
    /// lowest shard index.
    Jsq,
    /// Least-energy-increment: the shard whose step-2 power probe rises
    /// the least when the job is added; ties go to the lowest index.
    LeastEnergy,
    /// Feedback routing on shard-reported queue depth ÷ available
    /// capacity; ties go to the lowest index. Skips crashed shards and
    /// sheds load away from browned-out ones.
    Feedback,
}

impl RoutingPolicy {
    /// Stable lowercase label for report keys and figure rows.
    pub fn label(&self) -> &'static str {
        match self {
            RoutingPolicy::RoundRobin => "round-robin",
            RoutingPolicy::Random { .. } => "random",
            RoutingPolicy::Jsq => "jsq",
            RoutingPolicy::LeastEnergy => "least-energy",
            RoutingPolicy::Feedback => "feedback",
        }
    }
}

/// Derive shard `lane`'s seed from a cluster base seed (SplitMix64-style
/// mix-and-finalize). Distinct lanes map to distinct, well-separated
/// seeds, so per-shard `StdRng` streams are disjoint in practice;
/// changing one shard's seed leaves every other shard's stream — and
/// report — untouched.
pub fn split_seed(base: u64, lane: u64) -> u64 {
    let mut z = base ^ lane.wrapping_add(1).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The in-flight window of one shard: `(deadline_us, demand, slot)` of
/// routed jobs whose deadlines are still ahead, where `slot` indexes the
/// shard's routed-job stream (so a crash can strand exactly the jobs
/// still in the window). Deadline-sorted by construction; retirement
/// pops from the front and the probe scans prefixes in deadline order.
type InFlight = VecDeque<(u64, f64, u32)>;

/// The step-2 probe speed (GHz) of one in-flight window at `now_us`,
/// optionally with a candidate job appended: the maximum prefix density
/// over deadline-ordered jobs, exactly the closed form the DES policy
/// uses for its per-core power requests (demands are processing units =
/// 1 GHz·ms, hence the factor 1000 against microsecond windows). A
/// window or candidate whose deadline is at or before `now_us` (zero
/// slack) is clamped to a 1 µs floor so the density stays finite
/// instead of underflowing or dividing by zero.
fn probe_speed(window: &InFlight, now_us: u64, candidate: Option<(u64, f64)>) -> f64 {
    let mut cum = 0.0;
    let mut speed = 0.0f64;
    for &(d_us, w, _) in window {
        cum += w;
        speed = speed.max(cum * 1000.0 / d_us.saturating_sub(now_us).max(1) as f64);
    }
    if let Some((d_us, w)) = candidate {
        cum += w;
        speed = speed.max(cum * 1000.0 / d_us.saturating_sub(now_us).max(1) as f64);
    }
    speed
}

/// Sum of demands still in one shard's in-flight window — the "queue
/// depth" a shard reports to [`RoutingPolicy::Feedback`].
fn pending_demand(window: &InFlight) -> f64 {
    window.iter().map(|&(_, w, _)| w).sum()
}

/// One hedge dispatch: a second copy of a slow job sent to another
/// shard ([`dispatch_protected`] with [`HedgePolicy::SlackFraction`]).
#[derive(Clone, Copy, Debug)]
pub struct HedgeRecord {
    /// The instant the hedge copy was dispatched.
    pub at: SimTime,
    /// The hedged job (original release and deadline).
    pub job: Job,
    /// Shard holding the primary copy at dispatch time.
    pub from: u32,
    /// Shard the hedge copy went to.
    pub to: u32,
    /// Stream slot of the primary copy on `from`.
    pub primary_slot: u32,
    /// Stream slot of the hedge copy on `to`.
    pub hedge_slot: u32,
    /// True when both copies survived to simulation (neither was
    /// stranded by a later crash): the merged report must settle the
    /// duel with first-wins accounting.
    pub duel: bool,
}

/// The outcome of the fault-aware dispatch pre-pass
/// ([`dispatch_with_faults`] / [`dispatch_protected`]).
#[derive(Clone, Debug)]
pub struct DispatchPlan {
    /// Final per-shard job streams: original arrivals plus surviving
    /// retry re-releases and hedge copies, minus stranded copies,
    /// sorted by `(release, deadline, id)`. Retries and hedge copies
    /// keep their original deadline, so the delay eats the job's slack
    /// (streams may lose agreeability; the per-shard engine does not
    /// require it).
    pub shard_jobs: Vec<JobSet>,
    /// Shard of each *original* job in stream order, `u32::MAX` when
    /// the dispatcher dropped it (no eligible shard at release, or a
    /// later stranding with an infeasible retry) or the admission
    /// policy rejected it (the `dropped`/`rejected` lists distinguish
    /// the two).
    pub assignment: Vec<u32>,
    /// Jobs the dispatcher dropped, with the drop instant.
    pub dropped: Vec<(SimTime, Job)>,
    /// Jobs the admission policy rejected at arrival, with the
    /// rejection instant. Always empty under
    /// [`AdmissionPolicy::AcceptAll`].
    pub rejected: Vec<(SimTime, Job)>,
    /// Stranding records `(crash instant, job, crashed shard)`, in
    /// crash order — one per stranded copy, whether or not the retry
    /// later succeeded (a stranded copy of a hedged pair whose twin
    /// survives is recorded here too, then silently cancelled).
    pub redispatches: Vec<(SimTime, JobId, u32)>,
    /// Retry re-releases that were successfully routed to a surviving
    /// shard.
    pub retried: u64,
    /// Hedge dispatches, in fire order.
    pub hedges: Vec<HedgeRecord>,
    /// Dispatcher-level observability events (admission rejects, retry
    /// re-releases, hedge dispatches) in scan order — timestamps are
    /// non-decreasing, ready to replay into an [`Observer`].
    pub events: Vec<(SimTime, Event)>,
}

/// Mutable routing state shared by every arrival of the dispatch scan.
struct Router<'a> {
    routing: &'a RoutingPolicy,
    model: &'a dyn PowerModel,
    plan: &'a FaultPlan,
    quality: &'a dyn QualityFunction,
    admission: &'a AdmissionPolicy,
    shards: usize,
    inflight: Vec<InFlight>,
    /// Per-shard routed-job stream (in routing order) and whether each
    /// entry is still alive (not stranded by a later crash).
    streams: Vec<Vec<Job>>,
    alive: Vec<Vec<bool>>,
    /// Backpressure hysteresis: whether each shard is currently
    /// shedding (in-flight demand crossed the cap and has not yet
    /// drained to the resume level). All-false under every other
    /// admission policy.
    shedding: Vec<bool>,
    rr: usize,
    rng: Option<StdRng>,
}

impl Router<'_> {
    /// Retire expired in-flight entries everywhere, so counts and
    /// probes see only live work. Windows are deadline-FIFO.
    fn retire(&mut self, now_us: u64) {
        for w in &mut self.inflight {
            while w.front().is_some_and(|&(d, _, _)| d <= now_us) {
                w.pop_front();
            }
        }
    }

    /// Shards accepting work at `now` (not inside a crash window).
    fn eligible_at(&self, now: SimTime) -> Vec<usize> {
        (0..self.shards)
            .filter(|&s| !self.plan.is_crashed(s, now))
            .collect()
    }

    /// Overload-admission verdict for one *original* arrival (retries
    /// and hedge copies always bypass admission). Call after
    /// [`Router::retire`] so windows reflect only live work. Updates
    /// the backpressure hysteresis state as a side effect.
    fn admits(&mut self, job: &Job, eligible: &[usize]) -> bool {
        let now = job.release;
        let now_us = now.as_micros();
        match *self.admission {
            AdmissionPolicy::AcceptAll => true,
            AdmissionPolicy::SlackFloor {
                floor,
                capacity_ghz,
            } => {
                let q_max = self.quality.max_job_quality(job);
                // NaN-safe: a NaN or zero-mass max quality admits.
                if q_max.partial_cmp(&0.0) != Some(Ordering::Greater) {
                    // A zero-mass job can't fall below any floor.
                    return true;
                }
                let cand = (job.deadline.as_micros(), job.demand);
                let mut best = 0.0f64;
                for &s in eligible {
                    // Required speed to clear this shard's window plus
                    // the candidate; the shard can deliver at most its
                    // (fault-degraded) capacity, so the achievable
                    // completed fraction caps at eff / required.
                    let s_req = probe_speed(&self.inflight[s], now_us, Some(cand));
                    let eff = capacity_ghz * self.plan.capacity_fraction(s, now);
                    let frac = if s_req > 0.0 {
                        (eff / s_req).clamp(0.0, 1.0)
                    } else {
                        1.0
                    };
                    let q = self.quality.job_quality(job, frac * job.demand);
                    best = best.max(q / q_max);
                }
                best >= floor
            }
            AdmissionPolicy::Backpressure { cap, resume } => {
                debug_assert!(resume <= cap, "hysteresis band inverted");
                for s in 0..self.shards {
                    let depth = pending_demand(&self.inflight[s]);
                    if self.shedding[s] {
                        if depth <= resume {
                            self.shedding[s] = false;
                        }
                    } else if depth >= cap {
                        self.shedding[s] = true;
                    }
                }
                !eligible.iter().all(|&s| self.shedding[s])
            }
        }
    }

    /// Route one arrival (original or retry) at its release instant.
    /// Returns the chosen shard, or `None` when every shard is crashed.
    fn admit(&mut self, job: Job) -> Option<usize> {
        let now = job.release;
        let now_us = now.as_micros();
        self.retire(now_us);
        let eligible = self.eligible_at(now);
        if eligible.is_empty() {
            return None;
        }
        let shard = match self.routing {
            RoutingPolicy::RoundRobin => {
                // First eligible shard at or after the cursor,
                // cyclically; with no faults this is the plain cursor.
                let s = (0..self.shards)
                    .map(|k| (self.rr + k) % self.shards)
                    .find(|s| !self.plan.is_crashed(*s, now))
                    .expect("eligible set is non-empty");
                self.rr = (s + 1) % self.shards;
                s
            }
            RoutingPolicy::Random { .. } => {
                let u: f64 = self
                    .rng
                    .as_mut()
                    .expect("random routing carries an rng")
                    .gen();
                eligible[((u * eligible.len() as f64) as usize).min(eligible.len() - 1)]
            }
            RoutingPolicy::Jsq => {
                // Strict `<` keeps the lowest index on ties.
                let mut best = eligible[0];
                for &s in &eligible[1..] {
                    if self.inflight[s].len() < self.inflight[best].len() {
                        best = s;
                    }
                }
                best
            }
            RoutingPolicy::LeastEnergy => {
                let cand = (job.deadline.as_micros(), job.demand);
                let delta = |s: usize| {
                    let w = &self.inflight[s];
                    let before = self.model.dynamic_power(probe_speed(w, now_us, None));
                    let after = self.model.dynamic_power(probe_speed(w, now_us, Some(cand)));
                    after - before
                };
                // total_cmp gives a total order (NaN sorts above +inf),
                // so a degenerate power model still yields the
                // documented lowest-index tie-break deterministically.
                let mut best = eligible[0];
                let mut best_delta = delta(best);
                for &s in &eligible[1..] {
                    let d = delta(s);
                    if d.total_cmp(&best_delta) == Ordering::Less {
                        best_delta = d;
                        best = s;
                    }
                }
                best
            }
            RoutingPolicy::Feedback => {
                // Queue depth ÷ available capacity: a shard at half
                // capacity looks twice as deep. Crashed shards are
                // already excluded from `eligible`.
                let score = |s: usize| {
                    pending_demand(&self.inflight[s]) / self.plan.capacity_fraction(s, now)
                };
                let mut best = eligible[0];
                let mut best_score = score(best);
                for &s in &eligible[1..] {
                    let sc = score(s);
                    if sc.total_cmp(&best_score) == Ordering::Less {
                        best_score = sc;
                        best = s;
                    }
                }
                best
            }
        };
        let slot = self.streams[shard].len() as u32;
        self.streams[shard].push(job);
        self.alive[shard].push(true);
        let d_us = job.deadline.as_micros();
        let w = &mut self.inflight[shard];
        // Deadline-sorted insert; equal deadlines keep arrival order.
        // For an agreeable stream with no retries this is the back.
        let pos = w.partition_point(|&(d, _, _)| d <= d_us);
        w.insert(pos, (d_us, job.demand, slot));
        Some(shard)
    }
}

/// Assign every job of the release-sorted stream to a shard, under a
/// fault plan, with stranded-job failover.
///
/// This is [`dispatch_protected`] under the default [`OverloadPolicy`]
/// — accept everything, retry forever at the plan's fixed delay, never
/// hedge — which degenerates to the PR 9 fault-failover pre-pass by
/// construction: `rejected` and `hedges` stay empty and every retry
/// re-release lands at exactly `crash + retry_delay`. The quality
/// function is never consulted under [`AdmissionPolicy::AcceptAll`].
/// Conservation: `routed(shard streams) + dropped = arrivals`.
pub fn dispatch_with_faults(
    jobs: &JobSet,
    shards: usize,
    routing: &RoutingPolicy,
    model: &dyn PowerModel,
    plan: &FaultPlan,
    end: SimTime,
) -> DispatchPlan {
    dispatch_protected(
        jobs,
        shards,
        routing,
        model,
        &ExpQuality::PAPER_DEFAULT,
        plan,
        &OverloadPolicy::default(),
        end,
    )
}

/// Assign every job of the release-sorted stream to a shard, under a
/// fault plan *and* an overload-protection policy.
///
/// A deterministic sequential pre-pass over the merged event stream of
/// original arrivals, retry re-releases, crash instants, and hedge fire
/// instants (ties resolve crash → arrival → retry → hedge). On top of
/// the fault-failover semantics of [`dispatch_with_faults`]:
///
/// * **Admission** (`overload.admission`): each *original* arrival is
///   screened before routing; a rejected job gets assignment
///   `u32::MAX` and lands in `rejected` (never `dropped` — the two
///   classes stay disjoint). Retries and hedge copies bypass
///   admission: the cluster has already invested in them.
/// * **Retry budget** (`overload.retry`): a stranded copy's attempt
///   counter increments per strand; past `max_attempts` it gives up
///   into `dropped`. Otherwise it re-releases after
///   [`RetryPolicy::delay_for`] (exponential backoff, seeded jitter),
///   keeping its original deadline.
/// * **Hedging** (`overload.hedge`): when an original is routed and
///   the slack-fraction instant lands strictly inside `(release,
///   deadline)` and before the horizon, a hedge copy fires at that
///   instant *iff the primary is still alive*, to the lowest-scoring
///   healthy shard other than the primary's (feedback score: pending
///   demand ÷ capacity fraction). A stranded copy whose twin survives
///   is cancelled silently (recorded in `redispatches`, not retried or
///   dropped); a hedge pair with both copies alive at the end is a
///   *duel* the report merge settles first-wins.
///
/// Conservation: `routed(shard streams) + dropped + rejected =
/// arrivals + duels`.
#[allow(clippy::too_many_arguments)]
pub fn dispatch_protected(
    jobs: &JobSet,
    shards: usize,
    routing: &RoutingPolicy,
    model: &dyn PowerModel,
    quality: &dyn QualityFunction,
    plan: &FaultPlan,
    overload: &OverloadPolicy,
    end: SimTime,
) -> DispatchPlan {
    assert!(shards > 0, "a cluster needs at least one shard");
    assert_eq!(plan.shards(), shards, "fault plan must cover every shard");
    let retry_policy = &overload.retry;
    let hedging = !overload.hedge.is_disabled();
    let screened = !matches!(overload.admission, AdmissionPolicy::AcceptAll);
    let mut router = Router {
        routing,
        model,
        plan,
        quality,
        admission: &overload.admission,
        shards,
        inflight: vec![InFlight::new(); shards],
        streams: vec![Vec::new(); shards],
        alive: vec![Vec::new(); shards],
        shedding: vec![false; shards],
        rr: 0,
        rng: match routing {
            RoutingPolicy::Random { seed } => Some(StdRng::seed_from_u64(*seed)),
            _ => None,
        },
    };

    let stored: Vec<Job> = jobs.iter().copied().collect();
    let crash_events: Vec<(SimTime, usize)> = plan
        .crash_starts()
        .into_iter()
        .filter(|&(t, _)| t < end)
        .collect();
    let mut crash_idx = 0usize;
    let mut next_orig = 0usize;
    // Retries keyed by (release, deadline, id), valued with the job's
    // attempt number: BTreeMap order is the deterministic re-release
    // order.
    let mut retries: BTreeMap<(u64, u64, u32), (Job, u32)> = BTreeMap::new();
    // Strand count per original job id (the retry budget's meter).
    let mut attempts: BTreeMap<u32, u32> = BTreeMap::new();
    // Scheduled hedge fires keyed by (fire, deadline, id), valued with
    // the job and its primary copy's location.
    let mut hedges_pending: BTreeMap<(u64, u64, u32), (Job, usize, u32)> = BTreeMap::new();
    // Live copy locations per job id — maintained only while hedging
    // (the invariant "at most one alive copy per (id, shard)" holds
    // because hedge targets always differ from the primary shard and
    // retries fire only when no copy is alive).
    let mut copies: BTreeMap<u32, Vec<(usize, u32)>> = BTreeMap::new();

    let mut assignment: Vec<u32> = Vec::with_capacity(stored.len());
    let mut dropped: Vec<(SimTime, Job)> = Vec::new();
    let mut rejected: Vec<(SimTime, Job)> = Vec::new();
    let mut redispatches: Vec<(SimTime, JobId, u32)> = Vec::new();
    let mut retried = 0u64;
    let mut hedges: Vec<HedgeRecord> = Vec::new();
    let mut events: Vec<(SimTime, Event)> = Vec::new();

    enum Step {
        Crash,
        Orig,
        Retry,
        Hedge,
    }
    loop {
        let t_crash = crash_events.get(crash_idx).map(|&(t, _)| t);
        let t_orig = stored.get(next_orig).map(|j| j.release);
        let t_retry = retries
            .keys()
            .next()
            .map(|&(r, _, _)| SimTime::from_micros(r));
        let t_hedge = hedges_pending
            .keys()
            .next()
            .map(|&(h, _, _)| SimTime::from_micros(h));
        if t_crash.is_none() && t_orig.is_none() && t_retry.is_none() && t_hedge.is_none() {
            break;
        }
        let tc = t_crash.unwrap_or(SimTime::MAX);
        let to = t_orig.unwrap_or(SimTime::MAX);
        let tr = t_retry.unwrap_or(SimTime::MAX);
        let th = t_hedge.unwrap_or(SimTime::MAX);
        // Tie order crash → arrival → retry → hedge; the `is_some`
        // guards keep an exhausted stream's MAX sentinel from winning
        // a MAX-vs-MAX tie.
        let step = if t_crash.is_some() && tc <= to && tc <= tr && tc <= th {
            Step::Crash
        } else if t_orig.is_some() && to <= tr && to <= th {
            Step::Orig
        } else if t_retry.is_some() && tr <= th {
            Step::Retry
        } else {
            Step::Hedge
        };
        match step {
            Step::Crash => {
                let (c, shard) = crash_events[crash_idx];
                crash_idx += 1;
                let c_us = c.as_micros();
                let w = &mut router.inflight[shard];
                // Jobs whose deadlines already passed completed before
                // the crash; the rest are stranded.
                while w.front().is_some_and(|&(d, _, _)| d <= c_us) {
                    w.pop_front();
                }
                for (_, _, slot) in w.drain(..) {
                    let job = router.streams[shard][slot as usize];
                    router.alive[shard][slot as usize] = false;
                    redispatches.push((c, job.id, shard as u32));
                    if hedging {
                        if let Some(locs) = copies.get_mut(&job.id.0) {
                            locs.retain(|&(s, sl)| !(s == shard && sl == slot));
                            if !locs.is_empty() {
                                // The twin copy survives: cancel this
                                // strand silently — no retry, no drop.
                                continue;
                            }
                        }
                    }
                    let attempt = attempts.entry(job.id.0).or_insert(0);
                    *attempt += 1;
                    if *attempt > retry_policy.max_attempts {
                        // Retry budget exhausted: give up cleanly.
                        dropped.push((c, job));
                        continue;
                    }
                    let delay = retry_policy.delay_for(*attempt, plan.retry_delay(), job.id.0);
                    let new_release = c + delay;
                    if new_release >= job.deadline || new_release > end {
                        dropped.push((c, job));
                    } else {
                        retries.insert(
                            (new_release.as_micros(), job.deadline.as_micros(), job.id.0),
                            (
                                Job {
                                    release: new_release,
                                    ..job
                                },
                                *attempt,
                            ),
                        );
                    }
                }
            }
            Step::Orig => {
                let job = stored[next_orig];
                next_orig += 1;
                if screened {
                    router.retire(job.release.as_micros());
                    let eligible = router.eligible_at(job.release);
                    if !eligible.is_empty() && !router.admits(&job, &eligible) {
                        assignment.push(u32::MAX);
                        events.push((
                            job.release,
                            Event::AdmissionReject {
                                job: job.id,
                                policy: overload.admission.label(),
                            },
                        ));
                        rejected.push((job.release, job));
                        continue;
                    }
                }
                match router.admit(job) {
                    Some(s) => {
                        assignment.push(s as u32);
                        if hedging {
                            let slot = (router.streams[s].len() - 1) as u32;
                            copies.insert(job.id.0, vec![(s, slot)]);
                            if let HedgePolicy::SlackFraction { fraction } = overload.hedge {
                                let r_us = job.release.as_micros();
                                let d_us = job.deadline.as_micros();
                                let h_us = r_us + ((d_us - r_us) as f64 * fraction) as u64;
                                // Only hedge when the fire instant lies
                                // strictly inside the job's window and
                                // before the horizon.
                                if h_us > r_us && h_us < d_us && SimTime::from_micros(h_us) < end {
                                    hedges_pending.insert((h_us, d_us, job.id.0), (job, s, slot));
                                }
                            }
                        }
                    }
                    None => {
                        assignment.push(u32::MAX);
                        dropped.push((job.release, job));
                    }
                }
            }
            Step::Retry => {
                let (_, (job, attempt)) = retries.pop_first().expect("retry queue is non-empty");
                match router.admit(job) {
                    Some(s) => {
                        retried += 1;
                        events.push((
                            job.release,
                            Event::Retry {
                                job: job.id,
                                attempt,
                            },
                        ));
                        if hedging {
                            let slot = (router.streams[s].len() - 1) as u32;
                            copies.insert(job.id.0, vec![(s, slot)]);
                        }
                    }
                    None => dropped.push((job.release, job)),
                }
            }
            Step::Hedge => {
                let ((h_us, _, _), (job, p_shard, p_slot)) = hedges_pending
                    .pop_first()
                    .expect("hedge queue is non-empty");
                if !router.alive[p_shard][p_slot as usize] {
                    // The primary was stranded before the hedge fired;
                    // the retry path owns the job now.
                    continue;
                }
                let at = SimTime::from_micros(h_us);
                router.retire(h_us);
                // Next-best healthy shard, excluding the primary's, by
                // feedback score (pending demand ÷ capacity fraction);
                // the ascending scan with a strict compare keeps the
                // lowest index on ties.
                let mut target: Option<(usize, f64)> = None;
                for s in 0..shards {
                    if s == p_shard || plan.is_crashed(s, at) {
                        continue;
                    }
                    let score = pending_demand(&router.inflight[s]) / plan.capacity_fraction(s, at);
                    let better = match target {
                        Some((_, best)) => score.total_cmp(&best) == Ordering::Less,
                        None => true,
                    };
                    if better {
                        target = Some((s, score));
                    }
                }
                let Some((to_shard, _)) = target else {
                    // No healthy twin shard: skip this hedge.
                    continue;
                };
                let copy = Job { release: at, ..job };
                let slot = router.streams[to_shard].len() as u32;
                router.streams[to_shard].push(copy);
                router.alive[to_shard].push(true);
                let d_us = copy.deadline.as_micros();
                let w = &mut router.inflight[to_shard];
                let pos = w.partition_point(|&(d, _, _)| d <= d_us);
                w.insert(pos, (d_us, copy.demand, slot));
                copies.entry(job.id.0).or_default().push((to_shard, slot));
                events.push((
                    at,
                    Event::Hedge {
                        job: job.id,
                        to: to_shard as u32,
                    },
                ));
                hedges.push(HedgeRecord {
                    at,
                    job,
                    from: p_shard as u32,
                    to: to_shard as u32,
                    primary_slot: p_slot,
                    hedge_slot: slot,
                    duel: false,
                });
            }
        }
    }

    // A hedge whose both copies survived to simulation is a duel; the
    // merged report settles it first-wins.
    for h in &mut hedges {
        h.duel = router.alive[h.from as usize][h.primary_slot as usize]
            && router.alive[h.to as usize][h.hedge_slot as usize];
    }
    let duels = hedges.iter().filter(|h| h.duel).count();

    let shard_jobs: Vec<JobSet> = router
        .streams
        .into_iter()
        .zip(router.alive)
        .map(|(stream, alive)| {
            let survivors: Vec<Job> = stream
                .into_iter()
                .zip(alive)
                .filter_map(|(j, a)| a.then_some(j))
                .collect();
            // Retries keep original deadlines, so a shard's stream may
            // not be agreeable; the engine does not require it, and
            // `new_unchecked` applies the same (release, deadline, id)
            // sort as the validated constructor.
            JobSet::new_unchecked(survivors)
        })
        .collect();
    debug_assert_eq!(
        shard_jobs.iter().map(JobSet::len).sum::<usize>() + dropped.len() + rejected.len(),
        jobs.len() + duels,
        "every arrival routed exactly once, rejected, dropped, or duelling"
    );

    DispatchPlan {
        shard_jobs,
        assignment,
        dropped,
        rejected,
        redispatches,
        retried,
        hedges,
        events,
    }
}

/// Assign every job of the release-sorted stream to a shard (the
/// fault-free path).
///
/// Returns one shard index per job, in the job set's stored
/// `(release, deadline, id)` order. This is a deterministic sequential
/// pre-pass: the same stream and routing policy always produce the same
/// assignment, independent of thread count. `model` prices the
/// [`RoutingPolicy::LeastEnergy`] probe and is ignored by the other
/// policies.
pub fn route(
    jobs: &JobSet,
    shards: usize,
    routing: &RoutingPolicy,
    model: &dyn PowerModel,
) -> Vec<u32> {
    let plan = FaultPlan::none(shards);
    dispatch_with_faults(jobs, shards, routing, model, &plan, SimTime::MAX).assignment
}

/// Split a job set into per-shard job sets according to a [`route`]
/// assignment. Jobs keep their global ids; each shard's subset of an
/// agreeable stream is agreeable, and re-validation preserves the
/// relative order (a subsequence of a sorted sequence is sorted).
pub fn split_jobs(jobs: &JobSet, assignment: &[u32], shards: usize) -> Vec<JobSet> {
    assert_eq!(jobs.len(), assignment.len(), "one shard per job");
    let mut per: Vec<Vec<Job>> = vec![Vec::new(); shards];
    for (job, &s) in jobs.iter().zip(assignment) {
        per[s as usize].push(*job);
    }
    per.into_iter()
        .map(|v| JobSet::new(v).expect("subset of an agreeable stream is agreeable"))
        .collect()
}

/// One shard's outcome inside a [`ClusterReport`].
#[derive(Clone, Debug)]
pub struct ShardRun {
    /// Shard index (0-based).
    pub shard: usize,
    /// The shard's derived seed ([`split_seed`] of the cluster base
    /// seed, unless overridden).
    pub seed: u64,
    /// The shard machine's simulation report (fault epochs merged).
    pub report: SimReport,
    /// Metered wall-energy reading of this shard's schedule, when the
    /// engine carries a [`PowerMeter`] (noise stream seeded by
    /// [`ShardRun::seed`]).
    pub measured_energy: Option<f64>,
}

/// The merged outcome of a sharded cluster run.
#[derive(Clone, Debug)]
pub struct ClusterReport {
    /// Routing policy label.
    pub routing: String,
    /// Cluster-level aggregate: quality/energy/max-quality and every
    /// counter summed over shards in shard order. For a 1-shard cluster
    /// this *is* the shard's report (bitwise).
    pub merged: SimReport,
    /// Per-shard reports, indexed by shard.
    pub shards: Vec<ShardRun>,
    /// Jobs the dispatcher dropped: arrivals with no eligible shard,
    /// stranded jobs whose retry re-release was infeasible, or retry
    /// budgets exhausted. Zero on the fault-free path.
    pub jobs_dropped: u64,
    /// Stranded-job re-releases successfully routed to a surviving
    /// shard. Zero on the fault-free path.
    pub jobs_retried: u64,
    /// Jobs the admission policy turned away at arrival — a class
    /// disjoint from `jobs_dropped` (rejection is a *choice*; drops are
    /// capacity/feasibility failures). Zero under
    /// [`AdmissionPolicy::AcceptAll`].
    pub jobs_rejected: u64,
    /// Hedge copies dispatched by the overload policy. Zero under
    /// [`HedgePolicy::Disabled`].
    pub jobs_hedged: u64,
    /// Hedge duels the *hedge copy* won (strictly better quality than
    /// the primary; ties go to the primary).
    pub hedges_won: u64,
    /// Max-quality mass of the dropped jobs — what a healthy cluster
    /// could have earned from them. Feeds
    /// [`ClusterReport::degraded_quality`].
    pub dropped_max_quality: f64,
    /// Max-quality mass of the rejected jobs; like
    /// `dropped_max_quality`, charged against
    /// [`ClusterReport::degraded_quality`] so admission control cannot
    /// inflate delivered quality by shrinking the denominator.
    pub rejected_max_quality: f64,
}

impl ClusterReport {
    /// Total metered energy, if the cluster has shards and every shard
    /// was metered (summed in shard order). An empty shard list was
    /// never metered, so it reports `None`, not `Some(0.0)`.
    pub fn measured_energy(&self) -> Option<f64> {
        if self.shards.is_empty() {
            return None;
        }
        self.shards
            .iter()
            .map(|s| s.measured_energy)
            .try_fold(0.0, |acc, e| e.map(|e| acc + e))
    }

    /// Largest per-shard job count — with [`ClusterReport::min_shard_jobs`]
    /// a quick balance check on the routing policy.
    pub fn max_shard_jobs(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.report.jobs_total())
            .max()
            .unwrap_or(0)
    }

    /// Smallest per-shard job count.
    pub fn min_shard_jobs(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.report.jobs_total())
            .min()
            .unwrap_or(0)
    }

    /// Degraded-mode normalized quality: earned quality over the
    /// quality a fault-free, admit-everything cluster could have earned
    /// *including* the jobs the dispatcher dropped or rejected. Equal
    /// to `merged.normalized_quality()` when nothing was dropped or
    /// rejected. A run with no quality mass at all (e.g. an empty
    /// arrival stream) reports a NaN-free `1.0`.
    pub fn degraded_quality(&self) -> f64 {
        let denom = self.merged.max_quality + self.dropped_max_quality + self.rejected_max_quality;
        if denom > 0.0 {
            self.merged.total_quality / denom
        } else {
            1.0
        }
    }

    /// Export the merged report plus per-shard and fault gauges into a
    /// registry.
    pub fn export_metrics(&self, reg: &mut MetricsRegistry) {
        self.merged.export_metrics(reg);
        for s in &self.shards {
            reg.set_gauge(
                format!("cluster.shard{}.quality", s.shard),
                s.report.total_quality,
            );
            reg.set_gauge(
                format!("cluster.shard{}.energy", s.shard),
                s.report.energy_joules,
            );
            reg.set_gauge(
                format!("cluster.shard{}.jobs", s.shard),
                s.report.jobs_total() as f64,
            );
        }
        reg.set_gauge("cluster.jobs_dropped", self.jobs_dropped as f64);
        reg.set_gauge("cluster.jobs_retried", self.jobs_retried as f64);
        reg.set_gauge("cluster.jobs_rejected", self.jobs_rejected as f64);
        reg.set_gauge("cluster.jobs_hedged", self.jobs_hedged as f64);
        reg.set_gauge("cluster.hedges_won", self.hedges_won as f64);
        reg.set_gauge("cluster.degraded_quality", self.degraded_quality());
        if let Some(e) = self.measured_energy() {
            reg.set_gauge("cluster.measured_energy", e);
        }
    }
}

/// Field-by-field counter sum (destructured so a new [`SimCounters`]
/// field is a compile error here instead of a silent merge bug).
fn add_counters(into: &mut SimCounters, from: &SimCounters) {
    let SimCounters {
        jobs_total,
        jobs_satisfied,
        jobs_partial,
        jobs_zero,
        jobs_discarded,
        invocations,
        invocations_kept,
        plans_installed,
        plans_kept,
    } = from;
    into.jobs_total += jobs_total;
    into.jobs_satisfied += jobs_satisfied;
    into.jobs_partial += jobs_partial;
    into.jobs_zero += jobs_zero;
    into.jobs_discarded += jobs_discarded;
    into.invocations += invocations;
    into.invocations_kept += invocations_kept;
    into.plans_installed += plans_installed;
    into.plans_kept += plans_kept;
}

/// Re-timestamps an epoch simulation's events from epoch-local time to
/// absolute cluster time. With `base == ZERO` (the fault-free single
/// epoch) the mapping is the identity on integer microseconds, so the
/// fault-free event stream is untouched.
struct OffsetObserver<'a, O> {
    inner: &'a mut O,
    base: SimTime,
}

impl<O: Observer> Observer for OffsetObserver<'_, O> {
    const ENABLED: bool = O::ENABLED;

    #[inline]
    fn record(&mut self, at: SimTime, event: Event) {
        self.inner
            .record(self.base + at.saturating_since(SimTime::ZERO), event);
    }
}

/// A cluster of `N` identical simulated machines behind one dispatcher.
///
/// Each shard runs the unmodified [`Simulator`] over its routed slice of
/// the arrival stream with its own policy instance; shards execute in
/// parallel on the rayon pool and merge deterministically (see the
/// module docs for the contract). An optional [`FaultPlan`] injects
/// crash/brownout windows per shard.
#[derive(Clone, Debug)]
pub struct ClusterEngine {
    shards: usize,
    routing: RoutingPolicy,
    seed: u64,
    shard_seeds: Option<Vec<u64>>,
    meter: Option<PowerMeter>,
    fault: FaultPlan,
    overload: OverloadPolicy,
}

impl ClusterEngine {
    /// A cluster of `shards` machines, round-robin routing, base seed 0,
    /// no metering, no faults, no overload protection.
    pub fn new(shards: usize) -> Self {
        assert!(shards > 0, "a cluster needs at least one shard");
        ClusterEngine {
            shards,
            routing: RoutingPolicy::RoundRobin,
            seed: 0,
            shard_seeds: None,
            meter: None,
            fault: FaultPlan::none(shards),
            overload: OverloadPolicy::default(),
        }
    }

    /// Builder: routing policy.
    pub fn with_routing(mut self, routing: RoutingPolicy) -> Self {
        self.routing = routing;
        self
    }

    /// Builder: cluster base seed (shard `i` derives
    /// [`split_seed`]`(seed, i)`).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Builder: explicit per-shard seeds, overriding the derived split.
    /// Must supply exactly one seed per shard.
    pub fn with_shard_seeds(mut self, seeds: Vec<u64>) -> Self {
        assert_eq!(seeds.len(), self.shards, "one seed per shard");
        self.shard_seeds = Some(seeds);
        self
    }

    /// Builder: meter every shard's schedule with a [`PowerMeter`]
    /// (its noise stream re-seeded per shard from the shard seed).
    pub fn with_meter(mut self, meter: PowerMeter) -> Self {
        self.meter = Some(meter);
        self
    }

    /// Builder: inject a deterministic fault plan. The plan must cover
    /// exactly this cluster's shards. [`FaultPlan::none`] (the default)
    /// is bitwise-identical to the fault-free path.
    pub fn with_fault_plan(mut self, plan: FaultPlan) -> Self {
        assert_eq!(
            plan.shards(),
            self.shards,
            "fault plan must cover every shard"
        );
        self.fault = plan;
        self
    }

    /// Builder: full overload-protection policy (admission + retry
    /// budget + hedging). The default policy is bitwise-identical to
    /// running without one.
    pub fn with_overload(mut self, overload: OverloadPolicy) -> Self {
        self.overload = overload;
        self
    }

    /// Builder: admission policy only (retry/hedge settings untouched).
    pub fn with_admission(mut self, admission: AdmissionPolicy) -> Self {
        self.overload.admission = admission;
        self
    }

    /// Builder: retry-budget policy only.
    pub fn with_retry_policy(mut self, retry: RetryPolicy) -> Self {
        self.overload.retry = retry;
        self
    }

    /// Builder: hedging policy only.
    pub fn with_hedging(mut self, hedge: HedgePolicy) -> Self {
        self.overload.hedge = hedge;
        self
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// The routing policy.
    pub fn routing(&self) -> &RoutingPolicy {
        &self.routing
    }

    /// The injected fault plan ([`FaultPlan::none`] by default).
    pub fn fault_plan(&self) -> &FaultPlan {
        &self.fault
    }

    /// The seed shard `i` runs with.
    pub fn shard_seed(&self, shard: usize) -> u64 {
        match &self.shard_seeds {
            Some(seeds) => seeds[shard],
            None => split_seed(self.seed, shard as u64),
        }
    }

    /// Run the cluster: route `jobs`, simulate every shard (in parallel)
    /// on a machine configured like `cfg`, merge. `make_policy(i)`
    /// builds shard `i`'s scheduling policy (one fresh instance per
    /// fault epoch).
    pub fn run<F>(&self, cfg: &SimConfig<'_>, jobs: &JobSet, make_policy: F) -> ClusterReport
    where
        F: Fn(usize) -> Box<dyn SchedulingPolicy> + Sync + Send,
    {
        self.run_observed(cfg, jobs, make_policy, |_| NoopObserver)
            .0
    }

    /// [`ClusterEngine::run`] with one observer per shard, built by
    /// `make_observer(i)` and returned in shard order. Each shard's
    /// event stream opens with a shard-tagged
    /// [`Event::ShardAssign`]; fault windows bracket their epochs with
    /// [`Event::ShardDown`]/[`Event::ShardUp`], crashes report their
    /// stranded jobs as [`Event::Redispatch`], and metered runs tag
    /// their [`Event::PowerSample`]s with the shard index. Observers
    /// are passive: the cluster report is bitwise-identical with or
    /// without them.
    pub fn run_observed<O, F, M>(
        &self,
        cfg: &SimConfig<'_>,
        jobs: &JobSet,
        make_policy: F,
        make_observer: M,
    ) -> (ClusterReport, Vec<O>)
    where
        O: Observer + Send,
        F: Fn(usize) -> Box<dyn SchedulingPolicy> + Sync + Send,
        M: Fn(usize) -> O + Sync + Send,
    {
        self.run_observed_with_dispatch(cfg, jobs, make_policy, make_observer, &mut NoopObserver)
    }

    /// [`ClusterEngine::run_observed`] plus a *dispatcher-level*
    /// observer: the pre-pass's admission rejects, retry re-releases,
    /// and hedge dispatches are replayed into `dispatch_obs` (in scan
    /// order, non-decreasing timestamps) before the shards run. Like
    /// every observer, it is passive — the report is bitwise-identical
    /// with a [`NoopObserver`].
    pub fn run_observed_with_dispatch<O, F, M, D>(
        &self,
        cfg: &SimConfig<'_>,
        jobs: &JobSet,
        make_policy: F,
        make_observer: M,
        dispatch_obs: &mut D,
    ) -> (ClusterReport, Vec<O>)
    where
        O: Observer + Send,
        F: Fn(usize) -> Box<dyn SchedulingPolicy> + Sync + Send,
        M: Fn(usize) -> O + Sync + Send,
        D: Observer,
    {
        let dispatch = dispatch_protected(
            jobs,
            self.shards,
            &self.routing,
            cfg.model,
            cfg.quality,
            &self.fault,
            &self.overload,
            cfg.end,
        );
        if D::ENABLED {
            for &(t, e) in &dispatch.events {
                dispatch_obs.record(t, e);
            }
        }
        let shard_jobs = &dispatch.shard_jobs;
        // Group stranding records by crashed shard for event emission.
        let mut redispatched: Vec<Vec<(SimTime, JobId)>> = vec![Vec::new(); self.shards];
        for &(t, job, from) in &dispatch.redispatches {
            redispatched[from as usize].push((t, job));
        }
        // Ids of hedge duels: both copies run, so the merge must
        // harvest their per-shard outcomes and settle first-wins.
        let duel_ids: BTreeSet<u32> = dispatch
            .hedges
            .iter()
            .filter(|h| h.duel)
            .map(|h| h.job.id.0)
            .collect();

        let runs: Vec<(ShardRun, O, Vec<DuelOutcome>)> = (0..self.shards)
            .into_par_iter()
            .map(|i| {
                let mut obs = make_observer(i);
                if O::ENABLED {
                    obs.record(
                        SimTime::ZERO,
                        Event::ShardAssign {
                            shard: i as u32,
                            jobs: shard_jobs[i].len() as u32,
                        },
                    );
                }
                let (report, trace, outcomes) = run_shard_epochs(
                    cfg,
                    i,
                    &shard_jobs[i],
                    &self.fault,
                    &redispatched[i],
                    &duel_ids,
                    &make_policy,
                    self.meter.is_some(),
                    &mut obs,
                );
                let seed = self.shard_seed(i);
                let measured = self.meter.as_ref().map(|m| {
                    let m = PowerMeter { seed, ..m.clone() };
                    measured_shard_energy(
                        &m,
                        cfg.model,
                        cfg.num_cores,
                        cfg.end,
                        &trace,
                        i as u32,
                        &mut obs,
                    )
                });
                (
                    ShardRun {
                        shard: i,
                        seed,
                        report,
                        measured_energy: measured,
                    },
                    obs,
                    outcomes,
                )
            })
            .collect();

        let mut shards = Vec::with_capacity(self.shards);
        let mut observers = Vec::with_capacity(self.shards);
        let mut duel_outcomes: Vec<BTreeMap<u32, (f64, f64)>> = Vec::with_capacity(self.shards);
        for (run, obs, outcomes) in runs {
            shards.push(run);
            observers.push(obs);
            duel_outcomes.push(
                outcomes
                    .into_iter()
                    .map(|(id, w, q)| (id, (w, q)))
                    .collect(),
            );
        }

        // Merge in shard order, seeded from shard 0's report so a
        // 1-shard cluster is the plain engine run to the bit.
        let mut merged = shards[0].report.clone();
        for s in &shards[1..] {
            merged.total_quality += s.report.total_quality;
            merged.max_quality += s.report.max_quality;
            merged.energy_joules += s.report.energy_joules;
            add_counters(&mut merged.counters, &s.report.counters);
        }

        // First-wins settlement of hedge duels. Both copies ran and
        // were counted once each by their shards; the cluster delivered
        // the *better* outcome exactly once. The loser's quality,
        // max-quality mass, and job-class count come back out of the
        // merged report; its energy (and the scheduler bookkeeping —
        // invocations, plans, discards) stays, because that work really
        // happened. Quality comparison uses `total_cmp`, ties go to the
        // primary, so the settlement is deterministic.
        let mut hedges_won = 0u64;
        for h in &dispatch.hedges {
            if !h.duel {
                continue;
            }
            let primary = duel_outcomes[h.from as usize].get(&h.job.id.0);
            let hedge = duel_outcomes[h.to as usize].get(&h.job.id.0);
            let (Some(&(pw, pq)), Some(&(hw, hq))) = (primary, hedge) else {
                continue;
            };
            let hedge_wins = hq.total_cmp(&pq) == Ordering::Greater;
            if hedge_wins {
                hedges_won += 1;
            }
            let (lw, lq) = if hedge_wins { (pw, pq) } else { (hw, hq) };
            merged.total_quality -= lq;
            merged.max_quality -= cfg.quality.max_job_quality(&h.job);
            merged.counters.jobs_total -= 1;
            // Re-derive the loser's settle class exactly as the engine
            // classified it (same tolerance, same thresholds).
            if demand_met(lw, h.job.demand) {
                merged.counters.jobs_satisfied -= 1;
            } else if lw > 1e-9 {
                merged.counters.jobs_partial -= 1;
            } else {
                merged.counters.jobs_zero -= 1;
            }
        }

        merged.policy = format!(
            "cluster/{}x/{}/{}",
            self.shards,
            self.routing.label(),
            shards[0].report.policy
        );
        let dropped_max_quality: f64 = dispatch
            .dropped
            .iter()
            .map(|(_, j)| cfg.quality.max_job_quality(j))
            .sum();
        let rejected_max_quality: f64 = dispatch
            .rejected
            .iter()
            .map(|(_, j)| cfg.quality.max_job_quality(j))
            .sum();

        (
            ClusterReport {
                routing: self.routing.label().to_string(),
                merged,
                shards,
                jobs_dropped: dispatch.dropped.len() as u64,
                jobs_retried: dispatch.retried,
                jobs_rejected: dispatch.rejected.len() as u64,
                jobs_hedged: dispatch.hedges.len() as u64,
                hedges_won,
                dropped_max_quality,
                rejected_max_quality,
            },
            observers,
        )
    }
}

/// Run one shard's simulation as a sequence of fault epochs and merge
/// the epoch reports.
///
/// Each epoch runs the plain engine in *epoch-local* time (releases and
/// deadlines shifted by the epoch start, horizon = epoch length) so
/// engine-internal anchors like the quantum tick grid behave exactly as
/// in a fresh run; an [`OffsetObserver`] re-timestamps events and the
/// returned trace slices back to absolute time. Brownout epochs run on
/// [`effective_cores`] and a proportionally reduced power budget; crash
/// epochs run nothing (routing plus stranding guarantee they hold no
/// jobs). Jobs spanning a non-final epoch boundary are truncated at the
/// boundary (drain-on-reconfigure: the shard settles in-flight work
/// when its capacity state changes). With no fault windows this is one
/// healthy epoch over `[0, end)` — bitwise the fault-free path.
/// `hedged` lists the job ids duelling across shards: their
/// `(id, processed, quality)` outcomes are harvested from the per-epoch
/// detailed stats so the cluster merge can settle first-wins. With an
/// empty set (every default-path run) nothing is harvested —
/// [`Simulator::run_observed`] is itself a thin wrapper over the
/// detailed run, so requesting stats changes no simulation arithmetic.
#[allow(clippy::too_many_arguments)]
fn run_shard_epochs<O, F>(
    cfg: &SimConfig<'_>,
    shard: usize,
    jobs: &JobSet,
    plan: &FaultPlan,
    redispatched: &[(SimTime, JobId)],
    hedged: &BTreeSet<u32>,
    make_policy: &F,
    metered: bool,
    obs: &mut O,
) -> (SimReport, SimTrace, Vec<DuelOutcome>)
where
    O: Observer,
    F: Fn(usize) -> Box<dyn SchedulingPolicy> + Sync + Send,
{
    let epochs = plan.epochs(shard, cfg.end);
    let all: Vec<Job> = jobs.iter().copied().collect();
    let mut cursor = 0usize;
    let mut redisp = redispatched.iter().peekable();
    let mut merged: Option<SimReport> = None;
    let mut full_trace = SimTrace::default();
    let mut duel_outcomes: Vec<DuelOutcome> = Vec::new();

    for (k, ep) in epochs.iter().enumerate() {
        let is_final = k + 1 == epochs.len();
        if O::ENABLED {
            if let Some(kind) = ep.fault {
                let outage = match kind {
                    FaultKind::Crash => OutageKind::Crash,
                    FaultKind::Brownout { .. } => OutageKind::Brownout,
                };
                obs.record(
                    ep.start,
                    Event::ShardDown {
                        shard: shard as u32,
                        kind: outage,
                    },
                );
            }
        }
        // Epoch membership is by release; the final epoch also takes
        // any arrivals at or past the horizon (the engine screens them
        // exactly as the fault-free path does).
        let hi = if is_final {
            all.len()
        } else {
            cursor + all[cursor..].partition_point(|j| j.release < ep.end)
        };
        let slice = &all[cursor..hi];
        cursor = hi;

        if matches!(ep.fault, Some(FaultKind::Crash)) {
            // Routing never targets a crashed shard and the dispatch
            // pass stranded everything caught by the crash, so a crash
            // epoch holds no simulatable jobs.
            debug_assert!(
                slice.iter().all(|j| j.release >= cfg.end),
                "job released inside a crash epoch"
            );
            if O::ENABLED {
                while let Some(&&(t, job)) = redisp.peek() {
                    if t == ep.start {
                        obs.record(
                            t,
                            Event::Redispatch {
                                job,
                                from: shard as u32,
                            },
                        );
                        redisp.next();
                    } else {
                        break;
                    }
                }
            }
        } else {
            let (cores, budget) = match ep.fault {
                Some(FaultKind::Brownout { loss }) => (
                    effective_cores(cfg.num_cores, loss),
                    cfg.budget * (1.0 - loss),
                ),
                _ => (cfg.num_cores, cfg.budget),
            };
            let local_end = SimTime::ZERO + ep.end.saturating_since(ep.start);
            let local_jobs: Vec<Job> = slice
                .iter()
                .map(|j| {
                    // Drain-on-reconfigure: a job spanning a non-final
                    // epoch boundary settles (with whatever quality its
                    // processed fraction earned) when the capacity
                    // state changes.
                    let deadline = if !is_final && j.deadline > ep.end {
                        ep.end
                    } else {
                        j.deadline
                    };
                    Job {
                        release: SimTime::ZERO + j.release.saturating_since(ep.start),
                        deadline: SimTime::ZERO + deadline.saturating_since(ep.start),
                        ..*j
                    }
                })
                .collect();
            let local_set = JobSet::new_unchecked(local_jobs);
            let scfg = SimConfig {
                num_cores: cores,
                budget,
                model: cfg.model,
                quality: cfg.quality,
                end: local_end,
                record_trace: cfg.record_trace || metered,
                overhead: cfg.overhead,
            };
            let mut policy = make_policy(shard);
            let mut off = OffsetObserver {
                inner: obs,
                base: ep.start,
            };
            let (rep, trace, stats) =
                Simulator::run_detailed_observed(&scfg, policy.as_mut(), &local_set, &mut off);
            if !hedged.is_empty() {
                for o in stats.outcomes() {
                    if hedged.contains(&o.id.0) {
                        duel_outcomes.push((o.id.0, o.processed, o.quality));
                    }
                }
            }
            for s in trace.slices() {
                full_trace.push(TraceSlice {
                    start: ep.start + s.start.saturating_since(SimTime::ZERO),
                    end: ep.start + s.end.saturating_since(SimTime::ZERO),
                    ..*s
                });
            }
            merged = Some(match merged {
                None => rep,
                Some(mut m) => {
                    m.total_quality += rep.total_quality;
                    m.max_quality += rep.max_quality;
                    m.energy_joules += rep.energy_joules;
                    add_counters(&mut m.counters, &rep.counters);
                    m
                }
            });
        }
        if O::ENABLED && ep.fault.is_some() && ep.end < cfg.end {
            obs.record(
                ep.end,
                Event::ShardUp {
                    shard: shard as u32,
                },
            );
        }
    }

    let mut report = merged.unwrap_or_else(|| SimReport {
        // The shard was down for the whole run: an empty report under
        // the policy's name.
        policy: make_policy(shard).name(),
        ..SimReport::default()
    });
    // Epoch horizons are local; the shard's report spans the full run.
    report.sim_seconds = cfg.end.as_secs_f64();
    (report, full_trace, duel_outcomes)
}

/// Meter one shard's executed schedule: replay the recorded trace as a
/// per-core speed profile, price it through the machine's *dynamic*
/// power curve (matching [`SimReport::energy_joules`]'s scope), and let
/// the shard's [`PowerMeter`] sample it. `PowerSample` events carry the
/// shard index as their node tag. A crashed or browned-out stretch
/// simply has no (or fewer) trace slices, so the metered draw falls
/// with the outage.
fn measured_shard_energy<O: Observer>(
    meter: &PowerMeter,
    model: &dyn PowerModel,
    num_cores: usize,
    end: SimTime,
    trace: &SimTrace,
    shard: u32,
    obs: &mut O,
) -> f64 {
    let mut per_core: Vec<Vec<(SimTime, SimTime, f64)>> = vec![Vec::new(); num_cores];
    for s in trace.slices() {
        if s.core < per_core.len() {
            per_core[s.core].push((s.start, s.end, s.speed));
        }
    }
    for v in &mut per_core {
        v.sort_by_key(|&(start, _, _)| start);
    }
    let speed_at = |slices: &[(SimTime, SimTime, f64)], t: SimTime| -> f64 {
        let idx = slices.partition_point(|&(_, e, _)| e <= t);
        match slices.get(idx) {
            Some(&(s, _, sp)) if s <= t => sp,
            _ => 0.0,
        }
    };
    meter.measure_window_observed(
        shard,
        SimTime::ZERO,
        end,
        |t| {
            per_core
                .iter()
                .map(|slices| model.dynamic_power(speed_at(slices, t)))
                .sum()
        },
        obs,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::FaultWindow;
    use qes_core::power::PolynomialPower;
    use qes_core::time::SimDuration;

    fn stream(n: usize, gap_ms: u64, demand: f64) -> JobSet {
        let jobs: Vec<Job> = (0..n)
            .map(|i| {
                let at = SimTime::from_millis(i as u64 * gap_ms);
                Job::new(i as u32, at, at + SimDuration::from_millis(150), demand).unwrap()
            })
            .collect();
        JobSet::new(jobs).unwrap()
    }

    #[test]
    fn round_robin_cycles_and_conserves() {
        let jobs = stream(10, 1, 100.0);
        let a = route(
            &jobs,
            3,
            &RoutingPolicy::RoundRobin,
            &PolynomialPower::PAPER_SIM,
        );
        assert_eq!(a, vec![0, 1, 2, 0, 1, 2, 0, 1, 2, 0]);
        let split = split_jobs(&jobs, &a, 3);
        assert_eq!(split.iter().map(JobSet::len).sum::<usize>(), 10);
        assert_eq!(split[0].len(), 4);
    }

    #[test]
    fn jsq_prefers_the_emptier_shard_and_breaks_ties_low() {
        // Two simultaneous arrivals: both shards empty -> shard 0 wins the
        // tie; the second sees shard 0 loaded and goes to shard 1.
        let jobs = JobSet::new(vec![
            Job::new(0, SimTime::ZERO, SimTime::from_millis(150), 100.0).unwrap(),
            Job::new(1, SimTime::ZERO, SimTime::from_millis(150), 100.0).unwrap(),
            Job::new(2, SimTime::from_millis(1), SimTime::from_millis(151), 100.0).unwrap(),
        ])
        .unwrap();
        let a = route(&jobs, 2, &RoutingPolicy::Jsq, &PolynomialPower::PAPER_SIM);
        // Third arrival: both shards hold one in-flight job; tie -> 0.
        assert_eq!(a, vec![0, 1, 0]);
    }

    #[test]
    fn jsq_retires_expired_windows() {
        // Second arrival lands after the first job's deadline: shard 0 is
        // empty again and wins the tie.
        let jobs = JobSet::new(vec![
            Job::new(0, SimTime::ZERO, SimTime::from_millis(150), 100.0).unwrap(),
            Job::new(
                1,
                SimTime::from_millis(200),
                SimTime::from_millis(350),
                100.0,
            )
            .unwrap(),
        ])
        .unwrap();
        let a = route(&jobs, 2, &RoutingPolicy::Jsq, &PolynomialPower::PAPER_SIM);
        assert_eq!(a, vec![0, 0]);
    }

    #[test]
    fn least_energy_spreads_simultaneous_load() {
        // The probe is convex in load, so stacking two simultaneous jobs
        // on one shard costs more than spreading them.
        let jobs = JobSet::new(vec![
            Job::new(0, SimTime::ZERO, SimTime::from_millis(150), 300.0).unwrap(),
            Job::new(1, SimTime::ZERO, SimTime::from_millis(150), 300.0).unwrap(),
        ])
        .unwrap();
        let a = route(
            &jobs,
            2,
            &RoutingPolicy::LeastEnergy,
            &PolynomialPower::PAPER_SIM,
        );
        assert_eq!(a, vec![0, 1]);
    }

    #[test]
    fn least_energy_ties_break_to_lowest_index() {
        // Five identical simultaneous jobs over three shards: equal
        // probe deltas tie toward the lowest index, and convexity keeps
        // stacking costlier than spreading — the assignment cycles.
        let jobs = JobSet::new(
            (0..5)
                .map(|i| Job::new(i, SimTime::ZERO, SimTime::from_millis(150), 300.0).unwrap())
                .collect(),
        )
        .unwrap();
        let a = route(
            &jobs,
            3,
            &RoutingPolicy::LeastEnergy,
            &PolynomialPower::PAPER_SIM,
        );
        assert_eq!(a, vec![0, 1, 2, 0, 1]);
    }

    #[test]
    fn least_energy_survives_nan_power_models() {
        // A degenerate model whose probe deltas are all NaN: total_cmp
        // still yields a deterministic lowest-index choice, no panic.
        struct NanPower;
        impl PowerModel for NanPower {
            fn dynamic_power(&self, _s: f64) -> f64 {
                f64::NAN
            }
            fn static_power(&self) -> f64 {
                0.0
            }
            fn speed_for_dynamic_power(&self, _p: f64) -> f64 {
                0.0
            }
        }
        let jobs = stream(20, 1, 100.0);
        let a = route(&jobs, 4, &RoutingPolicy::LeastEnergy, &NanPower);
        assert_eq!(a.len(), jobs.len());
        assert!(a.iter().all(|&s| s < 4));
        assert_eq!(a, route(&jobs, 4, &RoutingPolicy::LeastEnergy, &NanPower));
        // NaN sorts above every finite delta under total_cmp, so every
        // decision is the all-tie lowest-index pick: shard 0.
        assert!(a.iter().all(|&s| s == 0));
    }

    #[test]
    fn random_routing_is_deterministic_per_seed_and_in_range() {
        let jobs = stream(50, 2, 150.0);
        let r = RoutingPolicy::Random { seed: 9 };
        let a = route(&jobs, 4, &r, &PolynomialPower::PAPER_SIM);
        let b = route(&jobs, 4, &r, &PolynomialPower::PAPER_SIM);
        assert_eq!(a, b);
        assert!(a.iter().all(|&s| s < 4));
        let c = route(
            &jobs,
            4,
            &RoutingPolicy::Random { seed: 10 },
            &PolynomialPower::PAPER_SIM,
        );
        assert_ne!(a, c, "different seed should reshuffle some assignment");
    }

    #[test]
    fn feedback_without_faults_routes_least_pending_demand() {
        // Two simultaneous arrivals spread (tie -> 0, then 1); a third
        // goes where pending demand is lowest, not where the count is.
        let jobs = JobSet::new(vec![
            Job::new(0, SimTime::ZERO, SimTime::from_millis(150), 300.0).unwrap(),
            Job::new(1, SimTime::ZERO, SimTime::from_millis(150), 100.0).unwrap(),
            Job::new(2, SimTime::from_millis(1), SimTime::from_millis(151), 100.0).unwrap(),
        ])
        .unwrap();
        let a = route(
            &jobs,
            2,
            &RoutingPolicy::Feedback,
            &PolynomialPower::PAPER_SIM,
        );
        // Shard 0 carries 300 units, shard 1 only 100: the third job
        // joins shard 1 even though the job counts tie.
        assert_eq!(a, vec![0, 1, 1]);
    }

    #[test]
    fn feedback_skips_crashed_and_sheds_from_browned_out_shards() {
        let jobs = stream(12, 1, 100.0);
        let horizon = SimTime::from_secs(1);
        // Shard 0 crashed, shard 1 at 40 % capacity, shard 2 healthy.
        let plan = FaultPlan::none(3)
            .with_window(
                0,
                FaultWindow {
                    start: SimTime::ZERO,
                    end: horizon,
                    kind: FaultKind::Crash,
                },
            )
            .with_window(
                1,
                FaultWindow {
                    start: SimTime::ZERO,
                    end: horizon,
                    kind: FaultKind::Brownout { loss: 0.6 },
                },
            );
        let d = dispatch_with_faults(
            &jobs,
            3,
            &RoutingPolicy::Feedback,
            &PolynomialPower::PAPER_SIM,
            &plan,
            horizon,
        );
        assert!(d.assignment.iter().all(|&s| s != 0), "crashed shard used");
        let to_healthy = d.assignment.iter().filter(|&&s| s == 2).count();
        let to_browned = d.assignment.iter().filter(|&&s| s == 1).count();
        assert!(
            to_healthy > to_browned,
            "feedback should shed load from the browned-out shard \
             ({to_browned} browned vs {to_healthy} healthy)"
        );
        assert!(d.dropped.is_empty());
    }

    #[test]
    fn crash_strands_and_retries_in_flight_jobs() {
        // Two shards; shard 0 crashes at 50 ms. Jobs arriving before
        // the crash alternate 0/1 (round-robin); jobs on shard 0 with
        // deadlines past the crash are stranded and re-released 10 ms
        // later onto shard 1.
        let jobs = stream(4, 20, 100.0); // releases 0, 20, 40, 60 ms
        let horizon = SimTime::from_secs(1);
        let plan = FaultPlan::none(2)
            .with_window(
                0,
                FaultWindow {
                    start: SimTime::from_millis(50),
                    end: horizon,
                    kind: FaultKind::Crash,
                },
            )
            .with_retry_delay(SimDuration::from_millis(10));
        let d = dispatch_with_faults(
            &jobs,
            2,
            &RoutingPolicy::RoundRobin,
            &PolynomialPower::PAPER_SIM,
            &plan,
            horizon,
        );
        // Jobs 0 and 2 went to shard 0 and were stranded at 50 ms
        // (deadlines 150/190 ms are past the crash).
        assert_eq!(d.redispatches.len(), 2);
        assert_eq!(d.retried, 2);
        assert!(d.dropped.is_empty());
        // Every survivor lives on shard 1; conservation holds.
        assert_eq!(d.shard_jobs[0].len(), 0);
        assert_eq!(d.shard_jobs[1].len(), 4);
        // Retried copies keep their original deadlines but release at
        // crash + delay.
        let retried: Vec<&Job> = d.shard_jobs[1]
            .iter()
            .filter(|j| j.release == SimTime::from_millis(60) && j.id.0 != 3)
            .collect();
        assert_eq!(retried.len(), 2);
        assert!(retried.iter().all(|j| j.deadline
            == SimTime::from_millis(150) + SimDuration::from_millis(20 * (j.id.0 as u64 / 2) * 2)
            || j.deadline > j.release));
    }

    #[test]
    fn infeasible_retries_and_total_outages_drop_jobs() {
        // One shard, crashed from 10 ms to the horizon: the in-flight
        // job is stranded with nowhere to go, and later arrivals find
        // no eligible shard at all.
        let jobs = stream(3, 20, 100.0); // releases 0, 20, 40 ms
        let horizon = SimTime::from_secs(1);
        let plan = FaultPlan::none(1).with_window(
            0,
            FaultWindow {
                start: SimTime::from_millis(10),
                end: horizon,
                kind: FaultKind::Crash,
            },
        );
        let d = dispatch_with_faults(
            &jobs,
            1,
            &RoutingPolicy::RoundRobin,
            &PolynomialPower::PAPER_SIM,
            &plan,
            horizon,
        );
        assert_eq!(d.shard_jobs[0].len(), 0);
        assert_eq!(d.dropped.len(), 3, "stranded + 2 blocked arrivals");
        assert_eq!(d.retried, 0);
        assert_eq!(d.assignment, vec![0, u32::MAX, u32::MAX]);
    }

    #[test]
    fn split_seed_is_injective_over_small_lanes() {
        let mut seen = std::collections::HashSet::new();
        for base in [0u64, 1, 42, u64::MAX] {
            for lane in 0..64u64 {
                assert!(
                    seen.insert(split_seed(base, lane)),
                    "collision at {base}/{lane}"
                );
            }
        }
    }

    #[test]
    fn probe_speed_matches_hand_computation() {
        let mut w = InFlight::new();
        // 100 units due in 100 ms, 50 more due in 200 ms (cum 150).
        w.push_back((100_000, 100.0, 0));
        w.push_back((200_000, 50.0, 1));
        let s = probe_speed(&w, 0, None);
        // max(100/100ms, 150/200ms) = max(1.0, 0.75) GHz.
        assert!((s - 1.0).abs() < 1e-12, "{s}");
        let s2 = probe_speed(&w, 0, Some((200_000, 150.0)));
        // cum 300 over 200 ms = 1.5 GHz.
        assert!((s2 - 1.5).abs() < 1e-12, "{s2}");
    }

    #[test]
    fn probe_speed_clamps_zero_slack_windows() {
        // A window entry due exactly "now" used to underflow
        // `d_us - now_us` (debug panic, release wraparound); the clamp
        // prices it over the 1 µs floor instead.
        let mut w = InFlight::new();
        w.push_back((1_000, 100.0, 0));
        let s = probe_speed(&w, 1_000, None);
        assert!(s.is_finite());
        assert!((s - 100_000.0).abs() < 1e-6, "{s}");
        // A candidate whose deadline is already past must not divide by
        // zero or wrap around either.
        let s2 = probe_speed(&w, 2_000, Some((1_500, 50.0)));
        assert!(s2.is_finite());
        assert!(s2 > 0.0);
    }

    #[test]
    fn measured_energy_is_none_for_empty_or_partially_metered_clusters() {
        let base = ClusterReport {
            routing: "jsq".into(),
            merged: SimReport::default(),
            shards: Vec::new(),
            jobs_dropped: 0,
            jobs_retried: 0,
            jobs_rejected: 0,
            jobs_hedged: 0,
            hedges_won: 0,
            dropped_max_quality: 0.0,
            rejected_max_quality: 0.0,
        };
        // An empty cluster was never metered.
        assert_eq!(base.measured_energy(), None);

        let run = |energy: Option<f64>| ShardRun {
            shard: 0,
            seed: 0,
            report: SimReport::default(),
            measured_energy: energy,
        };
        let metered = ClusterReport {
            shards: vec![run(Some(1.5)), run(Some(2.5))],
            ..base.clone()
        };
        assert_eq!(metered.measured_energy(), Some(4.0));
        let partial = ClusterReport {
            shards: vec![run(Some(1.5)), run(None)],
            ..base
        };
        assert_eq!(partial.measured_energy(), None);
    }

    #[test]
    fn degraded_quality_counts_dropped_mass() {
        let mut rep = ClusterReport {
            routing: "feedback".into(),
            merged: SimReport {
                total_quality: 6.0,
                max_quality: 8.0,
                ..SimReport::default()
            },
            shards: Vec::new(),
            jobs_dropped: 2,
            jobs_retried: 1,
            jobs_rejected: 0,
            jobs_hedged: 0,
            hedges_won: 0,
            dropped_max_quality: 2.0,
            rejected_max_quality: 0.0,
        };
        // 6 earned out of (8 simulated + 2 dropped) possible.
        assert!((rep.degraded_quality() - 0.6).abs() < 1e-12);
        // Rejected mass widens the denominator exactly like dropped
        // mass: 6 out of (8 + 2 + 2).
        rep.rejected_max_quality = 2.0;
        assert!((rep.degraded_quality() - 0.5).abs() < 1e-12);
        rep.rejected_max_quality = 0.0;
        rep.dropped_max_quality = 0.0;
        assert!((rep.degraded_quality() - rep.merged.normalized_quality()).abs() < 1e-12);
    }

    #[test]
    fn degraded_quality_is_nan_free_with_no_quality_mass() {
        // Zero arrivals (or an all-rejected stream with no simulated
        // mass) must not divide 0/0.
        let rep = ClusterReport {
            routing: "round-robin".into(),
            merged: SimReport::default(),
            shards: Vec::new(),
            jobs_dropped: 0,
            jobs_retried: 0,
            jobs_rejected: 0,
            jobs_hedged: 0,
            hedges_won: 0,
            dropped_max_quality: 0.0,
            rejected_max_quality: 0.0,
        };
        let q = rep.degraded_quality();
        assert!(q.is_finite());
        assert_eq!(q, 1.0);
    }

    #[test]
    fn default_overload_policy_is_bitwise_the_faulted_dispatch() {
        // dispatch_protected under OverloadPolicy::default() must be
        // the exact dispatch_with_faults pre-pass: same streams, same
        // assignment, no rejects, no hedges.
        let jobs = stream(20, 10, 120.0);
        let horizon = SimTime::from_secs(1);
        let plan = FaultPlan::none(3).with_window(
            1,
            FaultWindow {
                start: SimTime::from_millis(60),
                end: SimTime::from_millis(300),
                kind: FaultKind::Crash,
            },
        );
        let a = dispatch_with_faults(
            &jobs,
            3,
            &RoutingPolicy::Feedback,
            &PolynomialPower::PAPER_SIM,
            &plan,
            horizon,
        );
        let b = dispatch_protected(
            &jobs,
            3,
            &RoutingPolicy::Feedback,
            &PolynomialPower::PAPER_SIM,
            &ExpQuality::PAPER_DEFAULT,
            &plan,
            &OverloadPolicy::default(),
            horizon,
        );
        assert_eq!(a.assignment, b.assignment);
        assert_eq!(a.retried, b.retried);
        assert_eq!(a.dropped.len(), b.dropped.len());
        assert!(b.rejected.is_empty());
        assert!(b.hedges.is_empty());
        for (sa, sb) in a.shard_jobs.iter().zip(&b.shard_jobs) {
            assert_eq!(sa.len(), sb.len());
            for (ja, jb) in sa.iter().zip(sb.iter()) {
                assert_eq!(ja.id, jb.id);
                assert_eq!(ja.release, jb.release);
            }
        }
    }

    #[test]
    fn slack_floor_rejects_hopeless_arrivals_only() {
        // One 1 GHz shard. The first job fits comfortably (needs
        // ~0.67 GHz); stacking a 4000-unit job behind it would need
        // ~27 GHz, so its achievable fraction is hopeless and it is
        // rejected, not dropped.
        let jobs = JobSet::new(vec![
            Job::new(0, SimTime::ZERO, SimTime::from_millis(150), 100.0).unwrap(),
            Job::new(1, SimTime::ZERO, SimTime::from_millis(150), 4000.0).unwrap(),
        ])
        .unwrap();
        let overload = OverloadPolicy {
            admission: AdmissionPolicy::SlackFloor {
                floor: 0.5,
                capacity_ghz: 1.0,
            },
            ..OverloadPolicy::default()
        };
        let d = dispatch_protected(
            &jobs,
            1,
            &RoutingPolicy::RoundRobin,
            &PolynomialPower::PAPER_SIM,
            &ExpQuality::PAPER_DEFAULT,
            &FaultPlan::none(1),
            &overload,
            SimTime::from_secs(1),
        );
        assert_eq!(d.assignment, vec![0, u32::MAX]);
        assert_eq!(d.rejected.len(), 1);
        assert_eq!(d.rejected[0].1.id.0, 1);
        assert!(d.dropped.is_empty(), "rejection is not a drop");
        // The reject surfaced as a dispatcher event.
        assert!(matches!(
            d.events.as_slice(),
            [(_, Event::AdmissionReject { job: JobId(1), .. })]
        ));
    }

    #[test]
    fn backpressure_sheds_above_cap_and_resumes_after_drain() {
        // Cap 250 demand units, resume 100. Two 150-unit jobs fill the
        // single shard past the cap; the third arrival is shed. After
        // the windows retire, a late arrival is admitted again.
        let mk = |id: u32, at_ms: u64| {
            Job::new(
                id,
                SimTime::from_millis(at_ms),
                SimTime::from_millis(at_ms + 100),
                150.0,
            )
            .unwrap()
        };
        let jobs = JobSet::new(vec![mk(0, 0), mk(1, 1), mk(2, 2), mk(3, 500)]).unwrap();
        let overload = OverloadPolicy {
            admission: AdmissionPolicy::Backpressure {
                cap: 250.0,
                resume: 100.0,
            },
            ..OverloadPolicy::default()
        };
        let d = dispatch_protected(
            &jobs,
            1,
            &RoutingPolicy::RoundRobin,
            &PolynomialPower::PAPER_SIM,
            &ExpQuality::PAPER_DEFAULT,
            &FaultPlan::none(1),
            &overload,
            SimTime::from_secs(1),
        );
        assert_eq!(d.assignment, vec![0, 0, u32::MAX, 0]);
        assert_eq!(d.rejected.len(), 1);
        assert_eq!(d.rejected[0].1.id.0, 2);
    }

    #[test]
    fn hedging_dispatches_a_twin_to_another_shard() {
        // Two shards, one job with 100 ms of slack, hedge at 50 %.
        let jobs = JobSet::new(vec![Job::new(
            0,
            SimTime::ZERO,
            SimTime::from_millis(100),
            200.0,
        )
        .unwrap()])
        .unwrap();
        let overload = OverloadPolicy {
            hedge: HedgePolicy::SlackFraction { fraction: 0.5 },
            ..OverloadPolicy::default()
        };
        let d = dispatch_protected(
            &jobs,
            2,
            &RoutingPolicy::RoundRobin,
            &PolynomialPower::PAPER_SIM,
            &ExpQuality::PAPER_DEFAULT,
            &FaultPlan::none(2),
            &overload,
            SimTime::from_secs(1),
        );
        assert_eq!(d.hedges.len(), 1);
        let h = d.hedges[0];
        assert_eq!(h.at, SimTime::from_millis(50));
        assert_eq!(h.from, 0);
        assert_eq!(h.to, 1);
        assert!(h.duel, "both copies survive a fault-free run");
        // The twin keeps the original deadline but releases at the
        // hedge instant.
        assert_eq!(d.shard_jobs[1].len(), 1);
        let twin = d.shard_jobs[1].iter().next().unwrap();
        assert_eq!(twin.id.0, 0);
        assert_eq!(twin.release, SimTime::from_millis(50));
        assert_eq!(twin.deadline, SimTime::from_millis(100));
        // Conservation with a duel: 1 arrival, 2 stream entries.
        assert_eq!(
            d.shard_jobs.iter().map(JobSet::len).sum::<usize>(),
            jobs.len() + 1
        );
    }

    #[test]
    fn hedge_is_cancelled_when_the_primary_strands_first() {
        // The primary shard crashes before the hedge instant: the
        // pending hedge must not fire (the retry path owns the job).
        let jobs = JobSet::new(vec![Job::new(
            0,
            SimTime::ZERO,
            SimTime::from_millis(200),
            100.0,
        )
        .unwrap()])
        .unwrap();
        let plan = FaultPlan::none(2)
            .with_window(
                0,
                FaultWindow {
                    start: SimTime::from_millis(20),
                    end: SimTime::from_millis(180),
                    kind: FaultKind::Crash,
                },
            )
            .with_retry_delay(SimDuration::from_millis(10));
        let overload = OverloadPolicy {
            hedge: HedgePolicy::SlackFraction { fraction: 0.5 },
            ..OverloadPolicy::default()
        };
        let d = dispatch_protected(
            &jobs,
            2,
            &RoutingPolicy::RoundRobin,
            &PolynomialPower::PAPER_SIM,
            &ExpQuality::PAPER_DEFAULT,
            &FaultPlan::none(2),
            &overload,
            SimTime::from_secs(1),
        );
        // Sanity: fault-free, the hedge fires.
        assert_eq!(d.hedges.len(), 1);
        let d2 = dispatch_protected(
            &jobs,
            2,
            &RoutingPolicy::RoundRobin,
            &PolynomialPower::PAPER_SIM,
            &ExpQuality::PAPER_DEFAULT,
            &plan,
            &overload,
            SimTime::from_secs(1),
        );
        assert!(d2.hedges.is_empty(), "stranded primary cancels the hedge");
        assert_eq!(d2.retried, 1);
        // The retried copy alone survives: plain conservation.
        assert_eq!(d2.shard_jobs.iter().map(JobSet::len).sum::<usize>(), 1);
    }

    #[test]
    fn retry_budget_drops_after_max_attempts() {
        // Both shards crash in sequence, repeatedly stranding the job.
        // With a 1-attempt budget the second strand gives up.
        let job = Job::new(0, SimTime::ZERO, SimTime::from_millis(400), 100.0).unwrap();
        let jobs = JobSet::new(vec![job]).unwrap();
        let plan = FaultPlan::none(2)
            .with_window(
                0,
                FaultWindow {
                    start: SimTime::from_millis(10),
                    end: SimTime::from_millis(390),
                    kind: FaultKind::Crash,
                },
            )
            .with_window(
                1,
                FaultWindow {
                    start: SimTime::from_millis(30),
                    end: SimTime::from_millis(390),
                    kind: FaultKind::Crash,
                },
            )
            .with_retry_delay(SimDuration::from_millis(10));
        let budgeted = OverloadPolicy {
            retry: RetryPolicy {
                max_attempts: 1,
                ..RetryPolicy::default()
            },
            ..OverloadPolicy::default()
        };
        let d = dispatch_protected(
            &jobs,
            2,
            &RoutingPolicy::RoundRobin,
            &PolynomialPower::PAPER_SIM,
            &ExpQuality::PAPER_DEFAULT,
            &plan,
            &budgeted,
            SimTime::from_secs(1),
        );
        // Strand on shard 0 at 10 ms -> retry to shard 1 at 20 ms ->
        // strand again at 30 ms -> budget (1) exhausted -> drop.
        assert_eq!(d.retried, 1);
        assert_eq!(d.dropped.len(), 1);
        assert_eq!(d.redispatches.len(), 2);
        assert_eq!(d.shard_jobs.iter().map(JobSet::len).sum::<usize>(), 0);
        // The unbudgeted default keeps retrying instead (second retry
        // lands at 40 ms, after both crashes started, and both shards
        // are down -> still dropped, but after two routed retries).
        let d2 = dispatch_protected(
            &jobs,
            2,
            &RoutingPolicy::RoundRobin,
            &PolynomialPower::PAPER_SIM,
            &ExpQuality::PAPER_DEFAULT,
            &plan,
            &OverloadPolicy::default(),
            SimTime::from_secs(1),
        );
        assert!(d2.retried >= d.retried);
    }
}
