//! Cluster topology and per-core speed/power table (paper §V-G).

use qes_core::power::DiscreteSpeedSet;

/// The hardware the §V-G validation runs on.
#[derive(Clone, Debug)]
pub struct ClusterSpec {
    /// Number of nodes.
    pub nodes: usize,
    /// Cores per node (the Opteron nodes have two quad-core sockets).
    pub cores_per_node: usize,
    /// Per-core discrete speed/power table (total power, static included).
    pub speed_table: DiscreteSpeedSet,
    /// Idle per-core power (W) — what a core draws when powered on but
    /// not executing. The Opteron's lowest P-state floor is dominated by
    /// its static component.
    pub idle_power: f64,
}

impl ClusterSpec {
    /// The paper's validation cluster: 8 nodes × 2 × quad-core Opteron
    /// 2380. The validation replays a 16-core simulation schedule, so
    /// [`ClusterSpec::paper_validation`] exposes exactly 16 powered cores
    /// (two nodes' worth); the rest of the machines stay off.
    pub fn paper_validation() -> Self {
        ClusterSpec {
            nodes: 2,
            cores_per_node: 8,
            speed_table: DiscreteSpeedSet::opteron_2380(),
            // Fitted static component b ≈ 9.2562 W (§V-G regression).
            idle_power: 9.2562,
        }
    }

    /// The full 8-node cluster.
    pub fn full_cluster() -> Self {
        ClusterSpec {
            nodes: 8,
            ..Self::paper_validation()
        }
    }

    /// Total powered cores.
    pub fn total_cores(&self) -> usize {
        self.nodes * self.cores_per_node
    }

    /// The spec of this cluster under a brownout that powers off a
    /// `loss` fraction of each node's cores (at least one core per node
    /// stays up — the floor [`effective_cores`] applies per node).
    ///
    /// [`effective_cores`]: crate::fault::effective_cores
    pub fn browned_out(&self, loss: f64) -> Self {
        ClusterSpec {
            cores_per_node: crate::fault::effective_cores(self.cores_per_node, loss),
            ..self.clone()
        }
    }

    /// Aggregate peak service capacity (GHz): every powered core at the
    /// table's top speed. This is the natural `capacity_ghz` input for
    /// the front end's [`AdmissionPolicy::SlackFloor`], pricing a
    /// shard's achievable completed fraction against the same step-2
    /// probe the routing policies use.
    ///
    /// [`AdmissionPolicy::SlackFloor`]: crate::admission::AdmissionPolicy::SlackFloor
    pub fn peak_capacity_ghz(&self) -> f64 {
        self.total_cores() as f64 * self.speed_table.max_speed()
    }

    /// Total power (W) a core draws at `speed` (0 ⇒ idle draw).
    pub fn core_power(&self, speed: f64) -> f64 {
        if speed <= 0.0 {
            self.idle_power
        } else {
            self.speed_table.power_at(speed)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_validation_topology() {
        let c = ClusterSpec::paper_validation();
        assert_eq!(c.total_cores(), 16);
        assert_eq!(ClusterSpec::full_cluster().total_cores(), 64);
    }

    #[test]
    fn browned_out_powers_down_cores_with_a_floor() {
        let c = ClusterSpec::paper_validation();
        // 8 cores/node at 50 % loss -> 4 cores/node, 8 total.
        assert_eq!(c.browned_out(0.5).total_cores(), 8);
        // Extreme loss never drops below one core per node.
        assert_eq!(c.browned_out(0.999).cores_per_node, 1);
        // Zero loss is the identity.
        assert_eq!(c.browned_out(0.0).total_cores(), c.total_cores());
    }

    #[test]
    fn peak_capacity_is_cores_times_top_speed() {
        let c = ClusterSpec::paper_validation();
        // 16 cores × 2.5 GHz Opteron top speed.
        assert!((c.peak_capacity_ghz() - 40.0).abs() < 1e-9);
        // Brownouts shrink capacity with the powered-core count.
        assert!((c.browned_out(0.5).peak_capacity_ghz() - 20.0).abs() < 1e-9);
    }

    #[test]
    fn core_power_lookup() {
        let c = ClusterSpec::paper_validation();
        assert!((c.core_power(2.5) - 22.69).abs() < 1e-9);
        assert!((c.core_power(0.8) - 11.06).abs() < 1e-9);
        assert!((c.core_power(0.0) - 9.2562).abs() < 1e-9);
    }
}
