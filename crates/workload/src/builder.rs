//! The general workload builder: any arrival profile × any demand
//! distribution.
//!
//! [`crate::WebSearchWorkload`] hard-codes the paper's §V-B choices;
//! [`GeneralWorkload`] lets experiments mix any [`RateProfile`] with any
//! [`DemandDistribution`] under the same deterministic seeding and
//! constant-relative-deadline (hence agreeable) structure.

use std::sync::Arc;

use qes_core::error::QesError;
use qes_core::job::{Job, JobSet};
use qes_core::time::{SimDuration, SimTime};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::distributions::DemandDistribution;
use crate::modulated::{sample_modulated, RateProfile};

/// A fully general best-effort workload description.
#[derive(Clone)]
pub struct GeneralWorkload {
    arrivals: Arc<dyn RateProfile>,
    demand: Arc<dyn DemandDistribution>,
    deadline: SimDuration,
    partial_fraction: f64,
    horizon: SimTime,
}

impl GeneralWorkload {
    /// Build from an arrival profile and a demand distribution; paper-style
    /// defaults for the rest (150 ms deadlines, all-partial, 1800 s).
    pub fn new(
        arrivals: impl RateProfile + 'static,
        demand: impl DemandDistribution + 'static,
    ) -> Self {
        GeneralWorkload {
            arrivals: Arc::new(arrivals),
            demand: Arc::new(demand),
            deadline: SimDuration::from_millis(150),
            partial_fraction: 1.0,
            horizon: SimTime::from_secs(1800),
        }
    }

    /// Override the horizon.
    pub fn with_horizon(mut self, horizon: SimTime) -> Self {
        self.horizon = horizon;
        self
    }

    /// Override the relative deadline.
    pub fn with_deadline(mut self, d: SimDuration) -> Self {
        self.deadline = d;
        self
    }

    /// Fraction of partial-evaluatable jobs, clamped to `[0, 1]`.
    pub fn with_partial_fraction(mut self, f: f64) -> Self {
        self.partial_fraction = f.clamp(0.0, 1.0);
        self
    }

    /// A label combining the ingredients, for reports.
    pub fn label(&self) -> String {
        format!(
            "{} demands, peak {:.0} req/s",
            self.demand.label(),
            self.arrivals.peak()
        )
    }

    /// Generate deterministically from `seed`.
    pub fn generate(&self, seed: u64) -> Result<JobSet, QesError> {
        let mut rng = StdRng::seed_from_u64(seed);
        let arrivals = sample_modulated(self.arrivals.as_ref(), &mut rng, self.horizon);
        let mut jobs = Vec::with_capacity(arrivals.len());
        for (i, &at) in arrivals.iter().enumerate() {
            let demand = self.demand.sample(&mut rng);
            let partial = rng.gen::<f64>() < self.partial_fraction;
            jobs.push(Job::with_partial(
                i as u32,
                at,
                at + self.deadline,
                demand,
                partial,
            )?);
        }
        JobSet::new(jobs)
    }

    /// Expected offered load in units/second (peak-rate bound for
    /// modulated profiles).
    pub fn offered_units_per_sec_at_peak(&self) -> f64 {
        self.arrivals.peak() * self.demand.mean()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distributions::{Deterministic, UniformDemand};
    use crate::modulated::{ConstantRate, DiurnalRate};
    use crate::pareto::BoundedPareto;

    #[test]
    fn constant_rate_deterministic_demand() {
        let w = GeneralWorkload::new(ConstantRate(50.0), Deterministic { units: 100.0 })
            .with_horizon(SimTime::from_secs(10));
        let jobs = w.generate(1).unwrap();
        assert!(jobs.len() > 300 && jobs.len() < 700, "{}", jobs.len());
        assert!(jobs.iter().all(|j| j.demand == 100.0));
    }

    #[test]
    fn seeded_determinism_across_ingredient_combos() {
        let w = GeneralWorkload::new(
            DiurnalRate {
                base: 60.0,
                amp: 30.0,
                period_secs: 5.0,
            },
            BoundedPareto::paper_default(),
        )
        .with_horizon(SimTime::from_secs(5));
        let a = w.generate(9).unwrap();
        let b = w.generate(9).unwrap();
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b.iter()) {
            assert_eq!(x, y);
        }
    }

    #[test]
    fn partial_fraction_and_deadline_overrides() {
        let w = GeneralWorkload::new(ConstantRate(100.0), UniformDemand::new(50.0, 150.0))
            .with_horizon(SimTime::from_secs(5))
            .with_deadline(SimDuration::from_millis(80))
            .with_partial_fraction(0.0);
        let jobs = w.generate(3).unwrap();
        assert!(jobs.iter().all(|j| !j.partial));
        assert!(jobs
            .iter()
            .all(|j| j.window() == SimDuration::from_millis(80)));
    }

    #[test]
    fn label_and_offered_load() {
        let w = GeneralWorkload::new(ConstantRate(100.0), Deterministic { units: 200.0 });
        assert!(w.label().contains("const(200)"));
        assert!((w.offered_units_per_sec_at_peak() - 20_000.0).abs() < 1e-9);
    }
}
