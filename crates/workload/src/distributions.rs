//! Service-demand distributions beyond the paper's bounded Pareto.
//!
//! The paper notes its "simulation results show consistency with different
//! parameter values" (§V-B); these distributions let a user check that
//! claim for shapes other than Pareto: lognormal (heavy-ish tail, common
//! for service times), uniform, deterministic, and empirical (resampling
//! from a measured trace).

use rand::Rng;

use crate::pareto::BoundedPareto;

/// A sampleable service-demand distribution.
pub trait DemandDistribution: Send + Sync {
    /// Draw one demand (processing units).
    fn sample(&self, rng: &mut dyn rand::RngCore) -> f64;

    /// Analytic or empirical mean.
    fn mean(&self) -> f64;

    /// Short label for reports.
    fn label(&self) -> String;
}

impl DemandDistribution for BoundedPareto {
    fn sample(&self, rng: &mut dyn rand::RngCore) -> f64 {
        BoundedPareto::sample(self, rng)
    }

    fn mean(&self) -> f64 {
        BoundedPareto::mean(self)
    }

    fn label(&self) -> String {
        format!(
            "pareto(α={}, {}..{})",
            self.alpha(),
            self.x_min(),
            self.x_max()
        )
    }
}

/// Every request demands exactly the same volume.
#[derive(Clone, Copy, Debug)]
pub struct Deterministic {
    /// The constant demand.
    pub units: f64,
}

impl DemandDistribution for Deterministic {
    fn sample(&self, _rng: &mut dyn rand::RngCore) -> f64 {
        self.units
    }

    fn mean(&self) -> f64 {
        self.units
    }

    fn label(&self) -> String {
        format!("const({})", self.units)
    }
}

/// Uniform demands on `[lo, hi]`.
#[derive(Clone, Copy, Debug)]
pub struct UniformDemand {
    /// Lower bound (inclusive).
    pub lo: f64,
    /// Upper bound (inclusive).
    pub hi: f64,
}

impl UniformDemand {
    /// Construct with validation.
    pub fn new(lo: f64, hi: f64) -> Self {
        assert!(0.0 < lo && lo <= hi, "need 0 < lo ≤ hi");
        UniformDemand { lo, hi }
    }
}

impl DemandDistribution for UniformDemand {
    fn sample(&self, rng: &mut dyn rand::RngCore) -> f64 {
        let u: f64 = rng.gen();
        self.lo + u * (self.hi - self.lo)
    }

    fn mean(&self) -> f64 {
        0.5 * (self.lo + self.hi)
    }

    fn label(&self) -> String {
        format!("uniform({}..{})", self.lo, self.hi)
    }
}

/// Lognormal demands, clamped to `[lo, hi]`; parameterized by the
/// *clamped-free* median `exp(μ)` and shape `σ`.
#[derive(Clone, Copy, Debug)]
pub struct LognormalDemand {
    /// Location parameter μ (of the underlying normal).
    pub mu: f64,
    /// Shape parameter σ > 0.
    pub sigma: f64,
    /// Clamp bounds keeping demands physical.
    pub lo: f64,
    /// Upper clamp.
    pub hi: f64,
}

impl LognormalDemand {
    /// A lognormal roughly matching the paper's workload: median ≈ 165
    /// units, σ = 0.5, clamped to the Pareto bounds.
    pub fn paper_like() -> Self {
        LognormalDemand {
            mu: 165.0f64.ln(),
            sigma: 0.5,
            lo: 130.0,
            hi: 1000.0,
        }
    }
}

impl DemandDistribution for LognormalDemand {
    fn sample(&self, rng: &mut dyn rand::RngCore) -> f64 {
        // Box–Muller.
        let u1: f64 = rng.gen::<f64>().max(1e-12);
        let u2: f64 = rng.gen();
        let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        (self.mu + self.sigma * z).exp().clamp(self.lo, self.hi)
    }

    fn mean(&self) -> f64 {
        // Mean of the unclamped lognormal; close enough for reporting
        // when the clamp is in the tails.
        (self.mu + 0.5 * self.sigma * self.sigma).exp()
    }

    fn label(&self) -> String {
        format!("lognormal(μ={:.2}, σ={})", self.mu, self.sigma)
    }
}

/// Resample demands from a measured list (an "empirical" distribution).
#[derive(Clone, Debug)]
pub struct EmpiricalDemand {
    samples: Vec<f64>,
    mean: f64,
}

impl EmpiricalDemand {
    /// Build from observed demands; rejects empty or non-positive data.
    pub fn new(samples: Vec<f64>) -> Option<Self> {
        if samples.is_empty() || samples.iter().any(|&s| !s.is_finite() || s <= 0.0) {
            return None;
        }
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        Some(EmpiricalDemand { samples, mean })
    }

    /// Number of underlying observations.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// True if built from no observations (cannot happen via `new`).
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }
}

impl DemandDistribution for EmpiricalDemand {
    fn sample(&self, rng: &mut dyn rand::RngCore) -> f64 {
        let i = (rng.gen::<f64>() * self.samples.len() as f64) as usize;
        self.samples[i.min(self.samples.len() - 1)]
    }

    fn mean(&self) -> f64 {
        self.mean
    }

    fn label(&self) -> String {
        format!("empirical(n={})", self.samples.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn mean_of(d: &dyn DemandDistribution, n: usize, seed: u64) -> f64 {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n).map(|_| d.sample(&mut rng)).sum::<f64>() / n as f64
    }

    #[test]
    fn deterministic_is_constant() {
        let d = Deterministic { units: 192.0 };
        let mut rng = StdRng::seed_from_u64(0);
        for _ in 0..10 {
            assert_eq!(d.sample(&mut rng), 192.0);
        }
        assert_eq!(d.mean(), 192.0);
    }

    #[test]
    fn uniform_bounds_and_mean() {
        let d = UniformDemand::new(100.0, 300.0);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..5000 {
            let x = d.sample(&mut rng);
            assert!((100.0..=300.0).contains(&x));
        }
        assert!((mean_of(&d, 50_000, 2) - 200.0).abs() < 2.0);
    }

    #[test]
    #[should_panic(expected = "lo")]
    fn uniform_rejects_inverted() {
        UniformDemand::new(5.0, 1.0);
    }

    #[test]
    fn lognormal_clamps_and_is_skewed() {
        let d = LognormalDemand::paper_like();
        let mut rng = StdRng::seed_from_u64(3);
        let mut above_median = 0;
        for _ in 0..10_000 {
            let x = d.sample(&mut rng);
            assert!((130.0..=1000.0).contains(&x), "{x}");
            if x > 165.0 {
                above_median += 1;
            }
        }
        // Median of the unclamped variable is 165; with the lower clamp at
        // 130 the sample median shifts slightly but stays in a sane band.
        let frac = above_median as f64 / 10_000.0;
        assert!((0.35..0.65).contains(&frac), "{frac}");
    }

    #[test]
    fn empirical_resamples_only_observed_values() {
        let obs = vec![10.0, 20.0, 30.0];
        let d = EmpiricalDemand::new(obs.clone()).unwrap();
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..1000 {
            let x = d.sample(&mut rng);
            assert!(obs.contains(&x));
        }
        assert!((d.mean() - 20.0).abs() < 1e-12);
        assert_eq!(d.len(), 3);
    }

    #[test]
    fn empirical_rejects_bad_data() {
        assert!(EmpiricalDemand::new(vec![]).is_none());
        assert!(EmpiricalDemand::new(vec![1.0, -2.0]).is_none());
        assert!(EmpiricalDemand::new(vec![1.0, f64::NAN]).is_none());
    }

    #[test]
    fn pareto_implements_the_trait() {
        let d = BoundedPareto::paper_default();
        let label = DemandDistribution::label(&d);
        assert!(label.contains("pareto"));
        assert!((mean_of(&d, 100_000, 5) - 192.0).abs() < 3.0);
    }
}
