//! Time-varying arrival processes.
//!
//! The paper motivates DES with "service demand variation of the
//! requests"; real interactive services also see *rate* variation —
//! diurnal cycles and bursts. A non-homogeneous Poisson process with a
//! piecewise-constant or sinusoidal rate profile lets experiments stress
//! the schedulers under realistic load swings while staying exactly
//! reproducible.
//!
//! Sampling uses thinning (Lewis–Shedler): draw candidate arrivals from a
//! homogeneous process at the peak rate and keep each with probability
//! `rate(t) / peak`.

use qes_core::time::SimTime;
use rand::Rng;

/// A deterministic rate profile `rate(t)` in requests/second.
pub trait RateProfile: Send + Sync {
    /// Instantaneous rate at `t` (must be ≤ [`RateProfile::peak`]).
    fn rate_at(&self, t: SimTime) -> f64;

    /// A finite upper bound on the rate.
    fn peak(&self) -> f64;
}

/// Constant rate (reduces to the homogeneous process).
#[derive(Clone, Copy, Debug)]
pub struct ConstantRate(pub f64);

impl RateProfile for ConstantRate {
    fn rate_at(&self, _t: SimTime) -> f64 {
        self.0
    }

    fn peak(&self) -> f64 {
        self.0
    }
}

/// Sinusoidal "diurnal" profile: `base + amp·sin(2π t / period)`,
/// clamped at zero.
#[derive(Clone, Copy, Debug)]
pub struct DiurnalRate {
    /// Mean rate (req/s).
    pub base: f64,
    /// Swing amplitude (req/s); may exceed `base` (the floor is 0).
    pub amp: f64,
    /// Cycle length in seconds.
    pub period_secs: f64,
}

impl RateProfile for DiurnalRate {
    fn rate_at(&self, t: SimTime) -> f64 {
        let phase = 2.0 * std::f64::consts::PI * t.as_secs_f64() / self.period_secs;
        (self.base + self.amp * phase.sin()).max(0.0)
    }

    fn peak(&self) -> f64 {
        self.base + self.amp.abs()
    }
}

/// Piecewise-constant rate steps: `(start_secs, rate)` pairs, sorted by
/// start; the rate before the first step is the first step's rate.
#[derive(Clone, Debug)]
pub struct SteppedRate {
    steps: Vec<(f64, f64)>,
}

impl SteppedRate {
    /// Build from `(start_secs, rate)` pairs (sorted internally).
    pub fn new(mut steps: Vec<(f64, f64)>) -> Option<Self> {
        if steps.is_empty() || steps.iter().any(|&(_, r)| r < 0.0 || !r.is_finite()) {
            return None;
        }
        steps.sort_by(|a, b| a.0.total_cmp(&b.0));
        Some(SteppedRate { steps })
    }
}

impl RateProfile for SteppedRate {
    fn rate_at(&self, t: SimTime) -> f64 {
        let secs = t.as_secs_f64();
        let idx = self.steps.partition_point(|&(s, _)| s <= secs);
        self.steps[idx.saturating_sub(1)].1
    }

    fn peak(&self) -> f64 {
        self.steps.iter().map(|&(_, r)| r).fold(0.0, f64::max)
    }
}

/// Sample arrivals of the non-homogeneous process on `[0, horizon)` by
/// thinning.
pub fn sample_modulated<R: Rng + ?Sized>(
    profile: &dyn RateProfile,
    rng: &mut R,
    horizon: SimTime,
) -> Vec<SimTime> {
    let peak = profile.peak();
    let mut out = Vec::new();
    if peak <= 0.0 {
        return out;
    }
    let mut t = 0.0f64;
    loop {
        // Homogeneous candidate at the peak rate…
        let u: f64 = rng.gen();
        t += -(1.0 - u).ln() / peak;
        let at = SimTime::from_secs_f64(t);
        if at >= horizon {
            break;
        }
        // …kept with probability rate(t)/peak.
        let keep: f64 = rng.gen();
        if keep * peak < profile.rate_at(at) {
            out.push(at);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn constant_profile_matches_homogeneous_rate() {
        let p = ConstantRate(100.0);
        let mut rng = StdRng::seed_from_u64(1);
        let arr = sample_modulated(&p, &mut rng, SimTime::from_secs(100));
        let rate = arr.len() as f64 / 100.0;
        assert!((rate - 100.0).abs() < 5.0, "{rate}");
    }

    #[test]
    fn diurnal_rate_shape() {
        let p = DiurnalRate {
            base: 100.0,
            amp: 80.0,
            period_secs: 120.0,
        };
        // Peak of the sine at t = period/4.
        assert!((p.rate_at(SimTime::from_secs(30)) - 180.0).abs() < 1e-6);
        // Trough at 3/4 period.
        assert!((p.rate_at(SimTime::from_secs(90)) - 20.0).abs() < 1e-6);
        assert_eq!(p.peak(), 180.0);
    }

    #[test]
    fn diurnal_floor_at_zero() {
        let p = DiurnalRate {
            base: 10.0,
            amp: 50.0,
            period_secs: 60.0,
        };
        assert_eq!(p.rate_at(SimTime::from_secs(45)), 0.0);
    }

    #[test]
    fn thinning_tracks_the_profile() {
        // Count arrivals in the high and low half-cycles.
        let p = DiurnalRate {
            base: 100.0,
            amp: 60.0,
            period_secs: 100.0,
        };
        let mut rng = StdRng::seed_from_u64(7);
        let arr = sample_modulated(&p, &mut rng, SimTime::from_secs(100));
        let first_half = arr.iter().filter(|&&t| t < SimTime::from_secs(50)).count();
        let second_half = arr.len() - first_half;
        // Expected ≈ (100 + 2·60/π)·50 vs (100 − 2·60/π)·50 ≈ 6909 vs 3090.
        assert!(
            first_half as f64 > 1.5 * second_half as f64,
            "{first_half} vs {second_half}"
        );
    }

    #[test]
    fn stepped_profile_lookup() {
        let p = SteppedRate::new(vec![(60.0, 50.0), (0.0, 200.0)]).unwrap();
        assert_eq!(p.rate_at(SimTime::from_secs(10)), 200.0);
        assert_eq!(p.rate_at(SimTime::from_secs(60)), 50.0);
        assert_eq!(p.rate_at(SimTime::from_secs(600)), 50.0);
        assert_eq!(p.peak(), 200.0);
    }

    #[test]
    fn stepped_rejects_bad_input() {
        assert!(SteppedRate::new(vec![]).is_none());
        assert!(SteppedRate::new(vec![(0.0, -1.0)]).is_none());
        assert!(SteppedRate::new(vec![(0.0, f64::INFINITY)]).is_none());
    }

    #[test]
    fn arrivals_are_sorted_and_deterministic() {
        let p = DiurnalRate {
            base: 80.0,
            amp: 40.0,
            period_secs: 30.0,
        };
        let a = sample_modulated(&p, &mut StdRng::seed_from_u64(9), SimTime::from_secs(20));
        let b = sample_modulated(&p, &mut StdRng::seed_from_u64(9), SimTime::from_secs(20));
        assert_eq!(a, b);
        assert!(a.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn zero_peak_yields_no_arrivals() {
        let p = ConstantRate(0.0);
        let mut rng = StdRng::seed_from_u64(1);
        assert!(sample_modulated(&p, &mut rng, SimTime::from_secs(10)).is_empty());
    }
}
