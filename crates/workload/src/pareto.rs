//! Bounded Pareto service-demand distribution (paper §V-B).

use rand::Rng;

/// A bounded Pareto distribution with index `α`, lower bound `x_min` and
/// upper bound `x_max`.
///
/// Density ∝ `x^{−α−1}` on `[x_min, x_max]`. The paper's workload uses
/// `α = 3`, `x_min = 130`, `x_max = 1000` processing units, whose mean the
/// paper reports as 192 units.
#[derive(Clone, Copy, Debug)]
pub struct BoundedPareto {
    alpha: f64,
    x_min: f64,
    x_max: f64,
}

impl BoundedPareto {
    /// The paper's parameters: `α = 3`, bounds `[130, 1000]` units.
    pub fn paper_default() -> Self {
        BoundedPareto::new(3.0, 130.0, 1000.0)
    }

    /// Construct with validation.
    pub fn new(alpha: f64, x_min: f64, x_max: f64) -> Self {
        assert!(alpha > 0.0 && alpha.is_finite(), "alpha must be positive");
        assert!(
            0.0 < x_min && x_min < x_max && x_max.is_finite(),
            "bounds must satisfy 0 < x_min < x_max < ∞"
        );
        BoundedPareto {
            alpha,
            x_min,
            x_max,
        }
    }

    /// The Pareto index `α`.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// Lower bound.
    pub fn x_min(&self) -> f64 {
        self.x_min
    }

    /// Upper bound.
    pub fn x_max(&self) -> f64 {
        self.x_max
    }

    /// Analytic mean of the distribution.
    pub fn mean(&self) -> f64 {
        let (a, l, h) = (self.alpha, self.x_min, self.x_max);
        if (a - 1.0).abs() < 1e-12 {
            // α = 1 special case.
            let c = 1.0 / (1.0 / l - 1.0 / h);
            return c * (h / l).ln();
        }
        // E[X] = l^α / (1 − (l/h)^α) · α/(α−1) · (l^{1−α}… ) — standard form:
        let num = l.powf(a) * a / (a - 1.0) * (l.powf(1.0 - a) - h.powf(1.0 - a));
        let den = 1.0 - (l / h).powf(a);
        num / den
    }

    /// Sample one value via the inverse CDF.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        let u: f64 = rng.gen::<f64>();
        let (a, l, h) = (self.alpha, self.x_min, self.x_max);
        // F(x) = (1 − (l/x)^α) / (1 − (l/h)^α); invert for x.
        let tail = 1.0 - (l / h).powf(a);
        let x = l / (1.0 - u * tail).powf(1.0 / a);
        x.clamp(l, h)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn paper_mean_is_192_units() {
        // §V-B: "the mean service demand of a request can then be
        // calculated to be 192 processing units".
        let d = BoundedPareto::paper_default();
        assert!((d.mean() - 192.0).abs() < 1.0, "mean {}", d.mean());
    }

    #[test]
    fn samples_respect_bounds() {
        let d = BoundedPareto::paper_default();
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..10_000 {
            let x = d.sample(&mut rng);
            assert!((130.0..=1000.0).contains(&x), "{x}");
        }
    }

    #[test]
    fn empirical_mean_matches_analytic() {
        let d = BoundedPareto::paper_default();
        let mut rng = StdRng::seed_from_u64(11);
        let n = 200_000;
        let sum: f64 = (0..n).map(|_| d.sample(&mut rng)).sum();
        let emp = sum / n as f64;
        assert!(
            (emp - d.mean()).abs() < 2.0,
            "empirical {emp} vs {}",
            d.mean()
        );
    }

    #[test]
    fn heavier_tail_with_smaller_alpha() {
        let light = BoundedPareto::new(5.0, 130.0, 1000.0);
        let heavy = BoundedPareto::new(1.5, 130.0, 1000.0);
        assert!(heavy.mean() > light.mean());
    }

    #[test]
    fn most_mass_near_lower_bound() {
        // α = 3 decays fast: most samples should sit below 2·x_min.
        let d = BoundedPareto::paper_default();
        let mut rng = StdRng::seed_from_u64(2);
        let n = 50_000;
        let below = (0..n).filter(|_| d.sample(&mut rng) < 260.0).count();
        let frac = below as f64 / n as f64;
        assert!(frac > 0.80, "fraction below 2·x_min = {frac}");
    }

    #[test]
    fn alpha_one_mean_special_case() {
        let d = BoundedPareto::new(1.0, 100.0, 1000.0);
        let mut rng = StdRng::seed_from_u64(9);
        let n = 200_000;
        let emp: f64 = (0..n).map(|_| d.sample(&mut rng)).sum::<f64>() / n as f64;
        assert!(
            (emp - d.mean()).abs() < 5.0,
            "empirical {emp} vs {}",
            d.mean()
        );
    }

    #[test]
    #[should_panic(expected = "bounds")]
    fn inverted_bounds_rejected() {
        BoundedPareto::new(2.0, 10.0, 5.0);
    }
}
