//! Workload trace import/export.
//!
//! Persisting a generated request stream lets the exact same workload be
//! re-run later, shared, or replayed against an external system. The
//! format is one-line-per-job CSV:
//!
//! ```text
//! # qes-workload v1
//! id,release_us,deadline_us,demand_units,partial
//! 0,1523,151523,245.5,1
//! ```

use std::fmt::Write as _;

use qes_core::error::QesError;
use qes_core::job::{Job, JobSet};
use qes_core::time::SimTime;

/// Header line identifying the format version.
pub const HEADER: &str = "# qes-workload v1";

/// Serialize a job set to the CSV trace format.
pub fn to_csv(jobs: &JobSet) -> String {
    let mut out = String::with_capacity(32 * jobs.len() + 64);
    let _ = writeln!(out, "{HEADER}");
    let _ = writeln!(out, "id,release_us,deadline_us,demand_units,partial");
    for j in jobs.iter() {
        let _ = writeln!(
            out,
            "{},{},{},{},{}",
            j.id.0,
            j.release.as_micros(),
            j.deadline.as_micros(),
            j.demand,
            u8::from(j.partial)
        );
    }
    out
}

/// Errors from parsing a workload trace.
#[derive(Debug, Clone, PartialEq)]
pub enum TraceParseError {
    /// Missing or wrong `# qes-workload v1` header.
    BadHeader,
    /// A data line did not have five comma-separated fields.
    BadArity {
        /// 1-based line number of the bad line.
        line: usize,
    },
    /// A field failed to parse.
    BadField {
        /// 1-based line number of the bad line.
        line: usize,
        /// Which field failed.
        field: &'static str,
    },
    /// The parsed jobs do not form a valid (agreeable) job set.
    Invalid(QesError),
}

impl std::fmt::Display for TraceParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceParseError::BadHeader => write!(f, "missing '{HEADER}' header"),
            TraceParseError::BadArity { line } => write!(f, "line {line}: expected 5 fields"),
            TraceParseError::BadField { line, field } => {
                write!(f, "line {line}: cannot parse {field}")
            }
            TraceParseError::Invalid(e) => write!(f, "invalid job set: {e}"),
        }
    }
}

impl std::error::Error for TraceParseError {}

/// Parse the CSV trace format back into a job set.
pub fn from_csv(text: &str) -> Result<JobSet, TraceParseError> {
    let mut lines = text.lines().enumerate();
    match lines.next() {
        Some((_, h)) if h.trim() == HEADER => {}
        _ => return Err(TraceParseError::BadHeader),
    }
    let mut jobs = Vec::new();
    for (idx, line) in lines {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') || line.starts_with("id,") {
            continue;
        }
        let fields: Vec<&str> = line.split(',').collect();
        if fields.len() != 5 {
            return Err(TraceParseError::BadArity { line: idx + 1 });
        }
        let id: u32 = fields[0].parse().map_err(|_| TraceParseError::BadField {
            line: idx + 1,
            field: "id",
        })?;
        let rel: u64 = fields[1].parse().map_err(|_| TraceParseError::BadField {
            line: idx + 1,
            field: "release_us",
        })?;
        let dl: u64 = fields[2].parse().map_err(|_| TraceParseError::BadField {
            line: idx + 1,
            field: "deadline_us",
        })?;
        let demand: f64 = fields[3].parse().map_err(|_| TraceParseError::BadField {
            line: idx + 1,
            field: "demand_units",
        })?;
        let partial = match fields[4] {
            "1" | "true" => true,
            "0" | "false" => false,
            _ => {
                return Err(TraceParseError::BadField {
                    line: idx + 1,
                    field: "partial",
                })
            }
        };
        jobs.push(
            Job::with_partial(
                id,
                SimTime::from_micros(rel),
                SimTime::from_micros(dl),
                demand,
                partial,
            )
            .map_err(TraceParseError::Invalid)?,
        );
    }
    JobSet::new(jobs).map_err(TraceParseError::Invalid)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::websearch::WebSearchWorkload;

    #[test]
    fn roundtrip_preserves_every_job() {
        let w = WebSearchWorkload::new(80.0)
            .with_horizon(SimTime::from_secs(3))
            .with_partial_fraction(0.5);
        let orig = w.generate(11).unwrap();
        let csv = to_csv(&orig);
        let back = from_csv(&csv).unwrap();
        assert_eq!(orig.len(), back.len());
        for (a, b) in orig.iter().zip(back.iter()) {
            assert_eq!(a, b);
        }
    }

    #[test]
    fn header_is_mandatory() {
        assert_eq!(
            from_csv("id,release_us\n").unwrap_err(),
            TraceParseError::BadHeader
        );
        assert_eq!(from_csv("").unwrap_err(), TraceParseError::BadHeader);
    }

    #[test]
    fn arity_and_field_errors_are_located() {
        let text = format!("{HEADER}\n0,1,2,3\n");
        assert_eq!(
            from_csv(&text).unwrap_err(),
            TraceParseError::BadArity { line: 2 }
        );
        let text = format!("{HEADER}\n0,xx,200000,50.0,1\n");
        assert_eq!(
            from_csv(&text).unwrap_err(),
            TraceParseError::BadField {
                line: 2,
                field: "release_us"
            }
        );
        let text = format!("{HEADER}\n0,0,200000,50.0,maybe\n");
        assert_eq!(
            from_csv(&text).unwrap_err(),
            TraceParseError::BadField {
                line: 2,
                field: "partial"
            }
        );
    }

    #[test]
    fn comments_blank_lines_and_column_header_are_skipped() {
        let text = format!(
            "{HEADER}\nid,release_us,deadline_us,demand_units,partial\n\n# note\n0,0,150000,100.0,1\n"
        );
        let jobs = from_csv(&text).unwrap();
        assert_eq!(jobs.len(), 1);
        assert!(jobs.jobs()[0].partial);
    }

    #[test]
    fn invalid_job_rejected_with_reason() {
        // Deadline before release.
        let text = format!("{HEADER}\n0,1000,500,10.0,0\n");
        assert!(matches!(from_csv(&text), Err(TraceParseError::Invalid(_))));
    }

    #[test]
    fn boolean_spellings() {
        let text = format!("{HEADER}\n0,0,1000,1.0,true\n1,0,1000,1.0,false\n");
        let jobs = from_csv(&text).unwrap();
        assert!(jobs.jobs()[0].partial);
        assert!(!jobs.jobs()[1].partial);
    }
}
