#![warn(missing_docs)]

//! # qes-workload — the web-search workload generator (paper §V-B)
//!
//! The paper drives its evaluation with a synthetic web-search request
//! stream:
//!
//! * **arrivals** follow a Poisson process at a configurable rate
//!   (requests/second) — [`arrivals::PoissonArrivals`];
//! * **service demands** follow a bounded Pareto distribution with index
//!   `α = 3`, lower bound `x_min = 130` and upper bound `x_max = 1000`
//!   processing units (mean 192) — [`pareto::BoundedPareto`];
//! * every request's **deadline** is 150 ms after its arrival (so
//!   deadlines are agreeable by construction);
//! * a configurable fraction of requests supports **partial evaluation**
//!   (§V-D varies it over {0 %, 50 %, 100 %}).
//!
//! [`WebSearchWorkload`] bundles all of it behind one seeded, fully
//! deterministic builder.

pub mod arrivals;
pub mod builder;
pub mod distributions;
pub mod diurnal;
pub mod modulated;
pub mod pareto;
pub mod trace_io;
pub mod websearch;

pub use arrivals::PoissonArrivals;
pub use builder::GeneralWorkload;
pub use distributions::{
    DemandDistribution, Deterministic, EmpiricalDemand, LognormalDemand, UniformDemand,
};
pub use diurnal::DiurnalWorkload;
pub use modulated::{sample_modulated, ConstantRate, DiurnalRate, RateProfile, SteppedRate};
pub use pareto::BoundedPareto;
pub use trace_io::{from_csv, to_csv, TraceParseError};
pub use websearch::WebSearchWorkload;
