//! The paper's web-search workload model (§V-B), bundled into a builder.

use qes_core::error::QesError;
use qes_core::job::{Job, JobSet};
use qes_core::time::{SimDuration, SimTime};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::arrivals::PoissonArrivals;
use crate::pareto::BoundedPareto;

/// Deterministic generator for best-effort web-search request streams.
///
/// Defaults follow §V-B: Poisson arrivals, bounded Pareto(3, 130, 1000)
/// demands, 150 ms relative deadlines, and 100 % partial-evaluation
/// support.
#[derive(Clone, Debug)]
pub struct WebSearchWorkload {
    arrival_rate: f64,
    demand: BoundedPareto,
    deadline: SimDuration,
    partial_fraction: f64,
    horizon: SimTime,
}

impl WebSearchWorkload {
    /// The paper's workload at the given arrival rate (requests/second).
    pub fn new(arrival_rate: f64) -> Self {
        WebSearchWorkload {
            arrival_rate,
            demand: BoundedPareto::paper_default(),
            deadline: SimDuration::from_millis(150),
            partial_fraction: 1.0,
            horizon: SimTime::from_secs(1800),
        }
    }

    /// Override the simulated horizon (paper: 1800 s).
    pub fn with_horizon(mut self, horizon: SimTime) -> Self {
        self.horizon = horizon;
        self
    }

    /// Override the relative deadline (paper: 150 ms).
    pub fn with_deadline(mut self, d: SimDuration) -> Self {
        self.deadline = d;
        self
    }

    /// Override the demand distribution.
    pub fn with_demand(mut self, d: BoundedPareto) -> Self {
        self.demand = d;
        self
    }

    /// Fraction of jobs supporting partial evaluation (§V-D); clamped to
    /// `[0, 1]`.
    pub fn with_partial_fraction(mut self, f: f64) -> Self {
        self.partial_fraction = f.clamp(0.0, 1.0);
        self
    }

    /// The configured arrival rate.
    pub fn arrival_rate(&self) -> f64 {
        self.arrival_rate
    }

    /// The configured horizon.
    pub fn horizon(&self) -> SimTime {
        self.horizon
    }

    /// Generate the request stream deterministically from `seed`.
    ///
    /// Deadlines are agreeable by construction (constant relative
    /// deadline), so the returned [`JobSet`] always validates.
    pub fn generate(&self, seed: u64) -> Result<JobSet, QesError> {
        let mut rng = StdRng::seed_from_u64(seed);
        let arrivals = PoissonArrivals::new(self.arrival_rate).sample_until(&mut rng, self.horizon);
        let mut jobs = Vec::with_capacity(arrivals.len());
        for (i, &at) in arrivals.iter().enumerate() {
            let demand = self.demand.sample(&mut rng);
            let partial = rng.gen::<f64>() < self.partial_fraction;
            jobs.push(Job::with_partial(
                i as u32,
                at,
                at + self.deadline,
                demand,
                partial,
            )?);
        }
        JobSet::new(jobs)
    }

    /// Generate a stream of exactly `n` jobs, ignoring the configured
    /// horizon (the stream simply runs as long as the Poisson process
    /// takes to emit `n` arrivals).
    ///
    /// This is the large-trace entry point used by the engine throughput
    /// benchmarks, where the interesting scale knob is the *job count*
    /// (100k–1M) rather than the simulated duration.
    pub fn generate_exact(&self, n: usize, seed: u64) -> Result<JobSet, QesError> {
        let mut rng = StdRng::seed_from_u64(seed);
        let arrivals = PoissonArrivals::new(self.arrival_rate);
        let mut jobs = Vec::with_capacity(n);
        let mut at_us = 0.0f64;
        for i in 0..n {
            at_us += arrivals.sample_gap_secs(&mut rng) * 1e6;
            let at = SimTime::from_micros(at_us as u64);
            let demand = self.demand.sample(&mut rng);
            let partial = rng.gen::<f64>() < self.partial_fraction;
            jobs.push(Job::with_partial(
                i as u32,
                at,
                at + self.deadline,
                demand,
                partial,
            )?);
        }
        JobSet::new(jobs)
    }

    /// Expected offered load in processing units per second.
    pub fn offered_units_per_sec(&self) -> f64 {
        self.arrival_rate * self.demand.mean()
    }

    /// Offered load as a fraction of a server's capacity, where the server
    /// has `m` cores able to run at `per_core_speed_ghz` under its budget
    /// (the paper's 72 % light-load / >100 % heavy-load bookkeeping).
    pub fn utilization(&self, m: usize, per_core_speed_ghz: f64) -> f64 {
        let capacity = m as f64 * per_core_speed_ghz * qes_core::UNITS_PER_GHZ_SECOND;
        self.offered_units_per_sec() / capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_agreeable_validated_jobset() {
        let w = WebSearchWorkload::new(100.0).with_horizon(SimTime::from_secs(5));
        let jobs = w.generate(1).unwrap();
        assert!(jobs.len() > 300 && jobs.len() < 700, "{}", jobs.len());
        for j in jobs.iter() {
            assert_eq!(j.window(), SimDuration::from_millis(150));
            assert!((130.0..=1000.0).contains(&j.demand));
            assert!(j.partial);
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let w = WebSearchWorkload::new(50.0).with_horizon(SimTime::from_secs(3));
        let a = w.generate(9).unwrap();
        let b = w.generate(9).unwrap();
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b.iter()) {
            assert_eq!(x, y);
        }
        let c = w.generate(10).unwrap();
        // Different seed ⇒ (almost surely) different stream.
        assert!(a.len() != c.len() || a.iter().zip(c.iter()).any(|(x, y)| x != y));
    }

    #[test]
    fn partial_fraction_mixes() {
        let horizon = SimTime::from_secs(20);
        for (frac, lo, hi) in [(0.0, 0.0, 0.0), (0.5, 0.4, 0.6), (1.0, 1.0, 1.0)] {
            let w = WebSearchWorkload::new(100.0)
                .with_horizon(horizon)
                .with_partial_fraction(frac);
            let jobs = w.generate(4).unwrap();
            let p = jobs.iter().filter(|j| j.partial).count() as f64 / jobs.len() as f64;
            assert!((lo..=hi).contains(&p), "frac {frac}: got {p}");
        }
    }

    #[test]
    fn paper_utilization_bookkeeping() {
        // §V-B: 120 req/s ≈ 72 % of a 16-core 2 GHz server's capacity.
        let w = WebSearchWorkload::new(120.0);
        let u = w.utilization(16, 2.0);
        assert!((u - 0.72).abs() < 0.01, "utilization {u}");
        // 180 req/s > 100 %? The paper calls > 180 heavy; 180 × 192 /
        // 32 000 = 1.08.
        let heavy = WebSearchWorkload::new(180.0).utilization(16, 2.0);
        assert!(heavy > 1.0, "{heavy}");
    }

    #[test]
    fn horizon_and_deadline_overrides() {
        let w = WebSearchWorkload::new(30.0)
            .with_horizon(SimTime::from_secs(2))
            .with_deadline(SimDuration::from_millis(80));
        let jobs = w.generate(2).unwrap();
        assert!(
            jobs.last_deadline().unwrap() <= SimTime::from_secs(2) + SimDuration::from_millis(80)
        );
        for j in jobs.iter() {
            assert_eq!(j.window(), SimDuration::from_millis(80));
        }
    }
}
