//! The diurnal "millions of users" workload builder.
//!
//! Front-end services see sinusoidal load swings: the same machine is
//! underloaded at night and overloaded at the daily peak. This builder
//! bundles [`DiurnalRate`] thinning (see [`modulated`](crate::modulated))
//! with the paper's §V-B demand/deadline model behind one seeded,
//! deterministic generator — the diurnal twin of [`WebSearchWorkload`]
//! — and adds [`DiurnalWorkload::generate_exact`], the large-trace entry
//! point used by the cluster benchmarks where the scale knob is the job
//! *count* (e.g. 1M requests spread over several load cycles) rather
//! than the simulated duration.
//!
//! [`WebSearchWorkload`]: crate::websearch::WebSearchWorkload

use qes_core::error::QesError;
use qes_core::job::{Job, JobSet};
use qes_core::time::{SimDuration, SimTime};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::modulated::{sample_modulated, DiurnalRate, RateProfile};
use crate::pareto::BoundedPareto;

/// Deterministic generator for diurnally-modulated web-search streams.
///
/// Arrivals follow a non-homogeneous Poisson process with rate
/// `base + amp·sin(2π t / period)` (floored at 0, sampled by
/// Lewis–Shedler thinning); demands, deadlines and partial-evaluation
/// support follow §V-B like [`crate::websearch::WebSearchWorkload`].
#[derive(Clone, Debug)]
pub struct DiurnalWorkload {
    profile: DiurnalRate,
    demand: BoundedPareto,
    deadline: SimDuration,
    partial_fraction: f64,
    horizon: SimTime,
}

impl DiurnalWorkload {
    /// A diurnal stream swinging `base ± amp` requests/second with the
    /// given cycle length, paper-default demands, 150 ms deadlines, 100 %
    /// partial evaluation, 1800 s horizon.
    pub fn new(base: f64, amp: f64, period_secs: f64) -> Self {
        DiurnalWorkload {
            profile: DiurnalRate {
                base,
                amp,
                period_secs,
            },
            demand: BoundedPareto::paper_default(),
            deadline: SimDuration::from_millis(150),
            partial_fraction: 1.0,
            horizon: SimTime::from_secs(1800),
        }
    }

    /// The "millions of users" cluster-bench profile: mean rate `base`
    /// with a ±50 % swing every 15 minutes, so a 1M-job trace (minutes
    /// to an hour of simulated time at cluster rates) spans several
    /// under-/over-loaded cycles.
    pub fn millions_of_users(base: f64) -> Self {
        DiurnalWorkload::new(base, 0.5 * base, 900.0)
    }

    /// Override the simulated horizon (default 1800 s).
    pub fn with_horizon(mut self, horizon: SimTime) -> Self {
        self.horizon = horizon;
        self
    }

    /// Override the relative deadline (default 150 ms).
    pub fn with_deadline(mut self, d: SimDuration) -> Self {
        self.deadline = d;
        self
    }

    /// Override the demand distribution.
    pub fn with_demand(mut self, d: BoundedPareto) -> Self {
        self.demand = d;
        self
    }

    /// Fraction of jobs supporting partial evaluation (§V-D); clamped to
    /// `[0, 1]`.
    pub fn with_partial_fraction(mut self, f: f64) -> Self {
        self.partial_fraction = f.clamp(0.0, 1.0);
        self
    }

    /// The rate profile.
    pub fn profile(&self) -> &DiurnalRate {
        &self.profile
    }

    /// The configured horizon.
    pub fn horizon(&self) -> SimTime {
        self.horizon
    }

    /// Generate the stream over `[0, horizon)` deterministically from
    /// `seed`. Deadlines are agreeable by construction (constant relative
    /// deadline), so the returned [`JobSet`] always validates.
    pub fn generate(&self, seed: u64) -> Result<JobSet, QesError> {
        let mut rng = StdRng::seed_from_u64(seed);
        let arrivals = sample_modulated(&self.profile, &mut rng, self.horizon);
        let mut jobs = Vec::with_capacity(arrivals.len());
        for (i, &at) in arrivals.iter().enumerate() {
            let demand = self.demand.sample(&mut rng);
            let partial = rng.gen::<f64>() < self.partial_fraction;
            jobs.push(Job::with_partial(
                i as u32,
                at,
                at + self.deadline,
                demand,
                partial,
            )?);
        }
        JobSet::new(jobs)
    }

    /// Generate exactly `n` jobs, ignoring the configured horizon: the
    /// thinned process simply runs for as many cycles as it takes to emit
    /// `n` arrivals (the profile is periodic, so the rate is defined for
    /// all `t`). Demand and partial draws are consumed per *kept*
    /// arrival, mirroring [`DiurnalWorkload::generate`].
    pub fn generate_exact(&self, n: usize, seed: u64) -> Result<JobSet, QesError> {
        let peak = self.profile.peak();
        assert!(peak > 0.0, "a zero-rate profile never emits {n} arrivals");
        let mut rng = StdRng::seed_from_u64(seed);
        let mut jobs = Vec::with_capacity(n);
        let mut t = 0.0f64;
        while jobs.len() < n {
            // Homogeneous candidate at the peak rate…
            let u: f64 = rng.gen();
            t += -(1.0 - u).ln() / peak;
            let at = SimTime::from_secs_f64(t);
            // …kept with probability rate(t)/peak (Lewis–Shedler).
            let keep: f64 = rng.gen();
            if keep * peak < self.profile.rate_at(at) {
                let demand = self.demand.sample(&mut rng);
                let partial = rng.gen::<f64>() < self.partial_fraction;
                jobs.push(Job::with_partial(
                    jobs.len() as u32,
                    at,
                    at + self.deadline,
                    demand,
                    partial,
                )?);
            }
        }
        JobSet::new(jobs)
    }

    /// Expected offered load in processing units per second at the *mean*
    /// rate (the peak is `(base+amp)/base` times this).
    pub fn offered_units_per_sec(&self) -> f64 {
        self.profile.base * self.demand.mean()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_agreeable_modulated_stream() {
        let w = DiurnalWorkload::new(100.0, 80.0, 40.0).with_horizon(SimTime::from_secs(40));
        let jobs = w.generate(5).unwrap();
        assert!(jobs.len() > 2000, "{}", jobs.len());
        // Rising half-cycle carries more arrivals than the falling one.
        let half = SimTime::from_secs(20);
        let first = jobs.iter().filter(|j| j.release < half).count();
        assert!(first > jobs.len() - first);
        for j in jobs.iter() {
            assert_eq!(j.window(), SimDuration::from_millis(150));
            assert!(j.partial);
        }
    }

    #[test]
    fn exact_count_hits_n_and_is_deterministic() {
        let w = DiurnalWorkload::millions_of_users(200.0);
        let a = w.generate_exact(5000, 3).unwrap();
        let b = w.generate_exact(5000, 3).unwrap();
        assert_eq!(a.len(), 5000);
        for (x, y) in a.iter().zip(b.iter()) {
            assert_eq!(x, y);
        }
        let c = w.generate_exact(5000, 4).unwrap();
        assert!(a.iter().zip(c.iter()).any(|(x, y)| x != y));
    }

    #[test]
    fn exact_count_spans_multiple_cycles_at_cluster_scale() {
        // 200 req/s mean, 900 s period: 5000 jobs ≈ 25 s... scale down the
        // period instead so the test stays fast but still wraps cycles.
        let w = DiurnalWorkload::new(200.0, 100.0, 10.0);
        let jobs = w.generate_exact(5000, 7).unwrap();
        let span = jobs.last_deadline().unwrap().as_secs_f64();
        assert!(
            span > 20.0,
            "stream spans {span} s, expected several cycles"
        );
        // Thinning must modulate: per-cycle-phase arrival counts differ.
        let rising = jobs
            .iter()
            .filter(|j| (j.release.as_secs_f64() % 10.0) < 5.0)
            .count();
        let falling = jobs.len() - rising;
        assert!(
            rising as f64 > 1.2 * falling as f64,
            "{rising} vs {falling}"
        );
    }

    #[test]
    fn matches_modulated_sampler_prefix() {
        // generate() must consume the RNG exactly like sample_modulated +
        // per-job draws, so the arrival instants coincide.
        let w = DiurnalWorkload::new(120.0, 60.0, 30.0).with_horizon(SimTime::from_secs(10));
        let jobs = w.generate(11).unwrap();
        let mut rng = StdRng::seed_from_u64(11);
        let arrivals = sample_modulated(w.profile(), &mut rng, SimTime::from_secs(10));
        assert_eq!(jobs.len(), arrivals.len());
        for (j, &at) in jobs.iter().zip(arrivals.iter()) {
            assert_eq!(j.release, at);
        }
    }
}
