//! Poisson arrival process.

use qes_core::time::SimTime;
use rand::Rng;

/// A Poisson arrival process: inter-arrival times are i.i.d. exponential
/// with mean `1/rate`.
#[derive(Clone, Debug)]
pub struct PoissonArrivals {
    rate_per_sec: f64,
}

impl PoissonArrivals {
    /// A process with the given arrival rate (requests/second).
    pub fn new(rate_per_sec: f64) -> Self {
        assert!(
            rate_per_sec > 0.0 && rate_per_sec.is_finite(),
            "arrival rate must be positive"
        );
        PoissonArrivals { rate_per_sec }
    }

    /// The configured rate.
    pub fn rate(&self) -> f64 {
        self.rate_per_sec
    }

    /// Sample one exponential inter-arrival gap in seconds.
    pub fn sample_gap_secs<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        // Inverse CDF; 1−u ∈ (0, 1] avoids ln(0).
        let u: f64 = rng.gen::<f64>();
        -(1.0 - u).ln() / self.rate_per_sec
    }

    /// All arrival instants within `[0, horizon)`.
    pub fn sample_until<R: Rng + ?Sized>(&self, rng: &mut R, horizon: SimTime) -> Vec<SimTime> {
        let mut out =
            Vec::with_capacity((self.rate_per_sec * horizon.as_secs_f64() * 1.2) as usize + 8);
        let mut t = 0.0;
        loop {
            t += self.sample_gap_secs(rng);
            let at = SimTime::from_secs_f64(t);
            if at >= horizon {
                break;
            }
            out.push(at);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn mean_rate_matches_over_long_horizon() {
        let p = PoissonArrivals::new(120.0);
        let mut rng = StdRng::seed_from_u64(7);
        let horizon = SimTime::from_secs(100);
        let arrivals = p.sample_until(&mut rng, horizon);
        let observed = arrivals.len() as f64 / 100.0;
        assert!(
            (observed - 120.0).abs() < 6.0,
            "observed rate {observed} too far from 120"
        );
    }

    #[test]
    fn arrivals_are_sorted_and_in_range() {
        let p = PoissonArrivals::new(50.0);
        let mut rng = StdRng::seed_from_u64(1);
        let horizon = SimTime::from_secs(10);
        let arrivals = p.sample_until(&mut rng, horizon);
        assert!(arrivals.windows(2).all(|w| w[0] <= w[1]));
        assert!(arrivals.iter().all(|&t| t < horizon));
    }

    #[test]
    fn deterministic_under_same_seed() {
        let p = PoissonArrivals::new(80.0);
        let a = p.sample_until(&mut StdRng::seed_from_u64(42), SimTime::from_secs(5));
        let b = p.sample_until(&mut StdRng::seed_from_u64(42), SimTime::from_secs(5));
        assert_eq!(a, b);
        let c = p.sample_until(&mut StdRng::seed_from_u64(43), SimTime::from_secs(5));
        assert_ne!(a, c);
    }

    #[test]
    fn gap_distribution_mean_and_positivity() {
        let p = PoissonArrivals::new(10.0);
        let mut rng = StdRng::seed_from_u64(3);
        let n = 20_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let g = p.sample_gap_secs(&mut rng);
            assert!(g >= 0.0);
            sum += g;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.1).abs() < 0.005, "mean gap {mean}");
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_rate_rejected() {
        PoissonArrivals::new(0.0);
    }
}
