//! Virtual/real timeline machinery for interval-extraction algorithms.
//!
//! Both Energy-OPT and Quality-OPT repeatedly pick an interval, schedule
//! the jobs fully contained in it, and then "remove" the interval: the
//! windows of all remaining jobs contract as if the interval never existed
//! (the paper: "removes the interval … adjusts the release time and the
//! deadline for other jobs that partially overlap").
//!
//! Rather than rewriting job windows *and* separately remembering where
//! extracted work sits in real time, we keep two coordinate systems:
//!
//! * **virtual time** — the compressed axis the recursion reasons about
//!   (contiguous, gap-free `u64` microseconds);
//! * **real time** — simulation time where emitted slices must land.
//!
//! [`VirtualMap`] is the strictly increasing, piecewise slope-1 map from
//! virtual to real. Cutting `[a, b)` out of virtual time removes the
//! corresponding real span(s) from the map and shifts later virtual
//! coordinates left. Job windows live in virtual coordinates ([`VJob`])
//! and compress with [`compress_point`].

use qes_core::job::JobId;

/// A job expressed in virtual coordinates.
#[derive(Clone, Copy, Debug)]
pub(crate) struct VJob {
    /// Owning job id.
    pub id: JobId,
    /// Virtual release (µs).
    pub r: u64,
    /// Virtual deadline (µs).
    pub d: u64,
    /// Remaining service demand (processing units).
    pub w: f64,
}

/// Compress a virtual coordinate after cutting `[a, b)`.
#[inline]
pub(crate) fn compress_point(t: u64, a: u64, b: u64) -> u64 {
    if t <= a {
        t
    } else if t < b {
        a
    } else {
        t - (b - a)
    }
}

/// One maximal contiguous stretch where virtual and real time advance
/// together.
#[derive(Clone, Copy, Debug, PartialEq)]
struct MapSeg {
    /// Virtual start.
    v: u64,
    /// Real start.
    r: u64,
    /// Length in µs.
    len: u64,
}

/// A strictly increasing piecewise slope-1 map from virtual time to real
/// time.
#[derive(Clone, Debug)]
pub(crate) struct VirtualMap {
    segs: Vec<MapSeg>,
}

impl VirtualMap {
    /// Identity map: virtual `[0, horizon)` onto real `[origin, origin+horizon)`.
    pub fn identity(origin: u64, horizon: u64) -> Self {
        VirtualMap {
            segs: vec![MapSeg {
                v: 0,
                r: origin,
                len: horizon,
            }],
        }
    }

    /// Total remaining virtual extent.
    #[cfg(test)]
    pub fn extent(&self) -> u64 {
        self.segs.iter().map(|s| s.len).sum()
    }

    /// Real sub-intervals corresponding to virtual `[a, b)`, in order.
    pub fn real_segments(&self, a: u64, b: u64) -> Vec<(u64, u64)> {
        let mut out = Vec::new();
        if b <= a {
            return out;
        }
        for s in &self.segs {
            let v_end = s.v + s.len;
            if v_end <= a {
                continue;
            }
            if s.v >= b {
                break;
            }
            let lo = a.max(s.v);
            let hi = b.min(v_end);
            let off = lo - s.v;
            out.push((s.r + off, s.r + off + (hi - lo)));
        }
        out
    }

    /// Remove virtual `[a, b)` from the map; later virtual coordinates
    /// shift left by `b − a`.
    pub fn cut(&mut self, a: u64, b: u64) {
        if b <= a {
            return;
        }
        let gap = b - a;
        let mut out = Vec::with_capacity(self.segs.len() + 1);
        for s in &self.segs {
            let v_end = s.v + s.len;
            if v_end <= a {
                // Entirely before the cut.
                out.push(*s);
            } else if s.v >= b {
                // Entirely after: shift left.
                out.push(MapSeg {
                    v: s.v - gap,
                    r: s.r,
                    len: s.len,
                });
            } else {
                // Overlaps the cut; keep the prefix and/or suffix.
                if s.v < a {
                    out.push(MapSeg {
                        v: s.v,
                        r: s.r,
                        len: a - s.v,
                    });
                }
                if v_end > b {
                    let off = b - s.v;
                    out.push(MapSeg {
                        v: a,
                        r: s.r + off,
                        len: v_end - b,
                    });
                }
            }
        }
        self.segs = out;
    }
}

/// EDF-pack jobs with assigned volumes into virtual interval `[start, …)`
/// at a fixed speed, producing virtual slices `(job, v_start, v_end)`.
///
/// Preemptive earliest-deadline-first: at every instant the released,
/// unfinished job with the earliest deadline runs. For agreeable job sets
/// (deadline order = release order) this reduces to the non-preemptive
/// greedy and emits one slice per job; for the momentarily non-agreeable
/// sets Online-QE's release rewinding creates, preemption is what keeps a
/// feasible volume assignment feasible in the packed schedule.
///
/// Fractional-µs boundaries are tracked in `f64` and rounded per-slice,
/// so rounding error does not accumulate. Slices are clamped to each
/// job's virtual deadline; with a feasible assignment the clamp removes
/// at most ~1 µs of work.
pub(crate) fn edf_pack(jobs: &[(VJob, f64)], speed_ghz: f64, start: u64) -> Vec<(JobId, u64, u64)> {
    debug_assert!(speed_ghz > 0.0);
    let us_per_unit = 1000.0 / speed_ghz; // 1 unit = 1 GHz·ms

    // Work items with remaining run time (µs, fractional).
    struct Item {
        vj: VJob,
        remaining_us: f64,
    }
    let mut items: Vec<Item> = jobs
        .iter()
        .filter(|&&(_, vol)| vol > 0.0)
        .map(|&(vj, vol)| Item {
            vj,
            remaining_us: vol * us_per_unit,
        })
        .collect();
    // Release order for the sweep.
    let mut by_release: Vec<usize> = (0..items.len()).collect();
    by_release.sort_by_key(|&i| (items[i].vj.r, items[i].vj.d, items[i].vj.id));

    let mut out: Vec<(JobId, u64, u64)> = Vec::with_capacity(items.len());
    let mut active: Vec<usize> = Vec::new(); // released, unfinished item idxs
    let mut next_rel = 0usize;
    let mut cur = start as f64;
    loop {
        // Admit everything released by `cur`.
        while next_rel < by_release.len() && (items[by_release[next_rel]].vj.r as f64) <= cur {
            active.push(by_release[next_rel]);
            next_rel += 1;
        }
        if active.is_empty() {
            match by_release.get(next_rel) {
                Some(&i) => {
                    cur = cur.max(items[i].vj.r as f64);
                    continue;
                }
                None => break,
            }
        }
        // Earliest-deadline active item.
        let pos = (0..active.len())
            .min_by_key(|&p| {
                let it = &items[active[p]];
                (it.vj.d, it.vj.id)
            })
            .expect("active is non-empty");
        let idx = active[pos];
        let (deadline, release_horizon) = {
            let it = &items[idx];
            let next_release = by_release
                .get(next_rel)
                .map(|&i| items[i].vj.r as f64)
                .unwrap_or(f64::INFINITY);
            (it.vj.d as f64, next_release)
        };
        // Run until the job finishes, its deadline passes, or a new
        // release could preempt it.
        let it = &mut items[idx];
        let end = (cur + it.remaining_us).min(deadline).min(release_horizon);
        let ran = (end - cur).max(0.0);
        let si = cur.round() as u64;
        let ei = (end.round() as u64).min(it.vj.d);
        if ei > si {
            // Merge with an immediately preceding slice of the same job
            // (a preemption point that didn't actually switch jobs).
            match out.last_mut() {
                Some(last) if last.0 == it.vj.id && last.2 == si => last.2 = ei,
                _ => out.push((it.vj.id, si, ei)),
            }
        }
        it.remaining_us -= ran;
        cur = end;
        let finished = it.remaining_us <= 0.5 || end >= deadline;
        if finished {
            debug_assert!(
                it.remaining_us <= 2.0 || end < deadline,
                "EDF pack drops volume at deadline: job {:?} leaves {:.1} µs",
                it.vj.id,
                it.remaining_us
            );
            active.swap_remove(pos);
        }
        if ran <= 0.0 && !finished {
            // Defensive: no progress possible (deadline passed with work
            // left); drop the item rather than loop forever.
            active.swap_remove(pos);
        }
    }
    out
}

/// Map virtual slices through `map` into real `(job, real_start, real_end)`
/// slices, splitting across map segments where necessary.
pub(crate) fn materialize(
    map: &VirtualMap,
    vslices: &[(JobId, u64, u64)],
) -> Vec<(JobId, u64, u64)> {
    let mut out = Vec::with_capacity(vslices.len());
    for &(id, a, b) in vslices {
        for (ra, rb) in map.real_segments(a, b) {
            if rb > ra {
                out.push((id, ra, rb));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_maps_straight_through() {
        let m = VirtualMap::identity(100, 1000);
        assert_eq!(m.real_segments(0, 10), vec![(100, 110)]);
        assert_eq!(m.real_segments(990, 1000), vec![(1090, 1100)]);
        assert_eq!(m.extent(), 1000);
        assert!(m.real_segments(5, 5).is_empty());
    }

    #[test]
    fn cut_shifts_later_coordinates() {
        let mut m = VirtualMap::identity(0, 1000);
        m.cut(100, 200);
        assert_eq!(m.extent(), 900);
        // Virtual 100 now lands at real 200.
        assert_eq!(m.real_segments(100, 150), vec![(200, 250)]);
        // Virtual span straddling the seam splits into two real segments.
        assert_eq!(m.real_segments(50, 150), vec![(50, 100), (200, 250)]);
    }

    #[test]
    fn multiple_cuts_compose() {
        let mut m = VirtualMap::identity(0, 1000);
        m.cut(100, 200); // real [100,200) gone
        m.cut(100, 150); // virtual [100,150) = real [200,250) gone
        assert_eq!(m.extent(), 850);
        assert_eq!(m.real_segments(90, 160), vec![(90, 100), (250, 310)]);
    }

    #[test]
    fn cut_at_edges() {
        let mut m = VirtualMap::identity(0, 100);
        m.cut(0, 10);
        assert_eq!(m.real_segments(0, 10), vec![(10, 20)]);
        m.cut(80, 90); // virtual [80,90) = real [90,100)
        assert_eq!(m.extent(), 80);
        assert_eq!(m.real_segments(0, 80), vec![(10, 90)]);
    }

    #[test]
    fn compress_point_cases() {
        assert_eq!(compress_point(5, 10, 20), 5);
        assert_eq!(compress_point(10, 10, 20), 10);
        assert_eq!(compress_point(15, 10, 20), 10);
        assert_eq!(compress_point(20, 10, 20), 10);
        assert_eq!(compress_point(25, 10, 20), 15);
    }

    #[test]
    fn edf_pack_sequences_jobs() {
        let j = |id: u32, r: u64, d: u64, w: f64| {
            (
                VJob {
                    id: JobId(id),
                    r,
                    d,
                    w,
                },
                w,
            )
        };
        // Two jobs, 10 units each at 1 GHz = 10 000 µs each.
        let jobs = vec![j(0, 0, 20_000, 10.0), j(1, 0, 40_000, 10.0)];
        let slices = edf_pack(&jobs, 1.0, 0);
        assert_eq!(slices.len(), 2);
        assert_eq!(slices[0], (JobId(0), 0, 10_000));
        assert_eq!(slices[1], (JobId(1), 10_000, 20_000));
    }

    #[test]
    fn edf_pack_waits_for_release() {
        let vj = VJob {
            id: JobId(0),
            r: 5_000,
            d: 20_000,
            w: 5.0,
        };
        let slices = edf_pack(&[(vj, 5.0)], 1.0, 0);
        assert_eq!(slices, vec![(JobId(0), 5_000, 10_000)]);
    }

    #[test]
    fn edf_pack_skips_zero_volume() {
        let vj = VJob {
            id: JobId(0),
            r: 0,
            d: 10_000,
            w: 5.0,
        };
        assert!(edf_pack(&[(vj, 0.0)], 1.0, 0).is_empty());
    }

    #[test]
    fn edf_pack_preempts_for_tighter_deadline() {
        // Non-agreeable: a later-released job with an EARLIER deadline
        // (the shape Online-QE's release rewinding produces). The long
        // job must start first, yield when the tight job releases, and
        // resume after — no deadline overrun.
        let long = VJob {
            id: JobId(0),
            r: 0,
            d: 100_000,
            w: 80.0,
        };
        let tight = VJob {
            id: JobId(1),
            r: 40_000,
            d: 60_000,
            w: 20.0,
        };
        // 1 GHz: 80 units = 80 000 µs, 20 units = 20 000 µs; total exactly
        // fills [0, 100 000].
        let slices = edf_pack(&[(tight, 20.0), (long, 80.0)], 1.0, 0);
        // Long runs [0, 40k), tight preempts [40k, 60k), long resumes
        // [60k, 100k).
        assert_eq!(
            slices,
            vec![
                (JobId(0), 0, 40_000),
                (JobId(1), 40_000, 60_000),
                (JobId(0), 60_000, 100_000),
            ]
        );
    }

    #[test]
    fn edf_pack_merges_contiguous_slices_of_one_job() {
        // A release event that does NOT preempt (the new arrival has a
        // later deadline) must not split the running job's slice.
        let a = VJob {
            id: JobId(0),
            r: 0,
            d: 50_000,
            w: 30.0,
        };
        let b = VJob {
            id: JobId(1),
            r: 10_000,
            d: 90_000,
            w: 20.0,
        };
        let slices = edf_pack(&[(a, 30.0), (b, 20.0)], 1.0, 0);
        assert_eq!(
            slices,
            vec![(JobId(0), 0, 30_000), (JobId(1), 30_000, 50_000)]
        );
    }

    #[test]
    fn edf_pack_idles_until_first_release() {
        let a = VJob {
            id: JobId(0),
            r: 25_000,
            d: 80_000,
            w: 10.0,
        };
        let slices = edf_pack(&[(a, 10.0)], 1.0, 0);
        assert_eq!(slices, vec![(JobId(0), 25_000, 35_000)]);
    }

    #[test]
    fn edf_pack_clamps_at_deadline_without_panicking() {
        // Deliberately infeasible volume: release build clamps silently.
        // (Debug builds assert; keep the volume overrun under the assert's
        // tolerance by using an exactly-at-deadline assignment.)
        let a = VJob {
            id: JobId(0),
            r: 0,
            d: 10_000,
            w: 10.0,
        };
        let slices = edf_pack(&[(a, 10.0)], 1.0, 0);
        assert_eq!(slices, vec![(JobId(0), 0, 10_000)]);
    }

    #[test]
    fn materialize_splits_across_seams() {
        let mut m = VirtualMap::identity(0, 1000);
        m.cut(100, 200);
        let real = materialize(&m, &[(JobId(0), 50, 150)]);
        assert_eq!(real, vec![(JobId(0), 50, 100), (JobId(0), 200, 250)]);
    }
}
