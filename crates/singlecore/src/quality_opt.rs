//! **Quality-OPT** — the Tians maximum-quality algorithm (paper §III-A).
//!
//! Given a job set on a single core running at a *fixed* speed, Quality-OPT
//! maximizes total quality when the quality function is identical across
//! jobs, non-decreasing and strictly concave. Under overload some jobs are
//! *deprived* (partially executed); concavity makes the optimal policy give
//! every deprived job in the bottleneck interval the same processed volume
//! — the interval's **d-mean**:
//!
//! ```text
//! p̃(I) = (cap(I) − Σ_{J_j ∈ S(I)} w_j) / |D(I)|
//! ```
//!
//! where `cap(I)` is the work the core can do in `I`, `S(I)` the satisfied
//! jobs and `D(I)` the deprived jobs (classified by an iterative water-level
//! fixed point). The algorithm repeatedly extracts the **busiest deprived
//! interval** (minimum d-mean), fixes its allocations, removes the interval
//! and recurses; when every remaining interval can satisfy its jobs, the
//! rest are scheduled in full.

use std::collections::HashMap;

use qes_core::job::{JobId, JobSet};
use qes_core::schedule::{CoreSchedule, Slice};
use qes_core::time::SimTime;

use crate::timeline::{compress_point, edf_pack, materialize, VJob, VirtualMap};

/// Output of [`quality_opt`].
#[derive(Clone, Debug)]
pub struct QualityOptResult {
    /// Optimal processed volume `p_j` per job (jobs absent were given 0).
    pub volumes: HashMap<JobId, f64>,
    /// A fixed-speed schedule realizing those volumes.
    pub schedule: CoreSchedule,
    /// The fixed core speed used (GHz).
    pub speed: f64,
}

impl QualityOptResult {
    /// Processed volume for `id` (0 if never scheduled).
    pub fn volume(&self, id: JobId) -> f64 {
        self.volumes.get(&id).copied().unwrap_or(0.0)
    }
}

/// Run Quality-OPT on `jobs` with the core fixed at `speed_ghz`.
pub fn quality_opt(jobs: &JobSet, speed_ghz: f64) -> QualityOptResult {
    let mut volumes: HashMap<JobId, f64> = jobs.iter().map(|j| (j.id, 0.0)).collect();
    if speed_ghz <= 0.0 || jobs.is_empty() {
        return QualityOptResult {
            volumes,
            schedule: CoreSchedule::default(),
            speed: speed_ghz,
        };
    }
    let origin = jobs.first_release().unwrap().as_micros();
    let horizon = jobs.last_deadline().unwrap().as_micros() - origin;
    let mut vjobs: Vec<VJob> = jobs
        .iter()
        .filter(|j| j.demand > 0.0)
        .map(|j| VJob {
            id: j.id,
            r: j.release.as_micros() - origin,
            d: j.deadline.as_micros() - origin,
            w: j.demand,
        })
        .collect();
    let mut map = VirtualMap::identity(origin, horizon);
    let mut slices: Vec<Slice> = Vec::new();
    // units the core does per µs: 1 unit = 1 GHz·ms ⇒ cap(µs) = s·µs/1000.
    let units_per_us = speed_ghz / 1000.0;
    let mut scratch = BdiScratch::default();

    loop {
        if vjobs.is_empty() {
            break;
        }
        match busiest_deprived_interval(&vjobs, units_per_us, &mut scratch) {
            None => {
                // Everything remaining is satisfiable: schedule in full.
                vjobs.sort_by_key(|x| (x.d, x.r, x.id));
                let assigned: Vec<(VJob, f64)> = vjobs.iter().map(|&j| (j, j.w)).collect();
                emit(&map, &assigned, speed_ghz, 0, &mut slices, &mut volumes);
                break;
            }
            Some((a, b, level)) => {
                let (mut group, rest): (Vec<VJob>, Vec<VJob>) =
                    vjobs.into_iter().partition(|j| j.r >= a && j.d <= b);
                vjobs = rest;
                group.sort_by_key(|x| (x.d, x.r, x.id));
                // Satisfied jobs (w ≤ level) get w; deprived get the d-mean.
                let assigned: Vec<(VJob, f64)> = group
                    .iter()
                    .map(|&j| (j, if j.w <= level + 1e-9 { j.w } else { level }))
                    .collect();
                emit(&map, &assigned, speed_ghz, a, &mut slices, &mut volumes);
                map.cut(a, b);
                for j in &mut vjobs {
                    j.r = compress_point(j.r, a, b);
                    j.d = compress_point(j.d, a, b);
                }
            }
        }
    }

    QualityOptResult {
        volumes,
        schedule: CoreSchedule::new(slices),
        speed: speed_ghz,
    }
}

/// EDF-pack `assigned` volumes at `speed` from virtual `start`, materialize
/// through `map`, and record slices + volumes.
fn emit(
    map: &VirtualMap,
    assigned: &[(VJob, f64)],
    speed: f64,
    start: u64,
    slices: &mut Vec<Slice>,
    volumes: &mut HashMap<JobId, f64>,
) {
    for &(vj, vol) in assigned {
        *volumes.entry(vj.id).or_insert(0.0) += vol;
    }
    let vslices = edf_pack(assigned, speed, start);
    for (id, ra, rb) in materialize(map, &vslices) {
        slices.push(Slice {
            job: id,
            start: SimTime::from_micros(ra),
            end: SimTime::from_micros(rb),
            speed,
        });
    }
}

/// Classify jobs of one interval into satisfied/deprived via the iterative
/// water-level fixed point, and return the d-mean water level.
///
/// `demands` must be sorted ascending. Returns `None` when every job fits
/// (`p̃ = ∞`), otherwise `Some((level, satisfied_count))` with
/// `demands[..satisfied_count] ≤ level < demands[satisfied_count..]`.
pub(crate) fn d_mean(capacity: f64, demands: &[f64]) -> Option<(f64, usize)> {
    let k = demands.len();
    if k == 0 {
        return None;
    }
    let total: f64 = demands.iter().sum();
    if total <= capacity + 1e-9 {
        return None;
    }
    let mut m = 0; // number of satisfied jobs (smallest demands first)
    let mut prefix = 0.0;
    loop {
        // Water level if jobs [..m] are satisfied and the rest deprived.
        let level = (capacity - prefix) / (k - m) as f64;
        if m < k && demands[m] <= level + 1e-9 {
            prefix += demands[m];
            m += 1;
            if m == k {
                // All classified satisfied, yet total > capacity: numeric
                // corner; treat as satisfiable.
                return None;
            }
        } else {
            return Some((level.max(0.0), m));
        }
    }
}

/// Reusable buffers for [`busiest_deprived_interval`]; a warm scratch
/// makes the search allocation-free, which matters because Online-QE runs
/// it on every invocation of every core.
#[derive(Clone, Debug, Default)]
pub(crate) struct BdiScratch {
    /// Distinct releases, ascending.
    rels: Vec<u64>,
    /// Distinct deadlines, ascending.
    dls: Vec<u64>,
    /// Job indices ordered by deadline.
    by_d: Vec<u32>,
    /// Demands of the current candidate group, kept sorted ascending.
    sorted: Vec<f64>,
}

/// Find the busiest deprived interval: the candidate `[a, b)` minimizing
/// the d-mean. Returns `None` when no interval has deprived jobs (all jobs
/// satisfiable at this speed).
///
/// Visits candidates with `a` ascending then `b` ascending and keeps the
/// first minimum — the tie rule the decomposition's determinism rests on.
/// For a fixed `a` the contained group only grows with `b`, so the group's
/// demands are accumulated incrementally (sorted-insert) instead of
/// refiltered per candidate; `d_mean` still sums the sorted demands
/// itself, so its result is bit-identical to the refiltering form.
fn busiest_deprived_interval(
    vjobs: &[VJob],
    units_per_us: f64,
    s: &mut BdiScratch,
) -> Option<(u64, u64, f64)> {
    s.rels.clear();
    s.rels.extend(vjobs.iter().map(|j| j.r));
    s.rels.sort_unstable();
    s.rels.dedup();
    s.dls.clear();
    s.dls.extend(vjobs.iter().map(|j| j.d));
    s.dls.sort_unstable();
    s.dls.dedup();
    s.by_d.clear();
    s.by_d.extend(0..vjobs.len() as u32);
    s.by_d.sort_unstable_by_key(|&i| vjobs[i as usize].d);
    let mut best: Option<(u64, u64, f64)> = None;
    for i in 0..s.rels.len() {
        let a = s.rels[i];
        s.sorted.clear();
        // Running sum of the group's demands, for the skip test below.
        // Its summation order differs from the canonical (sorted) order
        // `d_mean` uses, so it is never compared against the 1e-9 slack
        // directly — only with a margin far wider than its float error.
        let mut running = 0.0f64;
        let mut di = 0usize;
        for &b in &s.dls {
            // Append jobs due exactly at `b`; a surviving job always has
            // `r < d`, so none of them can join a group when `b ≤ a`.
            while di < s.by_d.len() {
                let j = &vjobs[s.by_d[di] as usize];
                if j.d != b {
                    break;
                }
                if j.r >= a && j.d > a {
                    let pos = s.sorted.partition_point(|&x| x < j.w);
                    s.sorted.insert(pos, j.w);
                    running += j.w;
                }
                di += 1;
            }
            if b <= a || s.sorted.is_empty() {
                continue;
            }
            let capacity = (b - a) as f64 * units_per_us;
            // `d_mean` returns `None` (candidate irrelevant) whenever the
            // canonical total ≤ capacity + 1e-9. `running` agrees with
            // the canonical total to within summation error ≪ the 1e-6
            // margin, so skipping here can only skip `None` candidates.
            if running <= capacity - 1e-6 * (1.0 + running) {
                continue;
            }
            if let Some((level, _)) = d_mean(capacity, &s.sorted) {
                match best {
                    Some((_, _, l)) if l <= level => {}
                    _ => best = Some((a, b, level)),
                }
            }
        }
    }
    best
}

/// The busiest-deprived-interval recursion of [`quality_opt`], reduced to
/// what Online-QE's myopic step actually consumes: per-job volumes, no
/// schedule. Exposed as a structure so the §V-D discard loop can *resume*
/// the recursion after removing a job instead of re-running it from
/// scratch.
///
/// Jobs are addressed by their index in the caller's array: `VJob::id`
/// carries the index, and `vols` is indexed by it.
///
/// When `record` is set, the job state at the start of every round is
/// snapshotted. [`Self::resume_without`] then replays the recursion from
/// the round that fixed a removed job's volume. The resume is
/// bit-identical to a from-scratch solve without that job provided the
/// chosen intervals of all earlier rounds survive the removal — which
/// [`Self::can_resume_without`] checks: every earlier chosen endpoint must
/// be anchored by some *other* job alive in that round (a removed job that
/// was the sole holder of a chosen endpoint would have changed the
/// candidate enumeration itself). See DESIGN.md §"Interval reuse and
/// invalidation" for the full contract.
#[derive(Clone, Debug, Default)]
pub(crate) struct VolumeDecomposition {
    /// Surviving jobs, windows compressed through all extracted intervals.
    work: Vec<VJob>,
    /// Round in which each job index had its volume fixed.
    fixed_round: Vec<u32>,
    /// `work` as of the start of each round (only kept when recording).
    snapshots: Vec<Vec<VJob>>,
    /// The `(a, b)` chosen by each completed group round.
    chosen: Vec<(u64, u64)>,
    scratch: BdiScratch,
}

impl VolumeDecomposition {
    /// Run the full decomposition over `vjobs`, writing each job's volume
    /// into `vols[id]`. `vols` must cover every id in `vjobs`.
    pub(crate) fn solve(
        &mut self,
        vjobs: &[VJob],
        units_per_us: f64,
        record: bool,
        vols: &mut [f64],
    ) {
        self.work.clear();
        self.work.extend_from_slice(vjobs);
        self.snapshots.clear();
        self.chosen.clear();
        self.fixed_round.clear();
        self.fixed_round.resize(vols.len(), u32::MAX);
        self.run(0, units_per_us, record, vols);
    }

    /// Whether [`Self::resume_without`] would be bit-identical to a
    /// from-scratch solve over the `alive` jobs after removing job `x`
    /// (the caller has already cleared `alive[x]`): `x` must have a
    /// recorded fixing round, and every earlier round's chosen interval
    /// must keep both endpoints anchored by a still-alive job. Snapshots
    /// of early rounds predate later removals, so dead jobs linger in
    /// them as unfixed participants — they must anchor nothing and be
    /// filtered out on replay.
    pub(crate) fn can_resume_without(&self, x: u32, alive: &[bool]) -> bool {
        let k = self
            .fixed_round
            .get(x as usize)
            .copied()
            .unwrap_or(u32::MAX);
        if (k as usize) >= self.snapshots.len() {
            return false;
        }
        self.chosen[..k as usize]
            .iter()
            .zip(&self.snapshots)
            .all(|(&(a, b), snap)| {
                let mut a_held = false;
                let mut b_held = false;
                for j in snap {
                    if alive[j.id.0 as usize] {
                        a_held |= j.r == a;
                        b_held |= j.d == b;
                    }
                }
                a_held && b_held
            })
    }

    /// Replay the recursion from the round that fixed job `x`, over the
    /// still-`alive` jobs of that round's snapshot. Only valid right
    /// after a solve/resume in which `record` was set and
    /// [`Self::can_resume_without`]`(x, alive)` holds.
    pub(crate) fn resume_without(
        &mut self,
        x: u32,
        alive: &[bool],
        units_per_us: f64,
        vols: &mut [f64],
    ) {
        let k = self.fixed_round[x as usize] as usize;
        debug_assert!(k < self.snapshots.len());
        let snap = std::mem::take(&mut self.snapshots[k]);
        self.work.clear();
        self.work
            .extend(snap.iter().filter(|j| alive[j.id.0 as usize]).copied());
        self.snapshots.truncate(k);
        self.chosen.truncate(k);
        self.run(k as u32, units_per_us, true, vols);
    }

    fn run(&mut self, first_round: u32, units_per_us: f64, record: bool, vols: &mut [f64]) {
        let mut round = first_round;
        loop {
            if self.work.is_empty() {
                break;
            }
            if record {
                self.snapshots.push(self.work.clone());
            }
            match busiest_deprived_interval(&self.work, units_per_us, &mut self.scratch) {
                None => {
                    // Everything remaining is satisfiable in full.
                    for j in &self.work {
                        vols[j.id.0 as usize] = j.w;
                        self.fixed_round[j.id.0 as usize] = round;
                    }
                    break;
                }
                Some((a, b, level)) => {
                    self.chosen.push((a, b));
                    // In-place, order-preserving partition: fix the
                    // contained group's volumes, compress the rest.
                    let mut keep = 0;
                    for i in 0..self.work.len() {
                        let j = self.work[i];
                        if j.r >= a && j.d <= b {
                            let idx = j.id.0 as usize;
                            vols[idx] = if j.w <= level + 1e-9 { j.w } else { level };
                            self.fixed_round[idx] = round;
                        } else {
                            self.work[keep] = VJob {
                                r: compress_point(j.r, a, b),
                                d: compress_point(j.d, a, b),
                                ..j
                            };
                            keep += 1;
                        }
                    }
                    self.work.truncate(keep);
                    round += 1;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qes_core::job::Job;
    use qes_core::power::PolynomialPower;
    use qes_core::quality::{ExpQuality, QualityFunction};
    use qes_core::schedule::Schedule;

    fn ms(x: u64) -> SimTime {
        SimTime::from_millis(x)
    }

    fn js(jobs: Vec<Job>) -> JobSet {
        JobSet::new(jobs).unwrap()
    }

    // ---- d-mean fixed point ----

    #[test]
    fn d_mean_all_satisfiable() {
        assert_eq!(d_mean(100.0, &[10.0, 20.0, 30.0]), None);
        assert_eq!(d_mean(60.0, &[10.0, 20.0, 30.0]), None); // exactly fits
        assert_eq!(d_mean(10.0, &[]), None);
    }

    #[test]
    fn d_mean_all_deprived() {
        // Capacity 30 across three jobs of 20 each: level 10 < 20.
        let (level, sat) = d_mean(30.0, &[20.0, 20.0, 20.0]).unwrap();
        assert!((level - 10.0).abs() < 1e-9);
        assert_eq!(sat, 0);
    }

    #[test]
    fn d_mean_mixed_classification() {
        // Jobs 5, 20, 20; capacity 35. Satisfy 5 → level (35−5)/2 = 15 < 20.
        let (level, sat) = d_mean(35.0, &[5.0, 20.0, 20.0]).unwrap();
        assert!((level - 15.0).abs() < 1e-9);
        assert_eq!(sat, 1);
    }

    #[test]
    fn d_mean_iterates_to_fixed_point() {
        // Jobs 2, 4, 100; capacity 12. Round 1: level 4 → satisfy 2 and 4.
        // Final: level (12−6)/1 = 6 < 100.
        let (level, sat) = d_mean(12.0, &[2.0, 4.0, 100.0]).unwrap();
        assert!((level - 6.0).abs() < 1e-9);
        assert_eq!(sat, 2);
    }

    #[test]
    fn d_mean_level_below_every_deprived_demand() {
        let demands = [3.0, 7.0, 11.0, 13.0, 40.0];
        for cap in [5.0, 15.0, 30.0, 50.0, 70.0] {
            if let Some((level, sat)) = d_mean(cap, &demands) {
                for (i, &w) in demands.iter().enumerate() {
                    if i < sat {
                        assert!(w <= level + 1e-6);
                    } else {
                        assert!(w > level - 1e-6);
                    }
                }
                // Conservation: satisfied + deprived volumes = capacity.
                let used: f64 =
                    demands[..sat].iter().sum::<f64>() + level * (demands.len() - sat) as f64;
                assert!((used - cap).abs() < 1e-6, "cap {cap}: used {used}");
            }
        }
    }

    // ---- quality_opt ----

    #[test]
    fn underload_satisfies_everything() {
        // 2 GHz, light jobs: all fully processed.
        let jobs = js(vec![
            Job::new(0, ms(0), ms(150), 100.0).unwrap(),
            Job::new(1, ms(30), ms(180), 120.0).unwrap(),
        ]);
        let r = quality_opt(&jobs, 2.0);
        assert!((r.volume(JobId(0)) - 100.0).abs() < 1e-9);
        assert!((r.volume(JobId(1)) - 120.0).abs() < 1e-9);
        // Realized schedule matches the promised volumes.
        let vols = r.schedule.volumes();
        assert!((vols[&JobId(0)] - 100.0).abs() < 0.01);
        assert!((vols[&JobId(1)] - 120.0).abs() < 0.01);
    }

    #[test]
    fn overload_equalizes_deprived_volumes() {
        // 1 GHz core, two identical overlapping jobs that cannot both
        // finish: each should get the same volume (concavity).
        let jobs = js(vec![
            Job::new(0, ms(0), ms(100), 100.0).unwrap(),
            Job::new(1, ms(0), ms(100), 100.0).unwrap(),
        ]);
        let r = quality_opt(&jobs, 1.0);
        // Capacity 100 units split evenly.
        assert!((r.volume(JobId(0)) - 50.0).abs() < 1e-6);
        assert!((r.volume(JobId(1)) - 50.0).abs() < 1e-6);
    }

    #[test]
    fn short_job_satisfied_long_job_deprived() {
        let jobs = js(vec![
            Job::new(0, ms(0), ms(100), 10.0).unwrap(),
            Job::new(1, ms(0), ms(100), 500.0).unwrap(),
        ]);
        let r = quality_opt(&jobs, 1.0); // capacity 100 units
        assert!((r.volume(JobId(0)) - 10.0).abs() < 1e-6);
        assert!((r.volume(JobId(1)) - 90.0).abs() < 1e-6);
    }

    #[test]
    fn equal_split_beats_unequal_for_concave_quality() {
        // The optimality intuition itself: for the paper's quality function,
        // the d-mean split earns more quality than finishing one job fully.
        let q = ExpQuality::PAPER_DEFAULT;
        let even = 2.0 * q.value(50.0);
        let uneven = q.value(100.0) + q.value(0.0);
        assert!(even > uneven);
    }

    #[test]
    fn schedule_is_feasible_and_consistent() {
        let jobs = js(vec![
            Job::new(0, ms(0), ms(120), 150.0).unwrap(),
            Job::new(1, ms(10), ms(160), 90.0).unwrap(),
            Job::new(2, ms(40), ms(190), 300.0).unwrap(),
            Job::new(3, ms(80), ms(230), 60.0).unwrap(),
        ]);
        let speed = 1.5;
        let r = quality_opt(&jobs, speed);
        let m = PolynomialPower::PAPER_SIM;
        Schedule::single(r.schedule.clone())
            .validate_with_tolerance(&jobs, &m, f64::INFINITY, 0.05, 1e-6)
            .unwrap();
        // Every slice runs at the fixed speed.
        for s in r.schedule.slices() {
            assert!((s.speed - speed).abs() < 1e-12);
        }
        // Realized volumes match promised volumes.
        let realized = r.schedule.volumes();
        for (id, &v) in &r.volumes {
            let got = realized.get(id).copied().unwrap_or(0.0);
            assert!((got - v).abs() < 0.05, "{id:?}: promised {v}, got {got}");
        }
    }

    #[test]
    fn volumes_never_exceed_demand_or_capacity() {
        let jobs = js(vec![
            Job::new(0, ms(0), ms(60), 500.0).unwrap(),
            Job::new(1, ms(5), ms(65), 20.0).unwrap(),
            Job::new(2, ms(10), ms(70), 400.0).unwrap(),
        ]);
        let r = quality_opt(&jobs, 1.0);
        let mut total = 0.0;
        for j in jobs.iter() {
            let v = r.volume(j.id);
            assert!(v <= j.demand + 1e-9);
            assert!(v >= 0.0);
            total += v;
        }
        // Total work ≤ capacity of the whole span (70 ms at 1 GHz).
        assert!(total <= 70.0 + 1e-6);
    }

    #[test]
    fn zero_speed_yields_nothing() {
        let jobs = js(vec![Job::new(0, ms(0), ms(100), 50.0).unwrap()]);
        let r = quality_opt(&jobs, 0.0);
        assert_eq!(r.volume(JobId(0)), 0.0);
        assert!(r.schedule.is_empty());
    }

    #[test]
    fn higher_speed_never_lowers_quality() {
        let jobs = js(vec![
            Job::new(0, ms(0), ms(100), 200.0).unwrap(),
            Job::new(1, ms(20), ms(120), 150.0).unwrap(),
            Job::new(2, ms(50), ms(150), 250.0).unwrap(),
        ]);
        let q = ExpQuality::PAPER_DEFAULT;
        let mut prev = -1.0;
        for &s in &[0.5, 1.0, 1.5, 2.0, 3.0] {
            let r = quality_opt(&jobs, s);
            let total: f64 = jobs.iter().map(|j| q.job_quality(j, r.volume(j.id))).sum();
            assert!(total >= prev - 1e-9, "quality dropped at speed {s}");
            prev = total;
        }
    }

    #[test]
    fn staggered_overload_respects_windows() {
        // Later jobs can't borrow capacity from before their release.
        let jobs = js(vec![
            Job::new(0, ms(0), ms(50), 100.0).unwrap(),
            Job::new(1, ms(40), ms(90), 100.0).unwrap(),
        ]);
        let r = quality_opt(&jobs, 1.0);
        let m = PolynomialPower::PAPER_SIM;
        Schedule::single(r.schedule.clone())
            .validate_with_tolerance(&jobs, &m, f64::INFINITY, 0.05, 1e-6)
            .unwrap();
        // Both deprived; totals bounded by the 90 ms span capacity.
        let tot = r.volume(JobId(0)) + r.volume(JobId(1));
        assert!(tot <= 90.0 + 1e-6);
        assert!(tot > 80.0, "should use nearly all capacity, got {tot}");
    }
}
