//! **QE-OPT** — offline optimal for ⟨quality, energy⟩ (paper §III-A).
//!
//! QE-OPT amalgamates Quality-OPT and Energy-OPT:
//!
//! 1. run Quality-OPT at the maximum core speed the power budget allows,
//!    `s* = (H/a)^{1/β}` — this fixes each job's processed volume `p_j`
//!    and guarantees the maximum achievable total quality;
//! 2. trim every job's demand to its volume (`w_j ← p_j`) and run
//!    Energy-OPT on the trimmed set — this picks the slowest feasible
//!    speeds, minimizing energy without giving up any quality.
//!
//! Paper Theorem 1 shows step 2 never needs a speed above `s*` (critical
//! speeds of the trimmed set are bounded by the fixed speed that produced
//! it), so the budget is respected; Theorem 2 shows the combination is
//! optimal under the lexicographic metric.

use std::collections::HashMap;

use qes_core::job::{Job, JobId, JobSet};
use qes_core::power::PowerModel;
use qes_core::schedule::CoreSchedule;

use crate::energy_opt::energy_opt;
use crate::quality_opt::quality_opt;

/// Output of [`qe_opt`].
#[derive(Clone, Debug)]
pub struct QeOptResult {
    /// Variable-speed schedule realizing the optimal volumes with minimum
    /// energy.
    pub schedule: CoreSchedule,
    /// Optimal processed volume per job (from Quality-OPT at `s*`).
    pub volumes: HashMap<JobId, f64>,
    /// The maximum speed `s*` implied by the budget.
    pub max_speed: f64,
}

impl QeOptResult {
    /// Processed volume for `id` (0 if never scheduled).
    pub fn volume(&self, id: JobId) -> f64 {
        self.volumes.get(&id).copied().unwrap_or(0.0)
    }
}

/// Run QE-OPT on `jobs` with dynamic power budget `budget` (W) under
/// `model`.
pub fn qe_opt(jobs: &JobSet, model: &dyn PowerModel, budget: f64) -> QeOptResult {
    let s_max = model.speed_for_dynamic_power(budget);
    if s_max <= 0.0 {
        return QeOptResult {
            schedule: CoreSchedule::default(),
            volumes: jobs.iter().map(|j| (j.id, 0.0)).collect(),
            max_speed: 0.0,
        };
    }
    // Step 1: volumes from Quality-OPT at the maximum speed.
    let q = quality_opt(jobs, s_max);
    // Step 2: Energy-OPT on the volume-trimmed job set.
    let trimmed: Vec<Job> = jobs
        .iter()
        .filter_map(|j| {
            let p = q.volume(j.id);
            (p > 0.0).then_some(Job { demand: p, ..*j })
        })
        .collect();
    let e = energy_opt(&JobSet::new_unchecked(trimmed));
    debug_assert!(
        e.initial_speed() <= s_max + 1e-6,
        "Theorem 1 violated: critical speed {} > s* {}",
        e.initial_speed(),
        s_max
    );
    QeOptResult {
        schedule: e.schedule,
        volumes: q.volumes,
        max_speed: s_max,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qes_core::power::PolynomialPower;
    use qes_core::quality::{ExpQuality, QualityFunction};
    use qes_core::schedule::Schedule;
    use qes_core::time::SimTime;

    fn ms(x: u64) -> SimTime {
        SimTime::from_millis(x)
    }

    fn js(jobs: Vec<Job>) -> JobSet {
        JobSet::new(jobs).unwrap()
    }

    const MODEL: PolynomialPower = PolynomialPower::PAPER_SIM;

    #[test]
    fn max_speed_from_budget() {
        let jobs = js(vec![Job::new(0, ms(0), ms(100), 50.0).unwrap()]);
        let r = qe_opt(&jobs, &MODEL, 20.0);
        assert!((r.max_speed - 2.0).abs() < 1e-9); // sqrt(20/5)
    }

    #[test]
    fn schedule_respects_budget_and_windows() {
        let jobs = js(vec![
            Job::new(0, ms(0), ms(150), 200.0).unwrap(),
            Job::new(1, ms(10), ms(160), 150.0).unwrap(),
            Job::new(2, ms(30), ms(180), 300.0).unwrap(),
        ]);
        let budget = 20.0;
        let r = qe_opt(&jobs, &MODEL, budget);
        Schedule::single(r.schedule.clone())
            .validate_with_tolerance(&jobs, &MODEL, budget, 0.05, 1e-6)
            .unwrap();
    }

    #[test]
    fn underload_satisfies_all_with_less_energy_than_full_speed() {
        let jobs = js(vec![
            Job::new(0, ms(0), ms(150), 100.0).unwrap(),
            Job::new(1, ms(50), ms(200), 80.0).unwrap(),
        ]);
        let budget = 20.0; // s* = 2 GHz, plenty
        let r = qe_opt(&jobs, &MODEL, budget);
        assert!((r.volume(JobId(0)) - 100.0).abs() < 1e-6);
        assert!((r.volume(JobId(1)) - 80.0).abs() < 1e-6);
        // Energy must beat "run at s* whenever busy".
        let e_opt = r.schedule.energy(&MODEL);
        let secs_at_full = (100.0 + 80.0) / (2.0 * 1000.0);
        let e_full = MODEL.dynamic_power(2.0) * secs_at_full;
        assert!(e_opt < e_full, "{e_opt} !< {e_full}");
    }

    #[test]
    fn quality_matches_quality_opt_at_max_speed() {
        // QE-OPT's quality must equal Quality-OPT's at s* — step 2 only
        // reshapes speeds (Theorem 2).
        let jobs = js(vec![
            Job::new(0, ms(0), ms(100), 300.0).unwrap(),
            Job::new(1, ms(10), ms(110), 250.0).unwrap(),
            Job::new(2, ms(20), ms(120), 200.0).unwrap(),
        ]);
        let budget = 20.0;
        let q = ExpQuality::PAPER_DEFAULT;
        let r = qe_opt(&jobs, &MODEL, budget);
        let qo = quality_opt(&jobs, 2.0);
        let quality_qe: f64 = jobs.iter().map(|j| q.job_quality(j, r.volume(j.id))).sum();
        let quality_qo: f64 = jobs.iter().map(|j| q.job_quality(j, qo.volume(j.id))).sum();
        assert!((quality_qe - quality_qo).abs() < 1e-9);
        // And the realized schedule delivers those volumes.
        let realized = r.schedule.volumes();
        for (id, &v) in &r.volumes {
            if v > 0.0 {
                let got = realized.get(id).copied().unwrap_or(0.0);
                assert!((got - v).abs() < 0.05, "{id:?}");
            }
        }
    }

    #[test]
    fn zero_budget_schedules_nothing() {
        let jobs = js(vec![Job::new(0, ms(0), ms(100), 50.0).unwrap()]);
        let r = qe_opt(&jobs, &MODEL, 0.0);
        assert!(r.schedule.is_empty());
        assert_eq!(r.volume(JobId(0)), 0.0);
    }

    #[test]
    fn more_budget_never_reduces_quality() {
        let jobs = js(vec![
            Job::new(0, ms(0), ms(80), 250.0).unwrap(),
            Job::new(1, ms(10), ms(90), 250.0).unwrap(),
            Job::new(2, ms(20), ms(100), 250.0).unwrap(),
        ]);
        let q = ExpQuality::PAPER_DEFAULT;
        let mut prev = -1.0;
        for &h in &[5.0, 10.0, 20.0, 40.0, 80.0] {
            let r = qe_opt(&jobs, &MODEL, h);
            let total: f64 = jobs.iter().map(|j| q.job_quality(j, r.volume(j.id))).sum();
            assert!(total >= prev - 1e-9, "quality dropped at H={h}");
            prev = total;
        }
    }

    #[test]
    fn energy_grows_with_satisfied_volume_under_overload() {
        // Under overload the whole budget window is in use; energy should
        // track the amount of work completed, never exceed budget·time.
        let jobs = js(vec![
            Job::new(0, ms(0), ms(100), 400.0).unwrap(),
            Job::new(1, ms(0), ms(100), 400.0).unwrap(),
        ]);
        let budget = 20.0;
        let r = qe_opt(&jobs, &MODEL, budget);
        let e = r.schedule.energy(&MODEL);
        assert!(e <= budget * 0.1 + 1e-9); // 100 ms window
                                           // Overloaded: energy should be the full budget over the window.
        assert!(e > budget * 0.1 * 0.99, "expected saturation, got {e}");
    }
}
