//! **Online-QE** — myopic optimal online scheduling (paper §III-B).
//!
//! Online-QE recomputes a QE-OPT schedule over the *currently ready* jobs
//! whenever a triggering event fires. The subtlety is work already
//! performed: a job with processed volume `p̄` must have that sunk work
//! accounted for when Quality-OPT equalizes volumes. The paper's trick is
//! to rewind the job's release time to `t − p̄/s*` before step 1 — giving
//! the job phantom capacity exactly equal to its sunk work — and then,
//! after step 1 fixes the total volume `p`, trim the demand to the
//! *remainder* `p − p̄` and re-release at `t` for the Energy-OPT step. The
//! emitted schedule therefore lives entirely in the future.
//!
//! The paper rewinds only the one currently running job; we generalize the
//! same rewind to every ready job with prior progress, since under grouped
//! scheduling (§IV-E) a previously deprived job can remain ready with
//! partial progress. With a single in-progress job this reduces exactly to
//! the paper's construction. The feasibility argument survives: for any
//! deadline `d`, Quality-OPT bounds the allocated volume of jobs due by
//! `d` to the capacity of `[min adjusted release, d]`, which exceeds the
//! true future capacity by at most `max_j p̄_j / s*` — less than the total
//! sunk volume — so remaining demands always fit after `t`.
//!
//! Non-partial jobs (§V-D): if the myopic plan cannot complete such a job
//! in full, it is discarded and the plan recomputed without it, iterating
//! until stable.
//!
//! Each invocation may use a different power budget — required when DES's
//! water-filling hands each core a new power share (§IV-C).

use std::collections::HashMap;

use qes_core::job::{Job, JobId, JobSet};
use qes_core::power::PowerModel;
use qes_core::schedule::{CoreSchedule, Slice};
use qes_core::time::SimTime;

use crate::energy_opt::energy_opt;
use crate::quality_opt::VolumeDecomposition;
use crate::timeline::VJob;

/// A job visible to the scheduler at invocation time, with its progress.
#[derive(Clone, Copy, Debug)]
pub struct ReadyJob {
    /// The job (original release, deadline, full demand).
    pub job: Job,
    /// Volume already processed before this invocation.
    pub processed: f64,
}

impl ReadyJob {
    /// A job with no prior progress.
    pub fn fresh(job: Job) -> Self {
        ReadyJob {
            job,
            processed: 0.0,
        }
    }

    /// Remaining demand.
    pub fn remaining(&self) -> f64 {
        (self.job.demand - self.processed).max(0.0)
    }
}

/// Output of one [`online_qe`] invocation.
#[derive(Clone, Debug)]
pub struct OnlineQeOutcome {
    /// Slices from `now` onward realizing the myopic plan.
    pub schedule: CoreSchedule,
    /// Planned *total* volume per job (sunk + future), one entry per
    /// ready job in the caller's order.
    pub planned_total: Vec<(JobId, f64)>,
    /// Non-partial jobs discarded because the plan cannot finish them.
    pub discarded: Vec<JobId>,
    /// The maximum speed `s*` implied by this invocation's budget.
    pub max_speed: f64,
}

impl OnlineQeOutcome {
    /// Planned total volume for `id` (its sunk volume if no future work).
    pub fn planned(&self, id: JobId) -> f64 {
        self.planned_total
            .iter()
            .find(|(i, _)| *i == id)
            .map(|&(_, v)| v)
            .unwrap_or(0.0)
    }
}

/// How the budget-bounded step realizes the myopic volumes in time.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum OnlineMode {
    /// The §III-B construction: Energy-OPT reshapes the remainders to the
    /// slowest feasible speeds. Myopically optimal for ⟨quality, energy⟩
    /// — the right choice when no further arrivals will contend (light
    /// load, or a closed job set).
    #[default]
    Efficient,
    /// Spend the whole grant now: run the remainders EDF at `s_max`.
    /// Under sustained overload the stretched slack of `Efficient` is
    /// immediately re-consumed by new arrivals, losing quality for an
    /// energy saving the lexicographic metric does not want; DES uses
    /// this mode whenever water-filling is engaged, which reproduces the
    /// paper's measured behaviour (C-DVFS quality ≥ S-DVFS at all loads,
    /// equal energy under overload — Fig. 3).
    Eager,
}

/// Run one Online-QE invocation at time `now` over `ready` jobs with
/// dynamic power budget `budget` (W), in [`OnlineMode::Efficient`] mode.
///
/// Jobs whose deadline is not after `now`, or that are already complete,
/// are ignored (their `planned_total` reports the sunk volume).
pub fn online_qe(
    now: SimTime,
    ready: &[ReadyJob],
    model: &dyn PowerModel,
    budget: f64,
) -> OnlineQeOutcome {
    online_qe_with_mode(now, ready, model, budget, OnlineMode::Efficient)
}

/// [`online_qe`] with an explicit realization mode.
pub fn online_qe_with_mode(
    now: SimTime,
    ready: &[ReadyJob],
    model: &dyn PowerModel,
    budget: f64,
    mode: OnlineMode,
) -> OnlineQeOutcome {
    QeSolver::default().solve(now, ready, model, budget, mode)
}

/// Reusable Online-QE solver state: scratch buffers plus the most recent
/// volume decomposition (resumed by the §V-D discard loop).
///
/// Every solve is bitwise independent of prior solves — the buffers only
/// amortize allocations — so callers may share one solver across cores,
/// invocations, and [`crate::online_qe::OnlineMode`]s without affecting
/// results. DES keeps one per core (warm across invocations) plus one
/// shared instance for its full-recompute reference modes.
#[derive(Clone, Debug, Default)]
pub struct QeSolver {
    active: Vec<ReadyJob>,
    alive: Vec<bool>,
    /// Rewound (possibly negative) f64 µs release per active job; fixed
    /// for the whole invocation since `now`, `processed`, and `s_max`
    /// don't change across discard rounds.
    adj: Vec<f64>,
    vjobs: Vec<VJob>,
    vols: Vec<f64>,
    decomp: VolumeDecomposition,
    trimmed: Vec<Job>,
}

impl QeSolver {
    /// Run one Online-QE invocation. See [`online_qe_with_mode`].
    pub fn solve(
        &mut self,
        now: SimTime,
        ready: &[ReadyJob],
        model: &dyn PowerModel,
        budget: f64,
        mode: OnlineMode,
    ) -> OnlineQeOutcome {
        let mut planned_total: Vec<(JobId, f64)> = ready
            .iter()
            .map(|r| (r.job.id, r.processed.min(r.job.demand)))
            .collect();
        let s_max = model.speed_for_dynamic_power(budget);
        if s_max <= 0.0 {
            return OnlineQeOutcome {
                schedule: CoreSchedule::default(),
                planned_total,
                discarded: vec![],
                max_speed: 0.0,
            };
        }

        self.active.clear();
        self.active.extend(
            ready
                .iter()
                .filter(|r| r.job.deadline > now && r.remaining() > 1e-9)
                .copied(),
        );
        // Canonical order. The caller's slice order is arbitrary (the
        // engine's per-core lists are permuted by `swap_remove`), and the
        // float summations downstream are order-sensitive; sorting makes
        // the outcome a function of the job *set* — the invariant DES's
        // incremental cache keys on (and `prop_order_insensitive` checks).
        self.active
            .sort_unstable_by_key(|r| (r.job.deadline, r.job.id));
        let n = self.active.len();
        let mut discarded = Vec::new();

        let us_per_unit = 1000.0 / s_max;
        let units_per_us = s_max / 1000.0;
        let now_f = now.as_micros() as f64;
        self.alive.clear();
        self.alive.resize(n, true);
        self.adj.clear();
        self.adj.extend(
            self.active
                .iter()
                .map(|r| now_f - r.processed * us_per_unit),
        );
        self.vols.clear();
        self.vols.resize(n, 0.0);

        if n > 0 {
            // Step 1: the myopic volumes, then the §V-D discard loop for
            // non-partial jobs. Snapshots are recorded only when a
            // discard can actually happen.
            let record = self.active.iter().any(|r| !r.job.partial);
            let mut shift_us = rewound_vjobs(&self.active, &self.alive, &self.adj, &mut self.vjobs);
            self.decomp
                .solve(&self.vjobs, units_per_us, record, &mut self.vols);
            loop {
                // Discard at most one unfinishable non-partial job per
                // round (the one with the largest shortfall), then
                // recompute: discarding frees capacity that may rescue
                // the others.
                let worst = self
                    .active
                    .iter()
                    .enumerate()
                    .filter(|&(i, r)| {
                        self.alive[i] && !r.job.partial && r.job.demand - self.vols[i] > 1e-6
                    })
                    .map(|(i, r)| (i, r.job.demand - self.vols[i]))
                    .max_by(|a, b| a.1.total_cmp(&b.1));
                let Some((x, _)) = worst else { break };
                discarded.push(self.active[x].job.id);
                self.alive[x] = false;
                self.vols[x] = 0.0;
                // Removing a job can change the rewind shift (if it held
                // the minimum adjusted release) and thereby every other
                // job's rounded virtual window — the virtual geometry
                // moves, so the recorded decomposition is useless. Resume
                // only when the shift is unchanged *and* the earlier
                // rounds' chosen intervals survive the removal; otherwise
                // rebuild and re-solve from scratch (the invalidation
                // contract — DESIGN.md §"Interval reuse").
                let new_shift = rewind_shift_us(&self.alive, &self.adj);
                if new_shift == shift_us && self.decomp.can_resume_without(x as u32, &self.alive) {
                    self.decomp
                        .resume_without(x as u32, &self.alive, units_per_us, &mut self.vols);
                } else {
                    shift_us = rewound_vjobs(&self.active, &self.alive, &self.adj, &mut self.vjobs);
                    self.decomp
                        .solve(&self.vjobs, units_per_us, true, &mut self.vols);
                }
                #[cfg(debug_assertions)]
                {
                    // The resume contract, enforced: identical bits to a
                    // from-scratch solve over the surviving jobs.
                    let mut ref_vjobs = Vec::new();
                    let mut ref_vols = vec![0.0; n];
                    rewound_vjobs(&self.active, &self.alive, &self.adj, &mut ref_vjobs);
                    let mut ref_decomp = VolumeDecomposition::default();
                    ref_decomp.solve(&ref_vjobs, units_per_us, false, &mut ref_vols);
                    for (i, (v, rv)) in self.vols.iter().zip(&ref_vols).enumerate() {
                        debug_assert!(
                            !self.alive[i] || v.to_bits() == rv.to_bits(),
                            "discard resume diverged from a full re-solve at job {i}"
                        );
                    }
                }
            }
        }

        // Trim to the future remainder and re-release at `now`. The myopic
        // volumes are feasible at `s_max` up to µs rounding of the rewound
        // releases; clamp the remainders to *exact* EDF feasibility at
        // `s_max` so the Energy-OPT step can never exceed the budget.
        // `active` is (deadline, id)-sorted and the filter preserves
        // order, so `trimmed` is already in EDF order.
        self.trimmed.clear();
        for i in 0..n {
            if !self.alive[i] {
                continue;
            }
            let r = &self.active[i];
            let future = self.vols[i] - r.processed;
            if future > 1e-9 {
                self.trimmed.push(Job {
                    release: now,
                    demand: future,
                    ..r.job
                });
            }
        }
        let mut cum = 0.0;
        for j in &mut self.trimmed {
            let cap = j.deadline.saturating_since(now).as_micros() as f64 * units_per_us;
            let excess = (cum + j.demand - cap).max(0.0);
            j.demand = (j.demand - excess).max(0.0);
            cum += j.demand;
        }
        self.trimmed.retain(|j| j.demand > 1e-9);
        let schedule = match mode {
            OnlineMode::Efficient => {
                let e = energy_opt(&JobSet::new_unchecked(self.trimmed.clone()));
                debug_assert!(
                    e.initial_speed() <= s_max + 1e-3,
                    "budget violated by Online-QE: {} > {}",
                    e.initial_speed(),
                    s_max
                );
                e.schedule
            }
            OnlineMode::Eager => {
                // Run the remainders back-to-back at `s_max` (EDF order —
                // the sort above). The grant is fully spent on quality
                // now; the slack Energy-OPT would have created is
                // worthless under sustained arrivals, which is exactly
                // when the budget binds.
                let mut slices = Vec::with_capacity(self.trimmed.len());
                let mut cur = now.as_micros() as f64;
                for j in &self.trimmed {
                    let start = cur;
                    let dl = j.deadline.as_micros();
                    // The trim loop caps every EDF prefix at its deadline
                    // capacity, so the unclamped end can overshoot `dl`
                    // only by float rounding — but the cursor must still
                    // advance from the *clamped* end, or the clamped
                    // volume is silently dropped and dead time opens up
                    // before the next slice.
                    let end = (start + j.demand * us_per_unit).min(dl as f64);
                    cur = end;
                    let si = SimTime::from_micros(start.round() as u64);
                    let ei = SimTime::from_micros((end.round() as u64).min(dl));
                    if ei > si {
                        slices.push(Slice {
                            job: j.id,
                            start: si,
                            end: ei,
                            speed: s_max,
                        });
                    }
                }
                let schedule = CoreSchedule::new(slices);
                #[cfg(debug_assertions)]
                {
                    let planned: f64 = self.trimmed.iter().map(|j| j.demand).sum();
                    let realized: f64 = schedule.slices().iter().map(|s| s.volume()).sum();
                    // Each slice boundary moves ≤ 0.5 µs when rounded.
                    let tol = (self.trimmed.len() as f64 + 1.0) * units_per_us + 1e-6;
                    debug_assert!(
                        (planned - realized).abs() <= tol,
                        "Eager dropped volume: planned {planned}, realized {realized}"
                    );
                }
                schedule
            }
        };
        // Planned totals: sunk work plus what the schedule will run.
        for s in schedule.slices() {
            if let Some(t) = planned_total.iter_mut().find(|(id, _)| *id == s.job) {
                t.1 += s.volume();
            }
        }
        OnlineQeOutcome {
            schedule,
            planned_total,
            discarded,
            max_speed: s_max,
        }
    }
}

/// The integral µs shift making every *alive* rewound release land ≥ 0.
fn rewind_shift_us(alive: &[bool], adj: &[f64]) -> u64 {
    let min_adj = adj
        .iter()
        .zip(alive)
        .filter(|&(_, &a)| a)
        .map(|(&x, _)| x)
        .fold(f64::INFINITY, f64::min);
    (-min_adj).max(0.0).ceil() as u64
}

/// Build the rewound virtual jobs over the alive subset of `active`,
/// shifting releases *and* deadlines by the same integral µs amount
/// ([`rewind_shift_us`]) so a fractional rewind cannot skew any job's
/// window length. `VJob::id` carries the job's index in `active`. Returns
/// the shift applied.
fn rewound_vjobs(active: &[ReadyJob], alive: &[bool], adj: &[f64], out: &mut Vec<VJob>) -> u64 {
    let shift_us = rewind_shift_us(alive, adj);
    let shift = shift_us as f64;
    out.clear();
    for (i, r) in active.iter().enumerate() {
        if !alive[i] || r.job.demand <= 0.0 {
            continue;
        }
        out.push(VJob {
            id: JobId(i as u32),
            r: (adj[i] + shift).round() as u64,
            d: r.job.deadline.as_micros() + shift_us,
            w: r.job.demand,
        });
    }
    shift_us
}

/// Step 1 of Online-QE: Quality-OPT at `s_max` over the ready jobs with
/// rewound releases; returns planned *total* volumes (sunk + future).
///
/// Public because the No-DVFS / S-DVFS architecture models (§V-A) reuse
/// exactly this quality step at a fixed speed, skipping the Energy-OPT
/// step.
pub fn myopic_volumes(now: SimTime, active: &[ReadyJob], s_max: f64) -> HashMap<JobId, f64> {
    let us_per_unit = 1000.0 / s_max;
    let now_f = now.as_micros() as f64;
    let adj: Vec<f64> = active
        .iter()
        .map(|r| now_f - r.processed * us_per_unit)
        .collect();
    let alive = vec![true; active.len()];
    let mut vjobs = Vec::new();
    rewound_vjobs(active, &alive, &adj, &mut vjobs);
    let mut vols = vec![0.0; active.len()];
    let mut decomp = VolumeDecomposition::default();
    decomp.solve(&vjobs, s_max / 1000.0, false, &mut vols);
    active
        .iter()
        .zip(&vols)
        .map(|(r, &v)| (r.job.id, v))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use qes_core::power::PolynomialPower;
    use qes_core::schedule::Schedule;

    const MODEL: PolynomialPower = PolynomialPower::PAPER_SIM;

    fn ms(x: u64) -> SimTime {
        SimTime::from_millis(x)
    }

    fn rj(id: u32, r: u64, d: u64, w: f64, done: f64) -> ReadyJob {
        ReadyJob {
            job: Job::new(id, ms(r), ms(d), w).unwrap(),
            processed: done,
        }
    }

    #[test]
    fn fresh_invocation_matches_qe_opt() {
        // With no progress and all jobs ready now, Online-QE = QE-OPT.
        let ready = vec![rj(0, 0, 150, 200.0, 0.0), rj(1, 0, 160, 150.0, 0.0)];
        let out = online_qe(ms(0), &ready, &MODEL, 20.0);
        let jobs = JobSet::new(ready.iter().map(|r| r.job).collect()).unwrap();
        let qe = crate::qe_opt::qe_opt(&jobs, &MODEL, 20.0);
        for r in &ready {
            assert!(
                (out.planned(r.job.id) - qe.volume(r.job.id)).abs() < 0.05,
                "{:?}",
                r.job.id
            );
        }
    }

    #[test]
    fn schedule_lives_in_the_future() {
        let now = ms(50);
        let ready = vec![rj(0, 0, 150, 200.0, 60.0), rj(1, 40, 190, 100.0, 0.0)];
        let out = online_qe(now, &ready, &MODEL, 20.0);
        for s in out.schedule.slices() {
            assert!(s.start >= now, "slice starts in the past: {:?}", s);
        }
    }

    #[test]
    fn sunk_work_counts_toward_equalization() {
        // Two identical overloaded jobs, one with half its work already
        // done: the plan should spend remaining capacity on the other job
        // first (equalizing totals), not split evenly.
        let now = ms(0);
        let ready = vec![
            rj(0, 0, 100, 200.0, 80.0), // 80 units sunk
            rj(1, 0, 100, 200.0, 0.0),
        ];
        // Budget 5 W → s* = 1 GHz → 100 units of future capacity.
        let out = online_qe(now, &ready, &MODEL, 5.0);
        let t0 = out.planned(JobId(0));
        let t1 = out.planned(JobId(1));
        // Totals should equalize: 80 sunk + 100 future = 180 → 90 each.
        assert!((t0 - 90.0).abs() < 1.0, "t0 = {t0}");
        assert!((t1 - 90.0).abs() < 1.0, "t1 = {t1}");
        // Future work: 10 for job 0, 90 for job 1.
        let vols = out.schedule.volumes();
        assert!((vols.get(&JobId(1)).copied().unwrap_or(0.0) - 90.0).abs() < 1.0);
    }

    #[test]
    fn planned_never_below_sunk() {
        let now = ms(80);
        let ready = vec![rj(0, 0, 100, 500.0, 450.0), rj(1, 0, 100, 500.0, 0.0)];
        let out = online_qe(now, &ready, &MODEL, 5.0);
        assert!(out.planned(JobId(0)) >= 450.0 - 1e-6);
    }

    #[test]
    fn respects_budget_and_windows() {
        let now = ms(30);
        let ready = vec![
            rj(0, 0, 150, 250.0, 40.0),
            rj(1, 10, 160, 200.0, 0.0),
            rj(2, 25, 175, 300.0, 0.0),
        ];
        let budget = 20.0;
        let out = online_qe(now, &ready, &MODEL, budget);
        let jobs = JobSet::new(ready.iter().map(|r| r.job).collect()).unwrap();
        Schedule::single(out.schedule.clone())
            .validate_with_tolerance(&jobs, &MODEL, budget, 0.05, 1e-6)
            .unwrap();
        // Future volume per job never exceeds remaining demand.
        let vols = out.schedule.volumes();
        for r in &ready {
            let v = vols.get(&r.job.id).copied().unwrap_or(0.0);
            assert!(v <= r.remaining() + 0.05, "{:?}", r.job.id);
        }
    }

    #[test]
    fn expired_and_complete_jobs_are_ignored() {
        let now = ms(100);
        let ready = vec![
            rj(0, 0, 100, 100.0, 10.0),  // deadline == now → expired
            rj(1, 0, 200, 100.0, 100.0), // complete
            rj(2, 0, 200, 100.0, 0.0),
        ];
        let out = online_qe(now, &ready, &MODEL, 20.0);
        let vols = out.schedule.volumes();
        assert!(!vols.contains_key(&JobId(0)));
        assert!(!vols.contains_key(&JobId(1)));
        assert!((out.planned(JobId(1)) - 100.0).abs() < 1e-9);
        assert!(vols.contains_key(&JobId(2)));
    }

    #[test]
    fn non_partial_jobs_discarded_when_unfinishable() {
        let now = ms(0);
        // 1 GHz budget (5 W), 100 ms window → 100 units capacity; two
        // non-partial jobs of 80 each cannot both finish.
        let mut a = rj(0, 0, 100, 80.0, 0.0);
        let mut b = rj(1, 0, 100, 80.0, 0.0);
        a.job.partial = false;
        b.job.partial = false;
        let out = online_qe(now, &[a, b], &MODEL, 5.0);
        // One is discarded, the other completes in full.
        assert_eq!(out.discarded.len(), 1);
        let kept = if out.discarded[0] == JobId(0) {
            JobId(1)
        } else {
            JobId(0)
        };
        let vols = out.schedule.volumes();
        assert!((vols[&kept] - 80.0).abs() < 0.05);
    }

    #[test]
    fn partial_jobs_not_discarded() {
        let now = ms(0);
        let ready = vec![rj(0, 0, 100, 80.0, 0.0), rj(1, 0, 100, 80.0, 0.0)];
        let out = online_qe(now, &ready, &MODEL, 5.0);
        assert!(out.discarded.is_empty());
        // Both get half of the 100-unit capacity.
        assert!((out.planned(JobId(0)) - 50.0).abs() < 1.0);
        assert!((out.planned(JobId(1)) - 50.0).abs() < 1.0);
    }

    #[test]
    fn zero_budget_plans_nothing() {
        let ready = vec![rj(0, 0, 100, 50.0, 10.0)];
        let out = online_qe(ms(0), &ready, &MODEL, 0.0);
        assert!(out.schedule.is_empty());
        assert!((out.planned(JobId(0)) - 10.0).abs() < 1e-9);
    }

    /// Deterministic Fisher–Yates from a seed (the proptest shim has no
    /// shuffle strategy; an LCG is plenty for permutation coverage).
    fn shuffled(mut v: Vec<ReadyJob>, mut seed: u64) -> Vec<ReadyJob> {
        for i in (1..v.len()).rev() {
            seed = seed
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let j = (seed >> 33) as usize % (i + 1);
            v.swap(i, j);
        }
        v
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn prop_order_insensitive(
            raw in proptest::collection::vec(
                // (deadline ms beyond now, demand, processed fraction)
                (1u64..400, 1.0f64..300.0, 0.0f64..1.0),
                1..8,
            ),
            budget in 0.5f64..40.0,
            eager in proptest::bool::ANY,
            seed in 1u64..u64::MAX,
        ) {
            let now = ms(50);
            let ready: Vec<ReadyJob> = raw
                .iter()
                .enumerate()
                .map(|(i, &(d, w, frac))| ReadyJob {
                    job: Job::new(i as u32, ms(0), now + qes_core::time::SimDuration::from_millis(d), w)
                        .unwrap(),
                    processed: w * frac,
                })
                .collect();
            let mode = if eager { OnlineMode::Eager } else { OnlineMode::Efficient };
            let a = online_qe_with_mode(now, &ready, &MODEL, budget, mode);
            let b = online_qe_with_mode(now, &shuffled(ready.clone(), seed), &MODEL, budget, mode);
            prop_assert_eq!(a.schedule.slices(), b.schedule.slices());
            prop_assert_eq!(a.discarded, b.discarded);
            prop_assert_eq!(a.max_speed.to_bits(), b.max_speed.to_bits());
            for r in &ready {
                prop_assert_eq!(
                    a.planned(r.job.id).to_bits(),
                    b.planned(r.job.id).to_bits(),
                    "planned volume diverged for {:?}", r.job.id
                );
            }
        }
    }

    #[test]
    fn fractional_rewind_shifts_both_window_endpoints() {
        // A rewound release landing between µs ticks (processed ·
        // µs/unit fractional): the virtual instance must equal the
        // hand-shifted one — releases *and* deadlines moved by the same
        // integral µs amount. A skewed shift would change window lengths
        // and with them the volumes, so bitwise equality against
        // Quality-OPT over the hand-shifted jobs pins the construction.
        let now = SimTime::from_micros(1_000);
        let s_max = 1.0; // 1 unit per ms ⇒ µs/unit = 1000
        let mk = |id: u32, d_us: u64, w: f64, done: f64| ReadyJob {
            job: Job::new(id, SimTime::ZERO, SimTime::from_micros(d_us), w).unwrap(),
            processed: done,
        };
        // adj₀ = 1000 − 1250.25 = −250.25 (fractional, negative: sets the
        // shift); adj₁ = 1000 − 500.1 = 499.9 (fractional, positive).
        let active = vec![
            mk(0, 150_000, 200.0, 1.25025),
            mk(1, 160_000, 100.0, 0.5001),
        ];
        let got = myopic_volumes(now, &active, s_max);

        // Hand-shifted instance: S = ⌈250.25⌉ = 251 µs applied to both
        // endpoints, releases rounded after the shift.
        let shift = 251u64;
        let hand = JobSet::new(
            active
                .iter()
                .map(|r| {
                    let adj = now.as_micros() as f64 - r.processed * 1000.0 / s_max;
                    Job {
                        release: SimTime::from_micros((adj + shift as f64).round() as u64),
                        deadline: SimTime::from_micros(r.job.deadline.as_micros() + shift),
                        ..r.job
                    }
                })
                .collect(),
        )
        .unwrap();
        let qo = crate::quality_opt::quality_opt(&hand, s_max);
        for r in &active {
            assert_eq!(
                got[&r.job.id].to_bits(),
                qo.volume(r.job.id).to_bits(),
                "{:?}: rewound volumes diverged from the hand-shifted instance",
                r.job.id
            );
        }
    }

    #[test]
    fn discard_loop_stays_exact_when_rewind_shift_moves() {
        // Three unfinishable non-partial jobs, one carrying the prior
        // progress that defines the rewind shift. The §V-D loop crosses
        // both the resume path and the rebuild fallback (discarding the
        // shift-defining job changes the virtual geometry); the
        // debug_assertions cross-check in `solve` compares every round
        // against a from-scratch solve, so this test failing — or
        // panicking — means the invalidation contract broke.
        let now = ms(100);
        let mut a = rj(0, 0, 200, 120.0, 90.0);
        let mut b = rj(1, 0, 200, 120.0, 0.0);
        let mut c = rj(2, 0, 210, 120.0, 0.0);
        a.job.partial = false;
        b.job.partial = false;
        c.job.partial = false;
        let out = online_qe(now, &[a, b, c], &MODEL, 5.0); // 1 GHz
        assert!(!out.discarded.is_empty());
        // Whatever survives as non-partial is planned in full.
        for r in [a, b, c] {
            if !out.discarded.contains(&r.job.id) {
                assert!(
                    out.planned(r.job.id) >= r.job.demand - 1e-6,
                    "{:?} kept but unfinished: {}",
                    r.job.id,
                    out.planned(r.job.id)
                );
            }
        }
    }

    #[test]
    fn second_discard_does_not_resurrect_the_first() {
        // Regression (caught by the debug cross-check on a live sim):
        // with two discards in one invocation, resuming the decomposition
        // from a round recorded *before* the first discard must not
        // re-admit the already-discarded job — it lingers in early
        // snapshots as an unfixed participant and must be filtered by the
        // alive set. Pre-fix, the resurrected job depressed the
        // survivor's volume below its demand, cascading into a third
        // (wrong) discard.
        let now = SimTime::from_micros(148_242);
        let mk = |id, r_us: u64, d_us: u64, w: f64, done: f64| {
            let mut j = Job::new(
                id,
                SimTime::from_micros(r_us),
                SimTime::from_micros(d_us),
                w,
            )
            .unwrap();
            j.partial = false;
            ReadyJob {
                job: j,
                processed: done,
            }
        };
        let ready = vec![
            mk(
                0,
                0,
                150_000,
                130.413_085_928_557_14,
                126.038_570_647_654_17,
            ),
            mk(1, 74_993, 224_993, 152.765_002_805_252_75, 0.0),
            mk(2, 124_422, 274_422, 256.164_825_893_611, 0.0),
        ];
        let budget = MODEL.dynamic_power(2.391_620_727_883_861);
        let out = online_qe(now, &ready, &MODEL, budget);
        assert_eq!(out.discarded.len(), 2, "discarded: {:?}", out.discarded);
        let kept = ready
            .iter()
            .find(|r| !out.discarded.contains(&r.job.id))
            .unwrap();
        assert!(
            out.planned(kept.job.id) >= kept.job.demand - 1e-6,
            "{:?} kept but unfinished: {}",
            kept.job.id,
            out.planned(kept.job.id)
        );
    }

    #[test]
    fn changing_budget_between_invocations_is_sound() {
        // First invocation at high budget, second at low: the second plan
        // still respects its (smaller) budget.
        let ready = vec![rj(0, 0, 150, 300.0, 0.0), rj(1, 0, 150, 300.0, 0.0)];
        let out1 = online_qe(ms(0), &ready, &MODEL, 45.0); // 3 GHz
        assert!(out1.max_speed > 2.9);
        // Pretend 50 units of job 0 ran, then budget drops.
        let ready2 = vec![rj(0, 0, 150, 300.0, 50.0), rj(1, 0, 150, 300.0, 0.0)];
        let out2 = online_qe(ms(20), &ready2, &MODEL, 5.0); // 1 GHz
        let jobs = JobSet::new(ready2.iter().map(|r| r.job).collect()).unwrap();
        Schedule::single(out2.schedule.clone())
            .validate_with_tolerance(&jobs, &MODEL, 5.0, 0.05, 1e-6)
            .unwrap();
        assert!(out2.schedule.speed_plan().max_speed() <= 1.0 + 1e-9);
    }
}
