#![warn(missing_docs)]

//! # qes-singlecore — single-core scheduling algorithms (paper §III)
//!
//! Implements the four single-core algorithms of the paper:
//!
//! * [`energy_opt`] — **Energy-OPT**, the YDS algorithm (Yao, Demers,
//!   Shenker '95): minimum-energy DVFS schedule that satisfies every job,
//!   assuming no power budget. Works by repeatedly extracting the
//!   *critical interval* (the interval of maximum intensity) and running
//!   its jobs EDF at the interval's average speed.
//! * [`quality_opt`] — **Quality-OPT**, the Tians algorithm (He, Elnikety,
//!   Sun, ICDCS '11): maximum-quality schedule on a *fixed-speed* core
//!   where jobs may be partially evaluated. Works by repeatedly extracting
//!   the *busiest deprived interval* (minimum d-mean) and giving every
//!   deprived job in it the same processed volume (the d-mean), exploiting
//!   the concavity of the quality function.
//! * [`qe_opt`] — **QE-OPT**, the paper's offline optimal for the
//!   lexicographic ⟨quality, energy⟩ metric under a power budget:
//!   Quality-OPT at the maximum budget speed decides volumes, then
//!   Energy-OPT on the trimmed demands decides speeds.
//! * [`online_qe`] — **Online-QE**, the myopic-optimal online algorithm:
//!   QE-OPT over the currently ready jobs, with release times rewound to
//!   account for work already performed.
//!
//! All algorithms require *agreeable deadlines* (later release ⇒ no earlier
//! deadline, §II-A), which [`qes_core::JobSet`] guarantees.
//!
//! Internally, interval extraction uses a virtual/real coordinate map
//! (the private `timeline` module) instead of mutating job windows
//! destructively: extracted
//! intervals are cut out of the virtual axis, remaining windows compress
//! automatically, and finished slices map back to real free slots.

pub mod energy_opt;
pub mod online_qe;
pub mod qe_opt;
pub mod quality_opt;
pub(crate) mod timeline;

pub use energy_opt::{energy_opt, EnergyOptResult};
pub use online_qe::{
    myopic_volumes, online_qe, online_qe_with_mode, OnlineMode, OnlineQeOutcome, QeSolver, ReadyJob,
};
pub use qe_opt::{qe_opt, QeOptResult};
pub use quality_opt::{quality_opt, QualityOptResult};
