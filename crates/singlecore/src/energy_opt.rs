//! **Energy-OPT** — the YDS minimum-energy algorithm (paper §III-A).
//!
//! Given a job set with agreeable deadlines on a single DVFS core with *no*
//! power budget, Energy-OPT completes every job by its deadline with the
//! minimum possible energy under a convex power function. It repeatedly:
//!
//! 1. finds the **critical interval** `I* = [z, z′)` maximizing the
//!    intensity `g(I) = Σ w_j / |I|` over jobs whose whole window lies in
//!    `I` (the *critical group*);
//! 2. schedules the critical group EDF at the constant speed `g(I*)`
//!    inside `I*`;
//! 3. removes `I*` from the timeline (remaining job windows compress) and
//!    recurses.
//!
//! Convexity of the power function makes running each critical group at
//! its average speed optimal; critical speeds are non-increasing across
//! rounds (a property [`EnergyOptResult::round_speeds`] exposes and the
//! tests verify).

use std::collections::BTreeSet;

use qes_core::job::JobSet;
use qes_core::schedule::{CoreSchedule, Slice};
use qes_core::time::SimTime;

use crate::timeline::{compress_point, edf_pack, materialize, VJob, VirtualMap};

/// Output of [`energy_opt`].
#[derive(Clone, Debug)]
pub struct EnergyOptResult {
    /// The single-core schedule; every job is fully processed by its
    /// deadline.
    pub schedule: CoreSchedule,
    /// Speed of each extraction round, in order. Non-increasing.
    pub round_speeds: Vec<f64>,
}

impl EnergyOptResult {
    /// Speed of the first (fastest) critical round; 0 for an empty input.
    ///
    /// With all jobs released at a common instant `t`, the YDS speed
    /// profile is non-increasing in time, so this is also the speed — and
    /// hence, through the power model, the power `P_i(t)` — that DES's
    /// budget-free probe reads at `t` (paper §IV-D step 2).
    pub fn initial_speed(&self) -> f64 {
        self.round_speeds.first().copied().unwrap_or(0.0)
    }
}

/// Run Energy-OPT (YDS) on `jobs`.
///
/// Zero-demand jobs are trivially satisfied and receive no slices.
pub fn energy_opt(jobs: &JobSet) -> EnergyOptResult {
    let mut vjobs: Vec<VJob> = Vec::with_capacity(jobs.len());
    let (origin, horizon) = match (jobs.first_release(), jobs.last_deadline()) {
        (Some(r), Some(d)) => (r.as_micros(), d.as_micros() - r.as_micros()),
        _ => {
            return EnergyOptResult {
                schedule: CoreSchedule::default(),
                round_speeds: vec![],
            }
        }
    };
    for j in jobs.iter().filter(|j| j.demand > 0.0) {
        vjobs.push(VJob {
            id: j.id,
            r: j.release.as_micros() - origin,
            d: j.deadline.as_micros() - origin,
            w: j.demand,
        });
    }
    let mut map = VirtualMap::identity(origin, horizon);
    let mut slices: Vec<Slice> = Vec::with_capacity(vjobs.len());
    let mut round_speeds = Vec::new();

    while !vjobs.is_empty() {
        let (a, b, speed) = critical_interval(&vjobs);
        round_speeds.push(speed);
        // Partition the critical group out of the remaining jobs.
        let (mut group, rest): (Vec<VJob>, Vec<VJob>) =
            vjobs.into_iter().partition(|j| j.r >= a && j.d <= b);
        vjobs = rest;
        // EDF within the interval at the critical speed.
        group.sort_by_key(|x| (x.d, x.r, x.id));
        let volumes: Vec<(VJob, f64)> = group.iter().map(|&j| (j, j.w)).collect();
        let vslices = edf_pack(&volumes, speed, a);
        for (id, ra, rb) in materialize(&map, &vslices) {
            slices.push(Slice {
                job: id,
                start: SimTime::from_micros(ra),
                end: SimTime::from_micros(rb),
                speed,
            });
        }
        // Remove the interval; compress remaining windows.
        map.cut(a, b);
        for j in &mut vjobs {
            j.r = compress_point(j.r, a, b);
            j.d = compress_point(j.d, a, b);
        }
    }

    EnergyOptResult {
        schedule: CoreSchedule::new(slices),
        round_speeds,
    }
}

/// Find the critical interval of `vjobs`: the candidate `[a, b)` (built
/// from release/deadline endpoints) maximizing intensity. Returns
/// `(a, b, speed_ghz)`.
fn critical_interval(vjobs: &[VJob]) -> (u64, u64, f64) {
    let releases: BTreeSet<u64> = vjobs.iter().map(|j| j.r).collect();
    let deadlines: BTreeSet<u64> = vjobs.iter().map(|j| j.d).collect();
    let mut best = (0u64, 0u64, -1.0f64);
    for &a in &releases {
        for &b in deadlines.iter().rev() {
            if b <= a {
                break;
            }
            let w: f64 = vjobs
                .iter()
                .filter(|j| j.r >= a && j.d <= b)
                .map(|j| j.w)
                .sum();
            if w <= 0.0 {
                continue;
            }
            // speed (GHz) to do `w` units in (b−a) µs: 1 unit = 1 GHz·ms.
            let speed = w * 1000.0 / (b - a) as f64;
            if speed > best.2 {
                best = (a, b, speed);
            }
        }
    }
    debug_assert!(
        best.2 > 0.0,
        "critical interval must exist for non-empty job set"
    );
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use qes_core::job::{Job, JobId};
    use qes_core::power::{PolynomialPower, PowerModel};
    use qes_core::schedule::Schedule;

    fn ms(x: u64) -> SimTime {
        SimTime::from_millis(x)
    }

    fn js(jobs: Vec<Job>) -> JobSet {
        JobSet::new(jobs).unwrap()
    }

    #[test]
    fn empty_set_yields_empty_schedule() {
        let r = energy_opt(&js(vec![]));
        assert!(r.schedule.is_empty());
        assert_eq!(r.initial_speed(), 0.0);
    }

    #[test]
    fn single_job_runs_at_its_average_speed() {
        // 100 units over a 100 ms window → 1 GHz, exactly filling the window.
        let jobs = js(vec![Job::new(0, ms(0), ms(100), 100.0).unwrap()]);
        let r = energy_opt(&jobs);
        assert_eq!(r.round_speeds.len(), 1);
        assert!((r.round_speeds[0] - 1.0).abs() < 1e-9);
        let vols = r.schedule.volumes();
        assert!((vols[&JobId(0)] - 100.0).abs() < 1e-3);
    }

    #[test]
    fn all_jobs_fully_processed() {
        let jobs = js(vec![
            Job::new(0, ms(0), ms(150), 120.0).unwrap(),
            Job::new(1, ms(20), ms(170), 60.0).unwrap(),
            Job::new(2, ms(40), ms(190), 200.0).unwrap(),
            Job::new(3, ms(90), ms(240), 80.0).unwrap(),
        ]);
        let r = energy_opt(&jobs);
        let vols = r.schedule.volumes();
        for j in jobs.iter() {
            let v = vols.get(&j.id).copied().unwrap_or(0.0);
            assert!(
                (v - j.demand).abs() < 0.01,
                "{:?}: {v} vs {}",
                j.id,
                j.demand
            );
        }
        // Schedule is feasible (unbounded budget).
        let m = PolynomialPower::PAPER_SIM;
        Schedule::single(r.schedule.clone())
            .validate_with_tolerance(&jobs, &m, f64::INFINITY, 0.05, 1e-6)
            .unwrap();
    }

    #[test]
    fn critical_speeds_are_non_increasing() {
        let jobs = js(vec![
            Job::new(0, ms(0), ms(50), 100.0).unwrap(), // dense: 2 GHz
            Job::new(1, ms(0), ms(200), 50.0).unwrap(),
            Job::new(2, ms(60), ms(260), 30.0).unwrap(),
            Job::new(3, ms(120), ms(320), 10.0).unwrap(),
        ]);
        let r = energy_opt(&jobs);
        for w in r.round_speeds.windows(2) {
            assert!(
                w[0] >= w[1] - 1e-9,
                "round speeds increased: {:?}",
                r.round_speeds
            );
        }
        assert!((r.initial_speed() - r.round_speeds[0]).abs() < 1e-12);
    }

    #[test]
    fn common_release_gives_non_increasing_speed_profile() {
        // DES's step-2 probe relies on this (§IV-D).
        let jobs = js(vec![
            Job::new(0, ms(0), ms(30), 90.0).unwrap(),
            Job::new(1, ms(0), ms(100), 50.0).unwrap(),
            Job::new(2, ms(0), ms(300), 20.0).unwrap(),
        ]);
        let r = energy_opt(&jobs);
        let plan = r.schedule.speed_plan();
        let mut prev = f64::INFINITY;
        for seg in plan.segments() {
            assert!(seg.speed <= prev + 1e-9);
            prev = seg.speed;
        }
        assert!((plan.speed_at(ms(0)) - r.initial_speed()).abs() < 1e-9);
    }

    #[test]
    fn energy_beats_constant_full_speed() {
        // Running everything at the max needed speed wastes energy; YDS
        // must do no worse than the single-speed alternative.
        let jobs = js(vec![
            Job::new(0, ms(0), ms(50), 80.0).unwrap(),
            Job::new(1, ms(50), ms(300), 40.0).unwrap(),
        ]);
        let m = PolynomialPower::PAPER_SIM;
        let r = energy_opt(&jobs);
        let yds_energy = r.schedule.energy(&m);
        // Constant-speed alternative: run both jobs back-to-back at the
        // speed the denser job needs (80 units / 50 ms = 1.6 GHz).
        let s = 1.6;
        let secs = (80.0 + 40.0) / (s * 1000.0);
        let const_energy = m.dynamic_power(s) * secs;
        assert!(
            yds_energy <= const_energy + 1e-9,
            "YDS {yds_energy} > constant {const_energy}"
        );
    }

    #[test]
    fn zero_demand_jobs_are_skipped() {
        let jobs = js(vec![
            Job::new(0, ms(0), ms(100), 0.0).unwrap(),
            Job::new(1, ms(0), ms(100), 50.0).unwrap(),
        ]);
        let r = energy_opt(&jobs);
        let vols = r.schedule.volumes();
        assert!(!vols.contains_key(&JobId(0)));
        assert!((vols[&JobId(1)] - 50.0).abs() < 0.01);
    }

    #[test]
    fn disjoint_clusters_get_their_own_speeds() {
        // Two well-separated bursts: each is its own critical interval.
        let jobs = js(vec![
            Job::new(0, ms(0), ms(50), 100.0).unwrap(),     // 2 GHz
            Job::new(1, ms(1000), ms(1100), 50.0).unwrap(), // 0.5 GHz
        ]);
        let r = energy_opt(&jobs);
        assert_eq!(r.round_speeds.len(), 2);
        assert!((r.round_speeds[0] - 2.0).abs() < 1e-9);
        assert!((r.round_speeds[1] - 0.5).abs() < 1e-9);
        // Each job runs inside its own window.
        for s in r.schedule.slices() {
            let j = jobs.get(s.job).unwrap();
            assert!(s.start >= j.release && s.end <= j.deadline);
        }
    }

    #[test]
    fn nested_windows_fold_into_one_critical_interval() {
        // A tight job inside a loose job's window: the loose job's work
        // flows around the extracted critical interval. (Not agreeable —
        // YDS itself handles general instances, so bypass the check.)
        let jobs = JobSet::new_unchecked(vec![
            Job::new(0, ms(0), ms(200), 60.0).unwrap(),
            Job::new(1, ms(50), ms(100), 100.0).unwrap(), // 2 GHz critical
        ]);
        let r = energy_opt(&jobs);
        assert!((r.round_speeds[0] - 2.0).abs() < 1e-9);
        let vols = r.schedule.volumes();
        assert!((vols[&JobId(0)] - 60.0).abs() < 0.01);
        assert!((vols[&JobId(1)] - 100.0).abs() < 0.01);
        // Job 1 occupies exactly [50,100); job 0's slices avoid it.
        for s in r.schedule.slices() {
            if s.job == JobId(0) {
                assert!(s.end <= ms(50) || s.start >= ms(100));
            }
        }
    }
}
