//! One Criterion bench per table/figure of the paper's evaluation (§V).
//!
//! Each bench regenerates the data behind its figure at a reduced horizon
//! (benchmarks measure the cost of the regeneration pipeline; the
//! full-scale numbers come from `cargo run --release -p qes-experiments
//! --bin figures -- all --full`). The measured quantities are printed once
//! per bench so the run doubles as a smoke regeneration of every figure.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use qes_cluster::meter::PowerMeter;
use qes_cluster::replay::{exact_energy, measured_energy};
use qes_cluster::spec::ClusterSpec;
use qes_core::quality::{ExpQuality, QualityFunction};
use qes_core::time::SimTime;
use qes_experiments::{run_policy, run_policy_traced, ExperimentConfig, PolicyKind};
use qes_multicore::water_filling;

/// Short-horizon config used inside benches.
fn bench_cfg(rate: f64) -> ExperimentConfig {
    ExperimentConfig::paper_default()
        .with_arrival_rate(rate)
        .with_sim_seconds(5.0)
}

fn fig01_quality_function(c: &mut Criterion) {
    let q = ExpQuality::PAPER_DEFAULT;
    c.bench_function("fig01_quality_function", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for i in 0..=1000 {
                acc += q.value(std::hint::black_box(i as f64));
            }
            acc
        })
    });
}

fn fig02_water_filling(c: &mut Criterion) {
    let requests: Vec<f64> = (0..16).map(|i| 5.0 + 3.0 * i as f64).collect();
    c.bench_function("fig02_water_filling", |b| {
        b.iter(|| water_filling(std::hint::black_box(&requests), 320.0))
    });
}

fn fig03_architectures(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig03_architectures");
    g.sample_size(10);
    for kind in [PolicyKind::Des, PolicyKind::DesSDvfs, PolicyKind::DesNoDvfs] {
        g.bench_with_input(BenchmarkId::from_parameter(kind.name()), &kind, |b, &k| {
            b.iter(|| run_policy(&bench_cfg(120.0), k, 1))
        });
    }
    g.finish();
}

fn fig04_partial_eval(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig04_partial_eval");
    g.sample_size(10);
    for frac in [0.0, 0.5, 1.0] {
        g.bench_with_input(
            BenchmarkId::from_parameter(format!("{frac}")),
            &frac,
            |b, &f| {
                let cfg = bench_cfg(160.0).with_partial_fraction(f);
                b.iter(|| run_policy(&cfg, PolicyKind::Des, 1))
            },
        );
    }
    g.finish();
}

fn fig05_baselines(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig05_baselines");
    g.sample_size(10);
    for kind in [
        PolicyKind::Des,
        PolicyKind::Fcfs,
        PolicyKind::Ljf,
        PolicyKind::Sjf,
    ] {
        g.bench_with_input(BenchmarkId::from_parameter(kind.name()), &kind, |b, &k| {
            b.iter(|| run_policy(&bench_cfg(160.0), k, 1))
        });
    }
    g.finish();
}

fn fig06_baselines_wf(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig06_baselines_wf");
    g.sample_size(10);
    for kind in [PolicyKind::FcfsWf, PolicyKind::LjfWf, PolicyKind::SjfWf] {
        g.bench_with_input(BenchmarkId::from_parameter(kind.name()), &kind, |b, &k| {
            b.iter(|| run_policy(&bench_cfg(160.0), k, 1))
        });
    }
    g.finish();
}

fn fig07_quality_sensitivity(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig07_quality_sensitivity");
    g.sample_size(10);
    for cc in [0.0005, 0.003, 0.009] {
        g.bench_with_input(
            BenchmarkId::from_parameter(format!("c={cc}")),
            &cc,
            |b, &cc| {
                let cfg = bench_cfg(160.0).with_quality_c(cc);
                b.iter(|| run_policy(&cfg, PolicyKind::Des, 1))
            },
        );
    }
    g.finish();
}

fn fig08_power_budget(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig08_power_budget");
    g.sample_size(10);
    for h in [80.0, 320.0, 640.0] {
        g.bench_with_input(
            BenchmarkId::from_parameter(format!("H={h}")),
            &h,
            |b, &h| {
                let cfg = bench_cfg(200.0).with_budget(h);
                b.iter(|| run_policy(&cfg, PolicyKind::Des, 1))
            },
        );
    }
    g.finish();
}

fn fig09_core_count(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig09_core_count");
    g.sample_size(10);
    for m in [2usize, 16, 64] {
        g.bench_with_input(
            BenchmarkId::from_parameter(format!("m={m}")),
            &m,
            |b, &m| {
                let cfg = bench_cfg(90.0).with_cores(m);
                b.iter(|| run_policy(&cfg, PolicyKind::Des, 1))
            },
        );
    }
    g.finish();
}

fn fig10_discrete_speed(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig10_discrete_speed");
    g.sample_size(10);
    for kind in [PolicyKind::Des, PolicyKind::DesDiscrete] {
        g.bench_with_input(BenchmarkId::from_parameter(kind.name()), &kind, |b, &k| {
            b.iter(|| run_policy(&bench_cfg(160.0), k, 1))
        });
    }
    g.finish();
}

fn fig11_validation(c: &mut Criterion) {
    // Bench the replay + metering pipeline over a fixed recorded trace.
    let cluster = ClusterSpec::paper_validation();
    let cfg = ExperimentConfig {
        num_cores: cluster.total_cores(),
        budget: 152.0,
        power: qes_core::PolynomialPower {
            b: 0.0,
            ..qes_core::PolynomialPower::PAPER_REAL
        },
        ladder: Some(qes_core::DiscreteSpeedSet::opteron_2380()),
        ..ExperimentConfig::paper_default()
    }
    .with_arrival_rate(80.0)
    .with_sim_seconds(5.0);
    let (_, trace) = run_policy_traced(&cfg, PolicyKind::DesDiscrete, 1);
    let horizon = SimTime::from_secs(5);
    let meter = PowerMeter::default();
    let mut g = c.benchmark_group("fig11_validation");
    g.bench_function("exact_energy", |b| {
        b.iter(|| exact_energy(std::hint::black_box(&trace), &cluster, horizon))
    });
    g.bench_function("measured_energy", |b| {
        b.iter(|| measured_energy(std::hint::black_box(&trace), &cluster, horizon, &meter))
    });
    g.finish();
}

fn ablation_variants(c: &mut Criterion) {
    // The extension ablation: cost of each DES variant at a fixed load.
    use qes_core::quality::ExpQuality;
    use qes_core::SimDuration;
    use qes_multicore::des::{DesPolicy, JobSharing, PowerSharing};
    use qes_sim::engine::{SimConfig, Simulator};
    let jobs = bench_cfg(160.0).workload().generate(1).unwrap();
    let quality = ExpQuality::PAPER_DEFAULT;
    let mut g = c.benchmark_group("ablation_variants");
    g.sample_size(10);
    type Variant = (&'static str, Box<dyn Fn() -> DesPolicy>);
    let variants: Vec<Variant> = vec![
        ("full", Box::new(DesPolicy::new)),
        (
            "restart-rr",
            Box::new(|| DesPolicy::new().with_job_sharing(JobSharing::RestartRr)),
        ),
        (
            "static-power",
            Box::new(|| DesPolicy::new().with_power_sharing(PowerSharing::StaticEqual)),
        ),
        (
            "efficient",
            Box::new(|| DesPolicy::new().with_mode(qes_singlecore::OnlineMode::Efficient)),
        ),
    ];
    for (label, make) in variants {
        g.bench_function(label, |b| {
            b.iter(|| {
                let cfg = SimConfig {
                    num_cores: 16,
                    budget: 320.0,
                    model: &qes_core::PolynomialPower::PAPER_SIM,
                    quality: &quality,
                    end: SimTime::from_secs(5),
                    record_trace: false,
                    overhead: SimDuration::ZERO,
                };
                let mut policy = make();
                Simulator::run(&cfg, &mut policy, std::hint::black_box(&jobs))
            })
        });
    }
    g.finish();
}

criterion_group!(
    figures,
    fig01_quality_function,
    fig02_water_filling,
    fig03_architectures,
    fig04_partial_eval,
    fig05_baselines,
    fig06_baselines_wf,
    fig07_quality_sensitivity,
    fig08_power_budget,
    fig09_core_count,
    fig10_discrete_speed,
    fig11_validation,
    ablation_variants,
);
criterion_main!(figures);
