//! Microbenchmarks of the scheduling algorithms themselves: scaling of
//! Energy-OPT / Quality-OPT / QE-OPT / Online-QE with the number of ready
//! jobs, and the cost of one DES invocation — the quantities that bound
//! the scheduler's own overhead (the paper's §III complexity analysis:
//! O(n³)/O(n⁴) offline, O(n²) per Online-QE invocation).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use qes_core::job::{Job, JobSet};
use qes_core::power::PolynomialPower;
use qes_core::time::{SimDuration, SimTime};
use qes_singlecore::online_qe::ReadyJob;
use qes_singlecore::{energy_opt, online_qe, qe_opt, quality_opt};

const MODEL: PolynomialPower = PolynomialPower::PAPER_SIM;

/// A deterministic agreeable job set of size `n` with staggered releases.
fn jobset(n: usize) -> JobSet {
    let jobs: Vec<Job> = (0..n)
        .map(|i| {
            let rel = SimTime::from_millis(7 * i as u64);
            let demand = 130.0 + ((i * 97) % 870) as f64;
            Job::new(
                i as u32,
                rel,
                rel + qes_core::SimDuration::from_millis(150),
                demand,
            )
            .unwrap()
        })
        .collect();
    JobSet::new(jobs).unwrap()
}

fn bench_energy_opt(c: &mut Criterion) {
    let mut g = c.benchmark_group("energy_opt_scaling");
    for n in [4usize, 16, 64] {
        let jobs = jobset(n);
        g.bench_with_input(BenchmarkId::from_parameter(n), &jobs, |b, jobs| {
            b.iter(|| energy_opt::energy_opt(std::hint::black_box(jobs)))
        });
    }
    g.finish();
}

fn bench_quality_opt(c: &mut Criterion) {
    let mut g = c.benchmark_group("quality_opt_scaling");
    for n in [4usize, 16, 64] {
        let jobs = jobset(n);
        g.bench_with_input(BenchmarkId::from_parameter(n), &jobs, |b, jobs| {
            b.iter(|| quality_opt::quality_opt(std::hint::black_box(jobs), 1.0))
        });
    }
    g.finish();
}

fn bench_qe_opt(c: &mut Criterion) {
    let mut g = c.benchmark_group("qe_opt_scaling");
    for n in [4usize, 16, 64] {
        let jobs = jobset(n);
        g.bench_with_input(BenchmarkId::from_parameter(n), &jobs, |b, jobs| {
            b.iter(|| qe_opt::qe_opt(std::hint::black_box(jobs), &MODEL, 20.0))
        });
    }
    g.finish();
}

fn bench_online_qe(c: &mut Criterion) {
    // Online invocations see common-release ready sets: the O(n²) case.
    let mut g = c.benchmark_group("online_qe_invocation");
    for n in [4usize, 16, 64] {
        let now = SimTime::from_millis(500);
        let ready: Vec<ReadyJob> = (0..n)
            .map(|i| {
                let demand = 130.0 + ((i * 131) % 870) as f64;
                ReadyJob {
                    job: Job::new(
                        i as u32,
                        now,
                        now + qes_core::SimDuration::from_millis(150),
                        demand,
                    )
                    .unwrap(),
                    processed: if i == 0 { 40.0 } else { 0.0 },
                }
            })
            .collect();
        g.bench_with_input(BenchmarkId::from_parameter(n), &ready, |b, ready| {
            b.iter(|| online_qe::online_qe(now, std::hint::black_box(ready), &MODEL, 20.0))
        });
    }
    g.finish();
}

fn bench_des_invocation(c: &mut Criterion) {
    // Cost of one full DES decision (all four steps) as the per-core
    // ready-set size grows — the scheduler's own overhead (§IV-E's
    // motivation for grouped scheduling).
    use qes_multicore::{CoreView, DesPolicy, SchedulingPolicy, SystemView};
    let mut g = c.benchmark_group("des_invocation");
    for per_core in [2usize, 8, 24] {
        let m = 16;
        let now = SimTime::from_millis(1000);
        let core_jobs: Vec<Vec<ReadyJob>> = (0..m)
            .map(|ci| {
                (0..per_core)
                    .map(|i| {
                        let id = (ci * per_core + i) as u32;
                        let demand = 130.0 + ((id as usize * 73) % 870) as f64;
                        ReadyJob {
                            job: Job::new(
                                id,
                                now,
                                now + qes_core::SimDuration::from_millis(150),
                                demand,
                            )
                            .unwrap(),
                            processed: 0.0,
                        }
                    })
                    .collect()
            })
            .collect();
        let cores: Vec<CoreView> = core_jobs
            .iter()
            .map(|jobs| CoreView { jobs, busy: true })
            .collect();
        g.bench_with_input(BenchmarkId::from_parameter(per_core), &cores, |b, cores| {
            let mut policy = DesPolicy::new();
            b.iter(|| {
                let view = SystemView {
                    now,
                    queue: &[],
                    cores: std::hint::black_box(cores),
                    budget: 320.0,
                    model: &MODEL,
                };
                policy.on_trigger(&view)
            })
        });
    }
    g.finish();
}

fn bench_engine_throughput(c: &mut Criterion) {
    // End-to-end simulated-jobs-per-wall-second of the whole stack.
    use qes_core::quality::ExpQuality;
    use qes_multicore::DesPolicy;
    use qes_sim::engine::{SimConfig, Simulator};
    use qes_workload::WebSearchWorkload;
    let jobs = WebSearchWorkload::new(160.0)
        .with_horizon(SimTime::from_secs(5))
        .generate(1)
        .unwrap();
    let quality = ExpQuality::PAPER_DEFAULT;
    let mut g = c.benchmark_group("engine_throughput");
    g.sample_size(10);
    g.throughput(criterion::Throughput::Elements(jobs.len() as u64));
    g.bench_function("des_5s_at_160rps", |b| {
        b.iter(|| {
            let cfg = SimConfig {
                num_cores: 16,
                budget: 320.0,
                model: &MODEL,
                quality: &quality,
                end: SimTime::from_secs(5),
                record_trace: false,
                overhead: SimDuration::ZERO,
            };
            Simulator::run(&cfg, &mut DesPolicy::new(), std::hint::black_box(&jobs))
        })
    });
    g.finish();
}

criterion_group!(
    algorithms,
    bench_energy_opt,
    bench_quality_opt,
    bench_qe_opt,
    bench_online_qe,
    bench_des_invocation,
    bench_engine_throughput,
);
criterion_main!(algorithms);
