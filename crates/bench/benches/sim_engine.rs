//! Engine throughput: simulated jobs per wall-clock second of the
//! discrete-event core, swept over job count and core count.
//!
//! Two policies bracket the measurement: FCFS (cheap decisions, so the
//! run time is dominated by the engine's own event handling — the
//! quantity PR 2's index/borrow rework targets) and DES (the paper's
//! policy, where decision cost shares the bill). The headline metrics
//! are `fcfs/100k_jobs/8_cores` and `des/100k_jobs/8_cores`; the
//! `des-pe` (per-event triggers, full recompute — the pre-trigger
//! behaviour) and `des-full` (grouped triggers, full recompute) rows
//! ablate where the DES speedup comes from.
//!
//! The `sweep/sequential` and `sweep/parallel` rows measure the
//! ⟨policy, rate⟩ experiment sweep (the loop behind every §V figure and
//! the scorecard) at one lane vs this host's default lane count —
//! their ratio is the rayon-shim thread-pool speedup, ~1.0 on a
//! single-core runner and ≈ the core count on real hardware.
//!
//! Besides the usual criterion-style stdout report, this bench writes
//! `BENCH_sim_engine.json` at the workspace root. Set
//! `QES_BENCH_BASELINE=<path to a previous BENCH_sim_engine.json>` to
//! embed those numbers as the baseline and print speedups; set
//! `QES_BENCH_FULL=1` to add the 1M-job configurations.

use std::fmt::Write as _;
use std::time::Instant;

use criterion::{criterion_group, criterion_main, Criterion};

use qes_core::power::PolynomialPower;
use qes_core::quality::ExpQuality;
use qes_core::time::SimDuration;
use qes_core::UNITS_PER_GHZ_SECOND;
use qes_multicore::{
    BaselineOrder, BaselinePolicy, DesPolicy, RecomputeMode, SchedulingPolicy, TriggerRequest,
};
use qes_sim::engine::{SimConfig, Simulator};
use qes_workload::WebSearchWorkload;

const MODEL: PolynomialPower = PolynomialPower::PAPER_SIM;
const QUALITY: ExpQuality = ExpQuality::PAPER_DEFAULT;
/// Offered load as a fraction of an `m`-core 2 GHz server's capacity;
/// ~90 % keeps every core busy without letting deadlines expire en masse.
const UTILIZATION: f64 = 0.9;
/// Overloaded-regime utilization: per-core demand far exceeds what the
/// 40 W/core budget can serve, so every DES invocation takes the
/// water-filling + budget-bounded Online-QE branch (the paper's Fig. 3/4
/// stress regime, and the path the incremental-QE solver targets).
const OVERLOAD_UTILIZATION: f64 = 1.8;
const MEAN_DEMAND: f64 = 192.0;

fn arrival_rate_at(utilization: f64, cores: usize) -> f64 {
    utilization * cores as f64 * 2.0 * UNITS_PER_GHZ_SECOND / MEAN_DEMAND
}

struct Sample {
    policy: &'static str,
    jobs: usize,
    cores: usize,
    /// Extra key segment naming a non-default regime (e.g. "overload").
    variant: Option<&'static str>,
    /// Explicit key overriding the `policy/jobs/cores` scheme (the
    /// `sweep/*` rows, whose unit is points not jobs).
    name: Option<&'static str>,
    wall_s: f64,
    jobs_per_sec: f64,
}

impl Sample {
    fn key(&self) -> String {
        if let Some(n) = self.name {
            return n.to_string();
        }
        let base = format!("{}/{}_jobs/{}_cores", self.policy, self.jobs, self.cores);
        match self.variant {
            Some(v) => format!("{base}/{v}"),
            None => base,
        }
    }
}

fn make_policy(name: &str) -> Box<dyn SchedulingPolicy> {
    match name {
        "fcfs" => Box::new(BaselinePolicy::new(BaselineOrder::Fcfs)),
        // Grouped triggers + incremental recomputation (the defaults).
        "des" => Box::new(DesPolicy::new()),
        // Grouped triggers, but every invocation recomputes from scratch:
        // isolates the trigger win from the memoization win.
        "des-full" => Box::new(DesPolicy::new().with_recompute(RecomputeMode::Full)),
        // §IV-E Immediate Scheduling with full recomputation — the PR-2
        // behaviour, kept as an in-tree reference point.
        "des-pe" => Box::new(
            DesPolicy::new()
                .with_triggers(TriggerRequest::per_event())
                .with_recompute(RecomputeMode::Full),
        ),
        other => panic!("unknown bench policy {other}"),
    }
}

/// Run one configuration to completion, returning the median wall time of
/// `reps` runs.
fn run_config(policy: &'static str, jobs: usize, cores: usize, reps: usize) -> Sample {
    run_config_at(policy, jobs, cores, reps, None)
}

fn run_config_at(
    policy: &'static str,
    jobs: usize,
    cores: usize,
    reps: usize,
    variant: Option<&'static str>,
) -> Sample {
    let utilization = match variant {
        Some("overload") => OVERLOAD_UTILIZATION,
        _ => UTILIZATION,
    };
    let trace = WebSearchWorkload::new(arrival_rate_at(utilization, cores))
        .generate_exact(jobs, 42)
        .expect("bench workload generates");
    let end = trace.last_deadline().expect("non-empty trace");
    let mut walls: Vec<f64> = (0..reps)
        .map(|_| {
            let cfg = SimConfig {
                num_cores: cores,
                budget: 40.0 * cores as f64,
                model: &MODEL,
                quality: &QUALITY,
                end,
                record_trace: false,
                overhead: SimDuration::ZERO,
            };
            let mut p = make_policy(policy);
            let t = Instant::now();
            let (report, _) = Simulator::run(&cfg, p.as_mut(), &trace);
            let wall = t.elapsed().as_secs_f64();
            assert_eq!(report.jobs_total(), jobs, "engine lost jobs");
            wall
        })
        .collect();
    walls.sort_by(|a, b| a.total_cmp(b));
    let wall_s = walls[walls.len() / 2];
    Sample {
        policy,
        jobs,
        cores,
        variant,
        name: None,
        wall_s,
        jobs_per_sec: jobs as f64 / wall_s,
    }
}

/// The headline DES configuration through the *observed* entry point:
/// with an explicit [`NoopObserver`] (`traced-off` — must match the
/// plain row within noise) or a live [`TraceObserver`] (`traced-on`).
fn run_traced_config(variant: &'static str, jobs: usize, cores: usize, reps: usize) -> Sample {
    use qes_core::{NoopObserver, TraceObserver};
    let trace = WebSearchWorkload::new(arrival_rate_at(UTILIZATION, cores))
        .generate_exact(jobs, 42)
        .expect("bench workload generates");
    let end = trace.last_deadline().expect("non-empty trace");
    let mut walls: Vec<f64> = (0..reps)
        .map(|_| {
            let cfg = SimConfig {
                num_cores: cores,
                budget: 40.0 * cores as f64,
                model: &MODEL,
                quality: &QUALITY,
                end,
                record_trace: false,
                overhead: SimDuration::ZERO,
            };
            let mut p = DesPolicy::new();
            let t = Instant::now();
            let (report, _) = if variant == "traced-on" {
                let mut obs = TraceObserver::new();
                Simulator::run_observed(&cfg, &mut p, &trace, &mut obs)
            } else {
                Simulator::run_observed(&cfg, &mut p, &trace, &mut NoopObserver)
            };
            let wall = t.elapsed().as_secs_f64();
            assert_eq!(report.jobs_total(), jobs, "engine lost jobs");
            wall
        })
        .collect();
    walls.sort_by(|a, b| a.total_cmp(b));
    let wall_s = walls[walls.len() / 2];
    Sample {
        policy: "des",
        jobs,
        cores,
        variant: Some(variant),
        name: None,
        wall_s,
        jobs_per_sec: jobs as f64 / wall_s,
    }
}

/// One registry-observed run at a small configuration, exported as
/// `BENCH_sim_metrics.json` next to the throughput report: the named
/// counters a bench consumer can diff across commits.
fn write_metrics_snapshot() {
    use qes_core::MetricsRegistry;
    let jobs = 10_000;
    let trace = WebSearchWorkload::new(arrival_rate_at(UTILIZATION, 8))
        .generate_exact(jobs, 42)
        .expect("bench workload generates");
    let end = trace.last_deadline().expect("non-empty trace");
    let cfg = SimConfig {
        num_cores: 8,
        budget: 320.0,
        model: &MODEL,
        quality: &QUALITY,
        end,
        record_trace: false,
        overhead: SimDuration::ZERO,
    };
    let mut p = DesPolicy::new();
    let mut reg = MetricsRegistry::new();
    let (report, _) = Simulator::run_observed(&cfg, &mut p, &trace, &mut reg);
    report.export_metrics(&mut reg);
    let root = concat!(env!("CARGO_MANIFEST_DIR"), "/../..");
    let path = format!("{root}/BENCH_sim_metrics.json");
    match std::fs::write(&path, reg.to_json()) {
        Ok(()) => println!("sim_engine: wrote {path}"),
        Err(e) => eprintln!("sim_engine: could not write {path}: {e}"),
    }
}

/// Measure the ⟨policy, rate⟩ experiment sweep at a fixed lane count:
/// the data-parallel loop every §V figure and the scorecard run through.
/// `jobs_per_sec` here counts *sweep points* per second; the
/// `sweep/parallel` ÷ `sweep/sequential` ratio is the thread-pool
/// speedup on this host (1.0 on a single-core runner — see the `cores`
/// field for the lane count used).
fn run_sweep_config(name: &'static str, threads: usize, reps: usize) -> Sample {
    use qes_experiments::config::{ExperimentConfig, PolicyKind};
    use qes_experiments::sweep::sweep;

    // Big enough that one sequential pass takes ~1 s (so a 4-core
    // speedup is far above timer noise), small enough for CI.
    let base = ExperimentConfig::quick().with_sim_seconds(45.0);
    let kinds = [
        PolicyKind::Des,
        PolicyKind::Fcfs,
        PolicyKind::FcfsWf,
        PolicyKind::Sjf,
    ];
    let rates = [40.0, 70.0, 100.0, 130.0, 160.0, 190.0, 220.0, 250.0];
    let points = kinds.len() * rates.len();
    let mut walls: Vec<f64> = (0..reps)
        .map(|_| {
            let t = Instant::now();
            let pts = rayon::with_threads(threads, || sweep(&base, &kinds, &rates, 42));
            let wall = t.elapsed().as_secs_f64();
            assert_eq!(pts.len(), points, "sweep lost points");
            wall
        })
        .collect();
    walls.sort_by(|a, b| a.total_cmp(b));
    let wall_s = walls[walls.len() / 2];
    Sample {
        policy: "sweep",
        jobs: points,
        cores: threads,
        variant: None,
        name: Some(name),
        wall_s,
        jobs_per_sec: points as f64 / wall_s,
    }
}

/// Measure one sharded-cluster run: a 1M-job diurnal "millions of users"
/// stream routed over `shards` 8-core machines (JSQ), every shard an
/// independent DES simulation fanned out on the rayon pool. The
/// `cluster/1M_jobs/4_shards` ÷ `cluster/1M_jobs/1_shards` ratio is the
/// shard-parallel speedup on this host (~1.0 on a single-core runner —
/// the `cores` field records the lane count used).
/// Which front-end machinery a cluster bench row prices.
#[derive(Clone, Copy, PartialEq)]
enum ClusterMode {
    /// JSQ routing over healthy shards — the PR 8 baseline.
    Healthy,
    /// Feedback routing over a seeded crash/brownout plan (PR 9).
    Faulty,
    /// Healthy shards behind the full overload-protection stack:
    /// slack-floor admission, exponential retry budgets and request
    /// hedging — prices the dispatch pre-pass plus duel settlement.
    Overload,
}

fn run_cluster_config(
    name: &'static str,
    shards: usize,
    jobs: usize,
    reps: usize,
    mode: ClusterMode,
) -> Sample {
    use qes_cluster::{
        AdmissionPolicy, ClusterEngine, FaultPlan, HedgePolicy, OverloadPolicy, RetryPolicy,
        RoutingPolicy,
    };
    use qes_workload::DiurnalWorkload;

    // Total mean rate sized for ~90 % utilization across 4 shards of
    // 8 cores at the nominal 2 GHz, swinging ±50 % every 15 min.
    let rate = arrival_rate_at(UTILIZATION, 8) * 4.0;
    let trace = DiurnalWorkload::millions_of_users(rate)
        .generate_exact(jobs, 42)
        .expect("bench workload generates");
    let end = trace.last_deadline().expect("non-empty trace");
    // The faulty row prices the failover machinery: feedback routing
    // over a seeded crash/brownout plan (~1 outage per shard per 100 s)
    // instead of JSQ over healthy shards.
    let engine = match mode {
        ClusterMode::Healthy => ClusterEngine::new(shards).with_routing(RoutingPolicy::Jsq),
        ClusterMode::Faulty => ClusterEngine::new(shards)
            .with_routing(RoutingPolicy::Feedback)
            .with_fault_plan(FaultPlan::seeded(shards, end, 42, 97.0, 3.0, 0.5)),
        // Sustainable per-shard capacity: 8 cores at the nominal 2 GHz
        // the 40 W/core budget allows under the paper's P = 5 s^2 model.
        ClusterMode::Overload => ClusterEngine::new(shards)
            .with_routing(RoutingPolicy::Feedback)
            .with_overload(OverloadPolicy {
                admission: AdmissionPolicy::SlackFloor {
                    floor: 0.05,
                    capacity_ghz: 16.0,
                },
                retry: RetryPolicy::exponential(3, SimDuration::from_millis(5)),
                hedge: HedgePolicy::SlackFraction { fraction: 0.5 },
            }),
    };
    let mut walls: Vec<f64> = (0..reps)
        .map(|_| {
            let cfg = SimConfig {
                num_cores: 8,
                budget: 40.0 * 8.0,
                model: &MODEL,
                quality: &QUALITY,
                end,
                record_trace: false,
                overhead: SimDuration::ZERO,
            };
            let t = Instant::now();
            let rep = engine.run(&cfg, &trace, |_| Box::new(DesPolicy::new()));
            let wall = t.elapsed().as_secs_f64();
            assert_eq!(
                rep.merged.jobs_total() as u64 + rep.jobs_dropped + rep.jobs_rejected,
                jobs as u64,
                "cluster lost jobs"
            );
            wall
        })
        .collect();
    walls.sort_by(|a, b| a.total_cmp(b));
    let wall_s = walls[walls.len() / 2];
    Sample {
        policy: "cluster",
        jobs,
        cores: rayon::current_num_threads().max(1),
        variant: None,
        name: Some(name),
        wall_s,
        jobs_per_sec: jobs as f64 / wall_s,
    }
}

fn read_baseline(path: &str) -> Option<String> {
    std::fs::read_to_string(path).ok()
}

/// Extract `"key": {... "jobs_per_sec": X}` from a previous report.
fn baseline_rate(json: &str, key: &str) -> Option<f64> {
    let at = json.find(&format!("\"{key}\""))?;
    let tail = &json[at..];
    let field = tail.find("\"jobs_per_sec\":")?;
    let rest = tail[field + 15..].trim_start();
    let end = rest.find([',', '}', '\n'])?;
    rest[..end].trim().parse().ok()
}

fn bench_sim_engine(c: &mut Criterion) {
    if c.is_smoke() {
        // Smoke mode (`cargo bench -- --test`): one tiny run per policy,
        // no JSON, so CI exercises the path in seconds.
        for policy in ["fcfs", "des"] {
            let s = run_config(policy, 1_000, 4, 1);
            println!(
                "sim_engine/{} (smoke): ok ({:.0} jobs/s)",
                s.key(),
                s.jobs_per_sec
            );
        }
        return;
    }

    let full = std::env::var("QES_BENCH_FULL").is_ok_and(|v| v == "1");
    let mut grid: Vec<(&'static str, usize, usize, Option<&'static str>)> = vec![
        ("fcfs", 100_000, 4, None),
        ("fcfs", 100_000, 8, None),
        ("fcfs", 100_000, 16, None),
        ("fcfs", 100_000, 32, None),
        ("des", 100_000, 4, None),
        ("des", 100_000, 8, None),
        ("des", 100_000, 16, None),
        ("des", 100_000, 32, None),
        // Ablation at the headline grid point: per-event/full-recompute
        // (the old behaviour) vs grouped/full vs grouped/incremental.
        ("des-pe", 100_000, 8, None),
        ("des-full", 100_000, 8, None),
        // Overloaded regime: the budget binds on every invocation, so the
        // run time is dominated by the budget-bounded Online-QE solves.
        ("des", 100_000, 8, Some("overload")),
        ("des-full", 100_000, 8, Some("overload")),
    ];
    if full {
        grid.push(("fcfs", 1_000_000, 8, None));
        grid.push(("des", 1_000_000, 8, None));
    }

    let baseline = std::env::var("QES_BENCH_BASELINE")
        .ok()
        .and_then(|p| read_baseline(&p));

    let mut samples = Vec::new();
    for (policy, jobs, cores, variant) in grid {
        let reps = if jobs >= 1_000_000 { 1 } else { 3 };
        let s = run_config_at(policy, jobs, cores, reps, variant);
        let speedup = baseline
            .as_deref()
            .and_then(|b| baseline_rate(b, &s.key()))
            .map(|base| format!("  [{:.2}x vs baseline]", s.jobs_per_sec / base))
            .unwrap_or_default();
        println!(
            "sim_engine/{}: {:.3} s  ({:.0} jobs/s){}",
            s.key(),
            s.wall_s,
            s.jobs_per_sec,
            speedup
        );
        samples.push(s);
    }

    // Observability rows at the headline grid point. `traced-off` runs
    // the generic observed path with an explicit `NoopObserver` — its
    // rate vs the plain `des/100k_jobs/8_cores` row is the compile-out
    // guarantee (≤ 2 % apart). `traced-on` pays for a live
    // `TraceObserver` ring buffer.
    for variant in ["traced-off", "traced-on"] {
        let s = run_traced_config(variant, 100_000, 8, 3);
        let speedup = baseline
            .as_deref()
            .and_then(|b| baseline_rate(b, &s.key()))
            .map(|base| format!("  [{:.2}x vs baseline]", s.jobs_per_sec / base))
            .unwrap_or_default();
        println!(
            "sim_engine/{}: {:.3} s  ({:.0} jobs/s){}",
            s.key(),
            s.wall_s,
            s.jobs_per_sec,
            speedup
        );
        samples.push(s);
    }
    write_metrics_snapshot();

    // Thread-pool speedup of the experiment loop itself: the same sweep
    // once at one lane (`QES_THREADS=1` semantics) and once at this
    // host's default lane count. Determinism of the *results* across the
    // two is enforced by tests/parallel_determinism.rs; this records the
    // wall-clock win.
    let seq = run_sweep_config("sweep/sequential", 1, 3);
    println!(
        "sim_engine/{}: {:.3} s  ({:.1} points/s)",
        seq.key(),
        seq.wall_s,
        seq.jobs_per_sec
    );
    let lanes = rayon::current_num_threads().max(1);
    let par = run_sweep_config("sweep/parallel", lanes, 3);
    println!(
        "sim_engine/{}: {:.3} s  ({:.1} points/s)  [{:.2}x over sequential, {} lanes]",
        par.key(),
        par.wall_s,
        par.jobs_per_sec,
        par.jobs_per_sec / seq.jobs_per_sec,
        lanes
    );
    samples.push(seq);
    samples.push(par);

    // Sharded-cluster scaling: one 1M-job diurnal stream on 1 vs 4
    // simulated machines. On a ≥4-core host the 4-shard fan-out lands
    // ≥1.5x over 1 shard; on a single-core runner both run on one lane
    // and the ratio is ~1.0 (like the sweep rows above).
    let c1 = run_cluster_config(
        "cluster/1M_jobs/1_shards",
        1,
        1_000_000,
        1,
        ClusterMode::Healthy,
    );
    println!(
        "sim_engine/{}: {:.3} s  ({:.0} jobs/s)",
        c1.key(),
        c1.wall_s,
        c1.jobs_per_sec
    );
    let c4 = run_cluster_config(
        "cluster/1M_jobs/4_shards",
        4,
        1_000_000,
        1,
        ClusterMode::Healthy,
    );
    println!(
        "sim_engine/{}: {:.3} s  ({:.0} jobs/s)  [{:.2}x over 1 shard, {} lanes]",
        c4.key(),
        c4.wall_s,
        c4.jobs_per_sec,
        c4.jobs_per_sec / c1.jobs_per_sec,
        rayon::current_num_threads().max(1)
    );
    // Same stream under fault injection: the price of epoch-segmented
    // shards plus failover dispatch, relative to the healthy 4-shard row.
    let cf = run_cluster_config(
        "cluster/1M_jobs/4_shards/faulty",
        4,
        1_000_000,
        1,
        ClusterMode::Faulty,
    );
    println!(
        "sim_engine/{}: {:.3} s  ({:.0} jobs/s)  [{:.2}x of healthy 4-shard]",
        cf.key(),
        cf.wall_s,
        cf.jobs_per_sec,
        cf.jobs_per_sec / c4.jobs_per_sec
    );
    // Same stream behind the overload-protection stack: the price of the
    // admission/retry/hedge dispatch pre-pass and first-wins settlement.
    let co = run_cluster_config(
        "cluster/1M_jobs/4_shards/overload",
        4,
        1_000_000,
        1,
        ClusterMode::Overload,
    );
    println!(
        "sim_engine/{}: {:.3} s  ({:.0} jobs/s)  [{:.2}x of healthy 4-shard]",
        co.key(),
        co.wall_s,
        co.jobs_per_sec,
        co.jobs_per_sec / c4.jobs_per_sec
    );
    samples.push(c1);
    samples.push(c4);
    samples.push(cf);
    samples.push(co);

    write_report(&samples, baseline.as_deref());
}

fn write_report(samples: &[Sample], baseline: Option<&str>) {
    let root = concat!(env!("CARGO_MANIFEST_DIR"), "/../..");
    let path = format!("{root}/BENCH_sim_engine.json");
    let mut out = String::from("{\n  \"bench\": \"sim_engine\",\n  \"units\": \"simulated jobs per wall-clock second\",\n  \"results\": {\n");
    for (i, s) in samples.iter().enumerate() {
        let comma = if i + 1 < samples.len() { "," } else { "" };
        let _ = writeln!(
            out,
            "    \"{}\": {{ \"policy\": \"{}\", \"jobs\": {}, \"cores\": {}, \"wall_s\": {:.4}, \"jobs_per_sec\": {:.0} }}{}",
            s.key(),
            s.policy,
            s.jobs,
            s.cores,
            s.wall_s,
            s.jobs_per_sec,
            comma
        );
    }
    out.push_str("  }");
    if let Some(base) = baseline {
        // Embed the prior report (indented) so the committed file carries
        // its own point of comparison.
        out.push_str(",\n  \"baseline\": ");
        let indented = base.trim_end().replace('\n', "\n  ");
        out.push_str(&indented);
    }
    out.push_str("\n}\n");
    match std::fs::write(&path, out) {
        Ok(()) => println!("sim_engine: wrote {path}"),
        Err(e) => eprintln!("sim_engine: could not write {path}: {e}"),
    }
}

criterion_group!(sim_engine, bench_sim_engine);
criterion_main!(sim_engine);
