//! Power models (paper §II-B, §V-B, §V-G).
//!
//! Per-core power is `P = P_dynamic + P_static` with `P_dynamic = a·s^β`
//! (convex in the speed `s`, β > 1) and constant `P_static = b`. The
//! simulation sections of the paper compare algorithms on dynamic power
//! alone (`b` is a common offset); the real-system validation (§V-G) uses
//! the fitted model `P = 2.6075·s^1.791 + 9.2562` over the Opteron 2380's
//! four discrete speeds.

use crate::error::QesError;

/// A speed→power model for one core.
pub trait PowerModel: Send + Sync {
    /// Dynamic power (W) at speed `s` (GHz).
    fn dynamic_power(&self, s: f64) -> f64;

    /// Static power (W), a speed-independent constant.
    fn static_power(&self) -> f64;

    /// Total power at speed `s`.
    fn power(&self, s: f64) -> f64 {
        self.dynamic_power(s) + self.static_power()
    }

    /// Largest speed whose *dynamic* power does not exceed `p` (W).
    ///
    /// This is the inverse the schedulers use to convert a power budget
    /// into a speed cap.
    fn speed_for_dynamic_power(&self, p: f64) -> f64;

    /// Energy (J) of running at speed `s` for `secs` seconds, dynamic
    /// component only (the paper's comparison metric, §II-B).
    fn dynamic_energy(&self, s: f64, secs: f64) -> f64 {
        self.dynamic_power(s) * secs
    }
}

/// The polynomial model `P_dynamic = a·s^β`, `P_static = b`.
#[derive(Clone, Copy, Debug)]
pub struct PolynomialPower {
    /// Scaling factor `a > 0`.
    pub a: f64,
    /// Power exponent `β > 1` (convexity).
    pub beta: f64,
    /// Static power `b ≥ 0`.
    pub b: f64,
}

impl PolynomialPower {
    /// The paper's simulation model: `P = 5·s²`, no static power (§V-B).
    pub const PAPER_SIM: PolynomialPower = PolynomialPower {
        a: 5.0,
        beta: 2.0,
        b: 0.0,
    };

    /// The paper's fitted real-system model (§V-G):
    /// `P = 2.6075·s^1.791 + 9.2562`.
    pub const PAPER_REAL: PolynomialPower = PolynomialPower {
        a: 2.6075,
        beta: 1.791,
        b: 9.2562,
    };

    /// Construct with validation.
    pub fn new(a: f64, beta: f64, b: f64) -> Result<Self, QesError> {
        if !a.is_finite() || a <= 0.0 {
            return Err(QesError::BadParameter {
                what: "power scaling factor a",
                value: a,
            });
        }
        if !beta.is_finite() || beta <= 1.0 {
            return Err(QesError::BadParameter {
                what: "power exponent beta",
                value: beta,
            });
        }
        if !b.is_finite() || b < 0.0 {
            return Err(QesError::BadParameter {
                what: "static power b",
                value: b,
            });
        }
        Ok(PolynomialPower { a, beta, b })
    }
}

impl PowerModel for PolynomialPower {
    #[inline]
    fn dynamic_power(&self, s: f64) -> f64 {
        let s = s.max(0.0);
        // `powf` dominates the simulation engine's slice integration for
        // the common cubic/square exponents; special-case them (exact
        // float compares are fine — the constants come from the paper's
        // models, not arithmetic).
        if self.beta == 2.0 {
            self.a * s * s
        } else if self.beta == 3.0 {
            self.a * s * s * s
        } else {
            self.a * s.powf(self.beta)
        }
    }

    #[inline]
    fn static_power(&self) -> f64 {
        self.b
    }

    #[inline]
    fn speed_for_dynamic_power(&self, p: f64) -> f64 {
        if p <= 0.0 {
            return 0.0;
        }
        if self.beta == 2.0 {
            (p / self.a).sqrt()
        } else {
            (p / self.a).powf(1.0 / self.beta)
        }
    }
}

/// A discrete speed set: the core may only run at one of a fixed list of
/// speeds, each with an associated total power draw (§V-F/§V-G).
///
/// Power at a discrete speed comes from an explicit table (measured values,
/// as with the Opteron) rather than from a formula, but the type can also
/// be derived from any [`PowerModel`].
#[derive(Clone, Debug)]
pub struct DiscreteSpeedSet {
    /// `(speed GHz, total power W)` pairs sorted ascending by speed.
    levels: Vec<(f64, f64)>,
    /// Static power assumed included in each table entry.
    static_power: f64,
}

impl DiscreteSpeedSet {
    /// The AMD Opteron 2380 table from §V-G: speeds {0.8, 1.3, 1.8, 2.5}
    /// GHz drawing {11.06, 13.275, 16.85, 22.69} W total per core.
    pub fn opteron_2380() -> Self {
        DiscreteSpeedSet::from_table(
            vec![(0.8, 11.06), (1.3, 13.275), (1.8, 16.85), (2.5, 22.69)],
            0.0,
        )
        .expect("static table is valid")
    }

    /// Build from explicit `(speed, power)` pairs. `static_power` is the
    /// portion of each entry that is speed-independent (subtracted when
    /// reporting dynamic power).
    pub fn from_table(mut levels: Vec<(f64, f64)>, static_power: f64) -> Result<Self, QesError> {
        if levels.is_empty() {
            return Err(QesError::BadParameter {
                what: "discrete speed count",
                value: 0.0,
            });
        }
        for &(s, p) in &levels {
            if !s.is_finite() || s <= 0.0 {
                return Err(QesError::BadParameter {
                    what: "discrete speed",
                    value: s,
                });
            }
            if !p.is_finite() || p < static_power {
                return Err(QesError::BadParameter {
                    what: "discrete power",
                    value: p,
                });
            }
        }
        levels.sort_by(|x, y| x.0.total_cmp(&y.0));
        levels.dedup_by(|a, b| (a.0 - b.0).abs() < 1e-12);
        Ok(DiscreteSpeedSet {
            levels,
            static_power,
        })
    }

    /// Derive from a continuous model by sampling the given speeds.
    pub fn from_model(model: &dyn PowerModel, speeds: &[f64]) -> Result<Self, QesError> {
        let levels = speeds.iter().map(|&s| (s, model.power(s))).collect();
        DiscreteSpeedSet::from_table(levels, model.static_power())
    }

    /// Ascending `(speed, power)` levels.
    #[inline]
    pub fn levels(&self) -> &[(f64, f64)] {
        &self.levels
    }

    /// Ascending list of the available speeds.
    pub fn speeds(&self) -> Vec<f64> {
        self.levels.iter().map(|&(s, _)| s).collect()
    }

    /// Fastest available speed.
    #[inline]
    pub fn max_speed(&self) -> f64 {
        self.levels.last().unwrap().0
    }

    /// Slowest available speed.
    #[inline]
    pub fn min_speed(&self) -> f64 {
        self.levels.first().unwrap().0
    }

    /// Smallest discrete speed `≥ s`, or `None` if `s` exceeds the fastest
    /// level. This is the §V-F rectification's first choice.
    pub fn round_up(&self, s: f64) -> Option<f64> {
        self.levels
            .iter()
            .map(|&(sp, _)| sp)
            .find(|&sp| sp + 1e-12 >= s)
    }

    /// Largest discrete speed `≤ s`, or `None` if `s` is below the slowest
    /// level. The §V-F fallback when the budget cannot fund the round-up.
    pub fn round_down(&self, s: f64) -> Option<f64> {
        self.levels
            .iter()
            .rev()
            .map(|&(sp, _)| sp)
            .find(|&sp| sp <= s + 1e-12)
    }

    /// Total power at a discrete speed (nearest table entry; exact for
    /// speeds in the table, which is the only use in the schedulers).
    pub fn power_at(&self, s: f64) -> f64 {
        if s <= 0.0 {
            return 0.0;
        }
        self.levels
            .iter()
            .min_by(|x, y| (x.0 - s).abs().total_cmp(&(y.0 - s).abs()))
            .map(|&(_, p)| p)
            .unwrap_or(0.0)
    }

    /// Dynamic power at a discrete speed (table power minus static share).
    pub fn dynamic_power_at(&self, s: f64) -> f64 {
        if s <= 0.0 {
            return 0.0;
        }
        (self.power_at(s) - self.static_power).max(0.0)
    }

    /// Fastest speed whose *dynamic* power fits within `p` watts, or `None`
    /// if even the slowest level exceeds the budget.
    pub fn speed_for_dynamic_power(&self, p: f64) -> Option<f64> {
        self.levels
            .iter()
            .rev()
            .find(|&&(_, pw)| pw - self.static_power <= p + 1e-9)
            .map(|&(s, _)| s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_sim_model_numbers() {
        let m = PolynomialPower::PAPER_SIM;
        // §V-B: H=320 W over 16 cores → 20 W/core → s = sqrt(20/5) = 2 GHz.
        assert!((m.dynamic_power(2.0) - 20.0).abs() < 1e-12);
        assert!((m.speed_for_dynamic_power(20.0) - 2.0).abs() < 1e-12);
        assert_eq!(m.static_power(), 0.0);
    }

    #[test]
    fn inverse_is_right_inverse() {
        let m = PolynomialPower::PAPER_REAL;
        for &p in &[1.0, 5.0, 11.0, 20.0, 50.0] {
            let s = m.speed_for_dynamic_power(p);
            assert!((m.dynamic_power(s) - p).abs() < 1e-9, "p={p}");
        }
        assert_eq!(m.speed_for_dynamic_power(0.0), 0.0);
        assert_eq!(m.speed_for_dynamic_power(-3.0), 0.0);
    }

    #[test]
    fn power_is_convex_in_speed() {
        let m = PolynomialPower::PAPER_SIM;
        // Midpoint convexity on a few chords.
        for &(a, b) in &[(0.0, 4.0), (1.0, 3.0), (0.5, 2.5)] {
            let mid = 0.5 * (a + b);
            assert!(
                m.dynamic_power(mid) <= 0.5 * (m.dynamic_power(a) + m.dynamic_power(b)) + 1e-12
            );
        }
    }

    #[test]
    fn validation_rejects_bad_parameters() {
        assert!(PolynomialPower::new(0.0, 2.0, 0.0).is_err());
        assert!(PolynomialPower::new(5.0, 1.0, 0.0).is_err());
        assert!(PolynomialPower::new(5.0, 2.0, -1.0).is_err());
        assert!(PolynomialPower::new(5.0, 2.0, 9.0).is_ok());
    }

    #[test]
    fn opteron_table_matches_paper() {
        let d = DiscreteSpeedSet::opteron_2380();
        assert_eq!(d.levels().len(), 4);
        assert!((d.min_speed() - 0.8).abs() < 1e-12);
        assert!((d.max_speed() - 2.5).abs() < 1e-12);
        assert!((d.power_at(1.8) - 16.85).abs() < 1e-12);
    }

    #[test]
    fn rounding_picks_neighbouring_levels() {
        let d = DiscreteSpeedSet::opteron_2380();
        assert_eq!(d.round_up(1.0), Some(1.3));
        assert_eq!(d.round_up(1.3), Some(1.3));
        assert_eq!(d.round_up(2.6), None);
        assert_eq!(d.round_down(1.0), Some(0.8));
        assert_eq!(d.round_down(0.5), None);
        assert_eq!(d.round_down(2.5), Some(2.5));
    }

    #[test]
    fn discrete_speed_for_power() {
        let d = DiscreteSpeedSet::opteron_2380();
        assert_eq!(d.speed_for_dynamic_power(17.0), Some(1.8));
        assert_eq!(d.speed_for_dynamic_power(22.69), Some(2.5));
        assert_eq!(d.speed_for_dynamic_power(5.0), None);
    }

    #[test]
    fn from_model_sampling() {
        let m = PolynomialPower::PAPER_SIM;
        let d = DiscreteSpeedSet::from_model(&m, &[1.0, 2.0, 3.0]).unwrap();
        assert!((d.power_at(2.0) - 20.0).abs() < 1e-12);
        assert!((d.dynamic_power_at(3.0) - 45.0).abs() < 1e-12);
    }

    #[test]
    fn empty_table_rejected() {
        assert!(DiscreteSpeedSet::from_table(vec![], 0.0).is_err());
    }
}
