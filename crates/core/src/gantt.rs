//! ASCII Gantt rendering for schedules.
//!
//! A scheduler's output is hard to eyeball as a slice list; a Gantt chart
//! in the terminal makes job placement, speeds and idle gaps obvious.
//! Used by the examples and invaluable when debugging policies.
//!
//! ```text
//! core 0 |000000001111111···222|   0–9 = job id mod 10, · = idle
//! core 1 |33333·····444444444··|
//!        0ms                 210ms
//! ```

use std::fmt::Write as _;

use crate::schedule::{CoreSchedule, Schedule};
use crate::time::SimTime;

/// Options for [`render_gantt`].
#[derive(Clone, Copy, Debug)]
pub struct GanttOptions {
    /// Character columns for the time axis.
    pub width: usize,
    /// Show a per-slice speed row underneath each core.
    pub show_speeds: bool,
}

impl Default for GanttOptions {
    fn default() -> Self {
        GanttOptions {
            width: 72,
            show_speeds: false,
        }
    }
}

/// Render a multicore schedule as an ASCII Gantt chart over `[from, to)`.
pub fn render_gantt(s: &Schedule, from: SimTime, to: SimTime, opt: &GanttOptions) -> String {
    let mut out = String::new();
    if to <= from || opt.width == 0 {
        return out;
    }
    let span = (to.as_micros() - from.as_micros()) as f64;
    for (i, core) in s.cores().iter().enumerate() {
        let (jobs_row, speed_row) = render_core(core, from, to, span, opt.width);
        let _ = writeln!(out, "core {i:>2} |{jobs_row}|");
        if opt.show_speeds {
            let _ = writeln!(out, "        |{speed_row}|");
        }
    }
    let label_from = format!("{:.0}ms", from.as_millis_f64());
    let label_to = format!("{:.0}ms", to.as_millis_f64());
    let pad = (opt.width + 1).saturating_sub(label_from.len() + label_to.len());
    let _ = writeln!(
        out,
        "        {label_from}{}{label_to}",
        " ".repeat(pad.max(1))
    );
    out
}

fn render_core(
    core: &CoreSchedule,
    from: SimTime,
    to: SimTime,
    span: f64,
    width: usize,
) -> (String, String) {
    let mut jobs = vec!['\u{B7}'; width]; // '·'
    let mut speeds = vec![' '; width];
    for s in core.slices() {
        if s.end <= from || s.start >= to {
            continue;
        }
        let a = s.start.max(from).as_micros() - from.as_micros();
        let b = s.end.min(to).as_micros() - from.as_micros();
        let c0 = ((a as f64 / span) * width as f64).floor() as usize;
        let c1 = (((b as f64 / span) * width as f64).ceil() as usize).min(width);
        let glyph = char::from_digit(s.job.0 % 10, 10).unwrap_or('?');
        // Speed bucket: 0–9 for 0–5 GHz in 0.5 GHz steps.
        let sp = char::from_digit(((s.speed / 0.5).round() as u32).min(9), 10).unwrap_or('9');
        for cell in c0..c1.max(c0 + 1).min(width) {
            jobs[cell] = glyph;
            speeds[cell] = sp;
        }
    }
    (jobs.into_iter().collect(), speeds.into_iter().collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::JobId;
    use crate::schedule::Slice;

    fn ms(x: u64) -> SimTime {
        SimTime::from_millis(x)
    }

    fn sched() -> Schedule {
        Schedule::new(vec![
            CoreSchedule::new(vec![
                Slice {
                    job: JobId(0),
                    start: ms(0),
                    end: ms(50),
                    speed: 2.0,
                },
                Slice {
                    job: JobId(11),
                    start: ms(60),
                    end: ms(100),
                    speed: 1.0,
                },
            ]),
            CoreSchedule::new(vec![Slice {
                job: JobId(2),
                start: ms(25),
                end: ms(75),
                speed: 0.5,
            }]),
        ])
    }

    #[test]
    fn renders_one_row_per_core_plus_axis() {
        let g = render_gantt(&sched(), ms(0), ms(100), &GanttOptions::default());
        let lines: Vec<&str> = g.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].starts_with("core  0 |"));
        assert!(lines[1].starts_with("core  1 |"));
        assert!(lines[2].contains("0ms"));
        assert!(lines[2].contains("100ms"));
    }

    #[test]
    fn glyphs_land_in_the_right_half() {
        let opt = GanttOptions {
            width: 100,
            show_speeds: false,
        };
        let g = render_gantt(&sched(), ms(0), ms(100), &opt);
        let row0: Vec<char> = g.lines().next().unwrap().chars().collect();
        // The first half of core 0 runs job 0; around 80 % runs job 11
        // (glyph '1'); idle gap in between.
        let body: String = row0[9..109].iter().collect();
        assert_eq!(body.as_bytes()[10] as char, '0');
        assert_eq!(body.as_bytes()[80] as char, '1');
        assert_eq!(body.chars().nth(55), Some('\u{B7}'));
    }

    #[test]
    fn speed_rows_show_buckets() {
        let opt = GanttOptions {
            width: 50,
            show_speeds: true,
        };
        let g = render_gantt(&sched(), ms(0), ms(100), &opt);
        let lines: Vec<&str> = g.lines().collect();
        assert_eq!(lines.len(), 5); // 2 cores × 2 rows + axis
                                    // Core 0's first slice at 2 GHz → bucket '4'.
        assert!(lines[1].contains('4'));
        // Core 1 at 0.5 GHz → bucket '1'.
        assert!(lines[3].contains('1'));
    }

    #[test]
    fn window_clipping() {
        // Render only [60, 100): job 0 is out of view.
        let g = render_gantt(&sched(), ms(60), ms(100), &GanttOptions::default());
        let row0 = g.lines().next().unwrap();
        let body = row0.split('|').nth(1).unwrap();
        assert!(!body.contains('0'), "{body}");
        assert!(body.contains('1'));
    }

    #[test]
    fn degenerate_windows_render_empty() {
        let g = render_gantt(&sched(), ms(100), ms(100), &GanttOptions::default());
        assert!(g.is_empty());
        let g = render_gantt(&sched(), ms(10), ms(5), &GanttOptions::default());
        assert!(g.is_empty());
    }
}
