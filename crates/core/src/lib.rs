#![warn(missing_docs)]

//! # qes-core — domain model for quality-energy scheduling
//!
//! Foundation crate for the reproduction of *"Energy-Efficient Scheduling
//! for Best-Effort Interactive Services to Achieve High Response Quality"*
//! (Du, Sun, He, He, Bader, Zhang — IPDPS 2013).
//!
//! This crate defines the vocabulary every other crate builds on:
//!
//! * [`time`] — simulated time as integer microseconds ([`SimTime`],
//!   [`SimDuration`]), immune to floating-point event-ordering hazards.
//! * [`job`] — best-effort interactive requests ([`Job`], [`JobSet`]) with
//!   release times, deadlines, service demands in *processing units*
//!   (1 GHz · 1 ms = 1 unit, per the paper's §V-B convention), and the
//!   partial-evaluation flag.
//! * [`quality`] — monotonically increasing, strictly concave quality
//!   functions mapping processed volume to response quality (paper Eq. 1).
//! * [`power`] — the dynamic power model `P = a·s^β` (+ optional static
//!   power `b`), its inverse, and discrete speed sets.
//! * [`speed`] — piecewise-constant speed plans and volume/energy integrals.
//! * [`schedule`] — multicore schedules (non-migratory slices) plus
//!   feasibility validation against a power budget.
//! * [`metric`] — the composite lexicographic ⟨quality, energy⟩ metric.

pub mod error;
pub mod gantt;
pub mod job;
pub mod metric;
pub mod obs;
pub mod piecewise;
pub mod power;
pub mod quality;
pub mod schedule;
pub mod speed;
pub mod time;

pub use error::QesError;
pub use gantt::{render_gantt, GanttOptions};
pub use job::{Job, JobId, JobSet};
pub use metric::QualityEnergy;
pub use obs::{
    DequeueKind, Event, MetricsRegistry, NoopObserver, Observer, OutageKind, SettleOutcome,
    TraceObserver, TriggerCause,
};
pub use piecewise::PiecewiseLinearQuality;
pub use power::{DiscreteSpeedSet, PolynomialPower, PowerModel};
pub use quality::{ExpQuality, LinearQuality, LogQuality, QualityFunction, StepQuality};
pub use schedule::{CoreSchedule, Schedule, Slice};
pub use speed::{SpeedPlan, SpeedSegment};
pub use time::{SimDuration, SimTime};

/// Processing units produced by a 1 GHz core in one second (paper §V-B:
/// "the processing capability of a core executing at 1 GHz in one second
/// \[is\] 1000 processing units").
pub const UNITS_PER_GHZ_SECOND: f64 = 1000.0;

/// Work rate (processing units per microsecond) of a core at `speed_ghz`.
///
/// A 2 GHz core produces 2000 units/s = 0.002 units/µs.
#[inline]
pub fn rate_units_per_us(speed_ghz: f64) -> f64 {
    speed_ghz * UNITS_PER_GHZ_SECOND / 1e6
}

/// Volume (processing units) produced at `speed_ghz` over `dur`.
#[inline]
pub fn volume(speed_ghz: f64, dur: SimDuration) -> f64 {
    rate_units_per_us(speed_ghz) * dur.as_micros() as f64
}

/// Speed (GHz) required to produce `units` of work within `dur`.
///
/// Returns `f64::INFINITY` for a zero-length window with positive work.
#[inline]
pub fn speed_for_volume(units: f64, dur: SimDuration) -> f64 {
    if units <= 0.0 {
        return 0.0;
    }
    let us = dur.as_micros() as f64;
    if us <= 0.0 {
        return f64::INFINITY;
    }
    units * 1e6 / (UNITS_PER_GHZ_SECOND * us)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rate_matches_paper_convention() {
        // 1 GHz for one second => 1000 units.
        let one_sec = SimDuration::from_secs_f64(1.0);
        assert!((volume(1.0, one_sec) - 1000.0).abs() < 1e-9);
        // 2 GHz for one second => 2000 units (paper §V-B).
        assert!((volume(2.0, one_sec) - 2000.0).abs() < 1e-9);
    }

    #[test]
    fn mean_job_at_default_speed_fits_deadline() {
        // Mean demand 192 units at 2 GHz takes 96 ms < 150 ms deadline.
        let s = speed_for_volume(192.0, SimDuration::from_millis(150));
        assert!(s < 2.0);
        let t_us = 192.0 / rate_units_per_us(2.0);
        assert!((t_us - 96_000.0).abs() < 1e-6);
    }

    #[test]
    fn speed_for_volume_edge_cases() {
        assert_eq!(speed_for_volume(0.0, SimDuration::from_millis(1)), 0.0);
        assert_eq!(speed_for_volume(-5.0, SimDuration::from_millis(1)), 0.0);
        assert!(speed_for_volume(1.0, SimDuration::ZERO).is_infinite());
    }

    #[test]
    fn volume_and_speed_roundtrip() {
        let dur = SimDuration::from_millis(137);
        for &s in &[0.1, 0.8, 1.3, 2.0, 2.5, 4.0] {
            let v = volume(s, dur);
            let back = speed_for_volume(v, dur);
            assert!((back - s).abs() < 1e-9, "{s} vs {back}");
        }
    }
}
