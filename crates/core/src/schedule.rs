//! Multicore schedules and feasibility validation (paper §II-B/§II-C).
//!
//! A [`Schedule`] is a set of per-core [`Slice`]s: job `j` runs on core `i`
//! at speed `s` over `[start, end)`. The model is non-migratory — once a
//! job has a slice on a core, all its slices are on that core. Validation
//! checks every constraint the paper imposes: windows, non-overlap,
//! non-migration, the instantaneous power budget, and no over-processing.

use std::collections::HashMap;

use crate::error::QesError;
use crate::job::{JobId, JobSet};
use crate::power::PowerModel;
use crate::quality::QualityFunction;
use crate::speed::{SpeedPlan, SpeedSegment};
use crate::time::SimTime;
use crate::volume;

/// One contiguous execution of a job on a core at a constant speed.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Slice {
    /// Which job runs.
    pub job: JobId,
    /// Start instant (inclusive).
    pub start: SimTime,
    /// End instant (exclusive).
    pub end: SimTime,
    /// Core speed in GHz during the slice.
    pub speed: f64,
}

impl Slice {
    /// Work volume processed by this slice.
    #[inline]
    pub fn volume(&self) -> f64 {
        volume(self.speed, self.end.saturating_since(self.start))
    }
}

/// The slices of a single core, kept in start order.
#[derive(Clone, Debug, Default)]
pub struct CoreSchedule {
    slices: Vec<Slice>,
}

impl CoreSchedule {
    /// Build from slices (sorted by start; empty slices dropped).
    pub fn new(mut slices: Vec<Slice>) -> Self {
        slices.retain(|s| s.end > s.start && s.speed > 0.0);
        slices.sort_by_key(|s| (s.start, s.end));
        CoreSchedule { slices }
    }

    /// The slices in time order.
    #[inline]
    pub fn slices(&self) -> &[Slice] {
        &self.slices
    }

    /// True if the core never runs.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.slices.is_empty()
    }

    /// The speed profile implied by the slices.
    pub fn speed_plan(&self) -> SpeedPlan {
        SpeedPlan::new(
            self.slices
                .iter()
                .map(|s| SpeedSegment {
                    start: s.start,
                    end: s.end,
                    speed: s.speed,
                })
                .collect(),
        )
    }

    /// Volume processed per job on this core.
    pub fn volumes(&self) -> HashMap<JobId, f64> {
        let mut m = HashMap::new();
        for s in &self.slices {
            *m.entry(s.job).or_insert(0.0) += s.volume();
        }
        m
    }

    /// Dynamic energy of the core's plan.
    pub fn energy(&self, model: &dyn PowerModel) -> f64 {
        self.speed_plan().total_energy(model)
    }
}

/// A complete multicore schedule.
#[derive(Clone, Debug, Default)]
pub struct Schedule {
    cores: Vec<CoreSchedule>,
}

impl Schedule {
    /// A schedule with `m` idle cores.
    pub fn idle(m: usize) -> Self {
        Schedule {
            cores: vec![CoreSchedule::default(); m],
        }
    }

    /// Build from per-core schedules.
    pub fn new(cores: Vec<CoreSchedule>) -> Self {
        Schedule { cores }
    }

    /// Build a single-core schedule.
    pub fn single(core: CoreSchedule) -> Self {
        Schedule { cores: vec![core] }
    }

    /// Per-core schedules.
    #[inline]
    pub fn cores(&self) -> &[CoreSchedule] {
        &self.cores
    }

    /// Number of cores.
    #[inline]
    pub fn num_cores(&self) -> usize {
        self.cores.len()
    }

    /// All slices, tagged with their core index.
    pub fn all_slices(&self) -> impl Iterator<Item = (usize, &Slice)> {
        self.cores
            .iter()
            .enumerate()
            .flat_map(|(i, c)| c.slices().iter().map(move |s| (i, s)))
    }

    /// Volume processed per job across all cores.
    pub fn volumes(&self) -> HashMap<JobId, f64> {
        let mut m = HashMap::new();
        for c in &self.cores {
            for (id, v) in c.volumes() {
                *m.entry(id).or_insert(0.0) += v;
            }
        }
        m
    }

    /// Total dynamic energy (J) of the schedule.
    pub fn total_energy(&self, model: &dyn PowerModel) -> f64 {
        self.cores.iter().map(|c| c.energy(model)).sum()
    }

    /// Total quality of the schedule for `jobs` under `f`. Jobs absent from
    /// the schedule contribute `f(0)` (or 0 for non-partial jobs).
    pub fn total_quality(&self, jobs: &JobSet, f: &dyn QualityFunction) -> f64 {
        let vols = self.volumes();
        jobs.iter()
            .map(|j| f.job_quality(j, vols.get(&j.id).copied().unwrap_or(0.0)))
            .sum()
    }

    /// Instantaneous total dynamic power at `t`.
    pub fn power_at(&self, t: SimTime, model: &dyn PowerModel) -> f64 {
        self.cores
            .iter()
            .map(|c| c.speed_plan().power_at(t, model))
            .sum()
    }

    /// Validate every model constraint against `jobs`:
    ///
    /// 1. every slice's job exists;
    /// 2. slices stay within their job's `[release, deadline]` window;
    /// 3. slices on one core do not overlap;
    /// 4. no job migrates between cores;
    /// 5. no job is processed beyond its demand (+`vol_eps` units);
    /// 6. total power never exceeds `budget` (+`power_eps` W), checked at
    ///    every slice boundary (power is piecewise constant, so boundaries
    ///    suffice).
    pub fn validate(
        &self,
        jobs: &JobSet,
        model: &dyn PowerModel,
        budget: f64,
    ) -> Result<(), QesError> {
        self.validate_with_tolerance(jobs, model, budget, 1e-6, 1e-6)
    }

    /// [`Schedule::validate`] with explicit tolerances.
    pub fn validate_with_tolerance(
        &self,
        jobs: &JobSet,
        model: &dyn PowerModel,
        budget: f64,
        vol_eps: f64,
        power_eps: f64,
    ) -> Result<(), QesError> {
        let mut home: HashMap<JobId, usize> = HashMap::new();
        for (core_idx, core) in self.cores.iter().enumerate() {
            // (3) non-overlap within a core (slices are start-sorted).
            for w in core.slices().windows(2) {
                if w[1].start < w[0].end {
                    return Err(QesError::OverlappingSlices {
                        core: core_idx,
                        at: w[1].start,
                    });
                }
            }
            for s in core.slices() {
                // (1) known job; (2) window containment.
                let job = jobs.get(s.job).ok_or(QesError::UnknownJob { job: s.job })?;
                if s.start < job.release || s.end > job.deadline {
                    return Err(QesError::SliceOutsideWindow {
                        job: s.job,
                        core: core_idx,
                    });
                }
                // (4) non-migration.
                match home.get(&s.job) {
                    Some(&c0) if c0 != core_idx => {
                        return Err(QesError::Migration {
                            job: s.job,
                            first_core: c0,
                            second_core: core_idx,
                        })
                    }
                    None => {
                        home.insert(s.job, core_idx);
                    }
                    _ => {}
                }
            }
        }
        // (5) processed volume within demand.
        for (id, v) in self.volumes() {
            let job = jobs.get(id).expect("checked above");
            if v > job.demand + vol_eps {
                return Err(QesError::OverProcessed {
                    job: id,
                    processed: v,
                    demand: job.demand,
                });
            }
        }
        // (6) power budget at every boundary instant.
        let mut instants: Vec<SimTime> = self
            .all_slices()
            .flat_map(|(_, s)| [s.start, s.end])
            .collect();
        instants.sort();
        instants.dedup();
        for &t in &instants {
            let p = self.power_at(t, model);
            if p > budget + power_eps {
                return Err(QesError::PowerBudgetExceeded {
                    at: t,
                    power: p,
                    budget,
                });
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::Job;
    use crate::power::PolynomialPower;
    use crate::quality::ExpQuality;

    fn ms(x: u64) -> SimTime {
        SimTime::from_millis(x)
    }

    fn jobset() -> JobSet {
        JobSet::new(vec![
            Job::new(0, ms(0), ms(150), 200.0).unwrap(),
            Job::new(1, ms(10), ms(160), 100.0).unwrap(),
        ])
        .unwrap()
    }

    fn slice(j: u32, a: u64, b: u64, s: f64) -> Slice {
        Slice {
            job: JobId(j),
            start: ms(a),
            end: ms(b),
            speed: s,
        }
    }

    #[test]
    fn valid_schedule_passes() {
        let jobs = jobset();
        let sched = Schedule::new(vec![
            CoreSchedule::new(vec![slice(0, 0, 100, 2.0)]), // 200 units
            CoreSchedule::new(vec![slice(1, 10, 110, 1.0)]), // 100 units
        ]);
        let m = PolynomialPower::PAPER_SIM;
        sched.validate(&jobs, &m, 320.0).unwrap();
        let vols = sched.volumes();
        assert!((vols[&JobId(0)] - 200.0).abs() < 1e-9);
        assert!((vols[&JobId(1)] - 100.0).abs() < 1e-9);
    }

    #[test]
    fn rejects_window_violation() {
        let jobs = jobset();
        let sched = Schedule::single(CoreSchedule::new(vec![slice(1, 0, 50, 1.0)])); // starts before release
        let m = PolynomialPower::PAPER_SIM;
        assert!(matches!(
            sched.validate(&jobs, &m, 320.0),
            Err(QesError::SliceOutsideWindow { .. })
        ));
    }

    #[test]
    fn rejects_overlap() {
        let jobs = jobset();
        let sched = Schedule::single(CoreSchedule::new(vec![
            slice(0, 0, 50, 1.0),
            slice(1, 40, 90, 1.0),
        ]));
        let m = PolynomialPower::PAPER_SIM;
        assert!(matches!(
            sched.validate(&jobs, &m, 320.0),
            Err(QesError::OverlappingSlices { .. })
        ));
    }

    #[test]
    fn rejects_migration() {
        let jobs = jobset();
        let sched = Schedule::new(vec![
            CoreSchedule::new(vec![slice(0, 0, 50, 1.0)]),
            CoreSchedule::new(vec![slice(0, 60, 100, 1.0)]),
        ]);
        let m = PolynomialPower::PAPER_SIM;
        assert!(matches!(
            sched.validate(&jobs, &m, 320.0),
            Err(QesError::Migration { .. })
        ));
    }

    #[test]
    fn rejects_power_budget_violation() {
        let jobs = jobset();
        // Two cores at 2 GHz = 40 W > 30 W budget.
        let sched = Schedule::new(vec![
            CoreSchedule::new(vec![slice(0, 0, 100, 2.0)]),
            CoreSchedule::new(vec![slice(1, 10, 60, 2.0)]),
        ]);
        let m = PolynomialPower::PAPER_SIM;
        assert!(matches!(
            sched.validate(&jobs, &m, 30.0),
            Err(QesError::PowerBudgetExceeded { .. })
        ));
        // But it passes a 40 W budget.
        sched.validate(&jobs, &m, 40.0).unwrap();
    }

    #[test]
    fn rejects_over_processing() {
        let jobs = jobset();
        // Job 1 demands 100 units; 2 GHz × 100 ms = 200 units.
        let sched = Schedule::single(CoreSchedule::new(vec![slice(1, 10, 110, 2.0)]));
        let m = PolynomialPower::PAPER_SIM;
        assert!(matches!(
            sched.validate(&jobs, &m, 320.0),
            Err(QesError::OverProcessed { .. })
        ));
    }

    #[test]
    fn rejects_unknown_job() {
        let jobs = jobset();
        let sched = Schedule::single(CoreSchedule::new(vec![slice(7, 0, 10, 1.0)]));
        let m = PolynomialPower::PAPER_SIM;
        assert!(matches!(
            sched.validate(&jobs, &m, 320.0),
            Err(QesError::UnknownJob { .. })
        ));
    }

    #[test]
    fn quality_and_energy_aggregate() {
        let jobs = jobset();
        let sched = Schedule::new(vec![
            CoreSchedule::new(vec![slice(0, 0, 100, 2.0)]),
            CoreSchedule::new(vec![slice(1, 10, 110, 1.0)]),
        ]);
        let m = PolynomialPower::PAPER_SIM;
        let q = ExpQuality::PAPER_DEFAULT;
        // Energy: 20 W × 0.1 s + 5 W × 0.1 s = 2.5 J.
        assert!((sched.total_energy(&m) - 2.5).abs() < 1e-9);
        let quality = sched.total_quality(&jobs, &q);
        let expect = q.value(200.0) + q.value(100.0);
        assert!((quality - expect).abs() < 1e-9);
    }

    #[test]
    fn idle_schedule_is_valid_and_free() {
        let jobs = jobset();
        let sched = Schedule::idle(4);
        let m = PolynomialPower::PAPER_SIM;
        sched.validate(&jobs, &m, 0.0).unwrap();
        assert_eq!(sched.total_energy(&m), 0.0);
        assert_eq!(sched.num_cores(), 4);
    }
}
