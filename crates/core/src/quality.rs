//! Concave quality functions (paper §II-A, Eq. 1, Fig. 1).
//!
//! A quality function `f` maps the processed volume of a job (in processing
//! units) to a quality value. The paper assumes `f` is monotonically
//! increasing and strictly concave — the diminishing-returns shape typical
//! of web search, video-on-demand and similar best-effort services.
//!
//! The paper's evaluation uses the exponential family (Eq. 1):
//!
//! ```text
//! q(x) = (1 − e^{−c·x}) / (1 − e^{−1000·c})
//! ```
//!
//! normalized so that `q(1000) = 1` where 1000 units is the maximum service
//! demand of the workload (§V-B). [`ExpQuality`] implements it; the other
//! types here exist for sensitivity studies and for tests.

use crate::job::Job;

/// A monotonically increasing quality function over processed volume.
///
/// Implementations must be non-decreasing on `x ≥ 0` with `value(0) = 0`.
/// Strict concavity is required by the optimality analysis of QE-OPT; the
/// trait cannot enforce it, but [`is_concave_on`] provides a numerical
/// check used by the property tests.
pub trait QualityFunction: Send + Sync {
    /// Quality for `x` processed units (clamped to `x ≥ 0`).
    fn value(&self, x: f64) -> f64;

    /// Quality a job earns given its processed volume, honouring the
    /// partial-evaluation flag: non-partial jobs earn quality only when
    /// fully processed (§V-D). "Fully" allows a 10⁻³-unit slack — one
    /// microsecond of 1 GHz work — matching the simulator's µs time
    /// quantization.
    fn job_quality(&self, job: &Job, processed: f64) -> f64 {
        let p = processed.clamp(0.0, job.demand);
        if job.partial {
            self.value(p)
        } else if processed + 1e-3 >= job.demand {
            self.value(job.demand)
        } else {
            0.0
        }
    }

    /// The maximum quality this job could earn (full execution).
    fn max_job_quality(&self, job: &Job) -> f64 {
        self.value(job.demand)
    }
}

/// The paper's exponential quality family (Eq. 1).
#[derive(Clone, Copy, Debug)]
pub struct ExpQuality {
    /// Concavity multiplier `c` (paper default 0.003; larger = more
    /// concave, see Fig. 7a).
    pub c: f64,
    /// Normalization point: `value(x_ref) = 1`. Paper uses 1000 (the
    /// maximum service demand).
    pub x_ref: f64,
}

impl ExpQuality {
    /// The paper's default: `c = 0.003`, normalized at 1000 units.
    pub const PAPER_DEFAULT: ExpQuality = ExpQuality {
        c: 0.003,
        x_ref: 1000.0,
    };

    /// Construct with the paper's normalization point (1000 units).
    pub fn new(c: f64) -> Self {
        assert!(c > 0.0 && c.is_finite(), "c must be positive and finite");
        ExpQuality { c, x_ref: 1000.0 }
    }
}

impl QualityFunction for ExpQuality {
    #[inline]
    fn value(&self, x: f64) -> f64 {
        let x = x.max(0.0);
        (1.0 - (-self.c * x).exp()) / (1.0 - (-self.c * self.x_ref).exp())
    }
}

/// Linear quality `q(x) = x / x_ref` (concave but not strictly): the
/// boundary case where partial evaluation brings no diminishing returns.
#[derive(Clone, Copy, Debug)]
pub struct LinearQuality {
    /// Normalization point: `value(x_ref) = 1`.
    pub x_ref: f64,
}

impl QualityFunction for LinearQuality {
    #[inline]
    fn value(&self, x: f64) -> f64 {
        x.max(0.0) / self.x_ref
    }
}

/// Logarithmic quality `q(x) = ln(1 + k·x) / ln(1 + k·x_ref)` — an
/// alternative strictly concave family used in sensitivity tests.
#[derive(Clone, Copy, Debug)]
pub struct LogQuality {
    /// Curvature parameter (> 0).
    pub k: f64,
    /// Normalization point: `value(x_ref) = 1`.
    pub x_ref: f64,
}

impl QualityFunction for LogQuality {
    #[inline]
    fn value(&self, x: f64) -> f64 {
        (1.0 + self.k * x.max(0.0)).ln() / (1.0 + self.k * self.x_ref).ln()
    }
}

/// Step quality: zero until `threshold`, then 1. Models strictly
/// all-or-nothing requests (the classic firm real-time value model the
/// paper contrasts against in §V-D / §VI).
#[derive(Clone, Copy, Debug)]
pub struct StepQuality {
    /// Volume at which the full value is earned.
    pub threshold: f64,
}

impl QualityFunction for StepQuality {
    #[inline]
    fn value(&self, x: f64) -> f64 {
        if x + 1e-12 >= self.threshold {
            1.0
        } else {
            0.0
        }
    }
}

/// Numerically check concavity of `f` on `[0, hi]` by sampling midpoint
/// chords: `f((a+b)/2) ≥ (f(a)+f(b))/2 − tol`.
pub fn is_concave_on(f: &dyn QualityFunction, hi: f64, samples: usize, tol: f64) -> bool {
    let step = hi / samples as f64;
    for i in 0..samples {
        for j in (i + 1)..=samples {
            let a = i as f64 * step;
            let b = j as f64 * step;
            let mid = 0.5 * (a + b);
            if f.value(mid) + tol < 0.5 * (f.value(a) + f.value(b)) {
                return false;
            }
        }
    }
    true
}

/// Numerically check that `f` is non-decreasing on `[0, hi]`.
pub fn is_non_decreasing_on(f: &dyn QualityFunction, hi: f64, samples: usize) -> bool {
    let step = hi / samples as f64;
    let mut prev = f.value(0.0);
    for i in 1..=samples {
        let v = f.value(i as f64 * step);
        if v + 1e-12 < prev {
            return false;
        }
        prev = v;
    }
    true
}

/// Total quality of a set of (job, processed-volume) pairs.
pub fn total_quality<'a>(
    f: &dyn QualityFunction,
    pairs: impl IntoIterator<Item = (&'a Job, f64)>,
) -> f64 {
    pairs
        .into_iter()
        .map(|(job, p)| f.job_quality(job, p))
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimTime;

    fn job(demand: f64, partial: bool) -> Job {
        Job::with_partial(0, SimTime::ZERO, SimTime::from_millis(150), demand, partial).unwrap()
    }

    #[test]
    fn exp_quality_matches_eq1() {
        let q = ExpQuality::PAPER_DEFAULT;
        assert!((q.value(0.0)).abs() < 1e-12);
        assert!((q.value(1000.0) - 1.0).abs() < 1e-12);
        // Fig. 1 shape: 500 units already yields well over half the quality.
        let half = q.value(500.0);
        assert!(half > 0.7 && half < 0.9, "got {half}");
    }

    #[test]
    fn exp_quality_monotone_and_concave() {
        for &c in &[0.0005, 0.001, 0.002, 0.003, 0.005, 0.009] {
            let q = ExpQuality::new(c);
            assert!(is_non_decreasing_on(&q, 1000.0, 200), "c={c} not monotone");
            assert!(is_concave_on(&q, 1000.0, 60, 1e-9), "c={c} not concave");
        }
    }

    #[test]
    fn larger_c_is_more_concave() {
        // Fig. 7: larger c earns more quality from the same partial volume.
        let lo = ExpQuality::new(0.0005);
        let hi = ExpQuality::new(0.009);
        for &x in &[100.0, 250.0, 500.0, 750.0] {
            assert!(hi.value(x) > lo.value(x), "at x={x}");
        }
    }

    #[test]
    fn log_and_linear_are_concave() {
        let lg = LogQuality {
            k: 0.01,
            x_ref: 1000.0,
        };
        let ln = LinearQuality { x_ref: 1000.0 };
        assert!(is_concave_on(&lg, 1000.0, 60, 1e-9));
        assert!(is_concave_on(&ln, 1000.0, 60, 1e-9));
        assert!((lg.value(1000.0) - 1.0).abs() < 1e-12);
        assert!((ln.value(1000.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn step_quality_is_all_or_nothing() {
        let s = StepQuality { threshold: 100.0 };
        assert_eq!(s.value(99.9), 0.0);
        assert_eq!(s.value(100.0), 1.0);
        assert!(!is_concave_on(&s, 200.0, 40, 1e-9));
    }

    #[test]
    fn partial_flag_gates_quality() {
        let q = ExpQuality::PAPER_DEFAULT;
        let yes = job(400.0, true);
        let no = job(400.0, false);
        // Partial job earns partial quality.
        assert!(q.job_quality(&yes, 200.0) > 0.0);
        // Non-partial earns nothing until complete…
        assert_eq!(q.job_quality(&no, 399.0), 0.0);
        // …then the full value.
        assert!((q.job_quality(&no, 400.0) - q.value(400.0)).abs() < 1e-12);
    }

    #[test]
    fn processed_volume_clamps_to_demand() {
        let q = ExpQuality::PAPER_DEFAULT;
        let j = job(300.0, true);
        assert!((q.job_quality(&j, 1e6) - q.value(300.0)).abs() < 1e-12);
        assert_eq!(q.job_quality(&j, -5.0), 0.0);
    }

    #[test]
    fn total_quality_sums() {
        let q = ExpQuality::PAPER_DEFAULT;
        let a = job(100.0, true);
        let b = job(200.0, true);
        let t = total_quality(&q, [(&a, 100.0), (&b, 100.0)]);
        assert!((t - (q.value(100.0) * 2.0)).abs() < 1e-12);
    }
}
