//! Best-effort interactive requests (paper §II-A).
//!
//! A [`Job`] is a request `J_j` with a release time `r_j`, a deadline `d_j`,
//! and a service demand `w_j` measured in processing units (1 GHz · 1 ms).
//! Jobs may support *partial evaluation*: processing fewer than `w_j` units
//! still yields partial quality through the quality function. Jobs that do
//! not support it yield quality only when fully processed (§V-D).
//!
//! The paper assumes *agreeable deadlines*: a job released later never has
//! an earlier deadline. [`JobSet::new`] enforces this.

use crate::error::QesError;
use crate::time::{SimDuration, SimTime};

/// Stable identifier of a job within a run.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct JobId(pub u32);

impl std::fmt::Display for JobId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "J{}", self.0)
    }
}

/// A best-effort interactive request.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Job {
    /// Stable identifier.
    pub id: JobId,
    /// Release (arrival) time `r_j`; the job may not run before this.
    pub release: SimTime,
    /// Deadline `d_j`; the job may not run after this and its quality is
    /// settled here.
    pub deadline: SimTime,
    /// Service demand `w_j` in processing units (full execution).
    pub demand: f64,
    /// Whether the job supports partial evaluation. When `false`, an
    /// incomplete execution yields zero quality (§V-D).
    pub partial: bool,
}

impl Job {
    /// Construct a partially-evaluatable job, validating its fields.
    pub fn new(
        id: u32,
        release: SimTime,
        deadline: SimTime,
        demand: f64,
    ) -> Result<Self, QesError> {
        Self::with_partial(id, release, deadline, demand, true)
    }

    /// Construct a job with an explicit partial-evaluation capability.
    pub fn with_partial(
        id: u32,
        release: SimTime,
        deadline: SimTime,
        demand: f64,
        partial: bool,
    ) -> Result<Self, QesError> {
        let id = JobId(id);
        if deadline <= release {
            return Err(QesError::EmptyWindow {
                job: id,
                release,
                deadline,
            });
        }
        if !demand.is_finite() || demand < 0.0 {
            return Err(QesError::BadDemand { job: id, demand });
        }
        Ok(Job {
            id,
            release,
            deadline,
            demand,
            partial,
        })
    }

    /// The length of the job's feasible window `[r_j, d_j]`.
    #[inline]
    pub fn window(&self) -> SimDuration {
        self.deadline.saturating_since(self.release)
    }

    /// Minimum speed (GHz) that completes the job within its window.
    #[inline]
    pub fn min_full_speed(&self) -> f64 {
        crate::speed_for_volume(self.demand, self.window())
    }

    /// True if the job's window contains instant `t` (inclusive of release,
    /// exclusive of deadline).
    #[inline]
    pub fn is_live_at(&self, t: SimTime) -> bool {
        self.release <= t && t < self.deadline
    }
}

/// An ordered collection of jobs with validated agreeable deadlines.
///
/// Jobs are stored sorted by `(release, deadline, id)`. All single-core
/// algorithms in `qes-singlecore` require this ordering.
#[derive(Clone, Debug, Default)]
pub struct JobSet {
    jobs: Vec<Job>,
}

impl JobSet {
    /// Build a job set, sorting by release time and verifying the agreeable
    /// deadline property (§II-A).
    pub fn new(mut jobs: Vec<Job>) -> Result<Self, QesError> {
        jobs.sort_by_key(|j| (j.release, j.deadline, j.id));
        for w in jobs.windows(2) {
            if w[1].deadline < w[0].deadline {
                return Err(QesError::NotAgreeable {
                    earlier: w[0].id,
                    later: w[1].id,
                });
            }
        }
        Ok(JobSet { jobs })
    }

    /// Build without the agreeable check (for deliberately adversarial
    /// tests); still sorts by release.
    pub fn new_unchecked(mut jobs: Vec<Job>) -> Self {
        jobs.sort_by_key(|j| (j.release, j.deadline, j.id));
        JobSet { jobs }
    }

    /// Number of jobs.
    #[inline]
    pub fn len(&self) -> usize {
        self.jobs.len()
    }

    /// True if the set is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.jobs.is_empty()
    }

    /// Jobs in `(release, deadline)` order.
    #[inline]
    pub fn jobs(&self) -> &[Job] {
        &self.jobs
    }

    /// Iterate over jobs.
    pub fn iter(&self) -> impl Iterator<Item = &Job> {
        self.jobs.iter()
    }

    /// Look up a job by id (linear scan; job sets handled by the algorithms
    /// are small per invocation).
    pub fn get(&self, id: JobId) -> Option<&Job> {
        self.jobs.iter().find(|j| j.id == id)
    }

    /// Total service demand of all jobs.
    pub fn total_demand(&self) -> f64 {
        self.jobs.iter().map(|j| j.demand).sum()
    }

    /// Earliest release among the jobs, if any.
    pub fn first_release(&self) -> Option<SimTime> {
        self.jobs.first().map(|j| j.release)
    }

    /// Latest deadline among the jobs, if any.
    pub fn last_deadline(&self) -> Option<SimTime> {
        self.jobs.iter().map(|j| j.deadline).max()
    }

    /// Jobs whose whole window `[r_j, d_j]` lies inside `[z, z']`.
    ///
    /// This is the membership rule for both the critical-interval search of
    /// Energy-OPT and the busiest-deprived-interval search of Quality-OPT.
    pub fn contained_in(&self, z: SimTime, z2: SimTime) -> Vec<Job> {
        self.jobs
            .iter()
            .filter(|j| j.release >= z && j.deadline <= z2)
            .copied()
            .collect()
    }
}

impl IntoIterator for JobSet {
    type Item = Job;
    type IntoIter = std::vec::IntoIter<Job>;
    fn into_iter(self) -> Self::IntoIter {
        self.jobs.into_iter()
    }
}

impl<'a> IntoIterator for &'a JobSet {
    type Item = &'a Job;
    type IntoIter = std::slice::Iter<'a, Job>;
    fn into_iter(self) -> Self::IntoIter {
        self.jobs.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(x: u64) -> SimTime {
        SimTime::from_millis(x)
    }

    #[test]
    fn job_validation() {
        assert!(Job::new(0, ms(0), ms(150), 192.0).is_ok());
        assert!(matches!(
            Job::new(1, ms(10), ms(10), 1.0),
            Err(QesError::EmptyWindow { .. })
        ));
        assert!(matches!(
            Job::new(2, ms(0), ms(1), f64::NAN),
            Err(QesError::BadDemand { .. })
        ));
        assert!(matches!(
            Job::new(3, ms(0), ms(1), -1.0),
            Err(QesError::BadDemand { .. })
        ));
        // Zero demand is legal (a degenerate, already-satisfied job).
        assert!(Job::new(4, ms(0), ms(1), 0.0).is_ok());
    }

    #[test]
    fn window_and_min_speed() {
        let j = Job::new(0, ms(0), ms(150), 300.0).unwrap();
        assert_eq!(j.window(), SimDuration::from_millis(150));
        // 300 units in 150 ms needs 2 GHz.
        assert!((j.min_full_speed() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn jobset_sorts_by_release() {
        let a = Job::new(0, ms(20), ms(170), 1.0).unwrap();
        let b = Job::new(1, ms(0), ms(150), 1.0).unwrap();
        let s = JobSet::new(vec![a, b]).unwrap();
        assert_eq!(s.jobs()[0].id, JobId(1));
        assert_eq!(s.jobs()[1].id, JobId(0));
    }

    #[test]
    fn jobset_rejects_inverted_deadlines() {
        let a = Job::new(0, ms(0), ms(300), 1.0).unwrap();
        let b = Job::new(1, ms(10), ms(200), 1.0).unwrap();
        assert!(matches!(
            JobSet::new(vec![a, b]),
            Err(QesError::NotAgreeable { .. })
        ));
    }

    #[test]
    fn jobset_allows_equal_deadlines() {
        let a = Job::new(0, ms(0), ms(150), 1.0).unwrap();
        let b = Job::new(1, ms(10), ms(150), 1.0).unwrap();
        assert!(JobSet::new(vec![a, b]).is_ok());
    }

    #[test]
    fn contained_in_selects_whole_windows() {
        let a = Job::new(0, ms(0), ms(100), 1.0).unwrap();
        let b = Job::new(1, ms(50), ms(200), 1.0).unwrap();
        let s = JobSet::new(vec![a, b]).unwrap();
        let inside = s.contained_in(ms(0), ms(100));
        assert_eq!(inside.len(), 1);
        assert_eq!(inside[0].id, JobId(0));
        let both = s.contained_in(ms(0), ms(200));
        assert_eq!(both.len(), 2);
    }

    #[test]
    fn aggregates() {
        let a = Job::new(0, ms(0), ms(100), 10.0).unwrap();
        let b = Job::new(1, ms(50), ms(200), 20.0).unwrap();
        let s = JobSet::new(vec![a, b]).unwrap();
        assert!((s.total_demand() - 30.0).abs() < 1e-12);
        assert_eq!(s.first_release(), Some(ms(0)));
        assert_eq!(s.last_deadline(), Some(ms(200)));
        assert_eq!(s.get(JobId(1)).unwrap().demand, 20.0);
        assert!(s.get(JobId(99)).is_none());
    }

    #[test]
    fn is_live_at_boundaries() {
        let j = Job::new(0, ms(10), ms(20), 1.0).unwrap();
        assert!(!j.is_live_at(ms(9)));
        assert!(j.is_live_at(ms(10)));
        assert!(j.is_live_at(ms(19)));
        assert!(!j.is_live_at(ms(20)));
    }
}
