//! Error types shared across the workspace.

use std::fmt;

use crate::job::JobId;
use crate::time::SimTime;

/// Errors produced when constructing or validating scheduling inputs and
/// outputs.
#[derive(Debug, Clone, PartialEq)]
pub enum QesError {
    /// A job's deadline is not after its release time.
    EmptyWindow {
        /// The offending job.
        job: JobId,
        /// Its release time.
        release: SimTime,
        /// Its (not-later) deadline.
        deadline: SimTime,
    },
    /// A job has a negative or non-finite service demand.
    BadDemand {
        /// The offending job.
        job: JobId,
        /// The invalid demand value.
        demand: f64,
    },
    /// The job set violates the agreeable-deadlines assumption (§II-A): a
    /// job released later has an earlier deadline.
    NotAgreeable {
        /// The earlier-released job.
        earlier: JobId,
        /// The later-released job whose deadline is earlier.
        later: JobId,
    },
    /// Two slices on the same core overlap in time.
    OverlappingSlices {
        /// Core index where the overlap occurs.
        core: usize,
        /// Instant at which the second slice starts inside the first.
        at: SimTime,
    },
    /// A slice runs a job outside its `[release, deadline]` window.
    SliceOutsideWindow {
        /// The job scheduled out of window.
        job: JobId,
        /// Core index of the offending slice.
        core: usize,
    },
    /// A job executes on more than one core (non-migratory model, §II-B).
    Migration {
        /// The migrating job.
        job: JobId,
        /// Core it first ran on.
        first_core: usize,
        /// Core it later appeared on.
        second_core: usize,
    },
    /// Instantaneous total power exceeds the budget `H`.
    PowerBudgetExceeded {
        /// Instant of the violation.
        at: SimTime,
        /// Total power drawn at that instant (W).
        power: f64,
        /// The budget `H` (W).
        budget: f64,
    },
    /// A job is processed beyond its service demand.
    OverProcessed {
        /// The over-processed job.
        job: JobId,
        /// Volume actually processed (units).
        processed: f64,
        /// Its service demand (units).
        demand: f64,
    },
    /// A slice references a job missing from the job set.
    UnknownJob {
        /// The unknown id.
        job: JobId,
    },
    /// A configuration parameter is out of its valid domain.
    BadParameter {
        /// Which parameter.
        what: &'static str,
        /// The rejected value.
        value: f64,
    },
}

impl fmt::Display for QesError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QesError::EmptyWindow { job, release, deadline } => write!(
                f,
                "job {job:?}: deadline {deadline} not after release {release}"
            ),
            QesError::BadDemand { job, demand } => {
                write!(f, "job {job:?}: invalid demand {demand}")
            }
            QesError::NotAgreeable { earlier, later } => write!(
                f,
                "deadlines not agreeable: {later:?} released after {earlier:?} but deadlines are inverted"
            ),
            QesError::OverlappingSlices { core, at } => {
                write!(f, "core {core}: overlapping slices at {at}")
            }
            QesError::SliceOutsideWindow { job, core } => {
                write!(f, "job {job:?} scheduled outside its window on core {core}")
            }
            QesError::Migration { job, first_core, second_core } => write!(
                f,
                "job {job:?} migrated from core {first_core} to core {second_core}"
            ),
            QesError::PowerBudgetExceeded { at, power, budget } => write!(
                f,
                "power {power:.3}W exceeds budget {budget:.3}W at {at}"
            ),
            QesError::OverProcessed { job, processed, demand } => write!(
                f,
                "job {job:?} processed {processed:.3} units > demand {demand:.3}"
            ),
            QesError::UnknownJob { job } => write!(f, "unknown job {job:?} in schedule"),
            QesError::BadParameter { what, value } => {
                write!(f, "parameter {what} out of domain: {value}")
            }
        }
    }
}

impl std::error::Error for QesError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = QesError::PowerBudgetExceeded {
            at: SimTime::from_millis(10),
            power: 321.5,
            budget: 320.0,
        };
        let s = e.to_string();
        assert!(s.contains("321.5"));
        assert!(s.contains("320"));
    }

    #[test]
    fn errors_are_comparable() {
        let a = QesError::UnknownJob { job: JobId(3) };
        let b = QesError::UnknownJob { job: JobId(3) };
        assert_eq!(a, b);
    }
}
