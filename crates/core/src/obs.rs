//! Zero-overhead observability: a static-dispatch [`Observer`] trait with
//! a compile-out [`NoopObserver`], plus two concrete observers — a
//! [`MetricsRegistry`] of named monotonic counters/gauges/histograms and a
//! bounded ring-buffer [`TraceObserver`] that serializes to CSV.
//!
//! # Design
//!
//! The simulator and the cluster substrate are generic over `O: Observer`
//! and guard every hook with `if O::ENABLED { ... }`. Because `ENABLED` is
//! an associated `const`, the branch — and the event construction feeding
//! it — is dead code for [`NoopObserver`] and is removed entirely by the
//! optimizer: an unobserved run compiles to the same hot loop as before the
//! observability layer existed (the bench suite pins this with a
//! `des/100k_jobs/8_cores/traced-off` row, required to stay within 2 % of
//! the plain row).
//!
//! Observers are **passive**: they must not influence the simulation. The
//! engine never reads observer state, so a traced run is bitwise-identical
//! to an untraced run on ⟨quality, energy⟩ and every counter
//! (`tests/observability.rs` enforces this differentially).
//!
//! # Event schema
//!
//! Every hook reports an [`Event`] stamped with the simulated instant. The
//! CSV serialization (columns `t_us,event,arg1,arg2`) is:
//!
//! | `event`          | `arg1`                          | `arg2`            |
//! |------------------|---------------------------------|-------------------|
//! | `arrivals`       | jobs released this instant      |                   |
//! | `dequeue`        | `deadline`/`plan_end`/`quantum` |                   |
//! | `trigger`        | cause (see [`TriggerCause`])    |                   |
//! | `invoke`         | `changed` or `kept`             |                   |
//! | `plan_install`   | core index                      | slices in plan    |
//! | `plan_keep`      | core index                      |                   |
//! | `settle`         | job id                          | `satisfied`/`partial`/`zero` |
//! | `discard`        | job id                          |                   |
//! | `power_sample`   | node index                      | watts             |
//! | `policy_counter` | counter name                    | counter value     |
//! | `shard_assign`   | shard index                     | jobs routed       |
//! | `shard_down`     | shard index                     | `crash`/`brownout` |
//! | `shard_up`       | shard index                     |                   |
//! | `redispatch`     | job id                          | crashed shard     |
//! | `admission_reject` | job id                        | admission policy  |
//! | `retry`          | job id                          | attempt number    |
//! | `hedge`          | job id                          | hedge target shard |

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::job::JobId;
use crate::time::SimTime;

/// Which simulator event was popped off the event heap.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DequeueKind {
    /// A job's deadline expired.
    Deadline,
    /// A core ran its installed plan to completion.
    PlanEnd,
    /// The §IV-E grouped-scheduling quantum tick.
    Quantum,
}

impl DequeueKind {
    /// Stable lowercase label used in the CSV serialization.
    pub fn label(self) -> &'static str {
        match self {
            DequeueKind::Deadline => "deadline",
            DequeueKind::PlanEnd => "plan_end",
            DequeueKind::Quantum => "quantum",
        }
    }
}

/// Why the engine invoked the scheduling policy (§IV-E trigger taxonomy).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TriggerCause {
    /// Per-event arrival trigger (`on_arrival`).
    Arrival,
    /// The grouped arrival counter filled up.
    Counter,
    /// A core went idle with the idle trigger armed.
    Idle,
    /// A plan ran out (gated idle trigger after a `PlanEnd` event).
    PlanEnd,
    /// The periodic quantum trigger.
    Quantum,
}

impl TriggerCause {
    /// Stable lowercase label used in the CSV serialization.
    pub fn label(self) -> &'static str {
        match self {
            TriggerCause::Arrival => "arrival",
            TriggerCause::Counter => "counter",
            TriggerCause::Idle => "idle",
            TriggerCause::PlanEnd => "plan_end",
            TriggerCause::Quantum => "quantum",
        }
    }
}

/// How a job left the system.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SettleOutcome {
    /// Demand met within the relative tolerance.
    Satisfied,
    /// Some, but not all, demand processed.
    Partial,
    /// No processing at all.
    Zero,
}

impl SettleOutcome {
    /// Stable lowercase label used in the CSV serialization.
    pub fn label(self) -> &'static str {
        match self {
            SettleOutcome::Satisfied => "satisfied",
            SettleOutcome::Partial => "partial",
            SettleOutcome::Zero => "zero",
        }
    }
}

/// What kind of capacity loss a shard outage event reports (mirrors the
/// cluster fault plan's window kinds without a crate dependency).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum OutageKind {
    /// Total outage: the shard accepts no work while down.
    Crash,
    /// Partial outage: the shard runs on reduced cores/budget.
    Brownout,
}

impl OutageKind {
    /// Stable lowercase label used in the CSV serialization.
    pub fn label(self) -> &'static str {
        match self {
            OutageKind::Crash => "crash",
            OutageKind::Brownout => "brownout",
        }
    }
}

/// A single observability event. `Copy`, allocation-free, cheap to
/// construct — hot paths build these only when `O::ENABLED`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Event {
    /// A batch of `count` jobs was released at this instant.
    Arrivals {
        /// Number of jobs released in the batch.
        count: u32,
    },
    /// A (non-stale) event was popped off the simulator heap.
    Dequeue {
        /// Which kind of heap event.
        kind: DequeueKind,
    },
    /// The engine decided to invoke the scheduling policy.
    Trigger {
        /// Which §IV-E trigger fired.
        cause: TriggerCause,
    },
    /// A policy invocation returned; `kept` means the decision was a pure
    /// keep (no assignments, no discards, no new plans, unchanged ambient
    /// speeds) and is therefore *not* counted as a policy invocation in
    /// [`invocations`](Event::Invoke).
    Invoke {
        /// True when the decision changed nothing.
        kept: bool,
    },
    /// A fresh plan was installed on a core.
    PlanInstall {
        /// Core index.
        core: u32,
        /// Number of slices in the installed plan.
        slices: u32,
    },
    /// The policy explicitly kept a core's running plan (`None` entry).
    PlanKeep {
        /// Core index.
        core: u32,
    },
    /// A job reached its deadline (or the horizon) and was scored.
    JobSettle {
        /// The job.
        job: JobId,
        /// How it scored.
        outcome: SettleOutcome,
    },
    /// The policy discarded a job before its deadline (§V-D).
    JobDiscard {
        /// The job.
        job: JobId,
    },
    /// A cluster power meter took one sample.
    PowerSample {
        /// Node index (0 for a single whole-cluster meter).
        node: u32,
        /// Measured power in watts (noise and meter overhead included).
        watts: f64,
    },
    /// A policy-internal counter, drained once at end of run via
    /// [`SchedulingPolicy::metrics`](../..//qes_multicore/policy/trait.SchedulingPolicy.html).
    PolicyCounter {
        /// Stable counter name (e.g. `des.cache_hit`).
        name: &'static str,
        /// Monotonic value at end of run.
        value: u64,
    },
    /// A cluster dispatcher bound one shard's routed slice of the arrival
    /// stream; emitted once per shard at the start of a sharded run, so
    /// every event stream carries its shard tag.
    ShardAssign {
        /// Shard index (0-based).
        shard: u32,
        /// Number of jobs routed to this shard.
        jobs: u32,
    },
    /// A fault window opened on a shard (cluster fault injection).
    ShardDown {
        /// Shard index (0-based).
        shard: u32,
        /// Crash (total outage) or brownout (reduced capacity).
        kind: OutageKind,
    },
    /// A fault window closed: the shard is back at full capacity.
    ShardUp {
        /// Shard index (0-based).
        shard: u32,
    },
    /// A job stranded on a crashed shard was re-released to the
    /// dispatcher for re-routing to a surviving shard.
    Redispatch {
        /// The stranded job.
        job: JobId,
        /// The shard that crashed under it.
        from: u32,
    },
    /// The cluster admission controller turned a job away at arrival
    /// (overload protection; distinct from a fault-path drop).
    AdmissionReject {
        /// The rejected job.
        job: JobId,
        /// Stable label of the admission policy that rejected it.
        policy: &'static str,
    },
    /// A stranded job was re-released with a retry-budgeted backoff
    /// delay (attempt numbers start at 1 for the first re-release).
    Retry {
        /// The retried job.
        job: JobId,
        /// Which retry attempt this re-release is.
        attempt: u32,
    },
    /// A hedge copy of a slow job was dispatched to a second shard
    /// (first-wins accounting; the losing copy's work is charged to
    /// energy but not quality).
    Hedge {
        /// The hedged job.
        job: JobId,
        /// The shard receiving the hedge copy.
        to: u32,
    },
}

impl Event {
    /// Stable lowercase event label (first CSV column after the timestamp).
    pub fn label(&self) -> &'static str {
        match self {
            Event::Arrivals { .. } => "arrivals",
            Event::Dequeue { .. } => "dequeue",
            Event::Trigger { .. } => "trigger",
            Event::Invoke { .. } => "invoke",
            Event::PlanInstall { .. } => "plan_install",
            Event::PlanKeep { .. } => "plan_keep",
            Event::JobSettle { .. } => "settle",
            Event::JobDiscard { .. } => "discard",
            Event::PowerSample { .. } => "power_sample",
            Event::PolicyCounter { .. } => "policy_counter",
            Event::ShardAssign { .. } => "shard_assign",
            Event::ShardDown { .. } => "shard_down",
            Event::ShardUp { .. } => "shard_up",
            Event::Redispatch { .. } => "redispatch",
            Event::AdmissionReject { .. } => "admission_reject",
            Event::Retry { .. } => "retry",
            Event::Hedge { .. } => "hedge",
        }
    }

    /// Serialize as one CSV row (no trailing newline), schema as in the
    /// module docs: `t_us,event,arg1,arg2`.
    pub fn to_csv_row(&self, at: SimTime) -> String {
        let t = at.as_micros();
        match *self {
            Event::Arrivals { count } => format!("{t},arrivals,{count},"),
            Event::Dequeue { kind } => format!("{t},dequeue,{},", kind.label()),
            Event::Trigger { cause } => format!("{t},trigger,{},", cause.label()),
            Event::Invoke { kept } => {
                format!("{t},invoke,{},", if kept { "kept" } else { "changed" })
            }
            Event::PlanInstall { core, slices } => format!("{t},plan_install,{core},{slices}"),
            Event::PlanKeep { core } => format!("{t},plan_keep,{core},"),
            Event::JobSettle { job, outcome } => {
                format!("{t},settle,{},{}", job.0, outcome.label())
            }
            Event::JobDiscard { job } => format!("{t},discard,{},", job.0),
            Event::PowerSample { node, watts } => format!("{t},power_sample,{node},{watts:?}"),
            Event::PolicyCounter { name, value } => format!("{t},policy_counter,{name},{value}"),
            Event::ShardAssign { shard, jobs } => format!("{t},shard_assign,{shard},{jobs}"),
            Event::ShardDown { shard, kind } => {
                format!("{t},shard_down,{shard},{}", kind.label())
            }
            Event::ShardUp { shard } => format!("{t},shard_up,{shard},"),
            Event::Redispatch { job, from } => format!("{t},redispatch,{},{from}", job.0),
            Event::AdmissionReject { job, policy } => {
                format!("{t},admission_reject,{},{policy}", job.0)
            }
            Event::Retry { job, attempt } => format!("{t},retry,{},{attempt}", job.0),
            Event::Hedge { job, to } => format!("{t},hedge,{},{to}", job.0),
        }
    }
}

/// Static-dispatch observability sink.
///
/// Implementors receive every [`Event`] the instrumented code emits. The
/// contract:
///
/// * **Passive** — `record` must not feed anything back into the caller;
///   the simulation outcome must be bitwise-independent of the observer.
/// * **Compile-out** — call sites guard with `if O::ENABLED`, so an
///   implementation with `ENABLED = false` costs nothing at runtime.
/// * **Ordered** — events arrive in simulation order; timestamps are
///   non-decreasing within one run.
pub trait Observer {
    /// Whether this observer wants events at all. `false` removes every
    /// hook at compile time ([`NoopObserver`]).
    const ENABLED: bool;

    /// Receive one event stamped with the simulated instant.
    fn record(&mut self, at: SimTime, event: Event);
}

/// The default observer: sees nothing, costs nothing.
///
/// With `ENABLED = false` every `if O::ENABLED { obs.record(..) }` hook is
/// statically dead and the optimizer removes it — the compile-out
/// guarantee the bench suite pins.
#[derive(Clone, Copy, Debug, Default)]
pub struct NoopObserver;

impl Observer for NoopObserver {
    const ENABLED: bool = false;

    #[inline(always)]
    fn record(&mut self, _at: SimTime, _event: Event) {}
}

/// Forwarding impl so callers can pass `&mut observer` by reference.
impl<O: Observer> Observer for &mut O {
    const ENABLED: bool = O::ENABLED;

    #[inline(always)]
    fn record(&mut self, at: SimTime, event: Event) {
        (**self).record(at, event);
    }
}

/// A fixed-layout log-scale histogram: powers of two from 1 up, plus an
/// overflow bucket, tracking count/sum/min/max exactly.
#[derive(Clone, Debug, PartialEq)]
pub struct Histogram {
    /// Number of recorded samples.
    pub count: u64,
    /// Sum of all samples.
    pub sum: f64,
    /// Smallest sample (`+inf` when empty).
    pub min: f64,
    /// Largest sample (`-inf` when empty).
    pub max: f64,
    /// `buckets[i]` counts samples in `(2^(i-1), 2^i]` (bucket 0 is
    /// `<= 1`); the last bucket absorbs everything larger.
    pub buckets: [u64; Histogram::BUCKETS],
}

impl Histogram {
    /// Number of log2 buckets (covers up to `2^30` before overflowing).
    pub const BUCKETS: usize = 32;

    fn new() -> Self {
        Histogram {
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            buckets: [0; Histogram::BUCKETS],
        }
    }

    /// Record one sample.
    pub fn observe(&mut self, v: f64) {
        self.count += 1;
        self.sum += v;
        if v < self.min {
            self.min = v;
        }
        if v > self.max {
            self.max = v;
        }
        let idx = if v <= 1.0 {
            0
        } else {
            // ceil(log2(v)), clamped into the bucket array.
            let b = (v.log2().ceil() as usize).max(1);
            b.min(Histogram::BUCKETS - 1)
        };
        self.buckets[idx] += 1;
    }

    /// Arithmetic mean of the recorded samples (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

/// An [`Observer`] that folds the event stream into named monotonic
/// counters, gauges, and [`Histogram`]s, with a deterministic JSON export.
///
/// Counter names are dot-separated and stable (see the module docs for the
/// engine-side names; policies contribute `policy.<name>` entries). Storage
/// is `BTreeMap`-backed, so iteration and JSON output are deterministic.
#[derive(Clone, Debug, Default)]
pub struct MetricsRegistry {
    counters: BTreeMap<&'static str, u64>,
    gauges: BTreeMap<String, f64>,
    histograms: BTreeMap<&'static str, Histogram>,
}

impl MetricsRegistry {
    /// A fresh, empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add `by` to the named monotonic counter (creating it at zero).
    pub fn inc(&mut self, name: &'static str, by: u64) {
        *self.counters.entry(name).or_insert(0) += by;
    }

    /// Set a named gauge to an absolute value.
    pub fn set_gauge(&mut self, name: impl Into<String>, value: f64) {
        self.gauges.insert(name.into(), value);
    }

    /// Record one sample into the named histogram.
    pub fn observe(&mut self, name: &'static str, v: f64) {
        self.histograms.entry(name).or_default().observe(v);
    }

    /// Read a counter (0 if never incremented).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Read a gauge, if set.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.get(name).copied()
    }

    /// Read a histogram, if any sample was recorded.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// Iterate counters in name order.
    pub fn counters(&self) -> impl Iterator<Item = (&'static str, u64)> + '_ {
        self.counters.iter().map(|(k, v)| (*k, *v))
    }

    /// Serialize the whole registry as pretty-printed JSON with
    /// deterministic key order (counters, then gauges, then histogram
    /// summaries).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"counters\": {\n");
        for (i, (k, v)) in self.counters.iter().enumerate() {
            let comma = if i + 1 < self.counters.len() { "," } else { "" };
            let _ = writeln!(out, "    \"{k}\": {v}{comma}");
        }
        out.push_str("  },\n  \"gauges\": {\n");
        for (i, (k, v)) in self.gauges.iter().enumerate() {
            let comma = if i + 1 < self.gauges.len() { "," } else { "" };
            let _ = writeln!(out, "    \"{k}\": {v:?}{comma}");
        }
        out.push_str("  },\n  \"histograms\": {\n");
        for (i, (k, h)) in self.histograms.iter().enumerate() {
            let comma = if i + 1 < self.histograms.len() {
                ","
            } else {
                ""
            };
            let _ = writeln!(
                out,
                "    \"{k}\": {{\"count\": {}, \"sum\": {:?}, \"min\": {:?}, \"max\": {:?}, \"mean\": {:?}}}{comma}",
                h.count,
                h.sum,
                h.min,
                h.max,
                h.mean()
            );
        }
        out.push_str("  }\n}\n");
        out
    }
}

impl Observer for MetricsRegistry {
    const ENABLED: bool = true;

    fn record(&mut self, _at: SimTime, event: Event) {
        match event {
            Event::Arrivals { count } => {
                self.inc("engine.arrival_batches", 1);
                self.inc("engine.arrivals", count as u64);
            }
            Event::Dequeue { kind } => match kind {
                DequeueKind::Deadline => self.inc("engine.dequeue.deadline", 1),
                DequeueKind::PlanEnd => self.inc("engine.dequeue.plan_end", 1),
                DequeueKind::Quantum => self.inc("engine.dequeue.quantum", 1),
            },
            Event::Trigger { cause } => match cause {
                TriggerCause::Arrival => self.inc("engine.trigger.arrival", 1),
                TriggerCause::Counter => self.inc("engine.trigger.counter", 1),
                TriggerCause::Idle => self.inc("engine.trigger.idle", 1),
                TriggerCause::PlanEnd => self.inc("engine.trigger.plan_end", 1),
                TriggerCause::Quantum => self.inc("engine.trigger.quantum", 1),
            },
            Event::Invoke { kept } => {
                if kept {
                    self.inc("engine.invocations_kept", 1);
                } else {
                    self.inc("engine.invocations", 1);
                }
            }
            Event::PlanInstall { slices, .. } => {
                self.inc("engine.plan.installed", 1);
                self.observe("engine.plan.slices", slices as f64);
            }
            Event::PlanKeep { .. } => self.inc("engine.plan.kept", 1),
            Event::JobSettle { outcome, .. } => match outcome {
                SettleOutcome::Satisfied => self.inc("engine.settle.satisfied", 1),
                SettleOutcome::Partial => self.inc("engine.settle.partial", 1),
                SettleOutcome::Zero => self.inc("engine.settle.zero", 1),
            },
            Event::JobDiscard { .. } => self.inc("engine.discard", 1),
            Event::PowerSample { node, watts } => {
                self.inc("cluster.power.samples", 1);
                self.observe("cluster.power.watts", watts);
                self.set_gauge(format!("cluster.node{node}.last_watts"), watts);
            }
            Event::PolicyCounter { name, value } => {
                // Drained once at end of run: a snapshot, not an increment.
                self.counters.insert(name, value);
            }
            Event::ShardAssign { shard, jobs } => {
                self.inc("cluster.shard.assignments", 1);
                self.inc("cluster.shard.jobs", jobs as u64);
                self.set_gauge(format!("cluster.shard{shard}.routed_jobs"), jobs as f64);
            }
            Event::ShardDown { kind, .. } => {
                self.inc("cluster.shard.down", 1);
                match kind {
                    OutageKind::Crash => self.inc("cluster.shard.down.crash", 1),
                    OutageKind::Brownout => self.inc("cluster.shard.down.brownout", 1),
                }
            }
            Event::ShardUp { .. } => self.inc("cluster.shard.up", 1),
            Event::Redispatch { .. } => self.inc("cluster.redispatch", 1),
            Event::AdmissionReject { .. } => self.inc("cluster.admission.rejected", 1),
            Event::Retry { .. } => self.inc("cluster.retry", 1),
            Event::Hedge { .. } => self.inc("cluster.hedge.dispatched", 1),
        }
    }
}

/// An [`Observer`] keeping the last `capacity` events in a ring buffer and
/// serializing them as CSV (schema in the module docs).
///
/// When the buffer is full the *oldest* events are dropped — the tail of a
/// run, where a mis-schedule usually settles, is what survives. The number
/// of dropped events is reported in the CSV block header.
#[derive(Clone, Debug)]
pub struct TraceObserver {
    buf: Vec<(SimTime, Event)>,
    capacity: usize,
    head: usize,
    dropped: u64,
}

impl TraceObserver {
    /// Default ring capacity (65 536 events).
    pub const DEFAULT_CAPACITY: usize = 1 << 16;

    /// CSV header row.
    pub const CSV_HEADER: &'static str = "t_us,event,arg1,arg2";

    /// A trace buffer with the default capacity.
    pub fn new() -> Self {
        Self::with_capacity(Self::DEFAULT_CAPACITY)
    }

    /// A trace buffer keeping the most recent `capacity` events
    /// (`capacity` is clamped to at least 1).
    pub fn with_capacity(capacity: usize) -> Self {
        TraceObserver {
            buf: Vec::new(),
            capacity: capacity.max(1),
            head: 0,
            dropped: 0,
        }
    }

    /// Number of events currently buffered.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True if no events were recorded.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// How many early events were evicted by the ring.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Buffered events, oldest first.
    pub fn events(&self) -> Vec<(SimTime, Event)> {
        let mut out = Vec::with_capacity(self.buf.len());
        out.extend_from_slice(&self.buf[self.head..]);
        out.extend_from_slice(&self.buf[..self.head]);
        out
    }

    /// Serialize the buffered events as a CSV block: a `# trace ...`
    /// comment line (event/dropped counts plus the caller's `label`), the
    /// header row, then one row per event, oldest first.
    pub fn to_csv(&self, label: &str) -> String {
        let events = self.events();
        let mut out = format!(
            "# trace {label} events={} dropped={}\n{}\n",
            events.len(),
            self.dropped,
            Self::CSV_HEADER
        );
        for (at, ev) in &events {
            out.push_str(&ev.to_csv_row(*at));
            out.push('\n');
        }
        out
    }

    /// Append the CSV block to `path` (creating the file if needed). Used
    /// by the `QES_TRACE` wiring in the experiment driver so one file can
    /// collect the traces of every run in a figure sweep.
    pub fn append_csv(&self, path: &str, label: &str) -> std::io::Result<()> {
        use std::io::Write;
        let mut f = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)?;
        f.write_all(self.to_csv(label).as_bytes())
    }
}

impl Default for TraceObserver {
    fn default() -> Self {
        Self::new()
    }
}

impl Observer for TraceObserver {
    const ENABLED: bool = true;

    fn record(&mut self, at: SimTime, event: Event) {
        if self.buf.len() < self.capacity {
            self.buf.push((at, event));
        } else {
            self.buf[self.head] = (at, event);
            self.head = (self.head + 1) % self.capacity;
            self.dropped += 1;
        }
    }
}

/// Fan out one event stream to two observers (e.g. metrics + trace in a
/// single run). Enabled iff either side is.
#[derive(Debug, Default)]
pub struct Tee<A, B>(
    /// First sink.
    pub A,
    /// Second sink.
    pub B,
);

impl<A: Observer, B: Observer> Observer for Tee<A, B> {
    const ENABLED: bool = A::ENABLED || B::ENABLED;

    #[inline]
    fn record(&mut self, at: SimTime, event: Event) {
        if A::ENABLED {
            self.0.record(at, event);
        }
        if B::ENABLED {
            self.1.record(at, event);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noop_is_disabled_and_free() {
        const { assert!(!NoopObserver::ENABLED) };
        let mut o = NoopObserver;
        o.record(SimTime::ZERO, Event::Invoke { kept: false });
    }

    #[test]
    fn registry_folds_events_into_counters() {
        let mut m = MetricsRegistry::new();
        m.record(SimTime::ZERO, Event::Arrivals { count: 3 });
        m.record(
            SimTime::from_millis(1),
            Event::Trigger {
                cause: TriggerCause::Counter,
            },
        );
        m.record(SimTime::from_millis(1), Event::Invoke { kept: false });
        m.record(SimTime::from_millis(2), Event::Invoke { kept: true });
        m.record(
            SimTime::from_millis(3),
            Event::PlanInstall { core: 0, slices: 4 },
        );
        m.record(
            SimTime::from_millis(4),
            Event::PolicyCounter {
                name: "des.cache_hit",
                value: 7,
            },
        );
        assert_eq!(m.counter("engine.arrivals"), 3);
        assert_eq!(m.counter("engine.arrival_batches"), 1);
        assert_eq!(m.counter("engine.trigger.counter"), 1);
        assert_eq!(m.counter("engine.invocations"), 1);
        assert_eq!(m.counter("engine.invocations_kept"), 1);
        assert_eq!(m.counter("des.cache_hit"), 7);
        let h = m.histogram("engine.plan.slices").unwrap();
        assert_eq!(h.count, 1);
        assert_eq!(h.max, 4.0);
        let json = m.to_json();
        assert!(json.contains("\"engine.invocations\": 1"));
        assert!(json.contains("\"des.cache_hit\": 7"));
    }

    #[test]
    fn histogram_buckets_and_mean() {
        let mut h = Histogram::default();
        for v in [0.5, 1.0, 2.0, 1e12] {
            h.observe(v);
        }
        assert_eq!(h.count, 4);
        assert_eq!(h.buckets[0], 2); // 0.5 and 1.0
        assert_eq!(h.buckets[1], 1); // 2.0
        assert_eq!(h.buckets[Histogram::BUCKETS - 1], 1); // overflow
        assert!((h.mean() - (3.5 + 1e12) / 4.0).abs() < 1e-3);
    }

    #[test]
    fn trace_ring_keeps_most_recent() {
        let mut t = TraceObserver::with_capacity(2);
        for i in 0..5u32 {
            t.record(SimTime::from_micros(i as u64), Event::Arrivals { count: i });
        }
        assert_eq!(t.len(), 2);
        assert_eq!(t.dropped(), 3);
        let evs = t.events();
        assert_eq!(evs[0].0, SimTime::from_micros(3));
        assert_eq!(evs[1].0, SimTime::from_micros(4));
        let csv = t.to_csv("unit");
        assert!(csv.starts_with("# trace unit events=2 dropped=3\n"));
        assert!(csv.contains("t_us,event,arg1,arg2\n"));
        assert!(csv.trim_end().ends_with("4,arrivals,4,"));
    }

    #[test]
    fn csv_rows_follow_schema() {
        let rows = [
            Event::Dequeue {
                kind: DequeueKind::PlanEnd,
            }
            .to_csv_row(SimTime::from_micros(10)),
            Event::JobSettle {
                job: JobId(3),
                outcome: SettleOutcome::Partial,
            }
            .to_csv_row(SimTime::from_micros(20)),
            Event::PowerSample {
                node: 1,
                watts: 12.5,
            }
            .to_csv_row(SimTime::from_micros(30)),
            Event::ShardAssign { shard: 2, jobs: 77 }.to_csv_row(SimTime::from_micros(40)),
            Event::ShardDown {
                shard: 1,
                kind: OutageKind::Crash,
            }
            .to_csv_row(SimTime::from_micros(50)),
            Event::ShardUp { shard: 1 }.to_csv_row(SimTime::from_micros(60)),
            Event::Redispatch {
                job: JobId(9),
                from: 1,
            }
            .to_csv_row(SimTime::from_micros(70)),
            Event::AdmissionReject {
                job: JobId(11),
                policy: "slack_floor",
            }
            .to_csv_row(SimTime::from_micros(80)),
            Event::Retry {
                job: JobId(9),
                attempt: 2,
            }
            .to_csv_row(SimTime::from_micros(90)),
            Event::Hedge {
                job: JobId(5),
                to: 3,
            }
            .to_csv_row(SimTime::from_micros(100)),
        ];
        assert_eq!(rows[0], "10,dequeue,plan_end,");
        assert_eq!(rows[1], "20,settle,3,partial");
        assert_eq!(rows[2], "30,power_sample,1,12.5");
        assert_eq!(rows[3], "40,shard_assign,2,77");
        assert_eq!(rows[4], "50,shard_down,1,crash");
        assert_eq!(rows[5], "60,shard_up,1,");
        assert_eq!(rows[6], "70,redispatch,9,1");
        assert_eq!(rows[7], "80,admission_reject,11,slack_floor");
        assert_eq!(rows[8], "90,retry,9,2");
        assert_eq!(rows[9], "100,hedge,5,3");
    }

    #[test]
    fn overload_events_fold_into_registry() {
        let mut reg = MetricsRegistry::new();
        reg.record(
            SimTime::ZERO,
            Event::AdmissionReject {
                job: JobId(1),
                policy: "backpressure",
            },
        );
        reg.record(
            SimTime::from_millis(1),
            Event::Retry {
                job: JobId(2),
                attempt: 1,
            },
        );
        reg.record(
            SimTime::from_millis(1),
            Event::Retry {
                job: JobId(2),
                attempt: 2,
            },
        );
        reg.record(
            SimTime::from_millis(2),
            Event::Hedge {
                job: JobId(3),
                to: 1,
            },
        );
        assert_eq!(reg.counter("cluster.admission.rejected"), 1);
        assert_eq!(reg.counter("cluster.retry"), 2);
        assert_eq!(reg.counter("cluster.hedge.dispatched"), 1);
    }

    #[test]
    fn shard_assign_folds_into_registry() {
        let mut reg = MetricsRegistry::new();
        reg.record(SimTime::ZERO, Event::ShardAssign { shard: 0, jobs: 10 });
        reg.record(SimTime::ZERO, Event::ShardAssign { shard: 1, jobs: 7 });
        assert_eq!(reg.counter("cluster.shard.assignments"), 2);
        assert_eq!(reg.counter("cluster.shard.jobs"), 17);
        assert_eq!(reg.gauge("cluster.shard1.routed_jobs"), Some(7.0));
    }

    #[test]
    fn fault_events_fold_into_registry() {
        let mut reg = MetricsRegistry::new();
        reg.record(
            SimTime::ZERO,
            Event::ShardDown {
                shard: 0,
                kind: OutageKind::Crash,
            },
        );
        reg.record(
            SimTime::from_millis(1),
            Event::ShardDown {
                shard: 1,
                kind: OutageKind::Brownout,
            },
        );
        reg.record(SimTime::from_millis(2), Event::ShardUp { shard: 0 });
        reg.record(
            SimTime::from_millis(2),
            Event::Redispatch {
                job: JobId(4),
                from: 0,
            },
        );
        assert_eq!(reg.counter("cluster.shard.down"), 2);
        assert_eq!(reg.counter("cluster.shard.down.crash"), 1);
        assert_eq!(reg.counter("cluster.shard.down.brownout"), 1);
        assert_eq!(reg.counter("cluster.shard.up"), 1);
        assert_eq!(reg.counter("cluster.redispatch"), 1);
    }

    #[test]
    fn tee_fans_out() {
        let mut tee = Tee(MetricsRegistry::new(), TraceObserver::with_capacity(8));
        tee.record(SimTime::ZERO, Event::Invoke { kept: false });
        assert_eq!(tee.0.counter("engine.invocations"), 1);
        assert_eq!(tee.1.len(), 1);
    }
}
