//! The composite ⟨quality, energy⟩ performance metric (paper §II-C).
//!
//! Service providers rank schedules lexicographically: first by total
//! quality (higher is better), then — among schedules of equal quality —
//! by energy (lower is better). [`QualityEnergy`] implements that order
//! with an explicit quality tolerance, since two floating-point schedules
//! "produce the same quality" only up to numerical error.

use std::cmp::Ordering;

/// A schedule's score under the composite metric.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct QualityEnergy {
    /// Total quality `Q = Σ f(p_j)`.
    pub quality: f64,
    /// Total dynamic energy `E` in joules.
    pub energy: f64,
}

impl QualityEnergy {
    /// Default tolerance within which two qualities are considered equal.
    pub const DEFAULT_QUALITY_EPS: f64 = 1e-9;

    /// Construct a score.
    pub fn new(quality: f64, energy: f64) -> Self {
        QualityEnergy { quality, energy }
    }

    /// Lexicographic comparison: `Greater` means `self` is *better*
    /// (higher quality, or equal quality and lower energy).
    pub fn compare(&self, other: &QualityEnergy) -> Ordering {
        self.compare_with_eps(other, Self::DEFAULT_QUALITY_EPS)
    }

    /// [`QualityEnergy::compare`] with an explicit quality tolerance.
    pub fn compare_with_eps(&self, other: &QualityEnergy, eps: f64) -> Ordering {
        if self.quality > other.quality + eps {
            Ordering::Greater
        } else if other.quality > self.quality + eps {
            Ordering::Less
        } else if self.energy < other.energy - eps {
            Ordering::Greater
        } else if other.energy < self.energy - eps {
            Ordering::Less
        } else {
            Ordering::Equal
        }
    }

    /// True if `self` is at least as good as `other` under the metric.
    pub fn dominates_or_ties(&self, other: &QualityEnergy) -> bool {
        self.compare(other) != Ordering::Less
    }

    /// The better of two scores (`self` wins ties).
    pub fn better(self, other: QualityEnergy) -> QualityEnergy {
        if self.compare(&other) == Ordering::Less {
            other
        } else {
            self
        }
    }
}

impl std::fmt::Display for QualityEnergy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "⟨Q={:.6}, E={:.3}J⟩", self.quality, self.energy)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quality_dominates_energy() {
        let hi_q = QualityEnergy::new(0.95, 1000.0);
        let lo_q = QualityEnergy::new(0.90, 1.0);
        assert_eq!(hi_q.compare(&lo_q), Ordering::Greater);
        assert_eq!(lo_q.compare(&hi_q), Ordering::Less);
    }

    #[test]
    fn energy_breaks_quality_ties() {
        let a = QualityEnergy::new(0.9, 100.0);
        let b = QualityEnergy::new(0.9, 200.0);
        assert_eq!(a.compare(&b), Ordering::Greater);
        assert_eq!(b.compare(&a), Ordering::Less);
        assert_eq!(a.compare(&a), Ordering::Equal);
    }

    #[test]
    fn tolerance_merges_near_equal_qualities() {
        let a = QualityEnergy::new(0.9 + 1e-12, 100.0);
        let b = QualityEnergy::new(0.9, 200.0);
        // Qualities are "equal" within eps, so lower energy wins.
        assert_eq!(a.compare(&b), Ordering::Greater);
        // With a zero tolerance the tiny quality edge wins instead.
        assert_eq!(a.compare_with_eps(&b, 0.0), Ordering::Greater);
        let c = QualityEnergy::new(0.9 + 1e-12, 300.0);
        assert_eq!(c.compare(&b), Ordering::Less); // same quality, more energy
    }

    #[test]
    fn better_and_dominates() {
        let a = QualityEnergy::new(0.9, 100.0);
        let b = QualityEnergy::new(0.8, 50.0);
        assert_eq!(a.better(b), a);
        assert_eq!(b.better(a), a);
        assert!(a.dominates_or_ties(&b));
        assert!(!b.dominates_or_ties(&a));
        assert!(a.dominates_or_ties(&a));
    }

    #[test]
    fn display_formats() {
        let a = QualityEnergy::new(0.9, 100.0);
        let s = a.to_string();
        assert!(s.contains("0.9"));
        assert!(s.contains("100"));
    }
}
