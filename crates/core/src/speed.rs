//! Piecewise-constant speed plans.
//!
//! DVFS schedulers emit, per core, a sequence of `(start, end, speed)`
//! segments. [`SpeedPlan`] stores them sorted and non-overlapping and
//! provides the integrals the rest of the system needs: processed volume
//! over a window, instantaneous power, and energy.

use crate::power::PowerModel;
use crate::time::{SimDuration, SimTime};
use crate::volume;

/// One maximal run at a constant speed.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SpeedSegment {
    /// Segment start (inclusive).
    pub start: SimTime,
    /// Segment end (exclusive).
    pub end: SimTime,
    /// Core speed in GHz over `[start, end)`.
    pub speed: f64,
}

impl SpeedSegment {
    /// Segment length.
    #[inline]
    pub fn len(&self) -> SimDuration {
        self.end.saturating_since(self.start)
    }

    /// True if the segment covers no time.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.end <= self.start
    }

    /// Volume of work done in this segment.
    #[inline]
    pub fn volume(&self) -> f64 {
        volume(self.speed, self.len())
    }
}

/// An ordered, non-overlapping sequence of speed segments; gaps mean the
/// core is idle (speed 0).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct SpeedPlan {
    segments: Vec<SpeedSegment>,
}

impl SpeedPlan {
    /// The empty (always idle) plan.
    pub fn empty() -> Self {
        SpeedPlan::default()
    }

    /// Build from segments: drops empty ones, sorts by start, and panics in
    /// debug builds if any two overlap (schedulers must never emit overlap).
    pub fn new(mut segments: Vec<SpeedSegment>) -> Self {
        segments.retain(|s| !s.is_empty() && s.speed > 0.0);
        segments.sort_by_key(|s| s.start);
        debug_assert!(
            segments.windows(2).all(|w| w[0].end <= w[1].start),
            "overlapping speed segments"
        );
        SpeedPlan { segments }
    }

    /// The segments in time order.
    #[inline]
    pub fn segments(&self) -> &[SpeedSegment] {
        &self.segments
    }

    /// True if the plan has no work.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.segments.is_empty()
    }

    /// Speed at instant `t` (0 when idle).
    pub fn speed_at(&self, t: SimTime) -> f64 {
        // Binary search for the segment containing t.
        let idx = self.segments.partition_point(|s| s.end <= t);
        match self.segments.get(idx) {
            Some(s) if s.start <= t => s.speed,
            _ => 0.0,
        }
    }

    /// Instantaneous dynamic power at `t` under `model`.
    pub fn power_at(&self, t: SimTime, model: &dyn PowerModel) -> f64 {
        model.dynamic_power(self.speed_at(t))
    }

    /// Peak dynamic power over the whole plan.
    pub fn peak_power(&self, model: &dyn PowerModel) -> f64 {
        self.segments
            .iter()
            .map(|s| model.dynamic_power(s.speed))
            .fold(0.0, f64::max)
    }

    /// Total work volume over `[from, to)`.
    pub fn volume_in(&self, from: SimTime, to: SimTime) -> f64 {
        let mut v = 0.0;
        for s in &self.segments {
            if s.end <= from {
                continue;
            }
            if s.start >= to {
                break;
            }
            let a = s.start.max(from);
            let b = s.end.min(to);
            v += volume(s.speed, b.saturating_since(a));
        }
        v
    }

    /// Total work volume of the plan.
    pub fn total_volume(&self) -> f64 {
        self.segments.iter().map(|s| s.volume()).sum()
    }

    /// Dynamic energy (J) over `[from, to)` under `model`.
    pub fn energy_in(&self, from: SimTime, to: SimTime, model: &dyn PowerModel) -> f64 {
        let mut e = 0.0;
        for s in &self.segments {
            if s.end <= from {
                continue;
            }
            if s.start >= to {
                break;
            }
            let a = s.start.max(from);
            let b = s.end.min(to);
            e += model.dynamic_energy(s.speed, b.saturating_since(a).as_secs_f64());
        }
        e
    }

    /// Total dynamic energy (J) of the plan.
    pub fn total_energy(&self, model: &dyn PowerModel) -> f64 {
        self.segments
            .iter()
            .map(|s| model.dynamic_energy(s.speed, s.len().as_secs_f64()))
            .sum()
    }

    /// End of the last segment (or `None` for an empty plan).
    pub fn end(&self) -> Option<SimTime> {
        self.segments.last().map(|s| s.end)
    }

    /// Start of the first segment (or `None` for an empty plan).
    pub fn start(&self) -> Option<SimTime> {
        self.segments.first().map(|s| s.start)
    }

    /// Keep only the part of the plan at or after `t` (clipping a segment
    /// that straddles `t`).
    pub fn truncate_before(&mut self, t: SimTime) {
        self.segments.retain_mut(|s| {
            if s.end <= t {
                return false;
            }
            if s.start < t {
                s.start = t;
            }
            true
        });
    }

    /// The maximum speed used anywhere in the plan.
    pub fn max_speed(&self) -> f64 {
        self.segments.iter().map(|s| s.speed).fold(0.0, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::power::PolynomialPower;

    fn ms(x: u64) -> SimTime {
        SimTime::from_millis(x)
    }

    fn seg(a: u64, b: u64, s: f64) -> SpeedSegment {
        SpeedSegment {
            start: ms(a),
            end: ms(b),
            speed: s,
        }
    }

    #[test]
    fn construction_drops_empty_and_sorts() {
        let p = SpeedPlan::new(vec![seg(10, 20, 2.0), seg(0, 5, 1.0), seg(5, 5, 3.0)]);
        assert_eq!(p.segments().len(), 2);
        assert_eq!(p.segments()[0].start, ms(0));
        assert_eq!(p.segments()[1].start, ms(10));
    }

    #[test]
    fn speed_lookup() {
        let p = SpeedPlan::new(vec![seg(0, 10, 1.0), seg(20, 30, 2.0)]);
        assert_eq!(p.speed_at(ms(0)), 1.0);
        assert_eq!(p.speed_at(ms(9)), 1.0);
        assert_eq!(p.speed_at(ms(10)), 0.0); // end-exclusive
        assert_eq!(p.speed_at(ms(15)), 0.0); // gap
        assert_eq!(p.speed_at(ms(25)), 2.0);
        assert_eq!(p.speed_at(ms(30)), 0.0);
    }

    #[test]
    fn volume_integrals() {
        // 1 GHz for 10 ms = 10 units; 2 GHz for 10 ms = 20 units.
        let p = SpeedPlan::new(vec![seg(0, 10, 1.0), seg(20, 30, 2.0)]);
        assert!((p.total_volume() - 30.0).abs() < 1e-9);
        assert!((p.volume_in(ms(0), ms(10)) - 10.0).abs() < 1e-9);
        assert!((p.volume_in(ms(5), ms(25)) - (5.0 + 10.0)).abs() < 1e-9);
        assert_eq!(p.volume_in(ms(10), ms(20)), 0.0);
    }

    #[test]
    fn energy_integrals() {
        let m = PolynomialPower::PAPER_SIM; // 5 s^2
        let p = SpeedPlan::new(vec![seg(0, 1000, 2.0)]); // 20 W for 1 s
        assert!((p.total_energy(&m) - 20.0).abs() < 1e-9);
        assert!((p.energy_in(ms(0), ms(500), &m) - 10.0).abs() < 1e-9);
        assert!((p.peak_power(&m) - 20.0).abs() < 1e-12);
    }

    #[test]
    fn truncate_clips_straddling_segment() {
        let mut p = SpeedPlan::new(vec![seg(0, 10, 1.0), seg(10, 20, 2.0)]);
        p.truncate_before(ms(5));
        assert_eq!(p.segments().len(), 2);
        assert_eq!(p.segments()[0].start, ms(5));
        assert!((p.total_volume() - (5.0 + 20.0)).abs() < 1e-9);
        p.truncate_before(ms(20));
        assert!(p.is_empty());
    }

    #[test]
    fn empty_plan_is_inert() {
        let p = SpeedPlan::empty();
        let m = PolynomialPower::PAPER_SIM;
        assert_eq!(p.total_volume(), 0.0);
        assert_eq!(p.total_energy(&m), 0.0);
        assert_eq!(p.speed_at(ms(0)), 0.0);
        assert_eq!(p.end(), None);
        assert_eq!(p.max_speed(), 0.0);
    }
}
