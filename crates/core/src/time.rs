//! Simulated time as integer microseconds.
//!
//! Discrete-event simulation needs exact, totally ordered event timestamps;
//! `f64` seconds invite ordering hazards and accumulation drift. We use
//! `u64` microseconds, which covers > 584 000 years of simulated time and
//! resolves far below the paper's scheduling granularity (150 ms deadlines,
//! 500 ms quanta).

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// An absolute instant in simulated time (microseconds since simulation
/// start).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A non-negative span of simulated time (microseconds).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The simulation origin, `t = 0`.
    pub const ZERO: SimTime = SimTime(0);
    /// The largest representable instant; used as an "infinite" horizon.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Construct from raw microseconds.
    #[inline]
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us)
    }

    /// Construct from milliseconds.
    #[inline]
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000)
    }

    /// Construct from whole seconds.
    #[inline]
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000)
    }

    /// Construct from fractional seconds (rounds to the nearest µs; negative
    /// values clamp to zero).
    #[inline]
    pub fn from_secs_f64(s: f64) -> Self {
        SimTime((s.max(0.0) * 1e6).round() as u64)
    }

    /// Raw microseconds since simulation start.
    #[inline]
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Fractional seconds since simulation start.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Fractional milliseconds since simulation start.
    #[inline]
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e3
    }

    /// Span from `earlier` to `self`; zero if `earlier` is later.
    #[inline]
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Checked difference: `None` if `earlier > self`.
    #[inline]
    pub fn checked_since(self, earlier: SimTime) -> Option<SimDuration> {
        self.0.checked_sub(earlier.0).map(SimDuration)
    }

    /// The earlier of two instants.
    #[inline]
    pub fn min(self, other: SimTime) -> SimTime {
        SimTime(self.0.min(other.0))
    }

    /// The later of two instants.
    #[inline]
    pub fn max(self, other: SimTime) -> SimTime {
        SimTime(self.0.max(other.0))
    }
}

impl SimDuration {
    /// The empty span.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Construct from raw microseconds.
    #[inline]
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us)
    }

    /// Construct from milliseconds.
    #[inline]
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000)
    }

    /// Construct from whole seconds.
    #[inline]
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000)
    }

    /// Construct from fractional seconds (rounds to the nearest µs; negative
    /// values clamp to zero).
    #[inline]
    pub fn from_secs_f64(s: f64) -> Self {
        SimDuration((s.max(0.0) * 1e6).round() as u64)
    }

    /// Raw microseconds.
    #[inline]
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Fractional seconds.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Fractional milliseconds.
    #[inline]
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e3
    }

    /// True if the span is empty.
    #[inline]
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Scale by a non-negative factor, rounding to the nearest µs.
    #[inline]
    pub fn mul_f64(self, k: f64) -> SimDuration {
        SimDuration((self.0 as f64 * k.max(0.0)).round() as u64)
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, d: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(d.0))
    }
}

impl AddAssign<SimDuration> for SimTime {
    #[inline]
    fn add_assign(&mut self, d: SimDuration) {
        self.0 = self.0.saturating_add(d.0);
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    #[inline]
    fn sub(self, d: SimDuration) -> SimTime {
        SimTime(self.0.saturating_sub(d.0))
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    /// Panics in debug builds if `rhs > self`; saturates in release.
    #[inline]
    fn sub(self, rhs: SimTime) -> SimDuration {
        debug_assert!(rhs.0 <= self.0, "SimTime subtraction underflow");
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for SimDuration {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 = self.0.saturating_add(rhs.0);
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl SubAssign for SimDuration {
    #[inline]
    fn sub_assign(&mut self, rhs: SimDuration) {
        self.0 = self.0.saturating_sub(rhs.0);
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn mul(self, k: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(k))
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn div(self, k: u64) -> SimDuration {
        SimDuration(self.0 / k)
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={:.3}ms", self.as_millis_f64())
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}ms", self.as_millis_f64())
    }
}

impl fmt::Debug for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}ms", self.as_millis_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}ms", self.as_millis_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_roundtrips() {
        assert_eq!(SimTime::from_millis(150).as_micros(), 150_000);
        assert_eq!(SimTime::from_secs(3).as_micros(), 3_000_000);
        assert_eq!(SimTime::from_secs_f64(0.0005).as_micros(), 500);
        assert_eq!(SimDuration::from_millis(1).as_micros(), 1_000);
        assert!((SimTime::from_micros(96_000).as_millis_f64() - 96.0).abs() < 1e-12);
    }

    #[test]
    fn arithmetic_behaves() {
        let t = SimTime::from_millis(100);
        let d = SimDuration::from_millis(50);
        assert_eq!(t + d, SimTime::from_millis(150));
        assert_eq!(t - d, SimTime::from_millis(50));
        assert_eq!((t + d) - t, d);
        assert_eq!(d + d, SimDuration::from_millis(100));
        assert_eq!(d * 3, SimDuration::from_millis(150));
        assert_eq!(d / 2, SimDuration::from_millis(25));
    }

    #[test]
    fn saturating_since_clamps() {
        let a = SimTime::from_millis(10);
        let b = SimTime::from_millis(30);
        assert_eq!(b.saturating_since(a), SimDuration::from_millis(20));
        assert_eq!(a.saturating_since(b), SimDuration::ZERO);
        assert_eq!(a.checked_since(b), None);
        assert_eq!(b.checked_since(a), Some(SimDuration::from_millis(20)));
    }

    #[test]
    fn negative_seconds_clamp_to_zero() {
        assert_eq!(SimTime::from_secs_f64(-1.0), SimTime::ZERO);
        assert_eq!(SimDuration::from_secs_f64(-0.5), SimDuration::ZERO);
    }

    #[test]
    fn ordering_is_total() {
        let mut v = vec![
            SimTime::from_millis(5),
            SimTime::ZERO,
            SimTime::from_millis(2),
        ];
        v.sort();
        assert_eq!(
            v,
            vec![
                SimTime::ZERO,
                SimTime::from_millis(2),
                SimTime::from_millis(5)
            ]
        );
    }

    #[test]
    fn mul_f64_rounds() {
        let d = SimDuration::from_micros(100);
        assert_eq!(d.mul_f64(0.5).as_micros(), 50);
        assert_eq!(d.mul_f64(1.004).as_micros(), 100);
        assert_eq!(d.mul_f64(1.01).as_micros(), 101);
        assert_eq!(d.mul_f64(-2.0), SimDuration::ZERO);
    }
}
