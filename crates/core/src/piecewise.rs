//! Piecewise-linear concave quality functions.
//!
//! Real services measure their quality curve empirically (e.g. fraction
//! of index servers answered vs processing time, as in the paper's web
//! search motivation) and get a table of points rather than a formula.
//! [`PiecewiseLinearQuality`] interpolates such a table and *validates
//! concavity and monotonicity at construction*, so every scheduler
//! optimality argument that relies on those properties stays sound.

use crate::error::QesError;
use crate::quality::QualityFunction;

/// A validated piecewise-linear, non-decreasing, concave quality curve.
#[derive(Clone, Debug)]
pub struct PiecewiseLinearQuality {
    /// `(volume, quality)` knots, strictly increasing in volume, starting
    /// at `(0, 0)`.
    knots: Vec<(f64, f64)>,
}

impl PiecewiseLinearQuality {
    /// Build from `(volume, quality)` knots.
    ///
    /// Requirements, checked here:
    /// * at least two knots, the first at `(0, 0)`;
    /// * volumes strictly increasing, qualities non-decreasing;
    /// * segment slopes non-increasing (concavity).
    ///
    /// Beyond the last knot the curve is flat (no extra quality).
    pub fn new(knots: Vec<(f64, f64)>) -> Result<Self, QesError> {
        if knots.len() < 2 {
            return Err(QesError::BadParameter {
                what: "piecewise quality knot count",
                value: knots.len() as f64,
            });
        }
        if knots[0] != (0.0, 0.0) {
            return Err(QesError::BadParameter {
                what: "piecewise quality first knot (must be (0,0))",
                value: knots[0].0,
            });
        }
        let mut prev_slope = f64::INFINITY;
        for w in knots.windows(2) {
            let (x0, q0) = w[0];
            let (x1, q1) = w[1];
            if !x1.is_finite() || x1 <= x0 {
                return Err(QesError::BadParameter {
                    what: "piecewise quality volumes (must strictly increase)",
                    value: x1,
                });
            }
            if q1 < q0 || !q1.is_finite() {
                return Err(QesError::BadParameter {
                    what: "piecewise quality values (must not decrease)",
                    value: q1,
                });
            }
            let slope = (q1 - q0) / (x1 - x0);
            if slope > prev_slope + 1e-12 {
                return Err(QesError::BadParameter {
                    what: "piecewise quality slope (must not increase: concavity)",
                    value: slope,
                });
            }
            prev_slope = slope;
        }
        Ok(PiecewiseLinearQuality { knots })
    }

    /// The validated knots.
    pub fn knots(&self) -> &[(f64, f64)] {
        &self.knots
    }

    /// Approximate the exponential family (Eq. 1) with `n` equally spaced
    /// knots up to `x_max` — handy for comparing tabular against analytic
    /// behaviour.
    pub fn approximating_exp(c: f64, x_max: f64, n: usize) -> Self {
        let q = crate::quality::ExpQuality { c, x_ref: x_max };
        let knots = (0..=n)
            .map(|i| {
                let x = x_max * i as f64 / n as f64;
                (x, q.value(x))
            })
            .collect();
        Self::new(knots).expect("exp family is concave and monotone")
    }
}

impl QualityFunction for PiecewiseLinearQuality {
    fn value(&self, x: f64) -> f64 {
        let x = x.max(0.0);
        let last = *self.knots.last().unwrap();
        if x >= last.0 {
            return last.1;
        }
        let idx = self.knots.partition_point(|&(kx, _)| kx <= x);
        let (x0, q0) = self.knots[idx - 1];
        let (x1, q1) = self.knots[idx];
        q0 + (q1 - q0) * (x - x0) / (x1 - x0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::quality::{is_concave_on, is_non_decreasing_on, ExpQuality};

    fn simple() -> PiecewiseLinearQuality {
        PiecewiseLinearQuality::new(vec![(0.0, 0.0), (100.0, 0.6), (300.0, 0.9), (1000.0, 1.0)])
            .unwrap()
    }

    #[test]
    fn interpolates_between_knots() {
        let q = simple();
        assert_eq!(q.value(0.0), 0.0);
        assert!((q.value(50.0) - 0.3).abs() < 1e-12);
        assert!((q.value(100.0) - 0.6).abs() < 1e-12);
        assert!((q.value(200.0) - 0.75).abs() < 1e-12);
        assert!((q.value(1000.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn flat_beyond_last_knot_and_clamped_below_zero() {
        let q = simple();
        assert_eq!(q.value(5000.0), 1.0);
        assert_eq!(q.value(-10.0), 0.0);
    }

    #[test]
    fn validation_rejects_bad_tables() {
        // Too few knots.
        assert!(PiecewiseLinearQuality::new(vec![(0.0, 0.0)]).is_err());
        // Must start at the origin.
        assert!(PiecewiseLinearQuality::new(vec![(10.0, 0.0), (20.0, 1.0)]).is_err());
        assert!(PiecewiseLinearQuality::new(vec![(0.0, 0.1), (20.0, 1.0)]).is_err());
        // Decreasing volume.
        assert!(PiecewiseLinearQuality::new(vec![(0.0, 0.0), (30.0, 0.5), (20.0, 0.9)]).is_err());
        // Decreasing quality.
        assert!(PiecewiseLinearQuality::new(vec![(0.0, 0.0), (30.0, 0.5), (60.0, 0.4)]).is_err());
        // Convex kink (slope increases).
        assert!(PiecewiseLinearQuality::new(vec![(0.0, 0.0), (50.0, 0.1), (100.0, 0.9)]).is_err());
    }

    #[test]
    fn validated_tables_satisfy_the_trait_contract() {
        let q = simple();
        assert!(is_non_decreasing_on(&q, 1200.0, 200));
        assert!(is_concave_on(&q, 1200.0, 48, 1e-9));
    }

    #[test]
    fn exp_approximation_tracks_the_analytic_curve() {
        let tab = PiecewiseLinearQuality::approximating_exp(0.003, 1000.0, 50);
        let exact = ExpQuality::PAPER_DEFAULT;
        for i in 0..=100 {
            let x = 10.0 * i as f64;
            let err = (tab.value(x) - exact.value(x)).abs();
            assert!(err < 0.002, "at {x}: err {err}");
        }
    }
}
