//! Offline mini property-testing harness exposing the subset of the
//! `proptest` 1.x surface this workspace uses.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors a small, deterministic replacement: the [`proptest!`] macro,
//! [`Strategy`] (ranges, tuples, `prop_map`), `collection::{vec,
//! btree_set}`, `bool::ANY`, [`ProptestConfig`] and the `prop_assert*`
//! macros. Differences from upstream, by design:
//!
//! * **No shrinking.** A failing case reports its case index; cases are a
//!   pure function of the test name and index, so failures replay exactly
//!   by re-running the test.
//! * **Deterministic.** There is no persistence file or entropy source;
//!   CI and local runs see identical inputs.

use std::collections::BTreeSet;
use std::fmt;
use std::ops::Range;

use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};

/// Runner configuration (subset of `proptest::test_runner::Config`).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// A failed assertion inside a property body.
#[derive(Clone, Debug)]
pub struct TestCaseError(String);

impl TestCaseError {
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError(msg.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// Drives one `proptest!`-generated test: hands out one deterministic RNG
/// per case, derived from the test name so sibling tests decorrelate.
pub struct TestRunner {
    config: ProptestConfig,
    name_seed: u64,
}

impl TestRunner {
    pub fn new(config: ProptestConfig, name: &str) -> Self {
        // FNV-1a over the test name: stable across runs and platforms.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRunner {
            config,
            name_seed: h,
        }
    }

    pub fn cases(&self) -> u32 {
        self.config.cases
    }

    pub fn rng_for_case(&self, case: u32) -> StdRng {
        StdRng::seed_from_u64(self.name_seed ^ ((case as u64) << 32 | 0x5DEECE66D))
    }
}

/// A generator of random values (subset of `proptest::strategy::Strategy`;
/// generation only, no value trees).
pub trait Strategy {
    type Value;

    /// Draw one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Transform generated values (mirror of `Strategy::prop_map`).
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut StdRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// Strategy produced by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut StdRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut StdRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.gen::<f64>() * (self.end - self.start)
    }
}

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, F);

pub mod collection {
    use super::*;

    /// `Vec` of `len ∈ size` elements (mirror of
    /// `proptest::collection::vec`).
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let len = self.size.generate(rng);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// `BTreeSet` targeting `len ∈ size` *distinct* elements (mirror of
    /// `proptest::collection::btree_set`). If the element domain is too
    /// small to reach the drawn size, the set is as large as achievable
    /// within a bounded number of draws (never fewer than 1 when
    /// `size.start >= 1` and the element strategy is non-empty).
    pub fn btree_set<S>(element: S, size: Range<usize>) -> BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        BTreeSetStrategy { element, size }
    }

    pub struct BTreeSetStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    impl<S> Strategy for BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;
        fn generate(&self, rng: &mut StdRng) -> BTreeSet<S::Value> {
            let target = self.size.generate(rng);
            let mut out = BTreeSet::new();
            let mut attempts = 0usize;
            while out.len() < target && attempts < target * 20 + 50 {
                out.insert(self.element.generate(rng));
                attempts += 1;
            }
            out
        }
    }
}

pub mod bool {
    use super::*;

    /// Either boolean with probability ½ (mirror of `proptest::bool::ANY`).
    pub const ANY: Any = Any;

    pub struct Any;

    impl Strategy for Any {
        type Value = bool;
        fn generate(&self, rng: &mut StdRng) -> bool {
            rng.gen::<f64>() < 0.5
        }
    }
}

/// Fail the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {}",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Fail the current case unless `left == right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{:?}` == `{:?}`",
                l, r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    }};
}

/// Define property tests (subset of `proptest::proptest!`). Each `fn
/// name(arg in strategy, …) { body }` becomes a `#[test]` running
/// `config.cases` deterministic cases; the body may use `prop_assert*`
/// and `?` over [`TestCaseError`].
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let runner = $crate::TestRunner::new($cfg, stringify!($name));
                for case in 0..runner.cases() {
                    let mut rng = runner.rng_for_case(case);
                    $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)*
                    let result: ::std::result::Result<(), $crate::TestCaseError> = (|| {
                        $body
                        #[allow(unreachable_code)]
                        ::std::result::Result::Ok(())
                    })();
                    if let ::std::result::Result::Err(e) = result {
                        panic!(
                            "property `{}` failed at case {}/{}: {}",
                            stringify!($name),
                            case,
                            runner.cases(),
                            e
                        );
                    }
                }
            }
        )*
    };
    (
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
        )*
    ) => {
        $crate::proptest! {
            #![proptest_config($crate::ProptestConfig::default())]
            $(
                $(#[$meta])*
                fn $name($($arg in $strat),*) $body
            )*
        }
    };
}

pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, proptest, ProptestConfig, Strategy, TestCaseError,
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::TestRunner;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 3u64..17, f in -2.0f64..5.0) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-2.0..5.0).contains(&f), "f out of range: {}", f);
        }

        #[test]
        fn vec_sizes_respect_range(v in crate::collection::vec(0u32..10, 2..6)) {
            prop_assert!(v.len() >= 2 && v.len() < 6);
            prop_assert!(v.iter().all(|&x| x < 10));
        }

        #[test]
        fn btree_set_is_distinct_and_bounded(s in crate::collection::btree_set(0u32..100, 1..8)) {
            prop_assert!(!s.is_empty() && s.len() < 8);
        }

        #[test]
        fn prop_map_applies(y in (0u32..5).prop_map(|x| x * 2)) {
            prop_assert!(y % 2 == 0 && y < 10);
        }

        #[test]
        fn question_mark_propagates(b in crate::bool::ANY) {
            let r: Result<(), TestCaseError> = Ok(());
            r.map_err(|e: TestCaseError| TestCaseError::fail(format!("{e}")))?;
            prop_assert!(u8::from(b) <= 1);
        }
    }

    #[test]
    fn cases_are_deterministic() {
        let runner = TestRunner::new(ProptestConfig::with_cases(4), "t");
        let a = (0u64..1000).generate(&mut runner.rng_for_case(0));
        let b = (0u64..1000).generate(&mut runner.rng_for_case(0));
        assert_eq!(a, b);
    }
}
