//! Execution-trace validation.
//!
//! [`qes_core::Schedule::validate`] checks a *planned* schedule; this
//! module checks what a simulation *actually executed*. Every model
//! constraint of §II is verified against the recorded [`SimTrace`]:
//! windows, per-core non-overlap, non-migration, demand caps, and the
//! instantaneous power budget across all cores. The integration tests use
//! it, and it is public so downstream policy authors can fuzz their own
//! schedulers against the same rules.

use std::collections::HashMap;

use qes_core::error::QesError;
use qes_core::job::{JobId, JobSet};
use qes_core::power::PowerModel;
use qes_core::time::SimTime;

use crate::trace::SimTrace;

/// Summary of a validated trace.
#[derive(Clone, Debug, Default)]
pub struct TraceSummary {
    /// Slices checked.
    pub slices: usize,
    /// Distinct jobs that executed.
    pub jobs_executed: usize,
    /// Peak instantaneous total dynamic power observed (W).
    pub peak_power: f64,
    /// Total volume executed (units).
    pub total_volume: f64,
}

/// Validate every §II constraint over an executed trace.
///
/// `power_eps` absorbs floating-point slack in the budget check;
/// `vol_eps` (units) absorbs µs quantization in the per-job demand cap.
pub fn validate_trace(
    trace: &SimTrace,
    jobs: &JobSet,
    num_cores: usize,
    model: &dyn PowerModel,
    budget: f64,
    vol_eps: f64,
    power_eps: f64,
) -> Result<TraceSummary, QesError> {
    let mut per_core: Vec<Vec<(SimTime, SimTime, f64)>> = vec![Vec::new(); num_cores];
    let mut home: HashMap<JobId, usize> = HashMap::new();
    let mut volumes: HashMap<JobId, f64> = HashMap::new();
    let mut summary = TraceSummary {
        slices: trace.len(),
        ..TraceSummary::default()
    };

    for s in trace.slices() {
        let job = jobs.get(s.job).ok_or(QesError::UnknownJob { job: s.job })?;
        // Window containment.
        if s.start < job.release || s.end > job.deadline {
            return Err(QesError::SliceOutsideWindow {
                job: s.job,
                core: s.core,
            });
        }
        // Non-migration.
        match home.get(&s.job) {
            Some(&c0) if c0 != s.core => {
                return Err(QesError::Migration {
                    job: s.job,
                    first_core: c0,
                    second_core: s.core,
                });
            }
            None => {
                home.insert(s.job, s.core);
            }
            _ => {}
        }
        if s.core >= num_cores {
            return Err(QesError::BadParameter {
                what: "trace core index",
                value: s.core as f64,
            });
        }
        per_core[s.core].push((s.start, s.end, s.speed));
        *volumes.entry(s.job).or_insert(0.0) += s.volume();
        summary.total_volume += s.volume();
    }

    // Per-core non-overlap.
    for (core, v) in per_core.iter_mut().enumerate() {
        v.sort_by_key(|&(a, _, _)| a);
        for w in v.windows(2) {
            if w[1].0 < w[0].1 {
                return Err(QesError::OverlappingSlices { core, at: w[1].0 });
            }
        }
    }

    // Demand caps.
    for (&id, &v) in &volumes {
        let job = jobs.get(id).expect("checked above");
        if v > job.demand + vol_eps {
            return Err(QesError::OverProcessed {
                job: id,
                processed: v,
                demand: job.demand,
            });
        }
    }
    summary.jobs_executed = volumes.len();

    // Instantaneous power across cores, swept at every slice boundary
    // (power is piecewise constant between boundaries).
    let mut instants: Vec<SimTime> = trace
        .slices()
        .iter()
        .flat_map(|s| [s.start, s.end])
        .collect();
    instants.sort();
    instants.dedup();
    let speed_at = |v: &[(SimTime, SimTime, f64)], t: SimTime| -> f64 {
        let i = v.partition_point(|&(_, e, _)| e <= t);
        match v.get(i) {
            Some(&(a, _, sp)) if a <= t => sp,
            _ => 0.0,
        }
    };
    for &t in &instants {
        let p: f64 = per_core
            .iter()
            .map(|v| model.dynamic_power(speed_at(v, t)))
            .sum();
        summary.peak_power = summary.peak_power.max(p);
        if p > budget + power_eps {
            return Err(QesError::PowerBudgetExceeded {
                at: t,
                power: p,
                budget,
            });
        }
    }
    Ok(summary)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::TraceSlice;
    use qes_core::job::Job;
    use qes_core::power::PolynomialPower;

    const MODEL: PolynomialPower = PolynomialPower::PAPER_SIM;

    fn ms(x: u64) -> SimTime {
        SimTime::from_millis(x)
    }

    fn jobs() -> JobSet {
        JobSet::new(vec![
            Job::new(0, ms(0), ms(150), 200.0).unwrap(),
            Job::new(1, ms(10), ms(160), 150.0).unwrap(),
        ])
        .unwrap()
    }

    fn slice(core: usize, j: u32, a: u64, b: u64, s: f64) -> TraceSlice {
        TraceSlice {
            core,
            job: JobId(j),
            start: ms(a),
            end: ms(b),
            speed: s,
        }
    }

    #[test]
    fn valid_trace_summarizes() {
        let mut t = SimTrace::default();
        t.push(slice(0, 0, 0, 100, 2.0));
        t.push(slice(1, 1, 10, 110, 1.5));
        let s = validate_trace(&t, &jobs(), 2, &MODEL, 40.0, 0.1, 1e-6).unwrap();
        assert_eq!(s.slices, 2);
        assert_eq!(s.jobs_executed, 2);
        assert!((s.peak_power - (20.0 + 11.25)).abs() < 1e-9);
        assert!((s.total_volume - 350.0).abs() < 1e-6);
    }

    #[test]
    fn catches_migration() {
        let mut t = SimTrace::default();
        t.push(slice(0, 0, 0, 50, 1.0));
        t.push(slice(1, 0, 60, 100, 1.0));
        assert!(matches!(
            validate_trace(&t, &jobs(), 2, &MODEL, 40.0, 0.1, 1e-6),
            Err(QesError::Migration { .. })
        ));
    }

    #[test]
    fn catches_budget_violation() {
        let mut t = SimTrace::default();
        t.push(slice(0, 0, 0, 100, 2.0));
        // 75 ms at 2 GHz = 150 units: exactly job 1's demand, so only the
        // power constraint can trip.
        t.push(slice(1, 1, 10, 85, 2.0));
        assert!(matches!(
            validate_trace(&t, &jobs(), 2, &MODEL, 30.0, 0.1, 1e-6),
            Err(QesError::PowerBudgetExceeded { .. })
        ));
    }

    #[test]
    fn catches_overlap_window_and_overprocessing() {
        // Overlap on one core.
        let mut t = SimTrace::default();
        t.push(slice(0, 0, 0, 60, 1.0));
        t.push(slice(0, 1, 50, 100, 1.0));
        assert!(matches!(
            validate_trace(&t, &jobs(), 2, &MODEL, 40.0, 0.1, 1e-6),
            Err(QesError::OverlappingSlices { .. })
        ));
        // Outside the window.
        let mut t = SimTrace::default();
        t.push(slice(0, 1, 0, 20, 1.0)); // job 1 releases at 10 ms
        assert!(matches!(
            validate_trace(&t, &jobs(), 2, &MODEL, 40.0, 0.1, 1e-6),
            Err(QesError::SliceOutsideWindow { .. })
        ));
        // Over-processed (job 0 demands 200; 2 GHz × 150 ms = 300).
        let mut t = SimTrace::default();
        t.push(slice(0, 0, 0, 150, 2.0));
        assert!(matches!(
            validate_trace(&t, &jobs(), 2, &MODEL, 40.0, 0.1, 1e-6),
            Err(QesError::OverProcessed { .. })
        ));
    }

    #[test]
    fn catches_unknown_job_and_bad_core() {
        let mut t = SimTrace::default();
        t.push(slice(0, 99, 0, 10, 1.0));
        assert!(matches!(
            validate_trace(&t, &jobs(), 2, &MODEL, 40.0, 0.1, 1e-6),
            Err(QesError::UnknownJob { .. })
        ));
        let mut t = SimTrace::default();
        t.push(slice(7, 0, 0, 10, 1.0));
        assert!(matches!(
            validate_trace(&t, &jobs(), 2, &MODEL, 40.0, 0.1, 1e-6),
            Err(QesError::BadParameter { .. })
        ));
    }

    #[test]
    fn empty_trace_is_trivially_valid() {
        let s = validate_trace(&SimTrace::default(), &jobs(), 2, &MODEL, 0.0, 0.1, 1e-6).unwrap();
        assert_eq!(s.slices, 0);
        assert_eq!(s.peak_power, 0.0);
    }
}
