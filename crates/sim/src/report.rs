//! Simulation results.

use qes_core::MetricsRegistry;

/// Integer bookkeeping of one simulation run, grouped so the engine can
/// maintain them unconditionally (they are plain adds, far too cheap to
/// gate behind an observer) and the observability layer can export them as
/// named metrics.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SimCounters {
    /// Jobs that arrived within the simulated horizon.
    pub jobs_total: usize,
    /// Jobs fully processed (`p_j = w_j`).
    pub jobs_satisfied: usize,
    /// Jobs partially processed (`0 < p_j < w_j`).
    pub jobs_partial: usize,
    /// Jobs that never ran.
    pub jobs_zero: usize,
    /// Jobs abandoned by the policy (subset of partial/zero).
    pub jobs_discarded: usize,
    /// Policy invocations that changed state: at least one assignment,
    /// discard, installed plan, or ambient-speed change. Gated
    /// `PlanEnd`/quantum wakeups whose decision keeps everything are
    /// counted in [`invocations_kept`](Self::invocations_kept) instead
    /// (§IV-E: a grouped trigger that decides nothing is not a scheduling
    /// invocation).
    pub invocations: u64,
    /// Policy wakeups whose decision was a pure keep (no assignments, no
    /// discards, no plans, ambient speeds unchanged).
    pub invocations_kept: u64,
    /// Plans installed on cores (one per `Some` plan entry applied).
    pub plans_installed: u64,
    /// Explicit `None` plan entries (the policy kept a running plan).
    pub plans_kept: u64,
}

impl SimCounters {
    /// All policy wakeups, state-changing or not.
    pub fn wakeups(&self) -> u64 {
        self.invocations + self.invocations_kept
    }
}

/// Aggregate metrics of one simulation run.
#[derive(Clone, Debug, Default)]
pub struct SimReport {
    /// Policy name (e.g. `"DES/C-DVFS"`, `"FCFS+WF"`).
    pub policy: String,
    /// Total quality `Q = Σ f(p_j)` over every arrived job.
    pub total_quality: f64,
    /// Maximum possible quality `Σ f(w_j)` (every job fully executed).
    pub max_quality: f64,
    /// Total *dynamic* energy in joules, including ambient draw of
    /// non-gating architectures.
    pub energy_joules: f64,
    /// Integer run counters (jobs by outcome, invocations, plans).
    pub counters: SimCounters,
    /// Simulated horizon in seconds.
    pub sim_seconds: f64,
}

impl SimReport {
    /// Jobs that arrived within the simulated horizon.
    pub fn jobs_total(&self) -> usize {
        self.counters.jobs_total
    }

    /// Jobs fully processed (`p_j = w_j`).
    pub fn jobs_satisfied(&self) -> usize {
        self.counters.jobs_satisfied
    }

    /// Jobs partially processed (`0 < p_j < w_j`).
    pub fn jobs_partial(&self) -> usize {
        self.counters.jobs_partial
    }

    /// Jobs that never ran.
    pub fn jobs_zero(&self) -> usize {
        self.counters.jobs_zero
    }

    /// Jobs abandoned by the policy (subset of partial/zero).
    pub fn jobs_discarded(&self) -> usize {
        self.counters.jobs_discarded
    }

    /// State-changing policy invocations (see
    /// [`SimCounters::invocations`] for the exact semantics).
    pub fn invocations(&self) -> u64 {
        self.counters.invocations
    }

    /// Policy wakeups that kept everything unchanged.
    pub fn invocations_kept(&self) -> u64 {
        self.counters.invocations_kept
    }

    /// Quality normalized against the maximum possible (the paper's
    /// y-axis in every quality figure). 1.0 for an empty run.
    pub fn normalized_quality(&self) -> f64 {
        if self.max_quality > 0.0 {
            self.total_quality / self.max_quality
        } else {
            1.0
        }
    }

    /// Fraction of jobs fully satisfied.
    pub fn satisfaction_rate(&self) -> f64 {
        if self.counters.jobs_total > 0 {
            self.counters.jobs_satisfied as f64 / self.counters.jobs_total as f64
        } else {
            1.0
        }
    }

    /// Mean dynamic power over the horizon (W).
    pub fn mean_power(&self) -> f64 {
        if self.sim_seconds > 0.0 {
            self.energy_joules / self.sim_seconds
        } else {
            0.0
        }
    }

    /// The composite ⟨quality, energy⟩ score (§II-C).
    pub fn quality_energy(&self) -> qes_core::QualityEnergy {
        qes_core::QualityEnergy::new(self.total_quality, self.energy_joules)
    }

    /// Export the run as named metrics: every [`SimCounters`] field as a
    /// `sim.*` counter plus the float aggregates as gauges. Merged into an
    /// existing registry so engine-observer and policy counters can share
    /// one JSON export.
    pub fn export_metrics(&self, reg: &mut MetricsRegistry) {
        reg.inc("sim.jobs_total", self.counters.jobs_total as u64);
        reg.inc("sim.jobs_satisfied", self.counters.jobs_satisfied as u64);
        reg.inc("sim.jobs_partial", self.counters.jobs_partial as u64);
        reg.inc("sim.jobs_zero", self.counters.jobs_zero as u64);
        reg.inc("sim.jobs_discarded", self.counters.jobs_discarded as u64);
        reg.inc("sim.invocations", self.counters.invocations);
        reg.inc("sim.invocations_kept", self.counters.invocations_kept);
        reg.inc("sim.plans_installed", self.counters.plans_installed);
        reg.inc("sim.plans_kept", self.counters.plans_kept);
        reg.set_gauge("sim.total_quality", self.total_quality);
        reg.set_gauge("sim.max_quality", self.max_quality);
        reg.set_gauge("sim.energy_joules", self.energy_joules);
        reg.set_gauge("sim.seconds", self.sim_seconds);
    }

    /// The run as a fresh [`MetricsRegistry`].
    pub fn metrics_registry(&self) -> MetricsRegistry {
        let mut reg = MetricsRegistry::new();
        self.export_metrics(&mut reg);
        reg
    }
}

impl std::fmt::Display for SimReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}: quality {:.4} ({:.2}%), energy {:.1} J, jobs {} (sat {}, part {}, zero {}, disc {}), {} invocations (+{} kept) over {:.0} s",
            self.policy,
            self.total_quality,
            100.0 * self.normalized_quality(),
            self.energy_joules,
            self.counters.jobs_total,
            self.counters.jobs_satisfied,
            self.counters.jobs_partial,
            self.counters.jobs_zero,
            self.counters.jobs_discarded,
            self.counters.invocations,
            self.counters.invocations_kept,
            self.sim_seconds,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalization_and_rates() {
        let r = SimReport {
            policy: "test".into(),
            total_quality: 90.0,
            max_quality: 100.0,
            energy_joules: 500.0,
            counters: SimCounters {
                jobs_total: 10,
                jobs_satisfied: 7,
                jobs_partial: 2,
                jobs_zero: 1,
                jobs_discarded: 0,
                invocations: 42,
                invocations_kept: 3,
                plans_installed: 40,
                plans_kept: 5,
            },
            sim_seconds: 10.0,
        };
        assert!((r.normalized_quality() - 0.9).abs() < 1e-12);
        assert!((r.satisfaction_rate() - 0.7).abs() < 1e-12);
        assert!((r.mean_power() - 50.0).abs() < 1e-12);
        assert_eq!(r.jobs_total(), 10);
        assert_eq!(r.invocations(), 42);
        assert_eq!(r.counters.wakeups(), 45);
        let s = r.to_string();
        assert!(s.contains("90.00%"));
        assert!(s.contains("+3 kept"));
    }

    #[test]
    fn empty_run_defaults() {
        let r = SimReport::default();
        assert_eq!(r.normalized_quality(), 1.0);
        assert_eq!(r.satisfaction_rate(), 1.0);
        assert_eq!(r.mean_power(), 0.0);
    }

    #[test]
    fn metrics_export_is_deterministic() {
        let mut r = SimReport::default();
        r.counters.jobs_total = 5;
        r.counters.invocations = 9;
        r.energy_joules = 12.5;
        let reg = r.metrics_registry();
        assert_eq!(reg.counter("sim.jobs_total"), 5);
        assert_eq!(reg.counter("sim.invocations"), 9);
        assert_eq!(reg.gauge("sim.energy_joules"), Some(12.5));
        assert_eq!(reg.to_json(), r.metrics_registry().to_json());
    }
}
